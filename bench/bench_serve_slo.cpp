// Open-loop SLO load generation: Poisson arrivals against the solve
// service, per-request stage timelines, and burn-rate verdicts.
//
// The generator is OPEN-LOOP: requests are submitted on a precomputed
// exponential-inter-arrival schedule regardless of how fast earlier ones
// complete, and each request's latency is measured from its INTENDED
// arrival instant — not from when the submitting thread got around to it.
// A closed-loop generator (wait for a reply, then send) silently stops
// offering load exactly when the service is slow, hiding the queueing it
// should be measuring (coordinated omission); the intended-arrival basis
// here charges schedule slip to the service.
//
// Protocol per offered-load point (requests/sec, multi-tenant mix of the
// base case, base-case contingencies, and a second case):
//   - run the schedule for --duration seconds, count sheds (CapacityError)
//     as offered-but-rejected,
//   - report end-to-end p50/p95/p99 from intended arrival (ms), per-stage
//     p50/p95/p99 from the RequestTimeline (us), shed rate, and the
//     monitor's burn-rate verdict at the end of the run.
//
// One JSON record per load point (bench "serve_slo"); guarded by
// scripts/perf_guard.py against BENCH_serve_slo.json and validated by
// scripts/slo_check.py in CI.
//
//   ./bench_serve_slo [--rates=20,60,120] [--duration=S] [--shards=N]
//                     [--ceiling-ms=X] [--expo-port=P] [--linger=S]
//                     [--faults=SPEC] [--deadline-ms=X] [--stress]
//                     [--smoke] [--trace=PATH]
//
// --expo-port=P (>= 0) serves /metrics, /healthz, and /slo while the
// bench runs; --linger=S keeps the service (and endpoint) alive S seconds
// after the sweep so an external scraper (the CI curl check) can probe it.
//
// --faults=SPEC arms device::FaultInjector with a deterministic fault plan
// (see src/device/fault.hpp for the grammar) for the chaos-smoke CI step:
// the run then also proves the ledger — every offered request is accounted
// as completed, shed, failed, or deadline-shed, with zero lost futures.
// --deadline-ms=X stamps each request with an absolute deadline X ms after
// its INTENDED arrival, so schedule slip and queueing burn deadline budget
// exactly like they burn latency.
//
// --stress adds a case30 stress tenant (the scenario::StressCorpusOptions
// recipe: uniformly scaled loads plus per-request iteration caps that
// defeat both ADMM rungs) and enables the engine escalation router
// (DESIGN.md §13). The JSON then also reports the per-engine completion
// split and the IPM rescue rate; scripts/slo_check.py --expect-escalation
// asserts at least one rescue happened and the split sums to completed.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "device/fault.hpp"
#include "grid/cases.hpp"
#include "scenario/scenario_set.hpp"
#include "serve/service.hpp"

namespace {

using namespace gridadmm;

/// One tenant of the multi-tenant mix: a case plus an optional outage.
struct Tenant {
  std::shared_ptr<const grid::Network> network;  ///< null = the base case
  int outage_branch = -1;
  double weight = 1.0;
  /// Stress tenant (--stress): loads pinned at the calibrated stress scale
  /// (no per-arrival jitter — the corpus is tuned to defeat ADMM at exactly
  /// this point) plus per-request iteration caps.
  bool stress = false;
  double load_scale = 1.0;
  gridadmm::scenario::ScenarioControls controls;
};

struct Arrival {
  double at_seconds = 0.0;  ///< intended arrival, relative to run start
  std::size_t tenant = 0;
  double load_factor = 1.0;
};

struct RequestOutcome {
  bool shed = false;           ///< CapacityError at submit
  bool deadline_shed = false;  ///< DeadlineError (admission or pickup)
  bool failed = false;         ///< typed solve error on the future
  double intended_latency_seconds = 0.0;  ///< intended arrival -> fulfill
  serve::RequestTimeline timeline;
};

double quantile_of(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using bench::split_csv;
  const Options opts(argc, argv);
  const bool smoke = bench::smoke_mode(opts);
  std::printf("# Serve SLO: open-loop Poisson load vs declared objectives%s\n",
              smoke ? " — SMOKE mode" : "");

  std::vector<double> rates;
  for (const auto& r : split_csv(opts.get("rates", smoke ? "20,60,120" : "20,60,120,240"))) {
    rates.push_back(std::stod(r));
  }
  const double duration = opts.get_double("duration", smoke ? 2.0 : 10.0);
  const int shards = std::max(1, opts.get_int("shards", bench::env_int("GRIDADMM_SHARDS", 1)));
  const double ceiling_ms = opts.get_double("ceiling-ms", 250.0);
  const int expo_port = opts.get_int("expo-port", -1);
  const double linger = opts.get_double("linger", 0.0);
  const double deadline_ms = opts.get_double("deadline-ms", 0.0);
  const bool stress = opts.get_bool("stress", false);
  const std::string faults_spec = opts.get("faults", "");
  const bench::TraceGuard trace_guard(opts);

  if (!faults_spec.empty()) {
    device::FaultInjector::instance().configure(
        device::FaultInjector::parse_spec(faults_spec));
    std::printf("# fault plan armed: %s\n", faults_spec.c_str());
  }

  // Multi-tenant mix: intact case9 (the bulk), two case9 N-1
  // contingencies, and case14 — distinct fingerprints, so the dispatcher
  // must keep per-tenant batches apart under interleaved arrivals.
  const auto base = grid::load_case("case9");
  const auto second = std::make_shared<grid::Network>(grid::load_case("case14"));
  std::vector<int> safe_outages;  // first two non-bridge branches of case9
  for (int b = 0; b < base.num_branches() && safe_outages.size() < 2; ++b) {
    if (!grid::is_bridge(base, b)) safe_outages.push_back(b);
  }
  std::vector<Tenant> tenants;
  tenants.push_back({nullptr, -1, 0.6});
  for (const int b : safe_outages) tenants.push_back({nullptr, b, 0.1});
  tenants.push_back({second, -1, 0.2});
  if (stress) {
    // The calibrated ADMM-defeating corpus as a tenant: every request from
    // it exercises the full escalation ladder down to the IPM rung.
    const scenario::StressCorpusOptions corpus;
    Tenant hard;
    hard.network = std::make_shared<grid::Network>(grid::load_case("case30"));
    hard.weight = 0.08;
    hard.stress = true;
    hard.load_scale = corpus.load_scale;
    hard.controls.max_inner_iterations = corpus.base_inner_budget;
    hard.controls.max_outer_iterations = corpus.outer_budget;
    tenants.push_back(std::move(hard));
    std::printf("# stress tenant armed: case30 x%.2f, caps %d/%d — engine router on\n",
                corpus.load_scale, corpus.base_inner_budget, corpus.outer_budget);
  }
  double total_weight = 0.0;
  for (const auto& t : tenants) total_weight += t.weight;

  auto params = admm::params_for_case("case9", base.num_buses());

  serve::ServiceOptions service_options;
  service_options.max_batch_size = 16;
  service_options.batching_window_seconds = 0.002;
  service_options.max_queue_depth = 256;
  service_options.cache.capacity = 128;
  service_options.num_devices = shards;
  service_options.slo = true;
  service_options.slo_objectives.latency_ceiling_seconds = ceiling_ms * 1e-3;
  service_options.slo_objectives.latency_budget_fraction = 0.01;
  service_options.slo_objectives.shed_budget_fraction = 0.05;
  // Bench runs last seconds, not minutes: judge burn over windows that fit
  // inside the run so the verdict reflects this run, not an empty window.
  service_options.slo_objectives.fast_window_seconds = std::max(1.0, duration / 4.0);
  service_options.slo_objectives.slow_window_seconds = std::max(2.0, duration);
  service_options.expo_port = expo_port;
  if (stress) {
    // Full escalation ladder: stall-flagged solo retries plus the
    // warm-started MiniIPM fallback for anything still non-converged.
    service_options.escalation_retry = true;
    service_options.convergence_sample_interval = 8;
    service_options.engine_fallback = true;
  }
  serve::SolveService service(base, params, service_options);
  if (service.expo() != nullptr) {
    std::printf("# exposition endpoint: %s\n", service.expo()->url().c_str());
  }

  Table table({"rate (req/s)", "offered", "shed", "shed rate", "failed", "ddl shed",
               "retries", "p50 (ms)", "p95 (ms)", "p99 (ms)", "stage_solve p95 (us)",
               "healthy"});
  for (const double rate : rates) {
    // One service serves the whole sweep: fault-tolerance counters are
    // cumulative, so report per-load-point deltas against this snapshot.
    const serve::ServiceStats before = service.stats();
    // Precompute the whole arrival schedule (deterministic per rate): the
    // submit loop then only sleeps and fires, nothing data-dependent.
    Rng rng(0x51011234ULL ^ static_cast<std::uint64_t>(rate * 1000));
    std::vector<Arrival> schedule;
    double t = 0.0;
    while (true) {
      t += -std::log(1.0 - rng.uniform()) / rate;  // exponential inter-arrival
      if (t >= duration) break;
      Arrival arrival;
      arrival.at_seconds = t;
      double pick = rng.uniform(0.0, total_weight);
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        pick -= tenants[i].weight;
        if (pick <= 0.0 || i + 1 == tenants.size()) {
          arrival.tenant = i;
          break;
        }
      }
      arrival.load_factor = rng.uniform(0.95, 1.05);
      schedule.push_back(arrival);
    }

    std::vector<RequestOutcome> outcomes(schedule.size());
    std::vector<double> slip_seconds(schedule.size(), 0.0);
    std::vector<std::pair<std::size_t, std::future<serve::SolveResult>>> in_flight;
    in_flight.reserve(schedule.size());

    const auto start = std::chrono::steady_clock::now();
    // The service's default telemetry clock is steady-epoch seconds: an
    // absolute request deadline lives on the same timebase.
    const double start_epoch =
        std::chrono::duration<double>(start.time_since_epoch()).count();
    const auto elapsed = [&start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    };
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const Arrival& arrival = schedule[i];
      // Open loop: sleep until the INTENDED instant, never longer because
      // a previous request is still outstanding.
      double now = elapsed();
      if (arrival.at_seconds > now) {
        std::this_thread::sleep_for(std::chrono::duration<double>(arrival.at_seconds - now));
        now = elapsed();
      }
      // Schedule slip: how late this submit actually fired. Charged to the
      // request's latency below — measuring from the intended arrival is
      // what defeats coordinated omission.
      slip_seconds[i] = std::max(0.0, now - arrival.at_seconds);
      const Tenant& tenant = tenants[arrival.tenant];
      serve::SolveRequest request;
      request.network = tenant.network;
      request.outage_branch = tenant.outage_branch;
      const grid::Network& net = tenant.network != nullptr ? *tenant.network : base;
      // Stress requests pin the calibrated scale; everything else jitters.
      const double factor = tenant.stress ? tenant.load_scale : arrival.load_factor;
      request.controls = tenant.controls;
      request.pd.reserve(static_cast<std::size_t>(net.num_buses()));
      request.qd.reserve(static_cast<std::size_t>(net.num_buses()));
      for (const auto& bus : net.buses) {
        request.pd.push_back(bus.pd * factor);
        request.qd.push_back(bus.qd * factor);
      }
      if (deadline_ms > 0.0) {
        // Deadline anchored to the INTENDED arrival: schedule slip burns
        // deadline budget exactly like it burns measured latency.
        request.deadline = start_epoch + arrival.at_seconds + deadline_ms * 1e-3;
      }
      try {
        in_flight.emplace_back(i, service.submit(std::move(request)));
      } catch (const CapacityError&) {
        outcomes[i].shed = true;
      } catch (const DeadlineError&) {
        outcomes[i].deadline_shed = true;  // expired before admission
      }
    }
    for (auto& [index, future] : in_flight) {
      try {
        serve::SolveResult result = future.get();
        outcomes[index].timeline = result.timeline;
        // Intended-arrival latency = submit slip + the service-measured
        // end-to-end time (both on monotonic clocks).
        outcomes[index].intended_latency_seconds = slip_seconds[index] + result.total_seconds;
      } catch (const DeadlineError&) {
        outcomes[index].deadline_shed = true;  // expired at dispatch pickup
      } catch (const GridError&) {
        outcomes[index].failed = true;  // typed solve error (chaos runs)
      }
    }

    std::vector<double> end_to_end_ms;
    std::vector<double> stage_us[serve::RequestTimeline::kStageCount];
    std::size_t shed = 0, ddl_shed = 0, failed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].shed) {
        ++shed;
        continue;
      }
      if (outcomes[i].deadline_shed) {
        ++ddl_shed;
        continue;
      }
      if (outcomes[i].failed) {
        ++failed;
        continue;
      }
      end_to_end_ms.push_back(outcomes[i].intended_latency_seconds * 1e3);
      for (int st = 0; st < serve::RequestTimeline::kStageCount; ++st) {
        stage_us[st].push_back(outcomes[i].timeline.stage_seconds(st) * 1e6);
      }
    }
    const double shed_rate =
        schedule.empty() ? 0.0 : static_cast<double>(shed) / static_cast<double>(schedule.size());
    const double p50 = quantile_of(end_to_end_ms, 0.50);
    const double p95 = quantile_of(end_to_end_ms, 0.95);
    const double p99 = quantile_of(end_to_end_ms, 0.99);
    // Evaluate at the service's own telemetry clock so the verdict reads
    // the same windows the monitor recorded into.
    const auto verdict =
        service.slo()->evaluate(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now().time_since_epoch())
                                    .count());

    // Per-load-point fault-tolerance deltas (the service is shared across
    // the sweep). completed counts futures that returned a value.
    const std::size_t completed =
        outcomes.size() >= shed + ddl_shed + failed
            ? outcomes.size() - shed - ddl_shed - failed
            : 0;
    // Futures resolve inside the batch; the batch commits its counters a
    // moment later. Wait for every admitted request's commit to land so
    // the per-load-point deltas (ledger, engine split) are exact.
    const std::uint64_t settled_target =
        before.completed + before.failed + before.deadline_shed +
        static_cast<std::uint64_t>(completed + failed + ddl_shed);
    serve::ServiceStats after = service.stats();
    for (int spin = 0;
         spin < 400 && after.completed + after.failed + after.deadline_shed < settled_target;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      after = service.stats();
    }
    std::uint64_t shard_quarantines = 0;
    int quarantined_now = 0;
    for (std::size_t d = 0; d < after.per_shard.size(); ++d) {
      const std::uint64_t prev =
          d < before.per_shard.size() ? before.per_shard[d].quarantines : 0;
      shard_quarantines += after.per_shard[d].quarantines - prev;
      if (after.per_shard[d].state != 0) ++quarantined_now;
    }

    table.add_row({Table::fixed(rate, 0), std::to_string(schedule.size()),
                   std::to_string(shed), Table::fixed(shed_rate, 3),
                   std::to_string(failed), std::to_string(ddl_shed),
                   std::to_string(after.retries - before.retries), Table::fixed(p50, 2),
                   Table::fixed(p95, 2), Table::fixed(p99, 2),
                   Table::fixed(quantile_of(stage_us[4], 0.95), 0),
                   verdict.healthy ? "yes" : "NO"});

    bench::JsonRecord record("serve_slo", shards);
    record.field("rate", rate)
        .field("case_mix", stress ? "case9+case9n1+case14+case30stress"
                                  : "case9+case9n1+case14")
        .field("engine_fallback", stress)
        .field("duration_seconds", duration)
        .field("offered", static_cast<long long>(schedule.size()))
        .field("shed", static_cast<long long>(shed))
        .field("shed_rate", shed_rate)
        .field("completed", static_cast<long long>(completed))
        .field("failed", static_cast<long long>(failed))
        .field("deadline_shed", static_cast<long long>(ddl_shed))
        .field("retries", static_cast<long long>(after.retries - before.retries))
        .field("completed_admm",
               static_cast<long long>(after.completed_admm - before.completed_admm))
        .field("completed_escalated_admm",
               static_cast<long long>(after.completed_escalated_admm -
                                      before.completed_escalated_admm))
        .field("completed_ipm",
               static_cast<long long>(after.completed_ipm - before.completed_ipm))
        .field("ipm_rescues",
               static_cast<long long>(after.completed_ipm - before.completed_ipm))
        .field("ipm_attempts",
               static_cast<long long>(after.ipm_attempts - before.ipm_attempts))
        .field("ipm_failures",
               static_cast<long long>(after.ipm_failures - before.ipm_failures))
        .field("rescue_rate",
               completed > 0 ? static_cast<double>(after.completed_ipm -
                                                   before.completed_ipm) /
                                   static_cast<double>(completed)
                             : 0.0)
        .field("bisections", static_cast<long long>(after.bisections - before.bisections))
        .field("quarantine_transitions",
               static_cast<long long>(after.quarantine_transitions -
                                      before.quarantine_transitions))
        .field("shard_quarantines", static_cast<long long>(shard_quarantines))
        .field("quarantined_shards_now", static_cast<long long>(quarantined_now))
        .field("p50_ms", p50)
        .field("p95_ms", p95)
        .field("p99_ms", p99)
        .field("slo_healthy", verdict.healthy)
        .field("latency_burn_fast", verdict.latency.fast_burn)
        .field("latency_burn_slow", verdict.latency.slow_burn)
        .field("shed_burn_fast", verdict.shed.fast_burn);
    for (int st = 0; st < serve::RequestTimeline::kStageCount; ++st) {
      const std::string name = std::string("stage_") +
                               serve::RequestTimeline::stage_name(st) + "_p95_us";
      record.field(name, quantile_of(stage_us[st], 0.95));
    }
    record.emit();
  }

  if (!faults_spec.empty()) {
    const auto counters = device::FaultInjector::instance().counters();
    device::FaultInjector::instance().disable();
    std::printf("# injector: %llu events, %llu launch failures, %llu latency spikes, "
                "%llu alloc failures\n",
                static_cast<unsigned long long>(counters.events_seen),
                static_cast<unsigned long long>(counters.launch_failures),
                static_cast<unsigned long long>(counters.latency_spikes),
                static_cast<unsigned long long>(counters.alloc_failures));
  }

  std::printf("\n");
  table.print();

  if (linger > 0.0) {
    std::printf("# lingering %.1f s for external scrapers...\n", linger);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(linger));
  }
  return 0;
}
