// Ablation: adaptive penalty selection (extension implementing the paper's
// Section V future-work direction via the residual balancing of the
// adaptive ADMM [paper ref 3]). Starts from a deliberately mis-tuned
// penalty (0.1x and 10x the Table I preset) and compares fixed vs adaptive
// runs: adaptivity should recover most of the iteration count lost to the
// bad preset.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "grid/solution.hpp"
#include "opf/opf.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Ablation: fixed vs adaptive penalties");
  const std::string case_name = "1354pegase";
  const auto net = grid::make_synthetic_case(case_name);

  Table table({"preset scale", "adaptive", "iterations", "time (s)", "rescales",
               "||c(x)||inf", "objective ($/h)", "converged"});
  for (const double scale : {0.1, 1.0, 10.0}) {
    for (const bool adaptive : {false, true}) {
      auto params = admm::params_for_case(case_name, net.num_buses());
      params.rho_pq *= scale;
      params.rho_va *= scale;
      params.adaptive_rho = adaptive;
      if (!bench::full_mode()) {
        params.max_inner_iterations = 400;
        params.max_outer_iterations = 12;
      }
      admm::AdmmSolver solver(net, params);
      const auto stats = solver.solve();
      const auto quality = grid::evaluate_solution(net, solver.solution());
      table.add_row({Table::num(scale, 3), adaptive ? "yes" : "no",
                     std::to_string(stats.inner_iterations),
                     Table::fixed(stats.solve_seconds, 2), std::to_string(stats.rho_rescales),
                     Table::sci(quality.max_violation, 2), Table::fixed(quality.objective, 1),
                     stats.converged ? "yes" : "no"});
    }
  }
  table.print();
  std::printf("\nshape check: with the preset (scale 1.0) adaptive and fixed behave "
              "similarly; with mis-tuned presets the adaptive runs should recover "
              "part of the lost iterations (paper Section V motivates automatic "
              "penalty selection).\n");
  return 0;
}
