// Reproduces Figure 3: relative objective gap (%) per tracking period,
// measured against the interior-point baseline objective of the same
// period. The paper's claim: the gap stays at the cold-start level and
// drops below 1% after the first periods.
#include <cstdio>

#include "bench_tracking_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Figure 3: relative objective gap of warm start");

  const auto suite = bench::run_tracking_suite(/*run_ipm=*/true);
  for (const auto& [name, records] : suite) {
    std::printf("\n## %s\n", name.c_str());
    Table table({"period", "gap (%)", "ADMM obj ($/h)", "IPM obj ($/h)"});
    double late_worst = 0.0;
    for (const auto& rec : records) {
      table.add_row({std::to_string(rec.period), Table::fixed(100.0 * rec.relative_gap, 3),
                     Table::fixed(rec.admm_objective, 1), Table::fixed(rec.ipm_objective, 1)});
      if (rec.period > 7) late_worst = std::max(late_worst, rec.relative_gap);
    }
    table.print();
    std::printf("paper-shape check: worst gap after period 7 = %.3f%% (paper: < 1%%)\n",
                100.0 * late_worst);
  }
  return 0;
}
