// Reproduces Figure 1: cumulative computation time of warm-started solves
// over the tracking horizon, for the ADMM solver and the interior-point
// baseline. The paper's claim: ADMM warm start is dramatically cheaper per
// period, while the baseline's cumulative time grows linearly (no warm-start
// benefit).
#include <cstdio>

#include "bench_tracking_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Figure 1: cumulative computation time of warm start");

  const auto suite = bench::run_tracking_suite(/*run_ipm=*/true);
  for (const auto& [name, records] : suite) {
    std::printf("\n## %s\n", name.c_str());
    Table table({"period", "ADMM cumulative (s)", "IPM cumulative (s)", "ADMM iters"});
    double admm_cum = 0.0, ipm_cum = 0.0;
    for (const auto& rec : records) {
      admm_cum += rec.admm_seconds;
      ipm_cum += rec.ipm_seconds;
      table.add_row({std::to_string(rec.period), Table::fixed(admm_cum, 2),
                     Table::fixed(ipm_cum, 2), std::to_string(rec.admm_iterations)});
    }
    table.print();
    const double first_ipm = records.front().ipm_seconds;
    std::printf("paper-shape check: ADMM horizon total %.2f s vs IPM first period %.2f s "
                "(paper: 70k horizon < first Ipopt period)\n",
                admm_cum, first_ipm);
  }
  return 0;
}
