// Solve-service throughput: coalesced micro-batches versus per-request
// sequential solves, and the warm-start cache's iteration savings.
//
// Protocol per (case, concurrency) point:
//   1. `sequential` — N requests solved back to back with independent
//      AdmmSolver instances on a dedicated device (what a naive per-request
//      server would do).
//   2. `service-cold` — the same N requests submitted concurrently to a
//      SolveService with an empty cache; the dispatcher coalesces them into
//      fused micro-batches. Records requests/sec and total kernel launches
//      (fewer than sequential is the point of coalescing).
//   3. `service-warm` — the same loads perturbed by 1% submitted again, now
//      hitting the warm-start cache; records the cache hit rate and the
//      iteration savings versus the cold wave.
//
// One JSON record per measurement (bench_common.hpp JsonRecord), plus a
// summary table.
//
//   ./bench_serve_throughput [--cases=case9,case30] [--concurrency=8,16]
//                            [--shards=N] [--smoke] [--trace=PATH]
//
// --shards=N (or GRIDADMM_SHARDS=N) runs the service over N devices, one
// shard worker per device. --trace=PATH writes a Chrome trace-event JSON of
// the run — the request lifecycle (serve.admit / serve.queue / serve.batch
// / serve.solve / serve.fulfill) across the dispatcher, shard-worker, and
// device threads; validate with scripts/trace_check.py.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "admm/solver.hpp"
#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "grid/cases.hpp"
#include "serve/service.hpp"

namespace {

struct Wave {
  double seconds = 0.0;
  int total_inner_iterations = 0;
  int converged = 0;
  std::uint64_t cache_hits = 0;
  // Mean per-request stage times from the RequestTimeline (microseconds):
  // queue = admit->worker pickup, solve = batch form through solve, extract
  // = result extraction through fulfillment.
  double stage_queue_us = 0.0;
  double stage_solve_us = 0.0;
  double stage_extract_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gridadmm;
  using bench::split_csv;
  const Options opts(argc, argv);
  const bool smoke = bench::smoke_mode(opts);
  std::printf("# Serve throughput: coalescing service vs per-request solves%s\n",
              smoke ? " — SMOKE mode" : "");

  const auto case_names = split_csv(opts.get("cases", smoke ? "case9" : "case9,case30"));
  std::vector<int> concurrencies;
  for (const auto& c : split_csv(opts.get("concurrency", smoke ? "8" : "8,16"))) {
    concurrencies.push_back(std::stoi(c));
  }
  const int shards = std::max(1, opts.get_int("shards", bench::env_int("GRIDADMM_SHARDS", 1)));
  const bench::TraceGuard trace_guard(opts);

  Table table({"case", "N", "seq (s)", "service (s)", "req/s", "seq launches",
               "svc launches", "warm hit rate", "iter savings"});
  for (const auto& case_name : case_names) {
    const auto net = grid::load_case(case_name);
    const auto params = admm::params_for_case(case_name, net.num_buses());
    std::vector<double> base_pd, base_qd;
    for (const auto& bus : net.buses) {
      base_pd.push_back(bus.pd);
      base_qd.push_back(bus.qd);
    }
    auto loads_at = [&](int i, int n, double perturb) {
      const double f = perturb * (0.94 + 0.12 * i / std::max(1, n - 1));
      std::pair<std::vector<double>, std::vector<double>> loads{base_pd, base_qd};
      for (double& v : loads.first) v *= f;
      for (double& v : loads.second) v *= f;
      return loads;
    };

    for (const int n : concurrencies) {
      // ---- 1. per-request sequential baseline ----
      device::Device sequential_device;
      Wave sequential;
      {
        WallTimer timer;
        for (int i = 0; i < n; ++i) {
          admm::AdmmSolver solver(net, params, &sequential_device);
          auto [pd, qd] = loads_at(i, n, 1.0);
          solver.set_loads(pd, qd);
          const auto stats = solver.solve();
          sequential.total_inner_iterations += stats.inner_iterations;
          sequential.converged += stats.converged ? 1 : 0;
        }
        sequential.seconds = timer.seconds();
      }
      const auto sequential_launches = sequential_device.stats().launches;

      // ---- 2 + 3. coalescing service, cold wave then warm wave ----
      serve::ServiceOptions service_options;
      service_options.max_batch_size = n;
      service_options.batching_window_seconds = 0.05;
      service_options.cache.capacity = 2 * n;
      service_options.num_devices = shards;
      service_options.slo = true;  // per-request stage timelines for the breakdown
      serve::SolveService service(net, params, service_options);

      auto run_wave = [&](double perturb) {
        Wave wave;
        const auto hits_before = service.stats().cache_hits;
        WallTimer timer;
        std::vector<std::future<serve::SolveResult>> futures;
        futures.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          serve::SolveRequest request;
          auto [pd, qd] = loads_at(i, n, perturb);
          request.pd = std::move(pd);
          request.qd = std::move(qd);
          futures.push_back(service.submit(std::move(request)));
        }
        for (auto& future : futures) {
          const auto result = future.get();
          wave.total_inner_iterations += result.stats.inner_iterations;
          wave.converged += result.converged ? 1 : 0;
          const auto& tl = result.timeline;
          wave.stage_queue_us += (tl.stage_seconds(0) + tl.stage_seconds(1)) * 1e6;
          wave.stage_solve_us +=
              (tl.stage_seconds(2) + tl.stage_seconds(3) + tl.stage_seconds(4)) * 1e6;
          wave.stage_extract_us += (tl.stage_seconds(5) + tl.stage_seconds(6)) * 1e6;
        }
        if (n > 0) {
          wave.stage_queue_us /= n;
          wave.stage_solve_us /= n;
          wave.stage_extract_us /= n;
        }
        wave.seconds = timer.seconds();
        wave.cache_hits = service.stats().cache_hits - hits_before;
        return wave;
      };

      const Wave cold = run_wave(1.0);
      const auto cold_launches = service.stats().launch_stats.launches;
      const Wave warm = run_wave(1.01);
      service.drain();
      const auto stats = service.stats();

      const double requests_per_second = cold.seconds > 0.0 ? n / cold.seconds : 0.0;
      const double hit_rate = n > 0 ? static_cast<double>(warm.cache_hits) / n : 0.0;
      const double iteration_savings =
          cold.total_inner_iterations > 0
              ? 1.0 - static_cast<double>(warm.total_inner_iterations) /
                          cold.total_inner_iterations
              : 0.0;

      table.add_row({case_name, std::to_string(n), Table::fixed(sequential.seconds, 3),
                     Table::fixed(cold.seconds, 3), Table::fixed(requests_per_second, 1),
                     std::to_string(sequential_launches),
                     std::to_string(cold_launches), Table::fixed(hit_rate, 2),
                     Table::fixed(iteration_savings, 2)});

      bench::JsonRecord seq_record("serve_throughput");
      seq_record.field("case", case_name)
          .field("concurrency", n)
          .field("engine", "sequential")
          .field("seconds", sequential.seconds)
          .field("launches", static_cast<long long>(sequential_launches))
          .field("inner_iterations", sequential.total_inner_iterations)
          .field("converged", sequential.converged);
      seq_record.emit();

      bench::JsonRecord cold_record("serve_throughput", shards);
      cold_record.field("case", case_name)
          .field("concurrency", n)
          .field("engine", "service-cold")
          .field("seconds", cold.seconds)
          .field("launches", static_cast<long long>(cold_launches))
          .field("requests_per_second", requests_per_second)
          .field("mean_batch_occupancy", stats.mean_batch_occupancy())
          .field("stage_queue_us", cold.stage_queue_us)
          .field("stage_solve_us", cold.stage_solve_us)
          .field("stage_extract_us", cold.stage_extract_us)
          .field("inner_iterations", cold.total_inner_iterations)
          .field("converged", cold.converged);
      cold_record.emit();

      bench::JsonRecord warm_record("serve_throughput", shards);
      warm_record.field("case", case_name)
          .field("concurrency", n)
          .field("engine", "service-warm")
          .field("seconds", warm.seconds)
          .field("cache_hit_rate", hit_rate)
          .field("inner_iterations", warm.total_inner_iterations)
          .field("iteration_savings", iteration_savings)
          .field("p50_latency", stats.p50_latency)
          .field("p95_latency", stats.p95_latency)
          .field("p99_latency", stats.p99_latency)
          .field("converged", warm.converged);
      warm_record.emit();
    }
  }
  std::printf("\n");
  table.print();
  return 0;
}
