// Shared tracking run for Figures 1-3: one 30-period warm-start horizon per
// case; each figure harness prints a different column of the same records.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "opf/tracking.hpp"

namespace gridadmm::bench {

inline std::map<std::string, std::vector<opf::PeriodRecord>> run_tracking_suite(bool run_ipm) {
  std::map<std::string, std::vector<opf::PeriodRecord>> results;
  for (const auto& name : tracking_cases()) {
    std::fprintf(stderr, "  tracking %s over %d periods...\n", name.c_str(), tracking_periods());
    const auto net = grid::make_synthetic_case(name);
    auto params = admm::params_for_case(name, net.num_buses());
    if (!full_mode()) {
      params.max_inner_iterations = 1000;
      params.max_outer_iterations = 12;
    }
    opf::TrackingOptions options;
    options.periods = tracking_periods();
    options.run_ipm = run_ipm;
    if (!full_mode()) options.ipm.max_iterations = 200;
    opf::TrackingSimulator sim(net, params, options);
    results[name] = sim.run();
  }
  return results;
}

}  // namespace gridadmm::bench
