// Reproduces Figure 2: maximum constraint violation per tracking period.
// The paper's claim: warm-started solution quality stays at the cold-start
// level (no deterioration over the horizon).
#include <cstdio>

#include "bench_tracking_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Figure 2: maximum constraint violation of warm start");

  const auto suite = bench::run_tracking_suite(/*run_ipm=*/false);
  for (const auto& [name, records] : suite) {
    std::printf("\n## %s\n", name.c_str());
    Table table({"period", "max violation", "converged"});
    double first = 0.0, worst = 0.0;
    for (const auto& rec : records) {
      if (rec.period == 1) first = rec.admm_violation;
      worst = std::max(worst, rec.admm_violation);
      table.add_row({std::to_string(rec.period), Table::sci(rec.admm_violation, 2),
                     rec.admm_converged ? "yes" : "no"});
    }
    table.print();
    std::printf("paper-shape check: worst violation %.2e vs cold-start %.2e "
                "(paper: no significant deterioration)\n",
                worst, first);
  }
  return 0;
}
