// Reproduces Table II: cold-start performance of the GPU-style ADMM solver
// versus the interior-point baseline — per case: cumulative ADMM inner
// iterations, wall-clock time for both solvers, the maximum constraint
// violation ||c(x)||_inf of the ADMM solution, and its relative objective
// gap versus the baseline objective f*.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "grid/solution.hpp"
#include "opf/opf.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Table II: performance of solving ACOPF from cold start");

  Table table({"Data", "ADMM Iterations", "ADMM (s)", "IPM (s)", "||c(x)||inf", "|f-f*|/f* (%)"});
  for (const auto& budget : bench::paper_cases()) {
    std::fprintf(stderr, "  running %s...\n", budget.name.c_str());
    const auto net = grid::make_synthetic_case(budget.name);
    const auto params = bench::budgeted_params(budget, net.num_buses());
    const auto admm_report = opf::solve_with_admm(net, params);

    double ipm_seconds = 0.0;
    double gap = -1.0;
    if (budget.run_ipm) {
      ipm::IpmOptions ipm_options;
      ipm_options.max_iterations = budget.ipm_max_iterations;
      const auto ipm_report = opf::solve_with_ipm(net, ipm_options);
      ipm_seconds = ipm_report.seconds;
      if (ipm_report.converged) {
        gap = grid::relative_gap(admm_report.quality.objective, ipm_report.quality.objective);
      }
    }
    table.add_row({budget.name, std::to_string(admm_report.iterations),
                   Table::fixed(admm_report.seconds, 2), Table::fixed(ipm_seconds, 2),
                   Table::sci(admm_report.quality.max_violation, 2),
                   gap >= 0.0 ? Table::fixed(100.0 * gap, 2) : std::string("n/a")});
  }
  table.print();
  std::printf("\nPaper reference (Table II, GV100 vs Xeon 6140):\n"
              "  1354pegase  823   1.99  2.44   1.23e-03 0.05%%\n"
              "  2869pegase  1,230 4.19  6.09   3.64e-04 0.03%%\n"
              "  9241pegase  1,372 7.95  50.80  1.12e-03 0.08%%\n"
              "  13659pegase 1,529 8.70  131.12 1.25e-03 0.05%%\n"
              "  ACTIVSg25k  3,307 36.05 118.64 1.21e-02 0.09%%\n"
              "  ACTIVSg70k  2,897 69.81 469.03 1.52e-02 2.20%%\n");
  return 0;
}
