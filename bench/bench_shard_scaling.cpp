// Shard-scaling harness: batched multi-scenario throughput versus device
// count on the synthetic 1354-bus case (Table I's smallest entry).
//
// For each shard count D the same scenario set is solved by a
// BatchAdmmSolver over a D-device pool (hardware workers split evenly
// across the pool, so total parallelism is held fixed while the work is
// dealt across devices). Reports scenarios/second, aggregate and per-shard
// kernel launches, and per-shard block shares — on real hardware the
// per-shard block count tracks each GPU's occupancy, so ~S/D shares are
// the portable figure of merit for the sharding win.
//
//   ./bench_shard_scaling [--case=1354pegase] [--shards=1,2,4]
//                         [--scenarios=16] [--smoke]
//
// The default shard sweep is 1/GRIDADMM_SHARDS/4 (1/GRIDADMM_SHARDS in
// smoke mode), so the CI sharded-smoke job pins the pool size via env.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "device/pool.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/scenario_set.hpp"

int main(int argc, char** argv) {
  using namespace gridadmm;
  using bench::split_csv;
  const Options opts(argc, argv);
  const bool smoke = bench::smoke_mode(opts);
  bench::print_mode_banner("Shard scaling: fused batch solve across a DevicePool");

  const std::string case_name = opts.get("case", smoke ? "case9" : "1354pegase");
  const int num_scenarios = opts.get_int("scenarios", smoke ? 8 : 16);
  // Default sweep: 1 / env-pinned / 4 shards, clamped positive and
  // deduplicated so a GRIDADMM_SHARDS of 0, 1, or 4 cannot abort the run
  // or emit duplicate records.
  std::vector<int> shard_counts;
  const std::string env_shards = std::to_string(std::max(1, bench::env_int("GRIDADMM_SHARDS", 2)));
  const std::string default_shards =
      smoke ? "1," + env_shards : "1," + env_shards + ",4";
  for (const auto& d : split_csv(opts.get("shards", default_shards))) {
    const int count = std::max(1, std::stoi(d));
    if (std::find(shard_counts.begin(), shard_counts.end(), count) == shard_counts.end()) {
      shard_counts.push_back(count);
    }
  }

  const auto net = grid::load_case(case_name);
  auto params = admm::params_for_case(case_name, net.num_buses());
  if (smoke) {
    // Seconds-scale smoke budget: enough iterations for the qualitative
    // shard-scaling shape (launch/block attribution, ~S/D shares), not the
    // paper protocol's converged accuracy.
    params.max_inner_iterations = 300;
    params.max_outer_iterations = 3;
  }
  scenario::ScenarioSet set(net);
  set.add_load_scale(num_scenarios, smoke ? 0.98 : 0.94, smoke ? 1.02 : 1.06);

  Table table({"case", "S", "shards", "solve (s)", "scen/s", "launches", "blocks",
               "max shard blocks", "min shard blocks"});
  for (const int shards : shard_counts) {
    device::DevicePool pool(shards);
    scenario::BatchAdmmSolver solver(set, params, pool);
    const auto report = solver.solve();

    std::uint64_t max_blocks = 0;
    std::uint64_t min_blocks = report.launch_stats.blocks;
    for (const auto& shard : report.shard_launches) {
      max_blocks = std::max(max_blocks, shard.blocks);
      min_blocks = std::min(min_blocks, shard.blocks);
    }
    table.add_row({case_name, std::to_string(num_scenarios), std::to_string(shards),
                   Table::fixed(report.solve_seconds, 3),
                   Table::fixed(report.scenarios_per_second(), 1),
                   std::to_string(report.launch_stats.launches),
                   std::to_string(report.launch_stats.blocks), std::to_string(max_blocks),
                   std::to_string(min_blocks)});

    bench::JsonRecord record("shard_scaling", shards,
                             shards * pool.device(0).workers());
    record.field("case", case_name)
        .field("S", num_scenarios)
        .field("solve_seconds", report.solve_seconds)
        .field("scenarios_per_second", report.scenarios_per_second())
        .field("launches", static_cast<long long>(report.launch_stats.launches))
        .field("blocks", static_cast<long long>(report.launch_stats.blocks))
        .field("max_shard_blocks", static_cast<long long>(max_blocks))
        .field("min_shard_blocks", static_cast<long long>(min_blocks))
        .field("converged", report.num_converged());
    record.emit();
  }
  std::printf("\n");
  table.print();
  return 0;
}
