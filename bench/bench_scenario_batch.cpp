// Batched versus sequential multi-scenario solve: wall time, kernel
// launches, and scenarios/second across batch sizes S in {1, 4, 16, 64} on
// case9 and case30 load-scale scenarios, with the batched engine measured
// in both batch memory layouts (scenario-major and interleaved). Emits one
// JSON record per (case, S, engine, layout) measurement (bench_common.hpp
// JsonRecord format) plus a summary table.
//
//   ./bench_scenario_batch [--cases=case9,case30] [--sizes=1,4,16,64]
//                          [--layouts=scenario_major,interleaved]
//                          [--branch-packs=1,8] [--shards=N] [--smoke]
//                          [--trace=PATH]
//
// --shards=N (or GRIDADMM_SHARDS=N) runs the batched engine over an
// N-device pool instead of one device; the sequential baseline always runs
// on a single device. --branch-packs sweeps the TRON branch phase's pack
// factor (scenario::BatchSolveOptions::branch_pack); every record carries
// its branch_pack, and results are bit-identical across the sweep, so only
// throughput should move. --trace=PATH writes a Chrome trace-event JSON of
// the run (fused-phase, wave, and device-launch spans; open in Perfetto,
// validate with scripts/trace_check.py).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "device/pool.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/scenario_set.hpp"

int main(int argc, char** argv) {
  using namespace gridadmm;
  using bench::split_csv;
  const Options opts(argc, argv);
  const bool smoke = bench::smoke_mode(opts);
  bench::print_mode_banner("Scenario batch: fused vs sequential multi-scenario solve");

  const auto case_names = split_csv(opts.get("cases", smoke ? "case9" : "case9,case30"));
  std::vector<int> sizes;
  for (const auto& s : split_csv(opts.get("sizes", smoke ? "1,8" : "1,4,16,64"))) {
    sizes.push_back(std::stoi(s));
  }
  std::vector<admm::BatchLayout> layouts;
  for (const auto& name : split_csv(opts.get("layouts", "scenario_major,interleaved"))) {
    layouts.push_back(admm::layout_from_name(name));
  }
  std::vector<int> branch_packs;
  for (const auto& s : split_csv(opts.get("branch-packs", "1"))) {
    branch_packs.push_back(std::max(1, std::stoi(s)));
  }
  const int shards = std::max(1, opts.get_int("shards", bench::env_int("GRIDADMM_SHARDS", 1)));
  const bench::TraceGuard trace_guard(opts);
  std::unique_ptr<device::DevicePool> pool;
  if (shards > 1) pool = std::make_unique<device::DevicePool>(shards);
  // Actual worker parallelism behind the batched engine: the pool splits
  // the machine's workers across its devices (0 = default single device).
  const int batch_workers = pool != nullptr ? shards * pool->device(0).workers() : 0;

  Table table({"case", "S", "layout", "pack", "seq (s)", "batch (s)", "speedup",
               "seq launches", "batch launches", "batch scen/s"});
  for (const auto& case_name : case_names) {
    const auto net = grid::load_case(case_name);
    const auto params = admm::params_for_case(case_name, net.num_buses());
    for (const int S : sizes) {
      scenario::ScenarioSet set(net);
      set.add_load_scale(S, 0.92, 1.08);

      const auto sequential = scenario::solve_sequential(set, params);
      {
        bench::JsonRecord record("scenario_batch", 1, 0);
        record.field("case", case_name)
            .field("S", S)
            .field("engine", "sequential")
            .field("layout", "none")
            .field("solve_seconds", sequential.solve_seconds)
            .field("launches", static_cast<long long>(sequential.launch_stats.launches))
            .field("blocks", static_cast<long long>(sequential.launch_stats.blocks))
            .field("converged", sequential.num_converged())
            .field("scenarios_per_second", sequential.scenarios_per_second());
        record.emit();
      }

      for (const auto layout : layouts) {
        for (const int pack : branch_packs) {
          auto solver = pool != nullptr
                            ? std::make_unique<scenario::BatchAdmmSolver>(set, params, *pool)
                            : std::make_unique<scenario::BatchAdmmSolver>(set, params);
          scenario::BatchSolveOptions options;
          options.layout = layout;
          options.branch_pack = pack;
          const auto batched = solver->solve(options);

          const double speedup = batched.solve_seconds > 0.0
                                     ? sequential.solve_seconds / batched.solve_seconds
                                     : 0.0;
          table.add_row({case_name, std::to_string(S), admm::layout_name(layout),
                         std::to_string(pack), Table::fixed(sequential.solve_seconds, 3),
                         Table::fixed(batched.solve_seconds, 3), Table::fixed(speedup, 2),
                         std::to_string(sequential.launch_stats.launches),
                         std::to_string(batched.launch_stats.launches),
                         Table::fixed(batched.scenarios_per_second(), 1)});

          bench::JsonRecord record("scenario_batch", batched.num_shards, batch_workers);
          record.field("case", case_name)
              .field("S", S)
              .field("engine", "batched")
              .field("layout", admm::layout_name(layout))
              .field("branch_pack", pack)
              .field("solve_seconds", batched.solve_seconds)
              .field("launches", static_cast<long long>(batched.launch_stats.launches))
              .field("blocks", static_cast<long long>(batched.launch_stats.blocks))
              .field("converged", batched.num_converged())
              .field("scenarios_per_second", batched.scenarios_per_second())
              .field("iters_per_step",
                     batched.fused_steps > 0
                         ? static_cast<double>(batched.branch.tron_iterations) /
                               static_cast<double>(batched.fused_steps)
                         : 0.0);
          record.emit();
        }
      }
    }
  }
  std::printf("\n");
  table.print();
  return 0;
}
