// Per-phase kernel breakdown of the fused batch solve, by batch layout and
// branch solver path.
//
// Runs real BatchAdmmSolver solves (load-scale scenario sets) at
// S in {16, 64, 256} in both memory layouts and reports where each fused
// iteration's time goes, phase by phase: generator / branch / bus / zy
// launches, host-side residual collection (+ tile packing + control flow),
// outer-transition launches, and warm-start chain copies. PR 4's data
// showed the TRON branch phase at ~90% of fused-step time, so this harness
// now also attributes *within* the branch phase: every record carries the
// branch solver path (fixed-dimension devirtualized fast path vs the
// generic TronSolver) and the branch-pack factor, and the per-(config)
// summary adds the TRON work counters — tron / CG / augmented-Lagrangian
// iterations and objective evaluations per fused step — so a branch-phase
// regression can be split into "more TRON work" vs "slower TRON work".
//
//   ./bench_kernel_breakdown [--cases=case9,case30] [--sizes=16,64,256]
//                            [--layouts=scenario_major,interleaved]
//                            [--paths=fixed,generic] [--branch-pack=1]
//                            [--smoke] [--trace=PATH]
//
// Emits one JsonRecord per (case, S, layout, path, phase): total seconds,
// microseconds per fused step, and the phase's share of the loop — plus a
// per-(case, S, layout, path) summary record with end-to-end scen/s and the
// TRON sub-attribution, so branch-path wins are attributable without
// joining against bench_scenario_batch.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/scenario_set.hpp"

namespace {

struct Phase {
  const char* name;
  double seconds;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gridadmm;
  using bench::split_csv;
  const Options opts(argc, argv);
  const bool smoke = bench::smoke_mode(opts);
  bench::print_mode_banner("Kernel breakdown: per-phase fused-iteration time by batch layout");

  const auto case_names = split_csv(opts.get("cases", smoke ? "case9" : "case9,case30"));
  std::vector<int> sizes;
  for (const auto& s : split_csv(opts.get("sizes", smoke ? "16,64" : "16,64,256"))) {
    sizes.push_back(std::stoi(s));
  }
  std::vector<admm::BatchLayout> layouts;
  for (const auto& name : split_csv(opts.get("layouts", "scenario_major,interleaved"))) {
    layouts.push_back(admm::layout_from_name(name));
  }
  std::vector<admm::BranchSolverPath> paths;
  for (const auto& name : split_csv(opts.get("paths", "fixed,generic"))) {
    paths.push_back(admm::branch_path_from_name(name));
  }
  const int branch_pack = opts.get_int("branch-pack", 1);
  const bench::TraceGuard trace_guard(opts);

  Table table({"case", "S", "layout", "path", "steps", "branch us/it", "tron it/step",
               "cg it/step", "evals/step", "scen/s"});
  for (const auto& case_name : case_names) {
    const auto net = grid::load_case(case_name);
    for (const int S : sizes) {
      scenario::ScenarioSet set(net);
      set.add_load_scale(S, 0.92, 1.08);
      for (const auto layout : layouts) {
        for (const auto path : paths) {
          auto params = admm::params_for_case(case_name, net.num_buses());
          params.branch_solver = path;
          scenario::BatchAdmmSolver solver(set, params);
          scenario::BatchSolveOptions options;
          options.layout = layout;
          options.branch_pack = branch_pack;
          const auto report = solver.solve(options);

          const auto& p = report.phases;
          const double loop_total = p.generator_seconds + p.branch_seconds + p.bus_seconds +
                                    p.zy_seconds + p.residual_seconds + p.outer_seconds +
                                    p.chain_seconds;
          const auto steps =
              static_cast<double>(report.fused_steps > 0 ? report.fused_steps : 1);
          const auto per_step = [&](double total) { return total / steps; };
          const auto us_per_step = [&](double seconds) { return 1e6 * seconds / steps; };
          const Phase phases[] = {
              {"generator", p.generator_seconds}, {"branch", p.branch_seconds},
              {"bus", p.bus_seconds},             {"zy", p.zy_seconds},
              {"residual", p.residual_seconds},   {"outer", p.outer_seconds},
              {"chain", p.chain_seconds},
          };
          for (const Phase& phase : phases) {
            bench::JsonRecord record("kernel_breakdown", report.num_shards);
            record.field("case", case_name)
                .field("S", S)
                .field("layout", admm::layout_name(layout))
                .field("solver_path", admm::branch_path_name(path))
                .field("branch_pack", branch_pack)
                .field("phase", phase.name)
                .field("seconds", phase.seconds)
                .field("us_per_step", us_per_step(phase.seconds))
                .field("share", loop_total > 0.0 ? phase.seconds / loop_total : 0.0)
                .field("fused_steps", static_cast<long long>(report.fused_steps));
            record.emit();
          }
          bench::JsonRecord summary("kernel_breakdown", report.num_shards);
          summary.field("case", case_name)
              .field("S", S)
              .field("layout", admm::layout_name(layout))
              .field("solver_path", admm::branch_path_name(path))
              .field("branch_pack", branch_pack)
              .field("phase", "total")
              .field("seconds", loop_total)
              .field("us_per_step", us_per_step(loop_total))
              .field("share", 1.0)
              .field("fused_steps", static_cast<long long>(report.fused_steps))
              .field("solve_seconds", report.solve_seconds)
              .field("launches", static_cast<long long>(report.launch_stats.launches))
              .field("blocks", static_cast<long long>(report.launch_stats.blocks))
              // TRON sub-attribution: work per fused step inside the branch
              // phase (identical across paths when the fast path is
              // bit-identical; only us_per_step should move).
              .field("iters_per_step", per_step(report.branch.tron_iterations))
              .field("tron_iters_per_step", per_step(report.branch.tron_iterations))
              .field("cg_iters_per_step", per_step(report.branch.cg_iterations))
              .field("auglag_iters_per_step", per_step(report.branch.auglag_iterations))
              .field("evals_per_step", per_step(report.branch.function_evals))
              .field("branch_us_per_step", us_per_step(p.branch_seconds))
              .field("branch_share", loop_total > 0.0 ? p.branch_seconds / loop_total : 0.0)
              .field("scenarios_per_second", report.scenarios_per_second());
          summary.emit();

          table.add_row({case_name, std::to_string(S), admm::layout_name(layout),
                         admm::branch_path_name(path), std::to_string(report.fused_steps),
                         Table::fixed(us_per_step(p.branch_seconds), 1),
                         Table::fixed(per_step(report.branch.tron_iterations), 1),
                         Table::fixed(per_step(report.branch.cg_iterations), 1),
                         Table::fixed(per_step(report.branch.function_evals), 1),
                         Table::fixed(report.scenarios_per_second(), 1)});
        }
      }
    }
  }
  std::printf("\n");
  table.print();
  return 0;
}
