// Ablation: sensitivity of ADMM convergence to the penalty parameters
// (paper Section V: "penalty terms of the ADMM algorithm could
// significantly affect its computation time until convergence").
// Sweeps rho over multiples of the Table I preset on one case and reports
// iterations, time, and solution quality.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "grid/solution.hpp"
#include "opf/opf.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Ablation: penalty parameter sweep");
  const std::string case_name = bench::full_mode() ? "2869pegase" : "1354pegase";
  const auto net = grid::make_synthetic_case(case_name);
  std::printf("case: %s\n\n", case_name.c_str());

  Table table({"rho scale", "rho_pq", "rho_va", "iterations", "time (s)", "||c(x)||inf",
               "objective ($/h)", "converged"});
  const double scales[] = {0.1, 0.3, 1.0, 3.0, 10.0};
  for (const double scale : scales) {
    auto params = admm::params_for_case(case_name, net.num_buses());
    params.rho_pq *= scale;
    params.rho_va *= scale;
    if (!bench::full_mode()) {
      params.max_inner_iterations = 600;
      params.max_outer_iterations = 12;
    }
    const auto report = opf::solve_with_admm(net, params);
    table.add_row({Table::num(scale, 3), Table::sci(params.rho_pq, 1),
                   Table::sci(params.rho_va, 1), std::to_string(report.iterations),
                   Table::fixed(report.seconds, 2), Table::sci(report.quality.max_violation, 2),
                   Table::fixed(report.quality.objective, 1), report.converged ? "yes" : "no"});
  }
  table.print();
  std::printf("\nshape check: the preset (scale 1.0) should be at or near the iteration "
              "minimum; far-off penalties need more iterations or fail the budget.\n");
  return 0;
}
