// Ablation: the paper's two-level (convergence-guaranteed) ADMM versus the
// plain one-level component ADMM of Mhanna et al. [3] that it builds on
// (paper Section II-B/II-C). Reports iterations, quality, and the final
// z-residual trace that only the two-level variant drives to zero.
#include <cstdio>

#include "admm/one_level.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Ablation: two-level vs one-level ADMM");
  const std::string case_name = "1354pegase";
  const auto net = grid::make_synthetic_case(case_name);
  auto params = admm::params_for_case(case_name, net.num_buses());
  if (!bench::full_mode()) {
    params.max_inner_iterations = 600;
    params.max_outer_iterations = 12;
  }

  const auto runs = admm::compare_variants(net, params);
  Table table({"variant", "inner iters", "outer iters", "time (s)", "primal res", "dual res",
               "||z||inf", "||c(x)||inf", "objective ($/h)"});
  for (const auto& run : runs) {
    table.add_row({run.variant, std::to_string(run.stats.inner_iterations),
                   std::to_string(run.stats.outer_iterations),
                   Table::fixed(run.stats.solve_seconds, 2),
                   Table::sci(run.stats.primal_residual, 2),
                   Table::sci(run.stats.dual_residual, 2),
                   run.variant == "two-level" ? Table::sci(run.stats.z_norm, 2)
                                              : std::string("n/a"),
                   Table::sci(run.max_violation, 2), Table::fixed(run.objective, 1)});
  }
  table.print();
  std::printf("\nshape check: both reach similar objectives; the two-level variant also "
              "drives ||z|| to ~0, which is what certifies convergence (Section II-D).\n");
  return 0;
}
