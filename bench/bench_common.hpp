// Shared helpers for the paper-reproduction benchmark harnesses.
//
// A GV100 runs the ADMM kernels 1-2 orders of magnitude faster than a CPU
// worker pool, so by default every harness runs a reduced protocol chosen
// to finish in minutes while preserving the paper's qualitative shape
// (who wins, by what factor, how warm start behaves). Set GRIDADMM_FULL=1
// for the full Table I case list and full iteration budgets.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "admm/params.hpp"
#include "common/options.hpp"
#include "device/device.hpp"
#include "grid/cases.hpp"
#include "grid/synthetic.hpp"
#include "obs/trace.hpp"

namespace gridadmm::bench {

struct CaseBudget {
  std::string name;
  int max_inner = 1000;     ///< ADMM inner iterations per outer
  int max_outer = 20;
  int ipm_max_iterations = 300;
  bool run_ipm = true;
};

inline bool full_mode() { return Options::env_flag("GRIDADMM_FULL"); }

/// CI smoke mode (`--smoke` or GRIDADMM_SMOKE=1): shrink the protocol to
/// seconds so every harness can run on every push and its JSON records can
/// be archived as workflow artifacts. Smoke numbers validate that the
/// harness runs and the qualitative ordering holds — they are not the
/// paper protocol.
inline bool smoke_mode(const Options& opts) {
  return opts.get_bool("smoke", false) || Options::env_flag("GRIDADMM_SMOKE");
}

/// The Table II / Figure case list. Reduced mode trims the case list and
/// iteration budgets so the whole harness finishes quickly on a CPU.
inline std::vector<CaseBudget> paper_cases() {
  if (full_mode()) {
    return {
        {"1354pegase", 1000, 20, 500, true},  {"2869pegase", 1000, 20, 500, true},
        {"9241pegase", 1000, 20, 500, true},  {"13659pegase", 1000, 20, 500, true},
        {"ACTIVSg25k", 1000, 20, 500, true},  {"ACTIVSg70k", 1000, 20, 500, true},
    };
  }
  // Reduced protocol: measured on a 24-core box, roughly 10 s + 7 s (1354),
  // 13 s + 115 s (2869), 60 s (9241, ADMM only: the baseline needs several
  // minutes per factorization-bound run at this size).
  return {
      {"1354pegase", 1000, 20, 300, true},
      {"2869pegase", 1000, 20, 300, true},
      {"9241pegase", 600, 12, 200, false},
  };
}

/// Cases used by the tracking figures (1-3).
inline std::vector<std::string> tracking_cases() {
  if (full_mode()) {
    return {"1354pegase", "2869pegase", "9241pegase", "13659pegase", "ACTIVSg25k", "ACTIVSg70k"};
  }
  return {"1354pegase"};
}

inline int tracking_periods() { return full_mode() ? 30 : 10; }

/// Integer environment knob (e.g. GRIDADMM_SHARDS for the CI sharded-smoke
/// job); returns `fallback` when unset or unparsable.
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

/// Splits a --key=a,b,c option value (empty items dropped).
inline std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// `--trace=PATH` support for the bench harnesses: enables the process
/// tracer at construction and flushes the Chrome trace-event JSON to PATH
/// at scope exit (validate with scripts/trace_check.py, open in Perfetto).
/// Inert when the option is absent. Construct it before the measured work
/// so every span of the run lands in the file.
class TraceGuard {
 public:
  explicit TraceGuard(const Options& opts) : path_(opts.get("trace", "")) {
    if (!path_.empty()) obs::Tracer::instance().enable();
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;
  ~TraceGuard() {
    if (path_.empty()) return;
    if (obs::Tracer::instance().write_file(path_)) {
      std::fprintf(stderr, "# trace written to %s (%zu events, %llu dropped)\n", path_.c_str(),
                   obs::Tracer::instance().event_count(),
                   static_cast<unsigned long long>(obs::Tracer::instance().dropped()));
    } else {
      std::fprintf(stderr, "# trace write FAILED: %s\n", path_.c_str());
    }
  }

 private:
  std::string path_;
};

inline void print_mode_banner(const char* what) {
  std::printf("# %s — %s mode (set GRIDADMM_FULL=1 for the full paper protocol)\n", what,
              full_mode() ? "FULL" : "reduced");
}

inline admm::AdmmParams budgeted_params(const CaseBudget& budget, int num_buses) {
  auto params = admm::params_for_case(budget.name, num_buses);
  params.max_inner_iterations = budget.max_inner;
  params.max_outer_iterations = budget.max_outer;
  return params;
}

/// One machine-readable result record: a single-line JSON object
/// `{"bench": <name>, "workers": W, "shards": D, <key>: <value>, ...}` on
/// stdout, one per measurement, so harness output can be collected with
/// grep + jq. Every record carries the machine's worker parallelism and
/// the device/shard count of the measurement, so BENCH_*.jsonl
/// trajectories stay comparable across machines and shard configs.
class JsonRecord {
 public:
  /// `shards` is the device count of the measurement (1 = single device);
  /// `workers` the total worker-thread parallelism backing it (0 = the
  /// machine's hardware concurrency, the default every Device uses).
  explicit JsonRecord(const std::string& bench, int shards = 1, int workers = 0) {
    line_ = "{\"bench\": \"" + bench + "\"";
    field("workers", workers > 0 ? workers : device::default_worker_count());
    field("shards", shards);
  }
  JsonRecord& field(const std::string& key, const std::string& value) {
    line_ += ", \"" + key + "\": \"" + escaped(value) + "\"";
    return *this;
  }
  /// Without this overload a string literal would convert to bool.
  JsonRecord& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonRecord& field(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    line_ += ", \"" + key + "\": " + buf;
    return *this;
  }
  JsonRecord& field(const std::string& key, long long value) {
    line_ += ", \"" + key + "\": " + std::to_string(value);
    return *this;
  }
  JsonRecord& field(const std::string& key, int value) {
    return field(key, static_cast<long long>(value));
  }
  JsonRecord& field(const std::string& key, bool value) {
    line_ += ", \"" + key + "\": " + (value ? "true" : "false");
    return *this;
  }
  /// Prints the record and terminates the line.
  void emit() const { std::printf("%s}\n", line_.c_str()); }

 private:
  static std::string escaped(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string line_;
};

}  // namespace gridadmm::bench
