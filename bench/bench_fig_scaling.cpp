// Scaling study backing the paper's Section III claim that component
// kernels are massively parallel: throughput of the generator / bus /
// branch updates versus simulated-GPU worker count, via google-benchmark.
// On a real GV100 the "workers" axis is thousands of CUDA blocks; here it
// is CPU lanes, so the *scaling shape* (near-linear for branch updates,
// launch-overhead-bound for the tiny closed-form kernels) is the result.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "admm/bus_kernel.hpp"
#include "admm/generator_kernel.hpp"
#include "admm/solver.hpp"
#include "admm/zy_kernel.hpp"
#include "grid/synthetic.hpp"

namespace {

using namespace gridadmm;

struct KernelFixture {
  grid::Network net;
  admm::AdmmParams params;
  std::unique_ptr<admm::AdmmSolver> solver;
  std::unique_ptr<device::Device> dev;

  explicit KernelFixture(int workers)
      : net(grid::make_synthetic_case("1354pegase")),
        params(admm::params_for_case("1354pegase", net.num_buses())) {
    dev = std::make_unique<device::Device>(workers);
    params.max_inner_iterations = 4;  // keep state realistic but cheap
    params.max_outer_iterations = 1;
    solver = std::make_unique<admm::AdmmSolver>(net, params, dev.get());
    solver->solve();  // a few iterations to move off the cold-start point
  }
};

KernelFixture& fixture_for(int workers) {
  static std::map<int, std::unique_ptr<KernelFixture>> cache;
  auto it = cache.find(workers);
  if (it == cache.end()) {
    it = cache.emplace(workers, std::make_unique<KernelFixture>(workers)).first;
  }
  return *it->second;
}

void BM_GeneratorKernel(benchmark::State& state) {
  auto& f = fixture_for(static_cast<int>(state.range(0)));
  auto model = admm::build_component_model(f.net, f.params);
  auto st = admm::AdmmState::zeros(model);
  for (auto _ : state) {
    admm::update_generators(*f.dev, model, st);
  }
  state.SetItemsProcessed(state.iterations() * model.num_gens);
}

void BM_BusKernel(benchmark::State& state) {
  auto& f = fixture_for(static_cast<int>(state.range(0)));
  auto model = admm::build_component_model(f.net, f.params);
  auto st = admm::AdmmState::zeros(model);
  st.v.fill(0.1);
  st.u.fill(0.1);
  for (auto _ : state) {
    admm::update_buses(*f.dev, model, st);
  }
  state.SetItemsProcessed(state.iterations() * model.num_buses);
}

void BM_BranchKernel(benchmark::State& state) {
  auto& f = fixture_for(static_cast<int>(state.range(0)));
  auto model = admm::build_component_model(f.net, f.params);
  auto st = admm::AdmmState::zeros(model);
  // Realistic voltage starting points.
  std::vector<double> bx(st.branch_x.size());
  for (std::size_t l = 0; l < bx.size() / 4; ++l) {
    bx[4 * l] = 1.0;
    bx[4 * l + 1] = 1.0;
  }
  st.branch_x.upload(bx);
  for (auto _ : state) {
    admm::update_branches(*f.dev, model, f.params, st);
  }
  state.SetItemsProcessed(state.iterations() * model.num_branches);
}

void BM_FullInnerIteration(benchmark::State& state) {
  auto& f = fixture_for(static_cast<int>(state.range(0)));
  auto model = admm::build_component_model(f.net, f.params);
  auto st = admm::AdmmState::zeros(model);
  st.beta = 1e3;
  std::vector<double> bx(st.branch_x.size());
  for (std::size_t l = 0; l < bx.size() / 4; ++l) {
    bx[4 * l] = 1.0;
    bx[4 * l + 1] = 1.0;
  }
  st.branch_x.upload(bx);
  for (auto _ : state) {
    admm::update_generators(*f.dev, model, st);
    admm::update_branches(*f.dev, model, f.params, st);
    admm::update_buses(*f.dev, model, st);
    admm::update_z(*f.dev, model, st);
    admm::update_y(*f.dev, model, st);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_GeneratorKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BusKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BranchKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullInnerIteration)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
