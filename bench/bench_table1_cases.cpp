// Reproduces Table I: the experiment case inventory with the per-case
// penalty parameters. Cases are this repo's synthetic stand-ins for the
// MATPOWER pegase / ACTIVSg grids (see DESIGN.md section 2); component
// counts match the paper exactly.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

int main() {
  using namespace gridadmm;
  bench::print_mode_banner("Table I: data and parameters for experiments");

  Table table({"Data", "# Generators", "# Branches", "# Buses", "rho_pq", "rho_va"});
  for (const auto& name : grid::synthetic_case_names()) {
    WallTimer timer;
    const auto net = grid::make_synthetic_case(name);
    const auto params = admm::params_for_case(name, net.num_buses());
    table.add_row({name, std::to_string(net.num_generators()),
                   std::to_string(net.num_branches()), std::to_string(net.num_buses()),
                   Table::sci(params.rho_pq, 0), Table::sci(params.rho_va, 0)});
    std::fprintf(stderr, "  built %s in %.2f s (total load %.1f MW)\n", name.c_str(),
                 timer.seconds(), net.total_load() * net.base_mva);
  }
  table.print();
  std::printf("\nPaper reference (Table I):\n"
              "  1354pegase  260  1,991  1,354  1e1 1e3\n"
              "  2869pegase  510  4,582  2,869  1e1 1e3\n"
              "  9241pegase  1,445 16,049 9,241  5e1 5e3\n"
              "  13659pegase 4,092 20,467 13,659 5e1 5e3\n"
              "  ACTIVSg25k  4,834 32,230 25,000 3e3 3e4\n"
              "  ACTIVSg70k  10,390 88,207 70,000 3e4 3e5\n");
  return 0;
}
