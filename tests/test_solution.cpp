#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "grid/flows.hpp"
#include "grid/solution.hpp"

namespace gridadmm::grid {
namespace {

/// Two-bus network: generator at bus 0 feeds a load at bus 1.
Network two_bus() {
  Network net;
  net.buses.resize(2);
  net.buses[0].id = 1;
  net.buses[0].type = BusType::kRef;
  net.buses[1].id = 2;
  net.buses[1].pd = 50.0;  // MW
  net.buses[1].qd = 10.0;
  Generator gen;
  gen.bus = 0;
  gen.pmax = 200.0;
  gen.qmin = -100.0;
  gen.qmax = 100.0;
  gen.c1 = 10.0;
  net.generators.push_back(gen);
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.r = 0.01;
  branch.x = 0.1;
  branch.rate = 100.0;
  net.branches.push_back(branch);
  net.finalize();
  return net;
}

TEST(Solution, BalancedDispatchHasTinyViolation) {
  const auto net = two_bus();
  OpfSolution sol = OpfSolution::zeros(net);
  sol.vm = {1.0, 0.95};
  sol.va = {0.0, -0.05};
  // Compute exact flows and set the generator to match them.
  const auto f = eval_flows(net.admittances[0], 1.0, 0.95, 0.0, -0.05);
  sol.pg[0] = f[kPij];
  sol.qg[0] = f[kQij];
  // The to-side must match the load for zero violation; adjust loads.
  auto net2 = net;
  net2.buses[1].pd = -f[kPji];
  net2.buses[1].qd = -f[kQji];
  const auto quality = evaluate_solution(net2, sol);
  EXPECT_LT(quality.power_balance_violation, 1e-12);
  EXPECT_DOUBLE_EQ(quality.bound_violation, 0.0);
}

TEST(Solution, DetectsPowerImbalance) {
  const auto net = two_bus();
  OpfSolution sol = OpfSolution::zeros(net);
  sol.vm = {1.0, 1.0};
  sol.va = {0.0, 0.0};
  sol.pg[0] = 0.0;  // nothing dispatched against a 0.5 p.u. load
  const auto quality = evaluate_solution(net, sol);
  EXPECT_GT(quality.power_balance_violation, 0.4);
  EXPECT_GE(quality.max_violation, quality.power_balance_violation);
}

TEST(Solution, DetectsLineOverload) {
  auto net = two_bus();
  net.branches[0].rate = 0.1;  // p.u. (post-finalize edit)
  OpfSolution sol = OpfSolution::zeros(net);
  sol.vm = {1.05, 0.95};
  sol.va = {0.3, -0.3};  // large angle spread forces a big flow
  const auto quality = evaluate_solution(net, sol);
  EXPECT_GT(quality.line_violation, 0.1);
}

TEST(Solution, DetectsBoundViolations) {
  const auto net = two_bus();
  OpfSolution sol = OpfSolution::zeros(net);
  sol.vm = {1.2, 1.0};  // above vmax = 1.1
  sol.pg[0] = 3.0;      // above pmax = 2.0
  const auto quality = evaluate_solution(net, sol);
  EXPECT_NEAR(quality.bound_violation, 1.0, 1e-12);  // pg exceeds by 1.0 p.u.
}

TEST(Solution, LineCapacityFactorTightensLimits) {
  auto net = two_bus();
  OpfSolution sol = OpfSolution::zeros(net);
  sol.vm = {1.0, 0.96};
  sol.va = {0.0, -0.09};
  const auto loose = evaluate_solution(net, sol, 1.0);
  const auto tight = evaluate_solution(net, sol, 0.5);
  EXPECT_GE(tight.line_violation, loose.line_violation);
}

TEST(Solution, ObjectiveUsesCostCurves) {
  const auto net = load_embedded_case("case9");
  OpfSolution sol = OpfSolution::zeros(net);
  sol.vm.assign(9, 1.0);
  sol.pg = {1.0, 0.0, 0.0};
  const auto quality = evaluate_solution(net, sol);
  EXPECT_NEAR(quality.objective, 0.11 * 1e4 + 5.0 * 100 + 150.0 + 600.0 + 335.0, 1e-9);
}

TEST(Solution, RelativeGap) {
  EXPECT_DOUBLE_EQ(relative_gap(101.0, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(relative_gap(99.0, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(relative_gap(1.0, 0.0), 1.0);  // guarded denominator
}

}  // namespace
}  // namespace gridadmm::grid
