// Unit tests for the closed-form ADMM kernels and the branch subproblem
// objective/derivatives.
#include <gtest/gtest.h>

#include <cmath>

#include "admm/branch_kernel.hpp"
#include "admm/bus_kernel.hpp"
#include "admm/generator_kernel.hpp"
#include "admm/zy_kernel.hpp"
#include "common/rng.hpp"
#include "grid/cases.hpp"

namespace gridadmm::admm {
namespace {

struct Fixture {
  grid::Network net;
  AdmmParams params;
  ComponentModel model;
  AdmmState state;
  device::Device dev{2};

  explicit Fixture(const std::string& case_name = "case9")
      : net(grid::load_embedded_case(case_name)),
        params(params_for_case(case_name, net.num_buses())),
        model(build_component_model(net, params)),
        state(AdmmState::zeros(model)) {}

  void randomize(std::uint64_t seed) {
    Rng rng(seed);
    auto fill = [&](device::DeviceBuffer<double>& buf, double lo, double hi) {
      std::vector<double> host(buf.size());
      for (auto& v : host) v = rng.uniform(lo, hi);
      buf.upload(host);
    };
    fill(state.u, -1.0, 1.0);
    fill(state.v, -1.0, 1.0);
    fill(state.z, -0.01, 0.01);
    fill(state.y, -5.0, 5.0);
    state.beta = 1e3;
  }
};

TEST(GeneratorKernel, MatchesBruteForceScalarMinimum) {
  Fixture f;
  f.randomize(1);
  update_generators(f.dev, f.model, f.state);
  const auto u = f.state.u.to_host();
  const auto v = f.state.v.to_host();
  const auto z = f.state.z.to_host();
  const auto y = f.state.y.to_host();
  const auto rho = f.model.rho.to_host();
  for (int g = 0; g < f.model.num_gens; ++g) {
    const auto& gen = f.net.generators[g];
    const int kp = gen_pair_base(g);
    // Brute-force scan of the scalar objective (the kernel optimizes the
    // cost scaled by params.objective_scale).
    const double c2 = gen.c2 * f.params.objective_scale;
    const double c1 = gen.c1 * f.params.objective_scale;
    auto objective = [&](double pg) {
      const double t = pg - v[kp] + z[kp];
      return c2 * pg * pg + c1 * pg + y[kp] * t + 0.5 * rho[kp] * t * t;
    };
    double best = gen.pmin;
    double best_val = objective(best);
    const int steps = 20000;
    for (int s = 0; s <= steps; ++s) {
      const double pg = gen.pmin + (gen.pmax - gen.pmin) * s / steps;
      const double val = objective(pg);
      if (val < best_val) {
        best_val = val;
        best = pg;
      }
    }
    EXPECT_NEAR(u[kp], best, 2e-4 * std::max(1.0, std::abs(best))) << "generator " << g;
    EXPECT_GE(u[kp], gen.pmin - 1e-12);
    EXPECT_LE(u[kp], gen.pmax + 1e-12);
  }
}

TEST(BusKernel, SatisfiesPowerBalanceExactly) {
  Fixture f;
  f.randomize(2);
  update_buses(f.dev, f.model, f.state);
  const auto v = f.state.v.to_host();
  const auto w = f.state.bus_w.to_host();
  for (int i = 0; i < f.net.num_buses(); ++i) {
    const auto& bus = f.net.buses[i];
    double p = -bus.pd - bus.gs * w[i];
    double q = -bus.qd + bus.bs * w[i];
    for (const int g : f.net.gens_at_bus[i]) {
      p += v[gen_pair_base(g)];
      q += v[gen_pair_base(g) + 1];
    }
    for (const int l : f.net.branches_from[i]) {
      const int base = branch_pair_base(f.model.num_gens, l);
      p -= v[base + kPairPij];
      q -= v[base + kPairQij];
    }
    for (const int l : f.net.branches_to[i]) {
      const int base = branch_pair_base(f.model.num_gens, l);
      p -= v[base + kPairPji];
      q -= v[base + kPairQji];
    }
    EXPECT_NEAR(p, 0.0, 1e-9) << "bus " << i;
    EXPECT_NEAR(q, 0.0, 1e-9) << "bus " << i;
  }
}

TEST(BusKernel, IsOptimalAlongFeasibleDirections) {
  // At the constrained minimum, the directional derivative along any
  // direction in the null space of the balance rows must vanish.
  Fixture f;
  f.randomize(3);
  update_buses(f.dev, f.model, f.state);
  const auto u = f.state.u.to_host();
  const auto v = f.state.v.to_host();
  const auto z = f.state.z.to_host();
  const auto y = f.state.y.to_host();
  const auto rho = f.model.rho.to_host();

  // Pick bus with >= 2 adjacent branches: perturb two p-flow copies in
  // opposite directions (stays on the balance manifold).
  for (int i = 0; i < f.net.num_buses(); ++i) {
    std::vector<int> kps;
    for (const int l : f.net.branches_from[i]) {
      kps.push_back(branch_pair_base(f.model.num_gens, l) + kPairPij);
    }
    for (const int l : f.net.branches_to[i]) {
      kps.push_back(branch_pair_base(f.model.num_gens, l) + kPairPji);
    }
    if (kps.size() < 2) continue;
    const int ka = kps[0], kb = kps[1];
    auto dobj = [&](int k) {
      const double m = u[k] + z[k] + y[k] / rho[k];
      return rho[k] * (v[k] - m);
    };
    // Direction: +1 on ka, +1 on kb has A d = -2 on the P row; use +1/-1.
    EXPECT_NEAR(dobj(ka) - dobj(kb), 0.0, 1e-8) << "bus " << i;
  }
}

TEST(ZKernel, MinimizesScalarObjective) {
  Fixture f;
  f.randomize(4);
  update_z(f.dev, f.model, f.state);
  const auto u = f.state.u.to_host();
  const auto v = f.state.v.to_host();
  const auto z = f.state.z.to_host();
  const auto y = f.state.y.to_host();
  const auto lz = f.state.lz.to_host();
  const auto rho = f.model.rho.to_host();
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = static_cast<int>(rng.uniform_index(f.model.num_pairs));
    auto objective = [&](double zz) {
      const double r = u[k] - v[k] + zz;
      return lz[k] * zz + 0.5 * f.state.beta * zz * zz + y[k] * r + 0.5 * rho[k] * r * r;
    };
    const double at = objective(z[k]);
    EXPECT_LE(at, objective(z[k] + 1e-4) + 1e-12);
    EXPECT_LE(at, objective(z[k] - 1e-4) + 1e-12);
  }
}

TEST(YKernel, AppliesDualAscentRule) {
  Fixture f;
  f.randomize(6);
  const auto y_before = f.state.y.to_host();
  update_y(f.dev, f.model, f.state);
  const auto y_after = f.state.y.to_host();
  const auto u = f.state.u.to_host();
  const auto v = f.state.v.to_host();
  const auto z = f.state.z.to_host();
  const auto rho = f.model.rho.to_host();
  for (int k = 0; k < f.model.num_pairs; ++k) {
    EXPECT_NEAR(y_after[k], y_before[k] + rho[k] * (u[k] - v[k] + z[k]), 1e-12);
  }
}

TEST(OuterMultiplier, ClampsToBounds) {
  Fixture f;
  f.randomize(7);
  f.state.beta = 1e12;
  std::vector<double> big_z(f.state.z.size(), 1.0);
  f.state.z.upload(big_z);
  update_outer_multiplier(f.dev, f.model, f.state, 1e8);
  for (const double l : f.state.lz.to_host()) EXPECT_LE(std::abs(l), 1e8);
}

class BranchProblemDerivativeTest : public ::testing::TestWithParam<int> {};

TEST_P(BranchProblemDerivativeTest, GradientAndHessianMatchFiniteDifferences) {
  Rng rng(900 + GetParam());
  Fixture f;
  const int l = static_cast<int>(rng.uniform_index(f.net.num_branches()));
  const bool rated = GetParam() % 2 == 0;

  double adm[8];
  const auto& y = f.net.admittances[l];
  adm[0] = y.gii; adm[1] = y.bii; adm[2] = y.gij; adm[3] = y.bij;
  adm[4] = y.gji; adm[5] = y.bji; adm[6] = y.gjj; adm[7] = y.bjj;
  double vb[4] = {0.9, 1.1, 0.9, 1.1};
  double d[8], yk[8], rhok[8];
  for (int k = 0; k < 8; ++k) {
    d[k] = rng.uniform(-0.5, 0.5);
    yk[k] = rng.uniform(-3, 3);
    rhok[k] = rng.uniform(1.0, 50.0);
  }
  BranchProblem prob;
  prob.bind(adm, vb, rated ? 2.5 : 0.0, d, yk, rhok);
  prob.set_line_multipliers(rated ? rng.uniform(-1, 1) : 0.0, rated ? rng.uniform(-1, 1) : 0.0,
                            rated ? rng.uniform(1.0, 20.0) : 0.0);
  const int n = prob.dim();
  ASSERT_EQ(n, rated ? 6 : 4);
  std::vector<double> x(n);
  x[0] = rng.uniform(0.92, 1.08);
  x[1] = rng.uniform(0.92, 1.08);
  x[2] = rng.uniform(-0.3, 0.3);
  x[3] = rng.uniform(-0.3, 0.3);
  if (rated) {
    x[4] = rng.uniform(-2.0, 0.0);
    x[5] = rng.uniform(-2.0, 0.0);
  }
  std::vector<double> grad(n);
  prob.eval_gradient(x, grad);
  const double h = 1e-6;
  for (int var = 0; var < n; ++var) {
    auto xp = x, xm = x;
    xp[var] += h;
    xm[var] -= h;
    const double fd = (prob.eval_f(xp) - prob.eval_f(xm)) / (2 * h);
    EXPECT_NEAR(grad[var], fd, 2e-4 * std::max(1.0, std::abs(fd))) << "var " << var;
  }
  linalg::DenseMatrix hess(n, n);
  prob.eval_hessian(x, hess);
  for (int var = 0; var < n; ++var) {
    auto xp = x, xm = x;
    xp[var] += h;
    xm[var] -= h;
    std::vector<double> gp(n), gm(n);
    prob.eval_gradient(xp, gp);
    prob.eval_gradient(xm, gm);
    for (int row = 0; row < n; ++row) {
      const double fd = (gp[row] - gm[row]) / (2 * h);
      EXPECT_NEAR(hess(row, var), fd, 5e-4 * std::max(1.0, std::abs(fd)))
          << "row " << row << " var " << var;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBranchProblems, BranchProblemDerivativeTest,
                         ::testing::Range(0, 12));

TEST(BranchKernel, UpdatesConsensusValuesConsistently) {
  Fixture f;
  f.randomize(8);
  // Reasonable starting voltages.
  std::vector<double> bx(f.state.branch_x.size());
  for (int l = 0; l < f.net.num_branches(); ++l) {
    bx[4 * l] = 1.0;
    bx[4 * l + 1] = 1.0;
    bx[4 * l + 2] = 0.0;
    bx[4 * l + 3] = 0.0;
  }
  f.state.branch_x.upload(bx);
  update_branches(f.dev, f.model, f.params, f.state);
  const auto u = f.state.u.to_host();
  const auto x = f.state.branch_x.to_host();
  for (int l = 0; l < f.net.num_branches(); ++l) {
    const int base = branch_pair_base(f.model.num_gens, l);
    const auto flows = grid::eval_flows(f.net.admittances[l], x[4 * l], x[4 * l + 1],
                                        x[4 * l + 2], x[4 * l + 3]);
    EXPECT_NEAR(u[base + kPairPij], flows[grid::kPij], 1e-12);
    EXPECT_NEAR(u[base + kPairWi], x[4 * l] * x[4 * l], 1e-12);
    EXPECT_NEAR(u[base + kPairThj], x[4 * l + 3], 1e-12);
    // Voltage bounds respected.
    EXPECT_GE(x[4 * l], f.net.buses[f.net.branches[l].from].vmin - 1e-12);
    EXPECT_LE(x[4 * l], f.net.buses[f.net.branches[l].from].vmax + 1e-12);
  }
}

}  // namespace
}  // namespace gridadmm::admm
