// Observability layer semantics: tracer allocation discipline and valid
// Chrome trace JSON under concurrency, ring wrap-around accounting,
// metrics-registry bucket math and exposition, convergence-trajectory
// sampling (including the non-convergence escalation signal), the
// bit-identical-iterates guarantee with tracing/sampling on, and the serve
// request-lifecycle spans + instruments.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "admm/params.hpp"
#include "common/error.hpp"
#include "grid/cases.hpp"
#include "obs/convergence.hpp"
#include "obs/expo.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/scenario_set.hpp"
#include "serve/service.hpp"

namespace gridadmm {
namespace {

/// The tracer is process-global: every test that touches it restores the
/// pristine state (disabled, empty) so tests stay order-independent.
struct TracerReset {
  TracerReset() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
  ~TracerReset() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
};

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Tracer, DisabledRecordingCreatesNoBuffersAndNoEvents) {
  const TracerReset reset;
  const auto buffers_before = obs::Tracer::buffers_created();
  for (int i = 0; i < 1000; ++i) {
    const obs::TraceSpan span("obs.test.disabled", "i", static_cast<std::uint64_t>(i));
    obs::instant("obs.test.instant");
  }
  obs::PhaseTimer timer;
  EXPECT_GE(timer.take("obs.test.phase"), 0.0);  // still measures time
  std::thread worker([] {
    const obs::TraceSpan span("obs.test.disabled.worker");
    obs::instant("obs.test.instant.worker");
  });
  worker.join();
  EXPECT_EQ(obs::Tracer::buffers_created(), buffers_before);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST(Tracer, ConcurrentSpansProduceValidTraceJson) {
  const TracerReset reset;
  obs::Tracer::instance().enable();

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::set_thread_name("obs.test.worker");
      for (int i = 0; i < kSpansPerThread; ++i) {
        const obs::TraceSpan span("obs.test.span", "thread", static_cast<std::uint64_t>(t),
                                  "i", static_cast<std::uint64_t>(i));
        obs::instant("obs.test.tick", "i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  obs::span_between("obs.test.between", 100, 250, "arg", 7);

  EXPECT_EQ(obs::Tracer::instance().event_count(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 2 + 1));
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);

  const std::string json = obs::Tracer::instance().to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // Thread metadata rows carry the set_thread_name label.
  EXPECT_GE(count_occurrences(json, "\"ph\": \"M\""), static_cast<std::size_t>(kThreads));
  EXPECT_GE(count_occurrences(json, "{\"name\": \"obs.test.worker\"}"),
            static_cast<std::size_t>(kThreads));
  // Every span/instant made it out, with dur on the X events only.
  EXPECT_EQ(count_occurrences(json, "\"name\": \"obs.test.span\""),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(count_occurrences(json, "\"name\": \"obs.test.tick\""),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""),
            static_cast<std::size_t>(kThreads * kSpansPerThread + 1));
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(count_occurrences(json, "\"dur\": "),
            static_cast<std::size_t>(kThreads * kSpansPerThread + 1));
  // The externally-measured span renders its fixed-point microseconds.
  EXPECT_NE(json.find("\"name\": \"obs.test.between\", \"ph\": \"X\", \"ts\": 0.100, "
                      "\"dur\": 0.150"),
            std::string::npos);
}

TEST(Tracer, RingWrapDropsOldestEventsWithoutGrowing) {
  const TracerReset reset;
  constexpr std::size_t kRing = 8;
  constexpr int kRecorded = 100;
  obs::Tracer::instance().enable(kRing);
  const auto buffers_before = obs::Tracer::buffers_created();

  std::thread worker([] {
    for (int i = 0; i < kRecorded; ++i) {
      obs::instant("obs.test.wrap", "i", static_cast<std::uint64_t>(i));
    }
  });
  worker.join();

  // One preallocated ring, overwritten in place: newest kRing survive.
  EXPECT_EQ(obs::Tracer::buffers_created(), buffers_before + 1);
  EXPECT_EQ(obs::Tracer::instance().event_count(), kRing);
  EXPECT_EQ(obs::Tracer::instance().dropped(),
            static_cast<std::uint64_t>(kRecorded) - kRing);
  const std::string json = obs::Tracer::instance().to_json();
  EXPECT_EQ(count_occurrences(json, "\"name\": \"obs.test.wrap\""), kRing);
  // Oldest-first flush: the survivors are the last kRing recorded.
  EXPECT_NE(json.find("\"args\": {\"i\": 92}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"i\": 99}"), std::string::npos);
  EXPECT_EQ(json.find("\"args\": {\"i\": 91}"), std::string::npos);

  obs::Tracer::instance().clear();
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
  // Restore the default ring capacity for later enabling tests.
  obs::Tracer::instance().enable();
}

TEST(Metrics, HistogramBucketMathAndQuantiles) {
  obs::Histogram h(1.0, 2.0, 4);  // bounds 1, 2, 4, 8 + overflow
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));

  h.observe(0.5);    // (0, 1]
  h.observe(1.0);    // (0, 1] (upper bound inclusive)
  h.observe(3.0);    // (2, 4]
  h.observe(100.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.mean(), 104.5 / 4.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 0, 1, 0, 1}));

  // Rank 2 of 4 fills bucket 0 exactly: biased to its upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  // Rank 3 lands in (2, 4]; the whole rank mass sits there.
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 4.0);
  // The overflow bucket saturates at the largest finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(obs::Histogram(1.0, 2.0, 3).quantile(0.99), 0.0);  // empty
}

TEST(Metrics, RegistrySharesInstrumentsAndExposesBoth) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("test_total", "a test counter");
  obs::Counter& b = registry.counter("test_total");
  EXPECT_EQ(&a, &b);  // one series, shared by name
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_THROW(registry.gauge("test_total"), GridError);  // kind mismatch

  registry.gauge("test_depth").set(2.5);
  obs::Histogram& h = registry.histogram("test_seconds", "", 1.0, 2.0, 2);
  h.observe(0.5);
  h.observe(100.0);

  const std::string prom = registry.expose_prometheus();
  EXPECT_NE(prom.find("# HELP test_total a test counter\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_total counter\ntest_total 3\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_depth gauge\ntest_depth 2.5\n"), std::string::npos);
  // Cumulative le buckets: 1 at le=1, still 1 at le=2, 2 at +Inf.
  EXPECT_NE(prom.find("test_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("test_seconds_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("test_seconds_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("test_seconds_count 2\n"), std::string::npos);

  const std::string json = registry.snapshot_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test_seconds_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"test_seconds_p99\": "), std::string::npos);
}

TEST(Convergence, SamplerFlagsIterationCappedScenario) {
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  scenario::ScenarioSet set(net);
  set.add_base();  // full budget: converges
  scenario::Scenario capped;
  capped.name = "iteration-capped";
  capped.controls.max_inner_iterations = 3;
  capped.controls.max_outer_iterations = 1;
  set.add(capped);  // budget-starved: retires unconverged

  scenario::BatchAdmmSolver solver(set, params);
  scenario::BatchSolveOptions options;
  options.convergence_sample_interval = 1;
  const auto report = solver.solve(options);

  ASSERT_EQ(report.convergence.size(), 2u);
  const auto& healthy = report.convergence[0];
  const auto& starved = report.convergence[1];

  EXPECT_EQ(healthy.scenario, 0);
  EXPECT_TRUE(healthy.converged);
  EXPECT_FALSE(healthy.hit_iteration_cap);
  ASSERT_FALSE(healthy.samples.empty());
  // Samples track the loop: iterations strictly increase, cumulative TRON
  // work and the final residual state match the solver's own stats.
  for (std::size_t k = 1; k < healthy.samples.size(); ++k) {
    EXPECT_GT(healthy.samples[k].inner_iteration, healthy.samples[k - 1].inner_iteration);
    EXPECT_GE(healthy.samples[k].tron_iterations, healthy.samples[k - 1].tron_iterations);
  }
  EXPECT_EQ(healthy.samples.back().inner_iteration, report.stats[0].inner_iterations);
  EXPECT_DOUBLE_EQ(healthy.samples.back().primal_residual, report.stats[0].primal_residual);
  EXPECT_DOUBLE_EQ(healthy.samples.back().dual_residual, report.stats[0].dual_residual);

  EXPECT_EQ(starved.scenario, 1);
  EXPECT_FALSE(starved.converged);
  EXPECT_TRUE(starved.hit_iteration_cap);
  ASSERT_FALSE(starved.samples.empty());
  EXPECT_EQ(starved.samples.back().inner_iteration, report.stats[1].inner_iterations);
  EXPECT_LE(report.stats[1].inner_iterations, 3);

  // The router signal: the converged scenario never escalates (under any
  // policy); the capped one does — three iterations cannot have decayed
  // the primal residual a million-fold.
  obs::EscalationPolicy strict;
  strict.min_decay = 1e-6;
  EXPECT_FALSE(obs::should_escalate(healthy));
  EXPECT_FALSE(obs::should_escalate(healthy, strict));
  EXPECT_TRUE(obs::should_escalate(starved, strict));
  EXPECT_EQ(obs::escalation_candidates(report.convergence, strict), (std::vector<int>{1}));
}

TEST(Convergence, TracingAndSamplingKeepIteratesBitIdentical) {
  const TracerReset reset;
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  scenario::ScenarioSet set(net);
  set.add_load_scale(4, 0.95, 1.05);

  scenario::BatchAdmmSolver plain_solver(set, params);
  const auto plain = plain_solver.solve({});
  const auto plain_solutions = plain_solver.solutions();

  scenario::BatchAdmmSolver observed_solver(set, params);
  scenario::BatchSolveOptions options;
  options.trace = true;
  options.convergence_sample_interval = 1;
  const auto observed = observed_solver.solve(options);
  const auto observed_solutions = observed_solver.solutions();

  ASSERT_EQ(plain.stats.size(), observed.stats.size());
  for (std::size_t s = 0; s < plain.stats.size(); ++s) {
    EXPECT_EQ(plain.stats[s].converged, observed.stats[s].converged);
    EXPECT_EQ(plain.stats[s].inner_iterations, observed.stats[s].inner_iterations);
    EXPECT_EQ(plain.stats[s].outer_iterations, observed.stats[s].outer_iterations);
    // Bit-identical, not approximately equal: observation must not touch
    // the iterates.
    EXPECT_EQ(plain.stats[s].primal_residual, observed.stats[s].primal_residual);
    EXPECT_EQ(plain.stats[s].dual_residual, observed.stats[s].dual_residual);
    EXPECT_EQ(plain_solutions[s].vm, observed_solutions[s].vm);
    EXPECT_EQ(plain_solutions[s].va, observed_solutions[s].va);
    EXPECT_EQ(plain_solutions[s].pg, observed_solutions[s].pg);
    EXPECT_EQ(plain_solutions[s].qg, observed_solutions[s].qg);
  }
  EXPECT_EQ(plain.convergence.size(), 0u);  // off by default
  ASSERT_EQ(observed.convergence.size(), 4u);
  EXPECT_GT(obs::Tracer::instance().event_count(), 0u);
}

TEST(Serve, LifecycleSpansInstrumentsAndTrajectories) {
  const TracerReset reset;
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  serve::ServiceOptions options;
  options.trace = true;
  options.convergence_sample_interval = 2;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.01;
  serve::SolveService service(net, params, options);

  constexpr int kRequests = 4;
  std::vector<std::future<serve::SolveResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    serve::SolveRequest request;
    const double factor = 0.98 + 0.01 * i;
    for (const auto& bus : net.buses) {
      request.pd.push_back(bus.pd * factor);
      request.qd.push_back(bus.qd * factor);
    }
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& future : futures) {
    const auto result = future.get();
    EXPECT_TRUE(result.converged);
    // The per-request trajectory rides out of the batch solve.
    EXPECT_EQ(result.trajectory.converged, result.converged);
    EXPECT_FALSE(result.trajectory.samples.empty());
    EXPECT_FALSE(obs::should_escalate(result.trajectory,
                                      obs::EscalationPolicy{0.5, 1e-6}));
  }
  service.drain();

  // The whole request lifecycle landed on the trace, across threads.
  const std::string json = obs::Tracer::instance().to_json();
  for (const char* name : {"serve.admit", "serve.queue", "serve.dispatch", "serve.batch",
                           "serve.form", "serve.stage", "serve.solve", "serve.extract",
                           "serve.fulfill", "device.launch"}) {
    EXPECT_NE(json.find(std::string("\"name\": \"") + name + "\""), std::string::npos)
        << "missing trace event: " << name;
  }
  EXPECT_NE(json.find("{\"name\": \"serve.dispatcher\"}"), std::string::npos);

  // The metrics registry agrees with the stats snapshot.
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(stats.p95_latency, stats.p50_latency);
  EXPECT_GE(stats.p99_latency, stats.p95_latency);
  const std::string prom = service.metrics().expose_prometheus();
  EXPECT_NE(prom.find("serve_requests_submitted_total 4\n"), std::string::npos);
  EXPECT_NE(prom.find("serve_requests_completed_total 4\n"), std::string::npos);
  EXPECT_NE(prom.find("serve_latency_seconds_count 4\n"), std::string::npos);
  const std::string snapshot = service.metrics().snapshot_json();
  EXPECT_NE(snapshot.find("\"serve_latency_seconds_count\": 4"), std::string::npos);
  EXPECT_NE(snapshot.find("\"serve_batch_occupancy_count\": "), std::string::npos);
}

// ---------------------------------------------------------------------------
// SloMonitor: windowed quantiles, eviction, burn-rate verdicts, allocation
// discipline — all under hand-advanced manual time.
// ---------------------------------------------------------------------------

obs::SloObjectives test_objectives() {
  obs::SloObjectives objectives;
  objectives.latency_ceiling_seconds = 0.1;
  objectives.latency_budget_fraction = 0.10;  // 10% of requests may exceed 100 ms
  objectives.shed_budget_fraction = 0.10;
  objectives.fast_window_seconds = 10.0;
  objectives.slow_window_seconds = 60.0;
  return objectives;
}

obs::SloWindowOptions test_window() {
  obs::SloWindowOptions window;
  window.bucket_seconds = 1.0;
  window.buckets = 70;  // spans the 60 s slow window
  return window;
}

TEST(SloMonitor, WindowedQuantilesAndEviction) {
  obs::SloMonitor monitor(test_objectives(), test_window());
  // 100 fast observations at t=1s, 10 slow ones at t=2s.
  for (int i = 0; i < 100; ++i) monitor.record_latency(0.01, 1.0);
  for (int i = 0; i < 10; ++i) monitor.record_latency(0.5, 2.0);

  EXPECT_EQ(monitor.window_count(10.0, 2.0), 110u);
  // p50 sits in the fast bulk, p99 in the slow tail; interpolation is
  // upper-bound-biased so the quantile never understates.
  EXPECT_LE(monitor.quantile(0.50, 10.0, 2.0), 0.02);
  EXPECT_GE(monitor.quantile(0.99, 10.0, 2.0), 0.1);

  // The fast window slides: at t=11.5 the t=1 bucket has aged out of a
  // 10 s window but the t=2 bucket has not.
  EXPECT_EQ(monitor.window_count(10.0, 11.5), 10u);
  // And everything is still visible to the slow window.
  EXPECT_EQ(monitor.window_count(60.0, 11.5), 110u);
  // Far future: all evicted.
  EXPECT_EQ(monitor.window_count(60.0, 500.0), 0u);
}

TEST(SloMonitor, RingRotationReclaimsOldBuckets) {
  obs::SloWindowOptions window = test_window();
  obs::SloMonitor monitor(test_objectives(), window);
  // Wrap the ring several times; counts must never accumulate across laps.
  const double lap = window.bucket_seconds * window.buckets;
  for (int round = 0; round < 3; ++round) {
    monitor.record_latency(0.01, 5.0 + round * lap);
  }
  EXPECT_EQ(monitor.window_count(10.0, 5.0 + 2 * lap), 1u);
}

TEST(SloMonitor, BurnRateBreachNeedsBothWindowsAndRecovers) {
  obs::SloMonitor monitor(test_objectives(), test_window());

  // Healthy traffic: everything under the ceiling.
  for (int t = 0; t < 5; ++t) {
    for (int i = 0; i < 10; ++i) monitor.record_latency(0.01, 1.0 + t);
  }
  obs::SloVerdict verdict = monitor.evaluate(5.0);
  EXPECT_TRUE(verdict.healthy);
  EXPECT_TRUE(verdict.latency.enabled);
  EXPECT_EQ(verdict.latency.fast_burn, 0.0);

  // Violations in the fast window only: 50% bad over budget 10% = burn 5
  // in BOTH windows here (same young data) -> breached.
  for (int i = 0; i < 10; ++i) monitor.record_latency(0.5, 6.0);
  verdict = monitor.evaluate(6.5);
  EXPECT_GT(verdict.latency.fast_burn, 1.0);
  EXPECT_GT(verdict.latency.slow_burn, 1.0);
  EXPECT_TRUE(verdict.latency.breached);
  EXPECT_FALSE(verdict.healthy);

  // 15 s later the bad burst has left the fast window (good traffic took
  // its place) while the slow window still remembers it: fast recovered,
  // so the breach clears — one window under threshold is enough.
  for (int t = 0; t < 12; ++t) {
    for (int i = 0; i < 20; ++i) monitor.record_latency(0.01, 7.0 + t);
  }
  verdict = monitor.evaluate(19.5);
  EXPECT_LE(verdict.latency.fast_burn, 1.0);
  EXPECT_GT(verdict.latency.slow_burn, 0.0);
  EXPECT_FALSE(verdict.latency.breached);
  EXPECT_TRUE(verdict.healthy);
}

TEST(SloMonitor, ShedObjectiveBurnsAgainstOfferedTraffic) {
  obs::SloMonitor monitor(test_objectives(), test_window());
  // 50% shed against a 10% budget: burn 5 in both windows.
  for (int i = 0; i < 10; ++i) {
    monitor.record_latency(0.01, 2.0);
    monitor.record_shed(2.0);
  }
  const obs::SloVerdict verdict = monitor.evaluate(3.0);
  EXPECT_TRUE(verdict.shed.enabled);
  EXPECT_NEAR(verdict.fast_shed_fraction, 0.5, 1e-12);
  EXPECT_TRUE(verdict.shed.breached);
  EXPECT_FALSE(verdict.healthy);
  EXPECT_NE(verdict.to_json(monitor.objectives()).find("\"healthy\": false"),
            std::string::npos);
}

TEST(SloMonitor, SteadyStateRecordingAndEvaluationAllocateNothing) {
  obs::SloWindowOptions window = test_window();
  obs::SloMonitor monitor(test_objectives(), window);
  const std::uint64_t after_construction = obs::SloMonitor::allocations();
  // Record across several ring laps (forcing rotations) and evaluate
  // repeatedly: the construction counter must not move.
  const double lap = window.bucket_seconds * window.buckets;
  for (int round = 0; round < 4; ++round) {
    for (int t = 0; t < 20; ++t) {
      monitor.record_latency(0.001 * (t + 1), round * lap + t);
      monitor.record_shed(round * lap + t);
    }
    monitor.evaluate(round * lap + 20.0);
    EXPECT_GE(monitor.quantile(0.99, 10.0, round * lap + 20.0), 0.0);
  }
  EXPECT_EQ(obs::SloMonitor::allocations(), after_construction);
}

TEST(SloMonitor, GaugesFollowTheVerdict) {
  obs::MetricsRegistry registry;
  obs::SloMonitor monitor(test_objectives(), test_window());
  monitor.bind_gauges(registry);
  for (int i = 0; i < 10; ++i) monitor.record_latency(0.5, 1.0);
  monitor.evaluate(1.5);
  const std::string prom = registry.expose_prometheus();
  EXPECT_NE(prom.find("slo_healthy 0"), std::string::npos);
  EXPECT_NE(prom.find("slo_latency_burn_fast"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Watchdog: stall detection fires on silent busy threads and clears on the
// next beat; idle threads never trip it.
// ---------------------------------------------------------------------------

TEST(Watchdog, BusySilenceTripsAndNextBeatClears) {
  obs::Watchdog watchdog;
  const int worker = watchdog.register_slot("worker");
  const std::uint64_t t0 = obs::now_ns();
  constexpr double kStall = 5.0;
  constexpr auto kSecond = static_cast<std::uint64_t>(1e9);

  // Idle: healthy regardless of elapsed time.
  EXPECT_TRUE(watchdog.healthy(t0 + 100 * kSecond, kStall));

  // Busy and recently beaten: healthy. Silent past the deadline: tripped.
  watchdog.set_idle(worker, false);
  watchdog.beat(worker, t0);
  EXPECT_TRUE(watchdog.healthy(t0 + 4 * kSecond, kStall));
  EXPECT_FALSE(watchdog.healthy(t0 + 6 * kSecond, kStall));
  const std::string unhealthy = watchdog.healthz_json(t0 + 6 * kSecond, kStall);
  EXPECT_NE(unhealthy.find("\"healthy\": false"), std::string::npos);
  EXPECT_NE(unhealthy.find("\"name\": \"worker\""), std::string::npos);

  // The next beat clears the stall; going idle keeps it healthy forever.
  watchdog.beat(worker, t0 + 7 * kSecond);
  EXPECT_TRUE(watchdog.healthy(t0 + 8 * kSecond, kStall));
  watchdog.set_idle(worker, true);
  EXPECT_TRUE(watchdog.healthy(t0 + 1000 * kSecond, kStall));
}

// ---------------------------------------------------------------------------
// ExpoServer: raw-socket GETs against a live endpoint.
// ---------------------------------------------------------------------------

std::string http_get(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ExpoServer, ServesRegisteredPathsAnd404s) {
  obs::ExpoServer server;  // ephemeral loopback port
  server.handle("/metrics", [] {
    return obs::ExpoResponse{200, "text/plain", "metric_a 1\n"};
  });
  server.handle("/unhealthy", [] {
    return obs::ExpoResponse{503, "application/json", "{\"healthy\": false}"};
  });
  server.start();
  ASSERT_GT(server.port(), 0);

  const std::string ok = http_get(server.port(), "GET /metrics HTTP/1.1");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 11"), std::string::npos);
  EXPECT_NE(ok.find("metric_a 1\n"), std::string::npos);

  const std::string sad = http_get(server.port(), "GET /unhealthy HTTP/1.1");
  EXPECT_NE(sad.find("HTTP/1.1 503"), std::string::npos);

  const std::string missing = http_get(server.port(), "GET /nope HTTP/1.1");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  const std::string posted = http_get(server.port(), "POST /metrics HTTP/1.1");
  EXPECT_NE(posted.find("HTTP/1.1 405"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 4u);
}

}  // namespace
}  // namespace gridadmm
