// End-to-end tests of the two-level ADMM solver on canonical cases.
#include <gtest/gtest.h>

#include "admm/one_level.hpp"
#include "admm/solver.hpp"
#include "device/buffer.hpp"
#include "grid/cases.hpp"
#include "grid/solution.hpp"

namespace gridadmm::admm {
namespace {

TEST(Admm, SolvesCase9ToPaperQuality) {
  const auto net = grid::load_embedded_case("case9");
  AdmmSolver solver(net, params_for_case("case9", 9));
  const auto stats = solver.solve();
  EXPECT_TRUE(stats.converged);
  const auto sol = solver.solution();
  const auto quality = grid::evaluate_solution(net, sol);
  // Paper Table II reports violations of order 1e-3/1e-4 and gaps < 0.1%.
  EXPECT_LT(quality.max_violation, 5e-3);
  // MATPOWER's known case9 ACOPF objective.
  EXPECT_NEAR(quality.objective, 5296.69, 0.01 * 5296.69);
}

TEST(Admm, BranchLaneWorkspacesPersistAcrossSolves) {
  // update_branches used to rebuild one BranchWorkspace per worker lane —
  // including every TRON solver's heap state — on every kernel launch.
  // The lanes now live in AdmmState: the first solve constructs exactly
  // one workspace per lane and every later launch reuses them.
  const auto net = grid::load_embedded_case("case9");
  AdmmSolver solver(net, params_for_case("case9", 9));
  const auto created_initial = BranchWorkspace::created();
  const auto stats = solver.solve();
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.inner_iterations, 1);  // many branch launches happened...
  const auto created_after_first = BranchWorkspace::created();
  // ...but only the first launch constructed workspaces: one per lane.
  EXPECT_EQ(created_after_first - created_initial,
            static_cast<std::uint64_t>(solver.state().branch_lanes.size()));

  // A warm re-solve constructs none at all.
  solver.prepare_warm_start();
  solver.solve();
  EXPECT_EQ(BranchWorkspace::created(), created_after_first);
}

TEST(Admm, GenericBranchPathMatchesFixedBitForBit) {
  // The two TRON implementations must walk the identical iteration
  // sequence on a full end-to-end solve (same residual doubles, same
  // branch-work totals) — the single-scenario face of the batch bit-
  // equality bar in test_batch_admm.cpp.
  const auto net = grid::load_embedded_case("case9");
  auto params = params_for_case("case9", 9);

  params.branch_solver = BranchSolverPath::kFixedDim;
  AdmmSolver fixed(net, params);
  const auto fixed_stats = fixed.solve();

  params.branch_solver = BranchSolverPath::kGeneric;
  AdmmSolver generic(net, params);
  const auto generic_stats = generic.solve();

  EXPECT_EQ(fixed_stats.inner_iterations, generic_stats.inner_iterations);
  EXPECT_EQ(fixed_stats.outer_iterations, generic_stats.outer_iterations);
  EXPECT_DOUBLE_EQ(fixed_stats.primal_residual, generic_stats.primal_residual);
  EXPECT_DOUBLE_EQ(fixed_stats.dual_residual, generic_stats.dual_residual);
  EXPECT_EQ(fixed_stats.branch.tron_iterations, generic_stats.branch.tron_iterations);
  EXPECT_EQ(fixed_stats.branch.cg_iterations, generic_stats.branch.cg_iterations);
  EXPECT_EQ(fixed_stats.branch.function_evals, generic_stats.branch.function_evals);

  const auto sol_fixed = fixed.solution();
  const auto sol_generic = generic.solution();
  for (int i = 0; i < net.num_buses(); ++i) {
    EXPECT_DOUBLE_EQ(sol_fixed.vm[static_cast<std::size_t>(i)],
                     sol_generic.vm[static_cast<std::size_t>(i)]);
  }
}

TEST(Admm, SolvesCase14WithUnratedLines) {
  const auto net = grid::load_embedded_case("case14");
  AdmmSolver solver(net, params_for_case("case14", 14));
  const auto stats = solver.solve();
  EXPECT_TRUE(stats.converged);
  const auto quality = grid::evaluate_solution(net, solver.solution());
  EXPECT_LT(quality.max_violation, 5e-3);
  EXPECT_NEAR(quality.objective, 8081.5, 0.01 * 8081.5);
}

TEST(Admm, NoHostDeviceTransfersDuringSolve) {
  // The paper's key implementation claim (Section III): the entire solver
  // loop runs on the device without transfers.
  const auto net = grid::load_embedded_case("case9");
  AdmmSolver solver(net, params_for_case("case9", 9));
  const auto before = device::transfer_stats();
  solver.solve();
  const auto after = device::transfer_stats();
  EXPECT_EQ(before.host_to_device, after.host_to_device);
  EXPECT_EQ(before.device_to_host, after.device_to_host);
}

TEST(Admm, WarmStartConvergesFasterAfterLoadChange) {
  const auto net = grid::load_embedded_case("case9");
  AdmmSolver solver(net, params_for_case("case9", 9));
  const auto cold = solver.solve();
  ASSERT_TRUE(cold.converged);

  // Perturb loads by ~2% and re-solve warm.
  std::vector<double> pd, qd;
  for (const auto& bus : solver.network().buses) {
    pd.push_back(bus.pd * 1.02);
    qd.push_back(bus.qd * 1.02);
  }
  solver.set_loads(pd, qd);
  solver.prepare_warm_start();
  const auto warm = solver.solve();
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.inner_iterations, cold.inner_iterations);

  // Compare with a cold restart on the same perturbed loads.
  auto net2 = net;
  for (int i = 0; i < net2.num_buses(); ++i) {
    net2.buses[i].pd = pd[i];
    net2.buses[i].qd = qd[i];
  }
  AdmmSolver cold_solver(net2, params_for_case("case9", 9));
  const auto cold2 = cold_solver.solve();
  ASSERT_TRUE(cold2.converged);
  EXPECT_LT(warm.inner_iterations, cold2.inner_iterations);
}

TEST(Admm, SolutionRespectsGeneratorBounds) {
  const auto net = grid::load_embedded_case("case9");
  AdmmSolver solver(net, params_for_case("case9", 9));
  solver.solve();
  const auto sol = solver.solution();
  for (int g = 0; g < net.num_generators(); ++g) {
    EXPECT_GE(sol.pg[g], net.generators[g].pmin - 1e-9);
    EXPECT_LE(sol.pg[g], net.generators[g].pmax + 1e-9);
    EXPECT_GE(sol.qg[g], net.generators[g].qmin - 1e-9);
    EXPECT_LE(sol.qg[g], net.generators[g].qmax + 1e-9);
  }
}

TEST(Admm, ReferenceAngleIsZeroInSolution) {
  const auto net = grid::load_embedded_case("case9");
  AdmmSolver solver(net, params_for_case("case9", 9));
  solver.solve();
  const auto sol = solver.solution();
  EXPECT_DOUBLE_EQ(sol.va[net.ref_bus], 0.0);
}

TEST(Admm, RecordsHistoriesWhenRequested) {
  const auto net = grid::load_embedded_case("case9");
  AdmmSolver solver(net, params_for_case("case9", 9));
  solver.set_record_history(true);
  const auto stats = solver.solve();
  EXPECT_EQ(static_cast<int>(stats.primal_history.size()), stats.inner_iterations);
  EXPECT_EQ(static_cast<int>(stats.z_history.size()), stats.outer_iterations);
  // z must shrink substantially over the outer loop.
  EXPECT_LT(stats.z_history.back(), stats.z_history.front());
}

TEST(Admm, OneLevelVariantRunsWithoutZ) {
  const auto net = grid::load_embedded_case("case9");
  auto params = make_one_level(params_for_case("case9", 9));
  params.max_inner_iterations = 2000;
  AdmmSolver solver(net, params);
  const auto stats = solver.solve();
  EXPECT_EQ(stats.outer_iterations, 1);
  // z is never touched in the one-level variant.
  for (const double z : solver.state().z.to_host()) EXPECT_DOUBLE_EQ(z, 0.0);
  const auto quality = grid::evaluate_solution(net, solver.solution());
  EXPECT_LT(quality.max_violation, 0.1);  // looser: no convergence guarantee
  (void)stats;
}

TEST(Admm, StopsAtIterationBudget) {
  const auto net = grid::load_embedded_case("case9");
  auto params = params_for_case("case9", 9);
  params.max_outer_iterations = 2;
  params.max_inner_iterations = 5;
  AdmmSolver solver(net, params);
  const auto stats = solver.solve();
  EXPECT_FALSE(stats.converged);
  EXPECT_LE(stats.inner_iterations, 10);
}

TEST(Admm, AdaptiveRhoRecoversFromBadPreset) {
  const auto net = grid::load_embedded_case("case9");
  auto params = params_for_case("case9", 9);
  params.rho_pq *= 0.05;  // deliberately mis-tuned
  params.rho_va *= 0.05;
  params.max_outer_iterations = 10;

  AdmmSolver fixed(net, params);
  const auto fixed_stats = fixed.solve();

  params.adaptive_rho = true;
  AdmmSolver adaptive(net, params);
  const auto adaptive_stats = adaptive.solve();
  EXPECT_GT(adaptive_stats.rho_rescales, 0);
  EXPECT_TRUE(adaptive_stats.converged);
  const auto quality = grid::evaluate_solution(net, adaptive.solution());
  EXPECT_LT(quality.max_violation, 1e-2);
  // With a preset this far off, residual balancing recovers a large part of
  // the lost iterations.
  if (fixed_stats.converged) {
    EXPECT_LT(adaptive_stats.inner_iterations, fixed_stats.inner_iterations);
  }
}

TEST(Admm, ExtremePenaltiesDegradeQuality) {
  // The paper notes large penalties put less weight on the objective; an
  // absurd penalty must show up as a worse gap, not a crash.
  const auto net = grid::load_embedded_case("case9");
  auto params = params_for_case("case9", 9);
  params.rho_pq *= 1e4;
  params.rho_va *= 1e4;
  params.max_outer_iterations = 6;
  AdmmSolver solver(net, params);
  EXPECT_NO_THROW(solver.solve());
}

}  // namespace
}  // namespace gridadmm::admm
