#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "common/error.hpp"
#include "device/buffer.hpp"
#include "device/device.hpp"
#include "device/fault.hpp"
#include "device/pool.hpp"

namespace gridadmm::device {
namespace {

TEST(Device, ExecutesEveryBlockExactlyOnce) {
  Device dev(4);
  std::vector<std::atomic<int>> counts(1000);
  dev.launch(1000, [&](int block) { counts[block].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Device, HandlesZeroBlocks) {
  Device dev(2);
  bool ran = false;
  dev.launch(0, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(dev.stats().launches, 1u);
}

TEST(Device, HandlesMoreBlocksThanWorkers) {
  Device dev(2);
  std::atomic<int> total{0};
  dev.launch(10000, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10000);
}

TEST(Device, LaneIndicesAreValid) {
  Device dev(3);
  std::atomic<bool> bad{false};
  dev.launch_with_lane(500, [&](int, int lane) {
    if (lane < 0 || lane >= 3) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(Device, LanesAreExclusive) {
  // Two blocks running on the same lane must never overlap: per-lane
  // counters need no synchronization.
  Device dev(4);
  std::vector<long> counters(4, 0);  // deliberately unsynchronized
  dev.launch_with_lane(20000, [&](int, int lane) { counters[lane] += 1; });
  EXPECT_EQ(std::accumulate(counters.begin(), counters.end(), 0L), 20000);
}

TEST(Device, PropagatesKernelException) {
  Device dev(2);
  EXPECT_THROW(
      dev.launch(100, [&](int block) {
        if (block == 57) throw GridError("bad block");
      }),
      GridError);
  // Device remains usable afterwards.
  std::atomic<int> total{0};
  dev.launch(10, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(Device, RejectsNegativeBlockCount) {
  Device dev(1);
  EXPECT_THROW(dev.launch(-1, [](int) {}), GridError);
}

TEST(Device, CountsLaunchStats) {
  Device dev(2);
  dev.reset_stats();
  dev.launch(10, [](int) {});
  dev.launch(20, [](int) {});
  EXPECT_EQ(dev.stats().launches, 2u);
  EXPECT_EQ(dev.stats().blocks, 30u);
}

TEST(Device, SequentialLaunchesSeeEachOthersWrites) {
  Device dev(4);
  std::vector<double> data(1000, 0.0);
  dev.launch(1000, [&](int i) { data[i] = i; });
  std::vector<double> copy(1000, 0.0);
  dev.launch(1000, [&](int i) { copy[i] = 2.0 * data[i]; });
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(copy[i], 2.0 * i);
}

TEST(DeviceBuffer, CountsTransfers) {
  const auto before = transfer_stats();
  DeviceBuffer<double> buf(100, 1.0);
  std::vector<double> host(100, 3.0);
  buf.upload(host);
  EXPECT_EQ(transfer_stats().host_to_device, before.host_to_device + 1);
  auto out = buf.to_host();
  EXPECT_EQ(transfer_stats().device_to_host, before.device_to_host + 1);
  EXPECT_DOUBLE_EQ(out[50], 3.0);
  EXPECT_EQ(transfer_stats().bytes, before.bytes + 2 * 100 * sizeof(double));
}

TEST(DeviceBuffer, AllocationsAreCacheLineAligned) {
  // The interleaved batch layout's contract: every buffer starts on a
  // 64-byte boundary, so kTileWidth-double tile rows never straddle cache
  // lines and vectorized lane loops get an aligned base.
  for (const std::size_t n : {1u, 7u, 8u, 63u, 64u, 1000u, 4097u}) {
    DeviceBuffer<double> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kDeviceAlignment, 0u)
        << "size " << n;
    DeviceBuffer<unsigned char> bytes(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(bytes.data()) % kDeviceAlignment, 0u)
        << "size " << n;
  }
  // Copies and moves land on aligned storage too.
  DeviceBuffer<double> original(100, 1.5);
  DeviceBuffer<double> copy = original;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(copy.data()) % kDeviceAlignment, 0u);
  DeviceBuffer<double> moved = std::move(copy);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(moved.data()) % kDeviceAlignment, 0u);
}

TEST(DeviceBuffer, DownloadStridedGathersOneLane) {
  // Interleaved slot extraction: element k of lane l lives at k*W + l for a
  // tile of W slots; download_strided must gather exactly that lane and
  // count one transfer of the slice's bytes.
  constexpr std::size_t kW = 8, kExtent = 5;
  DeviceBuffer<double> buf(kExtent * kW);
  std::vector<double> host(kExtent * kW);
  for (std::size_t k = 0; k < kExtent; ++k) {
    for (std::size_t lane = 0; lane < kW; ++lane) {
      host[k * kW + lane] = static_cast<double>(100 * lane + k);
    }
  }
  buf.upload(host);

  const auto before = transfer_stats();
  std::vector<double> lane3(kExtent);
  buf.download_strided(/*offset=*/3, /*stride=*/kW, lane3);
  EXPECT_EQ(transfer_stats().device_to_host, before.device_to_host + 1);
  EXPECT_EQ(transfer_stats().bytes, before.bytes + kExtent * sizeof(double));
  for (std::size_t k = 0; k < kExtent; ++k) {
    EXPECT_DOUBLE_EQ(lane3[k], static_cast<double>(300 + k));
  }

  // Bounds: last gathered element must stay inside the buffer.
  std::vector<double> too_many(kExtent + 1);
  EXPECT_THROW(buf.download_strided(3, kW, too_many), GridError);
  EXPECT_THROW(buf.download_strided(0, 0, lane3), GridError);
}

TEST(DeviceBuffer, UploadRejectsSizeMismatch) {
  DeviceBuffer<double> buf(10);
  std::vector<double> wrong(5, 0.0);
  EXPECT_THROW(buf.upload(wrong), GridError);
}

TEST(DeviceBuffer, FillAndSpan) {
  DeviceBuffer<int> buf(5);
  buf.fill(7);
  for (const int v : buf.span()) EXPECT_EQ(v, 7);
}

TEST(DeviceBuffer, AllocationAccountingTracksLifecycle) {
  const auto before = allocation_stats();
  {
    DeviceBuffer<double> buf(100);
    EXPECT_EQ(allocation_stats().live_bytes, before.live_bytes + 100 * sizeof(double));
    buf.resize(250);
    EXPECT_EQ(allocation_stats().live_bytes, before.live_bytes + 250 * sizeof(double));
    buf.resize(50);
    EXPECT_EQ(allocation_stats().live_bytes, before.live_bytes + 50 * sizeof(double));
    // A copy is a second allocation; a move transfers ownership.
    DeviceBuffer<double> copy = buf;
    EXPECT_EQ(allocation_stats().live_bytes, before.live_bytes + 100 * sizeof(double));
    DeviceBuffer<double> moved = std::move(copy);
    EXPECT_EQ(allocation_stats().live_bytes, before.live_bytes + 100 * sizeof(double));
  }
  EXPECT_EQ(allocation_stats().live_bytes, before.live_bytes);
  EXPECT_GE(allocation_stats().peak_bytes, before.live_bytes + 250 * sizeof(double));
}

TEST(DeviceBuffer, ResetAllocationPeakRebasesToLive) {
  DeviceBuffer<double> persistent(64);
  { DeviceBuffer<double> spike(100000); }
  const auto live = allocation_stats().live_bytes;
  EXPECT_GE(allocation_stats().peak_bytes, live + 100000 * sizeof(double));
  reset_allocation_peak();
  EXPECT_EQ(allocation_stats().peak_bytes, live);
}

TEST(DevicePool, PerDeviceAttributionSumsToAggregate) {
  DevicePool pool(3, 1);
  ASSERT_EQ(pool.size(), 3);
  pool.reset_stats();
  pool.device(0).launch(10, [](int) {});
  pool.device(1).launch(20, [](int) {});
  pool.device(1).launch(5, [](int) {});
  pool.device(2).launch(40, [](int) {});

  EXPECT_EQ(pool.stats(0).launches, 1u);
  EXPECT_EQ(pool.stats(0).blocks, 10u);
  EXPECT_EQ(pool.stats(1).launches, 2u);
  EXPECT_EQ(pool.stats(1).blocks, 25u);
  EXPECT_EQ(pool.stats(2).launches, 1u);
  EXPECT_EQ(pool.stats(2).blocks, 40u);

  const auto total = pool.aggregate_stats();
  EXPECT_EQ(total.launches, pool.stats(0).launches + pool.stats(1).launches + pool.stats(2).launches);
  EXPECT_EQ(total.blocks, pool.stats(0).blocks + pool.stats(1).blocks + pool.stats(2).blocks);
}

TEST(DevicePool, DevicesLaunchConcurrently) {
  // Two pool devices must make independent progress: each thread drives its
  // own device and neither serializes behind the other's launches.
  DevicePool pool(2, 2);
  std::atomic<int> total{0};
  std::thread other([&] {
    for (int i = 0; i < 50; ++i) pool.device(1).launch(100, [&](int) { total.fetch_add(1); });
  });
  for (int i = 0; i < 50; ++i) pool.device(0).launch(100, [&](int) { total.fetch_add(1); });
  other.join();
  EXPECT_EQ(total.load(), 10000);
}

TEST(DevicePool, SplitsWorkersAcrossDevicesByDefault) {
  DevicePool pool(2);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 4;
  const int expected = std::max(1, hw / 2);
  EXPECT_EQ(pool.device(0).workers(), expected);
  EXPECT_EQ(pool.device(1).workers(), expected);
}

TEST(DevicePool, RejectsBadArguments) {
  EXPECT_THROW(DevicePool pool(0), GridError);
  DevicePool pool(2, 1);
  EXPECT_THROW(static_cast<void>(pool.device(2)), GridError);
  EXPECT_THROW(static_cast<void>(pool.device(-1)), GridError);
}

// ---------------------------------------------------------------------------
// FaultInjector (ISSUE 9): deterministic fault plans at the Device layer.
// ---------------------------------------------------------------------------

/// Disarms the process-wide injector on every exit path.
struct FaultScope {
  explicit FaultScope(const FaultPlan& plan) { FaultInjector::instance().configure(plan); }
  ~FaultScope() { FaultInjector::instance().disable(); }
};

TEST(FaultInjector, DisabledByDefault) { EXPECT_FALSE(FaultInjector::enabled()); }

TEST(FaultInjector, ParsesTheSpecGrammar) {
  const auto plan =
      FaultInjector::parse_spec("seed=42;launch=0.02;latency=0.01:2ms;alloc=0.5;shard=1;"
                                "warmup=10;cooldown=2000;limit=3");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.launch_fail_probability, 0.02);
  EXPECT_DOUBLE_EQ(plan.latency_spike_probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.latency_spike_seconds, 0.002);
  EXPECT_DOUBLE_EQ(plan.alloc_fail_probability, 0.5);
  EXPECT_EQ(plan.shard, 1);
  EXPECT_EQ(plan.warmup, 10u);
  EXPECT_EQ(plan.cooldown, 2000u);
  EXPECT_EQ(plan.limit, 3u);
  // Duration suffixes: default seconds, ms, us.
  EXPECT_DOUBLE_EQ(FaultInjector::parse_spec("latency=1:0.5").latency_spike_seconds, 0.5);
  EXPECT_DOUBLE_EQ(FaultInjector::parse_spec("latency=1:250us").latency_spike_seconds, 250e-6);
}

TEST(FaultInjector, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultInjector::parse_spec("bogus=1"), ValidationError);
  EXPECT_THROW(FaultInjector::parse_spec("launch=1.5"), ValidationError);
  EXPECT_THROW(FaultInjector::parse_spec("launch=-0.1"), ValidationError);
  EXPECT_THROW(FaultInjector::parse_spec("launch"), ValidationError);
  EXPECT_THROW(FaultInjector::parse_spec("latency=0.5"), ValidationError);  // missing :DUR
  EXPECT_THROW(FaultInjector::parse_spec("seed=notanumber"), ValidationError);
}

TEST(FaultInjector, FaultSequenceIsDeterministicInTheSeed) {
  FaultPlan plan;
  plan.seed = 3;
  plan.launch_fail_probability = 0.3;
  auto failure_pattern = [&]() {
    FaultScope scope(plan);
    std::vector<int> failed_at;
    for (int k = 0; k < 200; ++k) {
      try {
        FaultInjector::instance().on_launch(0);
      } catch (const TransientDeviceError&) {
        failed_at.push_back(k);
      }
    }
    return failed_at;
  };
  const auto first = failure_pattern();
  const auto second = failure_pattern();
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 200u);
  EXPECT_EQ(first, second);  // same plan => bit-identical fault sequence

  FaultPlan other = plan;
  other.seed = 4;
  FaultScope scope(other);
  std::vector<int> third;
  for (int k = 0; k < 200; ++k) {
    try {
      FaultInjector::instance().on_launch(0);
    } catch (const TransientDeviceError&) {
      third.push_back(k);
    }
  }
  EXPECT_NE(first, third);  // different seed => different sequence
}

TEST(FaultInjector, WarmupCooldownAndLimitGateInjection) {
  FaultPlan plan;
  plan.launch_fail_probability = 1.0;
  plan.warmup = 2;
  plan.cooldown = 3;
  plan.limit = 2;
  FaultScope scope(plan);
  std::vector<int> failed_at;
  for (int k = 0; k < 12; ++k) {
    try {
      FaultInjector::instance().on_launch(0);
    } catch (const TransientDeviceError&) {
      failed_at.push_back(k);
    }
  }
  // Events 0-1 are warmup; 2 fails; 3-5 cool down; 6 fails; limit reached.
  EXPECT_EQ(failed_at, (std::vector<int>{2, 6}));
  const auto counters = FaultInjector::instance().counters();
  EXPECT_EQ(counters.launch_failures, 2u);
  EXPECT_EQ(counters.events_seen, 12u);
}

TEST(FaultInjector, ShardFilterOnlyHitsTheTargetDevice) {
  FaultPlan plan;
  plan.launch_fail_probability = 1.0;
  plan.shard = 1;
  FaultScope scope(plan);
  EXPECT_NO_THROW(FaultInjector::instance().on_launch(0));
  EXPECT_THROW(FaultInjector::instance().on_launch(1), TransientDeviceError);
}

TEST(FaultInjector, InjectsThroughDeviceLaunchAndBufferGrowth) {
  // The real hook sites: Device::launch throws the typed transient error
  // without running the kernel's effects being visible as success, and
  // DeviceBuffer growth fails before the allocation is accounted.
  FaultPlan plan;
  plan.launch_fail_probability = 1.0;
  plan.alloc_fail_probability = 1.0;
  FaultScope scope(plan);

  Device dev(2);
  dev.set_trace_id(0);
  EXPECT_THROW(dev.launch(4, [](int) {}), TransientDeviceError);

  const auto counters = FaultInjector::instance().counters();
  EXPECT_GE(counters.launch_failures, 1u);

  EXPECT_THROW(DeviceBuffer<double>(256), TransientDeviceError);
  EXPECT_GE(FaultInjector::instance().counters().alloc_failures, 1u);
}

TEST(FaultInjector, LatencySpikeSleepsWithoutFailing) {
  FaultPlan plan;
  plan.latency_spike_probability = 1.0;
  plan.latency_spike_seconds = 1e-4;
  FaultScope scope(plan);
  EXPECT_NO_THROW(FaultInjector::instance().on_launch(0));
  EXPECT_EQ(FaultInjector::instance().counters().latency_spikes, 1u);
  EXPECT_EQ(FaultInjector::instance().counters().launch_failures, 0u);
}

}  // namespace
}  // namespace gridadmm::device
