#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "device/buffer.hpp"
#include "device/device.hpp"

namespace gridadmm::device {
namespace {

TEST(Device, ExecutesEveryBlockExactlyOnce) {
  Device dev(4);
  std::vector<std::atomic<int>> counts(1000);
  dev.launch(1000, [&](int block) { counts[block].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Device, HandlesZeroBlocks) {
  Device dev(2);
  bool ran = false;
  dev.launch(0, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(dev.stats().launches, 1u);
}

TEST(Device, HandlesMoreBlocksThanWorkers) {
  Device dev(2);
  std::atomic<int> total{0};
  dev.launch(10000, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10000);
}

TEST(Device, LaneIndicesAreValid) {
  Device dev(3);
  std::atomic<bool> bad{false};
  dev.launch_with_lane(500, [&](int, int lane) {
    if (lane < 0 || lane >= 3) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(Device, LanesAreExclusive) {
  // Two blocks running on the same lane must never overlap: per-lane
  // counters need no synchronization.
  Device dev(4);
  std::vector<long> counters(4, 0);  // deliberately unsynchronized
  dev.launch_with_lane(20000, [&](int, int lane) { counters[lane] += 1; });
  EXPECT_EQ(std::accumulate(counters.begin(), counters.end(), 0L), 20000);
}

TEST(Device, PropagatesKernelException) {
  Device dev(2);
  EXPECT_THROW(
      dev.launch(100, [&](int block) {
        if (block == 57) throw GridError("bad block");
      }),
      GridError);
  // Device remains usable afterwards.
  std::atomic<int> total{0};
  dev.launch(10, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(Device, RejectsNegativeBlockCount) {
  Device dev(1);
  EXPECT_THROW(dev.launch(-1, [](int) {}), GridError);
}

TEST(Device, CountsLaunchStats) {
  Device dev(2);
  dev.reset_stats();
  dev.launch(10, [](int) {});
  dev.launch(20, [](int) {});
  EXPECT_EQ(dev.stats().launches, 2u);
  EXPECT_EQ(dev.stats().blocks, 30u);
}

TEST(Device, SequentialLaunchesSeeEachOthersWrites) {
  Device dev(4);
  std::vector<double> data(1000, 0.0);
  dev.launch(1000, [&](int i) { data[i] = i; });
  std::vector<double> copy(1000, 0.0);
  dev.launch(1000, [&](int i) { copy[i] = 2.0 * data[i]; });
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(copy[i], 2.0 * i);
}

TEST(DeviceBuffer, CountsTransfers) {
  auto& stats = transfer_stats();
  const auto before = stats;
  DeviceBuffer<double> buf(100, 1.0);
  std::vector<double> host(100, 3.0);
  buf.upload(host);
  EXPECT_EQ(stats.host_to_device, before.host_to_device + 1);
  auto out = buf.to_host();
  EXPECT_EQ(stats.device_to_host, before.device_to_host + 1);
  EXPECT_DOUBLE_EQ(out[50], 3.0);
  EXPECT_EQ(stats.bytes, before.bytes + 2 * 100 * sizeof(double));
}

TEST(DeviceBuffer, UploadRejectsSizeMismatch) {
  DeviceBuffer<double> buf(10);
  std::vector<double> wrong(5, 0.0);
  EXPECT_THROW(buf.upload(wrong), GridError);
}

TEST(DeviceBuffer, FillAndSpan) {
  DeviceBuffer<int> buf(5);
  buf.fill(7);
  for (const int v : buf.span()) EXPECT_EQ(v, 7);
}

}  // namespace
}  // namespace gridadmm::device
