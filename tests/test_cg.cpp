#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/cg.hpp"
#include "linalg/sparse.hpp"

namespace gridadmm::linalg {
namespace {

TEST(ConjugateGradient, SolvesSpdSystem) {
  Rng rng(3);
  const int n = 40;
  // Tridiagonal SPD matrix (discrete Laplacian + 2I).
  std::vector<Triplet> ts;
  for (int i = 0; i < n; ++i) ts.push_back({i, i, 4.0});
  for (int i = 0; i + 1 < n; ++i) {
    ts.push_back({i + 1, i, -1.0});
    ts.push_back({i, i + 1, -1.0});
  }
  const auto a = SparseMatrix::from_triplets(n, n, ts);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.matvec(x_true, b);

  auto apply = [&](std::span<const double> in, std::span<double> out) { a.matvec(in, out); };
  auto identity = [](std::span<const double> in, std::span<double> out) {
    std::copy(in.begin(), in.end(), out.begin());
  };
  const auto result = conjugate_gradient(apply, identity, b, x);
  EXPECT_TRUE(result.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(ConjugateGradient, JacobiPreconditionerReducesIterations) {
  const int n = 60;
  std::vector<Triplet> ts;
  // Badly scaled diagonal.
  for (int i = 0; i < n; ++i) ts.push_back({i, i, 1.0 + 100.0 * i});
  for (int i = 0; i + 1 < n; ++i) {
    ts.push_back({i + 1, i, -0.3});
    ts.push_back({i, i + 1, -0.3});
  }
  const auto a = SparseMatrix::from_triplets(n, n, ts);
  std::vector<double> b(n, 1.0);
  auto apply = [&](std::span<const double> in, std::span<double> out) { a.matvec(in, out); };
  auto identity = [](std::span<const double> in, std::span<double> out) {
    std::copy(in.begin(), in.end(), out.begin());
  };
  std::vector<double> diag(n);
  for (int i = 0; i < n; ++i) diag[i] = 1.0 + 100.0 * i;
  auto jacobi = [&](std::span<const double> in, std::span<double> out) {
    for (int i = 0; i < n; ++i) out[i] = in[i] / diag[i];
  };
  std::vector<double> x1(n, 0.0), x2(n, 0.0);
  const auto plain = conjugate_gradient(apply, identity, b, x1);
  const auto precond = conjugate_gradient(apply, jacobi, b, x2);
  EXPECT_TRUE(precond.converged);
  EXPECT_LT(precond.iterations, plain.iterations);
}

TEST(ConjugateGradient, ZeroRhsConvergesImmediately) {
  std::vector<double> b(5, 0.0), x(5, 0.0);
  auto apply = [](std::span<const double> in, std::span<double> out) {
    std::copy(in.begin(), in.end(), out.begin());
  };
  const auto result = conjugate_gradient(apply, apply, b, x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

}  // namespace
}  // namespace gridadmm::linalg
