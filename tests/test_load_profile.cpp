#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "grid/load_profile.hpp"

namespace gridadmm::grid {
namespace {

TEST(LoadProfile, StartsAtOne) {
  LoadProfileSpec spec;
  const auto profile = make_load_profile(spec);
  ASSERT_EQ(profile.size(), 30u);
  EXPECT_DOUBLE_EQ(profile[0], 1.0);
}

TEST(LoadProfile, PeakDriftEqualsSpec) {
  LoadProfileSpec spec;
  spec.max_drift = 0.05;
  const auto profile = make_load_profile(spec);
  double peak = 0.0;
  for (const double p : profile) peak = std::max(peak, std::abs(p - 1.0));
  EXPECT_NEAR(peak, 0.05, 1e-12);
}

TEST(LoadProfile, IsDeterministicPerSeed) {
  LoadProfileSpec spec;
  spec.seed = 9;
  const auto a = make_load_profile(spec);
  const auto b = make_load_profile(spec);
  EXPECT_EQ(a, b);
  spec.seed = 10;
  const auto c = make_load_profile(spec);
  EXPECT_NE(a, c);
}

TEST(LoadProfile, IsSmoothMinuteToMinute) {
  LoadProfileSpec spec;
  spec.periods = 30;
  spec.max_drift = 0.05;
  const auto profile = make_load_profile(spec);
  for (std::size_t t = 1; t < profile.size(); ++t) {
    EXPECT_LT(std::abs(profile[t] - profile[t - 1]), 0.02);
  }
}

TEST(LoadProfile, LongHorizonsSupported) {
  LoadProfileSpec spec;
  spec.periods = 240;  // four hours
  const auto profile = make_load_profile(spec);
  EXPECT_EQ(profile.size(), 240u);
}

TEST(LoadProfile, SinglePeriodIsTrivial) {
  LoadProfileSpec spec;
  spec.periods = 1;
  const auto profile = make_load_profile(spec);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0], 1.0);
}

TEST(LoadProfile, RejectsBadSpecs) {
  LoadProfileSpec spec;
  spec.periods = 0;
  EXPECT_THROW(make_load_profile(spec), GridError);
}

}  // namespace
}  // namespace gridadmm::grid
