// Cross-solver consistency: the ADMM solution must agree with the
// interior-point baseline on objective value — the property every Table II
// row relies on.
#include <gtest/gtest.h>

#include "admm/solver.hpp"
#include "grid/cases.hpp"
#include "grid/solution.hpp"
#include "grid/synthetic.hpp"
#include "opf/opf.hpp"

namespace gridadmm {
namespace {

void expect_solvers_agree(const grid::Network& net, const admm::AdmmParams& params,
                          double gap_tol, double violation_tol) {
  const auto admm_report = opf::solve_with_admm(net, params);
  const auto ipm_report = opf::solve_with_ipm(net);
  ASSERT_TRUE(ipm_report.converged) << net.name << ": baseline failed";
  EXPECT_TRUE(admm_report.converged) << net.name << ": ADMM failed";
  const double gap =
      grid::relative_gap(admm_report.quality.objective, ipm_report.quality.objective);
  EXPECT_LT(gap, gap_tol) << net.name << ": admm=" << admm_report.quality.objective
                          << " ipm=" << ipm_report.quality.objective;
  EXPECT_LT(admm_report.quality.max_violation, violation_tol) << net.name;
}

TEST(CrossSolver, AgreeOnCase9) {
  const auto net = grid::load_embedded_case("case9");
  expect_solvers_agree(net, admm::params_for_case("case9", 9), 0.005, 5e-3);
}

TEST(CrossSolver, AgreeOnCase14) {
  const auto net = grid::load_embedded_case("case14");
  expect_solvers_agree(net, admm::params_for_case("case14", 14), 0.005, 5e-3);
}

TEST(CrossSolver, AgreeOnCase30) {
  // case30 carries tight 16-MVA lines where consensus error shows up as
  // line-limit violation; the paper's own Table II reports violations up to
  // 1.5e-2 on constrained cases.
  const auto net = grid::load_embedded_case("case30");
  expect_solvers_agree(net, admm::params_for_case("case30", 30), 0.01, 1e-2);
}

TEST(CrossSolver, AgreeOnSmallSynthetic) {
  grid::SyntheticSpec spec;
  spec.name = "syn80";
  spec.buses = 80;
  spec.branches = 120;
  spec.generators = 16;
  spec.seed = 21;
  const auto net = grid::make_synthetic_grid(spec);
  expect_solvers_agree(net, admm::params_for_case(spec.name, spec.buses), 0.01, 1e-2);
}

/// Property: on randomized grids, the ADMM solution must stay feasible to
/// paper-level tolerance and agree with the baseline objective.
class CrossSolverRandomGrids : public ::testing::TestWithParam<int> {};

TEST_P(CrossSolverRandomGrids, AgreeOnRandomGrid) {
  grid::SyntheticSpec spec;
  spec.name = "synrand" + std::to_string(GetParam());
  spec.buses = 36 + 7 * GetParam();
  spec.branches = spec.buses + spec.buses / 2;
  spec.generators = 4 + spec.buses / 8;
  spec.seed = 7000 + static_cast<std::uint64_t>(GetParam());
  const auto net = grid::make_synthetic_grid(spec);
  expect_solvers_agree(net, admm::params_for_case(spec.name, spec.buses), 0.015, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSolverRandomGrids, ::testing::Range(0, 5));

}  // namespace
}  // namespace gridadmm
