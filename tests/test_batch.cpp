#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "device/device.hpp"
#include "tron/batch.hpp"

namespace gridadmm::tron {
namespace {

/// min (x - target)^2 on [-1, 1].
class Scalar final : public TronProblem {
 public:
  explicit Scalar(double target) : target_(target) {}
  [[nodiscard]] int dim() const override { return 1; }
  void bounds(std::span<double> lower, std::span<double> upper) const override {
    lower[0] = -1.0;
    upper[0] = 1.0;
  }
  double eval_f(std::span<const double> x) override {
    return (x[0] - target_) * (x[0] - target_);
  }
  void eval_gradient(std::span<const double> x, std::span<double> grad) override {
    grad[0] = 2.0 * (x[0] - target_);
  }
  void eval_hessian(std::span<const double>, linalg::DenseMatrix& hess) override {
    hess(0, 0) = 2.0;
  }

 private:
  double target_;
};

TEST(Batch, SolvesManyProblemsInParallel) {
  gridadmm::Rng rng(88);
  device::Device dev(4);
  const int count = 500;
  std::vector<std::unique_ptr<TronProblem>> problems;
  std::vector<std::vector<double>> xs;
  std::vector<double> targets;
  for (int i = 0; i < count; ++i) {
    targets.push_back(rng.uniform(-2.0, 2.0));
    problems.push_back(std::make_unique<Scalar>(targets.back()));
    xs.push_back({0.0});
  }
  const auto result = solve_batch(dev, problems, xs);
  EXPECT_EQ(result.solved, count);
  for (int i = 0; i < count; ++i) {
    const double expected = std::clamp(targets[i], -1.0, 1.0);
    EXPECT_NEAR(xs[i][0], expected, 1e-6) << "problem " << i;
  }
}

TEST(Batch, EmptyBatchIsNoop) {
  device::Device dev(2);
  std::vector<std::unique_ptr<TronProblem>> problems;
  std::vector<std::vector<double>> xs;
  const auto result = solve_batch(dev, problems, xs);
  EXPECT_EQ(result.solved, 0);
}

TEST(Batch, ReportsAggregateIterationCounts) {
  device::Device dev(2);
  std::vector<std::unique_ptr<TronProblem>> problems;
  std::vector<std::vector<double>> xs;
  for (int i = 0; i < 10; ++i) {
    problems.push_back(std::make_unique<Scalar>(0.5));
    xs.push_back({-1.0});
  }
  const auto result = solve_batch(dev, problems, xs);
  EXPECT_EQ(result.solved, 10);
  EXPECT_GT(result.total_iterations, 0);
}

}  // namespace
}  // namespace gridadmm::tron
