// Property tests: the analytic flow derivatives in grid/flows.hpp must
// match central finite differences over randomized branches and operating
// points. These guard the single most reused derivative code in the repo.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>

#include "common/rng.hpp"
#include "grid/flows.hpp"
#include "grid/network.hpp"

namespace gridadmm::grid {
namespace {

Branch random_branch(Rng& rng) {
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.x = std::pow(10.0, rng.uniform(-2.5, -0.9));
  branch.r = branch.x * rng.uniform(0.05, 0.4);
  branch.b = branch.x * rng.uniform(0.0, 2.0);
  if (rng.flip(0.3)) {
    branch.tap = rng.uniform(0.9, 1.1);
    branch.shift = rng.uniform(-0.1, 0.1);
  } else {
    branch.tap = 1.0;
    branch.shift = 0.0;
  }
  return branch;
}

std::array<double, 4> random_point(Rng& rng) {
  return {rng.uniform(0.9, 1.1), rng.uniform(0.9, 1.1), rng.uniform(-0.4, 0.4),
          rng.uniform(-0.4, 0.4)};
}

class FlowDerivativeTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowDerivativeTest, GradientMatchesFiniteDifferences) {
  Rng rng(1000 + GetParam());
  const auto y = branch_admittance(random_branch(rng));
  const auto x = random_point(rng);
  FlowValues values;
  FlowGradients grads;
  eval_flow_gradients(y, x[0], x[1], x[2], x[3], values, grads);

  const double h = 1e-6;
  for (int var = 0; var < 4; ++var) {
    auto xp = x, xm = x;
    xp[var] += h;
    xm[var] -= h;
    const auto fp = eval_flows(y, xp[0], xp[1], xp[2], xp[3]);
    const auto fm = eval_flows(y, xm[0], xm[1], xm[2], xm[3]);
    for (int flow = 0; flow < 4; ++flow) {
      const double fd = (fp[flow] - fm[flow]) / (2.0 * h);
      EXPECT_NEAR(grads.g[flow][var], fd, 1e-5 * std::max(1.0, std::abs(fd)))
          << "flow " << flow << " var " << var;
    }
  }
}

TEST_P(FlowDerivativeTest, WeightedHessianMatchesFiniteDifferences) {
  Rng rng(2000 + GetParam());
  const auto y = branch_admittance(random_branch(rng));
  const auto x = random_point(rng);
  const std::array<double, 4> w = {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2),
                                   rng.uniform(-2, 2)};
  double h16[16] = {0};
  accumulate_flow_hessian(y, x[0], x[1], x[2], x[3], w, h16);

  // FD of the weighted gradient sum.
  const double h = 1e-6;
  auto weighted_grad = [&](const std::array<double, 4>& pt) {
    FlowValues values;
    FlowGradients grads;
    eval_flow_gradients(y, pt[0], pt[1], pt[2], pt[3], values, grads);
    std::array<double, 4> g{};
    for (int flow = 0; flow < 4; ++flow) {
      for (int var = 0; var < 4; ++var) g[var] += w[flow] * grads.g[flow][var];
    }
    return g;
  };
  for (int var = 0; var < 4; ++var) {
    auto xp = x, xm = x;
    xp[var] += h;
    xm[var] -= h;
    const auto gp = weighted_grad(xp);
    const auto gm = weighted_grad(xm);
    for (int row = 0; row < 4; ++row) {
      const double fd = (gp[row] - gm[row]) / (2.0 * h);
      EXPECT_NEAR(h16[row * 4 + var], fd, 2e-5 * std::max(1.0, std::abs(fd)))
          << "row " << row << " var " << var;
    }
  }
}

TEST_P(FlowDerivativeTest, HessianAccumulationIsSymmetric) {
  Rng rng(3000 + GetParam());
  const auto y = branch_admittance(random_branch(rng));
  const auto x = random_point(rng);
  const std::array<double, 4> w = {1.0, -0.5, 0.25, 2.0};
  double h16[16] = {0};
  accumulate_flow_hessian(y, x[0], x[1], x[2], x[3], w, h16);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) EXPECT_DOUBLE_EQ(h16[a * 4 + b], h16[b * 4 + a]);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBranches, FlowDerivativeTest, ::testing::Range(0, 25));

TEST(Flows, MatchComplexPowerArithmetic) {
  // pij + j qij must equal V_i conj(Y_ii V_i + Y_ij V_j).
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto branch = random_branch(rng);
    const auto y = branch_admittance(branch);
    const auto x = random_point(rng);
    const auto f = eval_flows(y, x[0], x[1], x[2], x[3]);

    using cd = std::complex<double>;
    const cd vi = std::polar(x[0], x[2]);
    const cd vj = std::polar(x[1], x[3]);
    const cd yii(y.gii, y.bii), yij(y.gij, y.bij), yji(y.gji, y.bji), yjj(y.gjj, y.bjj);
    const cd sij = vi * std::conj(yii * vi + yij * vj);
    const cd sji = vj * std::conj(yji * vi + yjj * vj);
    EXPECT_NEAR(f[kPij], sij.real(), 1e-12);
    EXPECT_NEAR(f[kQij], sij.imag(), 1e-12);
    EXPECT_NEAR(f[kPji], sji.real(), 1e-12);
    EXPECT_NEAR(f[kQji], sji.imag(), 1e-12);
  }
}

TEST(Flows, LosslessLineConservesPower) {
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.r = 0.0;
  branch.x = 0.1;
  branch.b = 0.0;
  const auto y = branch_admittance(branch);
  const auto f = eval_flows(y, 1.02, 0.98, 0.1, -0.05);
  EXPECT_NEAR(f[kPij] + f[kPji], 0.0, 1e-12);
}

}  // namespace
}  // namespace gridadmm::grid
