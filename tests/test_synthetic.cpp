#include <gtest/gtest.h>

#include "common/error.hpp"
#include "grid/synthetic.hpp"

namespace gridadmm::grid {
namespace {

TEST(Synthetic, SmallGridHasRequestedShape) {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.buses = 40;
  spec.branches = 60;
  spec.generators = 8;
  spec.seed = 3;
  const auto net = make_synthetic_grid(spec);
  EXPECT_EQ(net.num_buses(), 40);
  EXPECT_EQ(net.num_branches(), 60);
  EXPECT_EQ(net.num_generators(), 8);
  EXPECT_TRUE(net.finalized());  // implies connectivity check passed
}

TEST(Synthetic, IsDeterministic) {
  SyntheticSpec spec;
  spec.buses = 50;
  spec.branches = 80;
  spec.generators = 10;
  spec.seed = 42;
  const auto a = make_synthetic_grid(spec);
  const auto b = make_synthetic_grid(spec);
  ASSERT_EQ(a.num_branches(), b.num_branches());
  for (int l = 0; l < a.num_branches(); ++l) {
    EXPECT_DOUBLE_EQ(a.branches[l].x, b.branches[l].x);
    EXPECT_DOUBLE_EQ(a.branches[l].rate, b.branches[l].rate);
    EXPECT_EQ(a.branches[l].from, b.branches[l].from);
  }
}

TEST(Synthetic, CapacityExceedsLoad) {
  SyntheticSpec spec;
  spec.buses = 100;
  spec.branches = 150;
  spec.generators = 20;
  const auto net = make_synthetic_grid(spec);
  double cap = 0.0;
  for (const auto& gen : net.generators) cap += gen.pmax;
  EXPECT_GT(cap, 1.3 * net.total_load());
}

TEST(Synthetic, AllLinesRatedPositive) {
  SyntheticSpec spec;
  spec.buses = 60;
  spec.branches = 90;
  spec.generators = 12;
  const auto net = make_synthetic_grid(spec);
  for (const auto& branch : net.branches) EXPECT_GT(branch.rate, 0.0);
}

TEST(Synthetic, TableIPresetsMatchPaperCounts) {
  // Component counts from Table I of the paper.
  const struct {
    const char* name;
    int gens, branches, buses;
  } expected[] = {
      {"1354pegase", 260, 1991, 1354},     {"2869pegase", 510, 4582, 2869},
      {"9241pegase", 1445, 16049, 9241},   {"13659pegase", 4092, 20467, 13659},
      {"ACTIVSg25k", 4834, 32230, 25000},  {"ACTIVSg70k", 10390, 88207, 70000},
  };
  for (const auto& e : expected) {
    EXPECT_TRUE(is_synthetic_case(e.name));
    const auto spec = synthetic_case_spec(e.name);
    EXPECT_EQ(spec.generators, e.gens) << e.name;
    EXPECT_EQ(spec.branches, e.branches) << e.name;
    EXPECT_EQ(spec.buses, e.buses) << e.name;
  }
  EXPECT_FALSE(is_synthetic_case("case9"));
  EXPECT_THROW(synthetic_case_spec("nope"), ParseError);
}

TEST(Synthetic, SmallestPresetBuilds) {
  const auto net = make_synthetic_case("1354pegase");
  EXPECT_EQ(net.num_buses(), 1354);
  EXPECT_EQ(net.num_branches(), 1991);
  EXPECT_EQ(net.num_generators(), 260);
}

TEST(Synthetic, RejectsInvalidSpecs) {
  SyntheticSpec spec;
  spec.buses = 10;
  spec.branches = 5;  // fewer branches than buses
  EXPECT_THROW(make_synthetic_grid(spec), GridError);
  spec.branches = 20;
  spec.generators = 0;
  EXPECT_THROW(make_synthetic_grid(spec), GridError);
}

}  // namespace
}  // namespace gridadmm::grid
