// Tests of the high-level opf facade.
#include <gtest/gtest.h>

#include <fstream>

#include "common/error.hpp"
#include "grid/cases.hpp"
#include "opf/opf.hpp"

namespace gridadmm::opf {
namespace {

TEST(Opf, LoadCaseResolvesEmbeddedNames) {
  const auto net = load_case("case9");
  EXPECT_EQ(net.num_buses(), 9);
  EXPECT_TRUE(net.finalized());
}

TEST(Opf, LoadCaseResolvesSyntheticPresets) {
  const auto net = load_case("1354pegase");
  EXPECT_EQ(net.num_buses(), 1354);
}

TEST(Opf, LoadCaseResolvesFilePaths) {
  const std::string path = "/tmp/gridadmm_test_case.m";
  {
    std::ofstream out(path);
    out << grid::embedded_case_text("case9");
  }
  const auto net = load_case(path);
  EXPECT_EQ(net.num_buses(), 9);
}

TEST(Opf, LoadCaseRejectsUnknown) {
  EXPECT_THROW(load_case("/nonexistent/never.m"), GridError);
}

TEST(Opf, ReportsAreConsistentAcrossSolvers) {
  const auto net = load_case("case9");
  const auto admm_report = solve_with_admm(net, admm::params_for_case("case9", 9));
  const auto ipm_report = solve_with_ipm(net);
  EXPECT_EQ(admm_report.solver, "admm");
  EXPECT_EQ(ipm_report.solver, "ipm");
  EXPECT_TRUE(admm_report.converged);
  EXPECT_TRUE(ipm_report.converged);
  EXPECT_GT(admm_report.iterations, 0);
  EXPECT_GT(ipm_report.iterations, 0);
  EXPECT_GT(admm_report.seconds, 0.0);
  // Solutions have the right shapes.
  EXPECT_EQ(admm_report.solution.vm.size(), 9u);
  EXPECT_EQ(ipm_report.solution.pg.size(), 3u);
  // Quality metrics populated.
  EXPECT_GT(admm_report.quality.objective, 0.0);
  EXPECT_LT(admm_report.quality.max_violation, 1e-2);
}

}  // namespace
}  // namespace gridadmm::opf
