#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/ldlt.hpp"

namespace gridadmm::linalg {
namespace {

struct DenseSym {
  int n = 0;
  std::vector<double> a;  // full storage
  double& at(int r, int c) { return a[static_cast<std::size_t>(r) * n + c]; }
  double at(int r, int c) const { return a[static_cast<std::size_t>(r) * n + c]; }
};

/// Random sparse symmetric matrix with guaranteed nonzero diagonal;
/// returns lower-triangle triplets and the dense mirror.
std::pair<std::vector<Triplet>, DenseSym> random_symmetric(int n, double density, bool spd,
                                                           Rng& rng) {
  std::vector<Triplet> ts;
  DenseSym dense;
  dense.n = n;
  dense.a.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int c = 0; c < n; ++c) {
    for (int r = c + 1; r < n; ++r) {
      if (rng.uniform() < density) {
        const double v = rng.uniform(-1.0, 1.0);
        ts.push_back({r, c, v});
        dense.at(r, c) += v;
        dense.at(c, r) += v;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    double v;
    if (spd) {
      // Diagonal dominance makes it SPD.
      double row_sum = 1.0;
      for (int j = 0; j < n; ++j) row_sum += std::abs(dense.at(i, j));
      v = row_sum;
    } else {
      v = rng.uniform(0.5, 2.0) * (rng.flip(0.5) ? 1.0 : -1.0);
      // Keep it diagonally dominant so no pivoting is needed.
      double row_sum = 0.0;
      for (int j = 0; j < n; ++j)
        if (j != i) row_sum += std::abs(dense.at(i, j));
      v *= (row_sum + 1.0);
    }
    ts.push_back({i, i, v});
    dense.at(i, i) += v;
  }
  return {ts, dense};
}

class LdltOrderingTest : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(LdltOrderingTest, SolvesRandomSpdSystems) {
  Rng rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 5 + static_cast<int>(rng.uniform_index(80));
    auto [ts, dense] = random_symmetric(n, 0.1, true, rng);
    SymmetricSolver solver;
    solver.analyze(n, ts, GetParam());
    std::vector<double> values;
    for (const auto& t : ts) values.push_back(t.value);
    ASSERT_TRUE(solver.factorize(values));
    const auto inertia = solver.inertia();
    EXPECT_EQ(inertia.positive, n);
    EXPECT_EQ(inertia.negative, 0);

    std::vector<double> x_true(n), b(n, 0.0);
    for (auto& v : x_true) v = rng.uniform(-1, 1);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) b[r] += dense.at(r, c) * x_true[c];
    }
    solver.solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, LdltOrderingTest,
                         ::testing::Values(OrderingMethod::kNatural, OrderingMethod::kRcm,
                                           OrderingMethod::kMinDegree));

TEST(Ldlt, IndefiniteInertiaMatchesDiagonalDominantSigns) {
  Rng rng(55);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 10 + static_cast<int>(rng.uniform_index(40));
    auto [ts, dense] = random_symmetric(n, 0.05, false, rng);
    // Count expected signs: diagonally dominant => inertia equals diagonal signs.
    int expect_pos = 0, expect_neg = 0;
    for (int i = 0; i < n; ++i) (dense.at(i, i) > 0 ? expect_pos : expect_neg)++;
    SymmetricSolver solver;
    solver.analyze(n, ts, OrderingMethod::kRcm);
    std::vector<double> values;
    for (const auto& t : ts) values.push_back(t.value);
    ASSERT_TRUE(solver.factorize(values));
    const auto inertia = solver.inertia();
    EXPECT_EQ(inertia.positive, expect_pos);
    EXPECT_EQ(inertia.negative, expect_neg);
    EXPECT_EQ(inertia.zero, 0);

    std::vector<double> x_true(n), b(n, 0.0);
    for (auto& v : x_true) v = rng.uniform(-1, 1);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c) b[r] += dense.at(r, c) * x_true[c];
    solver.solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-7);
  }
}

TEST(Ldlt, DetectsSingularMatrix) {
  // [1 1; 1 1] is singular.
  std::vector<Triplet> ts{{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}};
  SymmetricSolver solver;
  solver.analyze(2, ts, OrderingMethod::kNatural);
  std::vector<double> values{1.0, 1.0, 1.0};
  EXPECT_FALSE(solver.factorize(values));
}

TEST(Ldlt, DiagonalRegularizationFixesSingularity) {
  std::vector<Triplet> ts{{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}};
  SymmetricSolver solver;
  solver.analyze(2, ts, OrderingMethod::kNatural);
  std::vector<double> values{1.0, 1.0, 1.0};
  std::vector<double> reg{1e-4, 1e-4};
  EXPECT_TRUE(solver.factorize(values, reg));
  EXPECT_EQ(solver.inertia().positive, 2);
}

TEST(Ldlt, SaddlePointSystemHasCorrectInertia) {
  // KKT-style [[I, a],[a^T, 0]]: inertia (2, 1, 0) after dual regularization.
  std::vector<Triplet> ts{{0, 0, 1.0}, {1, 1, 1.0}, {2, 0, 1.0}, {2, 1, 2.0}, {2, 2, 0.0}};
  SymmetricSolver solver;
  solver.analyze(3, ts, OrderingMethod::kNatural);
  std::vector<double> values{1.0, 1.0, 1.0, 2.0, 0.0};
  ASSERT_TRUE(solver.factorize(values));
  const auto inertia = solver.inertia();
  EXPECT_EQ(inertia.positive, 2);
  EXPECT_EQ(inertia.negative, 1);
}

TEST(Ldlt, RefillWithSamePatternReusesAnalysis) {
  Rng rng(7);
  auto [ts, dense] = random_symmetric(30, 0.1, true, rng);
  SymmetricSolver solver;
  solver.analyze(30, ts, OrderingMethod::kRcm);
  std::vector<double> values;
  for (const auto& t : ts) values.push_back(t.value);
  ASSERT_TRUE(solver.factorize(values));
  // Scale all values by 2: solution of A x = b halves.
  for (auto& v : values) v *= 2.0;
  ASSERT_TRUE(solver.factorize(values));
  std::vector<double> b(30, 0.0), x1(30);
  for (int r = 0; r < 30; ++r)
    for (int c = 0; c < 30; ++c) b[r] += dense.at(r, c);
  auto x = b;
  solver.solve(x);
  for (int i = 0; i < 30; ++i) EXPECT_NEAR(x[i], 0.5, 1e-8);
}

}  // namespace
}  // namespace gridadmm::linalg
