#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "grid/cases.hpp"
#include "grid/dcflow.hpp"
#include "grid/flows.hpp"
#include "grid/synthetic.hpp"

namespace gridadmm::grid {
namespace {

TEST(DcFlow, TwoBusAnalytic) {
  // P = theta_diff / x; injecting 0.5 p.u. over x = 0.1 gives theta = -0.05.
  Network net;
  net.buses.resize(2);
  net.buses[0].id = 1;
  net.buses[0].type = BusType::kRef;
  net.buses[1].id = 2;
  Generator gen;
  gen.bus = 0;
  gen.pmax = 100.0;
  net.generators.push_back(gen);
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.x = 0.1;
  net.branches.push_back(branch);
  net.finalize();

  std::vector<double> injection{0.5, -0.5};
  const auto result = solve_dc_flow(net, injection);
  EXPECT_DOUBLE_EQ(result.theta[0], 0.0);
  EXPECT_NEAR(result.theta[1], -0.05, 1e-12);
  EXPECT_NEAR(result.branch_flow[0], 0.5, 1e-12);
}

TEST(DcFlow, FlowConservationAtEveryBus) {
  const auto net = make_synthetic_grid([] {
    SyntheticSpec spec;
    spec.buses = 60;
    spec.branches = 90;
    spec.generators = 12;
    spec.seed = 5;
    return spec;
  }());
  const auto result = solve_dc_flow_proportional(net);
  // Per-bus: injection - sum(outgoing flows) + sum(incoming flows) = 0.
  std::vector<double> residual(static_cast<std::size_t>(net.num_buses()), 0.0);
  double capacity = 0.0;
  for (const auto& gen : net.generators) capacity += gen.pmax;
  for (const auto& gen : net.generators) {
    residual[gen.bus] += net.total_load() * gen.pmax / capacity;
  }
  for (int i = 0; i < net.num_buses(); ++i) residual[i] -= net.buses[i].pd;
  for (int l = 0; l < net.num_branches(); ++l) {
    residual[net.branches[l].from] -= result.branch_flow[l];
    residual[net.branches[l].to] += result.branch_flow[l];
  }
  for (int i = 0; i < net.num_buses(); ++i) {
    EXPECT_NEAR(residual[i], 0.0, 1e-8) << "bus " << i;
  }
}

TEST(DcFlow, ApproximatesAcFlowsAtSmallAngles) {
  // On a lossless-ish case9, DC flows should be within ~15% of AC real flows.
  const auto net = load_embedded_case("case9");
  std::vector<double> injection(9, 0.0);
  // Balanced dispatch: slack covers each load bus proportionally.
  const double dispatch[3] = {0.9, 1.3, 0.95};
  injection[0] += dispatch[0];
  injection[1] += dispatch[1];
  injection[2] += dispatch[2];
  for (int i = 0; i < 9; ++i) injection[i] -= net.buses[i].pd;
  const double imbalance = std::accumulate(injection.begin(), injection.end(), 0.0);
  injection[0] -= imbalance;  // absorb at the reference
  const auto dc = solve_dc_flow(net, injection);
  // Evaluate AC flows at vm = 1, va = dc angles; real parts should be close.
  for (int l = 0; l < net.num_branches(); ++l) {
    const auto& branch = net.branches[l];
    const auto f = eval_flows(net.admittances[l], 1.0, 1.0, dc.theta[branch.from],
                              dc.theta[branch.to]);
    EXPECT_NEAR(f[kPij], dc.branch_flow[l], 0.15 * std::max(0.2, std::abs(dc.branch_flow[l])))
        << "branch " << l;
  }
}

TEST(DcFlow, RejectsBadInputs) {
  const auto net = load_embedded_case("case9");
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(solve_dc_flow(net, wrong), GridError);
  Network raw;  // unfinalized
  raw.buses.resize(2);
  std::vector<double> injection(2, 0.0);
  EXPECT_THROW(solve_dc_flow(raw, injection), GridError);
}

}  // namespace
}  // namespace gridadmm::grid
