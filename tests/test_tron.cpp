#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "admm/branch_problem.hpp"
#include "common/rng.hpp"
#include "grid/cases.hpp"
#include "tron/small_tron.hpp"
#include "tron/tron.hpp"

namespace gridadmm::tron {
namespace {

/// Quadratic problem 0.5 x'Qx - b'x over a box.
class BoxQp final : public TronProblem {
 public:
  BoxQp(linalg::DenseMatrix q, std::vector<double> b, std::vector<double> lo,
        std::vector<double> hi)
      : q_(std::move(q)), b_(std::move(b)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  [[nodiscard]] int dim() const override { return static_cast<int>(b_.size()); }
  void bounds(std::span<double> lower, std::span<double> upper) const override {
    std::copy(lo_.begin(), lo_.end(), lower.begin());
    std::copy(hi_.begin(), hi_.end(), upper.begin());
  }
  double eval_f(std::span<const double> x) override {
    std::vector<double> qx(b_.size());
    q_.matvec(x, qx);
    double f = 0.0;
    for (std::size_t i = 0; i < b_.size(); ++i) f += 0.5 * x[i] * qx[i] - b_[i] * x[i];
    return f;
  }
  void eval_gradient(std::span<const double> x, std::span<double> grad) override {
    std::vector<double> qx(b_.size());
    q_.matvec(x, qx);
    for (std::size_t i = 0; i < b_.size(); ++i) grad[i] = qx[i] - b_[i];
  }
  void eval_hessian(std::span<const double>, linalg::DenseMatrix& hess) override { hess = q_; }

 private:
  linalg::DenseMatrix q_;
  std::vector<double> b_, lo_, hi_;
};

/// 2-D Rosenbrock restricted to a box.
class BoxRosenbrock final : public TronProblem {
 public:
  [[nodiscard]] int dim() const override { return 2; }
  void bounds(std::span<double> lower, std::span<double> upper) const override {
    lower[0] = -2.0;
    upper[0] = 2.0;
    lower[1] = -1.0;
    upper[1] = 3.0;
  }
  double eval_f(std::span<const double> x) override {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  }
  void eval_gradient(std::span<const double> x, std::span<double> grad) override {
    const double b = x[1] - x[0] * x[0];
    grad[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * b;
    grad[1] = 200.0 * b;
  }
  void eval_hessian(std::span<const double> x, linalg::DenseMatrix& hess) override {
    hess(0, 0) = 2.0 - 400.0 * (x[1] - 3.0 * x[0] * x[0]);
    hess(0, 1) = -400.0 * x[0];
    hess(1, 0) = -400.0 * x[0];
    hess(1, 1) = 200.0;
  }
};

TEST(Tron, SolvesUnconstrainedQuadratic) {
  linalg::DenseMatrix q(2, 2);
  q(0, 0) = 2.0;
  q(1, 1) = 4.0;
  BoxQp prob(q, {2.0, 4.0}, {-10, -10}, {10, 10});
  TronSolver solver;
  std::vector<double> x{0.0, 0.0};
  const auto result = solver.minimize(prob, x);
  EXPECT_EQ(result.status, TronStatus::kConverged);
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 1.0, 1e-6);
}

TEST(Tron, RespectsActiveBounds) {
  linalg::DenseMatrix q(2, 2);
  q(0, 0) = 2.0;
  q(1, 1) = 2.0;
  // Unconstrained minimizer (5, 5); box caps at 1.
  BoxQp prob(q, {10.0, 10.0}, {-1, -1}, {1, 1});
  TronSolver solver;
  std::vector<double> x{0.0, 0.0};
  const auto result = solver.minimize(prob, x);
  EXPECT_EQ(result.status, TronStatus::kConverged);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 1.0, 1e-8);
}

TEST(Tron, SolvesRosenbrockInBox) {
  BoxRosenbrock prob;
  TronSolver solver;
  solver.options().max_iterations = 500;
  std::vector<double> x{-1.2, 1.0};
  const auto result = solver.minimize(prob, x);
  EXPECT_TRUE(result.status == TronStatus::kConverged ||
              result.status == TronStatus::kSmallReduction);
  EXPECT_NEAR(x[0], 1.0, 1e-4);
  EXPECT_NEAR(x[1], 1.0, 1e-4);
}

TEST(Tron, HandlesNegativeCurvatureToBound) {
  // Concave quadratic: minimizer must be at a box corner.
  linalg::DenseMatrix q(2, 2);
  q(0, 0) = -2.0;
  q(1, 1) = -2.0;
  BoxQp prob(q, {0.1, -0.1}, {-1, -1}, {1, 1});
  TronSolver solver;
  std::vector<double> x{0.2, 0.3};
  const auto result = solver.minimize(prob, x);
  EXPECT_TRUE(result.status == TronStatus::kConverged ||
              result.status == TronStatus::kSmallReduction);
  EXPECT_NEAR(std::abs(x[0]), 1.0, 1e-6);
  EXPECT_NEAR(std::abs(x[1]), 1.0, 1e-6);
}

TEST(Tron, ClampsInfeasibleStart) {
  linalg::DenseMatrix q(1, 1);
  q(0, 0) = 2.0;
  BoxQp prob(q, {0.0}, {0.0}, {1.0});
  TronSolver solver;
  std::vector<double> x{5.0};  // outside the box
  const auto result = solver.minimize(prob, x);
  EXPECT_EQ(result.status, TronStatus::kConverged);
  EXPECT_NEAR(x[0], 0.0, 1e-9);
}

TEST(Tron, ZeroGradientConvergesImmediately) {
  linalg::DenseMatrix q(2, 2);
  q(0, 0) = 1.0;
  q(1, 1) = 1.0;
  BoxQp prob(q, {1.0, 1.0}, {-5, -5}, {5, 5});
  TronSolver solver;
  std::vector<double> x{1.0, 1.0};  // exact solution
  const auto result = solver.minimize(prob, x);
  EXPECT_EQ(result.status, TronStatus::kConverged);
  EXPECT_EQ(result.iterations, 0);
}

class TronRandomQpTest : public ::testing::TestWithParam<int> {};

TEST_P(TronRandomQpTest, SatisfiesProjectedKktConditions) {
  gridadmm::Rng rng(500 + GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_index(5));
  linalg::DenseMatrix basis(n, n), q(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) basis(i, j) = rng.uniform(-1, 1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = i == j ? 0.5 : 0.0;
      for (int k = 0; k < n; ++k) acc += basis(i, k) * basis(j, k);
      q(i, j) = acc;
    }
  }
  std::vector<double> b(n), lo(n), hi(n), x(n);
  for (int i = 0; i < n; ++i) {
    b[i] = rng.uniform(-3, 3);
    lo[i] = rng.uniform(-1.5, -0.1);
    hi[i] = rng.uniform(0.1, 1.5);
    x[i] = rng.uniform(lo[i], hi[i]);
  }
  BoxQp prob(q, b, lo, hi);
  TronSolver solver;
  const auto result = solver.minimize(prob, x);
  ASSERT_TRUE(result.status == TronStatus::kConverged ||
              result.status == TronStatus::kSmallReduction);
  // Feasibility.
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(x[i], lo[i] - 1e-12);
    EXPECT_LE(x[i], hi[i] + 1e-12);
  }
  // Projected-gradient optimality.
  std::vector<double> grad(n);
  prob.eval_gradient(x, grad);
  for (int i = 0; i < n; ++i) {
    const double proj = std::clamp(x[i] - grad[i], lo[i], hi[i]) - x[i];
    EXPECT_LT(std::abs(proj), 1e-5) << "component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQps, TronRandomQpTest, ::testing::Range(0, 20));

// ---- Fixed-dimension fast path: bit-equality against the generic solver ----
//
// SmallTronSolver<N> claims to execute the exact operation sequence of
// TronSolver; these tests hold it to the strongest possible standard on the
// problem family it exists for — randomized ADMM branch subproblems built
// on real network admittances — comparing every result field and every
// iterate component for exact (bit-level) equality.

/// Runs both solvers on identically-bound branch problems from the same
/// start and asserts exact agreement. N is 4 (unrated) or 6 (rated).
template <int N>
void expect_bit_identical(admm::BranchProblem& problem, std::span<const double> x0,
                          const TronOptions& options) {
  std::vector<double> x_generic(x0.begin(), x0.end());
  std::vector<double> x_small(x0.begin(), x0.end());

  TronSolver generic(options);
  const auto ref = generic.minimize(problem, x_generic);

  SmallTronSolver<N> small(options);
  const auto fast = small.minimize(problem, x_small);

  EXPECT_EQ(fast.status, ref.status);
  EXPECT_EQ(fast.iterations, ref.iterations);
  EXPECT_EQ(fast.cg_iterations, ref.cg_iterations);
  EXPECT_EQ(fast.function_evals, ref.function_evals);
  EXPECT_EQ(fast.f, ref.f);  // exact: same operations in the same order
  EXPECT_EQ(fast.projected_gradient_norm, ref.projected_gradient_norm);
  for (int i = 0; i < N; ++i) {
    EXPECT_EQ(x_small[static_cast<std::size_t>(i)], x_generic[static_cast<std::size_t>(i)])
        << "component " << i;
  }
}

class SmallTronBranchTest : public ::testing::TestWithParam<int> {};

TEST_P(SmallTronBranchTest, BitIdenticalToGenericOnRandomBranchProblems) {
  gridadmm::Rng rng(1300 + GetParam());
  const auto net = grid::load_embedded_case("case30");
  const int l = static_cast<int>(rng.uniform_index(
      static_cast<std::size_t>(net.num_branches())));
  const bool rated = GetParam() % 2 == 0;

  const auto& y = net.admittances[static_cast<std::size_t>(l)];
  const double adm[8] = {y.gii, y.bii, y.gij, y.bij, y.gji, y.bji, y.gjj, y.bjj};
  const double vb[4] = {0.9, 1.1, 0.9, 1.1};
  double d[8], yk[8], rhok[8];
  for (int k = 0; k < 8; ++k) {
    d[k] = rng.uniform(-0.5, 0.5);
    yk[k] = rng.uniform(-5, 5);
    // Spread penalties over the realistic range (Table I presets reach
    // 1e3-1e5); the spread exercises the objective normalization.
    rhok[k] = rng.uniform(1.0, 2000.0);
  }
  admm::BranchProblem problem;
  problem.bind(adm, vb, rated ? rng.uniform(0.5, 4.0) : 0.0, d, yk, rhok);
  problem.set_line_multipliers(rated ? rng.uniform(-2, 2) : 0.0, rated ? rng.uniform(-2, 2) : 0.0,
                               rated ? rng.uniform(1.0, 100.0) : 0.0);

  TronOptions options;
  options.max_iterations = 50;
  options.gtol = 1e-7;

  if (rated) {
    const double x0[6] = {rng.uniform(0.92, 1.08), rng.uniform(0.92, 1.08),
                          rng.uniform(-0.4, 0.4),  rng.uniform(-0.4, 0.4),
                          rng.uniform(-1.0, 0.0),  rng.uniform(-1.0, 0.0)};
    ASSERT_EQ(problem.dim(), 6);
    expect_bit_identical<6>(problem, x0, options);
  } else {
    const double x0[4] = {rng.uniform(0.92, 1.08), rng.uniform(0.92, 1.08),
                          rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)};
    ASSERT_EQ(problem.dim(), 4);
    expect_bit_identical<4>(problem, x0, options);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBranchProblems, SmallTronBranchTest, ::testing::Range(0, 40));

TEST(SmallTron, BitIdenticalOnDegenerateOutageStagedData) {
  // An outaged branch's consensus data is zeroed by the batch staging; the
  // kernel then skips it, but the solver must still agree bit for bit on
  // the degenerate all-zero problem data (flat objective, immediate
  // convergence paths) a partially-staged iterate can present.
  const auto net = grid::load_embedded_case("case9");
  const auto& y = net.admittances[0];
  const double adm[8] = {y.gii, y.bii, y.gij, y.bij, y.gji, y.bji, y.gjj, y.bjj};
  const double vb[4] = {0.9, 1.1, 0.9, 1.1};
  double d[8] = {0}, yk[8] = {0}, rhok[8];
  std::fill(rhok, rhok + 8, 10.0);
  admm::BranchProblem problem;
  problem.bind(adm, vb, 0.0, d, yk, rhok);
  problem.set_line_multipliers(0.0, 0.0, 0.0);
  const double x0[4] = {1.0, 1.0, 0.0, 0.0};
  expect_bit_identical<4>(problem, x0, TronOptions{});
}

TEST(SmallTron, RejectsDimensionMismatch) {
  const auto net = grid::load_embedded_case("case9");
  const auto& y = net.admittances[0];
  const double adm[8] = {y.gii, y.bii, y.gij, y.bij, y.gji, y.bji, y.gjj, y.bjj};
  const double vb[4] = {0.9, 1.1, 0.9, 1.1};
  double d[8] = {0}, yk[8] = {0}, rhok[8];
  std::fill(rhok, rhok + 8, 10.0);
  admm::BranchProblem problem;
  problem.bind(adm, vb, /*rate2=*/2.0, d, yk, rhok);  // dim() == 6
  SmallTronSolver<4> solver;
  double x[4] = {1.0, 1.0, 0.0, 0.0};
  EXPECT_THROW(solver.minimize(problem, {x, 4}), GridError);
}

}  // namespace
}  // namespace gridadmm::tron
