// Scenario generation: determinism, N-1 topology rules, chaining structure.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "grid/cases.hpp"
#include "grid/network.hpp"
#include "scenario/ipm_engine.hpp"
#include "scenario/scenario_set.hpp"

namespace gridadmm::scenario {
namespace {

grid::Network two_triangles_with_bridge() {
  // Buses 0-1-2 and 3-4-5 form triangles joined only by branch 2-3: that
  // branch is a bridge, every triangle edge is not.
  grid::Network net;
  net.name = "bridge6";
  for (int i = 0; i < 6; ++i) {
    grid::Bus bus;
    bus.id = i + 1;
    bus.type = i == 0 ? grid::BusType::kRef : grid::BusType::kPQ;
    bus.pd = 10.0;
    bus.qd = 2.0;
    net.buses.push_back(bus);
  }
  auto link = [&](int a, int b) {
    grid::Branch br;
    br.from = a;
    br.to = b;
    br.r = 0.01;
    br.x = 0.1;
    net.branches.push_back(br);
  };
  link(0, 1);
  link(1, 2);
  link(2, 0);
  link(2, 3);  // the bridge (branch index 3)
  link(3, 4);
  link(4, 5);
  link(5, 3);
  grid::Generator gen;
  gen.bus = 0;
  gen.pmax = 100.0;
  gen.qmin = -50.0;
  gen.qmax = 50.0;
  gen.c1 = 10.0;
  net.generators.push_back(gen);
  net.finalize();
  return net;
}

TEST(Scenario, StochasticGenerationIsDeterministicPerSeed) {
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet a(net);
  a.add_stochastic_load(4, 0.05, 42);
  ScenarioSet b(net);
  b.add_stochastic_load(4, 0.05, 42);
  ASSERT_EQ(a.size(), 4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(a[s].pd, b[s].pd);
    EXPECT_EQ(a[s].qd, b[s].qd);
  }
  // A different seed must produce different loads.
  ScenarioSet c(net);
  c.add_stochastic_load(4, 0.05, 43);
  EXPECT_NE(a[0].pd, c[0].pd);
}

TEST(Scenario, StochasticPerturbationsPreservePowerFactor) {
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);
  set.add_stochastic_load(1, 0.05, 7);
  for (int i = 0; i < net.num_buses(); ++i) {
    if (net.buses[i].pd == 0.0) continue;
    const double factor = set[0].pd[i] / net.buses[i].pd;
    EXPECT_NEAR(set[0].qd[i], net.buses[i].qd * factor, 1e-12);
  }
}

TEST(Scenario, LoadScaleSpansTheRequestedRange) {
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);
  set.add_load_scale(5, 0.9, 1.1);
  ASSERT_EQ(set.size(), 5);
  EXPECT_DOUBLE_EQ(set[0].load_scale, 0.9);
  EXPECT_DOUBLE_EQ(set[2].load_scale, 1.0);
  EXPECT_DOUBLE_EQ(set[4].load_scale, 1.1);
  for (int i = 0; i < net.num_buses(); ++i) {
    EXPECT_NEAR(set[0].pd[i], 0.9 * net.buses[i].pd, 1e-12);
  }
}

TEST(Scenario, N1DropsExactlyOneInServiceBranchEach) {
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);
  const int appended = set.add_n1_contingencies();
  EXPECT_GT(appended, 0);
  std::vector<bool> seen(static_cast<std::size_t>(net.num_branches()), false);
  for (int s = 0; s < set.size(); ++s) {
    const auto& sc = set[s];
    EXPECT_EQ(sc.kind, ScenarioKind::kContingency);
    ASSERT_GE(sc.outage_branch, 0);
    ASSERT_LT(sc.outage_branch, net.num_branches());
    EXPECT_TRUE(net.branches[sc.outage_branch].on);
    EXPECT_FALSE(seen[static_cast<std::size_t>(sc.outage_branch)]) << "duplicate outage";
    seen[static_cast<std::size_t>(sc.outage_branch)] = true;
    // Removing the branch must keep the network connected.
    EXPECT_NO_THROW(grid::network_without_branch(net, sc.outage_branch));
  }
}

TEST(Scenario, N1SkipsBridges) {
  const auto net = two_triangles_with_bridge();
  EXPECT_TRUE(grid::is_bridge(net, 3));
  EXPECT_FALSE(grid::is_bridge(net, 0));
  ScenarioSet set(net);
  const int appended = set.add_n1_contingencies();
  EXPECT_EQ(appended, 6);  // 7 branches, one bridge
  for (int s = 0; s < set.size(); ++s) EXPECT_NE(set[s].outage_branch, 3);
}

TEST(Scenario, AddRejectsBridgeOutage) {
  const auto net = two_triangles_with_bridge();
  ScenarioSet set(net);
  Scenario bridge_outage;
  bridge_outage.outage_branch = 3;  // the bridge
  EXPECT_THROW(set.add(bridge_outage), GridError);
  Scenario ring_outage;
  ring_outage.outage_branch = 0;
  EXPECT_NO_THROW(set.add(ring_outage));
}

TEST(Scenario, NetworkWithoutBranchRejectsBridgeRemoval) {
  const auto net = two_triangles_with_bridge();
  EXPECT_THROW(grid::network_without_branch(net, 3), GridError);
  const auto reduced = grid::network_without_branch(net, 0);
  EXPECT_EQ(reduced.num_branches(), net.num_branches() - 1);
  EXPECT_EQ(reduced.num_buses(), net.num_buses());
}

TEST(Scenario, TrackingSequenceChainsPeriodToPeriod) {
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);
  grid::LoadProfileSpec spec;
  spec.periods = 5;
  const int first = set.add_tracking_sequence(spec, 0.02);
  ASSERT_EQ(set.size(), 5);
  EXPECT_EQ(set[first].chain_from, -1);
  EXPECT_DOUBLE_EQ(set[first].ramp_fraction, 0.0);
  for (int t = 1; t < 5; ++t) {
    EXPECT_EQ(set[first + t].chain_from, first + t - 1);
    EXPECT_DOUBLE_EQ(set[first + t].ramp_fraction, 0.02);
  }
  // Waves: one per period, because each period depends on the previous.
  const auto waves = set.waves();
  ASSERT_EQ(waves.size(), 5u);
  for (const auto& wave : waves) EXPECT_EQ(wave.size(), 1u);
}

TEST(Scenario, WavesGroupIndependentScenariosTogether) {
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);
  set.add_load_scale(3, 0.95, 1.05);
  grid::LoadProfileSpec spec;
  spec.periods = 3;
  set.add_tracking_sequence(spec, 0.02);
  set.add_tracking_sequence(spec, 0.02);
  const auto waves = set.waves();
  ASSERT_EQ(waves.size(), 3u);
  // Wave 0: the 3 load-scale scenarios plus both sequences' period 0.
  EXPECT_EQ(waves[0].size(), 5u);
  EXPECT_EQ(waves[1].size(), 2u);
  EXPECT_EQ(waves[2].size(), 2u);
}

TEST(Scenario, AddValidatesChainAndOutage) {
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);
  Scenario bad_chain;
  bad_chain.chain_from = 0;  // no scenario 0 yet
  EXPECT_THROW(set.add(bad_chain), GridError);
  Scenario bad_outage;
  bad_outage.outage_branch = net.num_branches();
  EXPECT_THROW(set.add(bad_outage), GridError);
  Scenario ok;
  EXPECT_EQ(set.add(ok), 0);
  EXPECT_EQ(set[0].pd.size(), static_cast<std::size_t>(net.num_buses()));
}

TEST(Scenario, AddRejectsChainedContingencies) {
  // Chains run on the full topology: the batch engine (branch mask) and the
  // sequential reference (reduced network) would otherwise diverge.
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);
  Scenario outage;
  outage.outage_branch = 1;
  ASSERT_EQ(set.add(outage), 0);

  Scenario chained_with_outage;
  chained_with_outage.chain_from = 0;
  chained_with_outage.outage_branch = 2;
  EXPECT_THROW(set.add(chained_with_outage), GridError);

  Scenario chained_from_outage;
  chained_from_outage.chain_from = 0;  // scenario 0 is a contingency
  EXPECT_THROW(set.add(chained_from_outage), GridError);
}

TEST(Scenario, MalformedInputsRaiseValidationError) {
  // Malformed caller input surfaces as ValidationError at add time instead
  // of NaN-poisoned iterates or out-of-bounds masks downstream.
  const auto net = grid::load_embedded_case("case9");
  ScenarioSet set(net);

  // Negative / non-finite load scale ranges.
  EXPECT_THROW(set.add_load_scale(3, -0.5, 1.0), ValidationError);
  EXPECT_THROW(set.add_load_scale(3, 0.0, 1.0), ValidationError);
  EXPECT_THROW(set.add_load_scale(3, 1.0, 0.5), ValidationError);
  EXPECT_THROW(set.add_load_scale(0, 0.9, 1.1), ValidationError);
  EXPECT_THROW(set.add_load_scale(3, std::nan(""), 1.0), ValidationError);

  // Out-of-range branch index.
  Scenario bad_outage;
  bad_outage.outage_branch = net.num_branches();
  EXPECT_THROW(set.add(bad_outage), ValidationError);
  bad_outage.outage_branch = -7;
  EXPECT_THROW(set.add(bad_outage), ValidationError);

  // Non-finite loads and annotations.
  Scenario nan_load;
  nan_load.pd.assign(static_cast<std::size_t>(net.num_buses()), 0.1);
  nan_load.qd.assign(static_cast<std::size_t>(net.num_buses()), 0.1);
  nan_load.pd[3] = std::nan("");
  EXPECT_THROW(set.add(nan_load), ValidationError);
  Scenario bad_scale;
  bad_scale.load_scale = std::numeric_limits<double>::infinity();
  EXPECT_THROW(set.add(bad_scale), ValidationError);
  Scenario bad_ramp;
  bad_ramp.ramp_fraction = -0.5;
  EXPECT_THROW(set.add(bad_ramp), ValidationError);
  Scenario bad_control;
  bad_control.controls.primal_tolerance = std::numeric_limits<double>::infinity();
  EXPECT_THROW(set.add(bad_control), ValidationError);

  // Wrong-size load vectors.
  Scenario short_loads;
  short_loads.pd = {1.0};
  short_loads.qd = {1.0};
  EXPECT_THROW(set.add(short_loads), ValidationError);

  // Other generator arguments.
  EXPECT_THROW(set.add_stochastic_load(2, -0.1, 1), ValidationError);
  grid::LoadProfileSpec spec;
  spec.periods = 3;
  EXPECT_THROW(set.add_tracking_sequence(spec, -1.0), ValidationError);

  // Nothing half-appended by any rejected call.
  EXPECT_TRUE(set.empty());

  // Bounds-checked indexing.
  set.add_base();
  EXPECT_EQ(set[0].kind, ScenarioKind::kBase);
  EXPECT_THROW(static_cast<void>(set[1]), ValidationError);
  EXPECT_THROW(static_cast<void>(set[-1]), ValidationError);
}

TEST(Scenario, StressCorpusStructure) {
  ScenarioSet set(grid::load_embedded_case("case30"));
  StressCorpusOptions options;
  const int appended = set.add_stress_corpus(options);
  ASSERT_EQ(appended, 1 + options.max_outages);
  ASSERT_EQ(set.size(), appended);

  // Scenario 0: the stressed base case — scaled loads, tight budgets.
  const Scenario& base = set[0];
  EXPECT_EQ(base.kind, ScenarioKind::kLoadScale);
  EXPECT_EQ(base.name, "case30/stress-base");
  EXPECT_DOUBLE_EQ(base.load_scale, options.load_scale);
  EXPECT_EQ(base.controls.max_inner_iterations, options.base_inner_budget);
  EXPECT_EQ(base.controls.max_outer_iterations, options.outer_budget);
  EXPECT_EQ(base.outage_branch, -1);

  // Remaining scenarios: stressed N-1 outages over non-bridge branches.
  const auto& net = set.network();
  for (int s = 1; s < set.size(); ++s) {
    const Scenario& sc = set[s];
    EXPECT_EQ(sc.kind, ScenarioKind::kContingency);
    ASSERT_GE(sc.outage_branch, 0);
    ASSERT_LT(sc.outage_branch, net.num_branches());
    EXPECT_TRUE(net.branches[static_cast<std::size_t>(sc.outage_branch)].on);
    EXPECT_FALSE(grid::is_bridge(net, sc.outage_branch));
    EXPECT_DOUBLE_EQ(sc.load_scale, options.load_scale);
    EXPECT_EQ(sc.controls.max_inner_iterations, options.outage_inner_budget);
    EXPECT_EQ(sc.controls.max_outer_iterations, options.outer_budget);
    // Loads carry the stress scale, not the base case's values.
    for (std::size_t b = 0; b < net.buses.size(); ++b) {
      EXPECT_DOUBLE_EQ(sc.pd[b], net.buses[b].pd * options.load_scale);
    }
  }

  // max_outages = 0 appends only the stressed base.
  ScenarioSet base_only(grid::load_embedded_case("case30"));
  StressCorpusOptions no_outages;
  no_outages.max_outages = 0;
  EXPECT_EQ(base_only.add_stress_corpus(no_outages), 1);

  StressCorpusOptions bad;
  bad.load_scale = -1.0;
  EXPECT_THROW(set.add_stress_corpus(bad), ValidationError);
}

TEST(Scenario, IpmEngineSolvesStressScenarioFromTrackingPath) {
  // The tracking path can hand a period that defeats ADMM to the IPM engine
  // directly: solve the stressed base scenario cold and warm, and check the
  // warm solve lands on the same objective.
  ScenarioSet set(grid::load_embedded_case("case30"));
  StressCorpusOptions corpus;
  corpus.max_outages = 0;
  set.add_stress_corpus(corpus);
  const Scenario& sc = set[0];

  const IpmEngineResult cold = solve_scenario_ipm(set.network(), sc);
  EXPECT_EQ(cold.ipm.status, ipm::IpmStatus::kOptimal);
  EXPECT_LT(cold.quality.max_violation, 1e-5);
  EXPECT_GT(cold.quality.objective, 0.0);

  // A primal-only warm start need not be faster (the paper's point about
  // IPMs and warm starts — the duals restart cold), but it must land on the
  // same optimum.
  const IpmEngineResult warm = solve_scenario_ipm(set.network(), sc, {}, &cold.solution);
  EXPECT_EQ(warm.ipm.status, ipm::IpmStatus::kOptimal);
  EXPECT_NEAR(warm.quality.objective, cold.quality.objective,
              1e-4 * std::abs(cold.quality.objective));
}

TEST(Scenario, IpmEngineThrowsTypedErrorOnInfeasibleScenario) {
  ScenarioSet set(grid::load_embedded_case("case9"));
  Scenario sc;
  sc.name = "case9/hopeless";
  sc.kind = ScenarioKind::kLoadScale;
  sc.load_scale = 10.0;
  set.add(sc);
  // Populate scaled loads the way add_load_scale would.
  Scenario stressed = set[0];
  const auto& net = set.network();
  stressed.pd.resize(net.buses.size());
  stressed.qd.resize(net.buses.size());
  for (std::size_t b = 0; b < net.buses.size(); ++b) {
    stressed.pd[b] = net.buses[b].pd * 10.0;
    stressed.qd[b] = net.buses[b].qd * 10.0;
  }
  try {
    solve_scenario_ipm(net, stressed);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("line-search-failure"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, IpmEngineHonorsWallBudget) {
  ScenarioSet set(grid::load_embedded_case("case30"));
  set.add_base();
  IpmEngineOptions options;
  options.wall_budget_seconds = 1e-9;
  try {
    solve_scenario_ipm(set.network(), set[0], options);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("time-budget"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace gridadmm::scenario
