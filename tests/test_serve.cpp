// Solve service semantics: coalescing correctness (batched == direct),
// warm-start cache behavior, admission control, drain under concurrency,
// telemetry, and the launch-count acceptance bar for >= 8 concurrent
// requests.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "admm/solver.hpp"
#include "common/error.hpp"
#include "device/fault.hpp"
#include "grid/cases.hpp"
#include "ipm/ipm_solver.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "opf/service.hpp"
#include "scenario/ipm_engine.hpp"
#include "scenario/scenario_set.hpp"
#include "serve/service.hpp"
#include "serve/solution_cache.hpp"
#include "serve/stats.hpp"

namespace gridadmm::serve {
namespace {

double rel_diff(double a, double b) { return std::abs(a - b) / std::max(1.0, std::abs(b)); }

std::vector<double> scaled(const std::vector<double>& base, double factor) {
  std::vector<double> out = base;
  for (double& v : out) v *= factor;
  return out;
}

struct CaseLoads {
  std::vector<double> pd, qd;
};

CaseLoads base_loads(const grid::Network& net) {
  CaseLoads loads;
  for (const auto& bus : net.buses) {
    loads.pd.push_back(bus.pd);
    loads.qd.push_back(bus.qd);
  }
  return loads;
}

TEST(SolveService, BatchedRequestsMatchDirectSolves) {
  // Requests coalesced into one fused micro-batch must reproduce direct
  // single-instance AdmmSolver results to 1e-6 relative.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 6;
  options.batching_window_seconds = 0.25;
  options.cache.capacity = 0;  // this test is about the solver path alone
  SolveService service(net, params, options);

  const std::vector<double> factors = {0.94, 0.97, 1.0, 1.02, 1.05, 1.08};
  std::vector<std::future<SolveResult>> futures;
  for (const double f : factors) {
    SolveRequest request;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    futures.push_back(service.submit(std::move(request)));
  }
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const auto result = futures[i].get();
    EXPECT_TRUE(result.converged);

    admm::AdmmSolver direct(net, params);
    direct.set_loads(scaled(loads.pd, factors[i]), scaled(loads.qd, factors[i]));
    const auto direct_stats = direct.solve();
    const auto quality = grid::evaluate_solution(
        [&] {
          grid::Network eval = net;
          for (int b = 0; b < eval.num_buses(); ++b) {
            eval.buses[static_cast<std::size_t>(b)].pd = loads.pd[static_cast<std::size_t>(b)] * factors[i];
            eval.buses[static_cast<std::size_t>(b)].qd = loads.qd[static_cast<std::size_t>(b)] * factors[i];
          }
          return eval;
        }(),
        direct.solution());
    SCOPED_TRACE("factor " + std::to_string(factors[i]));
    EXPECT_EQ(result.stats.inner_iterations, direct_stats.inner_iterations);
    EXPECT_LT(rel_diff(result.objective, quality.objective), 1e-6);
    EXPECT_LT(rel_diff(result.max_violation, quality.max_violation), 1e-6);
  }
}

TEST(SolveService, InterleavedLayoutOptionMatchesDirectSolves) {
  // ServiceOptions::layout must reach the micro-batch solves: requests
  // served from interleaved batches still reproduce direct AdmmSolver
  // iteration counts exactly.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.25;
  options.cache.capacity = 0;
  options.layout = admm::BatchLayout::kInterleaved;
  SolveService service(net, params, options);

  const std::vector<double> factors = {0.96, 1.0, 1.04};
  std::vector<std::future<SolveResult>> futures;
  for (const double f : factors) {
    SolveRequest request;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    futures.push_back(service.submit(std::move(request)));
  }
  for (std::size_t i = 0; i < factors.size(); ++i) {
    SCOPED_TRACE("factor " + std::to_string(factors[i]));
    const auto result = futures[i].get();
    EXPECT_TRUE(result.converged);
    admm::AdmmSolver direct(net, params);
    direct.set_loads(scaled(loads.pd, factors[i]), scaled(loads.qd, factors[i]));
    const auto direct_stats = direct.solve();
    EXPECT_EQ(result.stats.inner_iterations, direct_stats.inner_iterations);
    EXPECT_DOUBLE_EQ(result.stats.primal_residual, direct_stats.primal_residual);
  }
}

TEST(SolveService, CoalescingIssuesFewerLaunchesThanSequentialForEightRequests) {
  // The acceptance bar: >= 8 concurrent requests coalesced by the service
  // must issue fewer total kernel launches than per-request sequential
  // solves (LaunchStats attribution on dedicated devices).
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);
  constexpr int kRequests = 8;

  ServiceOptions options;
  options.max_batch_size = kRequests;
  options.batching_window_seconds = 1.0;  // generous: the burst must coalesce
  options.cache.capacity = 0;
  SolveService service(net, params, options);

  std::vector<std::future<SolveResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    SolveRequest request;
    const double f = 0.94 + 0.02 * i;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& future : futures) {
    const auto result = future.get();
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.batch_occupancy, kRequests);  // one batch served all 8
  }
  service.drain();
  const auto stats = service.stats();
  ASSERT_EQ(stats.batches, 1u);

  // Per-request sequential baseline on its own device.
  device::Device sequential_device(options.device_workers);
  for (int i = 0; i < kRequests; ++i) {
    admm::AdmmSolver solver(net, params, &sequential_device);
    const double f = 0.94 + 0.02 * i;
    solver.set_loads(scaled(loads.pd, f), scaled(loads.qd, f));
    solver.solve();
  }
  EXPECT_GT(stats.launch_stats.launches, 0u);
  EXPECT_LT(stats.launch_stats.launches, sequential_device.stats().launches);
}

TEST(SolveService, CacheHitWarmStartReducesIterations) {
  // A request whose loads sit near a cached solve is seeded from that
  // iterate and must converge in fewer ADMM iterations than a cold start
  // on the same perturbed load (the paper's tracking warm start, served).
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 1;  // isolate requests: one batch each
  options.batching_window_seconds = 0.0;
  options.cache.capacity = 8;
  options.cache.max_distance = 0.1;
  SolveService service(net, params, options);

  SolveRequest first;
  first.pd = loads.pd;
  first.qd = loads.qd;
  const auto cold = service.submit(std::move(first)).get();
  ASSERT_TRUE(cold.converged);
  EXPECT_FALSE(cold.cache_hit);

  SolveRequest second;
  second.pd = scaled(loads.pd, 1.02);
  second.qd = scaled(loads.qd, 1.02);
  const auto warm = service.submit(std::move(second)).get();
  ASSERT_TRUE(warm.converged);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_GT(warm.cache_distance, 0.0);

  // Cold-start reference for the same perturbed instance.
  admm::AdmmSolver reference(net, params);
  reference.set_loads(scaled(loads.pd, 1.02), scaled(loads.qd, 1.02));
  const auto reference_stats = reference.solve();
  ASSERT_TRUE(reference_stats.converged);
  EXPECT_LT(warm.stats.inner_iterations, reference_stats.inner_iterations);

  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.5);
}

TEST(SolveService, BypassCacheSkipsLookupAndInsertion) {
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  ServiceOptions options;
  options.max_batch_size = 1;
  options.batching_window_seconds = 0.0;
  SolveService service(net, params, options);

  SolveRequest request;
  request.bypass_cache = true;
  const auto result = service.submit(std::move(request)).get();
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.cache_hit);
  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(SolveService, BoundedQueueShedsWithCapacityError) {
  // Admission control: beyond max_queue_depth pending requests, submit()
  // sheds synchronously with CapacityError and nothing is enqueued.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  ServiceOptions options;
  options.max_batch_size = 8;
  options.batching_window_seconds = 30.0;  // hold the batch open: queue fills
  options.max_queue_depth = 3;
  options.cache.capacity = 0;
  SolveService service(net, params, options);

  std::vector<std::future<SolveResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(service.submit(SolveRequest{}));
  EXPECT_THROW(service.submit(SolveRequest{}), CapacityError);
  EXPECT_THROW(service.submit(SolveRequest{}), CapacityError);

  service.drain();  // flushes the held batch immediately
  for (auto& future : futures) EXPECT_TRUE(future.get().converged);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(SolveService, DrainCompletesAllAcceptedUnderConcurrentSubmitters) {
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.005;
  options.max_queue_depth = 1024;  // nothing sheds in this test
  SolveService service(net, params, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::vector<std::vector<std::future<SolveResult>>> futures(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SolveRequest request;
        const double f = 0.95 + 0.002 * (t * kPerThread + i);
        request.pd = scaled(loads.pd, f);
        request.qd = scaled(loads.qd, f);
        futures[static_cast<std::size_t>(t)].push_back(service.submit(std::move(request)));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0);
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
      EXPECT_TRUE(future.get().converged);
    }
  }
  // Every request landed in some batch; occupancies account for all of them.
  std::uint64_t served = 0;
  for (std::size_t k = 0; k < stats.batch_occupancy.size(); ++k) {
    served += stats.batch_occupancy[k] * (k + 1);
  }
  EXPECT_EQ(served, stats.submitted);

  // Draining is permanent: later submissions shed.
  EXPECT_THROW(service.submit(SolveRequest{}), CapacityError);
}

TEST(SolveService, HeterogeneousControlsApplyPerRequest) {
  // One batch mixing a budget-capped request with a default one: the capped
  // request must stop inside its own budget without affecting its neighbor.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  ServiceOptions options;
  options.max_batch_size = 2;
  options.batching_window_seconds = 0.5;
  options.cache.capacity = 0;
  SolveService service(net, params, options);

  SolveRequest capped;
  capped.controls.max_inner_iterations = 10;
  capped.controls.max_outer_iterations = 2;
  SolveRequest standard;
  auto capped_future = service.submit(std::move(capped));
  auto standard_future = service.submit(std::move(standard));

  const auto capped_result = capped_future.get();
  const auto standard_result = standard_future.get();
  EXPECT_EQ(capped_result.batch_id, standard_result.batch_id);
  EXPECT_FALSE(capped_result.converged);
  EXPECT_LE(capped_result.stats.inner_iterations, 20);
  EXPECT_TRUE(standard_result.converged);
}

TEST(SolveService, RejectsMalformedRequestsSynchronously) {
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ServiceOptions options;
  options.batching_window_seconds = 0.0;
  SolveService service(net, params, options);

  SolveRequest wrong_size;
  wrong_size.pd = {1.0, 2.0};
  wrong_size.qd = {1.0, 2.0};
  EXPECT_THROW(service.submit(std::move(wrong_size)), ValidationError);

  SolveRequest bad_outage;
  bad_outage.outage_branch = 999;
  EXPECT_THROW(service.submit(std::move(bad_outage)), ValidationError);

  SolveRequest nan_load;
  nan_load.pd.assign(static_cast<std::size_t>(net.num_buses()), 0.1);
  nan_load.qd.assign(static_cast<std::size_t>(net.num_buses()), 0.1);
  nan_load.pd[0] = std::nan("");
  EXPECT_THROW(service.submit(std::move(nan_load)), ValidationError);

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 0u);
}

TEST(SolveService, ManualClockFeedsLatencyTelemetry) {
  // The injected clock drives latency accounting only: advance it while the
  // batching window holds the request, and the recorded wait/total latency
  // reflect the manual time exactly.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  auto clock = std::make_shared<ManualClock>();

  ServiceOptions options;
  options.max_batch_size = 4;
  // A window the test never waits out: the batch stays open (1 < 4 pending)
  // until drain() flushes it, so advance() below is deterministically
  // ordered before the dispatch-time clock read.
  options.batching_window_seconds = 3600.0;
  options.clock = clock;
  options.cache.capacity = 0;
  SolveService service(net, params, options);

  auto future = service.submit(SolveRequest{});
  clock->advance(2.5);  // while the window holds the batch open
  service.drain();      // flushes the held batch immediately
  const auto result = future.get();
  EXPECT_DOUBLE_EQ(result.wait_seconds, 2.5);
  EXPECT_DOUBLE_EQ(result.total_seconds, 2.5);

  const auto stats = service.stats();
  EXPECT_EQ(stats.latency_samples, 1u);
  EXPECT_DOUBLE_EQ(stats.p50_latency, 2.5);
  EXPECT_DOUBLE_EQ(stats.p95_latency, 2.5);
}

TEST(SolveService, RequestsAgainstDifferentCasesNeverShareABatch) {
  const auto net9 = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net9.num_buses());
  auto net14 = std::make_shared<grid::Network>(grid::load_embedded_case("case14"));

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.3;
  options.cache.capacity = 0;
  SolveService service(net9, params, options);

  auto base_future = service.submit(SolveRequest{});
  SolveRequest other;
  other.network = net14;
  auto other_future = service.submit(std::move(other));

  const auto base_result = base_future.get();
  const auto other_result = other_future.get();
  EXPECT_NE(base_result.batch_id, other_result.batch_id);
  EXPECT_EQ(base_result.batch_occupancy, 1);
  EXPECT_EQ(other_result.batch_occupancy, 1);
  EXPECT_TRUE(base_result.converged);
  EXPECT_TRUE(other_result.converged);
  EXPECT_EQ(static_cast<int>(other_result.solution.vm.size()), net14->num_buses());
}

TEST(SolveService, MultiDeviceRoutesBatchesToIdleShard) {
  // Two pool devices: while one shard is busy with a slow solve, a second
  // micro-batch must be taken by the idle shard (work-conserving
  // dispatch); per-shard attribution sums to the aggregate figures.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 1;  // one batch per request
  options.batching_window_seconds = 0.0;
  options.num_devices = 2;
  options.device_workers = 2;
  options.cache.capacity = 0;
  SolveService service(net, params, options);

  // A deliberately slow request: unreachable tolerance, large budget.
  SolveRequest slow;
  slow.pd = loads.pd;
  slow.qd = loads.qd;
  slow.controls.primal_tolerance = 1e-14;
  slow.controls.dual_tolerance = 1e-14;
  slow.controls.max_inner_iterations = 50000;
  slow.controls.max_outer_iterations = 1;
  auto slow_future = service.submit(std::move(slow));
  // Wait until the slow batch is actually solving on some shard before
  // submitting the fast one, so the idle-shard pick is deterministic.
  auto solving = [&] {
    const auto stats = service.stats();
    return stats.per_shard[0].in_flight + stats.per_shard[1].in_flight;
  };
  for (int i = 0; i < 2000 && solving() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(solving(), 1);

  SolveRequest fast;
  fast.pd = scaled(loads.pd, 1.01);
  fast.qd = scaled(loads.qd, 1.01);
  const auto fast_result = service.submit(std::move(fast)).get();
  EXPECT_TRUE(fast_result.converged);
  slow_future.get();
  service.drain();

  const auto stats = service.stats();
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_EQ(stats.batches, 2u);
  // Work-conserving routing: with one shard occupied by the slow batch,
  // the fast batch must have landed on the other — one batch each.
  EXPECT_EQ(stats.per_shard[0].batches, 1u);
  EXPECT_EQ(stats.per_shard[1].batches, 1u);
  EXPECT_EQ(stats.dispatch_backlog, 0);
  std::uint64_t shard_batches = 0, shard_requests = 0;
  device::LaunchStats shard_launches;
  for (const auto& shard : stats.per_shard) {
    shard_batches += shard.batches;
    shard_requests += shard.requests;
    shard_launches += shard.launch_stats;
    EXPECT_EQ(shard.in_flight, 0);
  }
  EXPECT_EQ(shard_batches, stats.batches);
  EXPECT_EQ(shard_requests, stats.completed);
  EXPECT_EQ(shard_launches.launches, stats.launch_stats.launches);
  EXPECT_EQ(shard_launches.blocks, stats.launch_stats.blocks);
}

TEST(SolveService, MultiDevicePoolServesConcurrentBurstConsistently) {
  // A concurrent burst over a 2-device pool: every request is fulfilled,
  // per-shard counters reconcile with the aggregates, and results still
  // match the single-solver reference (routing must not change math).
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 2;
  options.batching_window_seconds = 0.001;
  options.num_devices = 2;
  options.device_workers = 2;
  options.cache.capacity = 0;
  SolveService service(net, params, options);

  constexpr int kRequests = 10;
  std::vector<std::future<SolveResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    SolveRequest request;
    const double f = 0.95 + 0.01 * i;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().converged);
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.failed, 0u);
  std::uint64_t shard_requests = 0;
  for (const auto& shard : stats.per_shard) shard_requests += shard.requests;
  EXPECT_EQ(shard_requests, stats.completed);

  // Spot-check one result against a direct solve.
  admm::AdmmSolver direct(net, params);
  direct.set_loads(scaled(loads.pd, 0.95), scaled(loads.qd, 0.95));
  direct.solve();
  const auto direct_quality = grid::evaluate_solution(
      [&] {
        grid::Network eval = net;
        for (int b = 0; b < eval.num_buses(); ++b) {
          eval.buses[static_cast<std::size_t>(b)].pd = loads.pd[static_cast<std::size_t>(b)] * 0.95;
          eval.buses[static_cast<std::size_t>(b)].qd = loads.qd[static_cast<std::size_t>(b)] * 0.95;
        }
        return eval;
      }(),
      direct.solution());
  SolveRequest check;
  check.pd = scaled(loads.pd, 0.95);
  check.qd = scaled(loads.qd, 0.95);
  // Service is drained; a fresh one verifies the math end to end.
  SolveService fresh(net, params, options);
  const auto result = fresh.submit(std::move(check)).get();
  EXPECT_LT(rel_diff(result.objective, direct_quality.objective), 1e-6);
}

TEST(SolutionCache, NearestNeighborWithinMaxDistance) {
  CacheOptions options;
  options.capacity = 4;
  options.max_distance = 0.05;
  SolutionCache cache(options);

  auto iterate_a = std::make_shared<admm::WarmStartIterate>();
  iterate_a->beta = 1.0;
  auto iterate_b = std::make_shared<admm::WarmStartIterate>();
  iterate_b->beta = 2.0;
  cache.insert(7, {1.0, 1.0}, {0.2, 0.2}, iterate_a);
  cache.insert(7, {1.10, 1.10}, {0.2, 0.2}, iterate_b);

  // Nearest to (1.04, ...) is iterate_a at distance 0.04.
  const auto hit = cache.lookup(7, std::vector<double>{1.04, 1.0}, std::vector<double>{0.2, 0.2});
  ASSERT_NE(hit.iterate, nullptr);
  EXPECT_DOUBLE_EQ(hit.iterate->beta, 1.0);
  EXPECT_NEAR(hit.distance, 0.04, 1e-12);

  // Beyond max_distance from both entries: miss.
  const auto miss = cache.lookup(7, std::vector<double>{1.3, 1.3}, std::vector<double>{0.2, 0.2});
  EXPECT_EQ(miss.iterate, nullptr);

  // Different key: miss even at distance zero.
  const auto wrong_key =
      cache.lookup(8, std::vector<double>{1.0, 1.0}, std::vector<double>{0.2, 0.2});
  EXPECT_EQ(wrong_key.iterate, nullptr);

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(SolutionCache, LruEvictionRespectsCapacity) {
  CacheOptions options;
  options.capacity = 2;
  options.max_distance = 0.01;
  SolutionCache cache(options);
  auto iterate = std::make_shared<admm::WarmStartIterate>();

  cache.insert(1, {1.0}, {0.0}, iterate);
  cache.insert(1, {2.0}, {0.0}, iterate);
  // Touch entry {1.0} so {2.0} is the LRU victim.
  ASSERT_NE(cache.lookup(1, std::vector<double>{1.0}, std::vector<double>{0.0}).iterate, nullptr);
  cache.insert(1, {3.0}, {0.0}, iterate);

  EXPECT_EQ(cache.size(), 2);
  EXPECT_NE(cache.lookup(1, std::vector<double>{1.0}, std::vector<double>{0.0}).iterate, nullptr);
  EXPECT_EQ(cache.lookup(1, std::vector<double>{2.0}, std::vector<double>{0.0}).iterate, nullptr);
  EXPECT_NE(cache.lookup(1, std::vector<double>{3.0}, std::vector<double>{0.0}).iterate, nullptr);

  // Identical loads replace in place instead of growing the cache.
  auto newer = std::make_shared<admm::WarmStartIterate>();
  newer->beta = 42.0;
  cache.insert(1, {3.0}, {0.0}, newer);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_DOUBLE_EQ(
      cache.lookup(1, std::vector<double>{3.0}, std::vector<double>{0.0}).iterate->beta, 42.0);
}

TEST(SolutionCache, EvictingTheInsertKeysOwnSoleEntryIsSafe) {
  // Regression: at capacity, inserting different loads under a key whose
  // sole entry is the global LRU victim must evict that entry (erasing the
  // key's bucket) and then insert cleanly — not write through a dangling
  // bucket reference.
  CacheOptions options;
  options.capacity = 1;
  options.max_distance = 0.01;
  SolutionCache cache(options);
  auto iterate = std::make_shared<admm::WarmStartIterate>();

  cache.insert(5, {1.0}, {0.0}, iterate);
  cache.insert(5, {2.0}, {0.0}, iterate);  // evicts {1.0}, the same key's bucket
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.lookup(5, std::vector<double>{1.0}, std::vector<double>{0.0}).iterate, nullptr);
  EXPECT_NE(cache.lookup(5, std::vector<double>{2.0}, std::vector<double>{0.0}).iterate, nullptr);
}

TEST(ServeStats, LatencyQuantileNearestRank) {
  EXPECT_DOUBLE_EQ(latency_quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(latency_quantile({3.0}, 0.95), 3.0);
  EXPECT_DOUBLE_EQ(latency_quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(latency_quantile({5.0, 1.0, 4.0, 2.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(latency_quantile({5.0, 1.0, 4.0, 2.0, 3.0}, 1.0), 5.0);
}

TEST(NetworkFingerprint, InvariantToLoadsSensitiveToStructure) {
  const auto net = grid::load_embedded_case("case9");
  auto loaded = net;
  for (auto& bus : loaded.buses) bus.pd *= 1.5;
  EXPECT_EQ(grid::network_fingerprint(net), grid::network_fingerprint(loaded));

  auto rerated = net;
  rerated.branches[0].rate *= 0.5;
  EXPECT_NE(grid::network_fingerprint(net), grid::network_fingerprint(rerated));

  const auto net14 = grid::load_embedded_case("case14");
  EXPECT_NE(grid::network_fingerprint(net), grid::network_fingerprint(net14));
}

TEST(OpfService, FacadeServesScaledAndContingencyRequests) {
  serve::ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.05;
  opf::OpfService service("case9", options);

  auto scaled_future = service.solve_scaled(1.03);
  auto outage_future = service.solve_contingency(4);
  const auto scaled_result = scaled_future.get();
  const auto outage_result = outage_future.get();
  EXPECT_TRUE(scaled_result.converged);
  EXPECT_TRUE(outage_result.converged);
  EXPECT_GT(scaled_result.objective, 0.0);
  // The outage solves a different structural key: never the same batch.
  EXPECT_NE(scaled_result.batch_id, outage_result.batch_id);

  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GE(stats.p95_latency, stats.p50_latency);
}

// ---------------------------------------------------------------------------
// SLO observability layer (DESIGN.md §11): request timelines, burn-rate
// monitor wiring, the exposition endpoint, and the disabled-path guarantees.
// ---------------------------------------------------------------------------

std::string serve_http_get(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(SolveService, TimelineStagesTelescopeAndFeedStageHistograms) {
  // With the SLO layer on, every fulfilled request carries a complete
  // monotone timeline whose stage durations telescope to exactly the
  // admit->fulfill total (the stamps are shared, so nothing can drift), and
  // each stage's latency lands in its per-stage histogram.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.01;
  options.cache.capacity = 0;
  options.slo = true;
  SolveService service(net, params, options);

  const std::vector<double> factors = {0.97, 1.0, 1.03};
  std::vector<std::future<SolveResult>> futures;
  for (const double f : factors) {
    SolveRequest request;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& future : futures) {
    const auto result = future.get();
    const auto& tl = result.timeline;
    EXPECT_TRUE(tl.complete());
    EXPECT_GT(tl.total_seconds(), 0.0);
    double stage_sum = 0.0;
    for (int st = 0; st < RequestTimeline::kStageCount; ++st) {
      EXPECT_GE(tl.stage_seconds(st), 0.0) << RequestTimeline::stage_name(st);
      stage_sum += tl.stage_seconds(st);
    }
    // Telescoping is exact at nanosecond resolution; the double sum only
    // re-rounds it.
    EXPECT_NEAR(stage_sum, tl.total_seconds(), 1e-12);
    const auto stamps = tl.stamps();
    for (std::size_t i = 1; i < stamps.size(); ++i) {
      EXPECT_GE(stamps[i], stamps[i - 1]) << "stamp " << i;
    }
  }
  service.drain();

  const std::string prom = service.metrics().expose_prometheus();
  for (int st = 0; st < RequestTimeline::kStageCount; ++st) {
    const std::string needle = std::string("serve_stage_") +
                               RequestTimeline::stage_name(st) + "_seconds_count 3";
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
}

TEST(SolveService, ExpoEndpointsAgreeWithServiceStats) {
  // /metrics, /healthz, and /slo answer from the same counters, watchdog,
  // and monitor the in-process accessors read — scrape a live service and
  // cross-check against stats().
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.01;
  options.cache.capacity = 0;
  options.slo = true;
  options.expo_port = 0;  // ephemeral loopback port
  SolveService service(net, params, options);
  ASSERT_NE(service.expo(), nullptr);
  ASSERT_GT(service.expo()->port(), 0);

  std::vector<std::future<SolveResult>> futures;
  for (const double f : {0.96, 1.0, 1.04, 1.08}) {
    SolveRequest request;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& future : futures) future.get();
  service.drain();
  const auto stats = service.stats();

  const std::string metrics =
      serve_http_get(service.expo()->port(), "GET /metrics HTTP/1.1");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("serve_requests_submitted_total " +
                         std::to_string(stats.submitted)),
            std::string::npos);
  EXPECT_NE(metrics.find("serve_requests_completed_total " +
                         std::to_string(stats.completed)),
            std::string::npos);

  // Every thread is idle post-drain, and idle threads are always healthy.
  const std::string healthz =
      serve_http_get(service.expo()->port(), "GET /healthz HTTP/1.1");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\"healthy\": true"), std::string::npos);

  const std::string slo = serve_http_get(service.expo()->port(), "GET /slo HTTP/1.1");
  EXPECT_NE(slo.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(slo.find("\"healthy\": true"), std::string::npos);

  EXPECT_EQ(service.expo()->requests_served(), 3u);
}

TEST(SolveService, SloLayerPreservesBitIdenticalSolves) {
  // The SLO layer only observes: the same requests through an slo=true and
  // an slo=false service produce bit-identical solutions and identical
  // iteration counts.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);
  const std::vector<double> factors = {0.95, 1.0, 1.06};

  auto run = [&](bool slo) {
    ServiceOptions options;
    options.max_batch_size = static_cast<int>(factors.size());
    options.batching_window_seconds = 0.25;  // coalesce all three either way
    options.cache.capacity = 0;
    options.slo = slo;
    SolveService service(net, params, options);
    std::vector<std::future<SolveResult>> futures;
    for (const double f : factors) {
      SolveRequest request;
      request.pd = scaled(loads.pd, f);
      request.qd = scaled(loads.qd, f);
      futures.push_back(service.submit(std::move(request)));
    }
    std::vector<SolveResult> results;
    for (auto& future : futures) results.push_back(future.get());
    return results;
  };

  const auto with_slo = run(true);
  const auto without_slo = run(false);
  ASSERT_EQ(with_slo.size(), without_slo.size());
  for (std::size_t i = 0; i < with_slo.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(with_slo[i].solution.vm, without_slo[i].solution.vm);
    EXPECT_EQ(with_slo[i].solution.va, without_slo[i].solution.va);
    EXPECT_EQ(with_slo[i].solution.pg, without_slo[i].solution.pg);
    EXPECT_EQ(with_slo[i].solution.qg, without_slo[i].solution.qg);
    EXPECT_EQ(with_slo[i].objective, without_slo[i].objective);
    EXPECT_EQ(with_slo[i].stats.inner_iterations, without_slo[i].stats.inner_iterations);
    // The observing service stamped full timelines; the plain one left
    // everything past the unconditional admit stamp at zero.
    EXPECT_TRUE(with_slo[i].timeline.complete());
    EXPECT_FALSE(without_slo[i].timeline.complete());
    EXPECT_EQ(without_slo[i].timeline.solve_ns, 0u);
  }
}

TEST(SolveService, DisabledSloLayerIsInertAndAllocationFree) {
  // slo=false must not construct a monitor, an endpoint, or stage
  // histograms — the construction counter across a full service lifecycle
  // stays flat.
  const auto before = obs::SloMonitor::allocations();
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);
  {
    ServiceOptions options;
    options.max_batch_size = 2;
    options.batching_window_seconds = 0.01;
    options.cache.capacity = 0;
    SolveService service(net, params, options);
    EXPECT_EQ(service.slo(), nullptr);
    EXPECT_EQ(service.expo(), nullptr);
    std::vector<std::future<SolveResult>> futures;
    for (const double f : {0.98, 1.02}) {
      SolveRequest request;
      request.pd = scaled(loads.pd, f);
      request.qd = scaled(loads.qd, f);
      futures.push_back(service.submit(std::move(request)));
    }
    for (auto& future : futures) EXPECT_TRUE(future.get().converged);
    service.drain();
    EXPECT_EQ(service.metrics().expose_prometheus().find("serve_stage_"),
              std::string::npos);
  }
  EXPECT_EQ(obs::SloMonitor::allocations(), before);
}

TEST(MetricsDump, CapturesDetachedRegistriesAndWritesJsonl) {
  // A standalone dump (no env, no atexit): attach a registry, render it,
  // detach it — the captured final snapshot must survive the registry.
  obs::MetricsRegistry registry;
  registry.counter("dump_probe_total").inc(7);
  obs::MetricsDump dump;
  EXPECT_TRUE(dump.env_path().empty());
  dump.attach("serve_test", &registry);

  const std::string live = dump.render(/*jsonl=*/true);
  EXPECT_NE(live.find("\"registry\": \"serve_test\""), std::string::npos);
  EXPECT_NE(live.find("dump_probe_total"), std::string::npos);

  const std::string path = ::testing::TempDir() + "gridadmm_dump_test.jsonl";
  std::remove(path.c_str());
  EXPECT_TRUE(dump.write_file(path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_EQ(line.front(), '{');
  EXPECT_NE(line.find("serve_test"), std::string::npos);
  std::remove(path.c_str());

  dump.detach(&registry);
  const std::string captured = dump.render(/*jsonl=*/true);
  EXPECT_NE(captured.find("\"registry\": \"serve_test\""), std::string::npos);
  EXPECT_NE(captured.find("dump_probe_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault tolerance (ISSUE 9 / DESIGN.md §12): poison isolation, transient
// retries, deadlines, and shard quarantine.
// ---------------------------------------------------------------------------

/// Arms the process-wide FaultInjector for one test scope and guarantees
/// disarm on every exit path, so a failing assertion cannot leak faults
/// into later tests.
struct FaultScope {
  explicit FaultScope(const device::FaultPlan& plan) {
    device::FaultInjector::instance().configure(plan);
  }
  ~FaultScope() { device::FaultInjector::instance().disable(); }
};

/// Loads that drive the fused iterate non-finite: they pass the submit-time
/// finiteness validation (1e308 is finite) but overflow inside the solve,
/// tripping BatchAdmmSolver's non-finite-residual trap — a permanent
/// NumericalError with no slot attribution, exactly the poison the
/// bisection machinery exists for.
SolveRequest poison_request(const grid::Network& net) {
  SolveRequest request;
  request.pd.assign(static_cast<std::size_t>(net.num_buses()), 1e308);
  request.qd.assign(static_cast<std::size_t>(net.num_buses()), 1e308);
  return request;
}

TEST(SolveService, PoisonRequestFailsAloneWhileCoBatchedRequestsConverge) {
  // One poison request coalesced with three healthy ones: the fused batch
  // fails batch-wide, the dispatcher bisects, and exactly the poison
  // future gets the NumericalError while the healthy three converge.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);
  auto clock = std::make_shared<ManualClock>();

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 3600.0;  // hold the batch open; drain flushes
  options.clock = clock;
  options.cache.capacity = 0;
  SolveService service(net, params, options);

  std::vector<std::future<SolveResult>> healthy;
  for (const double f : {0.95, 1.0, 1.05}) {
    SolveRequest request;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    healthy.push_back(service.submit(std::move(request)));
  }
  auto poisoned = service.submit(poison_request(net));
  service.drain();  // flushes all four as one micro-batch

  for (auto& future : healthy) {
    const auto result = future.get();  // must not throw
    EXPECT_TRUE(result.converged);
  }
  EXPECT_THROW(poisoned.get(), NumericalError);

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_GE(stats.bisections, 1u);  // the 4-wide batch split at least once
  EXPECT_EQ(stats.deadline_shed, 0u);
}

TEST(SolveService, TransientFaultRetriesToBitIdenticalResults) {
  // A single injected transient launch failure (launch=1.0, limit=1) makes
  // the first fused attempt throw TransientDeviceError; the retry re-runs
  // the identical group from the identical seeds, so every result is
  // bit-identical to the faults-off run.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);
  const std::vector<double> factors = {0.96, 1.0, 1.04};

  auto run = [&]() {
    auto clock = std::make_shared<ManualClock>();
    ServiceOptions options;
    options.max_batch_size = static_cast<int>(factors.size());
    options.batching_window_seconds = 3600.0;
    options.clock = clock;
    options.cache.capacity = 0;
    options.retry_backoff_seconds = 0.0;  // no need to sleep in tests
    SolveService service(net, params, options);
    std::vector<std::future<SolveResult>> futures;
    for (const double f : factors) {
      SolveRequest request;
      request.pd = scaled(loads.pd, f);
      request.qd = scaled(loads.qd, f);
      futures.push_back(service.submit(std::move(request)));
    }
    service.drain();
    std::vector<SolveResult> results;
    for (auto& future : futures) results.push_back(future.get());
    const auto stats = service.stats();
    return std::make_pair(std::move(results), stats);
  };

  const auto clean = run();
  device::FaultPlan plan;
  plan.launch_fail_probability = 1.0;  // the very first launch fails...
  plan.limit = 1;                      // ...and nothing after it
  std::pair<std::vector<SolveResult>, ServiceStats> faulty;
  {
    FaultScope faults(plan);
    faulty = run();
    const auto counters = device::FaultInjector::instance().counters();
    EXPECT_EQ(counters.launch_failures, 1u);
  }

  EXPECT_EQ(clean.second.retries, 0u);
  EXPECT_EQ(faulty.second.retries, 1u);  // one transient failure, one re-attempt
  ASSERT_EQ(clean.first.size(), faulty.first.size());
  for (std::size_t i = 0; i < clean.first.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_TRUE(faulty.first[i].converged);
    EXPECT_EQ(faulty.first[i].solution.vm, clean.first[i].solution.vm);
    EXPECT_EQ(faulty.first[i].solution.va, clean.first[i].solution.va);
    EXPECT_EQ(faulty.first[i].solution.pg, clean.first[i].solution.pg);
    EXPECT_EQ(faulty.first[i].solution.qg, clean.first[i].solution.qg);
    EXPECT_EQ(faulty.first[i].objective, clean.first[i].objective);
    EXPECT_EQ(faulty.first[i].stats.inner_iterations, clean.first[i].stats.inner_iterations);
    EXPECT_EQ(faulty.first[i].solve_attempts, 2);
    EXPECT_EQ(clean.first[i].solve_attempts, 1);
  }
}

TEST(SolveService, LedgerBalancesUnderConcurrentSubmittersWithFaultsOn) {
  // Concurrent submitters against a fault-injecting service: every accepted
  // future resolves (value or typed error) and the service's ledger
  // balances exactly — completed + failed == submitted, with capacity
  // sheds accounted on the side. No future is ever lost.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  device::FaultPlan plan;
  plan.seed = 7;
  plan.launch_fail_probability = 0.002;  // a few percent per fused attempt
  plan.cooldown = 50;
  FaultScope faults(plan);

  ServiceOptions options;
  options.max_batch_size = 4;
  options.max_queue_depth = 8;  // small: concurrent bursts do shed
  options.batching_window_seconds = 0.001;
  options.cache.capacity = 0;
  options.max_retries = 1;
  options.retry_backoff_seconds = 0.0;
  SolveService service(net, params, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> completed{0}, failed{0}, shed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SolveRequest request;
        const double f = 0.9 + 0.01 * static_cast<double>(t * kPerThread + i);
        request.pd = scaled(loads.pd, f);
        request.qd = scaled(loads.qd, f);
        std::future<SolveResult> future;
        try {
          future = service.submit(std::move(request));
        } catch (const CapacityError&) {
          ++shed;
          continue;
        }
        try {
          future.get();
          ++completed;
        } catch (const GridError&) {
          ++failed;
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(completed + failed + shed, kThreads * kPerThread);  // no lost future
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(completed + failed));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(completed));
  EXPECT_EQ(stats.failed, static_cast<std::uint64_t>(failed));
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(stats.deadline_shed, 0u);
  // The ledger identity the chaos-smoke CI step asserts:
  EXPECT_EQ(stats.completed + stats.failed + stats.deadline_shed, stats.submitted);
}

TEST(SolveService, DeadlineShedsAtAdmissionAndAtDispatchPickup) {
  // First rung: a request already expired at submit is rejected
  // synchronously. Second rung: a request that expires while the batching
  // window holds it is shed with DeadlineError at dispatch pickup. Neither
  // counts as a capacity shed.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  auto clock = std::make_shared<ManualClock>(/*start=*/10.0);

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 3600.0;
  options.clock = clock;
  options.cache.capacity = 0;
  options.slo = true;
  SolveService service(net, params, options);

  // Admission rung: deadline 5.0 < now 10.0.
  SolveRequest expired;
  expired.deadline = 5.0;
  EXPECT_THROW(service.submit(std::move(expired)), DeadlineError);

  // Pickup rung: deadline 12.0 is alive at submit (now 10.0); the held
  // batch dispatches only after the clock passes it.
  SolveRequest queued;
  queued.deadline = 12.0;
  auto shed_future = service.submit(std::move(queued));
  // A deadline-free companion proves the shed is per-request, not batch-wide.
  auto alive_future = service.submit(SolveRequest{});
  clock->advance(5.0);  // now 15.0 > 12.0
  service.drain();

  EXPECT_THROW(shed_future.get(), DeadlineError);
  EXPECT_TRUE(alive_future.get().converged);

  const auto stats = service.stats();
  EXPECT_EQ(stats.deadline_shed, 2u);
  EXPECT_EQ(stats.shed, 0u);       // deadline sheds are not capacity sheds
  EXPECT_EQ(stats.submitted, 2u);  // the admission shed never entered the queue
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);     // a deadline shed is not a solve failure
  EXPECT_EQ(stats.completed + stats.failed + /*pickup sheds*/ 1u, stats.submitted);
  // The SLO monitor counts them in the separate deadline bucket, never in
  // the shed burn.
  ASSERT_NE(service.slo(), nullptr);
  EXPECT_EQ(service.slo()->window_deadline_shed(3600.0, clock->now()), 2u);
  EXPECT_EQ(service.slo()->window_shed(3600.0, clock->now()), 0u);
}

TEST(SolveService, QuarantineTripsRedistributesAndHalfOpenRecovers) {
  // Shard 1 fails every launch until the injector's limit exhausts: its
  // consecutive batch failures trip the circuit breaker, queued work
  // drains on shard 0, and after the backoff a half-open probe batch
  // re-admits shard 1 to healthy.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  device::FaultPlan plan;
  plan.launch_fail_probability = 1.0;
  plan.shard = 1;  // only shard 1's device fails
  plan.limit = 2;  // exactly the threshold: exhausted by the time it trips
  FaultScope faults(plan);

  ServiceOptions options;
  options.num_devices = 2;
  options.max_batch_size = 1;  // one request per batch: many chances to trip
  options.max_queue_depth = 64;
  options.batching_window_seconds = 0.0;
  options.cache.capacity = 0;
  options.max_retries = 0;  // every injected failure is an exhausted batch
  options.retry_backoff_seconds = 0.0;
  options.quarantine_threshold = 2;
  options.quarantine_backoff_seconds = 0.05;
  SolveService service(net, params, options);

  auto submit_one = [&](double f) {
    SolveRequest request;
    request.pd = scaled(loads.pd, f);
    request.qd = scaled(loads.qd, f);
    return service.submit(std::move(request));
  };

  // Wave 1: enough single-request batches that shard 1 (which fails in
  // microseconds and comes back for more) eats at least two of them.
  std::vector<std::future<SolveResult>> wave1;
  for (int i = 0; i < 12; ++i) wave1.push_back(submit_one(0.9 + 0.01 * i));
  int wave1_completed = 0, wave1_failed = 0;
  for (auto& future : wave1) {
    try {
      future.get();
      ++wave1_completed;
    } catch (const TransientDeviceError&) {
      ++wave1_failed;
    }
  }
  EXPECT_EQ(wave1_completed + wave1_failed, 12);
  // Redistribution: despite shard 1 failing every launch until the limit,
  // only the two breaker-tripping batches fail — the rest of the queue
  // drained on shard 0 (or on shard 1 after its recovery).
  EXPECT_EQ(wave1_failed, 2);

  // Futures resolve inside the solve; the worker commits its telemetry just
  // after. Absorb that tiny lag before asserting on the counters.
  auto stats = service.stats();
  for (int wait = 0; wait < 100; ++wait) {
    if (stats.per_shard[0].requests + stats.per_shard[1].requests == 12u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = service.stats();
  }
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_GE(stats.per_shard[1].quarantines, 1u);        // the breaker tripped
  EXPECT_GE(stats.quarantine_transitions, 1u);
  EXPECT_GT(stats.per_shard[0].requests, 0u);           // healthy shard kept serving
  EXPECT_EQ(stats.per_shard[0].requests + stats.per_shard[1].requests, 12u);

  // Give the backoff time to elapse, then feed probe batches until shard 1
  // takes one half-open probe and recovers (the injector limit is long
  // exhausted, so the probe succeeds).
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  bool recovered = false;
  for (int nudge = 0; nudge < 50 && !recovered; ++nudge) {
    try {
      EXPECT_TRUE(submit_one(1.0 + 0.001 * nudge).get().converged);
    } catch (const TransientDeviceError&) {
      // A half-open probe that drew one more injected fault: the breaker
      // re-quarantines and a later nudge retries the recovery.
    }
    stats = service.stats();
    recovered = stats.per_shard[1].state == 0 && stats.per_shard[1].quarantines >= 1;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered) << "shard 1 never recovered to healthy via half-open probe";
  // quarantined -> half-open -> healthy is at least three transitions.
  EXPECT_GE(stats.quarantine_transitions, 3u);
  EXPECT_EQ(stats.per_shard[1].consecutive_failures, 0);
}

TEST(SolveService, EscalationRungRecoversStalledRequestSolo) {
  // A request whose own controls give it a hopeless iteration budget stalls
  // and gets flagged by should_escalate; the degraded-mode rung re-solves
  // it solo with a boosted budget and the future carries the recovery.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  ServiceOptions options;
  options.max_batch_size = 2;
  options.batching_window_seconds = 0.01;
  options.cache.capacity = 0;
  options.escalation_retry = true;
  options.escalation_budget_boost = 1000.0;  // 2x1 starved -> 2000x1000 boosted
  options.convergence_sample_interval = 1;  // the rung needs trajectories
  SolveService service(net, params, options);

  SolveRequest starved;
  // One inner iteration yields a single-sample trajectory: too little
  // evidence of progress, so should_escalate flags it deterministically.
  starved.controls.max_inner_iterations = 1;
  starved.controls.max_outer_iterations = 1;
  const auto result = service.submit(std::move(starved)).get();
  EXPECT_TRUE(result.escalated);
  EXPECT_TRUE(result.converged);  // the boosted solo retry finished the job

  const auto stats = service.stats();
  EXPECT_EQ(stats.escalation_retries, 1u);
  EXPECT_EQ(stats.escalation_recovered, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

/// The case30 stress recipe (scenario::StressCorpusOptions defaults) phrased
/// as a serve request: uniformly scaled loads plus a per-request iteration
/// budget tight enough that both ADMM rungs fail, while the warm-started
/// MiniIPM fallback converges.
SolveRequest stress_request(const grid::Network& net) {
  const scenario::StressCorpusOptions corpus;
  SolveRequest request;
  for (const auto& bus : net.buses) {
    request.pd.push_back(bus.pd * corpus.load_scale);
    request.qd.push_back(bus.qd * corpus.load_scale);
  }
  request.controls.max_inner_iterations = corpus.base_inner_budget;
  request.controls.max_outer_iterations = corpus.outer_budget;
  return request;
}

TEST(SolveService, StressRequestDefeatsPureAdmmButIpmRungRescues) {
  // The tentpole acceptance: a stress request that demonstrably defeats the
  // pure-ADMM ladder completes converged through the MiniIPM rung, with the
  // rescue attributed (engine, escalated, stats split) and the objective
  // agreeing with a direct MiniIPM solve of the same scenario to 1e-4.
  const auto net = grid::load_embedded_case("case30");
  const auto params = admm::params_for_case("case30", net.num_buses());

  auto run = [&](bool fallback) {
    ServiceOptions options;
    options.max_batch_size = 2;
    options.batching_window_seconds = 0.01;
    options.cache.capacity = 0;
    options.escalation_retry = true;
    options.convergence_sample_interval = 8;
    options.engine_fallback = fallback;
    SolveService service(net, params, options);
    auto result = service.submit(stress_request(net)).get();
    service.drain();  // telemetry commits at end-of-batch; don't race it
    auto stats = service.stats();
    return std::make_pair(std::move(result), std::move(stats));
  };

  // Router off: both ADMM rungs exhaust their budgets and the future is
  // fulfilled with a non-converged result — the gap the router closes.
  const auto pure = run(false);
  EXPECT_FALSE(pure.first.converged);
  EXPECT_EQ(pure.first.engine, SolveEngine::kAdmm);
  EXPECT_EQ(pure.second.completed, 1u);
  EXPECT_EQ(pure.second.ipm_attempts, 0u);

  // Router on: same request, rescued by the IPM rung.
  const auto routed = run(true);
  EXPECT_TRUE(routed.first.converged);
  EXPECT_TRUE(routed.first.escalated);
  EXPECT_EQ(routed.first.engine, SolveEngine::kIpm);
  EXPECT_LT(routed.first.max_violation, 1e-5);
  EXPECT_EQ(routed.second.completed, 1u);
  EXPECT_EQ(routed.second.completed_ipm, 1u);
  EXPECT_EQ(routed.second.completed_admm, 0u);
  EXPECT_EQ(routed.second.ipm_attempts, 1u);
  EXPECT_EQ(routed.second.ipm_failures, 0u);
  EXPECT_EQ(routed.second.completed_admm + routed.second.completed_escalated_admm +
                routed.second.completed_ipm,
            routed.second.completed);

  // Objective agreement with the direct MiniIPM path on the same scenario.
  scenario::ScenarioSet set(net);
  scenario::StressCorpusOptions corpus;
  corpus.max_outages = 0;
  set.add_stress_corpus(corpus);
  const auto direct = scenario::solve_scenario_ipm(set.network(), set[0]);
  EXPECT_NEAR(routed.first.objective, direct.quality.objective,
              1e-4 * std::abs(direct.quality.objective));
}

TEST(SolveService, IpmRungFailureSurfacesTypedConvergenceError) {
  // A request no engine can solve (hopeless loads within the finiteness
  // envelope plus a starved ADMM budget) must fail the future with the
  // typed ConvergenceError from the IPM rung — never a silently
  // non-converged "success".
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  ServiceOptions options;
  options.max_batch_size = 2;
  options.batching_window_seconds = 0.01;
  options.cache.capacity = 0;
  options.engine_fallback = true;
  SolveService service(net, params, options);

  SolveRequest hopeless;
  hopeless.pd = scaled(loads.pd, 10.0);
  hopeless.qd = scaled(loads.qd, 10.0);
  hopeless.controls.max_inner_iterations = 20;
  hopeless.controls.max_outer_iterations = 2;
  auto future = service.submit(std::move(hopeless));
  EXPECT_THROW(future.get(), ConvergenceError);
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.ipm_attempts, 1u);
  EXPECT_EQ(stats.ipm_failures, 1u);
  // The ledger holds with the failure attributed to the fallback engine.
  EXPECT_EQ(stats.completed + stats.failed + stats.deadline_shed, stats.submitted);
}

TEST(SolveService, DeadlineExpiredAtEscalationPickupShedsInsteadOfRescuing) {
  // Satellite of the router: a request whose deadline passes during the
  // fused ADMM solve is shed as a deadline miss at escalation pickup — the
  // rescue must not burn IPM time on an answer nobody can use.
  const auto net = grid::load_embedded_case("case30");
  const auto params = admm::params_for_case("case30", net.num_buses());
  auto clock = std::make_shared<SteadyClock>();

  ServiceOptions options;
  options.max_batch_size = 2;
  options.batching_window_seconds = 0.001;
  options.cache.capacity = 0;
  options.engine_fallback = true;
  options.clock = clock;
  SolveService service(net, params, options);

  // The stressed rung-1 solve takes well over 40 ms; admission and dispatch
  // pickup happen within a few ms. The deadline lands in between.
  SolveRequest request = stress_request(net);
  request.deadline = clock->now() + 0.04;
  auto future = service.submit(std::move(request));
  try {
    future.get();
    FAIL() << "expected DeadlineError";
  } catch (const DeadlineError& e) {
    EXPECT_NE(std::string(e.what()).find("escalation pickup"), std::string::npos) << e.what();
  }
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.deadline_shed, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.ipm_attempts, 0u);  // the rescue never started
  EXPECT_EQ(stats.completed + stats.failed + stats.deadline_shed, stats.submitted);
}

TEST(SolveService, EngineSplitSumsUnderConcurrentSubmittersWithFaultsOn) {
  // Four concurrent submitters, faults armed, full ladder enabled, and a
  // mix of healthy and starved requests: the ledger balances and the
  // per-engine completion split sums exactly to completed — counted both
  // from the service stats and independently from the results themselves.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);

  device::FaultPlan plan;
  plan.seed = 11;
  plan.launch_fail_probability = 0.002;
  plan.cooldown = 50;
  FaultScope faults(plan);

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.001;
  options.cache.capacity = 0;
  options.max_retries = 1;
  options.retry_backoff_seconds = 0.0;
  options.escalation_retry = true;
  options.escalation_budget_boost = 1000.0;
  options.convergence_sample_interval = 1;
  options.engine_fallback = true;
  SolveService service(net, params, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::atomic<int> completed{0}, failed{0};
  std::atomic<int> by_engine[3] = {{0}, {0}, {0}};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SolveRequest request;
        const double f = 0.9 + 0.01 * static_cast<double>(t * kPerThread + i);
        request.pd = scaled(loads.pd, f);
        request.qd = scaled(loads.qd, f);
        if (i % 2 == 1) {
          // Starved budget: stalls in the fused batch, flagged by
          // should_escalate, recovered by the boosted solo rung.
          request.controls.max_inner_iterations = 1;
          request.controls.max_outer_iterations = 1;
        }
        try {
          const auto result = service.submit(std::move(request)).get();
          ++completed;
          ++by_engine[static_cast<int>(result.engine)];
          EXPECT_EQ(result.escalated, result.engine != SolveEngine::kAdmm);
        } catch (const GridError&) {
          ++failed;
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(completed + failed, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(completed));
  EXPECT_EQ(stats.completed + stats.failed + stats.deadline_shed, stats.submitted);
  // Engine split: stats agree with the per-result attribution, and sum
  // exactly to completed.
  EXPECT_EQ(stats.completed_admm, static_cast<std::uint64_t>(by_engine[0].load()));
  EXPECT_EQ(stats.completed_escalated_admm, static_cast<std::uint64_t>(by_engine[1].load()));
  EXPECT_EQ(stats.completed_ipm, static_cast<std::uint64_t>(by_engine[2].load()));
  EXPECT_EQ(stats.completed_admm + stats.completed_escalated_admm + stats.completed_ipm,
            stats.completed);
  EXPECT_GE(stats.ipm_attempts, stats.completed_ipm + stats.ipm_failures);
  // The starved half really exercised the ladder.
  EXPECT_GT(stats.completed_escalated_admm + stats.completed_ipm, 0u);
}

TEST(SolveService, DisabledRouterIsBitIdenticalAndBuildsNoFallbackEngine) {
  // engine_fallback=false must leave the serving path untouched: results
  // bit-identical to a router-enabled service on healthy load (the router
  // only ever runs on non-converged slots), and the fallback engine is
  // never even constructed — the IpmSolver construction counter stays flat
  // across the whole service lifecycle.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const auto loads = base_loads(net);
  const std::vector<double> factors = {0.95, 1.0, 1.06};

  auto run = [&](bool fallback) {
    ServiceOptions options;
    options.max_batch_size = static_cast<int>(factors.size());
    options.batching_window_seconds = 0.25;
    options.cache.capacity = 0;
    options.engine_fallback = fallback;
    SolveService service(net, params, options);
    std::vector<std::future<SolveResult>> futures;
    for (const double f : factors) {
      SolveRequest request;
      request.pd = scaled(loads.pd, f);
      request.qd = scaled(loads.qd, f);
      futures.push_back(service.submit(std::move(request)));
    }
    std::vector<SolveResult> results;
    for (auto& future : futures) results.push_back(future.get());
    service.drain();
    const auto stats = service.stats();
    return std::make_pair(std::move(results), stats);
  };

  const auto with_router = run(true);
  const auto before = ipm::IpmSolver::allocations();
  const auto without_router = run(false);
  EXPECT_EQ(ipm::IpmSolver::allocations(), before);  // no engine built

  ASSERT_EQ(with_router.first.size(), without_router.first.size());
  for (std::size_t i = 0; i < with_router.first.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_TRUE(without_router.first[i].converged);
    EXPECT_EQ(without_router.first[i].engine, SolveEngine::kAdmm);
    EXPECT_FALSE(without_router.first[i].escalated);
    EXPECT_EQ(with_router.first[i].solution.vm, without_router.first[i].solution.vm);
    EXPECT_EQ(with_router.first[i].solution.va, without_router.first[i].solution.va);
    EXPECT_EQ(with_router.first[i].solution.pg, without_router.first[i].solution.pg);
    EXPECT_EQ(with_router.first[i].solution.qg, without_router.first[i].solution.qg);
    EXPECT_EQ(with_router.first[i].objective, without_router.first[i].objective);
    EXPECT_EQ(with_router.first[i].stats.inner_iterations,
              without_router.first[i].stats.inner_iterations);
  }
  EXPECT_EQ(without_router.second.completed_admm, without_router.second.completed);
  EXPECT_EQ(without_router.second.ipm_attempts, 0u);
  EXPECT_EQ(without_router.second.completed_escalated_admm, 0u);
  EXPECT_EQ(without_router.second.completed_ipm, 0u);
}

TEST(SolveService, FaultsOffPathHasNoRetryTelemetry) {
  // With the injector disarmed, the whole fault-tolerance layer is inert:
  // no retries, no bisections, no quarantines, and the per-shard breaker
  // stays healthy. (Bit-identity of results is covered by
  // BatchedRequestsMatchDirectSolves and TransientFaultRetriesToBitIdenticalResults.)
  ASSERT_FALSE(device::FaultInjector::enabled());
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  ServiceOptions options;
  options.max_batch_size = 4;
  options.batching_window_seconds = 0.01;
  options.cache.capacity = 0;
  SolveService service(net, params, options);
  std::vector<std::future<SolveResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(service.submit(SolveRequest{}));
  for (auto& future : futures) EXPECT_TRUE(future.get().converged);

  const auto stats = service.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.bisections, 0u);
  EXPECT_EQ(stats.quarantine_transitions, 0u);
  EXPECT_EQ(stats.deadline_shed, 0u);
  for (const auto& shard : stats.per_shard) {
    EXPECT_EQ(shard.state, 0);
    EXPECT_EQ(shard.quarantines, 0u);
  }
}

TEST(SolveService, IntervalSnapshotsAppendParseableMetricsLines) {
  // metrics_snapshot_path + a short interval: the maintenance thread (and
  // the destructor's final pass) append one JSON object per line.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  const std::string path = ::testing::TempDir() + "gridadmm_snapshot_test.jsonl";
  std::remove(path.c_str());
  {
    ServiceOptions options;
    options.max_batch_size = 2;
    options.batching_window_seconds = 0.01;
    options.cache.capacity = 0;
    options.metrics_snapshot_path = path;
    options.metrics_snapshot_interval_seconds = 0.05;
    SolveService service(net, params, options);
    EXPECT_TRUE(service.submit(SolveRequest{}).get().converged);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }  // destructor appends the final snapshot
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::size_t parseable = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line.front() == '{' && line.back() == '}' &&
        line.find("serve_requests_submitted_total") != std::string::npos) {
      ++parseable;
    }
  }
  EXPECT_GE(parseable, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gridadmm::serve
