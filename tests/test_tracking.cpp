// Tests of the warm-start tracking driver (paper Section IV-C).
#include <gtest/gtest.h>

#include <cmath>

#include "device/buffer.hpp"
#include "device/pool.hpp"
#include "grid/cases.hpp"
#include "opf/tracking.hpp"

namespace gridadmm::opf {
namespace {

TEST(Tracking, ProducesOneRecordPerPeriod) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 5;
  options.run_ipm = false;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);
  const auto records = sim.run();
  ASSERT_EQ(records.size(), 5u);
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(records[t].period, t + 1);
    EXPECT_TRUE(records[t].admm_converged) << "period " << t + 1;
    EXPECT_LT(records[t].admm_violation, 1e-2);
  }
  EXPECT_DOUBLE_EQ(records[0].load_scale, 1.0);
}

TEST(Tracking, WarmPeriodsAreCheaperThanColdStart) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 6;
  options.run_ipm = false;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);
  const auto records = sim.run();
  // The paper's Figure 1 claim: warm-started periods take far fewer
  // iterations than the cold first period.
  for (std::size_t t = 1; t < records.size(); ++t) {
    EXPECT_LT(records[t].admm_iterations, records[0].admm_iterations)
        << "period " << t + 1;
  }
}

TEST(Tracking, RampLimitsRestrictDispatchChanges) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 4;
  options.run_ipm = false;
  options.ramp_fraction = 0.02;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);

  // Re-run manually to capture dispatch: use the solver API directly.
  admm::AdmmSolver solver(net, admm::params_for_case("case9", 9));
  std::vector<double> prev_pg;
  const auto& profile = sim.load_profile();
  std::vector<double> pd(net.num_buses()), qd(net.num_buses());
  std::vector<double> pmin(net.num_generators()), pmax(net.num_generators());
  for (int t = 0; t < options.periods; ++t) {
    for (int i = 0; i < net.num_buses(); ++i) {
      pd[i] = net.buses[i].pd * profile[t];
      qd[i] = net.buses[i].qd * profile[t];
    }
    for (int g = 0; g < net.num_generators(); ++g) {
      const double ramp = options.ramp_fraction * net.generators[g].pmax;
      pmin[g] = t == 0 ? net.generators[g].pmin
                       : std::max(net.generators[g].pmin, prev_pg[g] - ramp);
      pmax[g] = t == 0 ? net.generators[g].pmax
                       : std::min(net.generators[g].pmax, prev_pg[g] + ramp);
    }
    solver.set_loads(pd, qd);
    solver.set_generator_pg_bounds(pmin, pmax);
    if (t > 0) solver.prepare_warm_start();
    solver.solve();
    const auto pg = solver.solution().pg;
    if (t > 0) {
      for (int g = 0; g < net.num_generators(); ++g) {
        const double ramp = options.ramp_fraction * net.generators[g].pmax;
        EXPECT_LE(std::abs(pg[g] - prev_pg[g]), ramp + 1e-6)
            << "gen " << g << " period " << t + 1;
      }
    }
    prev_pg = pg;
  }
}

TEST(Tracking, BaselineComparisonFillsGapColumn) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 3;
  options.run_ipm = true;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);
  const auto records = sim.run();
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.ipm_converged);
    EXPECT_LT(rec.relative_gap, 0.02);
    EXPECT_GT(rec.ipm_objective, 0.0);
  }
}

TEST(Tracking, BatchedPingPongMatchesPersistentLayoutAndCapsMemory) {
  // run_batched_tracking defaults to ping-pong wave memory; the records
  // must be identical to the persistent layout, and the live batch-state
  // footprint must stay constant in the number of periods.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  TrackingOptions flat_options;
  flat_options.periods = 5;
  flat_options.run_ipm = false;
  flat_options.ping_pong = false;
  const auto flat = run_batched_tracking(net, params, flat_options, 2);

  TrackingOptions pp_options = flat_options;
  pp_options.ping_pong = true;
  const auto live_before = device::allocation_stats().live_bytes;
  device::reset_allocation_peak();
  const auto pp = run_batched_tracking(net, params, pp_options, 2);
  const auto pp_peak = device::allocation_stats().peak_bytes - live_before;

  ASSERT_EQ(pp.profiles.size(), flat.profiles.size());
  for (std::size_t p = 0; p < pp.profiles.size(); ++p) {
    ASSERT_EQ(pp.profiles[p].size(), flat.profiles[p].size());
    for (std::size_t t = 0; t < pp.profiles[p].size(); ++t) {
      SCOPED_TRACE("profile " + std::to_string(p) + " period " + std::to_string(t));
      EXPECT_EQ(pp.profiles[p][t].admm_iterations, flat.profiles[p][t].admm_iterations);
      EXPECT_EQ(pp.profiles[p][t].admm_converged, flat.profiles[p][t].admm_converged);
      EXPECT_LT(std::abs(pp.profiles[p][t].admm_objective - flat.profiles[p][t].admm_objective) /
                    flat.profiles[p][t].admm_objective,
                1e-6);
    }
  }

  // Doubling the horizon must not grow the ping-pong peak.
  TrackingOptions longer = pp_options;
  longer.periods = 10;
  const auto live_before_long = device::allocation_stats().live_bytes;
  device::reset_allocation_peak();
  run_batched_tracking(net, params, longer, 2);
  const auto long_peak = device::allocation_stats().peak_bytes - live_before_long;
  EXPECT_EQ(long_peak, pp_peak);
}

TEST(Tracking, InterleavedLayoutOptionMatchesDefaultRecords) {
  // TrackingOptions::layout must reach the fused wave solves: the
  // interleaved run walks the identical iteration sequence as the default
  // scenario-major run, period for period.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  TrackingOptions options;
  options.periods = 4;
  options.run_ipm = false;
  const auto major = run_batched_tracking(net, params, options, 2);
  options.layout = admm::BatchLayout::kInterleaved;
  const auto interleaved = run_batched_tracking(net, params, options, 2);

  ASSERT_EQ(interleaved.profiles.size(), major.profiles.size());
  for (std::size_t p = 0; p < major.profiles.size(); ++p) {
    for (std::size_t t = 0; t < major.profiles[p].size(); ++t) {
      SCOPED_TRACE("profile " + std::to_string(p) + " period " + std::to_string(t));
      EXPECT_EQ(interleaved.profiles[p][t].admm_iterations,
                major.profiles[p][t].admm_iterations);
      EXPECT_EQ(interleaved.profiles[p][t].admm_converged,
                major.profiles[p][t].admm_converged);
      EXPECT_LT(std::abs(interleaved.profiles[p][t].admm_objective -
                         major.profiles[p][t].admm_objective) /
                    major.profiles[p][t].admm_objective,
                1e-6);
    }
  }
}

TEST(Tracking, BatchedTrackingOverDevicePoolMatchesSingleDevice) {
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  TrackingOptions options;
  options.periods = 4;
  options.run_ipm = false;
  const auto single = run_batched_tracking(net, params, options, 3);
  device::DevicePool pool(2, 2);
  const auto sharded = run_batched_tracking(net, params, options, 3, pool);
  ASSERT_EQ(sharded.profiles.size(), single.profiles.size());
  for (std::size_t p = 0; p < sharded.profiles.size(); ++p) {
    for (std::size_t t = 0; t < sharded.profiles[p].size(); ++t) {
      SCOPED_TRACE("profile " + std::to_string(p) + " period " + std::to_string(t));
      EXPECT_EQ(sharded.profiles[p][t].admm_iterations, single.profiles[p][t].admm_iterations);
      EXPECT_LT(
          std::abs(sharded.profiles[p][t].admm_objective - single.profiles[p][t].admm_objective) /
              single.profiles[p][t].admm_objective,
          1e-6);
    }
  }
  EXPECT_EQ(sharded.report.num_shards, 2);
}

}  // namespace
}  // namespace gridadmm::opf
