// Tests of the warm-start tracking driver (paper Section IV-C).
#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "opf/tracking.hpp"

namespace gridadmm::opf {
namespace {

TEST(Tracking, ProducesOneRecordPerPeriod) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 5;
  options.run_ipm = false;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);
  const auto records = sim.run();
  ASSERT_EQ(records.size(), 5u);
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(records[t].period, t + 1);
    EXPECT_TRUE(records[t].admm_converged) << "period " << t + 1;
    EXPECT_LT(records[t].admm_violation, 1e-2);
  }
  EXPECT_DOUBLE_EQ(records[0].load_scale, 1.0);
}

TEST(Tracking, WarmPeriodsAreCheaperThanColdStart) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 6;
  options.run_ipm = false;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);
  const auto records = sim.run();
  // The paper's Figure 1 claim: warm-started periods take far fewer
  // iterations than the cold first period.
  for (std::size_t t = 1; t < records.size(); ++t) {
    EXPECT_LT(records[t].admm_iterations, records[0].admm_iterations)
        << "period " << t + 1;
  }
}

TEST(Tracking, RampLimitsRestrictDispatchChanges) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 4;
  options.run_ipm = false;
  options.ramp_fraction = 0.02;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);

  // Re-run manually to capture dispatch: use the solver API directly.
  admm::AdmmSolver solver(net, admm::params_for_case("case9", 9));
  std::vector<double> prev_pg;
  const auto& profile = sim.load_profile();
  std::vector<double> pd(net.num_buses()), qd(net.num_buses());
  std::vector<double> pmin(net.num_generators()), pmax(net.num_generators());
  for (int t = 0; t < options.periods; ++t) {
    for (int i = 0; i < net.num_buses(); ++i) {
      pd[i] = net.buses[i].pd * profile[t];
      qd[i] = net.buses[i].qd * profile[t];
    }
    for (int g = 0; g < net.num_generators(); ++g) {
      const double ramp = options.ramp_fraction * net.generators[g].pmax;
      pmin[g] = t == 0 ? net.generators[g].pmin
                       : std::max(net.generators[g].pmin, prev_pg[g] - ramp);
      pmax[g] = t == 0 ? net.generators[g].pmax
                       : std::min(net.generators[g].pmax, prev_pg[g] + ramp);
    }
    solver.set_loads(pd, qd);
    solver.set_generator_pg_bounds(pmin, pmax);
    if (t > 0) solver.prepare_warm_start();
    solver.solve();
    const auto pg = solver.solution().pg;
    if (t > 0) {
      for (int g = 0; g < net.num_generators(); ++g) {
        const double ramp = options.ramp_fraction * net.generators[g].pmax;
        EXPECT_LE(std::abs(pg[g] - prev_pg[g]), ramp + 1e-6)
            << "gen " << g << " period " << t + 1;
      }
    }
    prev_pg = pg;
  }
}

TEST(Tracking, BaselineComparisonFillsGapColumn) {
  const auto net = grid::load_embedded_case("case9");
  TrackingOptions options;
  options.periods = 3;
  options.run_ipm = true;
  TrackingSimulator sim(net, admm::params_for_case("case9", 9), options);
  const auto records = sim.run();
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.ipm_converged);
    EXPECT_LT(rec.relative_gap, 0.02);
    EXPECT_GT(rec.ipm_objective, 0.0);
  }
}

}  // namespace
}  // namespace gridadmm::opf
