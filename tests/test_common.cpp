#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace gridadmm {
namespace {

TEST(Rng, IsDeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalHasApproximatelyUnitVariance) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(3);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.uniform_index(10)];
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Require, ThrowsOnFailure) {
  EXPECT_THROW(require(false, "boom"), GridError);
  EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), GridError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::sci(1234.5, 2), "1.23e+03");
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--case=case9", "--iters=50", "--verbose", "--scale=2.5"};
  Options opts(5, argv);
  EXPECT_EQ(opts.get("case", ""), "case9");
  EXPECT_EQ(opts.get_int("iters", 0), 50);
  EXPECT_TRUE(opts.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(opts.get_double("scale", 0.0), 2.5);
  EXPECT_EQ(opts.get("missing", "fallback"), "fallback");
}

namespace { void benchmark_do_not_optimize(double& v) { asm volatile("" : "+m"(v)); } }

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  const double t0 = timer.seconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_do_not_optimize(sink);
  EXPECT_GE(timer.seconds(), t0);
}

}  // namespace
}  // namespace gridadmm
