#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/sparse.hpp"

namespace gridadmm::linalg {
namespace {

TEST(SparseMatrix, FromTripletsSortsAndSumsDuplicates) {
  std::vector<Triplet> ts{{1, 0, 2.0}, {0, 0, 1.0}, {1, 0, 3.0}, {2, 1, 4.0}};
  const auto a = SparseMatrix::from_triplets(3, 2, ts);
  EXPECT_EQ(a.nnz(), 3);
  // Column 0: rows 0 (1.0) and 1 (5.0).
  EXPECT_EQ(a.colptr()[0], 0);
  EXPECT_EQ(a.colptr()[1], 2);
  EXPECT_EQ(a.rowind()[0], 0);
  EXPECT_DOUBLE_EQ(a.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(a.values()[1], 5.0);
  EXPECT_DOUBLE_EQ(a.values()[2], 4.0);
}

TEST(SparseMatrix, RejectsOutOfRange) {
  std::vector<Triplet> ts{{3, 0, 1.0}};
  EXPECT_THROW(SparseMatrix::from_triplets(3, 2, ts), GridError);
}

TEST(SparseMatrix, MatvecMatchesDense) {
  Rng rng(17);
  const int m = 20, n = 15;
  std::vector<Triplet> ts;
  std::vector<std::vector<double>> dense(m, std::vector<double>(n, 0.0));
  for (int k = 0; k < 80; ++k) {
    const int r = static_cast<int>(rng.uniform_index(m));
    const int c = static_cast<int>(rng.uniform_index(n));
    const double v = rng.uniform(-1, 1);
    ts.push_back({r, c, v});
    dense[r][c] += v;
  }
  const auto a = SparseMatrix::from_triplets(m, n, ts);
  std::vector<double> x(n), y(m), yt(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.matvec(x, y);
  for (int r = 0; r < m; ++r) {
    double acc = 0.0;
    for (int c = 0; c < n; ++c) acc += dense[r][c] * x[c];
    EXPECT_NEAR(y[r], acc, 1e-12);
  }
  std::vector<double> w(m);
  for (auto& v : w) v = rng.uniform(-1, 1);
  a.matvec_transpose(w, yt);
  for (int c = 0; c < n; ++c) {
    double acc = 0.0;
    for (int r = 0; r < m; ++r) acc += dense[r][c] * w[r];
    EXPECT_NEAR(yt[c], acc, 1e-12);
  }
}

TEST(SparseMatrix, TransposeRoundTrip) {
  Rng rng(23);
  std::vector<Triplet> ts;
  for (int k = 0; k < 40; ++k) {
    ts.push_back({static_cast<int>(rng.uniform_index(10)), static_cast<int>(rng.uniform_index(8)),
                  rng.uniform(-1, 1)});
  }
  const auto a = SparseMatrix::from_triplets(10, 8, ts);
  const auto att = a.transpose().transpose();
  ASSERT_EQ(att.nnz(), a.nnz());
  for (int k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(att.rowind()[k], a.rowind()[k]);
    EXPECT_DOUBLE_EQ(att.values()[k], a.values()[k]);
  }
}

}  // namespace
}  // namespace gridadmm::linalg
