#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "linalg/ordering.hpp"

namespace gridadmm::linalg {
namespace {

bool is_permutation_of_iota(std::span<const int> perm) {
  std::vector<int> sorted(perm.begin(), perm.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<int>(i)) return false;
  }
  return true;
}

std::vector<Triplet> random_symmetric_pattern(int n, int edges, Rng& rng) {
  std::vector<Triplet> ts;
  // Chain guarantees connectivity.
  for (int i = 0; i + 1 < n; ++i) ts.push_back({i + 1, i, 1.0});
  for (int k = 0; k < edges; ++k) {
    int a = static_cast<int>(rng.uniform_index(n));
    int b = static_cast<int>(rng.uniform_index(n));
    if (a == b) continue;
    ts.push_back({std::max(a, b), std::min(a, b), 1.0});
  }
  return ts;
}

class OrderingParamTest : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(OrderingParamTest, ProducesValidPermutation) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5 + static_cast<int>(rng.uniform_index(60));
    const auto pattern = random_symmetric_pattern(n, 2 * n, rng);
    const auto perm = compute_ordering(n, pattern, GetParam());
    ASSERT_EQ(static_cast<int>(perm.size()), n);
    EXPECT_TRUE(is_permutation_of_iota(perm));
    const auto iperm = invert_permutation(perm);
    for (int i = 0; i < n; ++i) EXPECT_EQ(iperm[perm[i]], i);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, OrderingParamTest,
                         ::testing::Values(OrderingMethod::kNatural, OrderingMethod::kRcm,
                                           OrderingMethod::kMinDegree));

TEST(Ordering, RcmReducesBandwidthOnChainWithShuffle) {
  // A path graph labelled badly: RCM should recover a small bandwidth.
  const int n = 50;
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  Rng rng(77);
  for (int i = n - 1; i > 0; --i) {
    std::swap(label[i], label[rng.uniform_index(static_cast<std::uint64_t>(i) + 1)]);
  }
  std::vector<Triplet> pattern;
  for (int i = 0; i + 1 < n; ++i) {
    pattern.push_back({std::max(label[i], label[i + 1]), std::min(label[i], label[i + 1]), 1.0});
  }
  const auto perm = compute_ordering(n, pattern, OrderingMethod::kRcm);
  const auto iperm = invert_permutation(perm);
  int bandwidth = 0;
  for (const auto& t : pattern) {
    bandwidth = std::max(bandwidth, std::abs(iperm[t.row] - iperm[t.col]));
  }
  EXPECT_LE(bandwidth, 3);
}

TEST(Ordering, HandlesDisconnectedGraphs) {
  // Two components plus an isolated vertex.
  std::vector<Triplet> pattern{{1, 0, 1.0}, {3, 2, 1.0}};
  for (const auto method :
       {OrderingMethod::kNatural, OrderingMethod::kRcm, OrderingMethod::kMinDegree}) {
    const auto perm = compute_ordering(5, pattern, method);
    EXPECT_TRUE(is_permutation_of_iota(perm));
  }
}

TEST(Ordering, HandlesEmptyMatrix) {
  const auto perm = compute_ordering(0, {}, OrderingMethod::kRcm);
  EXPECT_TRUE(perm.empty());
}

}  // namespace
}  // namespace gridadmm::linalg
