// Batched multi-scenario solve versus independent sequential solves: the
// fused engine must reproduce the sequential results while issuing fewer
// kernel launches (the subsystem's reason to exist).
#include <gtest/gtest.h>

#include <cmath>

#include "device/buffer.hpp"
#include "device/device.hpp"
#include "device/pool.hpp"
#include "grid/cases.hpp"
#include "opf/tracking.hpp"
#include "scenario/batch_plan.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/scenario_set.hpp"

namespace gridadmm::scenario {
namespace {

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max(1.0, std::abs(b));
}

TEST(BatchAdmm, SixteenLoadScenariosMatchSequentialWithFewerLaunches) {
  // The acceptance bar: S=16 case9 load scenarios, per-scenario objectives
  // within 1e-6 relative of sequential AdmmSolver runs, strictly fewer
  // total kernel launches (device::LaunchStats attribution).
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(16, 0.92, 1.08);

  const auto sequential = solve_sequential(set, params);
  BatchAdmmSolver solver(set, params);
  const auto batched = solver.solve();

  ASSERT_EQ(batched.records.size(), 16u);
  ASSERT_EQ(sequential.records.size(), 16u);
  for (int s = 0; s < 16; ++s) {
    SCOPED_TRACE("scenario " + std::to_string(s));
    EXPECT_TRUE(batched.records[s].converged);
    EXPECT_EQ(batched.records[s].converged, sequential.records[s].converged);
    EXPECT_LT(rel_diff(batched.records[s].objective, sequential.records[s].objective), 1e-6);
    EXPECT_LT(rel_diff(batched.records[s].max_violation, sequential.records[s].max_violation),
              1e-6);
  }
  EXPECT_GT(batched.launch_stats.launches, 0u);
  EXPECT_LT(batched.launch_stats.launches, sequential.launch_stats.launches);
}

TEST(BatchAdmm, ControlFlowReplicaMatchesIterationCounts) {
  // Stronger than the objective bar: the per-scenario control-flow replica
  // must walk the exact same iteration sequence as the sequential solver.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(6, 0.95, 1.05);

  const auto sequential = solve_sequential(set, params);
  BatchAdmmSolver solver(set, params);
  const auto batched = solver.solve();
  for (int s = 0; s < set.size(); ++s) {
    SCOPED_TRACE("scenario " + std::to_string(s));
    EXPECT_EQ(batched.records[s].inner_iterations, sequential.records[s].inner_iterations);
    EXPECT_EQ(batched.records[s].outer_iterations, sequential.records[s].outer_iterations);
    EXPECT_DOUBLE_EQ(batched.records[s].primal_residual, sequential.records[s].primal_residual);
    EXPECT_DOUBLE_EQ(batched.records[s].dual_residual, sequential.records[s].dual_residual);
  }
}

TEST(BatchAdmm, ContingencyMaskMatchesReducedNetworkSolve) {
  // A masked-out branch in the batch must behave exactly like solving the
  // network with that branch removed (what the sequential reference does).
  const auto net = grid::load_embedded_case("case30");
  const auto params = admm::params_for_case("case30", net.num_buses());
  ScenarioSet set(net);
  ASSERT_GE(set.add_n1_contingencies(4), 2);

  const auto sequential = solve_sequential(set, params);
  BatchAdmmSolver solver(set, params);
  const auto batched = solver.solve();
  for (int s = 0; s < set.size(); ++s) {
    SCOPED_TRACE(set[s].name);
    EXPECT_EQ(batched.records[s].inner_iterations, sequential.records[s].inner_iterations);
    EXPECT_LT(rel_diff(batched.records[s].objective, sequential.records[s].objective), 1e-6);
    EXPECT_LT(rel_diff(batched.records[s].max_violation, sequential.records[s].max_violation),
              1e-6);
  }
}

TEST(BatchAdmm, TrackingChainMatchesSequentialWarmStarts) {
  // Time-coupled sequence: period-to-period warm starts with ramp limits,
  // chained on device, must match the sequential warm-start chain.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  grid::LoadProfileSpec spec;
  spec.periods = 4;
  spec.seed = 11;
  set.add_tracking_sequence(spec, 0.02);

  const auto sequential = solve_sequential(set, params);
  BatchAdmmSolver solver(set, params);
  const auto batched = solver.solve();
  for (int t = 0; t < 4; ++t) {
    SCOPED_TRACE("period " + std::to_string(t));
    EXPECT_EQ(batched.records[t].inner_iterations, sequential.records[t].inner_iterations);
    EXPECT_LT(rel_diff(batched.records[t].objective, sequential.records[t].objective), 1e-6);
  }
  // Warm-started periods must be cheaper than the cold first period.
  for (int t = 1; t < 4; ++t) {
    EXPECT_LT(batched.records[t].inner_iterations, batched.records[0].inner_iterations);
  }
}

TEST(BatchAdmm, NonConvergedChainParentStillMatchesSequential) {
  // The sequential solver escalates beta even on its final outer iteration;
  // a chained child inherits that beta, so a parent that exhausts its outer
  // budget must still hand the child the identical warm start.
  const auto net = grid::load_embedded_case("case9");
  auto params = admm::params_for_case("case9", net.num_buses());
  params.max_outer_iterations = 2;
  params.max_inner_iterations = 20;  // parent cannot converge in this budget
  ScenarioSet set(net);
  grid::LoadProfileSpec spec;
  spec.periods = 3;
  set.add_tracking_sequence(spec, 0.02);

  const auto sequential = solve_sequential(set, params);
  BatchAdmmSolver solver(set, params);
  const auto batched = solver.solve();
  ASSERT_FALSE(sequential.records[0].converged);  // the premise of the test
  for (int t = 0; t < 3; ++t) {
    SCOPED_TRACE("period " + std::to_string(t));
    EXPECT_EQ(batched.records[t].inner_iterations, sequential.records[t].inner_iterations);
    EXPECT_DOUBLE_EQ(batched.records[t].primal_residual, sequential.records[t].primal_residual);
    EXPECT_LT(rel_diff(batched.records[t].objective, sequential.records[t].objective), 1e-6);
  }
}

TEST(BatchAdmm, NoTransfersDuringFusedIterations) {
  // The paper's device-residency claim, extended to the batch: staging and
  // evaluation move data, the fused iteration loop does not.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(4, 0.95, 1.05);
  BatchAdmmSolver solver(set, params);
  const auto report = solver.solve();
  EXPECT_EQ(report.transfers_during_iterations, 0u);
}

TEST(BatchAdmm, BaseFanOutWarmStartReducesIterations) {
  // Base-case solution fanned out to all scenarios: every scenario close to
  // the base point should converge in fewer inner iterations than cold.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(6, 0.98, 1.02);

  BatchAdmmSolver cold(set, params);
  const auto cold_report = cold.solve();
  BatchAdmmSolver warm(set, params);
  BatchSolveOptions options;
  options.warm_start_from_base = true;
  const auto warm_report = warm.solve(options);

  ASSERT_EQ(warm_report.records.size(), cold_report.records.size());
  int cold_total = 0, warm_total = 0;
  for (std::size_t s = 0; s < cold_report.records.size(); ++s) {
    EXPECT_TRUE(warm_report.records[s].converged);
    cold_total += cold_report.records[s].inner_iterations;
    warm_total += warm_report.records[s].inner_iterations;
  }
  EXPECT_LT(warm_total, cold_total);
  EXPECT_GT(warm_report.base_solve_seconds, 0.0);
}

TEST(BatchAdmm, MixedFamilyBatchSolvesEveryScenario) {
  // One batch mixing all four scenario families.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_base();
  set.add_load_scale(2, 0.97, 1.03);
  set.add_stochastic_load(2, 0.03, 5);
  set.add_n1_contingencies(2);
  grid::LoadProfileSpec spec;
  spec.periods = 2;
  set.add_tracking_sequence(spec, 0.02);

  BatchAdmmSolver solver(set, params);
  const auto report = solver.solve();
  ASSERT_EQ(report.records.size(), static_cast<std::size_t>(set.size()));
  for (const auto& rec : report.records) {
    SCOPED_TRACE(rec.name);
    EXPECT_TRUE(rec.converged);
    EXPECT_LT(rec.max_violation, 5e-3);
    EXPECT_GT(rec.objective, 0.0);
  }
  EXPECT_EQ(report.num_converged(), set.size());
  EXPECT_GT(report.scenarios_per_second(), 0.0);
}

TEST(BatchAdmm, SolutionSliceDownloadsOnlyOneScenario) {
  // solution(s) must move exactly scenario s's strided slices — four
  // transfers of one scenario's data — not the whole batch state.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(4, 0.95, 1.05);
  BatchAdmmSolver solver(set, params);
  solver.solve();

  device::TransferStatsScope scope;
  const auto sliced = solver.solution(2);
  const auto delta = scope.delta();
  EXPECT_EQ(delta.device_to_host, 4u);  // bus_w, bus_theta, gen_pg, gen_qg
  EXPECT_EQ(delta.host_to_device, 0u);
  const auto expected_bytes =
      sizeof(double) * (2u * static_cast<std::size_t>(net.num_buses()) +
                        2u * static_cast<std::size_t>(net.num_generators()));
  EXPECT_EQ(delta.bytes, expected_bytes);  // one scenario, not S of them

  // And the slice matches the bulk extraction bit for bit.
  const auto all = solver.solutions();
  for (int b = 0; b < net.num_buses(); ++b) {
    EXPECT_DOUBLE_EQ(sliced.vm[static_cast<std::size_t>(b)], all[2].vm[static_cast<std::size_t>(b)]);
    EXPECT_DOUBLE_EQ(sliced.va[static_cast<std::size_t>(b)], all[2].va[static_cast<std::size_t>(b)]);
  }
  for (int g = 0; g < net.num_generators(); ++g) {
    EXPECT_DOUBLE_EQ(sliced.pg[static_cast<std::size_t>(g)], all[2].pg[static_cast<std::size_t>(g)]);
    EXPECT_DOUBLE_EQ(sliced.qg[static_cast<std::size_t>(g)], all[2].qg[static_cast<std::size_t>(g)]);
  }
}

TEST(BatchAdmm, InitialIterateMatchesSingleSolverImportExactly) {
  // A batch slot seeded through BatchSolveOptions::initial_iterates must
  // walk the identical iteration sequence as an AdmmSolver that imports the
  // same WarmStartIterate — the serve layer's cache-hit path equals the
  // paper's single-solver warm start.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  admm::AdmmSolver base(net, params);
  base.solve();
  const auto iterate = base.export_iterate();

  std::vector<double> pd, qd;
  for (const auto& bus : net.buses) {
    pd.push_back(bus.pd * 1.03);
    qd.push_back(bus.qd * 1.03);
  }

  // Reference: single solver, imported iterate, perturbed loads.
  admm::AdmmSolver reference(net, params);
  reference.import_iterate(iterate);
  reference.set_loads(pd, qd);
  const auto reference_stats = reference.solve();

  // Batch: one scenario with the same loads, seeded with the same iterate.
  ScenarioSet set(net);
  Scenario sc;
  sc.name = "perturbed";
  sc.pd = pd;
  sc.qd = qd;
  set.add(std::move(sc));
  BatchAdmmSolver solver(set, params);
  BatchSolveOptions options;
  options.initial_iterates = {&iterate};
  const auto report = solver.solve(options);

  EXPECT_EQ(report.records[0].inner_iterations, reference_stats.inner_iterations);
  EXPECT_EQ(report.records[0].outer_iterations, reference_stats.outer_iterations);
  EXPECT_DOUBLE_EQ(report.records[0].primal_residual, reference_stats.primal_residual);
  EXPECT_DOUBLE_EQ(report.records[0].dual_residual, reference_stats.dual_residual);
  EXPECT_EQ(report.records[0].converged, reference_stats.converged);

  // And the warm start beats a cold start on the same instance.
  BatchAdmmSolver cold(set, params);
  const auto cold_report = cold.solve();
  EXPECT_LT(report.records[0].inner_iterations, cold_report.records[0].inner_iterations);
}

TEST(BatchAdmm, ExportedBatchIterateRoundTripsIntoSingleSolver) {
  // export_iterate(s) from a solved batch must seed an AdmmSolver exactly
  // like that scenario's own continuation (the cache-insertion path).
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(3, 0.97, 1.03);
  BatchAdmmSolver solver(set, params);
  solver.solve();

  const auto iterate = solver.export_iterate(1);
  EXPECT_TRUE(iterate.matches(solver.model()));
  admm::AdmmSolver continuation(net, params);
  continuation.import_iterate(iterate);
  continuation.set_loads(set[1].pd, set[1].qd);
  const auto stats = continuation.solve();
  EXPECT_TRUE(stats.converged);
  // Re-solving from the converged iterate beats a cold start on the same
  // instance by a wide margin.
  admm::AdmmSolver cold(net, params);
  cold.set_loads(set[1].pd, set[1].qd);
  const auto cold_stats = cold.solve();
  EXPECT_LT(stats.inner_iterations, cold_stats.inner_iterations / 2);
}

TEST(BatchAdmm, HeterogeneousControlsMatchSequential) {
  // A batch mixing per-scenario termination overrides must replicate the
  // sequential reference with the same overrides, scenario for scenario.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(3, 0.95, 1.05);
  Scenario loose;
  loose.name = "loose";
  loose.load_scale = 1.01;
  // Looser than inner_tolerance_initial (1e-2): exercises the clamp-bound
  // guard in the inexact inner schedule as well as the override plumbing.
  loose.controls.primal_tolerance = 2e-2;
  loose.controls.dual_tolerance = 2e-2;
  loose.controls.outer_tolerance = 2e-2;
  for (const auto& bus : net.buses) {
    loose.pd.push_back(bus.pd * 1.01);
    loose.qd.push_back(bus.qd * 1.01);
  }
  set.add(std::move(loose));
  Scenario capped;
  capped.name = "capped";
  capped.controls.max_inner_iterations = 15;
  capped.controls.max_outer_iterations = 2;
  set.add(std::move(capped));

  const auto sequential = solve_sequential(set, params);
  BatchAdmmSolver solver(set, params);
  const auto batched = solver.solve();
  for (int s = 0; s < set.size(); ++s) {
    SCOPED_TRACE(set[s].name);
    EXPECT_EQ(batched.records[s].inner_iterations, sequential.records[s].inner_iterations);
    EXPECT_EQ(batched.records[s].outer_iterations, sequential.records[s].outer_iterations);
    EXPECT_EQ(batched.records[s].converged, sequential.records[s].converged);
    EXPECT_DOUBLE_EQ(batched.records[s].primal_residual, sequential.records[s].primal_residual);
  }
  // The loose-tolerance scenario really did stop earlier than its twin
  // solved to full accuracy (scenario 1 has a nearby load scale).
  EXPECT_LT(batched.records[3].inner_iterations, batched.records[1].inner_iterations);
  // The capped scenario exhausted its tiny budget without converging.
  EXPECT_FALSE(batched.records[4].converged);
  EXPECT_LE(batched.records[4].inner_iterations, 30);
}

TEST(BatchAdmm, ShardedSolveMatchesSingleDeviceAcrossShardCounts) {
  // The sharded acceptance bar: for 1, 2, and 4 shards the plan/execute
  // pipeline must reproduce the single-device fused solve with identical
  // per-scenario iteration counts and residuals, objectives within 1e-6
  // relative, and per-shard block counts scaling as ~S/D.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(12, 0.92, 1.08);

  BatchAdmmSolver reference(set, params);
  const auto single = reference.solve();
  ASSERT_EQ(single.num_shards, 1);
  ASSERT_EQ(single.shard_launches.size(), 1u);

  for (const int D : {1, 2, 4}) {
    SCOPED_TRACE(std::to_string(D) + " shards");
    device::DevicePool pool(D, 2);
    BatchAdmmSolver solver(set, params, pool);
    const auto sharded = solver.solve();

    EXPECT_EQ(sharded.num_shards, D);
    ASSERT_EQ(sharded.records.size(), single.records.size());
    for (int s = 0; s < set.size(); ++s) {
      SCOPED_TRACE("scenario " + std::to_string(s));
      EXPECT_EQ(sharded.records[s].inner_iterations, single.records[s].inner_iterations);
      EXPECT_EQ(sharded.records[s].outer_iterations, single.records[s].outer_iterations);
      EXPECT_EQ(sharded.records[s].converged, single.records[s].converged);
      EXPECT_DOUBLE_EQ(sharded.records[s].primal_residual, single.records[s].primal_residual);
      EXPECT_DOUBLE_EQ(sharded.records[s].dual_residual, single.records[s].dual_residual);
      EXPECT_LT(rel_diff(sharded.records[s].objective, single.records[s].objective), 1e-6);
    }

    // Per-shard launch attribution: one entry per device, summing to the
    // aggregate; block counts partition the single-device work exactly
    // (identical iterate sequences => identical per-scenario work), with
    // each shard carrying ~S/D of it.
    ASSERT_EQ(sharded.shard_launches.size(), static_cast<std::size_t>(D));
    device::LaunchStats sum;
    for (const auto& shard : sharded.shard_launches) sum += shard;
    EXPECT_EQ(sum.launches, sharded.launch_stats.launches);
    EXPECT_EQ(sum.blocks, sharded.launch_stats.blocks);
    EXPECT_EQ(sum.blocks, single.launch_stats.blocks);
    if (D > 1) {
      const auto fair_share = single.launch_stats.blocks / static_cast<std::uint64_t>(D);
      for (const auto& shard : sharded.shard_launches) {
        EXPECT_GT(shard.blocks, 0u);
        EXPECT_LT(shard.blocks, 2 * fair_share);  // ~S/D, not a straggler
      }
    }
  }
}

TEST(BatchAdmm, ShardedContingencyAndHeterogeneousBatchMatchesSequential) {
  // A sharded mixed batch (load scales + N-1 masks + per-scenario
  // controls) must still replicate the sequential reference exactly.
  const auto net = grid::load_embedded_case("case30");
  const auto params = admm::params_for_case("case30", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(3, 0.96, 1.04);
  set.add_n1_contingencies(3);
  Scenario capped;
  capped.name = "capped";
  capped.controls.max_inner_iterations = 12;
  capped.controls.max_outer_iterations = 2;
  set.add(std::move(capped));

  const auto sequential = solve_sequential(set, params);
  device::DevicePool pool(2, 2);
  BatchAdmmSolver solver(set, params, pool);
  const auto sharded = solver.solve();
  for (int s = 0; s < set.size(); ++s) {
    SCOPED_TRACE(set[s].name);
    EXPECT_EQ(sharded.records[s].inner_iterations, sequential.records[s].inner_iterations);
    EXPECT_EQ(sharded.records[s].converged, sequential.records[s].converged);
    EXPECT_LT(rel_diff(sharded.records[s].objective, sequential.records[s].objective), 1e-6);
  }
}

TEST(BatchAdmm, ShardedTrackingChainsStayOnTheParentShard) {
  // Chained scenarios must follow their root's shard (chaining is an
  // on-device copy), and the sharded chain must match the single-device
  // solve iterate for iterate.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  for (int p = 0; p < 3; ++p) {
    grid::LoadProfileSpec spec;
    spec.periods = 3;
    spec.seed = 11 + static_cast<std::uint64_t>(p);
    set.add_tracking_sequence(spec, 0.02);
  }

  BatchAdmmSolver reference(set, params);
  const auto single = reference.solve();
  device::DevicePool pool(2, 2);
  BatchAdmmSolver solver(set, params, pool);
  const auto sharded = solver.solve();

  const auto& plan = solver.plan();
  for (int s = 0; s < set.size(); ++s) {
    if (set[s].chain_from >= 0) {
      EXPECT_EQ(plan.shard_of[s], plan.shard_of[set[s].chain_from]);
    }
    EXPECT_EQ(sharded.records[s].inner_iterations, single.records[s].inner_iterations);
    EXPECT_LT(rel_diff(sharded.records[s].objective, single.records[s].objective), 1e-6);
  }
}

TEST(BatchPlan, RoundRobinRootsAreDeterministicAndChildrenFollowParents) {
  std::vector<Scenario> scenarios(7);
  // Scenarios 0-3 are roots; 4 chains from 1, 5 from 4, 6 from 3.
  scenarios[4].chain_from = 1;
  scenarios[5].chain_from = 4;
  scenarios[6].chain_from = 3;
  const std::vector<std::vector<int>> waves = {{0, 1, 2, 3}, {4, 6}, {5}};

  const auto plan = BatchPlan::create(scenarios, waves, 3, /*ping_pong=*/false);
  // Roots deal round-robin in scenario order: 0->0, 1->1, 2->2, 3->0.
  EXPECT_EQ(plan.shard_of, (std::vector<int>{0, 1, 2, 0, 1, 1, 0}));
  // Slots are contiguous per shard, in scenario order.
  EXPECT_EQ(plan.slot_of[0], 0);
  EXPECT_EQ(plan.slot_of[3], 1);
  EXPECT_EQ(plan.slot_of[6], 2);
  EXPECT_EQ(plan.slot_of[1], 0);
  EXPECT_EQ(plan.slot_of[4], 1);
  EXPECT_EQ(plan.slot_of[5], 2);
  EXPECT_EQ(plan.shard_capacity, (std::vector<int>{3, 3, 1}));
  // Identical inputs give an identical plan (deterministic assignment).
  const auto again = BatchPlan::create(scenarios, waves, 3, /*ping_pong=*/false);
  EXPECT_EQ(again.shard_of, plan.shard_of);
  EXPECT_EQ(again.slot_of, plan.slot_of);

  // Ping-pong slots are per-wave; capacity is the largest wave per shard.
  const auto pp = BatchPlan::create(scenarios, waves, 3, /*ping_pong=*/true);
  EXPECT_EQ(pp.shard_of, plan.shard_of);
  EXPECT_EQ(pp.shard_capacity, (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(pp.slot_of[0], 0);
  EXPECT_EQ(pp.slot_of[3], 1);  // same wave, same shard as 0
  EXPECT_EQ(pp.slot_of[6], 0);  // wave 1 reuses shard 0's slots
}

TEST(BatchAdmm, PingPongChainedSolveMatchesPersistentPath) {
  // Two-buffer wave memory must not change a single iterate: same
  // iteration counts, residuals, and objectives as the persistent layout,
  // for every period of every profile.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  for (int p = 0; p < 2; ++p) {
    grid::LoadProfileSpec spec;
    spec.periods = 5;
    spec.seed = 3 + static_cast<std::uint64_t>(p);
    set.add_tracking_sequence(spec, 0.02);
  }

  BatchAdmmSolver persistent(set, params);
  const auto flat = persistent.solve();
  BatchAdmmSolver solver(set, params);
  BatchSolveOptions options;
  options.ping_pong = true;
  const auto pp = solver.solve(options);

  ASSERT_EQ(pp.records.size(), flat.records.size());
  for (int s = 0; s < set.size(); ++s) {
    SCOPED_TRACE("scenario " + std::to_string(s));
    EXPECT_EQ(pp.records[s].inner_iterations, flat.records[s].inner_iterations);
    EXPECT_EQ(pp.records[s].outer_iterations, flat.records[s].outer_iterations);
    EXPECT_DOUBLE_EQ(pp.records[s].primal_residual, flat.records[s].primal_residual);
    EXPECT_LT(rel_diff(pp.records[s].objective, flat.records[s].objective), 1e-6);
  }
  // Captured solutions match the persistent extraction bit for bit.
  const auto flat_solutions = persistent.solutions();
  const auto pp_solutions = solver.solutions();
  for (int s = 0; s < set.size(); ++s) {
    for (int b = 0; b < net.num_buses(); ++b) {
      EXPECT_DOUBLE_EQ(pp_solutions[s].vm[static_cast<std::size_t>(b)],
                       flat_solutions[s].vm[static_cast<std::size_t>(b)]);
    }
  }
  // Last-wave iterates are still resident and exportable; earlier waves
  // have been overwritten by design.
  EXPECT_NO_THROW(solver.export_iterate(set.size() - 1));
  EXPECT_THROW(solver.export_iterate(0), GridError);
}

TEST(BatchAdmm, PingPongHoldsBatchMemoryConstantInHorizonLength) {
  // The memory acceptance bar, via DeviceBuffer allocation accounting:
  // doubling the horizon must not grow peak live batch-state memory in
  // ping-pong mode, while the persistent layout grows linearly.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());

  auto peak_for = [&](int periods, bool ping_pong) {
    ScenarioSet set(net);
    grid::LoadProfileSpec spec;
    spec.periods = periods;
    spec.seed = 5;
    set.add_tracking_sequence(spec, 0.02);
    const auto live_before = device::allocation_stats().live_bytes;
    device::reset_allocation_peak();
    BatchAdmmSolver solver(set, params);
    BatchSolveOptions options;
    options.ping_pong = ping_pong;
    solver.solve(options);
    return device::allocation_stats().peak_bytes - live_before;
  };

  const auto pp4 = peak_for(4, true);
  const auto pp8 = peak_for(8, true);
  const auto flat4 = peak_for(4, false);
  const auto flat8 = peak_for(8, false);
  EXPECT_EQ(pp8, pp4);     // constant in the number of periods
  EXPECT_GT(flat8, flat4); // the persistent layout grows with the horizon...
  EXPECT_GT(flat8, pp8);   // ...and exceeds the two-buffer ping-pong pair
}

TEST(BatchPlan, PackTileGroupsSplitsFullAndPartialTiles) {
  // 13 active slots with slots 5, 9, and 15 retired: tile 0 is partial
  // (7 lanes), tile 1 partial (6 lanes). Columns must point at each slot's
  // position in the active list, the reduction-row contract.
  std::vector<int> slots = {0, 1, 2, 3, 4, 6, 7, 8, 10, 11, 12, 13, 14};
  std::vector<TileGroup> groups;
  pack_tile_groups(slots, groups);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first_slot, 0);
  EXPECT_EQ(groups[0].nlanes, 7);
  EXPECT_FALSE(groups[0].full());
  EXPECT_EQ(groups[0].lane[5], 6);
  EXPECT_EQ(groups[0].column[5], 5);  // slot 6 sits at index 5 of the list
  EXPECT_EQ(groups[1].first_slot, 8);
  EXPECT_EQ(groups[1].nlanes, 6);
  EXPECT_EQ(groups[1].lane[0], 0);
  EXPECT_EQ(groups[1].column[0], 7);  // slot 8 sits at index 7

  // A fully-active aligned batch packs into full groups only.
  std::vector<int> all(16);
  for (int j = 0; j < 16; ++j) all[static_cast<std::size_t>(j)] = j;
  pack_tile_groups(all, groups);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_TRUE(groups[0].full());
  EXPECT_TRUE(groups[1].full());
  EXPECT_EQ(groups[1].column[7], 15);
}

TEST(BatchAdmm, InterleavedLayoutMatchesScenarioMajorAndSequential) {
  // The tentpole acceptance bar: the interleaved (component-major,
  // scenario-innermost) layout must be bit-identical to the scenario-major
  // layout and to S independent sequential solves — same iteration counts,
  // same residual doubles, objectives within 1e-6. S = 13 deliberately
  // straddles a tile boundary (one full tile + a padded partial tile) and
  // the load spread makes scenarios retire at different iterations, so the
  // full->partial tile repacking path is exercised as the batch drains.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(13, 0.92, 1.08);

  const auto sequential = solve_sequential(set, params);
  BatchAdmmSolver major_solver(set, params);
  const auto major = major_solver.solve();
  BatchAdmmSolver inter_solver(set, params);
  BatchSolveOptions options;
  options.layout = admm::BatchLayout::kInterleaved;
  const auto interleaved = inter_solver.solve(options);

  ASSERT_EQ(interleaved.records.size(), 13u);
  for (int s = 0; s < set.size(); ++s) {
    SCOPED_TRACE("scenario " + std::to_string(s));
    EXPECT_EQ(interleaved.records[s].inner_iterations, major.records[s].inner_iterations);
    EXPECT_EQ(interleaved.records[s].outer_iterations, major.records[s].outer_iterations);
    EXPECT_EQ(interleaved.records[s].converged, major.records[s].converged);
    EXPECT_DOUBLE_EQ(interleaved.records[s].primal_residual, major.records[s].primal_residual);
    EXPECT_DOUBLE_EQ(interleaved.records[s].dual_residual, major.records[s].dual_residual);
    EXPECT_EQ(interleaved.records[s].inner_iterations, sequential.records[s].inner_iterations);
    EXPECT_DOUBLE_EQ(interleaved.records[s].primal_residual,
                     sequential.records[s].primal_residual);
    EXPECT_LT(rel_diff(interleaved.records[s].objective, sequential.records[s].objective), 1e-6);
    EXPECT_LT(rel_diff(interleaved.records[s].objective, major.records[s].objective), 1e-6);
  }

  // Same launches, ~kTileWidth fewer blocks on the elementwise kernels:
  // the structural win the layout exists for.
  EXPECT_EQ(interleaved.launch_stats.launches, major.launch_stats.launches);
  EXPECT_LT(interleaved.launch_stats.blocks, major.launch_stats.blocks);

  // Per-slot extraction agrees bit for bit across layouts (exercises the
  // strided slice download against the contiguous one).
  const auto sol_major = major_solver.solution(9);
  const auto sol_inter = inter_solver.solution(9);
  for (int b = 0; b < net.num_buses(); ++b) {
    EXPECT_DOUBLE_EQ(sol_inter.vm[static_cast<std::size_t>(b)],
                     sol_major.vm[static_cast<std::size_t>(b)]);
  }
  const auto it_major = major_solver.export_iterate(9);
  const auto it_inter = inter_solver.export_iterate(9);
  for (std::size_t k = 0; k < it_major.u.size(); ++k) {
    EXPECT_DOUBLE_EQ(it_inter.u[k], it_major.u[k]);
    EXPECT_DOUBLE_EQ(it_inter.y[k], it_major.y[k]);
  }
}

TEST(BatchAdmm, InterleavedMatchesAcrossShardsWithOutageMasks) {
  // Layout equivalence under sharding and N-1 masks: for 1/2/4 shards the
  // interleaved solve must reproduce the single-device scenario-major
  // reference exactly (iterations, residuals, 1e-6 objectives). Iteration
  // budgets are capped so the four case30 solves stay fast — capped
  // scenarios exhaust their budget on the identical iterate either way,
  // which makes the equivalence check cover the non-converged paths too.
  const auto net = grid::load_embedded_case("case30");
  auto params = admm::params_for_case("case30", net.num_buses());
  params.max_inner_iterations = 80;
  params.max_outer_iterations = 2;
  ScenarioSet set(net);
  set.add_load_scale(5, 0.95, 1.05);
  ASSERT_GE(set.add_n1_contingencies(5), 3);

  BatchAdmmSolver reference(set, params);
  const auto major = reference.solve();
  BatchSolveOptions options;
  options.layout = admm::BatchLayout::kInterleaved;
  for (const int D : {1, 2, 4}) {
    SCOPED_TRACE(std::to_string(D) + " shards");
    device::DevicePool pool(D, 1);
    BatchAdmmSolver solver(set, params, pool);
    const auto interleaved = solver.solve(options);
    for (int s = 0; s < set.size(); ++s) {
      SCOPED_TRACE(set[s].name);
      EXPECT_EQ(interleaved.records[s].inner_iterations, major.records[s].inner_iterations);
      EXPECT_EQ(interleaved.records[s].converged, major.records[s].converged);
      EXPECT_DOUBLE_EQ(interleaved.records[s].primal_residual, major.records[s].primal_residual);
      EXPECT_DOUBLE_EQ(interleaved.records[s].dual_residual, major.records[s].dual_residual);
      EXPECT_LT(rel_diff(interleaved.records[s].objective, major.records[s].objective), 1e-6);
    }
  }
}

TEST(BatchAdmm, InterleavedPingPongTrackingMatchesScenarioMajor) {
  // Layout equivalence for chained waves in ping-pong buffers: the
  // on-device chain copy and ramp kernels must map slots through each
  // buffer's layout correctly.
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  for (int p = 0; p < 2; ++p) {
    grid::LoadProfileSpec spec;
    spec.periods = 4;
    spec.seed = 3 + static_cast<std::uint64_t>(p);
    set.add_tracking_sequence(spec, 0.02);
  }

  BatchAdmmSolver persistent(set, params);
  const auto flat = persistent.solve();
  for (const bool ping_pong : {false, true}) {
    SCOPED_TRACE(ping_pong ? "ping-pong" : "persistent");
    BatchAdmmSolver solver(set, params);
    BatchSolveOptions options;
    options.layout = admm::BatchLayout::kInterleaved;
    options.ping_pong = ping_pong;
    const auto interleaved = solver.solve(options);
    for (int s = 0; s < set.size(); ++s) {
      SCOPED_TRACE("scenario " + std::to_string(s));
      EXPECT_EQ(interleaved.records[s].inner_iterations, flat.records[s].inner_iterations);
      EXPECT_EQ(interleaved.records[s].outer_iterations, flat.records[s].outer_iterations);
      EXPECT_DOUBLE_EQ(interleaved.records[s].primal_residual, flat.records[s].primal_residual);
      EXPECT_LT(rel_diff(interleaved.records[s].objective, flat.records[s].objective), 1e-6);
    }
    const auto flat_solutions = persistent.solutions();
    const auto inter_solutions = solver.solutions();
    for (int s = 0; s < set.size(); ++s) {
      for (int b = 0; b < net.num_buses(); ++b) {
        EXPECT_DOUBLE_EQ(inter_solutions[s].vm[static_cast<std::size_t>(b)],
                         flat_solutions[s].vm[static_cast<std::size_t>(b)]);
      }
    }
  }
}

TEST(BatchAdmm, SteadyStateSolveAllocatesNoDeviceMemory) {
  // The hot path must not allocate: once storage exists (first solve),
  // re-solving — staging, the fused loop, tile repacking, adaptive-rho
  // rescales, evaluation — performs zero device allocations in either
  // layout. Adaptive rho is forced on with a hair-trigger imbalance
  // threshold so the rescale launch provably runs inside the measured
  // window (a [=] lambda that captured the ComponentModel by value would
  // copy its DeviceBuffers here and fail the allocation check).
  const auto net = grid::load_embedded_case("case9");
  auto params = admm::params_for_case("case9", net.num_buses());
  params.adaptive_rho = true;
  params.adaptive_rho_mu = 1.05;
  ScenarioSet set(net);
  set.add_load_scale(10, 0.95, 1.05);
  for (const auto layout : {admm::BatchLayout::kScenarioMajor, admm::BatchLayout::kInterleaved}) {
    SCOPED_TRACE(admm::layout_name(layout));
    BatchAdmmSolver solver(set, params);
    BatchSolveOptions options;
    options.layout = layout;
    solver.solve(options);  // allocates shard storage + branch lane workspaces
    const auto before = device::allocation_stats();
    const auto workspaces_before = admm::BranchWorkspace::created();
    const auto report = solver.solve(options);  // steady state: reuse everything
    const auto after = device::allocation_stats();
    EXPECT_EQ(after.allocations, before.allocations);
    EXPECT_EQ(after.live_bytes, before.live_bytes);
    // The branch phase's host side is covered too: the per-lane TRON
    // workspaces persist in the shard, so a steady-state solve constructs
    // zero of them (the pre-fix engine built one per lane per launch).
    EXPECT_EQ(admm::BranchWorkspace::created(), workspaces_before);
    int rescales = 0;
    for (const auto& stats : report.stats) rescales += stats.rho_rescales;
    EXPECT_GT(rescales, 0);  // the rescale path really ran in the window
  }
}

TEST(BatchAdmm, FixedDimBranchPathMatchesGenericAcrossLayoutsAndShards) {
  // The branch fast path's acceptance bar: with the fixed-dimension
  // devirtualized TRON (the default) the batch engine must reproduce the
  // generic TronSolver path bit for bit — identical per-scenario iteration
  // counts, residual doubles, and objectives — across both memory layouts
  // and 1/2/4 shards. S = 13 straddles a tile boundary so the interleaved
  // repacking runs too.
  const auto net = grid::load_embedded_case("case9");
  auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(13, 0.92, 1.08);

  params.branch_solver = admm::BranchSolverPath::kGeneric;
  BatchAdmmSolver reference(set, params);
  const auto generic = reference.solve();

  params.branch_solver = admm::BranchSolverPath::kFixedDim;
  for (const auto layout : {admm::BatchLayout::kScenarioMajor, admm::BatchLayout::kInterleaved}) {
    for (const int D : {1, 2, 4}) {
      SCOPED_TRACE(std::string(admm::layout_name(layout)) + ", " + std::to_string(D) + " shards");
      device::DevicePool pool(D, 1);
      BatchAdmmSolver solver(set, params, pool);
      BatchSolveOptions options;
      options.layout = layout;
      const auto fixed = solver.solve(options);
      for (int s = 0; s < set.size(); ++s) {
        SCOPED_TRACE("scenario " + std::to_string(s));
        EXPECT_EQ(fixed.records[s].inner_iterations, generic.records[s].inner_iterations);
        EXPECT_EQ(fixed.records[s].outer_iterations, generic.records[s].outer_iterations);
        EXPECT_EQ(fixed.records[s].converged, generic.records[s].converged);
        EXPECT_DOUBLE_EQ(fixed.records[s].primal_residual, generic.records[s].primal_residual);
        EXPECT_DOUBLE_EQ(fixed.records[s].dual_residual, generic.records[s].dual_residual);
        EXPECT_DOUBLE_EQ(fixed.records[s].objective, generic.records[s].objective);
      }
      // Same iterates means the same branch-solve work, call for call.
      EXPECT_EQ(fixed.branch.tron_iterations, generic.branch.tron_iterations);
      EXPECT_EQ(fixed.branch.cg_iterations, generic.branch.cg_iterations);
      EXPECT_EQ(fixed.branch.function_evals, generic.branch.function_evals);
    }
  }
}

TEST(BatchAdmm, FixedDimBranchPathMatchesGenericOnRatedAndOutagedBranches) {
  // case30 carries line ratings, so this exercises the 6-variable
  // augmented-Lagrangian fast path (SmallTronSolver<6>) plus outage masks;
  // budgets are capped to keep the solves fast (capped scenarios exhaust
  // the budget on the identical iterate either way).
  const auto net = grid::load_embedded_case("case30");
  auto params = admm::params_for_case("case30", net.num_buses());
  params.max_inner_iterations = 60;
  params.max_outer_iterations = 2;
  ScenarioSet set(net);
  set.add_load_scale(3, 0.96, 1.04);
  ASSERT_GE(set.add_n1_contingencies(3), 2);

  params.branch_solver = admm::BranchSolverPath::kGeneric;
  BatchAdmmSolver reference(set, params);
  const auto generic = reference.solve();

  params.branch_solver = admm::BranchSolverPath::kFixedDim;
  BatchAdmmSolver solver(set, params);
  const auto fixed = solver.solve();
  for (int s = 0; s < set.size(); ++s) {
    SCOPED_TRACE(set[s].name);
    EXPECT_EQ(fixed.records[s].inner_iterations, generic.records[s].inner_iterations);
    EXPECT_DOUBLE_EQ(fixed.records[s].primal_residual, generic.records[s].primal_residual);
    EXPECT_DOUBLE_EQ(fixed.records[s].dual_residual, generic.records[s].dual_residual);
    EXPECT_DOUBLE_EQ(fixed.records[s].objective, generic.records[s].objective);
  }
  EXPECT_EQ(fixed.branch.auglag_iterations, generic.branch.auglag_iterations);
  EXPECT_GT(fixed.branch.auglag_iterations, 0);  // the rated path really ran
}

TEST(BatchAdmm, FixedDimBranchPathMatchesGenericThroughPingPongChains) {
  // Bit-equality must survive the chained-wave machinery: ping-pong
  // buffers, on-device chain copies, and ramp bounds, in both layouts.
  const auto net = grid::load_embedded_case("case9");
  auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  for (int p = 0; p < 2; ++p) {
    grid::LoadProfileSpec spec;
    spec.periods = 4;
    spec.seed = 17 + static_cast<std::uint64_t>(p);
    set.add_tracking_sequence(spec, 0.02);
  }

  params.branch_solver = admm::BranchSolverPath::kGeneric;
  BatchAdmmSolver reference(set, params);
  BatchSolveOptions pp;
  pp.ping_pong = true;
  const auto generic = reference.solve(pp);

  params.branch_solver = admm::BranchSolverPath::kFixedDim;
  for (const auto layout : {admm::BatchLayout::kScenarioMajor, admm::BatchLayout::kInterleaved}) {
    SCOPED_TRACE(admm::layout_name(layout));
    BatchAdmmSolver solver(set, params);
    BatchSolveOptions options;
    options.ping_pong = true;
    options.layout = layout;
    const auto fixed = solver.solve(options);
    for (int s = 0; s < set.size(); ++s) {
      SCOPED_TRACE("scenario " + std::to_string(s));
      EXPECT_EQ(fixed.records[s].inner_iterations, generic.records[s].inner_iterations);
      EXPECT_EQ(fixed.records[s].outer_iterations, generic.records[s].outer_iterations);
      EXPECT_DOUBLE_EQ(fixed.records[s].primal_residual, generic.records[s].primal_residual);
      EXPECT_DOUBLE_EQ(fixed.records[s].objective, generic.records[s].objective);
    }
  }
}

TEST(BatchAdmm, BranchPackIsBitIdenticalAndCutsBranchBlocks) {
  // The branch-pack knob may only change launch geometry: every pack value
  // must reproduce pack=1 bit for bit while issuing fewer blocks (each
  // block sweeps `pack` subproblems, so the branch phase's block count
  // drops by ~pack).
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  ScenarioSet set(net);
  set.add_load_scale(8, 0.94, 1.06);

  BatchAdmmSolver reference(set, params);
  const auto base = reference.solve();

  std::uint64_t prev_blocks = base.launch_stats.blocks;
  for (const int pack : {3, 8, 64}) {
    SCOPED_TRACE("pack " + std::to_string(pack));
    BatchAdmmSolver solver(set, params);
    BatchSolveOptions options;
    options.branch_pack = pack;
    const auto packed = solver.solve(options);
    for (int s = 0; s < set.size(); ++s) {
      SCOPED_TRACE("scenario " + std::to_string(s));
      EXPECT_EQ(packed.records[s].inner_iterations, base.records[s].inner_iterations);
      EXPECT_DOUBLE_EQ(packed.records[s].primal_residual, base.records[s].primal_residual);
      EXPECT_DOUBLE_EQ(packed.records[s].dual_residual, base.records[s].dual_residual);
      EXPECT_DOUBLE_EQ(packed.records[s].objective, base.records[s].objective);
    }
    // Same launches (launch count per fused step is constant in S and
    // pack), strictly fewer blocks as the pack grows.
    EXPECT_EQ(packed.launch_stats.launches, base.launch_stats.launches);
    EXPECT_LT(packed.launch_stats.blocks, prev_blocks);
    prev_blocks = packed.launch_stats.blocks;
  }

  BatchSolveOptions bad;
  bad.branch_pack = 0;
  BatchAdmmSolver invalid(set, params);
  EXPECT_THROW(invalid.solve(bad), GridError);
}

TEST(BatchAdmm, RunBatchedTrackingProducesPerProfileRecords) {
  const auto net = grid::load_embedded_case("case9");
  const auto params = admm::params_for_case("case9", net.num_buses());
  opf::TrackingOptions options;
  options.periods = 3;
  options.run_ipm = false;
  const auto result = opf::run_batched_tracking(net, params, options, 2);
  ASSERT_EQ(result.profiles.size(), 2u);
  for (const auto& periods : result.profiles) {
    ASSERT_EQ(periods.size(), 3u);
    for (const auto& rec : periods) {
      EXPECT_TRUE(rec.admm_converged);
      EXPECT_GT(rec.admm_objective, 0.0);
    }
    // Warm-started periods are cheaper than the cold first period.
    EXPECT_LT(periods[1].admm_iterations, periods[0].admm_iterations);
  }
}

}  // namespace
}  // namespace gridadmm::scenario
