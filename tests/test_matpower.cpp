#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "grid/cases.hpp"
#include "grid/matpower.hpp"

namespace gridadmm::grid {
namespace {

TEST(Matpower, ParsesCase9) {
  const auto net = parse_matpower(embedded_case_text("case9"), "case9");
  EXPECT_EQ(net.num_buses(), 9);
  EXPECT_EQ(net.num_generators(), 3);
  EXPECT_EQ(net.num_branches(), 9);
  EXPECT_DOUBLE_EQ(net.base_mva, 100.0);
  // Bus 5 (index 4): load 90 + j30 (still MW before finalize).
  EXPECT_DOUBLE_EQ(net.buses[4].pd, 90.0);
  EXPECT_DOUBLE_EQ(net.buses[4].qd, 30.0);
  // Generator 2 cost: 0.085 pg^2 + 1.2 pg + 600.
  EXPECT_DOUBLE_EQ(net.generators[1].c2, 0.085);
  EXPECT_DOUBLE_EQ(net.generators[1].c1, 1.2);
  EXPECT_DOUBLE_EQ(net.generators[1].c0, 600.0);
  // Branch 1-4 is the step-up transformer path with x = 0.0576.
  EXPECT_DOUBLE_EQ(net.branches[0].x, 0.0576);
  EXPECT_DOUBLE_EQ(net.branches[0].rate, 250.0);
}

TEST(Matpower, ParsesCase14WithTransformers) {
  const auto net = parse_matpower(embedded_case_text("case14"), "case14");
  EXPECT_EQ(net.num_buses(), 14);
  EXPECT_EQ(net.num_generators(), 5);
  EXPECT_EQ(net.num_branches(), 20);
  // Branch 4-7 has tap ratio 0.978.
  bool found = false;
  for (const auto& branch : net.branches) {
    if (net.buses[branch.from].id == 4 && net.buses[branch.to].id == 7) {
      EXPECT_DOUBLE_EQ(branch.tap, 0.978);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Bus 9 carries a shunt capacitor (BS = 19 MVAr).
  EXPECT_DOUBLE_EQ(net.buses[8].bs, 19.0);
}

TEST(Matpower, DropsOfflineComponents) {
  const std::string text = R"(mpc.baseMVA = 100;
mpc.bus = [
 1 3 0 0 0 0 1 1 0 345 1 1.1 0.9;
 2 1 10 5 0 0 1 1 0 345 1 1.1 0.9;
];
mpc.gen = [
 1 0 0 100 -100 1 100 1 100 0;
 1 0 0 100 -100 1 100 0 100 0;
];
mpc.branch = [
 1 2 0.01 0.1 0 100 0 0 0 0 1 -360 360;
 1 2 0.01 0.1 0 100 0 0 0 0 0 -360 360;
];
)";
  const auto net = parse_matpower(text);
  EXPECT_EQ(net.num_generators(), 1);
  EXPECT_EQ(net.num_branches(), 1);
}

TEST(Matpower, RejectsMissingSections) {
  EXPECT_THROW(parse_matpower("mpc.baseMVA = 100;"), ParseError);
  EXPECT_THROW(parse_matpower("mpc.bus = [1 3 0 0 0 0 1 1 0 345 1 1.1 0.9;];"), ParseError);
}

TEST(Matpower, RejectsBadTokens) {
  const std::string text = R"(mpc.baseMVA = 100;
mpc.bus = [ 1 3 zero 0 0 0 1 1 0 345 1 1.1 0.9; ];
mpc.gen = [ 1 0 0 1 -1 1 100 1 1 0; ];
mpc.branch = [ 1 1 0 0.1 0 0 0 0 0 0 1; ];
)";
  EXPECT_THROW(parse_matpower(text), ParseError);
}

TEST(Matpower, RejectsPiecewiseLinearCost) {
  std::string text(embedded_case_text("case9"));
  const auto pos = text.find("2\t1500");
  text.replace(pos, 1, "1");  // cost model 1 = piecewise linear
  EXPECT_THROW(parse_matpower(text), ParseError);
}

TEST(Matpower, HandlesCommentsAndInf) {
  const std::string text = R"(% leading comment
mpc.baseMVA = 100; % trailing
mpc.bus = [
 1 3 0 0 0 0 1 1 0 345 1 1.1 0.9; % ref
 2 1 10 5 0 0 1 1 0 345 1 1.1 0.9;
];
mpc.gen = [ 1 0 0 Inf -Inf 1 100 1 100 0; ];
mpc.branch = [ 1 2 0.01 0.1 0 0 0 0 0 0 1 -360 360; ];
)";
  const auto net = parse_matpower(text);
  EXPECT_TRUE(std::isinf(net.generators[0].qmax));
}

TEST(Matpower, EmbeddedCaseNamesListed) {
  const auto names = embedded_case_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "case9"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "case14"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "case30"), names.end());
}

TEST(Matpower, UnknownEmbeddedCaseThrows) {
  EXPECT_THROW(embedded_case_text("case9999"), ParseError);
}

TEST(Matpower, WriterRoundTripsRawCase) {
  const auto original = parse_matpower(embedded_case_text("case9"), "case9");
  const auto reparsed = parse_matpower(write_matpower(original), "case9rt");
  ASSERT_EQ(reparsed.num_buses(), original.num_buses());
  ASSERT_EQ(reparsed.num_generators(), original.num_generators());
  ASSERT_EQ(reparsed.num_branches(), original.num_branches());
  for (int i = 0; i < original.num_buses(); ++i) {
    EXPECT_DOUBLE_EQ(reparsed.buses[i].pd, original.buses[i].pd);
    EXPECT_DOUBLE_EQ(reparsed.buses[i].vmax, original.buses[i].vmax);
  }
  for (int g = 0; g < original.num_generators(); ++g) {
    EXPECT_DOUBLE_EQ(reparsed.generators[g].pmax, original.generators[g].pmax);
    EXPECT_DOUBLE_EQ(reparsed.generators[g].c2, original.generators[g].c2);
    EXPECT_DOUBLE_EQ(reparsed.generators[g].c1, original.generators[g].c1);
  }
  for (int l = 0; l < original.num_branches(); ++l) {
    EXPECT_DOUBLE_EQ(reparsed.branches[l].x, original.branches[l].x);
    EXPECT_DOUBLE_EQ(reparsed.branches[l].rate, original.branches[l].rate);
  }
}

TEST(Matpower, WriterRoundTripsFinalizedCase) {
  // Finalized networks are stored per-unit; the writer must convert back so
  // the round trip lands on the same per-unit model after finalize().
  const auto original = load_embedded_case("case14");
  auto reparsed = parse_matpower(write_matpower(original), "case14rt");
  reparsed.finalize();
  for (int i = 0; i < original.num_buses(); ++i) {
    EXPECT_NEAR(reparsed.buses[i].pd, original.buses[i].pd, 1e-12);
    EXPECT_NEAR(reparsed.buses[i].bs, original.buses[i].bs, 1e-12);
  }
  for (int g = 0; g < original.num_generators(); ++g) {
    EXPECT_NEAR(reparsed.generators[g].pmax, original.generators[g].pmax, 1e-12);
    EXPECT_NEAR(reparsed.generators[g].c2, original.generators[g].c2, 1e-6);
  }
  for (int l = 0; l < original.num_branches(); ++l) {
    EXPECT_NEAR(reparsed.branches[l].tap, original.branches[l].tap, 1e-12);
    EXPECT_NEAR(reparsed.branches[l].shift, original.branches[l].shift, 1e-12);
  }
  // Same admittances implies the same OPF.
  for (int l = 0; l < original.num_branches(); ++l) {
    EXPECT_NEAR(reparsed.admittances[l].gij, original.admittances[l].gij, 1e-10);
    EXPECT_NEAR(reparsed.admittances[l].bij, original.admittances[l].bij, 1e-10);
  }
}

TEST(Matpower, SaveAndLoadFile) {
  const auto net = parse_matpower(embedded_case_text("case30"), "case30");
  const std::string path = "/tmp/gridadmm_roundtrip_case30.m";
  save_matpower_file(net, path);
  const auto loaded = load_matpower_file(path);
  EXPECT_EQ(loaded.num_buses(), 30);
  EXPECT_EQ(loaded.num_branches(), net.num_branches());
}

}  // namespace
}  // namespace gridadmm::grid
