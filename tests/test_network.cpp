#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "grid/cases.hpp"
#include "grid/matpower.hpp"
#include "grid/network.hpp"

namespace gridadmm::grid {
namespace {

TEST(Network, FinalizeConvertsToPerUnit) {
  auto net = parse_matpower(embedded_case_text("case9"), "case9");
  net.finalize();
  // Bus 5 load: 90 MW on 100 MVA base -> 0.9 p.u.
  EXPECT_DOUBLE_EQ(net.buses[4].pd, 0.9);
  // Generator 1 pmax: 250 MW -> 2.5 p.u.
  EXPECT_DOUBLE_EQ(net.generators[0].pmax, 2.5);
  // Cost on per-unit dispatch must equal cost on MW dispatch.
  // f(MW=100) = 0.11*1e4 + 5*100 + 150 = 1750.
  std::vector<double> pg{1.0, 0.0, 0.0};
  const double cost =
      net.generators[0].c2 * 1.0 + net.generators[0].c1 * 1.0 + net.generators[0].c0;
  EXPECT_NEAR(cost, 1750.0, 1e-9);
  (void)pg;
  // Branch rates: 250 MVA -> 2.5 p.u.
  EXPECT_DOUBLE_EQ(net.branches[0].rate, 2.5);
}

TEST(Network, AdmittanceMatchesComplexFormulas) {
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.r = 0.02;
  branch.x = 0.2;
  branch.b = 0.04;
  branch.tap = 0.95;
  branch.shift = 0.1;  // radians (post-finalize convention)
  const auto y = branch_admittance(branch);
  using cd = std::complex<double>;
  const cd ys = 1.0 / cd(0.02, 0.2);
  const cd a = std::polar(0.95, 0.1);
  const cd yii = (ys + cd(0, 0.02)) / std::norm(a);
  const cd yij = -ys / std::conj(a);
  const cd yji = -ys / a;
  const cd yjj = ys + cd(0, 0.02);
  EXPECT_NEAR(y.gii, yii.real(), 1e-14);
  EXPECT_NEAR(y.bii, yii.imag(), 1e-14);
  EXPECT_NEAR(y.gij, yij.real(), 1e-14);
  EXPECT_NEAR(y.bij, yij.imag(), 1e-14);
  EXPECT_NEAR(y.gji, yji.real(), 1e-14);
  EXPECT_NEAR(y.bji, yji.imag(), 1e-14);
  EXPECT_NEAR(y.gjj, yjj.real(), 1e-14);
  EXPECT_NEAR(y.bjj, yjj.imag(), 1e-14);
}

TEST(Network, BuildsAdjacency) {
  const auto net = load_embedded_case("case9");
  int total_from = 0, total_to = 0;
  for (int i = 0; i < net.num_buses(); ++i) {
    total_from += static_cast<int>(net.branches_from[i].size());
    total_to += static_cast<int>(net.branches_to[i].size());
  }
  EXPECT_EQ(total_from, net.num_branches());
  EXPECT_EQ(total_to, net.num_branches());
  // Bus 1 (index 0) hosts generator 0.
  ASSERT_EQ(net.gens_at_bus[0].size(), 1u);
  EXPECT_EQ(net.gens_at_bus[0][0], 0);
  EXPECT_EQ(net.ref_bus, 0);
}

TEST(Network, RejectsDisconnectedGrid) {
  Network net;
  net.buses.resize(3);
  for (int i = 0; i < 3; ++i) net.buses[i].id = i + 1;
  net.buses[0].type = BusType::kRef;
  Generator gen;
  gen.bus = 0;
  gen.pmax = 100;
  gen.qmin = -10;
  gen.qmax = 10;
  net.generators.push_back(gen);
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.x = 0.1;
  net.branches.push_back(branch);  // bus 2 unreachable
  EXPECT_THROW(net.finalize(), GridError);
}

TEST(Network, RejectsDoubleFinalize) {
  auto net = load_embedded_case("case9");
  EXPECT_THROW(net.finalize(), GridError);
}

TEST(Network, RejectsZeroImpedanceBranch) {
  Network net;
  net.buses.resize(2);
  net.buses[0].id = 1;
  net.buses[1].id = 2;
  net.buses[0].type = BusType::kRef;
  Generator gen;
  gen.bus = 0;
  gen.pmax = 1;
  net.generators.push_back(gen);
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.r = 0.0;
  branch.x = 0.0;
  net.branches.push_back(branch);
  EXPECT_THROW(net.finalize(), GridError);
}

TEST(Network, PicksRefBusWhenMissing) {
  Network net;
  net.buses.resize(2);
  net.buses[0].id = 1;
  net.buses[1].id = 2;
  net.buses[0].type = BusType::kPQ;
  net.buses[1].type = BusType::kPQ;
  Generator gen;
  gen.bus = 1;
  gen.pmax = 100;
  net.generators.push_back(gen);
  Branch branch;
  branch.from = 0;
  branch.to = 1;
  branch.x = 0.1;
  net.branches.push_back(branch);
  net.finalize();
  EXPECT_EQ(net.ref_bus, 1);  // largest generation capacity
  EXPECT_EQ(net.buses[1].type, BusType::kRef);
}

TEST(Network, GenerationCostSumsQuadratics) {
  const auto net = load_embedded_case("case9");
  std::vector<double> pg{0.723, 1.63, 0.85};
  double expected = 0.0;
  const double mw[3] = {72.3, 163.0, 85.0};
  const double c2[3] = {0.11, 0.085, 0.1225};
  const double c1[3] = {5.0, 1.2, 1.0};
  const double c0[3] = {150.0, 600.0, 335.0};
  for (int g = 0; g < 3; ++g) expected += c2[g] * mw[g] * mw[g] + c1[g] * mw[g] + c0[g];
  EXPECT_NEAR(net.generation_cost(pg), expected, 1e-8);
}

}  // namespace
}  // namespace gridadmm::grid
