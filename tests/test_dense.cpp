#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/dense.hpp"

namespace gridadmm::linalg {
namespace {

DenseMatrix random_spd(int n, Rng& rng) {
  DenseMatrix a(n, n);
  DenseMatrix b(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  // A = B B^T + n I is SPD.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = i == j ? static_cast<double>(n) : 0.0;
      for (int k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      a(i, j) = acc;
    }
  }
  return a;
}

TEST(DenseCholesky, SolvesRandomSpdSystems) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_index(7));
    DenseMatrix a = random_spd(n, rng);
    const DenseMatrix a_copy = a;
    std::vector<double> x_true(n), b(n);
    for (int i = 0; i < n; ++i) x_true[i] = rng.uniform(-2.0, 2.0);
    a.matvec(x_true, b);
    ASSERT_TRUE(cholesky_factorize(a, n));
    cholesky_solve(a, n, b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
    (void)a_copy;
  }
}

TEST(DenseCholesky, FailsOnIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_FALSE(cholesky_factorize(a, 2));
}

TEST(ShiftedCholesky, ZeroShiftForSpd) {
  Rng rng(9);
  DenseMatrix a = random_spd(4, rng);
  EXPECT_DOUBLE_EQ(shifted_cholesky(a, 4), 0.0);
}

TEST(ShiftedCholesky, FindsShiftForIndefinite) {
  DenseMatrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  a(2, 2) = 0.5;
  const double shift = shifted_cholesky(a, 3);
  EXPECT_GT(shift, 2.0 - 1e-9);  // must exceed |most negative eigenvalue|
}

TEST(DenseMatrix, MatvecMatchesManual) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  std::vector<double> x{1, 1, 1}, y(2);
  a.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
}

TEST(Blas1, DotAxpyNorms) {
  std::vector<double> x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(norm_inf(y), 12.0);
  EXPECT_NEAR(norm2(x), std::sqrt(14.0), 1e-14);
  scal(0.5, x);
  EXPECT_DOUBLE_EQ(x[2], 1.5);
}

}  // namespace
}  // namespace gridadmm::linalg
