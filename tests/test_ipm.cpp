// End-to-end tests of the interior-point baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "grid/cases.hpp"
#include "grid/solution.hpp"
#include "grid/synthetic.hpp"
#include "ipm/acopf_nlp.hpp"
#include "ipm/ipm_solver.hpp"

namespace gridadmm::ipm {
namespace {

TEST(Ipm, SolvesCase9ToKnownObjective) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  // MATPOWER's reference ACOPF objective for case9.
  EXPECT_NEAR(result.objective, 5296.69, 0.005 * 5296.69);
  const auto sol = nlp.unpack(solver.primal());
  const auto quality = grid::evaluate_solution(net, sol);
  EXPECT_LT(quality.max_violation, 1e-5);
}

TEST(Ipm, SolvesCase14ToKnownObjective) {
  const auto net = grid::load_embedded_case("case14");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  EXPECT_NEAR(result.objective, 8081.5, 0.005 * 8081.5);
}

TEST(Ipm, SolvesCase30) {
  const auto net = grid::load_embedded_case("case30");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  const auto quality = grid::evaluate_solution(net, nlp.unpack(solver.primal()));
  EXPECT_LT(quality.max_violation, 1e-5);
  EXPECT_LT(quality.line_violation, 1e-6);
}

TEST(Ipm, SolvesSmallSyntheticGrid) {
  grid::SyntheticSpec spec;
  spec.name = "syn120";
  spec.buses = 120;
  spec.branches = 180;
  spec.generators = 25;
  spec.seed = 11;
  const auto net = make_synthetic_grid(spec);
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  const auto quality = grid::evaluate_solution(net, nlp.unpack(solver.primal()));
  EXPECT_LT(quality.max_violation, 1e-5);
}

TEST(Ipm, JacobianMatchesFiniteDifferences) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  const int n = nlp.num_vars();
  const int m = nlp.num_cons();
  std::vector<double> x(n);
  nlp.initial_point(x);
  for (int i = 0; i < n; ++i) x[i] += 0.01 * std::sin(3.7 * i);

  std::vector<double> jac(nlp.jacobian_pattern().nnz());
  nlp.eval_jacobian(x, jac);
  // Dense FD Jacobian.
  const double h = 1e-6;
  std::vector<double> cp(m), cm(m);
  std::vector<std::vector<double>> dense(m, std::vector<double>(n, 0.0));
  for (int col = 0; col < n; ++col) {
    auto xp = x, xm = x;
    xp[col] += h;
    xm[col] -= h;
    nlp.eval_constraints(xp, cp);
    nlp.eval_constraints(xm, cm);
    for (int row = 0; row < m; ++row) dense[row][col] = (cp[row] - cm[row]) / (2 * h);
  }
  // Sum coordinate entries and compare.
  std::vector<std::vector<double>> sparse(m, std::vector<double>(n, 0.0));
  const auto& pattern = nlp.jacobian_pattern();
  for (std::size_t k = 0; k < pattern.nnz(); ++k) {
    sparse[pattern.rows[k]][pattern.cols[k]] += jac[k];
  }
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < n; ++col) {
      EXPECT_NEAR(sparse[row][col], dense[row][col],
                  1e-5 * std::max(1.0, std::abs(dense[row][col])))
          << "row " << row << " col " << col;
    }
  }
}

TEST(Ipm, HessianMatchesFiniteDifferencesOfGradient) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  const int n = nlp.num_vars();
  const int m = nlp.num_cons();
  std::vector<double> x(n);
  nlp.initial_point(x);
  for (int i = 0; i < n; ++i) x[i] += 0.01 * std::cos(2.3 * i);
  std::vector<double> lambda(m);
  for (int j = 0; j < m; ++j) lambda[j] = std::sin(1.1 * j);

  std::vector<double> hess(nlp.hessian_pattern().nnz());
  nlp.eval_hessian(x, 1.0, lambda, hess);
  std::vector<std::vector<double>> sparse(n, std::vector<double>(n, 0.0));
  const auto& pattern = nlp.hessian_pattern();
  for (std::size_t k = 0; k < pattern.nnz(); ++k) {
    sparse[pattern.rows[k]][pattern.cols[k]] += hess[k];
    if (pattern.rows[k] != pattern.cols[k]) {
      sparse[pattern.cols[k]][pattern.rows[k]] += hess[k];
    }
  }
  // FD of grad(L) = grad f + J^T lambda.
  auto lagrangian_grad = [&](const std::vector<double>& pt, std::vector<double>& out) {
    out.assign(n, 0.0);
    nlp.eval_objective_gradient(pt, out);
    std::vector<double> jac(nlp.jacobian_pattern().nnz());
    // Note: eval_jacobian is non-const; cast through the fixture object.
    nlp.eval_jacobian(pt, jac);
    const auto& jp = nlp.jacobian_pattern();
    for (std::size_t k = 0; k < jp.nnz(); ++k) out[jp.cols[k]] += jac[k] * lambda[jp.rows[k]];
  };
  const double h = 1e-6;
  std::vector<double> gp(n), gm(n);
  for (int col = 0; col < n; ++col) {
    auto xp = x, xm = x;
    xp[col] += h;
    xm[col] -= h;
    lagrangian_grad(xp, gp);
    lagrangian_grad(xm, gm);
    for (int row = 0; row < n; ++row) {
      const double fd = (gp[row] - gm[row]) / (2 * h);
      EXPECT_NEAR(sparse[row][col], fd, 2e-4 * std::max(1.0, std::abs(fd)))
          << "row " << row << " col " << col;
    }
  }
}

TEST(Ipm, ReportsFailureOnInfeasibleGrid) {
  // Load far beyond total generation capacity.
  auto net = grid::load_embedded_case("case9");
  for (auto& bus : net.buses) bus.pd *= 100.0;
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  IpmResult result = solver.solve();
  EXPECT_NE(result.status, IpmStatus::kOptimal);
}

TEST(Ipm, ReportsLineSearchFailureOnInfeasibleCase) {
  // Loads scaled far past feasibility but not absurdly so: the solver makes
  // progress until the merit line search can no longer decrease, the typed
  // status the serve router maps to ConvergenceError.
  auto net = grid::load_embedded_case("case9");
  for (auto& bus : net.buses) {
    bus.pd *= 10.0;
    bus.qd *= 10.0;
  }
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kLineSearchFailure);
  EXPECT_STREQ(ipm_status_name(result.status), "line-search-failure");
}

TEST(Ipm, WarmStartFromPrimalIsDeterministic) {
  // Two independent solvers seeded with the same primal via set_primal must
  // walk bit-identical iterate sequences: the escalation router's IPM rung
  // relies on replayable rescues.
  const auto net = grid::load_embedded_case("case30");
  std::vector<double> seed;
  {
    AcopfNlp nlp(net);
    seed.resize(static_cast<std::size_t>(nlp.num_vars()));
    nlp.initial_point(seed);
    for (std::size_t i = 0; i < seed.size(); ++i) seed[i] += 0.003 * std::sin(1.7 * static_cast<double>(i));
  }
  auto run = [&](IpmResult& result, std::vector<double>& primal) {
    AcopfNlp nlp(net);
    IpmSolver solver(nlp);
    solver.set_primal(seed);
    solver.options().warm_start = true;
    result = solver.solve();
    primal.assign(solver.primal().begin(), solver.primal().end());
  };
  IpmResult a_result, b_result;
  std::vector<double> a_primal, b_primal;
  run(a_result, a_primal);
  run(b_result, b_primal);
  ASSERT_EQ(a_result.status, IpmStatus::kOptimal);
  EXPECT_EQ(a_result.status, b_result.status);
  EXPECT_EQ(a_result.iterations, b_result.iterations);
  EXPECT_EQ(a_result.objective, b_result.objective);  // bit-identical, not NEAR
  EXPECT_EQ(a_result.kkt_error, b_result.kkt_error);
  ASSERT_EQ(a_primal.size(), b_primal.size());
  for (std::size_t i = 0; i < a_primal.size(); ++i) {
    EXPECT_EQ(a_primal[i], b_primal[i]) << "primal diverged at " << i;
  }
}

TEST(Ipm, WallBudgetStopsWithTimeBudgetStatus) {
  const auto net = grid::load_embedded_case("case30");
  AcopfNlp nlp(net);
  IpmOptions options;
  options.max_wall_seconds = 1e-9;  // expires after the first iteration
  IpmSolver solver(nlp, options);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kTimeBudget);
  EXPECT_GE(result.iterations, 1);
  EXPECT_LT(result.iterations, options.max_iterations);
  EXPECT_STREQ(ipm_status_name(result.status), "time-budget");
}

namespace {

/// Delegating NLP that poisons the objective gradient with NaN — drives the
/// KKT error non-finite so the solver's numerical trap must fire.
class NanGradientNlp final : public Nlp {
 public:
  explicit NanGradientNlp(Nlp& inner) : inner_(inner) {}
  [[nodiscard]] int num_vars() const override { return inner_.num_vars(); }
  [[nodiscard]] int num_cons() const override { return inner_.num_cons(); }
  void var_bounds(std::span<double> lower, std::span<double> upper) const override {
    inner_.var_bounds(lower, upper);
  }
  void con_bounds(std::span<double> lower, std::span<double> upper) const override {
    inner_.con_bounds(lower, upper);
  }
  void initial_point(std::span<double> x0) const override { inner_.initial_point(x0); }
  double eval_objective(std::span<const double> x) override { return inner_.eval_objective(x); }
  void eval_objective_gradient(std::span<const double> x, std::span<double> grad) override {
    inner_.eval_objective_gradient(x, grad);
    grad[0] = std::numeric_limits<double>::quiet_NaN();
  }
  void eval_constraints(std::span<const double> x, std::span<double> c) override {
    inner_.eval_constraints(x, c);
  }
  [[nodiscard]] const SparsityPattern& jacobian_pattern() const override {
    return inner_.jacobian_pattern();
  }
  void eval_jacobian(std::span<const double> x, std::span<double> values) override {
    inner_.eval_jacobian(x, values);
  }
  [[nodiscard]] const SparsityPattern& hessian_pattern() const override {
    return inner_.hessian_pattern();
  }
  void eval_hessian(std::span<const double> x, double sigma, std::span<const double> lambda,
                    std::span<double> values) override {
    inner_.eval_hessian(x, sigma, lambda, values);
  }

 private:
  Nlp& inner_;
};

}  // namespace

TEST(Ipm, NonFiniteIterateThrowsNumericalError) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp inner(net);
  NanGradientNlp nlp(inner);
  IpmSolver solver(nlp);
  EXPECT_THROW(solver.solve(), NumericalError);
}

TEST(Ipm, WarmStartReusesState) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto cold = solver.solve();
  ASSERT_EQ(cold.status, IpmStatus::kOptimal);
  // Tiny load change, warm start: should still converge.
  std::vector<double> pd, qd;
  for (const auto& bus : net.buses) {
    pd.push_back(bus.pd * 1.01);
    qd.push_back(bus.qd * 1.01);
  }
  nlp.set_loads(pd, qd);
  solver.options().warm_start = true;
  const auto warm = solver.solve();
  EXPECT_EQ(warm.status, IpmStatus::kOptimal);
}

}  // namespace
}  // namespace gridadmm::ipm
