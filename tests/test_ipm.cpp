// End-to-end tests of the interior-point baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/cases.hpp"
#include "grid/solution.hpp"
#include "grid/synthetic.hpp"
#include "ipm/acopf_nlp.hpp"
#include "ipm/ipm_solver.hpp"

namespace gridadmm::ipm {
namespace {

TEST(Ipm, SolvesCase9ToKnownObjective) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  // MATPOWER's reference ACOPF objective for case9.
  EXPECT_NEAR(result.objective, 5296.69, 0.005 * 5296.69);
  const auto sol = nlp.unpack(solver.primal());
  const auto quality = grid::evaluate_solution(net, sol);
  EXPECT_LT(quality.max_violation, 1e-5);
}

TEST(Ipm, SolvesCase14ToKnownObjective) {
  const auto net = grid::load_embedded_case("case14");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  EXPECT_NEAR(result.objective, 8081.5, 0.005 * 8081.5);
}

TEST(Ipm, SolvesCase30) {
  const auto net = grid::load_embedded_case("case30");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  const auto quality = grid::evaluate_solution(net, nlp.unpack(solver.primal()));
  EXPECT_LT(quality.max_violation, 1e-5);
  EXPECT_LT(quality.line_violation, 1e-6);
}

TEST(Ipm, SolvesSmallSyntheticGrid) {
  grid::SyntheticSpec spec;
  spec.name = "syn120";
  spec.buses = 120;
  spec.branches = 180;
  spec.generators = 25;
  spec.seed = 11;
  const auto net = make_synthetic_grid(spec);
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto result = solver.solve();
  EXPECT_EQ(result.status, IpmStatus::kOptimal);
  const auto quality = grid::evaluate_solution(net, nlp.unpack(solver.primal()));
  EXPECT_LT(quality.max_violation, 1e-5);
}

TEST(Ipm, JacobianMatchesFiniteDifferences) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  const int n = nlp.num_vars();
  const int m = nlp.num_cons();
  std::vector<double> x(n);
  nlp.initial_point(x);
  for (int i = 0; i < n; ++i) x[i] += 0.01 * std::sin(3.7 * i);

  std::vector<double> jac(nlp.jacobian_pattern().nnz());
  nlp.eval_jacobian(x, jac);
  // Dense FD Jacobian.
  const double h = 1e-6;
  std::vector<double> cp(m), cm(m);
  std::vector<std::vector<double>> dense(m, std::vector<double>(n, 0.0));
  for (int col = 0; col < n; ++col) {
    auto xp = x, xm = x;
    xp[col] += h;
    xm[col] -= h;
    nlp.eval_constraints(xp, cp);
    nlp.eval_constraints(xm, cm);
    for (int row = 0; row < m; ++row) dense[row][col] = (cp[row] - cm[row]) / (2 * h);
  }
  // Sum coordinate entries and compare.
  std::vector<std::vector<double>> sparse(m, std::vector<double>(n, 0.0));
  const auto& pattern = nlp.jacobian_pattern();
  for (std::size_t k = 0; k < pattern.nnz(); ++k) {
    sparse[pattern.rows[k]][pattern.cols[k]] += jac[k];
  }
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < n; ++col) {
      EXPECT_NEAR(sparse[row][col], dense[row][col],
                  1e-5 * std::max(1.0, std::abs(dense[row][col])))
          << "row " << row << " col " << col;
    }
  }
}

TEST(Ipm, HessianMatchesFiniteDifferencesOfGradient) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  const int n = nlp.num_vars();
  const int m = nlp.num_cons();
  std::vector<double> x(n);
  nlp.initial_point(x);
  for (int i = 0; i < n; ++i) x[i] += 0.01 * std::cos(2.3 * i);
  std::vector<double> lambda(m);
  for (int j = 0; j < m; ++j) lambda[j] = std::sin(1.1 * j);

  std::vector<double> hess(nlp.hessian_pattern().nnz());
  nlp.eval_hessian(x, 1.0, lambda, hess);
  std::vector<std::vector<double>> sparse(n, std::vector<double>(n, 0.0));
  const auto& pattern = nlp.hessian_pattern();
  for (std::size_t k = 0; k < pattern.nnz(); ++k) {
    sparse[pattern.rows[k]][pattern.cols[k]] += hess[k];
    if (pattern.rows[k] != pattern.cols[k]) {
      sparse[pattern.cols[k]][pattern.rows[k]] += hess[k];
    }
  }
  // FD of grad(L) = grad f + J^T lambda.
  auto lagrangian_grad = [&](const std::vector<double>& pt, std::vector<double>& out) {
    out.assign(n, 0.0);
    nlp.eval_objective_gradient(pt, out);
    std::vector<double> jac(nlp.jacobian_pattern().nnz());
    // Note: eval_jacobian is non-const; cast through the fixture object.
    nlp.eval_jacobian(pt, jac);
    const auto& jp = nlp.jacobian_pattern();
    for (std::size_t k = 0; k < jp.nnz(); ++k) out[jp.cols[k]] += jac[k] * lambda[jp.rows[k]];
  };
  const double h = 1e-6;
  std::vector<double> gp(n), gm(n);
  for (int col = 0; col < n; ++col) {
    auto xp = x, xm = x;
    xp[col] += h;
    xm[col] -= h;
    lagrangian_grad(xp, gp);
    lagrangian_grad(xm, gm);
    for (int row = 0; row < n; ++row) {
      const double fd = (gp[row] - gm[row]) / (2 * h);
      EXPECT_NEAR(sparse[row][col], fd, 2e-4 * std::max(1.0, std::abs(fd)))
          << "row " << row << " col " << col;
    }
  }
}

TEST(Ipm, ReportsFailureOnInfeasibleGrid) {
  // Load far beyond total generation capacity.
  auto net = grid::load_embedded_case("case9");
  for (auto& bus : net.buses) bus.pd *= 100.0;
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  IpmResult result = solver.solve();
  EXPECT_NE(result.status, IpmStatus::kOptimal);
}

TEST(Ipm, WarmStartReusesState) {
  const auto net = grid::load_embedded_case("case9");
  AcopfNlp nlp(net);
  IpmSolver solver(nlp);
  const auto cold = solver.solve();
  ASSERT_EQ(cold.status, IpmStatus::kOptimal);
  // Tiny load change, warm start: should still converge.
  std::vector<double> pd, qd;
  for (const auto& bus : net.buses) {
    pd.push_back(bus.pd * 1.01);
    qd.push_back(bus.qd * 1.01);
  }
  nlp.set_loads(pd, qd);
  solver.options().warm_start = true;
  const auto warm = solver.solve();
  EXPECT_EQ(warm.status, IpmStatus::kOptimal);
}

}  // namespace
}  // namespace gridadmm::ipm
