// Unit tests for the inertia-controlled KKT factorization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ipm/kkt_system.hpp"

namespace gridadmm::ipm {
namespace {

/// Builds a simple convex QP KKT: W = diag(w), J dense-ish rows.
struct SmallKkt {
  int nx, m;
  SparsityPattern hess, jac;
  std::vector<double> hess_values, jac_values, sigma;
};

SmallKkt make_small(int nx, int m, Rng& rng) {
  SmallKkt k;
  k.nx = nx;
  k.m = m;
  for (int i = 0; i < nx; ++i) {
    k.hess.rows.push_back(i);
    k.hess.cols.push_back(i);
    k.hess_values.push_back(rng.uniform(0.5, 2.0));
  }
  for (int j = 0; j < m; ++j) {
    // Each constraint touches 3 variables (rank is full with high prob.).
    for (int t = 0; t < 3; ++t) {
      k.jac.rows.push_back(j);
      k.jac.cols.push_back(static_cast<int>(rng.uniform_index(nx)));
      k.jac_values.push_back(rng.uniform(-1.0, 1.0) + (t == 0 ? 2.0 : 0.0));
    }
    // Anchor on a unique column to guarantee independence.
    k.jac.rows.push_back(j);
    k.jac.cols.push_back(j % nx);
    k.jac_values.push_back(3.0);
  }
  k.sigma.assign(nx, 0.1);
  return k;
}

TEST(KktSystem, FactorizesAndSolvesConvexSystem) {
  Rng rng(41);
  const int nx = 20, m = 6;
  auto k = make_small(nx, m, rng);
  KktSystem kkt;
  kkt.analyze(nx, m, k.hess, k.jac, linalg::OrderingMethod::kMinDegree);
  ASSERT_TRUE(kkt.factorize(k.hess_values, k.jac_values, k.sigma, 0.1));
  EXPECT_DOUBLE_EQ(kkt.primal_regularization(), 0.0);

  // Verify the solve by residual: assemble dense and multiply back.
  std::vector<double> rhs(nx + m);
  for (auto& v : rhs) v = rng.uniform(-1, 1);
  const auto rhs0 = rhs;
  kkt.solve(rhs);
  // Dense residual check.
  std::vector<std::vector<double>> dense(nx + m, std::vector<double>(nx + m, 0.0));
  for (std::size_t t = 0; t < k.hess.nnz(); ++t) {
    dense[k.hess.rows[t]][k.hess.cols[t]] += k.hess_values[t];
    if (k.hess.rows[t] != k.hess.cols[t]) {
      dense[k.hess.cols[t]][k.hess.rows[t]] += k.hess_values[t];
    }
  }
  for (int i = 0; i < nx; ++i) dense[i][i] += k.sigma[i];
  for (std::size_t t = 0; t < k.jac.nnz(); ++t) {
    dense[nx + k.jac.rows[t]][k.jac.cols[t]] += k.jac_values[t];
    dense[k.jac.cols[t]][nx + k.jac.rows[t]] += k.jac_values[t];
  }
  for (int r = 0; r < nx + m; ++r) {
    double acc = 0.0;
    for (int c = 0; c < nx + m; ++c) acc += dense[r][c] * rhs[c];
    EXPECT_NEAR(acc, rhs0[r], 1e-8) << "row " << r;
  }
}

TEST(KktSystem, CorrectsInertiaOfIndefiniteHessian) {
  // W has a negative diagonal entry; the corrected system must still report
  // the saddle-point inertia (nx positive, m negative).
  Rng rng(42);
  const int nx = 10, m = 3;
  auto k = make_small(nx, m, rng);
  k.hess_values[0] = -5.0;  // break convexity
  k.sigma.assign(nx, 0.0);
  KktSystem kkt;
  kkt.analyze(nx, m, k.hess, k.jac, linalg::OrderingMethod::kMinDegree);
  ASSERT_TRUE(kkt.factorize(k.hess_values, k.jac_values, k.sigma, 0.1));
  // Needs some primal regularization (but only enough for positive
  // definiteness on the null space of J, not on the whole space).
  EXPECT_GT(kkt.primal_regularization(), 0.0);
}

TEST(KktSystem, HandlesRankDeficientJacobianWithDualRegularization) {
  // Two identical constraint rows: J is rank deficient, so the system is
  // singular until dc > 0.
  SparsityPattern hess, jac;
  std::vector<double> hv, jv;
  for (int i = 0; i < 4; ++i) {
    hess.rows.push_back(i);
    hess.cols.push_back(i);
    hv.push_back(1.0);
  }
  for (int j = 0; j < 2; ++j) {
    jac.rows.push_back(j);
    jac.cols.push_back(0);
    jv.push_back(1.0);
    jac.rows.push_back(j);
    jac.cols.push_back(1);
    jv.push_back(2.0);
  }
  std::vector<double> sigma(4, 0.0);
  KktSystem kkt;
  kkt.analyze(4, 2, hess, jac, linalg::OrderingMethod::kNatural);
  ASSERT_TRUE(kkt.factorize(hv, jv, sigma, 0.1));
  EXPECT_GT(kkt.dual_regularization(), 0.0);
}

TEST(KktSystem, RefillsValuesWithSamePattern) {
  Rng rng(43);
  auto k = make_small(12, 4, rng);
  KktSystem kkt;
  kkt.analyze(k.nx, k.m, k.hess, k.jac, linalg::OrderingMethod::kRcm);
  ASSERT_TRUE(kkt.factorize(k.hess_values, k.jac_values, k.sigma, 0.1));
  // Change values, refactorize, verify new system solves consistently.
  for (auto& v : k.hess_values) v *= 2.0;
  ASSERT_TRUE(kkt.factorize(k.hess_values, k.jac_values, k.sigma, 0.1));
  std::vector<double> rhs(k.nx + k.m, 1.0);
  kkt.solve(rhs);
  for (const double v : rhs) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace gridadmm::ipm
