#!/usr/bin/env python3
"""Perf guard: fail CI when fresh bench records regress against the committed baseline.

Usage: perf_guard.py FRESH_JSONL BASELINE_JSONL

Compares the smoke-mode bench records produced by the current build against
the BENCH_scenario_batch.json committed at the repo root (the first real
consumer of the benchmark trajectory). Two checks, both over the
intersection of record keys — records only one side has are ignored, so the
baseline may carry extra full-protocol evidence records:

- kernel_breakdown "total" records, keyed by
  (case, S, layout, solver_path, branch_pack): the branch phase's share of
  the fused loop must not exceed the baseline share by more than
  BRANCH_SHARE_TOLERANCE (absolute). Shares are time ratios, so they are
  robust to machine-speed differences between CI runners and the box the
  baseline was recorded on.
- scenario_batch batched records, keyed by
  (case, S, layout, branch_pack, shards): scenarios/second must stay above
  SCEN_PER_SEC_RATIO x the baseline figure. The ratio is deliberately loose
  (CI runners vary widely) — it catches structural regressions such as
  losing the branch fast path or the fused launch geometry, not percent
  drift.
- serve_slo records, keyed by (rate, case_mix, shards): end-to-end p99 must
  stay below SLO_P99_RATIO x baseline p99 + SLO_P99_SLACK_MS (the slack
  absorbs timer noise on near-zero smoke latencies), and the shed rate must
  not exceed the baseline's by more than SLO_SHED_TOLERANCE (absolute).
  Catches serving-path regressions the throughput figures can't see:
  queueing pathologies, lost micro-batch coalescing, admission bugs.

Exits non-zero, listing every violation, if any check fails or if the
record intersection is empty (a guard that compares nothing guards nothing).
"""

import json
import sys

BRANCH_SHARE_TOLERANCE = 0.08  # absolute share points
SCEN_PER_SEC_RATIO = 0.4       # fresh must be >= this fraction of baseline
SLO_P99_RATIO = 5.0            # fresh p99 ceiling, as a multiple of baseline
SLO_P99_SLACK_MS = 20.0        # plus this absolute slack (timer noise floor)
SLO_SHED_TOLERANCE = 0.15      # absolute shed-rate points


def load_records(path):
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def breakdown_totals(records):
    out = {}
    for rec in records:
        if rec.get("bench") != "kernel_breakdown" or rec.get("phase") != "total":
            continue
        key = (
            rec.get("case"),
            rec.get("S"),
            rec.get("layout"),
            rec.get("solver_path", "fixed"),
            rec.get("branch_pack", 1),
        )
        out[key] = rec
    return out


def batched_throughput(records):
    out = {}
    for rec in records:
        if rec.get("bench") != "scenario_batch" or rec.get("engine") != "batched":
            continue
        key = (
            rec.get("case"),
            rec.get("S"),
            rec.get("layout"),
            rec.get("branch_pack", 1),
            rec.get("shards", 1),
        )
        out[key] = rec
    return out


def serve_slo_points(records):
    out = {}
    for rec in records:
        if rec.get("bench") != "serve_slo":
            continue
        key = (rec.get("rate"), rec.get("case_mix"), rec.get("shards", 1))
        out[key] = rec
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    fresh = load_records(sys.argv[1])
    baseline = load_records(sys.argv[2])

    violations = []
    compared = 0

    fresh_totals = breakdown_totals(fresh)
    base_totals = breakdown_totals(baseline)
    for key in sorted(set(fresh_totals) & set(base_totals)):
        fresh_share = fresh_totals[key].get("branch_share")
        base_share = base_totals[key].get("branch_share")
        if fresh_share is None or base_share is None:
            continue  # pre-attribution baseline record: nothing was compared
        compared += 1
        if fresh_share > base_share + BRANCH_SHARE_TOLERANCE:
            violations.append(
                f"branch share regressed for {key}: {fresh_share:.3f} vs baseline "
                f"{base_share:.3f} (+{BRANCH_SHARE_TOLERANCE} allowed)"
            )

    fresh_scen = batched_throughput(fresh)
    base_scen = batched_throughput(baseline)
    for key in sorted(set(fresh_scen) & set(base_scen)):
        compared += 1
        fresh_rate = fresh_scen[key].get("scenarios_per_second", 0.0)
        base_rate = base_scen[key].get("scenarios_per_second", 0.0)
        if base_rate <= 0.0:
            continue
        if fresh_rate < SCEN_PER_SEC_RATIO * base_rate:
            violations.append(
                f"batched scen/s regressed for {key}: {fresh_rate:.2f} vs baseline "
                f"{base_rate:.2f} (floor {SCEN_PER_SEC_RATIO:.0%})"
            )

    fresh_slo = serve_slo_points(fresh)
    base_slo = serve_slo_points(baseline)
    for key in sorted(set(fresh_slo) & set(base_slo)):
        compared += 1
        fresh_p99 = fresh_slo[key].get("p99_ms", 0.0)
        base_p99 = base_slo[key].get("p99_ms", 0.0)
        ceiling = SLO_P99_RATIO * base_p99 + SLO_P99_SLACK_MS
        if base_p99 > 0.0 and fresh_p99 > ceiling:
            violations.append(
                f"serve_slo p99 regressed for {key}: {fresh_p99:.2f} ms vs baseline "
                f"{base_p99:.2f} ms (ceiling {ceiling:.2f} ms)"
            )
        fresh_shed = fresh_slo[key].get("shed_rate", 0.0)
        base_shed = base_slo[key].get("shed_rate", 0.0)
        if fresh_shed > base_shed + SLO_SHED_TOLERANCE:
            violations.append(
                f"serve_slo shed rate regressed for {key}: {fresh_shed:.3f} vs baseline "
                f"{base_shed:.3f} (+{SLO_SHED_TOLERANCE} allowed)"
            )

    if compared == 0:
        print("perf guard: no comparable records between fresh output and baseline")
        return 1
    if violations:
        print(f"perf guard: {len(violations)} regression(s) across {compared} comparisons:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"perf guard: OK ({compared} comparisons, no regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
