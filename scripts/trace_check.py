#!/usr/bin/env python3
"""Trace check: validate a Chrome trace-event JSON emitted by obs::Tracer.

Usage: trace_check.py TRACE_JSON [--require=name1,name2,...]

Structural validation of the `--trace=PATH` / GRIDADMM_TRACE output (the
format Perfetto and chrome://tracing load):

- the file is valid JSON with a "traceEvents" list;
- every event has a string "name" and "ph", and a numeric "ts"
  (metadata "M" events are exempt from "ts");
- every complete-span "X" event has a numeric, non-negative "dur";
- at least one non-metadata event exists (an empty trace usually means the
  tracer was never enabled, which is exactly the bug this guards against).

Prints a per-name summary (event count, total span duration) and the number
of distinct threads, so a CI log shows at a glance which subsystems traced.
With --require=..., exits non-zero unless every named event appears at
least once — CI uses this to pin the request-lifecycle spans (serve.admit,
serve.queue, serve.solve, device.launch, ...) across dispatcher, shard, and
device threads.

Exits 0 on success, 1 on any validation failure or missing required name.
Stdlib only.
"""

import json
import sys
from collections import defaultdict


def fail(message):
    print(f"trace check: FAIL: {message}")
    return 1


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    required = []
    for arg in sys.argv[1:]:
        if arg.startswith("--require="):
            required.extend(n for n in arg[len("--require="):].split(",") if n)
    if len(args) != 1:
        print(__doc__)
        return 2
    path = args[0]

    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"cannot load {path}: {err}")

    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        return fail('top level must be an object with a "traceEvents" list')
    events = trace["traceEvents"]

    names = defaultdict(int)
    span_duration_us = defaultdict(float)
    threads = set()
    checked = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return fail(f"event {i} is not an object")
        name = event.get("name")
        phase = event.get("ph")
        if not isinstance(name, str) or not isinstance(phase, str):
            return fail(f'event {i} lacks a string "name"/"ph"')
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                return fail(f'event {i} ({name}) lacks a numeric "ts"')
            names[name] += 1
            threads.add((event.get("pid"), event.get("tid")))
            checked += 1
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f'X event {i} ({name}) lacks a non-negative numeric "dur"')
            span_duration_us[name] += dur

    if checked == 0:
        return fail("no events (was the tracer enabled?)")

    print(f"trace check: {checked} events, {len(names)} distinct names, "
          f"{len(threads)} threads")
    for name in sorted(names):
        total_ms = span_duration_us[name] / 1000.0
        print(f"  {name:<24} x{names[name]:<6} {total_ms:10.3f} ms")

    missing = [name for name in required if name not in names]
    if missing:
        return fail(f"required event name(s) absent: {', '.join(missing)}")
    print("trace check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
