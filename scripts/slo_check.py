#!/usr/bin/env python3
"""Validate bench_serve_slo JSONL output (the CI slo-smoke artifact).

Usage: slo_check.py JSONL_PATH [--min-points=N] [--require-ledger]
                               [--expect-quarantine] [--expect-escalation]

Checks, stdlib only:
- at least --min-points (default 3) serve_slo records with DISTINCT offered
  rates — the committed BENCH_serve_slo.json must be a real sweep, not one
  point repeated;
- every record carries the required fields (rate, offered, shed, shed_rate,
  latency and per-stage percentiles, burn figures);
- quantiles are ordered (p50 <= p95 <= p99) and non-negative;
- shed_rate is a fraction in [0, 1] and consistent with shed/offered;
- per-stage p95s are non-negative and the solve stage is not identically
  zero across the sweep (a zero solve stage means timelines were never
  stamped — the instrumentation is dead);
- the fault-tolerance ledger balances in every record that carries it:
  offered == completed + shed + failed + deadline_shed, i.e. zero lost
  futures (DESIGN.md §12). --require-ledger makes the ledger fields
  mandatory (the chaos-smoke CI step); --expect-quarantine additionally
  demands that at least one record saw a shard quarantine trip;
- the engine-router split is consistent in every record that carries it:
  completed == completed_admm + completed_escalated_admm + completed_ipm,
  and ipm_rescues == completed_ipm <= ipm_attempts (DESIGN.md §13).
  --expect-escalation (the escalation-smoke CI step) makes the split fields
  mandatory and additionally demands at least one IPM rescue somewhere in
  the sweep — proof the stress tenant really defeated ADMM and the
  warm-started MiniIPM rung caught it.

Exits non-zero listing every violation.
"""

import json
import sys

REQUIRED = [
    "rate",
    "offered",
    "shed",
    "shed_rate",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "slo_healthy",
    "latency_burn_fast",
    "latency_burn_slow",
]
STAGES = ["queue", "dispatch", "form", "stage", "solve", "extract", "fulfill"]
LEDGER = ["completed", "failed", "deadline_shed", "retries", "quarantine_transitions"]
ENGINES = [
    "completed_admm",
    "completed_escalated_admm",
    "completed_ipm",
    "ipm_rescues",
    "ipm_attempts",
    "ipm_failures",
]


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    min_points = 3
    require_ledger = "--require-ledger" in sys.argv[1:]
    expect_quarantine = "--expect-quarantine" in sys.argv[1:]
    expect_escalation = "--expect-escalation" in sys.argv[1:]
    for arg in sys.argv[1:]:
        if arg.startswith("--min-points="):
            min_points = int(arg.split("=", 1)[1])
    if len(args) != 1:
        print(__doc__)
        return 2

    records = []
    with open(args[0], encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if rec.get("bench") == "serve_slo":
                records.append(rec)

    errors = []
    rates = {rec.get("rate") for rec in records}
    if len(rates) < min_points:
        errors.append(
            f"need >= {min_points} distinct offered-load points, found {len(rates)}: "
            f"{sorted(r for r in rates if r is not None)}"
        )

    any_solve_time = False
    for i, rec in enumerate(records):
        where = f"record {i} (rate={rec.get('rate')})"
        for field in REQUIRED:
            if field not in rec:
                errors.append(f"{where}: missing field '{field}'")
        for stage in STAGES:
            field = f"stage_{stage}_p95_us"
            if field not in rec:
                errors.append(f"{where}: missing field '{field}'")
            elif rec[field] < 0:
                errors.append(f"{where}: {field} is negative ({rec[field]})")
        if rec.get("stage_solve_p95_us", 0) > 0:
            any_solve_time = True

        p50, p95, p99 = (rec.get(k, 0) for k in ("p50_ms", "p95_ms", "p99_ms"))
        if not 0 <= p50 <= p95 <= p99:
            errors.append(f"{where}: quantiles disordered: p50={p50} p95={p95} p99={p99}")

        shed_rate = rec.get("shed_rate", 0)
        if not 0.0 <= shed_rate <= 1.0:
            errors.append(f"{where}: shed_rate {shed_rate} outside [0, 1]")
        offered, shed = rec.get("offered", 0), rec.get("shed", 0)
        if offered > 0 and abs(shed_rate - shed / offered) > 1e-6:
            errors.append(
                f"{where}: shed_rate {shed_rate} inconsistent with shed/offered "
                f"{shed}/{offered}"
            )

        # Fault-tolerance ledger: every offered request must be accounted for
        # exactly once — a completed value, a capacity shed, a typed failure,
        # or a deadline shed. Anything else is a lost future.
        if require_ledger:
            for field in LEDGER:
                if field not in rec:
                    errors.append(f"{where}: missing ledger field '{field}'")
        if all(field in rec for field in ("completed", "failed", "deadline_shed")):
            accounted = (
                rec["completed"] + shed + rec["failed"] + rec["deadline_shed"]
            )
            if accounted != offered:
                errors.append(
                    f"{where}: ledger imbalance — offered {offered} != completed "
                    f"{rec['completed']} + shed {shed} + failed {rec['failed']} + "
                    f"deadline_shed {rec['deadline_shed']} (lost futures: "
                    f"{offered - accounted})"
                )

        # Engine-router split: every completion is attributed to exactly one
        # escalation-ladder rung, and rescues never exceed attempts.
        if expect_escalation:
            for field in ENGINES:
                if field not in rec:
                    errors.append(f"{where}: missing engine-split field '{field}'")
        if all(f in rec for f in ("completed_admm", "completed_escalated_admm", "completed_ipm")):
            split = (
                rec["completed_admm"]
                + rec["completed_escalated_admm"]
                + rec["completed_ipm"]
            )
            if "completed" in rec and split != rec["completed"]:
                errors.append(
                    f"{where}: engine split {split} != completed {rec['completed']} "
                    f"(admm {rec['completed_admm']} + escalated_admm "
                    f"{rec['completed_escalated_admm']} + ipm {rec['completed_ipm']})"
                )
            if rec.get("ipm_rescues", rec["completed_ipm"]) != rec["completed_ipm"]:
                errors.append(
                    f"{where}: ipm_rescues {rec['ipm_rescues']} != completed_ipm "
                    f"{rec['completed_ipm']}"
                )
            if "ipm_attempts" in rec and rec["completed_ipm"] + rec.get(
                "ipm_failures", 0
            ) > rec["ipm_attempts"]:
                errors.append(
                    f"{where}: ipm rescues {rec['completed_ipm']} + failures "
                    f"{rec.get('ipm_failures', 0)} exceed attempts {rec['ipm_attempts']}"
                )

    if expect_quarantine and not any(
        rec.get("shard_quarantines", 0) > 0 or rec.get("quarantine_transitions", 0) > 0
        for rec in records
    ):
        errors.append(
            "--expect-quarantine: no record saw a shard quarantine trip "
            "(shard_quarantines and quarantine_transitions are zero everywhere)"
        )

    if expect_escalation and not any(rec.get("ipm_rescues", 0) > 0 for rec in records):
        errors.append(
            "--expect-escalation: no record saw an IPM rescue (ipm_rescues is zero "
            "everywhere) — the stress tenant never exercised the fallback engine"
        )

    if records and not any_solve_time:
        errors.append(
            "stage_solve_p95_us is zero in every record: stage timelines were never stamped"
        )

    if errors:
        print(f"slo check: {len(errors)} violation(s) in {args[0]}:")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"slo check: OK ({len(records)} records, {len(rates)} offered-load points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
