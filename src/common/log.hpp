// Minimal leveled logger. Thread safe; level configurable via the
// GRIDADMM_LOG environment variable (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace gridadmm::log {

enum class Level : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Returns the process-wide log level (initialized from GRIDADMM_LOG).
Level level();

/// Overrides the process-wide log level.
void set_level(Level lvl);

/// Emits one line to stderr if `lvl` is enabled.
void write(Level lvl, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  append(os, rest...);
}
}  // namespace detail

/// Formats the arguments with operator<< and logs them at `lvl`.
template <typename... Args>
void emit(Level lvl, const Args&... args) {
  if (static_cast<int>(lvl) > static_cast<int>(level())) return;
  std::ostringstream os;
  detail::append(os, args...);
  write(lvl, os.str());
}

template <typename... Args> void error(const Args&... a) { emit(Level::kError, a...); }
template <typename... Args> void warn(const Args&... a) { emit(Level::kWarn, a...); }
template <typename... Args> void info(const Args&... a) { emit(Level::kInfo, a...); }
template <typename... Args> void debug(const Args&... a) { emit(Level::kDebug, a...); }
template <typename... Args> void trace(const Args&... a) { emit(Level::kTrace, a...); }

}  // namespace gridadmm::log
