// ASCII table writer used by the benchmark harnesses to print paper-shaped
// tables (Table I, Table II, figure series) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace gridadmm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule, right-aligning numeric cells.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  /// Formats a double with `prec` significant digits (helper for rows).
  static std::string num(double v, int prec = 4);
  /// Formats a double in fixed notation with `decimals` digits.
  static std::string fixed(double v, int decimals = 2);
  /// Formats a double in scientific notation with `decimals` digits.
  static std::string sci(double v, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridadmm
