// Tiny --key=value command-line / environment option reader used by the
// examples and benchmark harnesses. Not a general-purpose CLI library.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace gridadmm {

class Options {
 public:
  Options() = default;

  /// Parses argv entries of the form --key=value or --flag.
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Reads an environment variable, returning nullopt when unset.
  static std::optional<std::string> env(const std::string& name);
  /// True when environment variable `name` is set to a truthy value (1/true/yes).
  static bool env_flag(const std::string& name);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gridadmm
