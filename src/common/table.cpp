#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace gridadmm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: headers must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", prec, v);
  return buf;
}

std::string Table::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::sci(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", decimals, v);
  return buf;
}

}  // namespace gridadmm
