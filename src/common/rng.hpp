// Deterministic random number generation. All stochastic pieces of the
// library (synthetic grids, load profiles, tests) draw from these engines so
// that runs are reproducible across platforms, unlike std::mt19937 paired
// with the unspecified std:: distributions.
#pragma once

#include <cmath>
#include <cstdint>

namespace gridadmm {

/// SplitMix64: used to seed and to derive independent streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with portable, platform-independent output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Log-normal sample: exp(mu + sigma * N(0,1)).
  double lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

  /// Bernoulli trial with probability p.
  bool flip(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace gridadmm
