#include "common/options.hpp"

#include <cstdlib>
#include <string_view>

namespace gridadmm {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Options::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoi(it->second.c_str());
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

std::optional<std::string> Options::env(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

bool Options::env_flag(const std::string& name) {
  const auto v = env(name);
  return v && (*v == "1" || *v == "true" || *v == "yes");
}

}  // namespace gridadmm
