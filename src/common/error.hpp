// Error handling primitives shared by every gridadmm module.
#pragma once

#include <stdexcept>
#include <string>

namespace gridadmm {

/// Base class for all errors raised by the library.
class GridError : public std::runtime_error {
 public:
  explicit GridError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input file or case description cannot be parsed.
class ParseError : public GridError {
 public:
  explicit ParseError(const std::string& what) : GridError(what) {}
};

/// Raised when a network fails validation (disconnected, missing data, ...).
class ModelError : public GridError {
 public:
  explicit ModelError(const std::string& what) : GridError(what) {}
};

/// Raised when a numerical routine cannot continue (singular system, ...).
class NumericalError : public GridError {
 public:
  explicit NumericalError(const std::string& what) : GridError(what) {}
};

/// Raised when caller-supplied inputs fail validation (negative load scale,
/// out-of-range branch index, non-finite loads, ...). Distinct from
/// ModelError so callers can tell "your request is malformed" apart from
/// "the network itself is broken".
class ValidationError : public GridError {
 public:
  explicit ValidationError(const std::string& what) : GridError(what) {}
};

/// Raised when a bounded resource is exhausted and the work is shed rather
/// than queued — the solve service's admission-control error. Callers may
/// retry later; nothing was accepted.
class CapacityError : public GridError {
 public:
  explicit CapacityError(const std::string& what) : GridError(what) {}
};

/// Raised for transient device-layer faults (launch failures, latency
/// blowups surfacing as failures, allocation failures). Retryable by
/// contract: the same work may succeed on a later attempt or another shard,
/// so the serve layer answers it with backoff-retry instead of failing the
/// request. Every other exception escaping a solve is treated as permanent.
class TransientDeviceError : public GridError {
 public:
  explicit TransientDeviceError(const std::string& what) : GridError(what) {}
};

/// Raised when a request's deadline expired before the solver could start
/// on it — at admission (already expired on arrival) or at dispatch pickup
/// (expired while queued). The work was shed, never solved; distinct from
/// CapacityError so callers can tell "too late" apart from "too busy".
class DeadlineError : public GridError {
 public:
  explicit DeadlineError(const std::string& what) : GridError(what) {}
};

/// Raised when every rung of the engine escalation ladder was exhausted and
/// the scenario still did not converge — batch ADMM, the boosted solo
/// retry, and the warm-started MiniIPM fallback all failed or ran out of
/// budget. Terminal for the request (not retryable): the same inputs will
/// fail the same way. Carries the final engine's diagnostics in the message
/// so callers can tell a KKT factorization failure apart from an iteration
/// or wall-clock budget exhaustion.
class ConvergenceError : public GridError {
 public:
  explicit ConvergenceError(const std::string& what) : GridError(what) {}
};

/// Throws GridError with `msg` if `cond` is false. Used for precondition
/// checks that must stay active in release builds.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw GridError(msg);
}

/// Throws ValidationError with `msg` if `cond` is false. Used for checks on
/// caller-supplied inputs (scenario definitions, solve requests), so
/// clients can distinguish malformed requests from internal faults.
inline void require_valid(bool cond, const std::string& msg) {
  if (!cond) throw ValidationError(msg);
}

}  // namespace gridadmm
