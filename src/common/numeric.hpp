// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace gridadmm {

/// True when every entry is finite (no NaN/inf) — the input-validation
/// gate for caller-supplied load vectors.
inline bool all_finite(const std::vector<double>& values) {
  return std::all_of(values.begin(), values.end(), [](double v) { return std::isfinite(v); });
}

}  // namespace gridadmm
