#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/trace.hpp"

namespace gridadmm::log {

namespace {

Level level_from_env() {
  const char* env = std::getenv("GRIDADMM_LOG");
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "trace") == 0) return Level::kTrace;
  return Level::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{static_cast<int>(level_from_env())};
  return storage;
}

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kError: return "ERROR";
    case Level::kWarn: return "WARN ";
    case Level::kInfo: return "INFO ";
    case Level::kDebug: return "DEBUG";
    case Level::kTrace: return "TRACE";
  }
  return "?    ";
}

}  // namespace

Level level() { return static_cast<Level>(level_storage().load(std::memory_order_relaxed)); }

void set_level(Level lvl) { level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  // Monotonic seconds since the process trace epoch plus the small
  // per-thread label — both shared with obs::Tracer, so log lines correlate
  // with trace spans by timestamp and tid. obs::thread_label() never
  // allocates trace state, so logging stays allocation-free of the tracer.
  const double seconds = static_cast<double>(obs::now_ns()) * 1e-9;
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[gridadmm %s +%.6fs tid=%llu] %s\n", tag(lvl), seconds,
               static_cast<unsigned long long>(obs::thread_label()), message.c_str());
}

}  // namespace gridadmm::log
