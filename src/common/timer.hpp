// Wall-clock timing utilities.
#pragma once

#include <chrono>

namespace gridadmm {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gridadmm
