#include "opf/tracking.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "grid/solution.hpp"
#include "obs/trace.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/scenario_set.hpp"

namespace gridadmm::opf {

TrackingSimulator::TrackingSimulator(grid::Network net, admm::AdmmParams params,
                                     TrackingOptions options, device::Device* dev)
    : net_(std::move(net)), params_(params), options_(options),
      dev_(dev != nullptr ? dev : &device::default_device()) {
  grid::LoadProfileSpec spec;
  spec.periods = options_.periods;
  spec.max_drift = options_.max_drift;
  spec.seed = options_.profile_seed;
  profile_ = grid::make_load_profile(spec);
  base_pd_.reserve(net_.buses.size());
  base_qd_.reserve(net_.buses.size());
  for (const auto& bus : net_.buses) {
    base_pd_.push_back(bus.pd);
    base_qd_.push_back(bus.qd);
  }
}

std::vector<PeriodRecord> TrackingSimulator::run() {
  const int ng = net_.num_generators();
  std::vector<double> pmin0(ng), pmax0(ng), ramp(ng);
  for (int g = 0; g < ng; ++g) {
    pmin0[g] = net_.generators[g].pmin;
    pmax0[g] = net_.generators[g].pmax;
    ramp[g] = options_.ramp_fraction * net_.generators[g].pmax;
  }

  admm::AdmmSolver admm_solver(net_, params_, dev_);
  ipm::AcopfNlp nlp(net_);
  ipm::IpmSolver ipm_solver(nlp, options_.ipm);

  std::vector<double> pd(net_.buses.size()), qd(net_.buses.size());
  std::vector<double> pmin(ng), pmax(ng);
  std::vector<double> admm_prev_pg, ipm_prev_pg;

  if (options_.trace) obs::Tracer::instance().enable();
  std::vector<PeriodRecord> records;
  records.reserve(static_cast<std::size_t>(options_.periods));
  for (int t = 0; t < options_.periods; ++t) {
    const obs::TraceSpan period_span("tracking.period", "period",
                                     static_cast<std::uint64_t>(t + 1));
    PeriodRecord rec;
    rec.period = t + 1;
    rec.load_scale = profile_[t];
    for (std::size_t i = 0; i < pd.size(); ++i) {
      pd[i] = base_pd_[i] * profile_[t];
      qd[i] = base_qd_[i] * profile_[t];
    }

    // ---- ADMM ----
    {
      auto ramp_bounds = [&](const std::vector<double>& prev) {
        for (int g = 0; g < ng; ++g) {
          pmin[g] = t == 0 ? pmin0[g] : std::max(pmin0[g], prev[g] - ramp[g]);
          pmax[g] = t == 0 ? pmax0[g] : std::min(pmax0[g], prev[g] + ramp[g]);
        }
      };
      ramp_bounds(admm_prev_pg);
      admm_solver.set_loads(pd, qd);
      admm_solver.set_generator_pg_bounds(pmin, pmax);
      if (t > 0) admm_solver.prepare_warm_start();
      const auto stats = admm_solver.solve();
      const auto sol = admm_solver.solution();
      const auto quality = grid::evaluate_solution(admm_solver.network(), sol);
      rec.admm_seconds = stats.solve_seconds;
      rec.admm_iterations = stats.inner_iterations;
      rec.admm_objective = quality.objective;
      rec.admm_violation = quality.max_violation;
      rec.admm_converged = stats.converged;
      admm_prev_pg = sol.pg;
    }

    // ---- Interior-point baseline ----
    if (options_.run_ipm) {
      for (int g = 0; g < ng; ++g) {
        const double prev = t == 0 ? 0.0 : ipm_prev_pg[g];
        pmin[g] = t == 0 ? pmin0[g] : std::max(pmin0[g], prev - ramp[g]);
        pmax[g] = t == 0 ? pmax0[g] : std::min(pmax0[g], prev + ramp[g]);
      }
      nlp.set_loads(pd, qd);
      nlp.set_pg_bounds(pmin, pmax);
      ipm_solver.options().warm_start = t > 0;
      const auto result = ipm_solver.solve();
      const auto sol = nlp.unpack(ipm_solver.primal());
      const auto quality = grid::evaluate_solution(nlp.network(), sol);
      rec.ipm_seconds = result.solve_seconds;
      rec.ipm_iterations = result.iterations;
      rec.ipm_objective = quality.objective;
      rec.ipm_violation = quality.max_violation;
      rec.ipm_converged = result.status == ipm::IpmStatus::kOptimal;
      ipm_prev_pg = sol.pg;
      if (rec.ipm_converged) {
        rec.relative_gap = grid::relative_gap(rec.admm_objective, rec.ipm_objective);
      }
    }

    log::info("tracking period ", rec.period, ": scale=", rec.load_scale,
              " admm=", rec.admm_seconds, "s (", rec.admm_iterations, " it)",
              options_.run_ipm ? " ipm=" : "", options_.run_ipm ? std::to_string(rec.ipm_seconds) : "");
    records.push_back(rec);
  }
  return records;
}

namespace {

/// Shared implementation: builds the per-profile tracking set, solves it
/// with the caller's solver (single-device or sharded), and reshapes the
/// report into per-profile period records.
BatchTrackingResult run_batched_tracking_impl(const grid::Network& net,
                                              const admm::AdmmParams& params,
                                              const TrackingOptions& options, int num_profiles,
                                              device::Device* dev, device::DevicePool* pool) {
  require(num_profiles > 0, "run_batched_tracking: num_profiles must be positive");

  scenario::ScenarioSet set(net);
  std::vector<int> first_index(static_cast<std::size_t>(num_profiles));
  for (int p = 0; p < num_profiles; ++p) {
    grid::LoadProfileSpec spec;
    spec.periods = options.periods;
    spec.max_drift = options.max_drift;
    spec.seed = options.profile_seed + static_cast<std::uint64_t>(p);
    first_index[static_cast<std::size_t>(p)] =
        set.add_tracking_sequence(spec, options.ramp_fraction);
  }

  // One fused batch per period: wave t holds every profile's period t.
  // Ping-pong keeps only the current and previous period's state resident,
  // so device memory stays O(2 x profiles x case) for any horizon length.
  scenario::BatchSolveOptions solve_options;
  solve_options.ping_pong = options.ping_pong;
  solve_options.layout = options.layout;
  solve_options.branch_pack = options.branch_pack;
  solve_options.trace = options.trace;
  solve_options.convergence_sample_interval = options.convergence_sample_interval;
  if (options.trace) obs::Tracer::instance().enable();
  const obs::TraceSpan tracking_span("tracking.batched", "profiles",
                                     static_cast<std::uint64_t>(num_profiles), "periods",
                                     static_cast<std::uint64_t>(options.periods));
  BatchTrackingResult result;
  if (pool != nullptr) {
    scenario::BatchAdmmSolver solver(set, params, *pool);
    result.report = solver.solve(solve_options);
  } else {
    scenario::BatchAdmmSolver solver(set, params, dev);
    result.report = solver.solve(solve_options);
  }

  result.profiles.assign(static_cast<std::size_t>(num_profiles), {});
  for (int p = 0; p < num_profiles; ++p) {
    auto& periods = result.profiles[static_cast<std::size_t>(p)];
    periods.reserve(static_cast<std::size_t>(options.periods));
    for (int t = 0; t < options.periods; ++t) {
      const auto& rec = result.report.records[static_cast<std::size_t>(
          first_index[static_cast<std::size_t>(p)] + t)];
      PeriodRecord period;
      period.period = t + 1;
      period.load_scale = set[rec.index].load_scale;
      period.admm_seconds = rec.seconds;  // shared: the period's fused wave
      period.admm_iterations = rec.inner_iterations;
      period.admm_objective = rec.objective;
      period.admm_violation = rec.max_violation;
      period.admm_converged = rec.converged;
      periods.push_back(period);
    }
  }
  return result;
}

}  // namespace

BatchTrackingResult run_batched_tracking(const grid::Network& net,
                                         const admm::AdmmParams& params,
                                         const TrackingOptions& options, int num_profiles,
                                         device::Device* dev) {
  return run_batched_tracking_impl(net, params, options, num_profiles, dev, nullptr);
}

BatchTrackingResult run_batched_tracking(const grid::Network& net,
                                         const admm::AdmmParams& params,
                                         const TrackingOptions& options, int num_profiles,
                                         device::DevicePool& pool) {
  return run_batched_tracking_impl(net, params, options, num_profiles, nullptr, &pool);
}

}  // namespace gridadmm::opf
