#include "opf/service.hpp"

#include <utility>

#include "grid/cases.hpp"
#include "opf/opf.hpp"

namespace gridadmm::opf {

OpfService::OpfService(const std::string& case_name, serve::ServiceOptions options)
    : OpfService(
          [&case_name]() -> CaseBundle {
            CaseBundle bundle{load_case(case_name), {}};
            bundle.params = admm::params_for_case(case_name, bundle.net.num_buses());
            return bundle;
          }(),
          std::move(options)) {}

OpfService::OpfService(CaseBundle bundle, serve::ServiceOptions options)
    : service_(std::move(bundle.net), bundle.params, std::move(options)) {}

OpfService::OpfService(grid::Network net, admm::AdmmParams params, serve::ServiceOptions options)
    : service_(std::move(net), params, std::move(options)) {}

std::future<serve::SolveResult> OpfService::solve(std::vector<double> pd,
                                                  std::vector<double> qd) {
  serve::SolveRequest request;
  request.pd = std::move(pd);
  request.qd = std::move(qd);
  return service_.submit(std::move(request));
}

std::future<serve::SolveResult> OpfService::solve_scaled(double factor) {
  const auto& net = service_.base_network();
  std::vector<double> pd, qd;
  pd.reserve(net.buses.size());
  qd.reserve(net.buses.size());
  for (const auto& bus : net.buses) {
    pd.push_back(bus.pd * factor);
    qd.push_back(bus.qd * factor);
  }
  return solve(std::move(pd), std::move(qd));
}

std::future<serve::SolveResult> OpfService::solve_contingency(int outage_branch) {
  serve::SolveRequest request;
  request.outage_branch = outage_branch;
  return service_.submit(std::move(request));
}

std::future<serve::SolveResult> OpfService::submit(serve::SolveRequest request) {
  return service_.submit(std::move(request));
}

}  // namespace gridadmm::opf
