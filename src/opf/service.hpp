// OpfService: the one-liner entry to the serve layer.
//
// Wraps serve::SolveService for the common deployment shape — one case, the
// Table I parameter preset — so a caller goes from a case name to async
// warm-start-cached solves without touching ScenarioSet or BatchAdmmSolver:
//
//   opf::OpfService service("case9");
//   auto future = service.solve_scaled(1.03);
//   auto result = future.get();
#pragma once

#include <future>
#include <string>
#include <vector>

#include "admm/params.hpp"
#include "serve/service.hpp"

namespace gridadmm::opf {

class OpfService {
 public:
  /// Loads `case_name` (embedded, synthetic preset, or MATPOWER path) and
  /// starts the service with the case's parameter preset.
  explicit OpfService(const std::string& case_name, serve::ServiceOptions options = {});

  /// Uses an explicit network and params (network must be finalized).
  OpfService(grid::Network net, admm::AdmmParams params, serve::ServiceOptions options = {});

  /// Solves the case at explicit per-bus loads (per-unit).
  std::future<serve::SolveResult> solve(std::vector<double> pd, std::vector<double> qd);

  /// Solves the case with every load scaled by `factor`.
  std::future<serve::SolveResult> solve_scaled(double factor);

  /// Solves the case with branch `outage_branch` dropped (N-1 screen).
  std::future<serve::SolveResult> solve_contingency(int outage_branch);

  /// Full request form (heterogeneous controls, cache bypass, ...).
  std::future<serve::SolveResult> submit(serve::SolveRequest request);

  void drain() { service_.drain(); }
  [[nodiscard]] serve::ServiceStats stats() const { return service_.stats(); }
  [[nodiscard]] const grid::Network& network() const { return service_.base_network(); }
  [[nodiscard]] serve::SolveService& service() { return service_; }

 private:
  /// Loaded case bundled with its parameter preset, so the delegating
  /// case-name constructor can derive params from the loaded network.
  struct CaseBundle {
    grid::Network net;
    admm::AdmmParams params;
  };
  OpfService(CaseBundle bundle, serve::ServiceOptions options);

  serve::SolveService service_;
};

}  // namespace gridadmm::opf
