#include "opf/opf.hpp"

#include "common/timer.hpp"
#include "grid/cases.hpp"
#include "ipm/acopf_nlp.hpp"

namespace gridadmm::opf {

SolveReport solve_with_admm(const grid::Network& net, const admm::AdmmParams& params,
                            device::Device* dev) {
  admm::AdmmSolver solver(net, params, dev);
  const auto stats = solver.solve();
  SolveReport report;
  report.solver = "admm";
  report.solution = solver.solution();
  report.quality = grid::evaluate_solution(net, report.solution);
  report.converged = stats.converged;
  report.iterations = stats.inner_iterations;
  report.seconds = stats.solve_seconds;
  return report;
}

SolveReport solve_with_ipm(const grid::Network& net, const ipm::IpmOptions& options) {
  ipm::AcopfNlp nlp(net);
  ipm::IpmSolver solver(nlp, options);
  const auto result = solver.solve();
  SolveReport report;
  report.solver = "ipm";
  report.solution = nlp.unpack(solver.primal());
  report.quality = grid::evaluate_solution(net, report.solution);
  report.converged = result.status == ipm::IpmStatus::kOptimal;
  report.iterations = result.iterations;
  report.seconds = result.solve_seconds;
  return report;
}

grid::Network load_case(const std::string& name_or_path) { return grid::load_case(name_or_path); }

}  // namespace gridadmm::opf
