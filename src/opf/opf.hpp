// High-level public API: load a case, solve it with either solver, get a
// solution plus quality metrics. This is the facade the examples and
// benchmarks use; the underlying solvers remain fully accessible.
#pragma once

#include <string>

#include "admm/params.hpp"
#include "admm/solver.hpp"
#include "device/device.hpp"
#include "grid/network.hpp"
#include "grid/solution.hpp"
#include "ipm/ipm_solver.hpp"

namespace gridadmm::opf {

struct SolveReport {
  grid::OpfSolution solution;
  grid::SolutionQuality quality;
  bool converged = false;
  int iterations = 0;  ///< ADMM: cumulative inner iterations; IPM: Newton steps
  double seconds = 0.0;
  std::string solver;
};

/// Solves with the paper's GPU-style ADMM (cold start).
SolveReport solve_with_admm(const grid::Network& net, const admm::AdmmParams& params,
                            device::Device* dev = nullptr);

/// Solves with the interior-point baseline (cold start).
SolveReport solve_with_ipm(const grid::Network& net, const ipm::IpmOptions& options = {});

/// Loads a case by name (embedded, Table I synthetic preset, or MATPOWER
/// file path) — re-exported from grid for convenience.
grid::Network load_case(const std::string& name_or_path);

}  // namespace gridadmm::opf
