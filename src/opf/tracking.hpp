// Warm-start tracking driver (paper Section IV-C).
//
// Simulates a 30-period horizon (one minute per period) with an ISO-NE-like
// load profile drifting up to 5%. Period 1 is solved cold; every later
// period warm starts from the previous solution, with generator ramp limits
// |pg_{t+1} - pg_t| <= 2% Pmax applied to both solvers. Produces the series
// of Figures 1-3: per-period solve time, maximum constraint violation, and
// relative objective gap versus the interior-point baseline.
#pragma once

#include <optional>
#include <vector>

#include "admm/batch_state.hpp"
#include "admm/params.hpp"
#include "admm/solver.hpp"
#include "device/device.hpp"
#include "device/pool.hpp"
#include "grid/load_profile.hpp"
#include "grid/network.hpp"
#include "ipm/acopf_nlp.hpp"
#include "ipm/ipm_solver.hpp"
#include "scenario/report.hpp"

namespace gridadmm::opf {

struct TrackingOptions {
  int periods = 30;
  double max_drift = 0.05;      ///< peak load deviation over the horizon
  double ramp_fraction = 0.02;  ///< ramp limit as a fraction of Pmax
  std::uint64_t profile_seed = 7;
  bool run_ipm = true;          ///< also track with the baseline
  ipm::IpmOptions ipm;
  /// Batched mode only: run the horizon in two-wave ping-pong buffers, so
  /// live batch-state memory is O(2 x profiles x case) instead of
  /// O(periods x profiles x case). Results are identical either way.
  bool ping_pong = true;
  /// Batched mode only: batch memory layout of each wave's fused solve
  /// (see scenario::BatchSolveOptions::layout). Interleaved vectorizes the
  /// elementwise kernels across profiles; results are identical either way.
  admm::BatchLayout layout = admm::BatchLayout::kScenarioMajor;
  /// Batched mode only: branch-pack factor of the TRON branch phase (see
  /// scenario::BatchSolveOptions::branch_pack). Results are identical for
  /// every value.
  int branch_pack = 1;
  /// Enables the process-wide obs::Tracer for the run: sequential mode
  /// emits one tracking.period span per period, batched mode traces each
  /// period's fused wave (see scenario::BatchSolveOptions::trace).
  bool trace = false;
  /// Batched mode only: per-scenario convergence sampling interval of the
  /// fused solve (trajectories on BatchTrackingResult::report.convergence,
  /// indexed scenario-major: profile's first_index + period). 0 = off.
  int convergence_sample_interval = 0;
};

struct PeriodRecord {
  int period = 0;
  double load_scale = 1.0;
  // ADMM (warm started after period 1).
  double admm_seconds = 0.0;
  int admm_iterations = 0;
  double admm_objective = 0.0;
  double admm_violation = 0.0;
  bool admm_converged = false;
  // Interior-point baseline.
  double ipm_seconds = 0.0;
  int ipm_iterations = 0;
  double ipm_objective = 0.0;
  double ipm_violation = 0.0;
  bool ipm_converged = false;
  // |f_admm - f_ipm| / f_ipm when the baseline converged.
  double relative_gap = 0.0;
};

class TrackingSimulator {
 public:
  TrackingSimulator(grid::Network net, admm::AdmmParams params, TrackingOptions options,
                    device::Device* dev = nullptr);

  /// Runs the full horizon and returns one record per period.
  std::vector<PeriodRecord> run();

  [[nodiscard]] const std::vector<double>& load_profile() const { return profile_; }

 private:
  grid::Network net_;
  admm::AdmmParams params_;
  TrackingOptions options_;
  device::Device* dev_;
  std::vector<double> profile_;
  std::vector<double> base_pd_, base_qd_;
};

/// Result of tracking several load-profile variants concurrently.
struct BatchTrackingResult {
  /// ADMM period records per profile ([profile][period]; IPM fields zero —
  /// the baseline is not run in batched mode).
  std::vector<std::vector<PeriodRecord>> profiles;
  /// The underlying batch solve report (per-scenario stats, launch counts).
  scenario::ScenarioReport report;
};

/// Batched tracking mode: `num_profiles` jittered variants of the load
/// profile (seeds profile_seed, profile_seed+1, ...) are tracked
/// concurrently. Each period solves all profiles as ONE fused batch on the
/// device, warm started from the previous period with the same ramp limits
/// as the sequential simulator — instead of num_profiles sequential
/// tracking runs. This is the paper's Section IV-C experiment widened
/// across scenarios. By default (TrackingOptions::ping_pong) the periods
/// run through a two-buffer ping-pong pair, so device memory stays
/// constant in the horizon length.
BatchTrackingResult run_batched_tracking(const grid::Network& net,
                                         const admm::AdmmParams& params,
                                         const TrackingOptions& options, int num_profiles,
                                         device::Device* dev = nullptr);

/// Sharded batched tracking: the profiles are dealt round-robin across the
/// pool's devices and each period's fused wave runs concurrently per shard
/// (results identical to the single-device batched mode).
BatchTrackingResult run_batched_tracking(const grid::Network& net,
                                         const admm::AdmmParams& params,
                                         const TrackingOptions& options, int num_profiles,
                                         device::DevicePool& pool);

}  // namespace gridadmm::opf
