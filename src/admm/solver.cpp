#include "admm/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "admm/bus_kernel.hpp"
#include "admm/generator_kernel.hpp"
#include "admm/zy_kernel.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "grid/flows.hpp"

namespace gridadmm::admm {

AdmmSolver::AdmmSolver(grid::Network net, AdmmParams params, device::Device* dev)
    : net_(std::move(net)),
      params_(params),
      dev_(dev != nullptr ? dev : &device::default_device()),
      model_(build_component_model(net_, params_)),
      state_(AdmmState::zeros(model_)) {
  cold_start();
}

ColdStartTemplate make_cold_start(const grid::Network& net, const ComponentModel& model) {
  const int nb = net.num_buses();
  const int ng = net.num_generators();
  const int nl = net.num_branches();

  ColdStartTemplate t;
  t.u.assign(static_cast<std::size_t>(model.num_pairs), 0.0);
  t.pg.resize(static_cast<std::size_t>(ng));
  t.qg.resize(static_cast<std::size_t>(ng));
  for (int g = 0; g < ng; ++g) {
    const auto& gen = net.generators[g];
    t.pg[g] = 0.5 * (gen.pmin + gen.pmax);
    t.qg[g] = 0.5 * (gen.qmin + gen.qmax);
    t.u[gen_pair_base(g)] = t.pg[g];
    t.u[gen_pair_base(g) + 1] = t.qg[g];
  }
  t.w.resize(static_cast<std::size_t>(nb));
  t.theta.assign(static_cast<std::size_t>(nb), 0.0);
  for (int i = 0; i < nb; ++i) {
    const double vm = 0.5 * (net.buses[i].vmin + net.buses[i].vmax);
    t.w[i] = vm * vm;
  }
  t.branch_x.resize(static_cast<std::size_t>(4 * nl));
  t.branch_s.assign(static_cast<std::size_t>(2 * nl), 0.0);
  const auto rate2 = model.br_rate2.to_host();
  for (int l = 0; l < nl; ++l) {
    const auto& branch = net.branches[l];
    const double vi = std::sqrt(t.w[branch.from]);
    const double vj = std::sqrt(t.w[branch.to]);
    t.branch_x[4 * l + 0] = vi;
    t.branch_x[4 * l + 1] = vj;
    t.branch_x[4 * l + 2] = 0.0;
    t.branch_x[4 * l + 3] = 0.0;
    const auto f = grid::eval_flows(net.admittances[l], vi, vj, 0.0, 0.0);
    const int base = branch_pair_base(ng, l);
    t.u[base + kPairPij] = f[grid::kPij];
    t.u[base + kPairQij] = f[grid::kQij];
    t.u[base + kPairPji] = f[grid::kPji];
    t.u[base + kPairQji] = f[grid::kQji];
    t.u[base + kPairWi] = vi * vi;
    t.u[base + kPairThi] = 0.0;
    t.u[base + kPairWj] = vj * vj;
    t.u[base + kPairThj] = 0.0;
    if (rate2[l] > 0.0) {
      const double sij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij];
      const double sji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji];
      t.branch_s[2 * l] = std::clamp(-sij, -rate2[l], 0.0);
      t.branch_s[2 * l + 1] = std::clamp(-sji, -rate2[l], 0.0);
    }
  }
  return t;
}

void AdmmSolver::cold_start() {
  const ColdStartTemplate t = make_cold_start(net_, model_);
  const auto& u = t.u;
  const auto& w = t.w;
  const auto& theta = t.theta;
  const auto& pg = t.pg;
  const auto& qg = t.qg;
  const auto& bx = t.branch_x;
  const auto& bs = t.branch_s;

  state_.u.upload(u);
  state_.v.upload(u);  // bus copies start consistent with the x side
  state_.z.fill(0.0);
  state_.y.fill(0.0);
  state_.lz.fill(0.0);
  state_.bus_w.upload(w);
  state_.bus_theta.upload(theta);
  state_.gen_pg.upload(pg);
  state_.gen_qg.upload(qg);
  state_.branch_x.upload(bx);
  state_.branch_s.upload(bs);
  state_.branch_lambda.fill(0.0);
  state_.beta = params_.beta0;
}

WarmStartIterate AdmmSolver::export_iterate() const {
  WarmStartIterate it;
  it.u = state_.u.to_host();
  it.v = state_.v.to_host();
  it.z = state_.z.to_host();
  it.y = state_.y.to_host();
  it.lz = state_.lz.to_host();
  it.bus_w = state_.bus_w.to_host();
  it.bus_theta = state_.bus_theta.to_host();
  it.gen_pg = state_.gen_pg.to_host();
  it.gen_qg = state_.gen_qg.to_host();
  it.branch_x = state_.branch_x.to_host();
  it.branch_s = state_.branch_s.to_host();
  it.branch_lambda = state_.branch_lambda.to_host();
  it.rho = model_.rho.to_host();
  it.beta = state_.beta;
  it.rho_scale = rho_scale_;
  return it;
}

void AdmmSolver::import_iterate(const WarmStartIterate& it) {
  require_matches(it, model_, "AdmmSolver::import_iterate");
  state_.u.upload(it.u);
  state_.v.upload(it.v);
  state_.z.upload(it.z);
  state_.y.upload(it.y);
  state_.lz.upload(it.lz);
  state_.bus_w.upload(it.bus_w);
  state_.bus_theta.upload(it.bus_theta);
  state_.gen_pg.upload(it.gen_pg);
  state_.gen_qg.upload(it.gen_qg);
  state_.branch_x.upload(it.branch_x);
  state_.branch_s.upload(it.branch_s);
  state_.branch_lambda.upload(it.branch_lambda);
  model_.rho.upload(it.rho);
  state_.beta = std::max(it.beta, params_.beta0);
  rho_scale_ = it.rho_scale;
}

void AdmmSolver::prepare_warm_start() {
  // Keep the escalated outer penalty: the kept multiplier lz was accumulated
  // against it, and re-shrinking beta would let the z-update throw the
  // near-feasible iterate far from z = 0 (observed to roughly double the
  // warm-start iteration count). Only ensure beta is at least beta0.
  state_.beta = std::max(state_.beta, params_.beta0);
}

namespace {
double collect_max(std::span<const double> partial, int lanes) {
  double result = 0.0;
  for (int lane = 0; lane < lanes; ++lane) {
    result = std::max(result, partial[static_cast<std::size_t>(lane) * kReduceStride]);
  }
  return result;
}
}  // namespace

AdmmStats AdmmSolver::solve() {
  WallTimer timer;
  AdmmStats stats;
  const bool two_level = params_.two_level;
  double prev_znorm = std::numeric_limits<double>::infinity();

  const int lanes = dev_->workers();
  std::vector<double> partial_primal(static_cast<std::size_t>(lanes * kReduceStride), 0.0);
  std::vector<double> partial_dual(static_cast<std::size_t>(lanes * kReduceStride), 0.0);
  std::vector<double> partial_z(static_cast<std::size_t>(lanes * kReduceStride), 0.0);

  for (int outer = 0; outer < params_.max_outer_iterations; ++outer) {
    stats.outer_iterations = outer + 1;
    // Inexact inner solves: proportional to the outer infeasibility, never
    // looser than the initial tolerance, never tighter than the final one.
    const double scheduled = std::isfinite(prev_znorm)
                                 ? params_.inner_tolerance_factor * prev_znorm
                                 : params_.inner_tolerance_initial;
    // A final tolerance looser than the initial one (possible via caller
    // overrides) must not invert the clamp bounds (UB when lo > hi).
    const double eps_primal =
        std::clamp(scheduled, params_.primal_tolerance,
                   std::max(params_.inner_tolerance_initial, params_.primal_tolerance));
    const double eps_dual =
        std::clamp(scheduled, params_.dual_tolerance,
                   std::max(params_.inner_tolerance_initial, params_.dual_tolerance));
    bool inner_converged = false;
    for (int inner = 0; inner < params_.max_inner_iterations; ++inner) {
      ++stats.inner_iterations;
      update_generators(*dev_, model_, state_);
      update_branches(*dev_, model_, params_, state_, &stats.branch);
      update_buses(*dev_, model_, state_, partial_dual);
      update_zy_fused(*dev_, model_, state_, two_level, partial_primal, partial_z);

      stats.primal_residual = collect_max(partial_primal, lanes);
      stats.dual_residual = collect_max(partial_dual, lanes);
      if (record_history_) {
        stats.primal_history.push_back(stats.primal_residual);
        stats.dual_history.push_back(stats.dual_residual);
      }
      if (stats.primal_residual <= eps_primal && stats.dual_residual <= eps_dual) {
        inner_converged = true;
        break;
      }

      // Adaptive penalty (residual balancing, extension per Section V).
      // Restricted to the first outer iteration: rescaling rho later
      // invalidates the equilibrium the accumulated outer multiplier lz
      // encodes and measurably degrades the final consensus accuracy.
      if (params_.adaptive_rho && outer == 0 && inner > 0 &&
          inner % params_.adaptive_rho_interval == 0) {
        double factor = 0.0;
        if (stats.primal_residual > params_.adaptive_rho_mu * stats.dual_residual) {
          factor = params_.adaptive_rho_tau;
        } else if (stats.dual_residual > params_.adaptive_rho_mu * stats.primal_residual) {
          factor = 1.0 / params_.adaptive_rho_tau;
        }
        if (factor != 0.0) {
          const double proposed = rho_scale_ * factor;
          if (proposed <= params_.adaptive_rho_max_scale &&
              proposed >= 1.0 / params_.adaptive_rho_max_scale) {
            rho_scale_ = proposed;
            auto rho = model_.rho.span();
            dev_->launch(model_.num_pairs, [=](int k) { rho[k] *= factor; });
            ++stats.rho_rescales;
          }
        }
      }
    }

    if (!two_level) {
      stats.converged = inner_converged;
      break;
    }

    stats.z_norm = collect_max(partial_z, lanes);
    if (record_history_) stats.z_history.push_back(stats.z_norm);
    update_outer_multiplier(*dev_, model_, state_, params_.lambda_bound);
    log::debug("ADMM outer ", outer + 1, ": |z|=", stats.z_norm,
               " primal=", stats.primal_residual, " dual=", stats.dual_residual,
               " beta=", state_.beta, " inner_total=", stats.inner_iterations);
    // Converged only when the *final* tolerances hold (the scheduled inner
    // tolerance may have been looser during early outer iterations).
    if (stats.z_norm <= params_.outer_tolerance &&
        stats.primal_residual <= params_.primal_tolerance &&
        stats.dual_residual <= params_.dual_tolerance) {
      stats.converged = true;
      break;
    }
    if (stats.z_norm > params_.z_shrink * prev_znorm) {
      state_.beta = std::min(state_.beta * params_.beta_factor, params_.beta_max);
    }
    prev_znorm = stats.z_norm;
  }

  stats.solve_seconds = timer.seconds();
  return stats;
}

grid::OpfSolution AdmmSolver::solution() const {
  grid::OpfSolution sol = grid::OpfSolution::zeros(net_);
  const auto w = state_.bus_w.to_host();
  const auto theta = state_.bus_theta.to_host();
  const auto pg = state_.gen_pg.to_host();
  const auto qg = state_.gen_qg.to_host();
  const double ref_angle = theta[net_.ref_bus];
  for (int i = 0; i < net_.num_buses(); ++i) {
    sol.vm[i] = std::sqrt(std::max(w[i], 1e-12));
    sol.va[i] = theta[i] - ref_angle;
  }
  sol.pg = pg;
  sol.qg = qg;
  return sol;
}

void AdmmSolver::set_loads(std::span<const double> pd, std::span<const double> qd) {
  require(static_cast<int>(pd.size()) == net_.num_buses() &&
              static_cast<int>(qd.size()) == net_.num_buses(),
          "AdmmSolver::set_loads: size mismatch");
  model_.bus_pd.upload(pd);
  model_.bus_qd.upload(qd);
  for (int i = 0; i < net_.num_buses(); ++i) {
    net_.buses[i].pd = pd[i];
    net_.buses[i].qd = qd[i];
  }
}

void AdmmSolver::set_generator_pg_bounds(std::span<const double> pmin,
                                         std::span<const double> pmax) {
  require(static_cast<int>(pmin.size()) == net_.num_generators() &&
              static_cast<int>(pmax.size()) == net_.num_generators(),
          "AdmmSolver::set_generator_pg_bounds: size mismatch");
  model_.gen_pmin.upload(pmin);
  model_.gen_pmax.upload(pmax);
}

}  // namespace gridadmm::admm
