// Per-component ADMM update math, shared between the single-scenario
// kernels (generator_kernel.cpp, bus_kernel.cpp, zy_kernel.cpp) and the
// fused multi-scenario batch kernels (src/scenario/batch_kernels.cpp).
//
// The updates are expressed over two raw-pointer views:
//   - ModelView: problem data shared by every scenario (topology, costs,
//     admittances, adjacency);
//   - ScenarioView: one scenario's iterate plus the data that may differ
//     per scenario (penalties rho, loads, pg bounds, branch-outage mask).
// A single-scenario solve is simply a ScenarioView over AdmmState with the
// model's own rho/load/bound buffers; a batched solve points each view at a
// scenario-strided slice of a BatchAdmmState. Keeping one copy of the math
// guarantees the fused batch solve is iterate-for-iterate identical to S
// independent solver runs.
#pragma once

#include <algorithm>
#include <cmath>

#include "admm/component_model.hpp"
#include "admm/state.hpp"

namespace gridadmm::admm {

/// Raw-pointer view of the scenario-invariant model data.
struct ModelView {
  int num_buses = 0;
  int num_gens = 0;
  int num_branches = 0;
  int num_pairs = 0;
  const double* qmin = nullptr;
  const double* qmax = nullptr;
  const double* c2 = nullptr;
  const double* c1 = nullptr;
  const double* gs = nullptr;
  const double* bs = nullptr;
  const int* gen_ptr = nullptr;
  const int* gen_list = nullptr;
  const int* adj_ptr = nullptr;
  const int* adj_kp = nullptr;
  const double* adm = nullptr;
  const double* vbound = nullptr;
  const double* rate2 = nullptr;
};

inline ModelView make_model_view(const ComponentModel& m) {
  ModelView v;
  v.num_buses = m.num_buses;
  v.num_gens = m.num_gens;
  v.num_branches = m.num_branches;
  v.num_pairs = m.num_pairs;
  v.qmin = m.gen_qmin.data();
  v.qmax = m.gen_qmax.data();
  v.c2 = m.gen_c2.data();
  v.c1 = m.gen_c1.data();
  v.gs = m.bus_gs.data();
  v.bs = m.bus_bs.data();
  v.gen_ptr = m.bus_gen_ptr.data();
  v.gen_list = m.bus_gen_list.data();
  v.adj_ptr = m.bus_adj_ptr.data();
  v.adj_kp = m.bus_adj_kp.data();
  v.adm = m.br_adm.data();
  v.vbound = m.br_vbound.data();
  v.rate2 = m.br_rate2.data();
  return v;
}

/// Raw-pointer view of one scenario's iterate and per-scenario data.
///
/// `stride` is the distance (in elements) between consecutive logical
/// elements of every per-scenario array: 1 for a contiguous slice (the
/// single-scenario state and the scenario-major batch layout), kTileWidth
/// for the interleaved batch layout, where lane l of a tile stores element
/// k at [k * kTileWidth] past a lane-base pointer. All the update math
/// below indexes through the stride, so one copy of the math serves the
/// single-scenario kernels, the scenario-major batch, and the interleaved
/// batch.
struct ScenarioView {
  // Mutable iterate (device-resident).
  double* u = nullptr;
  double* v = nullptr;
  double* z = nullptr;
  double* y = nullptr;
  double* lz = nullptr;
  double* bus_w = nullptr;
  double* bus_theta = nullptr;
  double* gen_pg = nullptr;
  double* gen_qg = nullptr;
  double* branch_x = nullptr;
  double* branch_s = nullptr;
  double* branch_lambda = nullptr;
  // Per-scenario problem data.
  const double* rho = nullptr;
  const double* pd = nullptr;
  const double* qd = nullptr;
  const double* pmin = nullptr;
  const double* pmax = nullptr;
  /// In-service flags, one per branch; nullptr = every branch in service.
  const unsigned char* branch_active = nullptr;
  double beta = 0.0;  ///< outer penalty on z = 0
  int stride = 1;     ///< element spacing of every per-scenario array
};

/// The view one scenario lane to the right within an interleaved tile:
/// every per-scenario pointer advances by one element (the lanes of a tile
/// are adjacent in memory), the stride is unchanged. Callers must overwrite
/// `beta` from the target lane's own view — it is a host scalar, not part
/// of the strided arrays. Written as pure pointer arithmetic so a lane loop
/// that inlines it has every address affine in the lane index (what lets
/// the compiler vectorize the elementwise updates across scenario lanes).
inline ScenarioView lane_shifted(ScenarioView v, int lane) {
  v.u += lane;
  v.v += lane;
  v.z += lane;
  v.y += lane;
  v.lz += lane;
  v.bus_w += lane;
  v.bus_theta += lane;
  v.gen_pg += lane;
  v.gen_qg += lane;
  v.branch_x += lane;
  v.branch_s += lane;
  v.branch_lambda += lane;
  v.rho += lane;
  v.pd += lane;
  v.qd += lane;
  v.pmin += lane;
  v.pmax += lane;
  if (v.branch_active != nullptr) v.branch_active += lane;
  return v;
}

/// Binds the single-scenario state as a view (the model's own rho/load/bound
/// buffers double as the per-scenario data).
inline ScenarioView make_scenario_view(const ComponentModel& m, AdmmState& s) {
  ScenarioView v;
  v.u = s.u.data();
  v.v = s.v.data();
  v.z = s.z.data();
  v.y = s.y.data();
  v.lz = s.lz.data();
  v.bus_w = s.bus_w.data();
  v.bus_theta = s.bus_theta.data();
  v.gen_pg = s.gen_pg.data();
  v.gen_qg = s.gen_qg.data();
  v.branch_x = s.branch_x.data();
  v.branch_s = s.branch_s.data();
  v.branch_lambda = s.branch_lambda.data();
  v.rho = m.rho.data();
  v.pd = m.bus_pd.data();
  v.qd = m.bus_qd.data();
  v.pmin = m.gen_pmin.data();
  v.pmax = m.gen_pmax.data();
  v.branch_active = nullptr;
  v.beta = s.beta;
  return v;
}

/// True when consensus pair k belongs to an in-service component. Generator
/// pairs are always active; branch pairs follow the outage mask.
inline bool pair_active(const ModelView& m, const ScenarioView& s, int k) {
  if (s.branch_active == nullptr || k < 2 * m.num_gens) return true;
  return s.branch_active[static_cast<std::size_t>((k - 2 * m.num_gens) / 8) *
                         static_cast<std::size_t>(s.stride)] != 0;
}

/// Closed-form generator dispatch update (one device block per generator).
inline void generator_update_one(const ModelView& m, const ScenarioView& s, int g) {
  const auto st = static_cast<std::size_t>(s.stride);
  const std::size_t kp = static_cast<std::size_t>(gen_pair_base(g)) * st;
  const std::size_t kq = kp + st;
  const std::size_t gi = static_cast<std::size_t>(g) * st;
  // Stationarity: (2 c2 + rho) pg = rho (v - z) - y - c1, then clamp.
  const double p_star =
      (s.rho[kp] * (s.v[kp] - s.z[kp]) - s.y[kp] - m.c1[g]) / (2.0 * m.c2[g] + s.rho[kp]);
  const double q_star = (s.rho[kq] * (s.v[kq] - s.z[kq]) - s.y[kq]) / s.rho[kq];
  const double p = std::clamp(p_star, s.pmin[gi], s.pmax[gi]);
  const double q = std::clamp(q_star, m.qmin[g], m.qmax[g]);
  s.gen_pg[gi] = p;
  s.gen_qg[gi] = q;
  s.u[kp] = p;
  s.u[kq] = q;
}

/// Closed-form bus update (paper eq. (7)), one device block per bus.
/// `dual_slot`, when non-null, accumulates max_k |v_k - v_k^prev| for the
/// caller's per-lane partial reduction.
inline void bus_update_one(const ModelView& m, const ScenarioView& s, int i, double* dual_slot) {
  const auto st = static_cast<std::size_t>(s.stride);
  // The proximal targets are m_k = u_k + z_k + y_k / rho_k: each duplicate
  // v_k minimizes rho_k/2 (v_k - m_k)^2 subject to the two balance rows.
  auto rho_at = [&](int k) { return s.rho[static_cast<std::size_t>(k) * st]; };
  auto target = [&](int k) {
    const std::size_t ks = static_cast<std::size_t>(k) * st;
    return s.u[ks] + s.z[ks] + s.y[ks] / s.rho[ks];
  };
  auto assign_v = [&](int k, double value) {
    const std::size_t ks = static_cast<std::size_t>(k) * st;
    if (dual_slot != nullptr) {
      // Penalty-normalized dual residual |v - v_prev| (Boyd's scaled
      // form): comparable across rho presets and directly meaningful in
      // per-unit terms.
      const double delta = std::abs(value - s.v[ks]);
      if (delta > *dual_slot) *dual_slot = delta;
    }
    s.v[ks] = value;
  };

  double q_w = 0.0, c_w = 0.0;    // accumulated weight / linear term of w_i
  double q_th = 0.0, c_th = 0.0;  // same for theta_i
  double s_pp = 0.0, s_qq = 0.0;  // A Q^-1 A^T entries
  double aqc_p = 0.0, aqc_q = 0.0;  // A Q^-1 c entries

  for (int e = m.gen_ptr[i]; e < m.gen_ptr[i + 1]; ++e) {
    const int kp = gen_pair_base(m.gen_list[e]);
    const int kq = kp + 1;
    s_pp += 1.0 / rho_at(kp);
    aqc_p += target(kp);
    s_qq += 1.0 / rho_at(kq);
    aqc_q += target(kq);
  }
  for (int e = m.adj_ptr[i]; e < m.adj_ptr[i + 1]; ++e) {
    const int kp = m.adj_kp[e];
    if (!pair_active(m, s, kp)) continue;  // branch out of service
    const int kq = kp + 1;
    const int kw = kp + 4;
    const int kth = kp + 5;
    s_pp += 1.0 / rho_at(kp);
    aqc_p -= target(kp);  // flow copies enter the P row with coefficient -1
    s_qq += 1.0 / rho_at(kq);
    aqc_q -= target(kq);
    q_w += rho_at(kw);
    c_w += rho_at(kw) * target(kw);
    q_th += rho_at(kth);
    c_th += rho_at(kth) * target(kth);
  }

  // w_i carries the shunt terms: coefficient -gs in the P row, +bs in Q.
  double s_pq = 0.0;
  if (q_w > 0.0) {
    s_pp += m.gs[i] * m.gs[i] / q_w;
    s_qq += m.bs[i] * m.bs[i] / q_w;
    s_pq = -m.gs[i] * m.bs[i] / q_w;
    aqc_p += -m.gs[i] * (c_w / q_w);
    aqc_q += m.bs[i] * (c_w / q_w);
  }

  const double rhs_p = aqc_p - s.pd[static_cast<std::size_t>(i) * st];
  const double rhs_q = aqc_q - s.qd[static_cast<std::size_t>(i) * st];
  const double det = s_pp * s_qq - s_pq * s_pq;
  const double mu_p = (s_qq * rhs_p - s_pq * rhs_q) / det;
  const double mu_q = (s_pp * rhs_q - s_pq * rhs_p) / det;

  const double w = q_w > 0.0 ? (c_w + m.gs[i] * mu_p - m.bs[i] * mu_q) / q_w : 1.0;
  const double theta = q_th > 0.0 ? c_th / q_th : 0.0;
  s.bus_w[static_cast<std::size_t>(i) * st] = w;
  s.bus_theta[static_cast<std::size_t>(i) * st] = theta;

  for (int e = m.gen_ptr[i]; e < m.gen_ptr[i + 1]; ++e) {
    const int kp = gen_pair_base(m.gen_list[e]);
    const int kq = kp + 1;
    assign_v(kp, target(kp) - mu_p / rho_at(kp));
    assign_v(kq, target(kq) - mu_q / rho_at(kq));
  }
  for (int e = m.adj_ptr[i]; e < m.adj_ptr[i + 1]; ++e) {
    const int kp = m.adj_kp[e];
    if (!pair_active(m, s, kp)) continue;
    assign_v(kp, target(kp) + mu_p / rho_at(kp));
    assign_v(kp + 1, target(kp + 1) + mu_q / rho_at(kp + 1));
    assign_v(kp + 4, w);
    assign_v(kp + 5, theta);
  }
}

/// Fused z+y update for one pair (paper eqs. (6) and (8)). When `two_level`
/// is false, z stays frozen (one-level ADMM). `slot_primal` / `slot_z`
/// accumulate ||u - v + z||_inf and ||z||_inf partial maxima.
inline void zy_update_one(const ModelView& m, const ScenarioView& s, int k, bool two_level,
                          double* slot_primal, double* slot_z) {
  if (!pair_active(m, s, k)) return;  // outaged pairs stay at zero
  const std::size_t ks = static_cast<std::size_t>(k) * static_cast<std::size_t>(s.stride);
  const double r = s.u[ks] - s.v[ks];
  if (two_level) {
    s.z[ks] = -(s.lz[ks] + s.y[ks] + s.rho[ks] * r) / (s.beta + s.rho[ks]);
  }
  const double rz = r + s.z[ks];
  s.y[ks] += s.rho[ks] * rz;
  if (std::abs(rz) > *slot_primal) *slot_primal = std::abs(rz);
  if (std::abs(s.z[ks]) > *slot_z) *slot_z = std::abs(s.z[ks]);
}

/// Outer multiplier update lambda <- clamp(lambda + beta z) (projection (8)).
inline void outer_multiplier_update_one(const ModelView& m, const ScenarioView& s, int k,
                                        double lambda_bound) {
  if (!pair_active(m, s, k)) return;
  const std::size_t ks = static_cast<std::size_t>(k) * static_cast<std::size_t>(s.stride);
  s.lz[ks] = std::clamp(s.lz[ks] + s.beta * s.z[ks], -lambda_bound, lambda_bound);
}

}  // namespace gridadmm::admm
