// Batched ADMM state for fused multi-scenario solves, in one of two memory
// layouts selected per solve (scenario::BatchSolveOptions::layout):
//
// - kScenarioMajor: scenario s owns the contiguous slice
//   [s*stride, (s+1)*stride) of each array. Fused kernels launched over
//   S x components blocks touch one allocation per quantity, but
//   consecutive scenarios' values of the *same* component sit a whole
//   slice apart, so the elementwise updates cannot vectorize across
//   scenarios.
// - kInterleaved: component-major with the scenario index innermost — the
//   batching layout of the SIMD-abstraction line of work (Shin & Anitescu,
//   arXiv:2307.16830; ExaModelsPower.jl, arXiv:2510.12897). Scenario slots
//   are grouped into tiles of kTileWidth lanes; within a tile, component
//   k's values for all lanes are contiguous: element k of slot s lives at
//   (s/W * extent + k) * W + s%W. Tile rows are 64-byte aligned
//   (device::kDeviceAlignment, W doubles = one cache line), so a kernel
//   processing component k for a whole tile runs a unit-stride,
//   compiler-vectorizable lane loop. Capacity is padded to whole tiles.
//
// Both layouts expose the same ScenarioView interface (per-slot pointers
// plus an element stride of 1 or W), so every kernel built on the shared
// update math in admm/kernels_core.hpp works against either.
//
// Per-scenario *problem data* that the scenario engine may vary (penalties
// rho, loads, generator pg bounds, branch outage masks) lives here too; the
// scenario-invariant remainder stays in the shared ComponentModel.
//
// Two-buffer ping-pong mode: for time-coupled sets where only consecutive
// waves interact, the batch engine allocates a pair of BatchAdmmStates per
// shard sized to the largest wave instead of one state sized to every
// scenario. Wave d executes in buffer d % 2 while buffer (d - 1) % 2 holds
// the previous wave's iterates for the on-device chain copy
// (scenario::batch_chain_state with distinct src/dst states); wave d + 1
// then reuses the parent buffer. Live batch-state memory is constant in
// the horizon length (see scenario::BatchPlan).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "admm/component_model.hpp"
#include "admm/kernels_core.hpp"
#include "device/buffer.hpp"

namespace gridadmm::admm {

/// Memory layout of a BatchAdmmState (see file comment).
enum class BatchLayout {
  kScenarioMajor,  ///< scenario-contiguous slices (stride 1)
  kInterleaved,    ///< component-major tiles, scenario lane innermost
};

/// Scenario lanes per interleaved tile: 8 doubles = one 64-byte cache line
/// = one AVX-512 register (two AVX2 registers), so a tile row is exactly
/// the hardware vector granularity the lane loops target.
inline constexpr int kTileWidth = 8;

inline const char* layout_name(BatchLayout layout) {
  return layout == BatchLayout::kInterleaved ? "interleaved" : "scenario_major";
}

/// Inverse of layout_name for CLI parsing; rejects unknown names so a
/// typo'd --layouts value cannot silently benchmark the wrong layout.
inline BatchLayout layout_from_name(const std::string& name) {
  if (name == "interleaved") return BatchLayout::kInterleaved;
  require(name == "scenario_major", "unknown batch layout: " + name);
  return BatchLayout::kScenarioMajor;
}

/// Address arithmetic for one batch layout: maps (slot, element, extent) to
/// a flat index into any per-scenario batch array. Shared by the state
/// views, the chain/ramp/rescale kernels, and the solver's staging and
/// slice-extraction paths, so no two call sites can disagree about where a
/// scenario lives.
struct BatchIndexer {
  BatchLayout layout = BatchLayout::kScenarioMajor;

  [[nodiscard]] bool interleaved() const { return layout == BatchLayout::kInterleaved; }

  /// Element spacing within one scenario's logical slice.
  [[nodiscard]] std::size_t stride() const {
    return interleaved() ? static_cast<std::size_t>(kTileWidth) : 1;
  }

  /// Allocated slot count for a logical capacity of `num_scenarios`
  /// (interleaved pads to whole tiles).
  [[nodiscard]] int padded_slots(int num_scenarios) const {
    if (!interleaved()) return num_scenarios;
    return (num_scenarios + kTileWidth - 1) / kTileWidth * kTileWidth;
  }

  /// Flat index of element 0 of slot `s` in an array of per-scenario
  /// extent `extent`.
  [[nodiscard]] std::size_t offset(int s, std::size_t extent) const {
    if (!interleaved()) return static_cast<std::size_t>(s) * extent;
    const auto tile = static_cast<std::size_t>(s / kTileWidth);
    const auto lane = static_cast<std::size_t>(s % kTileWidth);
    return tile * extent * static_cast<std::size_t>(kTileWidth) + lane;
  }

  /// Flat index of element `k` of slot `s`.
  [[nodiscard]] std::size_t index(int s, std::size_t k, std::size_t extent) const {
    return offset(s, extent) + k * stride();
  }
};

struct BatchAdmmState {
  int num_scenarios = 0;  ///< logical capacity (slots handed out as views)
  int padded_scenarios = 0;  ///< allocated slots (whole tiles when interleaved)
  BatchLayout layout = BatchLayout::kScenarioMajor;

  // ---- Iterate, layout-mapped (see BatchIndexer) ----
  device::DeviceBuffer<double> u, v, z, y, lz;     ///< P * num_pairs
  device::DeviceBuffer<double> bus_w, bus_theta;   ///< P * num_buses
  device::DeviceBuffer<double> gen_pg, gen_qg;     ///< P * num_gens
  device::DeviceBuffer<double> branch_x;           ///< P * 4 * num_branches
  device::DeviceBuffer<double> branch_s;           ///< P * 2 * num_branches
  device::DeviceBuffer<double> branch_lambda;      ///< P * 2 * num_branches

  // ---- Per-scenario problem data ----
  device::DeviceBuffer<double> rho;                ///< P * num_pairs
  device::DeviceBuffer<double> pd, qd;             ///< P * num_buses
  device::DeviceBuffer<double> pmin, pmax;         ///< P * num_gens
  device::DeviceBuffer<unsigned char> branch_active;  ///< P * num_branches

  /// Outer penalty, one per scenario (host scalar, like AdmmState::beta).
  std::vector<double> beta;

  [[nodiscard]] BatchIndexer indexer() const { return BatchIndexer{layout}; }

  /// Allocates all buffers for S scenarios of `model` (zero-filled,
  /// branch_active = 1, beta = 0). Interleaved capacity is padded to whole
  /// tiles; padded lanes are never handed out as views.
  static BatchAdmmState zeros(const ComponentModel& model, int num_scenarios,
                              BatchLayout layout = BatchLayout::kScenarioMajor);

  /// Raw-pointer view of scenario s's slices (valid until any resize).
  [[nodiscard]] ScenarioView view(const ComponentModel& model, int s);
};

inline BatchAdmmState BatchAdmmState::zeros(const ComponentModel& model, int num_scenarios,
                                            BatchLayout layout) {
  BatchAdmmState b;
  b.num_scenarios = num_scenarios;
  b.layout = layout;
  b.padded_scenarios = BatchIndexer{layout}.padded_slots(num_scenarios);
  const auto P = static_cast<std::size_t>(b.padded_scenarios);
  const auto np = P * static_cast<std::size_t>(model.num_pairs);
  const auto nb = P * static_cast<std::size_t>(model.num_buses);
  const auto ng = P * static_cast<std::size_t>(model.num_gens);
  const auto nl = P * static_cast<std::size_t>(model.num_branches);
  b.u.resize(np);
  b.v.resize(np);
  b.z.resize(np);
  b.y.resize(np);
  b.lz.resize(np);
  b.bus_w.resize(nb);
  b.bus_theta.resize(nb);
  b.gen_pg.resize(ng);
  b.gen_qg.resize(ng);
  b.branch_x.resize(4 * nl);
  b.branch_s.resize(2 * nl);
  b.branch_lambda.resize(2 * nl);
  b.rho.resize(np);
  b.pd.resize(nb);
  b.qd.resize(nb);
  b.pmin.resize(ng);
  b.pmax.resize(ng);
  b.branch_active.resize(nl, 1);
  b.beta.assign(static_cast<std::size_t>(num_scenarios), 0.0);
  return b;
}

inline ScenarioView BatchAdmmState::view(const ComponentModel& model, int s) {
  const BatchIndexer idx = indexer();
  const auto np = idx.offset(s, static_cast<std::size_t>(model.num_pairs));
  const auto nb = idx.offset(s, static_cast<std::size_t>(model.num_buses));
  const auto ng = idx.offset(s, static_cast<std::size_t>(model.num_gens));
  const auto nl = idx.offset(s, static_cast<std::size_t>(model.num_branches));
  const auto nl4 = idx.offset(s, static_cast<std::size_t>(4 * model.num_branches));
  const auto nl2 = idx.offset(s, static_cast<std::size_t>(2 * model.num_branches));
  ScenarioView view;
  view.u = u.data() + np;
  view.v = v.data() + np;
  view.z = z.data() + np;
  view.y = y.data() + np;
  view.lz = lz.data() + np;
  view.bus_w = bus_w.data() + nb;
  view.bus_theta = bus_theta.data() + nb;
  view.gen_pg = gen_pg.data() + ng;
  view.gen_qg = gen_qg.data() + ng;
  view.branch_x = branch_x.data() + nl4;
  view.branch_s = branch_s.data() + nl2;
  view.branch_lambda = branch_lambda.data() + nl2;
  view.rho = rho.data() + np;
  view.pd = pd.data() + nb;
  view.qd = qd.data() + nb;
  view.pmin = pmin.data() + ng;
  view.pmax = pmax.data() + ng;
  view.branch_active = branch_active.data() + nl;
  view.beta = beta[static_cast<std::size_t>(s)];
  view.stride = static_cast<int>(idx.stride());
  return view;
}

}  // namespace gridadmm::admm
