// Scenario-strided ADMM state for batched multi-scenario solves.
//
// S scenarios' iterates are laid out contiguously in single device buffers
// (scenario s owns the slice [s*stride, (s+1)*stride) of each array), so
// fused kernels launched over S x components blocks touch one allocation
// per quantity instead of S scattered AdmmStates — the batching layout of
// the SIMD-abstraction line of work (Shin & Anitescu, arXiv:2307.16830)
// applied to the paper's component decomposition.
//
// Per-scenario *problem data* that the scenario engine may vary (penalties
// rho, loads, generator pg bounds, branch outage masks) lives here too; the
// scenario-invariant remainder stays in the shared ComponentModel.
//
// Two-buffer ping-pong mode: for time-coupled sets where only consecutive
// waves interact, the batch engine allocates a pair of BatchAdmmStates per
// shard sized to the largest wave instead of one state sized to every
// scenario. Wave d executes in buffer d % 2 while buffer (d - 1) % 2 holds
// the previous wave's iterates for the on-device chain copy
// (scenario::batch_chain_state with distinct src/dst states); wave d + 1
// then reuses the parent buffer. Live batch-state memory is constant in
// the horizon length (see scenario::BatchPlan).
#pragma once

#include <vector>

#include "admm/component_model.hpp"
#include "admm/kernels_core.hpp"
#include "device/buffer.hpp"

namespace gridadmm::admm {

struct BatchAdmmState {
  int num_scenarios = 0;

  // ---- Iterate, scenario-strided ----
  device::DeviceBuffer<double> u, v, z, y, lz;     ///< S * num_pairs
  device::DeviceBuffer<double> bus_w, bus_theta;   ///< S * num_buses
  device::DeviceBuffer<double> gen_pg, gen_qg;     ///< S * num_gens
  device::DeviceBuffer<double> branch_x;           ///< S * 4 * num_branches
  device::DeviceBuffer<double> branch_s;           ///< S * 2 * num_branches
  device::DeviceBuffer<double> branch_lambda;      ///< S * 2 * num_branches

  // ---- Per-scenario problem data ----
  device::DeviceBuffer<double> rho;                ///< S * num_pairs
  device::DeviceBuffer<double> pd, qd;             ///< S * num_buses
  device::DeviceBuffer<double> pmin, pmax;         ///< S * num_gens
  device::DeviceBuffer<unsigned char> branch_active;  ///< S * num_branches

  /// Outer penalty, one per scenario (host scalar, like AdmmState::beta).
  std::vector<double> beta;

  /// Allocates all buffers for S scenarios of `model` (zero-filled,
  /// branch_active = 1, beta = 0).
  static BatchAdmmState zeros(const ComponentModel& model, int num_scenarios);

  /// Raw-pointer view of scenario s's slices (valid until any resize).
  [[nodiscard]] ScenarioView view(const ComponentModel& model, int s);
};

inline BatchAdmmState BatchAdmmState::zeros(const ComponentModel& model, int num_scenarios) {
  BatchAdmmState b;
  b.num_scenarios = num_scenarios;
  const auto S = static_cast<std::size_t>(num_scenarios);
  const auto np = S * static_cast<std::size_t>(model.num_pairs);
  const auto nb = S * static_cast<std::size_t>(model.num_buses);
  const auto ng = S * static_cast<std::size_t>(model.num_gens);
  const auto nl = S * static_cast<std::size_t>(model.num_branches);
  b.u.resize(np);
  b.v.resize(np);
  b.z.resize(np);
  b.y.resize(np);
  b.lz.resize(np);
  b.bus_w.resize(nb);
  b.bus_theta.resize(nb);
  b.gen_pg.resize(ng);
  b.gen_qg.resize(ng);
  b.branch_x.resize(4 * nl);
  b.branch_s.resize(2 * nl);
  b.branch_lambda.resize(2 * nl);
  b.rho.resize(np);
  b.pd.resize(nb);
  b.qd.resize(nb);
  b.pmin.resize(ng);
  b.pmax.resize(ng);
  b.branch_active.resize(nl, 1);
  b.beta.assign(S, 0.0);
  return b;
}

inline ScenarioView BatchAdmmState::view(const ComponentModel& model, int s) {
  const auto np = static_cast<std::size_t>(s) * static_cast<std::size_t>(model.num_pairs);
  const auto nb = static_cast<std::size_t>(s) * static_cast<std::size_t>(model.num_buses);
  const auto ng = static_cast<std::size_t>(s) * static_cast<std::size_t>(model.num_gens);
  const auto nl = static_cast<std::size_t>(s) * static_cast<std::size_t>(model.num_branches);
  ScenarioView view;
  view.u = u.data() + np;
  view.v = v.data() + np;
  view.z = z.data() + np;
  view.y = y.data() + np;
  view.lz = lz.data() + np;
  view.bus_w = bus_w.data() + nb;
  view.bus_theta = bus_theta.data() + nb;
  view.gen_pg = gen_pg.data() + ng;
  view.gen_qg = gen_qg.data() + ng;
  view.branch_x = branch_x.data() + 4 * nl;
  view.branch_s = branch_s.data() + 2 * nl;
  view.branch_lambda = branch_lambda.data() + 2 * nl;
  view.rho = rho.data() + np;
  view.pd = pd.data() + nb;
  view.qd = qd.data() + nb;
  view.pmin = pmin.data() + ng;
  view.pmax = pmax.data() + ng;
  view.branch_active = branch_active.data() + nl;
  view.beta = beta[static_cast<std::size_t>(s)];
  return view;
}

}  // namespace gridadmm::admm
