// Generator component update (paper eq. (6)).
//
// Each generator subproblem
//   min  c2 pg^2 + c1 pg + y_p (pg - v_p + z_p) + rho_p/2 (pg - v_p + z_p)^2
//        + y_q (qg - v_q + z_q) + rho_q/2 (qg - v_q + z_q)^2
//   s.t. bounds
// separates into two box-clamped scalar quadratics with closed forms; the
// kernel launches one device block per generator.
#pragma once

#include "admm/state.hpp"
#include "device/device.hpp"

namespace gridadmm::admm {

void update_generators(device::Device& dev, const ComponentModel& model, AdmmState& state);

}  // namespace gridadmm::admm
