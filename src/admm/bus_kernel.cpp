#include "admm/bus_kernel.hpp"

#include <algorithm>

#include "admm/kernels_core.hpp"
#include "admm/zy_kernel.hpp"

namespace gridadmm::admm {

void update_buses(device::Device& dev, const ComponentModel& model, AdmmState& state,
                  std::span<double> partial_dual) {
  const ModelView m = make_model_view(model);
  const ScenarioView s = make_scenario_view(model, state);
  std::fill(partial_dual.begin(), partial_dual.end(), 0.0);
  dev.launch_with_lane(model.num_buses, [=](int i, int lane) {
    double* dual_slot = partial_dual.empty()
                            ? nullptr
                            : &partial_dual[static_cast<std::size_t>(lane) * kReduceStride];
    bus_update_one(m, s, i, dual_slot);
  });
}

}  // namespace gridadmm::admm
