#include "admm/bus_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "admm/zy_kernel.hpp"
#include "common/error.hpp"

namespace gridadmm::admm {

void update_buses(device::Device& dev, const ComponentModel& model, AdmmState& state,
                  std::span<double> partial_dual) {
  const auto rho = model.rho.span();
  const auto pd = model.bus_pd.span();
  const auto qd = model.bus_qd.span();
  const auto gs = model.bus_gs.span();
  const auto bs = model.bus_bs.span();
  const auto gen_ptr = model.bus_gen_ptr.span();
  const auto gen_list = model.bus_gen_list.span();
  const auto adj_ptr = model.bus_adj_ptr.span();
  const auto adj_kp = model.bus_adj_kp.span();
  const auto u = state.u.span();
  const auto z = state.z.span();
  const auto y = state.y.span();
  auto v = state.v.span();
  auto bus_w = state.bus_w.span();
  auto bus_theta = state.bus_theta.span();

  std::fill(partial_dual.begin(), partial_dual.end(), 0.0);
  dev.launch_with_lane(model.num_buses, [=](int i, int lane) {
    // The proximal targets are m_k = u_k + z_k + y_k / rho_k: each duplicate
    // v_k minimizes rho_k/2 (v_k - m_k)^2 subject to the two balance rows.
    auto target = [&](int k) { return u[k] + z[k] + y[k] / rho[k]; };
    double* dual_slot = partial_dual.empty()
                            ? nullptr
                            : &partial_dual[static_cast<std::size_t>(lane) * kReduceStride];
    auto assign_v = [&](int k, double value) {
      if (dual_slot != nullptr) {
        // Penalty-normalized dual residual |v - v_prev| (Boyd's scaled
        // form): comparable across rho presets and directly meaningful in
        // per-unit terms.
        const double delta = std::abs(value - v[k]);
        if (delta > *dual_slot) *dual_slot = delta;
      }
      v[k] = value;
    };

    double q_w = 0.0, c_w = 0.0;    // accumulated weight / linear term of w_i
    double q_th = 0.0, c_th = 0.0;  // same for theta_i
    double s_pp = 0.0, s_qq = 0.0;  // A Q^-1 A^T entries
    double aqc_p = 0.0, aqc_q = 0.0;  // A Q^-1 c entries

    for (int e = gen_ptr[i]; e < gen_ptr[i + 1]; ++e) {
      const int kp = gen_pair_base(gen_list[e]);
      const int kq = kp + 1;
      s_pp += 1.0 / rho[kp];
      aqc_p += target(kp);
      s_qq += 1.0 / rho[kq];
      aqc_q += target(kq);
    }
    for (int e = adj_ptr[i]; e < adj_ptr[i + 1]; ++e) {
      const int kp = adj_kp[e];
      const int kq = kp + 1;
      const int kw = kp + 4;
      const int kth = kp + 5;
      s_pp += 1.0 / rho[kp];
      aqc_p -= target(kp);  // flow copies enter the P row with coefficient -1
      s_qq += 1.0 / rho[kq];
      aqc_q -= target(kq);
      q_w += rho[kw];
      c_w += rho[kw] * target(kw);
      q_th += rho[kth];
      c_th += rho[kth] * target(kth);
    }

    // w_i carries the shunt terms: coefficient -gs in the P row, +bs in Q.
    double s_pq = 0.0;
    if (q_w > 0.0) {
      s_pp += gs[i] * gs[i] / q_w;
      s_qq += bs[i] * bs[i] / q_w;
      s_pq = -gs[i] * bs[i] / q_w;
      aqc_p += -gs[i] * (c_w / q_w);
      aqc_q += bs[i] * (c_w / q_w);
    }

    const double rhs_p = aqc_p - pd[i];
    const double rhs_q = aqc_q - qd[i];
    const double det = s_pp * s_qq - s_pq * s_pq;
    const double mu_p = (s_qq * rhs_p - s_pq * rhs_q) / det;
    const double mu_q = (s_pp * rhs_q - s_pq * rhs_p) / det;

    const double w = q_w > 0.0 ? (c_w + gs[i] * mu_p - bs[i] * mu_q) / q_w : 1.0;
    const double theta = q_th > 0.0 ? c_th / q_th : 0.0;
    bus_w[i] = w;
    bus_theta[i] = theta;

    for (int e = gen_ptr[i]; e < gen_ptr[i + 1]; ++e) {
      const int kp = gen_pair_base(gen_list[e]);
      const int kq = kp + 1;
      assign_v(kp, target(kp) - mu_p / rho[kp]);
      assign_v(kq, target(kq) - mu_q / rho[kq]);
    }
    for (int e = adj_ptr[i]; e < adj_ptr[i + 1]; ++e) {
      const int kp = adj_kp[e];
      assign_v(kp, target(kp) + mu_p / rho[kp]);
      assign_v(kp + 1, target(kp + 1) + mu_q / rho[kp + 1]);
      assign_v(kp + 4, w);
      assign_v(kp + 5, theta);
    }
  });
}

}  // namespace gridadmm::admm
