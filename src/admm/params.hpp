// ADMM algorithm parameters, including the per-case penalty presets of the
// paper's Table I.
#pragma once

#include <string>

#include "tron/tron.hpp"

namespace gridadmm::admm {

/// Which TRON implementation the branch kernel dispatches to. The paths are
/// bit-identical (asserted by tests); kGeneric exists as the reference the
/// fast path is checked against and for problems outside the fixed 4/6-dim
/// branch family.
enum class BranchSolverPath {
  kFixedDim,  ///< stack-state SmallTronSolver<4/6>, statically bound (default)
  kGeneric,   ///< heap-state TronSolver with virtual problem dispatch
};

inline const char* branch_path_name(BranchSolverPath path) {
  return path == BranchSolverPath::kGeneric ? "generic" : "fixed";
}

/// Inverse of branch_path_name for CLI parsing; rejects unknown names.
BranchSolverPath branch_path_from_name(const std::string& name);

struct AdmmParams {
  // ---- Penalties (Table I) ----
  double rho_pq = 10.0;    ///< penalty on power pairs (generation and flow)
  double rho_va = 1000.0;  ///< penalty on voltage magnitude/angle pairs

  // ---- Two-level (outer augmented Lagrangian) controls ----
  double beta0 = 1e4;          ///< initial outer penalty on z = 0
  double beta_factor = 6.0;    ///< escalation when ||z|| stalls
  double beta_max = 1e12;
  double z_shrink = 0.25;      ///< required per-outer reduction of ||z||_inf
  double lambda_bound = 1e8;   ///< clamp for the outer multiplier (projection in (8))
  int max_outer_iterations = 20;
  int max_inner_iterations = 1000;  ///< per outer iteration (paper Section IV-A)
  double outer_tolerance = 1e-4;    ///< ||z||_inf target

  // ---- Inner ADMM termination ----
  // The inner loop is solved inexactly with a tolerance proportional to the
  // current outer infeasibility ||z|| (classic inexact augmented Lagrangian
  // schedule, cf. [4]): eps_k = clamp(inner_tolerance_factor * ||z||_prev,
  // final tolerance, initial tolerance).
  double primal_tolerance = 1e-4;  ///< final ||u - v + z||_inf target
  double dual_tolerance = 1e-4;    ///< final max_k |v_k - v_k^prev| (penalty-normalized)
  double inner_tolerance_initial = 1e-2;  ///< inner tolerance for the first outer iteration
  double inner_tolerance_factor = 0.05;   ///< proportionality to ||z||_prev

  // ---- Adaptive penalties (extension; paper Section V future work) ----
  // Residual balancing in the style of the adaptive ADMM of Mhanna et al.
  // [paper ref 3] / Boyd et al. sec. 3.4.1: every `adaptive_rho_interval`
  // inner iterations, scale every rho up (down) by adaptive_rho_tau when the
  // primal residual exceeds adaptive_rho_mu times the dual residual (or vice
  // versa), within a total scaling budget. Heuristic: the two-level
  // convergence argument assumes fixed inner penalties.
  bool adaptive_rho = false;
  int adaptive_rho_interval = 5;
  double adaptive_rho_mu = 4.0;
  double adaptive_rho_tau = 2.0;
  double adaptive_rho_max_scale = 100.0;  ///< cumulative scaling bound (both ways)

  // ---- Branch subproblem (augmented Lagrangian + TRON) ----
  double auglag_rho0 = 10.0;       ///< initial penalty on line-limit equalities
  double auglag_rho_max = 1e8;
  double auglag_eta = 1e-6;        ///< line-limit constraint tolerance
  int auglag_max_iterations = 6;   ///< multiplier updates per ADMM iteration
  tron::TronOptions tron;          ///< inner Newton controls
  /// TRON implementation for the branch subproblems (see BranchSolverPath).
  BranchSolverPath branch_solver = BranchSolverPath::kFixedDim;

  // ---- Misc ----
  bool two_level = true;  ///< false: plain one-level ADMM (Mhanna-style), no z
  double line_capacity_factor = 0.99;  ///< paper tightens limits to 99%
  /// Cost scaling inside the ADMM subproblems (the reported objective is
  /// unscaled). Balances the $-scale cost gradient (~1e3 per p.u.) against
  /// the Table I penalties; the ExaAdmm reference implementation applies
  /// the same kind of generator-cost scaling. The paper halves the
  /// objective weight for the 70k case ("scaled the objective by 2" =
  /// doubling this factor relative to the default).
  double objective_scale = 1e-3;

  AdmmParams() {
    tron.max_iterations = 50;
    // The branch objective is normalized to O(1) by BranchProblem, so this
    // is a relative accuracy; it must stay well below dual_tolerance or the
    // subproblem jitter dominates the dual residual.
    tron.gtol = 1e-7;
  }
};

/// Returns the Table I preset for a known case name; for unknown names,
/// returns defaults scaled heuristically by bus count (0 = unknown size).
AdmmParams params_for_case(const std::string& case_name, int num_buses = 0);

}  // namespace gridadmm::admm
