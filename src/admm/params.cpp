#include "admm/params.hpp"

#include "common/error.hpp"

namespace gridadmm::admm {

BranchSolverPath branch_path_from_name(const std::string& name) {
  if (name == "generic") return BranchSolverPath::kGeneric;
  require(name == "fixed", "unknown branch solver path: " + name);
  return BranchSolverPath::kFixedDim;
}

AdmmParams params_for_case(const std::string& case_name, int num_buses) {
  AdmmParams params;
  // Table I of the paper.
  if (case_name == "1354pegase" || case_name == "2869pegase") {
    params.rho_pq = 1e1;
    params.rho_va = 1e3;
  } else if (case_name == "9241pegase" || case_name == "13659pegase") {
    params.rho_pq = 5e1;
    params.rho_va = 5e3;
  } else if (case_name == "ACTIVSg25k") {
    params.rho_pq = 3e3;
    params.rho_va = 3e4;
  } else if (case_name == "ACTIVSg70k") {
    params.rho_pq = 3e4;
    params.rho_va = 3e5;
    // "we scaled the objective value for the 70k case by multiplying it by 2"
    params.objective_scale *= 2.0;
  } else if (num_buses > 0 && num_buses <= 300) {
    // Small canonical cases use the small-pegase penalty level.
    params.rho_pq = 1e1;
    params.rho_va = 1e3;
  }
  return params;
}

}  // namespace gridadmm::admm
