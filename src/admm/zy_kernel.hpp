// Artificial-variable and multiplier updates (paper eqs. (6) and (8)).
//
// z update: per pair, min_z  lambda z + beta/2 z^2 + y (r + z) + rho/2 (r+z)^2
// with r = u - v has the closed form z = -(lambda + y + rho r)/(beta + rho).
// y update: y += rho (u - v + z). The fused kernel performs both per pair
// (one device block each) and accumulates the primal residual
// ||u - v + z||_inf and ||z||_inf as per-lane partial maxima so the solver
// loop needs no separate reduction pass.
#pragma once

#include <span>

#include "admm/state.hpp"
#include "device/device.hpp"

namespace gridadmm::admm {

void update_z(device::Device& dev, const ComponentModel& model, AdmmState& state);
void update_y(device::Device& dev, const ComponentModel& model, AdmmState& state);

/// Fused z+y update. When `two_level` is false, z stays frozen (one-level
/// ADMM). `partial_primal` / `partial_z` must hold one slot per worker lane
/// with stride 8 doubles (cache-line padding); they are reset on entry.
void update_zy_fused(device::Device& dev, const ComponentModel& model, AdmmState& state,
                     bool two_level, std::span<double> partial_primal,
                     std::span<double> partial_z);

/// Outer multiplier update lambda <- clamp(lambda + beta z) (projection (8)).
void update_outer_multiplier(device::Device& dev, const ComponentModel& model, AdmmState& state,
                             double lambda_bound);

/// Stride (in doubles) between per-lane partial-reduction slots.
inline constexpr int kReduceStride = 8;

}  // namespace gridadmm::admm
