#include "admm/zy_kernel.hpp"

#include <algorithm>
#include <cmath>

namespace gridadmm::admm {

void update_z(device::Device& dev, const ComponentModel& model, AdmmState& state) {
  const auto rho = model.rho.span();
  const auto u = state.u.span();
  const auto v = state.v.span();
  const auto y = state.y.span();
  const auto lz = state.lz.span();
  auto z = state.z.span();
  const double beta = state.beta;
  dev.launch(model.num_pairs, [=](int k) {
    const double r = u[k] - v[k];
    z[k] = -(lz[k] + y[k] + rho[k] * r) / (beta + rho[k]);
  });
}

void update_y(device::Device& dev, const ComponentModel& model, AdmmState& state) {
  const auto rho = model.rho.span();
  const auto u = state.u.span();
  const auto v = state.v.span();
  const auto z = state.z.span();
  auto y = state.y.span();
  dev.launch(model.num_pairs, [=](int k) { y[k] += rho[k] * (u[k] - v[k] + z[k]); });
}

void update_zy_fused(device::Device& dev, const ComponentModel& model, AdmmState& state,
                     bool two_level, std::span<double> partial_primal,
                     std::span<double> partial_z) {
  const auto rho = model.rho.span();
  const auto u = state.u.span();
  const auto v = state.v.span();
  const auto lz = state.lz.span();
  auto z = state.z.span();
  auto y = state.y.span();
  const double beta = state.beta;
  std::fill(partial_primal.begin(), partial_primal.end(), 0.0);
  std::fill(partial_z.begin(), partial_z.end(), 0.0);
  dev.launch_with_lane(model.num_pairs, [=](int k, int lane) {
    const double r = u[k] - v[k];
    if (two_level) {
      z[k] = -(lz[k] + y[k] + rho[k] * r) / (beta + rho[k]);
    }
    const double rz = r + z[k];
    y[k] += rho[k] * rz;
    double& slot_p = partial_primal[static_cast<std::size_t>(lane) * kReduceStride];
    if (std::abs(rz) > slot_p) slot_p = std::abs(rz);
    double& slot_z = partial_z[static_cast<std::size_t>(lane) * kReduceStride];
    if (std::abs(z[k]) > slot_z) slot_z = std::abs(z[k]);
  });
}

void update_outer_multiplier(device::Device& dev, const ComponentModel& model, AdmmState& state,
                             double lambda_bound) {
  const auto z = state.z.span();
  auto lz = state.lz.span();
  const double beta = state.beta;
  dev.launch(model.num_pairs, [=](int k) {
    lz[k] = std::clamp(lz[k] + beta * z[k], -lambda_bound, lambda_bound);
  });
}

}  // namespace gridadmm::admm
