#include "admm/zy_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "admm/kernels_core.hpp"

namespace gridadmm::admm {

void update_z(device::Device& dev, const ComponentModel& model, AdmmState& state) {
  const auto rho = model.rho.span();
  const auto u = state.u.span();
  const auto v = state.v.span();
  const auto y = state.y.span();
  const auto lz = state.lz.span();
  auto z = state.z.span();
  const double beta = state.beta;
  dev.launch(model.num_pairs, [=](int k) {
    const double r = u[k] - v[k];
    z[k] = -(lz[k] + y[k] + rho[k] * r) / (beta + rho[k]);
  });
}

void update_y(device::Device& dev, const ComponentModel& model, AdmmState& state) {
  const auto rho = model.rho.span();
  const auto u = state.u.span();
  const auto v = state.v.span();
  const auto z = state.z.span();
  auto y = state.y.span();
  dev.launch(model.num_pairs, [=](int k) { y[k] += rho[k] * (u[k] - v[k] + z[k]); });
}

void update_zy_fused(device::Device& dev, const ComponentModel& model, AdmmState& state,
                     bool two_level, std::span<double> partial_primal,
                     std::span<double> partial_z) {
  const ModelView m = make_model_view(model);
  const ScenarioView s = make_scenario_view(model, state);
  std::fill(partial_primal.begin(), partial_primal.end(), 0.0);
  std::fill(partial_z.begin(), partial_z.end(), 0.0);
  dev.launch_with_lane(model.num_pairs, [=](int k, int lane) {
    double* slot_p = &partial_primal[static_cast<std::size_t>(lane) * kReduceStride];
    double* slot_z = &partial_z[static_cast<std::size_t>(lane) * kReduceStride];
    zy_update_one(m, s, k, two_level, slot_p, slot_z);
  });
}

void update_outer_multiplier(device::Device& dev, const ComponentModel& model, AdmmState& state,
                             double lambda_bound) {
  const ModelView m = make_model_view(model);
  const ScenarioView s = make_scenario_view(model, state);
  dev.launch(model.num_pairs, [=](int k) { outer_multiplier_update_one(m, s, k, lambda_bound); });
}

}  // namespace gridadmm::admm
