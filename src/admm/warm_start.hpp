// Portable full-iterate snapshot for warm starting.
//
// The paper's tracking result rests on reusing the *entire* ADMM iterate —
// primal values and every multiplier — across solves of nearby instances.
// WarmStartIterate packages that iterate as plain host arrays so it can
// move between solvers, into the serve layer's SolutionCache, and across
// batch slots: AdmmSolver::export_iterate / import_iterate round-trip a
// single solver, BatchAdmmSolver::export_iterate slices one scenario out of
// a batch, and BatchSolveOptions::initial_iterates seeds batch slots from
// previously exported iterates.
#pragma once

#include <vector>

#include "admm/component_model.hpp"

namespace gridadmm::grid {
struct Network;
struct OpfSolution;
}  // namespace gridadmm::grid

namespace gridadmm::admm {

struct WarmStartIterate {
  // Consensus pairs and multipliers (num_pairs each).
  std::vector<double> u, v, z, y, lz;
  // Component variables.
  std::vector<double> bus_w, bus_theta;        ///< num_buses each
  std::vector<double> gen_pg, gen_qg;          ///< num_gens each
  std::vector<double> branch_x;                ///< 4 * num_branches
  std::vector<double> branch_s;                ///< 2 * num_branches
  std::vector<double> branch_lambda;           ///< 2 * num_branches
  // Penalty state the iterate was produced under. Importers must keep it:
  // the multipliers were accumulated against these penalties, and re-basing
  // them measurably slows the warm start (see AdmmSolver::prepare_warm_start).
  std::vector<double> rho;                     ///< num_pairs
  double beta = 0.0;                           ///< outer penalty on z = 0
  double rho_scale = 1.0;                      ///< cumulative adaptive scaling

  /// True when every array length matches `model`'s dimensions.
  [[nodiscard]] bool matches(const ComponentModel& model) const;
};

/// Throws ValidationError unless `it.matches(model)`.
void require_matches(const WarmStartIterate& it, const ComponentModel& model,
                     const char* where);

/// Maps the iterate's bus/generator variables onto an OpfSolution using the
/// same convention as AdmmSolver::solution(): vm = sqrt(max(w, 1e-12)),
/// va = theta - theta[ref]. This is how a (possibly non-converged) ADMM
/// iterate seeds the MiniIPM fallback's primal — the consensus copies and
/// multipliers are deliberately dropped, the IPM has no use for them.
[[nodiscard]] grid::OpfSolution to_solution(const WarmStartIterate& it,
                                            const grid::Network& net);

}  // namespace gridadmm::admm
