#include "admm/component_model.hpp"

#include <vector>

#include "common/error.hpp"

namespace gridadmm::admm {

ComponentModel build_component_model(const grid::Network& net, const AdmmParams& params) {
  require(net.finalized(), "build_component_model: network must be finalized");
  ComponentModel m;
  m.num_buses = net.num_buses();
  m.num_gens = net.num_generators();
  m.num_branches = net.num_branches();
  m.num_pairs = 2 * m.num_gens + 8 * m.num_branches;

  // Per-pair penalties: rho_pq on generation and flow pairs, rho_va on
  // voltage pairs.
  {
    std::vector<double> rho(static_cast<std::size_t>(m.num_pairs), params.rho_pq);
    for (int l = 0; l < m.num_branches; ++l) {
      const int base = branch_pair_base(m.num_gens, l);
      rho[base + kPairWi] = params.rho_va;
      rho[base + kPairThi] = params.rho_va;
      rho[base + kPairWj] = params.rho_va;
      rho[base + kPairThj] = params.rho_va;
    }
    m.rho.resize(rho.size());
    m.rho.upload(rho);
  }

  // Generators.
  {
    const std::size_t ng = static_cast<std::size_t>(m.num_gens);
    std::vector<int> bus(ng);
    std::vector<double> pmin(ng), pmax(ng), qmin(ng), qmax(ng), c2(ng), c1(ng), c0(ng);
    for (int g = 0; g < m.num_gens; ++g) {
      const auto& gen = net.generators[g];
      bus[g] = gen.bus;
      pmin[g] = gen.pmin;
      pmax[g] = gen.pmax;
      qmin[g] = gen.qmin;
      qmax[g] = gen.qmax;
      c2[g] = gen.c2 * params.objective_scale;
      c1[g] = gen.c1 * params.objective_scale;
      c0[g] = gen.c0 * params.objective_scale;
    }
    m.gen_bus.resize(ng);
    m.gen_bus.upload(bus);
    auto up = [](device::DeviceBuffer<double>& buf, const std::vector<double>& host) {
      buf.resize(host.size());
      buf.upload(host);
    };
    up(m.gen_pmin, pmin);
    up(m.gen_pmax, pmax);
    up(m.gen_qmin, qmin);
    up(m.gen_qmax, qmax);
    up(m.gen_c2, c2);
    up(m.gen_c1, c1);
    up(m.gen_c0, c0);
  }

  // Branches.
  {
    const std::size_t nl = static_cast<std::size_t>(m.num_branches);
    std::vector<int> from(nl), to(nl);
    std::vector<double> adm(8 * nl), vbound(4 * nl), rate2(nl);
    for (int l = 0; l < m.num_branches; ++l) {
      const auto& branch = net.branches[l];
      const auto& y = net.admittances[l];
      from[l] = branch.from;
      to[l] = branch.to;
      double* a = adm.data() + 8 * l;
      a[0] = y.gii; a[1] = y.bii; a[2] = y.gij; a[3] = y.bij;
      a[4] = y.gji; a[5] = y.bji; a[6] = y.gjj; a[7] = y.bjj;
      double* vb = vbound.data() + 4 * l;
      vb[0] = net.buses[branch.from].vmin;
      vb[1] = net.buses[branch.from].vmax;
      vb[2] = net.buses[branch.to].vmin;
      vb[3] = net.buses[branch.to].vmax;
      const double rate = branch.rate * params.line_capacity_factor;
      rate2[l] = branch.rate > 0.0 ? rate * rate : 0.0;
    }
    m.br_from.resize(nl);
    m.br_from.upload(from);
    m.br_to.resize(nl);
    m.br_to.upload(to);
    m.br_adm.resize(adm.size());
    m.br_adm.upload(adm);
    m.br_vbound.resize(vbound.size());
    m.br_vbound.upload(vbound);
    m.br_rate2.resize(rate2.size());
    m.br_rate2.upload(rate2);
  }

  // Buses.
  {
    const std::size_t nb = static_cast<std::size_t>(m.num_buses);
    std::vector<double> pd(nb), qd(nb), gs(nb), bs(nb);
    for (int i = 0; i < m.num_buses; ++i) {
      pd[i] = net.buses[i].pd;
      qd[i] = net.buses[i].qd;
      gs[i] = net.buses[i].gs;
      bs[i] = net.buses[i].bs;
    }
    m.bus_pd.resize(nb);
    m.bus_pd.upload(pd);
    m.bus_qd.resize(nb);
    m.bus_qd.upload(qd);
    m.bus_gs.resize(nb);
    m.bus_gs.upload(gs);
    m.bus_bs.resize(nb);
    m.bus_bs.upload(bs);

    std::vector<int> gen_ptr(nb + 1, 0), gen_list;
    std::vector<int> adj_ptr(nb + 1, 0), adj_kp;
    for (int i = 0; i < m.num_buses; ++i) {
      for (const int g : net.gens_at_bus[i]) gen_list.push_back(g);
      gen_ptr[i + 1] = static_cast<int>(gen_list.size());
      for (const int l : net.branches_from[i]) {
        adj_kp.push_back(branch_pair_base(m.num_gens, l) + kPairPij);
      }
      for (const int l : net.branches_to[i]) {
        adj_kp.push_back(branch_pair_base(m.num_gens, l) + kPairPji);
      }
      adj_ptr[i + 1] = static_cast<int>(adj_kp.size());
    }
    m.bus_gen_ptr.resize(gen_ptr.size());
    m.bus_gen_ptr.upload(gen_ptr);
    m.bus_gen_list.resize(gen_list.size());
    if (!gen_list.empty()) m.bus_gen_list.upload(gen_list);
    m.bus_adj_ptr.resize(adj_ptr.size());
    m.bus_adj_ptr.upload(adj_ptr);
    m.bus_adj_kp.resize(adj_kp.size());
    if (!adj_kp.empty()) m.bus_adj_kp.upload(adj_kp);
  }
  return m;
}

}  // namespace gridadmm::admm
