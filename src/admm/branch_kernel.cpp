#include "admm/branch_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridadmm::admm {

namespace {

/// One TRON solve through the selected path. The fixed path dispatches on
/// the problem's (compile-time-known) dimension; both paths produce
/// bit-identical iterates, so the selection is a pure speed knob.
tron::TronResult run_tron(BranchWorkspace& ws, BranchSolverPath path, std::span<double> x) {
  if (path == BranchSolverPath::kGeneric) return ws.generic.minimize(ws.problem, x);
  if (x.size() == 4) return ws.solver4.minimize(ws.problem, x);
  return ws.solver6.minimize(ws.problem, x);
}

void accumulate(BranchUpdateStats& stats, const tron::TronResult& result) {
  stats.tron_iterations += result.iterations;
  stats.cg_iterations += result.cg_iterations;
  stats.function_evals += result.function_evals;
  if (result.status == tron::TronStatus::kLineSearchFailed) ++stats.failures;
}

}  // namespace

void ensure_branch_lanes(std::vector<BranchWorkspace>& lanes, int workers,
                         const AdmmParams& params) {
  if (lanes.size() != static_cast<std::size_t>(workers)) {
    lanes = std::vector<BranchWorkspace>(static_cast<std::size_t>(workers));
  }
  // Rebinding every call is a few scalar copies; it keeps later changes to
  // params.tron (solvers are reused across solves) from going stale.
  for (auto& lane : lanes) lane.bind_options(params.tron);
}

void branch_update_one(const ModelView& m, const AdmmParams& params, const ScenarioView& s, int l,
                       BranchWorkspace& ws) {
  const auto st = static_cast<std::size_t>(s.stride);
  if (s.branch_active != nullptr && s.branch_active[static_cast<std::size_t>(l) * st] == 0) {
    return;  // outage
  }
  const auto base = static_cast<std::size_t>(branch_pair_base(m.num_gens, l));
  double d[8], yk[8], rhok[8];
  for (std::size_t k = 0; k < 8; ++k) {
    d[k] = s.z[(base + k) * st] - s.v[(base + k) * st];
    yk[k] = s.y[(base + k) * st];
    rhok[k] = s.rho[(base + k) * st];
  }
  const double rate2 = m.rate2[l];
  ws.problem.bind(m.adm + 8 * l, m.vbound + 4 * l, rate2, d, yk, rhok);

  double x[6];
  for (std::size_t a = 0; a < 4; ++a) x[a] = s.branch_x[(4 * static_cast<std::size_t>(l) + a) * st];
  const bool rated = rate2 > 0.0;

  if (!rated) {
    ws.problem.set_line_multipliers(0.0, 0.0, 0.0);
    accumulate(ws.stats, run_tron(ws, params.branch_solver, {x, 4}));
  } else {
    const auto sl = 2 * static_cast<std::size_t>(l);
    x[4] = s.branch_s[sl * st];
    x[5] = s.branch_s[(sl + 1) * st];
    double lam_ij = s.branch_lambda[sl * st];
    double lam_ji = s.branch_lambda[(sl + 1) * st];
    double rho_t = params.auglag_rho0 * std::max(rhok[0], 1.0);
    double eta = std::pow(rho_t, -0.1);
    for (int al = 0; al < params.auglag_max_iterations; ++al) {
      ++ws.stats.auglag_iterations;
      ws.problem.set_line_multipliers(lam_ij, lam_ji, rho_t);
      accumulate(ws.stats, run_tron(ws, params.branch_solver, {x, 6}));
      double cij = 0.0, cji = 0.0;
      ws.problem.constraint_values({x, 6}, cij, cji);
      const double viol = std::max(std::abs(cij), std::abs(cji));
      if (viol <= eta) {
        lam_ij += rho_t * cij;
        lam_ji += rho_t * cji;
        if (viol <= params.auglag_eta) break;
        eta = std::max(params.auglag_eta, eta * std::pow(rho_t, -0.9));
      } else {
        rho_t = std::min(rho_t * 10.0, params.auglag_rho_max);
        eta = std::max(params.auglag_eta, std::pow(rho_t, -0.1));
      }
    }
    s.branch_lambda[sl * st] = lam_ij;
    s.branch_lambda[(sl + 1) * st] = lam_ji;
    s.branch_s[sl * st] = x[4];
    s.branch_s[(sl + 1) * st] = x[5];
  }

  for (std::size_t a = 0; a < 4; ++a) {
    s.branch_x[(4 * static_cast<std::size_t>(l) + a) * st] = x[a];
  }
  const grid::FlowValues f = grid::eval_flows(
      grid::BranchAdmittance{m.adm[8 * l + 0], m.adm[8 * l + 1], m.adm[8 * l + 2], m.adm[8 * l + 3],
                             m.adm[8 * l + 4], m.adm[8 * l + 5], m.adm[8 * l + 6], m.adm[8 * l + 7]},
      x[0], x[1], x[2], x[3]);
  s.u[(base + kPairPij) * st] = f[grid::kPij];
  s.u[(base + kPairQij) * st] = f[grid::kQij];
  s.u[(base + kPairPji) * st] = f[grid::kPji];
  s.u[(base + kPairQji) * st] = f[grid::kQji];
  s.u[(base + kPairWi) * st] = x[0] * x[0];
  s.u[(base + kPairThi) * st] = x[2];
  s.u[(base + kPairWj) * st] = x[1] * x[1];
  s.u[(base + kPairThj) * st] = x[3];
}

void update_branches(device::Device& dev, const ComponentModel& model, const AdmmParams& params,
                     AdmmState& state, BranchUpdateStats* stats) {
  const ModelView m = make_model_view(model);
  const ScenarioView s = make_scenario_view(model, state);

  // The lanes live in the state: allocated on the first launch, reused by
  // every later one. The old per-launch std::vector<BranchWorkspace> cost a
  // full TronSolver heap construction per lane per ADMM iteration.
  std::vector<BranchWorkspace>& lanes = state.branch_lanes;
  ensure_branch_lanes(lanes, dev.workers(), params);

  dev.launch_with_lane(model.num_branches,
                       [&lanes, &params, m, s](int l, int lane_id) {
                         branch_update_one(m, params, s, l, lanes[lane_id]);
                       });

  for (auto& lane : lanes) {
    if (stats != nullptr) *stats += lane.stats;
    lane.stats = BranchUpdateStats{};
  }
}

}  // namespace gridadmm::admm
