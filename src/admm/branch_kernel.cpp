#include "admm/branch_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"

namespace gridadmm::admm {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void BranchProblem::bind(const double* adm, const double* vbound, double rate2, const double* d,
                         const double* yk, const double* rhok) {
  adm_.gii = adm[0];
  adm_.bii = adm[1];
  adm_.gij = adm[2];
  adm_.bij = adm[3];
  adm_.gji = adm[4];
  adm_.bji = adm[5];
  adm_.gjj = adm[6];
  adm_.bjj = adm[7];
  std::copy(vbound, vbound + 4, vbound_);
  rate2_ = rate2;
  std::copy(d, d + 8, d_);
  std::copy(yk, yk + 8, yk_);
  std::copy(rhok, rhok + 8, rhok_);
  double rho_max = 1.0;
  for (int k = 0; k < 8; ++k) rho_max = std::max(rho_max, rhok_[k]);
  scale_ = 1.0 / rho_max;
}

void BranchProblem::set_line_multipliers(double lam_ij, double lam_ji, double rho_t) {
  lam_ij_ = lam_ij;
  lam_ji_ = lam_ji;
  rho_t_ = rho_t;
  double rho_max = 1.0;
  for (int k = 0; k < 8; ++k) rho_max = std::max(rho_max, rhok_[k]);
  scale_ = 1.0 / std::max(rho_max, rho_t_);
}

void BranchProblem::bounds(std::span<double> lower, std::span<double> upper) const {
  lower[0] = vbound_[0];
  upper[0] = vbound_[1];
  lower[1] = vbound_[2];
  upper[1] = vbound_[3];
  lower[2] = -kTwoPi;
  upper[2] = kTwoPi;
  lower[3] = -kTwoPi;
  upper[3] = kTwoPi;
  if (rate2_ > 0.0) {
    lower[4] = -rate2_;
    upper[4] = 0.0;
    lower[5] = -rate2_;
    upper[5] = 0.0;
  }
}

double BranchProblem::eval_f(std::span<const double> x) {
  const grid::FlowValues f = grid::eval_flows(adm_, x[0], x[1], x[2], x[3]);
  double obj = 0.0;
  // Flow consensus terms: t = F + d with d = z - v.
  for (int k = 0; k < 4; ++k) {
    const double t = f[k] + d_[k];
    obj += yk_[k] * t + 0.5 * rhok_[k] * t * t;
  }
  // Voltage consensus terms: u-values are vi^2, thi, vj^2, thj.
  const double uw[4] = {x[0] * x[0], x[2], x[1] * x[1], x[3]};
  for (int k = 0; k < 4; ++k) {
    const double t = uw[k] + d_[4 + k];
    obj += yk_[4 + k] * t + 0.5 * rhok_[4 + k] * t * t;
  }
  if (rate2_ > 0.0) {
    const double cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
    const double cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
    obj += lam_ij_ * cij + 0.5 * rho_t_ * cij * cij;
    obj += lam_ji_ * cji + 0.5 * rho_t_ * cji * cji;
  }
  return scale_ * obj;
}

void BranchProblem::eval_gradient(std::span<const double> x, std::span<double> grad) {
  grid::FlowValues f;
  grid::FlowGradients jac;
  grid::eval_flow_gradients(adm_, x[0], x[1], x[2], x[3], f, jac);
  std::fill(grad.begin(), grad.end(), 0.0);
  for (int k = 0; k < 4; ++k) {
    const double w = yk_[k] + rhok_[k] * (f[k] + d_[k]);
    for (int a = 0; a < 4; ++a) grad[a] += w * jac.g[k][a];
  }
  // Voltage terms.
  const double wwi = yk_[4] + rhok_[4] * (x[0] * x[0] + d_[4]);
  grad[0] += wwi * 2.0 * x[0];
  grad[2] += yk_[5] + rhok_[5] * (x[2] + d_[5]);
  const double wwj = yk_[6] + rhok_[6] * (x[1] * x[1] + d_[6]);
  grad[1] += wwj * 2.0 * x[1];
  grad[3] += yk_[7] + rhok_[7] * (x[3] + d_[7]);
  if (rate2_ > 0.0) {
    const double cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
    const double cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
    const double tij = lam_ij_ + rho_t_ * cij;
    const double tji = lam_ji_ + rho_t_ * cji;
    for (int a = 0; a < 4; ++a) {
      grad[a] += tij * (2.0 * f[grid::kPij] * jac.g[grid::kPij][a] +
                        2.0 * f[grid::kQij] * jac.g[grid::kQij][a]);
      grad[a] += tji * (2.0 * f[grid::kPji] * jac.g[grid::kPji][a] +
                        2.0 * f[grid::kQji] * jac.g[grid::kQji][a]);
    }
    grad[4] = tij;
    grad[5] = tji;
  }
  for (double& g : grad) g *= scale_;
}

void BranchProblem::eval_hessian(std::span<const double> x, linalg::DenseMatrix& hess) {
  grid::FlowValues f;
  grid::FlowGradients jac;
  grid::eval_flow_gradients(adm_, x[0], x[1], x[2], x[3], f, jac);
  hess.set_zero();
  double h4[16] = {0};

  // Gauss-Newton parts rho_k J_k J_k^T and curvature weights for the exact
  // flow Hessians.
  std::array<double, 4> curve_w{};
  for (int k = 0; k < 4; ++k) {
    const double w = yk_[k] + rhok_[k] * (f[k] + d_[k]);
    curve_w[k] = w;
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) h4[a * 4 + b] += rhok_[k] * jac.g[k][a] * jac.g[k][b];
    }
  }

  double tij = 0.0, tji = 0.0;
  if (rate2_ > 0.0) {
    const double cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
    const double cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
    tij = lam_ij_ + rho_t_ * cij;
    tji = lam_ji_ + rho_t_ * cji;
    // Exact curvature of p^2+q^2: 2 J J^T + 2 p H_p + 2 q H_q, plus the
    // Gauss-Newton term rho_t G G^T with G = grad of c.
    curve_w[grid::kPij] += 2.0 * tij * f[grid::kPij];
    curve_w[grid::kQij] += 2.0 * tij * f[grid::kQij];
    curve_w[grid::kPji] += 2.0 * tji * f[grid::kPji];
    curve_w[grid::kQji] += 2.0 * tji * f[grid::kQji];
    double g_ij[4], g_ji[4];
    for (int a = 0; a < 4; ++a) {
      g_ij[a] = 2.0 * f[grid::kPij] * jac.g[grid::kPij][a] +
                2.0 * f[grid::kQij] * jac.g[grid::kQij][a];
      g_ji[a] = 2.0 * f[grid::kPji] * jac.g[grid::kPji][a] +
                2.0 * f[grid::kQji] * jac.g[grid::kQji][a];
    }
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        h4[a * 4 + b] += rho_t_ * (g_ij[a] * g_ij[b] + g_ji[a] * g_ji[b]);
        h4[a * 4 + b] += 2.0 * tij * (jac.g[grid::kPij][a] * jac.g[grid::kPij][b] +
                                      jac.g[grid::kQij][a] * jac.g[grid::kQij][b]);
        h4[a * 4 + b] += 2.0 * tji * (jac.g[grid::kPji][a] * jac.g[grid::kPji][b] +
                                      jac.g[grid::kQji][a] * jac.g[grid::kQji][b]);
      }
    }
  }
  grid::accumulate_flow_hessian(adm_, x[0], x[1], x[2], x[3], curve_w, h4);

  // Voltage-pair terms.
  const double wwi = yk_[4] + rhok_[4] * (x[0] * x[0] + d_[4]);
  h4[0] += 2.0 * wwi + rhok_[4] * 4.0 * x[0] * x[0];
  h4[2 * 4 + 2] += rhok_[5];
  const double wwj = yk_[6] + rhok_[6] * (x[1] * x[1] + d_[6]);
  h4[1 * 4 + 1] += 2.0 * wwj + rhok_[6] * 4.0 * x[1] * x[1];
  h4[3 * 4 + 3] += rhok_[7];

  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) hess(a, b) = scale_ * h4[a * 4 + b];
  }
  if (rate2_ > 0.0) {
    double g_ij[4], g_ji[4];
    for (int a = 0; a < 4; ++a) {
      g_ij[a] = 2.0 * f[grid::kPij] * jac.g[grid::kPij][a] +
                2.0 * f[grid::kQij] * jac.g[grid::kQij][a];
      g_ji[a] = 2.0 * f[grid::kPji] * jac.g[grid::kPji][a] +
                2.0 * f[grid::kQji] * jac.g[grid::kQji][a];
    }
    for (int a = 0; a < 4; ++a) {
      hess(a, 4) = scale_ * rho_t_ * g_ij[a];
      hess(4, a) = scale_ * rho_t_ * g_ij[a];
      hess(a, 5) = scale_ * rho_t_ * g_ji[a];
      hess(5, a) = scale_ * rho_t_ * g_ji[a];
    }
    hess(4, 4) = scale_ * rho_t_;
    hess(5, 5) = scale_ * rho_t_;
    hess(4, 5) = 0.0;
    hess(5, 4) = 0.0;
  }
}

void BranchProblem::constraint_values(std::span<const double> x, double& cij, double& cji) const {
  const grid::FlowValues f = grid::eval_flows(adm_, x[0], x[1], x[2], x[3]);
  cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
  cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
}

void branch_update_one(const ModelView& m, const AdmmParams& params, const ScenarioView& s, int l,
                       BranchWorkspace& ws) {
  const auto st = static_cast<std::size_t>(s.stride);
  if (s.branch_active != nullptr && s.branch_active[static_cast<std::size_t>(l) * st] == 0) {
    return;  // outage
  }
  const auto base = static_cast<std::size_t>(branch_pair_base(m.num_gens, l));
  double d[8], yk[8], rhok[8];
  for (std::size_t k = 0; k < 8; ++k) {
    d[k] = s.z[(base + k) * st] - s.v[(base + k) * st];
    yk[k] = s.y[(base + k) * st];
    rhok[k] = s.rho[(base + k) * st];
  }
  const double rate2 = m.rate2[l];
  ws.problem.bind(m.adm + 8 * l, m.vbound + 4 * l, rate2, d, yk, rhok);

  double x[6];
  for (std::size_t a = 0; a < 4; ++a) x[a] = s.branch_x[(4 * static_cast<std::size_t>(l) + a) * st];
  const bool rated = rate2 > 0.0;

  if (!rated) {
    ws.problem.set_line_multipliers(0.0, 0.0, 0.0);
    const auto result = ws.solver.minimize(ws.problem, {x, 4});
    ws.stats.tron_iterations += result.iterations;
    ws.stats.cg_iterations += result.cg_iterations;
    if (result.status == tron::TronStatus::kLineSearchFailed) ++ws.stats.failures;
  } else {
    const auto sl = 2 * static_cast<std::size_t>(l);
    x[4] = s.branch_s[sl * st];
    x[5] = s.branch_s[(sl + 1) * st];
    double lam_ij = s.branch_lambda[sl * st];
    double lam_ji = s.branch_lambda[(sl + 1) * st];
    double rho_t = params.auglag_rho0 * std::max(rhok[0], 1.0);
    double eta = std::pow(rho_t, -0.1);
    for (int al = 0; al < params.auglag_max_iterations; ++al) {
      ++ws.stats.auglag_iterations;
      ws.problem.set_line_multipliers(lam_ij, lam_ji, rho_t);
      const auto result = ws.solver.minimize(ws.problem, {x, 6});
      ws.stats.tron_iterations += result.iterations;
      ws.stats.cg_iterations += result.cg_iterations;
      if (result.status == tron::TronStatus::kLineSearchFailed) ++ws.stats.failures;
      double cij = 0.0, cji = 0.0;
      ws.problem.constraint_values({x, 6}, cij, cji);
      const double viol = std::max(std::abs(cij), std::abs(cji));
      if (viol <= eta) {
        lam_ij += rho_t * cij;
        lam_ji += rho_t * cji;
        if (viol <= params.auglag_eta) break;
        eta = std::max(params.auglag_eta, eta * std::pow(rho_t, -0.9));
      } else {
        rho_t = std::min(rho_t * 10.0, params.auglag_rho_max);
        eta = std::max(params.auglag_eta, std::pow(rho_t, -0.1));
      }
    }
    s.branch_lambda[sl * st] = lam_ij;
    s.branch_lambda[(sl + 1) * st] = lam_ji;
    s.branch_s[sl * st] = x[4];
    s.branch_s[(sl + 1) * st] = x[5];
  }

  for (std::size_t a = 0; a < 4; ++a) {
    s.branch_x[(4 * static_cast<std::size_t>(l) + a) * st] = x[a];
  }
  const grid::FlowValues f = grid::eval_flows(
      grid::BranchAdmittance{m.adm[8 * l + 0], m.adm[8 * l + 1], m.adm[8 * l + 2], m.adm[8 * l + 3],
                             m.adm[8 * l + 4], m.adm[8 * l + 5], m.adm[8 * l + 6], m.adm[8 * l + 7]},
      x[0], x[1], x[2], x[3]);
  s.u[(base + kPairPij) * st] = f[grid::kPij];
  s.u[(base + kPairQij) * st] = f[grid::kQij];
  s.u[(base + kPairPji) * st] = f[grid::kPji];
  s.u[(base + kPairQji) * st] = f[grid::kQji];
  s.u[(base + kPairWi) * st] = x[0] * x[0];
  s.u[(base + kPairThi) * st] = x[2];
  s.u[(base + kPairWj) * st] = x[1] * x[1];
  s.u[(base + kPairThj) * st] = x[3];
}

void update_branches(device::Device& dev, const ComponentModel& model, const AdmmParams& params,
                     AdmmState& state, BranchUpdateStats* stats) {
  const ModelView m = make_model_view(model);
  const ScenarioView s = make_scenario_view(model, state);

  std::vector<BranchWorkspace> lanes(static_cast<std::size_t>(dev.workers()));
  for (auto& lane : lanes) lane.solver.options() = params.tron;

  dev.launch_with_lane(model.num_branches,
                       [&lanes, &params, m, s](int l, int lane_id) {
                         branch_update_one(m, params, s, l, lanes[lane_id]);
                       });

  if (stats != nullptr) {
    for (const auto& lane : lanes) {
      stats->tron_iterations += lane.stats.tron_iterations;
      stats->cg_iterations += lane.stats.cg_iterations;
      stats->auglag_iterations += lane.stats.auglag_iterations;
      stats->failures += lane.stats.failures;
    }
  }
}

}  // namespace gridadmm::admm
