// One-level (Mhanna-style [paper ref 3]) ADMM variant and the ablation
// harness comparing it with the paper's convergent two-level scheme.
//
// The one-level variant is the same component decomposition with z frozen
// at zero and no outer augmented-Lagrangian loop; the paper's Section II-B
// points out it carries no convergence guarantee, which the ablation
// benchmark (bench_ablation_twolevel) makes visible.
#pragma once

#include <string>
#include <vector>

#include "admm/params.hpp"
#include "admm/solver.hpp"

namespace gridadmm::admm {

/// Converts parameters to the one-level variant: a single "outer" iteration,
/// no z-update, and an inner iteration budget equal to the two-level total.
AdmmParams make_one_level(AdmmParams params);

struct VariantRun {
  std::string variant;
  AdmmStats stats;
  double objective = 0.0;
  double max_violation = 0.0;
};

/// Runs the two-level and one-level variants on the same network (both cold
/// started) and returns their stats and solution quality, with iteration
/// histories recorded.
std::vector<VariantRun> compare_variants(const grid::Network& net, const AdmmParams& base,
                                         device::Device* dev = nullptr);

}  // namespace gridadmm::admm
