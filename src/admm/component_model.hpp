// Component-based decomposition data layout (paper Section II-B/II-C).
//
// The ACOPF is split into generator, branch, and bus components coupled by
// consensus pairs u_k - v_k + z_k = 0, where u_k is produced by the x-side
// (generators and branches) and v_k by the bus side:
//
//   generator g:  pairs 2g (pg), 2g+1 (qg)
//   branch l:     pairs base+0..7 with base = 2*ngens + 8l, in the order
//                 [pij, qij, pji, qji, wi=vi^2, thi, wj=vj^2, thj]
//
// Flow pairs carry penalty rho_pq, voltage pairs rho_va (Table I). All data
// lives in DeviceBuffers so the kernels run without host transfers.
#pragma once

#include "admm/params.hpp"
#include "device/buffer.hpp"
#include "grid/network.hpp"

namespace gridadmm::admm {

/// Pair index helpers.
inline int gen_pair_base(int gen) { return 2 * gen; }
inline int branch_pair_base(int num_gens, int branch) { return 2 * num_gens + 8 * branch; }

/// Offsets within a branch's 8-pair group.
enum BranchPair : int {
  kPairPij = 0,
  kPairQij = 1,
  kPairPji = 2,
  kPairQji = 3,
  kPairWi = 4,
  kPairThi = 5,
  kPairWj = 6,
  kPairThj = 7
};

/// Device-resident, mostly-static problem data shared by all kernels.
/// Loads and generator bounds are mutable (the tracking driver updates them
/// between periods); everything else is fixed after build.
struct ComponentModel {
  int num_buses = 0;
  int num_gens = 0;
  int num_branches = 0;
  int num_pairs = 0;

  // Per-pair penalty.
  device::DeviceBuffer<double> rho;

  // Generators.
  device::DeviceBuffer<int> gen_bus;
  device::DeviceBuffer<double> gen_pmin, gen_pmax, gen_qmin, gen_qmax;
  device::DeviceBuffer<double> gen_c2, gen_c1, gen_c0;

  // Branches. Admittance packed as 8 doubles per branch
  // (gii,bii,gij,bij,gji,bji,gjj,bjj); voltage bounds as 4 doubles per
  // branch (vmin_i, vmax_i, vmin_j, vmax_j); rate2 holds the squared,
  // capacity-factor-tightened limit (0 = unrated).
  device::DeviceBuffer<int> br_from, br_to;
  device::DeviceBuffer<double> br_adm;
  device::DeviceBuffer<double> br_vbound;
  device::DeviceBuffer<double> br_rate2;

  // Buses: loads/shunts plus CSR adjacency. For each bus, gens list gen
  // indices; branch adjacency stores the *p-flow pair index* kp of each
  // incident branch end (kq = kp+1, kw = kp+4, kth = kp+5 by construction).
  device::DeviceBuffer<double> bus_pd, bus_qd, bus_gs, bus_bs;
  device::DeviceBuffer<int> bus_gen_ptr, bus_gen_list;
  device::DeviceBuffer<int> bus_adj_ptr, bus_adj_kp;
};

/// Builds the model from a finalized network. The objective scale (paper:
/// x2 for the 70k case) is folded into the cost coefficients.
ComponentModel build_component_model(const grid::Network& net, const AdmmParams& params);

}  // namespace gridadmm::admm
