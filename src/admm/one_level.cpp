#include "admm/one_level.hpp"

#include "grid/solution.hpp"

namespace gridadmm::admm {

AdmmParams make_one_level(AdmmParams params) {
  params.two_level = false;
  params.max_inner_iterations *= params.max_outer_iterations;
  params.max_outer_iterations = 1;
  return params;
}

std::vector<VariantRun> compare_variants(const grid::Network& net, const AdmmParams& base,
                                         device::Device* dev) {
  std::vector<VariantRun> runs;
  const AdmmParams one_level = make_one_level(base);
  const struct {
    const char* name;
    const AdmmParams& params;
  } variants[] = {{"two-level", base}, {"one-level", one_level}};
  for (const auto& variant : variants) {
    AdmmSolver solver(net, variant.params, dev);
    solver.set_record_history(true);
    VariantRun run;
    run.variant = variant.name;
    run.stats = solver.solve();
    const auto sol = solver.solution();
    const auto quality = grid::evaluate_solution(solver.network(), sol);
    run.objective = quality.objective;
    run.max_violation = quality.max_violation;
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace gridadmm::admm
