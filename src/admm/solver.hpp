// Two-level ADMM solver for ACOPF (paper Algorithm 1).
//
// Outer loop: augmented Lagrangian on z = 0 (multiplier lambda, penalty
// beta). Inner loop: ADMM over the component decomposition
//   x-update   : generators (closed form) and branches (TRON batch)
//   xbar-update: buses (closed form, eq. (7))
//   z-update   : closed form (eq. (6))
//   y-update   : eq. (8)
// All state is device-resident; one kernel launch per update, no
// host<->device transfers inside the loop. Warm starting reuses the full
// iterate (primal values and all multipliers) across solves.
#pragma once

#include <memory>
#include <vector>

#include "admm/branch_kernel.hpp"
#include "admm/component_model.hpp"
#include "admm/params.hpp"
#include "admm/state.hpp"
#include "admm/warm_start.hpp"
#include "device/device.hpp"
#include "grid/network.hpp"
#include "grid/solution.hpp"

namespace gridadmm::admm {

struct AdmmStats {
  bool converged = false;
  int outer_iterations = 0;
  int inner_iterations = 0;  ///< cumulative over all outer iterations
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  double z_norm = 0.0;
  double solve_seconds = 0.0;
  int rho_rescales = 0;      ///< adaptive-penalty rescaling events
  BranchUpdateStats branch;  ///< cumulative branch-solve work
  // Per-inner-iteration traces (filled when params.record_history).
  std::vector<double> primal_history;
  std::vector<double> dual_history;
  std::vector<double> z_history;  ///< one entry per outer iteration
};

/// The paper Section IV-B cold-start iterate as host arrays: dispatch and
/// voltage magnitudes at the midpoint of their bounds, flat angles, branch
/// flows evaluated from the voltages, line-limit slacks clamped feasible.
/// Shared by AdmmSolver::cold_start and the batch engine's staging so the
/// two cold starts cannot drift apart.
struct ColdStartTemplate {
  std::vector<double> u;         ///< consensus x-side values (v starts equal)
  std::vector<double> w, theta;  ///< bus squared magnitudes / angles
  std::vector<double> pg, qg;    ///< generator dispatch
  std::vector<double> branch_x;  ///< 4 per branch
  std::vector<double> branch_s;  ///< 2 per branch (line-limit slacks)
};
ColdStartTemplate make_cold_start(const grid::Network& net, const ComponentModel& model);

class AdmmSolver {
 public:
  /// Copies the network; `dev` defaults to the process-wide device.
  AdmmSolver(grid::Network net, AdmmParams params, device::Device* dev = nullptr);

  /// Paper Section IV-B initialization: dispatch and voltage magnitudes at
  /// the midpoint of their bounds, flat angles, flows from the voltages,
  /// all multipliers zero.
  void cold_start();

  /// Resets only the outer penalty (beta), keeping the full iterate — call
  /// before re-solving after a load change to warm start.
  void prepare_warm_start();

  /// Runs Algorithm 1 from the current state.
  AdmmStats solve();

  /// Extracts the solution the paper reports: dispatch from generator
  /// components, voltages from bus components (angles shifted so the
  /// reference bus is zero).
  [[nodiscard]] grid::OpfSolution solution() const;

  /// Snapshots the full iterate (primal values, every multiplier, penalty
  /// state) as portable host arrays — the unit of exchange for the warm-start
  /// cache and cross-solver seeding.
  [[nodiscard]] WarmStartIterate export_iterate() const;

  /// Restores a previously exported iterate (dimensions must match this
  /// solver's model; throws ValidationError otherwise) and applies
  /// prepare_warm_start semantics: the iterate's penalties are kept, beta is
  /// only raised to at least beta0.
  void import_iterate(const WarmStartIterate& it);

  /// Updates loads (per-unit, one entry per bus); used by tracking.
  void set_loads(std::span<const double> pd, std::span<const double> qd);
  /// Updates real-power dispatch bounds (per-unit); used for ramp limits.
  void set_generator_pg_bounds(std::span<const double> pmin, std::span<const double> pmax);

  [[nodiscard]] const grid::Network& network() const { return net_; }
  [[nodiscard]] const AdmmParams& params() const { return params_; }
  AdmmParams& params() { return params_; }
  [[nodiscard]] const ComponentModel& model() const { return model_; }
  [[nodiscard]] const AdmmState& state() const { return state_; }
  /// Cumulative adaptive-penalty scaling applied so far (1.0 when adaptive
  /// rho never fired); warm starts that copy the iterate must inherit it so
  /// the cumulative scaling bound keeps holding.
  [[nodiscard]] double rho_scale() const { return rho_scale_; }
  [[nodiscard]] bool record_history() const { return record_history_; }
  void set_record_history(bool record) { record_history_ = record; }

 private:
  grid::Network net_;
  AdmmParams params_;
  device::Device* dev_;
  ComponentModel model_;
  AdmmState state_;
  bool record_history_ = false;
  double rho_scale_ = 1.0;  ///< cumulative adaptive-penalty scaling
};

}  // namespace gridadmm::admm
