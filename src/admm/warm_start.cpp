#include "admm/warm_start.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "grid/network.hpp"
#include "grid/solution.hpp"

namespace gridadmm::admm {

bool WarmStartIterate::matches(const ComponentModel& model) const {
  const auto np = static_cast<std::size_t>(model.num_pairs);
  const auto nb = static_cast<std::size_t>(model.num_buses);
  const auto ng = static_cast<std::size_t>(model.num_gens);
  const auto nl = static_cast<std::size_t>(model.num_branches);
  return u.size() == np && v.size() == np && z.size() == np && y.size() == np &&
         lz.size() == np && rho.size() == np && bus_w.size() == nb && bus_theta.size() == nb &&
         gen_pg.size() == ng && gen_qg.size() == ng && branch_x.size() == 4 * nl &&
         branch_s.size() == 2 * nl && branch_lambda.size() == 2 * nl;
}

void require_matches(const WarmStartIterate& it, const ComponentModel& model,
                     const char* where) {
  if (!it.matches(model)) {
    throw ValidationError(std::string(where) +
                          ": warm-start iterate dimensions do not match the model");
  }
}

grid::OpfSolution to_solution(const WarmStartIterate& it, const grid::Network& net) {
  require_valid(it.bus_w.size() == static_cast<std::size_t>(net.num_buses()) &&
                    it.bus_theta.size() == static_cast<std::size_t>(net.num_buses()) &&
                    it.gen_pg.size() == static_cast<std::size_t>(net.num_generators()) &&
                    it.gen_qg.size() == static_cast<std::size_t>(net.num_generators()),
                "to_solution: iterate dimensions do not match the network");
  grid::OpfSolution sol = grid::OpfSolution::zeros(net);
  const double ref_angle = it.bus_theta[static_cast<std::size_t>(net.ref_bus)];
  for (int i = 0; i < net.num_buses(); ++i) {
    sol.vm[i] = std::sqrt(std::max(it.bus_w[i], 1e-12));
    sol.va[i] = it.bus_theta[i] - ref_angle;
  }
  sol.pg = it.gen_pg;
  sol.qg = it.gen_qg;
  return sol;
}

}  // namespace gridadmm::admm
