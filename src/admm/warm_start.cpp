#include "admm/warm_start.hpp"

#include "common/error.hpp"

namespace gridadmm::admm {

bool WarmStartIterate::matches(const ComponentModel& model) const {
  const auto np = static_cast<std::size_t>(model.num_pairs);
  const auto nb = static_cast<std::size_t>(model.num_buses);
  const auto ng = static_cast<std::size_t>(model.num_gens);
  const auto nl = static_cast<std::size_t>(model.num_branches);
  return u.size() == np && v.size() == np && z.size() == np && y.size() == np &&
         lz.size() == np && rho.size() == np && bus_w.size() == nb && bus_theta.size() == nb &&
         gen_pg.size() == ng && gen_qg.size() == ng && branch_x.size() == 4 * nl &&
         branch_s.size() == 2 * nl && branch_lambda.size() == 2 * nl;
}

void require_matches(const WarmStartIterate& it, const ComponentModel& model,
                     const char* where) {
  if (!it.matches(model)) {
    throw ValidationError(std::string(where) +
                          ": warm-start iterate dimensions do not match the model");
  }
}

}  // namespace gridadmm::admm
