#include "admm/branch_problem.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace gridadmm::admm {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void BranchProblem::bind(const double* adm, const double* vbound, double rate2, const double* d,
                         const double* yk, const double* rhok) {
  adm_.gii = adm[0];
  adm_.bii = adm[1];
  adm_.gij = adm[2];
  adm_.bij = adm[3];
  adm_.gji = adm[4];
  adm_.bji = adm[5];
  adm_.gjj = adm[6];
  adm_.bjj = adm[7];
  std::copy(vbound, vbound + 4, vbound_);
  rate2_ = rate2;
  std::copy(d, d + 8, d_);
  std::copy(yk, yk + 8, yk_);
  std::copy(rhok, rhok + 8, rhok_);
  double rho_max = 1.0;
  for (int k = 0; k < 8; ++k) rho_max = std::max(rho_max, rhok_[k]);
  rho_max_ = rho_max;
  scale_ = 1.0 / rho_max_;
}

void BranchProblem::set_line_multipliers(double lam_ij, double lam_ji, double rho_t) {
  lam_ij_ = lam_ij;
  lam_ji_ = lam_ji;
  rho_t_ = rho_t;
  // rho_max_ was reduced once at bind time; only the rho_t comparison can
  // change between multiplier updates.
  scale_ = 1.0 / std::max(rho_max_, rho_t_);
}

void BranchProblem::bounds(std::span<double> lower, std::span<double> upper) const {
  lower[0] = vbound_[0];
  upper[0] = vbound_[1];
  lower[1] = vbound_[2];
  upper[1] = vbound_[3];
  lower[2] = -kTwoPi;
  upper[2] = kTwoPi;
  lower[3] = -kTwoPi;
  upper[3] = kTwoPi;
  if (rate2_ > 0.0) {
    lower[4] = -rate2_;
    upper[4] = 0.0;
    lower[5] = -rate2_;
    upper[5] = 0.0;
  }
}

double BranchProblem::eval_f(std::span<const double> x) {
  const grid::FlowValues f = grid::eval_flows(adm_, x[0], x[1], x[2], x[3]);
  double obj = 0.0;
  // Flow consensus terms: t = F + d with d = z - v.
  for (int k = 0; k < 4; ++k) {
    const double t = f[k] + d_[k];
    obj += yk_[k] * t + 0.5 * rhok_[k] * t * t;
  }
  // Voltage consensus terms: u-values are vi^2, thi, vj^2, thj.
  const double uw[4] = {x[0] * x[0], x[2], x[1] * x[1], x[3]};
  for (int k = 0; k < 4; ++k) {
    const double t = uw[k] + d_[4 + k];
    obj += yk_[4 + k] * t + 0.5 * rhok_[4 + k] * t * t;
  }
  if (rate2_ > 0.0) {
    const double cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
    const double cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
    obj += lam_ij_ * cij + 0.5 * rho_t_ * cij * cij;
    obj += lam_ji_ * cji + 0.5 * rho_t_ * cji * cji;
  }
  return scale_ * obj;
}

void BranchProblem::eval_gradient(std::span<const double> x, std::span<double> grad) {
  grid::FlowValues f;
  grid::FlowGradients jac;
  grid::eval_flow_gradients(adm_, x[0], x[1], x[2], x[3], f, jac);
  std::fill(grad.begin(), grad.end(), 0.0);
  for (int k = 0; k < 4; ++k) {
    const double w = yk_[k] + rhok_[k] * (f[k] + d_[k]);
    for (int a = 0; a < 4; ++a) grad[a] += w * jac.g[k][a];
  }
  // Voltage terms.
  const double wwi = yk_[4] + rhok_[4] * (x[0] * x[0] + d_[4]);
  grad[0] += wwi * 2.0 * x[0];
  grad[2] += yk_[5] + rhok_[5] * (x[2] + d_[5]);
  const double wwj = yk_[6] + rhok_[6] * (x[1] * x[1] + d_[6]);
  grad[1] += wwj * 2.0 * x[1];
  grad[3] += yk_[7] + rhok_[7] * (x[3] + d_[7]);
  if (rate2_ > 0.0) {
    const double cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
    const double cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
    const double tij = lam_ij_ + rho_t_ * cij;
    const double tji = lam_ji_ + rho_t_ * cji;
    for (int a = 0; a < 4; ++a) {
      grad[a] += tij * (2.0 * f[grid::kPij] * jac.g[grid::kPij][a] +
                        2.0 * f[grid::kQij] * jac.g[grid::kQij][a]);
      grad[a] += tji * (2.0 * f[grid::kPji] * jac.g[grid::kPji][a] +
                        2.0 * f[grid::kQji] * jac.g[grid::kQji][a]);
    }
    grad[4] = tij;
    grad[5] = tji;
  }
  for (double& g : grad) g *= scale_;
}

template <typename Mat>
void BranchProblem::eval_hessian_into(std::span<const double> x, Mat& hess) {
  grid::FlowValues f;
  grid::FlowGradients jac;
  grid::eval_flow_gradients(adm_, x[0], x[1], x[2], x[3], f, jac);
  hess.set_zero();
  double h4[16] = {0};

  // Gauss-Newton parts rho_k J_k J_k^T and curvature weights for the exact
  // flow Hessians.
  std::array<double, 4> curve_w{};
  for (int k = 0; k < 4; ++k) {
    const double w = yk_[k] + rhok_[k] * (f[k] + d_[k]);
    curve_w[k] = w;
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) h4[a * 4 + b] += rhok_[k] * jac.g[k][a] * jac.g[k][b];
    }
  }

  double tij = 0.0, tji = 0.0;
  // Constraint gradients of the rated tail: g_ij = grad of p^2 + q^2 wrt
  // the four voltage variables. Computed once and reused by the slack
  // rows/columns below.
  double g_ij[4] = {0}, g_ji[4] = {0};
  if (rate2_ > 0.0) {
    const double cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
    const double cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
    tij = lam_ij_ + rho_t_ * cij;
    tji = lam_ji_ + rho_t_ * cji;
    // Exact curvature of p^2+q^2: 2 J J^T + 2 p H_p + 2 q H_q, plus the
    // Gauss-Newton term rho_t G G^T with G = grad of c.
    curve_w[grid::kPij] += 2.0 * tij * f[grid::kPij];
    curve_w[grid::kQij] += 2.0 * tij * f[grid::kQij];
    curve_w[grid::kPji] += 2.0 * tji * f[grid::kPji];
    curve_w[grid::kQji] += 2.0 * tji * f[grid::kQji];
    for (int a = 0; a < 4; ++a) {
      g_ij[a] = 2.0 * f[grid::kPij] * jac.g[grid::kPij][a] +
                2.0 * f[grid::kQij] * jac.g[grid::kQij][a];
      g_ji[a] = 2.0 * f[grid::kPji] * jac.g[grid::kPji][a] +
                2.0 * f[grid::kQji] * jac.g[grid::kQji][a];
    }
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        h4[a * 4 + b] += rho_t_ * (g_ij[a] * g_ij[b] + g_ji[a] * g_ji[b]);
        h4[a * 4 + b] += 2.0 * tij * (jac.g[grid::kPij][a] * jac.g[grid::kPij][b] +
                                      jac.g[grid::kQij][a] * jac.g[grid::kQij][b]);
        h4[a * 4 + b] += 2.0 * tji * (jac.g[grid::kPji][a] * jac.g[grid::kPji][b] +
                                      jac.g[grid::kQji][a] * jac.g[grid::kQji][b]);
      }
    }
  }
  grid::accumulate_flow_hessian(adm_, x[0], x[1], x[2], x[3], curve_w, h4);

  // Voltage-pair terms.
  const double wwi = yk_[4] + rhok_[4] * (x[0] * x[0] + d_[4]);
  h4[0] += 2.0 * wwi + rhok_[4] * 4.0 * x[0] * x[0];
  h4[2 * 4 + 2] += rhok_[5];
  const double wwj = yk_[6] + rhok_[6] * (x[1] * x[1] + d_[6]);
  h4[1 * 4 + 1] += 2.0 * wwj + rhok_[6] * 4.0 * x[1] * x[1];
  h4[3 * 4 + 3] += rhok_[7];

  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) hess(a, b) = scale_ * h4[a * 4 + b];
  }
  if (rate2_ > 0.0) {
    for (int a = 0; a < 4; ++a) {
      hess(a, 4) = scale_ * rho_t_ * g_ij[a];
      hess(4, a) = scale_ * rho_t_ * g_ij[a];
      hess(a, 5) = scale_ * rho_t_ * g_ji[a];
      hess(5, a) = scale_ * rho_t_ * g_ji[a];
    }
    hess(4, 4) = scale_ * rho_t_;
    hess(5, 5) = scale_ * rho_t_;
    hess(4, 5) = 0.0;
    hess(5, 4) = 0.0;
  }
}

template void BranchProblem::eval_hessian_into(std::span<const double>, linalg::DenseMatrix&);
template void BranchProblem::eval_hessian_into(std::span<const double>, linalg::SmallMatrix<4>&);
template void BranchProblem::eval_hessian_into(std::span<const double>, linalg::SmallMatrix<6>&);

void BranchProblem::constraint_values(std::span<const double> x, double& cij, double& cji) const {
  const grid::FlowValues f = grid::eval_flows(adm_, x[0], x[1], x[2], x[3]);
  cij = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij] + x[4];
  cji = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji] + x[5];
}

}  // namespace gridadmm::admm
