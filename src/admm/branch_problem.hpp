// The TRON problem for one ADMM branch subproblem (paper eq. (4)) and the
// per-lane workspace that solves it.
//
// Variables are chi = (vi, vj, thi, thj) plus two line-limit slacks
// (sij, sji) when the branch is rated, so dim() is exactly 4 or 6 — a
// compile-time fact the fast path exploits: BranchWorkspace carries a
// SmallTronSolver<4> and a SmallTronSolver<6> (tron/small_tron.hpp) next to
// the generic TronSolver, and the branch kernel dispatches on
// AdmmParams::branch_solver. The Hessian evaluation is a single template
// (eval_hessian_into) instantiated for both DenseMatrix and SmallMatrix
// targets, so the two paths share one copy of the math and stay
// bit-identical.
//
// Split out of branch_kernel.hpp so AdmmState can own persistent
// BranchWorkspace lanes without a header cycle (state.hpp -> this file;
// branch_kernel.hpp -> state.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "grid/flows.hpp"
#include "linalg/dense.hpp"
#include "linalg/small.hpp"
#include "tron/small_tron.hpp"
#include "tron/tron.hpp"

namespace gridadmm::admm {

/// Aggregate branch-solve statistics for one ADMM iteration.
struct BranchUpdateStats {
  int tron_iterations = 0;
  int cg_iterations = 0;
  int auglag_iterations = 0;
  int function_evals = 0;  ///< branch objective evaluations inside TRON
  int failures = 0;        ///< subproblems ending in line-search failure

  BranchUpdateStats& operator+=(const BranchUpdateStats& other) {
    tron_iterations += other.tron_iterations;
    cg_iterations += other.cg_iterations;
    auglag_iterations += other.auglag_iterations;
    function_evals += other.function_evals;
    failures += other.failures;
    return *this;
  }
};

/// The TRON problem for one branch; exposed for unit testing.
class BranchProblem final : public tron::TronProblem {
 public:
  /// Binds problem data for branch `l`. `d[k]`, `yk[k]`, `rhok[k]` are the
  /// pair offsets (z_k - v_k), multipliers, and penalties for the branch's
  /// 8 pairs; adm points to its 8 admittance coefficients.
  void bind(const double* adm, const double* vbound, double rate2, const double* d,
            const double* yk, const double* rhok);
  void set_line_multipliers(double lam_ij, double lam_ji, double rho_t);

  [[nodiscard]] int dim() const override { return rate2_ > 0.0 ? 6 : 4; }
  void bounds(std::span<double> lower, std::span<double> upper) const override;
  double eval_f(std::span<const double> x) override;
  void eval_gradient(std::span<const double> x, std::span<double> grad) override;
  void eval_hessian(std::span<const double> x, linalg::DenseMatrix& hess) override {
    eval_hessian_into(x, hess);
  }

  /// One copy of the Hessian math for every matrix target: DenseMatrix for
  /// the generic TronSolver, SmallMatrix<4>/<6> for the fixed-dimension
  /// fast path. `Mat` needs set_zero() and operator()(int, int).
  template <typename Mat>
  void eval_hessian_into(std::span<const double> x, Mat& hess);

  // ---- Prepared (fused) evaluation: the fast-path surface ----
  //
  // The generic TronProblem interface evaluates f, gradient, and Hessian
  // through independent virtual calls, each re-deriving the branch flows
  // (a sin/cos plus the 4x4 flow Jacobian) from scratch — four
  // trigonometric evaluations per accepted TRON iteration. The prepared
  // surface evaluates the point ONCE: eval_f_prepared computes the flow
  // values, Jacobian, and (rated) constraint subexpressions and caches
  // them; eval_gradient_prepared / eval_hessian_prepared then read the
  // cache. Every cached value is produced by the exact expressions the
  // plain entry points use, so the prepared results are bit-identical to
  // eval_f / eval_gradient / eval_hessian_into at the same x (asserted by
  // tests/test_tron.cpp through whole-solve bit-equality).
  //
  // Contract: eval_gradient_prepared and eval_hessian_prepared require the
  // last eval_f_prepared call to have been at a bitwise-equal x with the
  // same bound data and multipliers — exactly the call pattern of
  // SmallTronSolver, which (re)evaluates gradient and Hessian only at the
  // accepted point whose objective it just evaluated.

  // Defined inline below: these run ~100M times per batch solve and the
  // call overhead of an out-of-line definition is measurable against their
  // few dozen flops.

  /// Evaluates f at x and caches the point (flows, Jacobian, rated tail).
  inline double eval_f_prepared(std::span<const double> x);
  /// Gradient at the prepared point.
  inline void eval_gradient_prepared(std::span<const double> x, std::span<double> grad) const;
  /// Hessian at the prepared point.
  template <typename Mat>
  void eval_hessian_prepared(std::span<const double> x, Mat& hess) const;

  /// Line-limit constraint values c = p^2 + q^2 + s at x (rated only).
  void constraint_values(std::span<const double> x, double& cij, double& cji) const;

 private:
  grid::BranchAdmittance adm_{};
  double vbound_[4] = {0, 0, 0, 0};
  double rate2_ = 0.0;
  double d_[8] = {0};
  double yk_[8] = {0};
  double rhok_[8] = {0};
  double lam_ij_ = 0.0, lam_ji_ = 0.0, rho_t_ = 0.0;
  // Objective normalization: the consensus penalties scale like
  // rho * admittance^2, which can reach 1e7-1e9; TRON's absolute gradient
  // tolerance only makes sense at O(1), so every eval is multiplied by
  // scale_ = 1 / max(1, max_k rho_k, rho_t). The minimizer is unchanged.
  double scale_ = 1.0;
  double rho_max_ = 1.0;  ///< max(1, max_k rho_k), cached at bind time

  // Prepared-point cache (see the fused-evaluation contract above).
  grid::FlowTrig ptrig_;       ///< cos/sin/vv at the prepared x
  grid::FlowValues pf_;        ///< flow values
  grid::FlowGradients pjac_;   ///< flow Jacobian
  double pcij_ = 0.0, pcji_ = 0.0;  ///< constraint values (rated)
  double ptij_ = 0.0, ptji_ = 0.0;  ///< first-order multipliers lam + rho_t c
  double pgij_[4] = {0}, pgji_[4] = {0};  ///< constraint gradients (rated)
};

extern template void BranchProblem::eval_hessian_into(std::span<const double>,
                                                      linalg::DenseMatrix&);
extern template void BranchProblem::eval_hessian_into(std::span<const double>,
                                                      linalg::SmallMatrix<4>&);
extern template void BranchProblem::eval_hessian_into(std::span<const double>,
                                                      linalg::SmallMatrix<6>&);

inline double BranchProblem::eval_f_prepared(std::span<const double> x) {
  // One trigonometric evaluation and one flow-Jacobian pass serve f,
  // gradient, and Hessian at this point. The flow values produced by
  // eval_flow_gradients are bit-identical to eval_flows' (same
  // subexpressions), so the objective below matches eval_f exactly.
  ptrig_ = grid::flow_trig(x[0], x[1], x[2], x[3]);
  grid::eval_flow_gradients(adm_, x[0], x[1], ptrig_, pf_, pjac_);
  double obj = 0.0;
  for (int k = 0; k < 4; ++k) {
    const double t = pf_[k] + d_[k];
    obj += yk_[k] * t + 0.5 * rhok_[k] * t * t;
  }
  const double uw[4] = {x[0] * x[0], x[2], x[1] * x[1], x[3]};
  for (int k = 0; k < 4; ++k) {
    const double t = uw[k] + d_[4 + k];
    obj += yk_[4 + k] * t + 0.5 * rhok_[4 + k] * t * t;
  }
  if (rate2_ > 0.0) {
    pcij_ = pf_[grid::kPij] * pf_[grid::kPij] + pf_[grid::kQij] * pf_[grid::kQij] + x[4];
    pcji_ = pf_[grid::kPji] * pf_[grid::kPji] + pf_[grid::kQji] * pf_[grid::kQji] + x[5];
    ptij_ = lam_ij_ + rho_t_ * pcij_;
    ptji_ = lam_ji_ + rho_t_ * pcji_;
    for (int a = 0; a < 4; ++a) {
      pgij_[a] = 2.0 * pf_[grid::kPij] * pjac_.g[grid::kPij][a] +
                 2.0 * pf_[grid::kQij] * pjac_.g[grid::kQij][a];
      pgji_[a] = 2.0 * pf_[grid::kPji] * pjac_.g[grid::kPji][a] +
                 2.0 * pf_[grid::kQji] * pjac_.g[grid::kQji][a];
    }
    obj += lam_ij_ * pcij_ + 0.5 * rho_t_ * pcij_ * pcij_;
    obj += lam_ji_ * pcji_ + 0.5 * rho_t_ * pcji_ * pcji_;
  }
  return scale_ * obj;
}

inline void BranchProblem::eval_gradient_prepared(std::span<const double> x,
                                                  std::span<double> grad) const {
  std::fill(grad.begin(), grad.end(), 0.0);
  for (int k = 0; k < 4; ++k) {
    const double w = yk_[k] + rhok_[k] * (pf_[k] + d_[k]);
    for (int a = 0; a < 4; ++a) grad[a] += w * pjac_.g[k][a];
  }
  // Voltage terms.
  const double wwi = yk_[4] + rhok_[4] * (x[0] * x[0] + d_[4]);
  grad[0] += wwi * 2.0 * x[0];
  grad[2] += yk_[5] + rhok_[5] * (x[2] + d_[5]);
  const double wwj = yk_[6] + rhok_[6] * (x[1] * x[1] + d_[6]);
  grad[1] += wwj * 2.0 * x[1];
  grad[3] += yk_[7] + rhok_[7] * (x[3] + d_[7]);
  if (rate2_ > 0.0) {
    // pgij_ holds exactly the parenthesized sums the plain gradient forms
    // inline, so these += are the same operations on the same values.
    for (int a = 0; a < 4; ++a) {
      grad[a] += ptij_ * pgij_[a];
      grad[a] += ptji_ * pgji_[a];
    }
    grad[4] = ptij_;
    grad[5] = ptji_;
  }
  for (double& g : grad) g *= scale_;
}

template <typename Mat>
void BranchProblem::eval_hessian_prepared(std::span<const double> x, Mat& hess) const {
  hess.set_zero();
  double h4[16] = {0};

  std::array<double, 4> curve_w{};
  for (int k = 0; k < 4; ++k) {
    const double w = yk_[k] + rhok_[k] * (pf_[k] + d_[k]);
    curve_w[k] = w;
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) h4[a * 4 + b] += rhok_[k] * pjac_.g[k][a] * pjac_.g[k][b];
    }
  }

  if (rate2_ > 0.0) {
    curve_w[grid::kPij] += 2.0 * ptij_ * pf_[grid::kPij];
    curve_w[grid::kQij] += 2.0 * ptij_ * pf_[grid::kQij];
    curve_w[grid::kPji] += 2.0 * ptji_ * pf_[grid::kPji];
    curve_w[grid::kQji] += 2.0 * ptji_ * pf_[grid::kQji];
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        h4[a * 4 + b] += rho_t_ * (pgij_[a] * pgij_[b] + pgji_[a] * pgji_[b]);
        h4[a * 4 + b] += 2.0 * ptij_ * (pjac_.g[grid::kPij][a] * pjac_.g[grid::kPij][b] +
                                        pjac_.g[grid::kQij][a] * pjac_.g[grid::kQij][b]);
        h4[a * 4 + b] += 2.0 * ptji_ * (pjac_.g[grid::kPji][a] * pjac_.g[grid::kPji][b] +
                                        pjac_.g[grid::kQji][a] * pjac_.g[grid::kQji][b]);
      }
    }
  }
  grid::accumulate_flow_hessian(adm_, x[0], x[1], ptrig_, curve_w, h4);

  // Voltage-pair terms.
  const double wwi = yk_[4] + rhok_[4] * (x[0] * x[0] + d_[4]);
  h4[0] += 2.0 * wwi + rhok_[4] * 4.0 * x[0] * x[0];
  h4[2 * 4 + 2] += rhok_[5];
  const double wwj = yk_[6] + rhok_[6] * (x[1] * x[1] + d_[6]);
  h4[1 * 4 + 1] += 2.0 * wwj + rhok_[6] * 4.0 * x[1] * x[1];
  h4[3 * 4 + 3] += rhok_[7];

  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) hess(a, b) = scale_ * h4[a * 4 + b];
  }
  if (rate2_ > 0.0) {
    for (int a = 0; a < 4; ++a) {
      hess(a, 4) = scale_ * rho_t_ * pgij_[a];
      hess(4, a) = scale_ * rho_t_ * pgij_[a];
      hess(a, 5) = scale_ * rho_t_ * pgji_[a];
      hess(5, a) = scale_ * rho_t_ * pgji_[a];
    }
    hess(4, 4) = scale_ * rho_t_;
    hess(5, 5) = scale_ * rho_t_;
    hess(4, 5) = 0.0;
    hess(5, 4) = 0.0;
  }
}

/// Per-worker-lane scratch for the branch updates: one problem instance and
/// the three solver variants — the fixed-dimension pair (unrated branches
/// solve in 4 variables, rated ones in 6) and the generic reference — so
/// one lane serves every branch it processes whatever path is selected.
/// Owned persistently (AdmmState / the batch engine's shards) and reused
/// across all fused steps; the construction counter lets tests assert the
/// hot path never rebuilds workspaces. The pad keeps the stats counters of
/// neighboring lanes off the same cache line.
struct BranchWorkspace {
  BranchWorkspace() { created_counter().fetch_add(1, std::memory_order_relaxed); }

  BranchProblem problem;
  tron::SmallTronSolver<4> solver4;  ///< fast path, unrated (no line limit)
  tron::SmallTronSolver<6> solver6;  ///< fast path, rated (+ 2 slacks)
  tron::TronSolver generic;          ///< reference path (virtual dispatch)
  BranchUpdateStats stats;
  char pad[64] = {0};

  /// Applies one TronOptions to all three solver variants.
  void bind_options(const tron::TronOptions& options) {
    solver4.options() = options;
    solver6.options() = options;
    generic.options() = options;
  }

  /// Process-wide count of default constructions. Steady-state solves must
  /// not grow it: the per-launch workspace-reconstruction bug this PR fixes
  /// showed up as one increment per lane per kernel launch.
  static std::uint64_t created() {
    return created_counter().load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<std::uint64_t>& created_counter() {
    static std::atomic<std::uint64_t> counter{0};
    return counter;
  }
};

}  // namespace gridadmm::admm
