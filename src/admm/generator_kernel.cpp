#include "admm/generator_kernel.hpp"

#include "admm/kernels_core.hpp"

namespace gridadmm::admm {

void update_generators(device::Device& dev, const ComponentModel& model, AdmmState& state) {
  const ModelView m = make_model_view(model);
  const ScenarioView s = make_scenario_view(model, state);
  dev.launch(model.num_gens, [=](int g) { generator_update_one(m, s, g); });
}

}  // namespace gridadmm::admm
