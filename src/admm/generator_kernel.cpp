#include "admm/generator_kernel.hpp"

#include <algorithm>

namespace gridadmm::admm {

void update_generators(device::Device& dev, const ComponentModel& model, AdmmState& state) {
  const auto rho = model.rho.span();
  const auto pmin = model.gen_pmin.span();
  const auto pmax = model.gen_pmax.span();
  const auto qmin = model.gen_qmin.span();
  const auto qmax = model.gen_qmax.span();
  const auto c2 = model.gen_c2.span();
  const auto c1 = model.gen_c1.span();
  const auto v = state.v.span();
  const auto z = state.z.span();
  const auto y = state.y.span();
  auto u = state.u.span();
  auto pg = state.gen_pg.span();
  auto qg = state.gen_qg.span();

  dev.launch(model.num_gens, [=](int g) {
    const int kp = gen_pair_base(g);
    const int kq = kp + 1;
    // Stationarity: (2 c2 + rho) pg = rho (v - z) - y - c1, then clamp.
    const double p_star =
        (rho[kp] * (v[kp] - z[kp]) - y[kp] - c1[g]) / (2.0 * c2[g] + rho[kp]);
    const double q_star = (rho[kq] * (v[kq] - z[kq]) - y[kq]) / rho[kq];
    const double p = std::clamp(p_star, pmin[g], pmax[g]);
    const double q = std::clamp(q_star, qmin[g], qmax[g]);
    pg[g] = p;
    qg[g] = q;
    u[kp] = p;
    u[kq] = q;
  });
}

}  // namespace gridadmm::admm
