// Mutable ADMM iterate state. Everything lives in device buffers; the
// solver loop never copies to the host (the paper's "no data transfer"
// property, asserted by tests/test_admm.cpp).
#pragma once

#include <vector>

#include "admm/branch_problem.hpp"
#include "admm/component_model.hpp"
#include "device/buffer.hpp"

namespace gridadmm::admm {

struct AdmmState {
  // Consensus pairs u_k - v_k + z_k = 0.
  device::DeviceBuffer<double> u;       ///< x-side values (gens/branches)
  device::DeviceBuffer<double> v;       ///< bus-side values
  device::DeviceBuffer<double> z;       ///< artificial variable (two-level)
  device::DeviceBuffer<double> y;       ///< inner ADMM multiplier
  device::DeviceBuffer<double> lz;      ///< outer multiplier lambda on z = 0

  // Bus variables.
  device::DeviceBuffer<double> bus_w;      ///< squared voltage magnitude
  device::DeviceBuffer<double> bus_theta;  ///< voltage angle

  // Generator dispatch.
  device::DeviceBuffer<double> gen_pg, gen_qg;

  // Branch subproblem variables: x = (vi, vj, ti, tj) per branch, slacks
  // (sij, sji), and the persistent line-limit augmented-Lagrangian
  // multipliers.
  device::DeviceBuffer<double> branch_x;       ///< 4 per branch
  device::DeviceBuffer<double> branch_s;       ///< 2 per branch
  device::DeviceBuffer<double> branch_lambda;  ///< 2 per branch

  double beta = 0.0;  ///< outer penalty on z = 0

  /// Persistent per-worker-lane TRON workspaces for the branch kernel:
  /// sized lazily to the device's worker count on the first branch launch
  /// and reused across every subsequent launch and solve, so the hot loop
  /// never reconstructs solver state (host-side zero-steady-state-
  /// allocation, the branch-phase analogue of the device-buffer invariant).
  std::vector<BranchWorkspace> branch_lanes;

  /// Allocates all buffers for the given model (zero-filled).
  static AdmmState zeros(const ComponentModel& model);
};

inline AdmmState AdmmState::zeros(const ComponentModel& model) {
  AdmmState s;
  const std::size_t np = static_cast<std::size_t>(model.num_pairs);
  s.u.resize(np);
  s.v.resize(np);
  s.z.resize(np);
  s.y.resize(np);
  s.lz.resize(np);
  s.bus_w.resize(static_cast<std::size_t>(model.num_buses));
  s.bus_theta.resize(static_cast<std::size_t>(model.num_buses));
  s.gen_pg.resize(static_cast<std::size_t>(model.num_gens));
  s.gen_qg.resize(static_cast<std::size_t>(model.num_gens));
  s.branch_x.resize(static_cast<std::size_t>(4 * model.num_branches));
  s.branch_s.resize(static_cast<std::size_t>(2 * model.num_branches));
  s.branch_lambda.resize(static_cast<std::size_t>(2 * model.num_branches));
  return s;
}

}  // namespace gridadmm::admm
