// Bus component update (paper eq. (7)).
//
// Per bus, the subproblem is a diagonal-Q equality-constrained QP over the
// bus variables (w_i, theta_i) and the duplicate copies of adjacent
// generator and flow variables, subject to the two power balance rows
// (1b)-(1c). The multiplier is obtained from a 2x2 Schur complement
//   mu = (A Q^-1 A^T)^-1 (A Q^-1 c - b),  v = Q^-1 (c - A^T mu),
// which this kernel evaluates in closed form, one device block per bus.
#pragma once

#include <span>

#include "admm/state.hpp"
#include "device/device.hpp"

namespace gridadmm::admm {

/// Bus update. When `partial_dual` is non-empty (one slot per worker lane,
/// stride 8), the kernel also accumulates the penalty-normalized ADMM dual
/// residual max_k |v_k - v_k_prev| while overwriting v, so the solver loop
/// needs neither a v snapshot nor a reduction pass.
void update_buses(device::Device& dev, const ComponentModel& model, AdmmState& state,
                  std::span<double> partial_dual = {});

}  // namespace gridadmm::admm
