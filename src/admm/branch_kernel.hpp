// Branch component update: the bound-constrained nonconvex subproblem of
// paper eq. (4).
//
// Variables are chi = (vi, vj, thi, thj) plus two line-limit slacks
// (sij, sji) when the branch is rated. Flow variables pij/qij/pji/qji are
// substituted by their closed forms (1i)-(1l), the consensus terms are
// quadratic penalties, and the line limits p^2+q^2+s = 0 (s in [-rate^2, 0])
// are handled by a LANCELOT-style augmented Lagrangian whose multipliers
// persist across ADMM iterations (warm start). Each subproblem is solved by
// TRON — by default the fixed-dimension devirtualized fast path
// (tron/small_tron.hpp; AdmmParams::branch_solver selects the generic
// reference instead, bit-identically). The batch runs one device block per
// branch, exactly the ExaTron execution model of paper Section III-B; see
// admm/branch_problem.hpp for the problem and per-lane workspace types.
#pragma once

#include "admm/branch_problem.hpp"
#include "admm/kernels_core.hpp"
#include "admm/params.hpp"
#include "admm/state.hpp"
#include "device/device.hpp"

namespace gridadmm::admm {

void update_branches(device::Device& dev, const ComponentModel& model, const AdmmParams& params,
                     AdmmState& state, BranchUpdateStats* stats = nullptr);

/// Solves the branch-l subproblem against the scenario's iterate: the full
/// TRON (+ LANCELOT augmented-Lagrangian when rated) solve of one device
/// block. Exposed so the fused multi-scenario batch kernel can reuse it.
/// Out-of-service branches (scenario outage mask) are skipped.
void branch_update_one(const ModelView& m, const AdmmParams& params, const ScenarioView& s, int l,
                       BranchWorkspace& ws);

/// Sizes `lanes` to one workspace per device worker and rebinds the TRON
/// options, which may have changed between solves. When the size already
/// matches — every call after the first, since a state's lanes always
/// serve the same device — the workspaces are reused untouched; a worker-
/// count change reconstructs the vector.
void ensure_branch_lanes(std::vector<BranchWorkspace>& lanes, int workers,
                         const AdmmParams& params);

}  // namespace gridadmm::admm
