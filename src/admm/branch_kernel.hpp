// Branch component update: the bound-constrained nonconvex subproblem of
// paper eq. (4).
//
// Variables are chi = (vi, vj, thi, thj) plus two line-limit slacks
// (sij, sji) when the branch is rated. Flow variables pij/qij/pji/qji are
// substituted by their closed forms (1i)-(1l), the consensus terms are
// quadratic penalties, and the line limits p^2+q^2+s = 0 (s in [-rate^2, 0])
// are handled by a LANCELOT-style augmented Lagrangian whose multipliers
// persist across ADMM iterations (warm start). Each subproblem is solved by
// TRON; the batch runs one device block per branch, exactly the ExaTron
// execution model of paper Section III-B.
#pragma once

#include "admm/kernels_core.hpp"
#include "admm/params.hpp"
#include "admm/state.hpp"
#include "device/device.hpp"
#include "grid/flows.hpp"
#include "tron/tron.hpp"

namespace gridadmm::admm {

/// Aggregate branch-solve statistics for one ADMM iteration.
struct BranchUpdateStats {
  int tron_iterations = 0;
  int cg_iterations = 0;
  int auglag_iterations = 0;
  int failures = 0;  ///< subproblems ending in line-search failure
};

void update_branches(device::Device& dev, const ComponentModel& model, const AdmmParams& params,
                     AdmmState& state, BranchUpdateStats* stats = nullptr);

/// The TRON problem for one branch; exposed for unit testing.
class BranchProblem final : public tron::TronProblem {
 public:
  /// Binds problem data for branch `l`. `d[k]`, `yk[k]`, `rhok[k]` are the
  /// pair offsets (z_k - v_k), multipliers, and penalties for the branch's
  /// 8 pairs; adm points to its 8 admittance coefficients.
  void bind(const double* adm, const double* vbound, double rate2, const double* d,
            const double* yk, const double* rhok);
  void set_line_multipliers(double lam_ij, double lam_ji, double rho_t);

  [[nodiscard]] int dim() const override { return rate2_ > 0.0 ? 6 : 4; }
  void bounds(std::span<double> lower, std::span<double> upper) const override;
  double eval_f(std::span<const double> x) override;
  void eval_gradient(std::span<const double> x, std::span<double> grad) override;
  void eval_hessian(std::span<const double> x, linalg::DenseMatrix& hess) override;

  /// Line-limit constraint values c = p^2 + q^2 + s at x (rated only).
  void constraint_values(std::span<const double> x, double& cij, double& cji) const;

 private:
  grid::BranchAdmittance adm_{};
  double vbound_[4] = {0, 0, 0, 0};
  double rate2_ = 0.0;
  double d_[8] = {0};
  double yk_[8] = {0};
  double rhok_[8] = {0};
  double lam_ij_ = 0.0, lam_ji_ = 0.0, rho_t_ = 0.0;
  // Objective normalization: the consensus penalties scale like
  // rho * admittance^2, which can reach 1e7-1e9; TRON's absolute gradient
  // tolerance only makes sense at O(1), so every eval is multiplied by
  // scale_ = 1 / max(1, max_k rho_k, rho_t). The minimizer is unchanged.
  double scale_ = 1.0;
};

/// Per-worker-lane scratch for the branch updates: one TRON solver and one
/// problem instance, reused across all branches the lane processes. The pad
/// keeps the stats counters of neighboring lanes off the same cache line.
struct BranchWorkspace {
  tron::TronSolver solver;
  BranchProblem problem;
  BranchUpdateStats stats;
  char pad[64] = {0};
};

/// Solves the branch-l subproblem against the scenario's iterate: the full
/// TRON (+ LANCELOT augmented-Lagrangian when rated) solve of one device
/// block. Exposed so the fused multi-scenario batch kernel can reuse it.
/// Out-of-service branches (scenario outage mask) are skipped.
void branch_update_one(const ModelView& m, const AdmmParams& params, const ScenarioView& s, int l,
                       BranchWorkspace& ws);

}  // namespace gridadmm::admm
