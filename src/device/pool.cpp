#include "device/pool.hpp"

#include "common/error.hpp"

namespace gridadmm::device {

DevicePool::DevicePool(int num_devices, int workers_per_device) {
  require(num_devices > 0, "DevicePool: num_devices must be positive");
  int workers = workers_per_device;
  if (workers <= 0) {
    workers = default_worker_count() / num_devices;
    if (workers < 1) workers = 1;
  }
  devices_.reserve(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    devices_.push_back(std::make_unique<Device>(workers));
    devices_.back()->set_trace_id(d);
  }
}

Device& DevicePool::device(int d) {
  require(d >= 0 && d < size(), "DevicePool::device: index out of range");
  return *devices_[static_cast<std::size_t>(d)];
}

const Device& DevicePool::device(int d) const {
  require(d >= 0 && d < size(), "DevicePool::device: index out of range");
  return *devices_[static_cast<std::size_t>(d)];
}

LaunchStats DevicePool::aggregate_stats() const {
  LaunchStats total;
  for (const auto& dev : devices_) total += dev->stats();
  return total;
}

void DevicePool::reset_stats() {
  for (auto& dev : devices_) dev->reset_stats();
}

}  // namespace gridadmm::device
