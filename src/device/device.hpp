// Simulated-GPU execution layer.
//
// The paper runs every ADMM kernel on an Nvidia GV100 with a CUDA-style
// programming model: a kernel is launched over a 1-D grid of thread blocks,
// one block per independent subproblem, and all state lives in device memory
// so no host<->device transfer happens inside the solver loop.
//
// This sandbox has no GPU, so this module reproduces the *programming model*
// and the *execution semantics* on a persistent CPU worker pool:
//   - Device::launch(nblocks, kernel) invokes kernel(block) for every block
//     index, scheduling blocks dynamically over the workers;
//   - DeviceBuffer<T> marks arrays as device-resident and counts every
//     host<->device transfer, so tests can assert the solver loop performs
//     zero transfers exactly as the paper claims;
//   - LaunchStats records kernel launches for the scaling benchmarks.
//
// The substitution is documented in DESIGN.md section 2.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gridadmm::device {

/// Aggregate statistics for one Device instance.
struct LaunchStats {
  std::uint64_t launches = 0;        ///< number of kernel launches
  std::uint64_t blocks = 0;          ///< total blocks executed
  double busy_seconds = 0.0;         ///< wall time spent inside launches

  LaunchStats& operator+=(const LaunchStats& other) {
    launches += other.launches;
    blocks += other.blocks;
    busy_seconds += other.busy_seconds;
    return *this;
  }
};

/// Delta between two snapshots of the same device's counters.
inline LaunchStats operator-(const LaunchStats& a, const LaunchStats& b) {
  LaunchStats d;
  d.launches = a.launches - b.launches;
  d.blocks = a.blocks - b.blocks;
  d.busy_seconds = a.busy_seconds - b.busy_seconds;
  return d;
}

/// A persistent pool of workers exposing a CUDA-like bulk launch API.
/// Thread-compatible: a Device may be shared, but launches are serialized.
class Device {
 public:
  /// Creates a device with `workers` threads (0 = hardware concurrency).
  explicit Device(int workers = 0);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  ~Device();

  /// Number of worker threads (the simulated SM count).
  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs kernel(block) for block in [0, nblocks). Blocks until every
  /// kernel instance finished (CUDA launch + synchronize). Exceptions thrown
  /// by kernel instances are captured and the first one is rethrown here.
  void launch(int nblocks, const std::function<void(int)>& kernel);

  /// Like launch(), but hands the worker lane index [0, workers) to the
  /// kernel so it can use per-lane scratch memory without synchronization.
  void launch_with_lane(int nblocks, const std::function<void(int, int)>& kernel);

  [[nodiscard]] const LaunchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LaunchStats{}; }

  /// Device label in trace output ("dev" arg of device.launch spans).
  /// DevicePool numbers its devices; the process-wide default stays 0.
  void set_trace_id(int id) { trace_id_ = id; }
  [[nodiscard]] int trace_id() const { return trace_id_; }

 private:
  struct Job {
    const std::function<void(int, int)>* kernel = nullptr;
    int nblocks = 0;
    std::atomic<int> next_block{0};
    std::atomic<int> remaining{0};
  };

  void worker_main(int lane);
  void run_job(const std::function<void(int, int)>& kernel, int nblocks);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  Job job_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::mutex error_mu_;
  LaunchStats stats_;
  std::mutex launch_mu_;
  int trace_id_ = 0;
};

/// Returns a process-wide default device (lazily constructed).
Device& default_device();

/// The worker count a default Device resolves to: hardware concurrency
/// with a fixed fallback when it is unknown. Shared by Device, DevicePool's
/// even split, and the bench harnesses' telemetry so none can drift.
int default_worker_count();

/// RAII attribution of kernel launches: every launch issued on `dev` during
/// the scope's lifetime is accumulated into `out` at destruction. Used by
/// the batch engine to report launches per scenario batch, and by tests to
/// assert the fused batch solve issues fewer launches than sequential
/// solves. Scopes on the same device may nest; each sees its own window.
class LaunchStatsScope {
 public:
  LaunchStatsScope(Device& dev, LaunchStats& out)
      : dev_(dev), out_(out), start_(dev.stats()) {}
  LaunchStatsScope(const LaunchStatsScope&) = delete;
  LaunchStatsScope& operator=(const LaunchStatsScope&) = delete;
  ~LaunchStatsScope() { out_ += dev_.stats() - start_; }

 private:
  Device& dev_;
  LaunchStats& out_;
  LaunchStats start_;
};

}  // namespace gridadmm::device
