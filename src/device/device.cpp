#include "device/device.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "device/fault.hpp"
#include "obs/trace.hpp"

namespace gridadmm::device {

namespace {
// Blocks are handed to workers in chunks to amortize the atomic fetch for
// very small kernels (bus/generator updates are a few flops per block).
int chunk_size(int nblocks, int workers) {
  const int target_chunks = workers * 8;
  int chunk = nblocks / (target_chunks > 0 ? target_chunks : 1);
  if (chunk < 1) chunk = 1;
  if (chunk > 1024) chunk = 1024;
  return chunk;
}
}  // namespace

int default_worker_count() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 4;
}

Device::Device(int workers) {
  const int n = workers > 0 ? workers : default_worker_count();
  threads_.reserve(static_cast<std::size_t>(n));
  for (int lane = 0; lane < n; ++lane) {
    threads_.emplace_back([this, lane] { worker_main(lane); });
  }
}

Device::~Device() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : threads_) t.join();
}

void Device::worker_main(int lane) {
  obs::set_thread_name("device.worker");
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(int, int)>* kernel = nullptr;
    int nblocks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      kernel = job_.kernel;
      nblocks = job_.nblocks;
    }
    // Per-job execution span: records the window this worker spent running
    // blocks of the launch (skipped when the worker woke too late to claim
    // any), so the trace shows the launch fanned out across worker threads.
    const std::uint64_t exec_start = obs::Tracer::enabled() ? obs::now_ns() : 0;
    std::uint64_t executed = 0;
    const int chunk = chunk_size(nblocks, workers());
    while (true) {
      const int begin = job_.next_block.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= nblocks) break;
      const int end = begin + chunk < nblocks ? begin + chunk : nblocks;
      executed += static_cast<std::uint64_t>(end - begin);
      for (int block = begin; block < end; ++block) {
        try {
          (*kernel)(block, lane);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
      }
    }
    if (executed > 0 && obs::Tracer::enabled()) {
      obs::span_between("device.exec", exec_start, obs::now_ns(), "blocks", executed, "dev",
                        static_cast<std::uint64_t>(trace_id_));
    }
    // Acknowledge completion. `remaining` counts workers, not blocks, so the
    // launcher cannot recycle the job slot while any worker may still touch
    // the shared block counter.
    if (job_.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void Device::run_job(const std::function<void(int, int)>& kernel, int nblocks) {
  if (nblocks < 0) throw GridError("Device::launch: negative block count");
  const std::lock_guard<std::mutex> serialize(launch_mu_);
  // Fault hook before any work: an injected failure models a launch the
  // driver rejected (nothing executed, stats unchanged), a spike models a
  // stalled launch. One relaxed load when the injector is off.
  if (FaultInjector::enabled()) FaultInjector::instance().on_launch(trace_id_);
  const obs::TraceSpan launch_span("device.launch", "blocks",
                                   static_cast<std::uint64_t>(nblocks), "dev",
                                   static_cast<std::uint64_t>(trace_id_));
  WallTimer timer;
  if (nblocks > 0 && nblocks <= 8) {
    // Tiny launches run inline on the calling thread (lane 0): waking the
    // pool costs more than the work. Launches are serialized, so lane 0
    // scratch cannot be in use by a worker.
    for (int block = 0; block < nblocks; ++block) kernel(block, 0);
    stats_.launches += 1;
    stats_.blocks += static_cast<std::uint64_t>(nblocks);
    stats_.busy_seconds += timer.seconds();
    return;
  }
  if (nblocks > 0) {
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      first_error_ = nullptr;
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      job_.kernel = &kernel;
      job_.nblocks = nblocks;
      job_.next_block.store(0, std::memory_order_relaxed);
      job_.remaining.store(workers(), std::memory_order_relaxed);
      ++generation_;
    }
    cv_job_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [&] { return job_.remaining.load(std::memory_order_acquire) == 0; });
    }
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      err = first_error_;
    }
    if (err) std::rethrow_exception(err);
  }
  stats_.launches += 1;
  stats_.blocks += static_cast<std::uint64_t>(nblocks);
  stats_.busy_seconds += timer.seconds();
}

void Device::launch(int nblocks, const std::function<void(int)>& kernel) {
  const std::function<void(int, int)> wrapped = [&kernel](int block, int) { kernel(block); };
  run_job(wrapped, nblocks);
}

void Device::launch_with_lane(int nblocks, const std::function<void(int, int)>& kernel) {
  run_job(kernel, nblocks);
}

Device& default_device() {
  static Device device;
  return device;
}

}  // namespace gridadmm::device
