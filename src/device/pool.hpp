// DevicePool: N independent simulated devices for sharded execution.
//
// The batch engine shards a scenario set across the pool — each shard's
// fused kernels run on its own Device (its own worker pool, its own
// LaunchStats), so shard launches proceed concurrently and every launch is
// attributable to the device that issued it. Device itself is unchanged;
// the pool only owns instances and aggregates their counters.
#pragma once

#include <memory>
#include <vector>

#include "device/device.hpp"

namespace gridadmm::device {

/// A fixed-size pool of independent Devices.
///
/// By default the host's hardware concurrency is split evenly across the
/// pool (max(1, hw / num_devices) workers per device), so a D-device pool
/// uses roughly the same total parallelism as one default Device — sharding
/// reallocates workers, it does not oversubscribe them.
class DevicePool {
 public:
  /// Creates `num_devices` devices with `workers_per_device` threads each
  /// (0 = split hardware concurrency evenly across the pool).
  explicit DevicePool(int num_devices, int workers_per_device = 0);
  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }

  [[nodiscard]] Device& device(int d);
  [[nodiscard]] const Device& device(int d) const;

  /// Counters of one device (per-shard attribution).
  [[nodiscard]] const LaunchStats& stats(int d) const { return device(d).stats(); }

  /// Sum of every device's counters.
  [[nodiscard]] LaunchStats aggregate_stats() const;

  void reset_stats();

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace gridadmm::device
