#include "device/fault.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"

namespace gridadmm::device {

std::atomic<bool> FaultInjector::enabled_{false};

namespace {

/// Uniform double in [0, 1) from a pure (seed, event, stream) hash, so the
/// k-th event's fate never depends on thread interleaving history.
double event_uniform(std::uint64_t seed, std::uint64_t k, std::uint64_t stream) {
  std::uint64_t state = seed ^ (k * 0x9E3779B97F4A7C15ULL) ^ (stream << 56);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double parse_probability(const std::string& key, const std::string& value) {
  double p = 0.0;
  try {
    p = std::stod(value);
  } catch (const std::exception&) {
    throw ValidationError("FaultInjector: bad value for '" + key + "': " + value);
  }
  require_valid(std::isfinite(p) && p >= 0.0 && p <= 1.0,
                "FaultInjector: '" + key + "' must be a probability in [0, 1]");
  return p;
}

std::uint64_t parse_count(const std::string& key, const std::string& value) {
  try {
    const long long n = std::stoll(value);
    require_valid(n >= 0, "FaultInjector: '" + key + "' must be non-negative");
    return static_cast<std::uint64_t>(n);
  } catch (const ValidationError&) {
    throw;
  } catch (const std::exception&) {
    throw ValidationError("FaultInjector: bad value for '" + key + "': " + value);
  }
}

/// Duration with an optional s/ms/us suffix (default seconds).
double parse_duration(const std::string& key, std::string value) {
  double scale = 1.0;
  if (value.size() > 2 && value.compare(value.size() - 2, 2, "ms") == 0) {
    scale = 1e-3;
    value.resize(value.size() - 2);
  } else if (value.size() > 2 && value.compare(value.size() - 2, 2, "us") == 0) {
    scale = 1e-6;
    value.resize(value.size() - 2);
  } else if (value.size() > 1 && value.back() == 's') {
    value.resize(value.size() - 1);
  }
  double seconds = 0.0;
  try {
    seconds = std::stod(value) * scale;
  } catch (const std::exception&) {
    throw ValidationError("FaultInjector: bad duration for '" + key + "'");
  }
  require_valid(std::isfinite(seconds) && seconds >= 0.0,
                "FaultInjector: '" + key + "' duration must be finite and non-negative");
  return seconds;
}

/// Arms the injector from GRIDADMM_FAULTS at static-init time, so the
/// `enabled()` gate is already true by the time any Device launches. A bad
/// spec logs and leaves the injector off rather than aborting the process.
const bool env_armed = [] {
  const auto spec = Options::env("GRIDADMM_FAULTS");
  if (!spec.has_value() || spec->empty()) return false;
  try {
    FaultInjector::instance().configure(FaultInjector::parse_spec(*spec));
  } catch (const std::exception& e) {
    log::warn("GRIDADMM_FAULTS ignored: ", e.what());
    return false;
  }
  return true;
}();

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultPlan FaultInjector::parse_spec(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string field = spec.substr(pos, end - pos);
    pos = end + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    require_valid(eq != std::string::npos,
                  "FaultInjector: expected key=value, got '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_count(key, value);
    } else if (key == "launch") {
      plan.launch_fail_probability = parse_probability(key, value);
    } else if (key == "alloc") {
      plan.alloc_fail_probability = parse_probability(key, value);
    } else if (key == "latency") {
      const std::size_t colon = value.find(':');
      require_valid(colon != std::string::npos,
                    "FaultInjector: 'latency' needs probability:duration (e.g. 0.01:2ms)");
      plan.latency_spike_probability = parse_probability(key, value.substr(0, colon));
      plan.latency_spike_seconds = parse_duration(key, value.substr(colon + 1));
    } else if (key == "shard") {
      try {
        plan.shard = std::stoi(value);
      } catch (const std::exception&) {
        throw ValidationError("FaultInjector: bad value for 'shard': " + value);
      }
      require_valid(plan.shard >= -1, "FaultInjector: 'shard' must be >= -1");
    } else if (key == "warmup") {
      plan.warmup = parse_count(key, value);
    } else if (key == "cooldown") {
      plan.cooldown = parse_count(key, value);
    } else if (key == "limit") {
      plan.limit = parse_count(key, value);
    } else {
      throw ValidationError("FaultInjector: unknown spec key '" + key + "'");
    }
  }
  return plan;
}

void FaultInjector::configure(const FaultPlan& plan) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
    counters_ = FaultCounters{};
    cooldown_remaining_ = 0;
    injected_ = 0;
  }
  enabled_.store(plan.any_fault(), std::memory_order_relaxed);
}

void FaultInjector::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

FaultCounters FaultInjector::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

FaultPlan FaultInjector::plan() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

FaultInjector::Action FaultInjector::decide_locked(std::uint64_t k, double fail_p,
                                                   double spike_p) {
  if (k < plan_.warmup) return Action::kNone;
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return Action::kNone;
  }
  if (plan_.limit > 0 && injected_ >= plan_.limit) return Action::kNone;
  Action action = Action::kNone;
  if (fail_p > 0.0 && event_uniform(plan_.seed, k, 1) < fail_p) {
    action = Action::kFail;
  } else if (spike_p > 0.0 && event_uniform(plan_.seed, k, 2) < spike_p) {
    action = Action::kSpike;
  }
  if (action != Action::kNone) {
    ++injected_;
    cooldown_remaining_ = plan_.cooldown;
  }
  return action;
}

void FaultInjector::on_launch(int device_id) {
  Action action = Action::kNone;
  double spike_seconds = 0.0;
  std::uint64_t event = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (plan_.shard >= 0 && device_id != plan_.shard) return;
    event = counters_.events_seen++;
    action = decide_locked(event, plan_.launch_fail_probability,
                           plan_.latency_spike_probability);
    if (action == Action::kFail) ++counters_.launch_failures;
    if (action == Action::kSpike) {
      ++counters_.latency_spikes;
      spike_seconds = plan_.latency_spike_seconds;
    }
  }
  // Act outside the lock: a spike must not stall other devices' hooks.
  if (action == Action::kSpike && spike_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(spike_seconds));
  } else if (action == Action::kFail) {
    throw TransientDeviceError("injected transient launch failure (device " +
                               std::to_string(device_id) + ", event " +
                               std::to_string(event) + ")");
  }
}

void FaultInjector::on_alloc(std::uint64_t bytes) {
  std::uint64_t event = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (plan_.alloc_fail_probability <= 0.0) return;
    event = counters_.events_seen++;
    if (decide_locked(event, plan_.alloc_fail_probability, 0.0) != Action::kFail) return;
    ++counters_.alloc_failures;
  }
  throw TransientDeviceError("injected transient allocation failure (" +
                             std::to_string(bytes) + " bytes, event " +
                             std::to_string(event) + ")");
}

}  // namespace gridadmm::device
