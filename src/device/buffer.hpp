// Device-resident array with explicit, counted host<->device transfers.
//
// In the paper all ADMM state lives in GPU memory and the solver performs
// zero transfers during iterations; tests assert the same property here by
// snapshotting transfer_stats() around the solve loop.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "device/fault.hpp"

namespace gridadmm::device {

/// Cache-line/SIMD alignment of every device allocation. The interleaved
/// batch layout stores one component's values for a tile of scenario lanes
/// as a contiguous row; 64-byte alignment keeps those rows (and the
/// reduce_row_stride partial-reduction rows) from straddling cache lines,
/// and gives the compiler an aligned base for vectorized lane loops.
inline constexpr std::size_t kDeviceAlignment = 64;

/// Minimal over-aligned allocator (models cudaMalloc's 256-byte guarantee,
/// scaled down to one cache line). Propagates through vector moves/swaps
/// like the default allocator: it is stateless.
template <typename T, std::size_t Alignment = kDeviceAlignment>
struct AlignedAllocator {
  using value_type = T;
  /// Explicit rebind: allocator_traits cannot derive it for a template
  /// with a non-type (alignment) parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Host-side vector with device-grade alignment, for scratch that kernels
/// write through raw pointers (per-lane partial-reduction rows).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Snapshot of the process-wide host<->device transfer counters. The
/// backing counters are atomic: batch solves may upload/download from
/// several threads at once (one per serve-layer device worker), so plain
/// increments would race.
struct TransferStats {
  std::uint64_t host_to_device = 0;  ///< number of upload calls
  std::uint64_t device_to_host = 0;  ///< number of download calls
  std::uint64_t bytes = 0;           ///< total bytes moved either way
};

namespace detail {

struct TransferCounters {
  std::atomic<std::uint64_t> host_to_device{0};
  std::atomic<std::uint64_t> device_to_host{0};
  std::atomic<std::uint64_t> bytes{0};
};

inline TransferCounters& transfer_counters() {
  static TransferCounters counters;
  return counters;
}

inline void record_upload(std::uint64_t bytes) {
  auto& c = transfer_counters();
  c.host_to_device.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

inline void record_download(std::uint64_t bytes) {
  auto& c = transfer_counters();
  c.device_to_host.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace detail

inline TransferStats transfer_stats() {
  const auto& c = detail::transfer_counters();
  TransferStats snapshot;
  snapshot.host_to_device = c.host_to_device.load(std::memory_order_relaxed);
  snapshot.device_to_host = c.device_to_host.load(std::memory_order_relaxed);
  snapshot.bytes = c.bytes.load(std::memory_order_relaxed);
  return snapshot;
}

/// Snapshot of the process-wide device-memory accounting. Every DeviceBuffer
/// reports its resident bytes, so tests can assert memory-shape claims — in
/// particular that ping-pong tracking keeps live batch state constant in the
/// horizon length instead of O(periods).
struct AllocationStats {
  std::uint64_t live_bytes = 0;   ///< device bytes resident right now
  std::uint64_t peak_bytes = 0;   ///< high-water mark since reset_allocation_peak()
  std::uint64_t allocations = 0;  ///< growth events (allocs + grows)
};

namespace detail {

struct AllocationCounters {
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> peak_bytes{0};
  std::atomic<std::uint64_t> allocations{0};
};

inline AllocationCounters& allocation_counters() {
  static AllocationCounters counters;
  return counters;
}

inline void record_device_alloc(std::uint64_t bytes) {
  auto& c = allocation_counters();
  c.allocations.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t live = c.live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = c.peak_bytes.load(std::memory_order_relaxed);
  while (peak < live &&
         !c.peak_bytes.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

inline void record_device_free(std::uint64_t bytes) {
  allocation_counters().live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace detail

inline AllocationStats allocation_stats() {
  const auto& c = detail::allocation_counters();
  AllocationStats snapshot;
  snapshot.live_bytes = c.live_bytes.load(std::memory_order_relaxed);
  snapshot.peak_bytes = c.peak_bytes.load(std::memory_order_relaxed);
  snapshot.allocations = c.allocations.load(std::memory_order_relaxed);
  return snapshot;
}

/// Rebases the high-water mark to the current live figure, so a test can
/// measure the peak of exactly one workload.
inline void reset_allocation_peak() {
  auto& c = detail::allocation_counters();
  c.peak_bytes.store(c.live_bytes.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

/// An array that models GPU global memory. Direct element access is allowed
/// only from kernels (we cannot enforce that in a simulation, but the API
/// nudges call sites to treat `span()` as device-side and go through
/// upload()/download() at the host boundary). Allocations are 64-byte
/// aligned (kDeviceAlignment), so interleaved tile rows start on cache-line
/// boundaries.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n, T fill = T{}) : data_(n, fill) { account(); }
  ~DeviceBuffer() { release(); }

  // Copies and moves keep the process-wide allocation accounting exact:
  // a copy is a second device allocation, a move transfers ownership.
  DeviceBuffer(const DeviceBuffer& other) : data_(other.data_) { account(); }
  DeviceBuffer(DeviceBuffer&& other) noexcept
      : data_(std::move(other.data_)), accounted_bytes_(other.accounted_bytes_) {
    other.data_.clear();
    other.accounted_bytes_ = 0;
  }
  DeviceBuffer& operator=(const DeviceBuffer& other) {
    if (this != &other) {
      data_ = other.data_;
      account();
    }
    return *this;
  }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::move(other.data_);
      accounted_bytes_ = other.accounted_bytes_;
      other.data_.clear();
      other.accounted_bytes_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  void resize(std::size_t n, T fill = T{}) {
    data_.assign(n, fill);
    account();
  }
  void fill(T value) { data_.assign(data_.size(), value); }

  /// Device-side view (used inside kernels).
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const { return {data_.data(), data_.size()}; }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  /// Host -> device copy (counted).
  void upload(std::span<const T> host) {
    require(host.size() == data_.size(), "DeviceBuffer::upload size mismatch");
    std::copy(host.begin(), host.end(), data_.begin());
    detail::record_upload(host.size_bytes());
  }

  /// Device -> host copy (counted).
  void download(std::span<T> host) const {
    require(host.size() == data_.size(), "DeviceBuffer::download size mismatch");
    std::copy(data_.begin(), data_.end(), host.begin());
    detail::record_download(host.size_bytes());
  }

  /// Device -> host copy into a fresh vector (counted).
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> host(data_.size());
    download(host);
    return host;
  }

  /// Device -> host copy of the contiguous slice [offset, offset + host.size())
  /// (counted as one transfer of host.size_bytes()). Lets scenario-strided
  /// batch buffers extract one scenario without moving the whole batch.
  void download_slice(std::size_t offset, std::span<T> host) const {
    require(offset + host.size() <= data_.size(), "DeviceBuffer::download_slice out of range");
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), host.size(), host.begin());
    detail::record_download(host.size_bytes());
  }

  /// Device -> host gather of host.size() elements spaced `stride` apart
  /// starting at `offset` (counted as one transfer of host.size_bytes(),
  /// like a single strided cudaMemcpy2D). Lets the interleaved batch layout
  /// — where one scenario lane's elements sit kTileWidth apart — extract
  /// one scenario without moving the whole batch.
  void download_strided(std::size_t offset, std::size_t stride, std::span<T> host) const {
    require(stride > 0, "DeviceBuffer::download_strided: stride must be positive");
    require(host.empty() || offset + (host.size() - 1) * stride < data_.size(),
            "DeviceBuffer::download_strided out of range");
    for (std::size_t i = 0; i < host.size(); ++i) host[i] = data_[offset + i * stride];
    detail::record_download(host.size_bytes());
  }

 private:
  /// Reconciles the accounted figure with the current logical size.
  void account() {
    const std::uint64_t bytes = static_cast<std::uint64_t>(data_.size()) * sizeof(T);
    if (bytes > accounted_bytes_) {
      // Fault hook before the growth is recorded: an injected allocation
      // failure throws here, the unwind destroys the buffer, and release()
      // frees only the previously-accounted bytes — counters stay balanced.
      if (FaultInjector::enabled()) FaultInjector::instance().on_alloc(bytes - accounted_bytes_);
      detail::record_device_alloc(bytes - accounted_bytes_);
    } else if (bytes < accounted_bytes_) {
      detail::record_device_free(accounted_bytes_ - bytes);
    }
    accounted_bytes_ = bytes;
  }
  void release() {
    if (accounted_bytes_ != 0) detail::record_device_free(accounted_bytes_);
    accounted_bytes_ = 0;
  }

  AlignedVector<T> data_;
  std::uint64_t accounted_bytes_ = 0;
};

/// Snapshot of the process-wide transfer counters at construction; delta()
/// returns the traffic that happened since. Used by tests to assert exact
/// transfer counts (e.g. that a per-scenario solution extraction moves one
/// scenario's slices, not the whole batch).
class TransferStatsScope {
 public:
  TransferStatsScope() : start_(transfer_stats()) {}

  [[nodiscard]] TransferStats delta() const {
    const TransferStats now = transfer_stats();
    TransferStats d;
    d.host_to_device = now.host_to_device - start_.host_to_device;
    d.device_to_host = now.device_to_host - start_.device_to_host;
    d.bytes = now.bytes - start_.bytes;
    return d;
  }

 private:
  TransferStats start_;
};

}  // namespace gridadmm::device
