// Device-resident array with explicit, counted host<->device transfers.
//
// In the paper all ADMM state lives in GPU memory and the solver performs
// zero transfers during iterations; tests assert the same property here by
// snapshotting transfer_stats() around the solve loop.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace gridadmm::device {

/// Process-wide host<->device transfer counters.
struct TransferStats {
  std::uint64_t host_to_device = 0;  ///< number of upload calls
  std::uint64_t device_to_host = 0;  ///< number of download calls
  std::uint64_t bytes = 0;           ///< total bytes moved either way
};

TransferStats& transfer_stats();

/// An array that models GPU global memory. Direct element access is allowed
/// only from kernels (we cannot enforce that in a simulation, but the API
/// nudges call sites to treat `span()` as device-side and go through
/// upload()/download() at the host boundary).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n, T fill = T{}) : data_(n, fill) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  void resize(std::size_t n, T fill = T{}) { data_.assign(n, fill); }
  void fill(T value) { data_.assign(data_.size(), value); }

  /// Device-side view (used inside kernels).
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const { return {data_.data(), data_.size()}; }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  /// Host -> device copy (counted).
  void upload(std::span<const T> host) {
    require(host.size() == data_.size(), "DeviceBuffer::upload size mismatch");
    std::copy(host.begin(), host.end(), data_.begin());
    auto& stats = transfer_stats();
    stats.host_to_device += 1;
    stats.bytes += host.size_bytes();
  }

  /// Device -> host copy (counted).
  void download(std::span<T> host) const {
    require(host.size() == data_.size(), "DeviceBuffer::download size mismatch");
    std::copy(data_.begin(), data_.end(), host.begin());
    auto& stats = transfer_stats();
    stats.device_to_host += 1;
    stats.bytes += host.size_bytes();
  }

  /// Device -> host copy into a fresh vector (counted).
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> host(data_.size());
    download(host);
    return host;
  }

  /// Device -> host copy of the contiguous slice [offset, offset + host.size())
  /// (counted as one transfer of host.size_bytes()). Lets scenario-strided
  /// batch buffers extract one scenario without moving the whole batch.
  void download_slice(std::size_t offset, std::span<T> host) const {
    require(offset + host.size() <= data_.size(), "DeviceBuffer::download_slice out of range");
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), host.size(), host.begin());
    auto& stats = transfer_stats();
    stats.device_to_host += 1;
    stats.bytes += host.size_bytes();
  }

 private:
  std::vector<T> data_;
};

inline TransferStats& transfer_stats() {
  static TransferStats stats;
  return stats;
}

/// Snapshot of the process-wide transfer counters at construction; delta()
/// returns the traffic that happened since. Used by tests to assert exact
/// transfer counts (e.g. that a per-scenario solution extraction moves one
/// scenario's slices, not the whole batch).
class TransferStatsScope {
 public:
  TransferStatsScope() : start_(transfer_stats()) {}

  [[nodiscard]] TransferStats delta() const {
    const TransferStats& now = transfer_stats();
    TransferStats d;
    d.host_to_device = now.host_to_device - start_.host_to_device;
    d.device_to_host = now.device_to_host - start_.device_to_host;
    d.bytes = now.bytes - start_.bytes;
    return d;
  }

 private:
  TransferStats start_;
};

}  // namespace gridadmm::device
