// Deterministic fault injection at the Device layer.
//
// Real GPU serving fleets see transient launch failures (ECC retries, Xid
// errors), latency spikes (thermal throttling, preemption), and allocation
// failures (fragmentation) — and the paper's real-time tracking workload is
// exactly the kind of reliability context where those must degrade, not
// cascade. This sandbox has no real faults, so this module injects them:
// a knob/env-gated (`GRIDADMM_FAULTS=spec`), deterministically seeded fault
// plan that throws TransientDeviceError from Device::run_job, sleeps inside
// launches, or fails DeviceBuffer growth, so the serve layer's retry /
// bisection / quarantine machinery (DESIGN.md §12) can be exercised and
// tested reproducibly.
//
// Overhead discipline matches the tracer idiom: every hook site is guarded
// by `if (FaultInjector::enabled())` — one relaxed atomic load — so the
// disabled path costs nothing and solves are bit-identical with the module
// compiled in.
//
// Spec grammar (semicolon-separated key=value, e.g.
// `GRIDADMM_FAULTS="seed=42;launch=0.02;cooldown=2000;latency=0.01:2ms"`):
//   seed=N          deterministic decision seed (default 1)
//   launch=P        per-launch transient-failure probability in [0, 1]
//   latency=P:DUR   per-launch latency-spike probability and duration
//                   (DUR accepts s/ms/us suffixes, default seconds)
//   alloc=P         per-allocation transient-failure probability
//   shard=D         only inject on the device with trace id D (-1 = all)
//   warmup=N        skip the first N intercepted events entirely
//   cooldown=N      after each injected fault, skip the next N events —
//                   faults are rare bursts, so a retried solve can succeed
//   limit=K         stop injecting after K faults total (0 = unlimited)
//
// Decisions are pure functions of (seed, event index): the k-th intercepted
// event draws from a splitmix64 stream, so a fixed plan yields the same
// fault sequence on every run regardless of wall-clock timing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace gridadmm::device {

/// One deterministic fault plan (see the spec grammar above).
struct FaultPlan {
  std::uint64_t seed = 1;
  double launch_fail_probability = 0.0;
  double latency_spike_probability = 0.0;
  double latency_spike_seconds = 0.0;
  double alloc_fail_probability = 0.0;
  int shard = -1;              ///< only inject on this device trace id; -1 = all
  std::uint64_t warmup = 0;    ///< intercepted events skipped before any injection
  std::uint64_t cooldown = 0;  ///< events skipped after each injected fault
  std::uint64_t limit = 0;     ///< total injected-fault cap; 0 = unlimited

  [[nodiscard]] bool any_fault() const {
    return launch_fail_probability > 0.0 || latency_spike_probability > 0.0 ||
           alloc_fail_probability > 0.0;
  }
};

/// Counters of what the injector actually did (test/bench assertions).
struct FaultCounters {
  std::uint64_t events_seen = 0;      ///< intercepted launch/alloc events
  std::uint64_t launch_failures = 0;  ///< TransientDeviceErrors thrown from launches
  std::uint64_t latency_spikes = 0;   ///< injected sleeps
  std::uint64_t alloc_failures = 0;   ///< TransientDeviceErrors thrown from allocations
};

/// Process-wide injector. Device::run_job and DeviceBuffer growth call the
/// on_* hooks behind the `enabled()` relaxed-load gate; when a hook decides
/// to inject, it throws TransientDeviceError or sleeps. configure()/disable()
/// are the programmatic knobs (tests, bench --faults); the GRIDADMM_FAULTS
/// environment variable arms the injector at process start.
class FaultInjector {
 public:
  static FaultInjector& instance();
  /// The zero-overhead gate: one relaxed atomic load when disabled.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Parses the spec grammar documented above; throws ValidationError on
  /// unknown keys or out-of-range values.
  static FaultPlan parse_spec(const std::string& spec);

  /// Installs `plan` and arms the injector (resets event/fault counters).
  void configure(const FaultPlan& plan);
  /// Disarms the injector; hooks return to the one-load fast path.
  void disable();

  [[nodiscard]] FaultCounters counters() const;
  [[nodiscard]] FaultPlan plan() const;

  /// Launch interception point (called by Device::run_job when enabled).
  /// May throw TransientDeviceError or sleep for the plan's spike duration.
  void on_launch(int device_id);
  /// Allocation interception point (called by DeviceBuffer growth when
  /// enabled). May throw TransientDeviceError. The shard filter does not
  /// apply: buffers are not bound to a device.
  void on_alloc(std::uint64_t bytes);

 private:
  FaultInjector() = default;

  enum class Action { kNone, kSpike, kFail };
  /// Decides the k-th event's fate under mu_; pure in (seed, k, stream).
  Action decide_locked(std::uint64_t k, double fail_p, double spike_p);

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  FaultPlan plan_;
  FaultCounters counters_;
  std::uint64_t cooldown_remaining_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace gridadmm::device
