// Power network data model. Mirrors the MATPOWER case structure; after
// finalize() all quantities are in per-unit on the system MVA base and the
// branch admittances of the paper's formulation (1) are available.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gridadmm::grid {

enum class BusType : int { kPQ = 1, kPV = 2, kRef = 3, kIsolated = 4 };

struct Bus {
  int id = 0;            ///< external bus number (MATPOWER BUS_I)
  BusType type = BusType::kPQ;
  double pd = 0.0;       ///< real load (MW before finalize, p.u. after)
  double qd = 0.0;       ///< reactive load (MVAr before finalize, p.u. after)
  double gs = 0.0;       ///< shunt conductance (MW at V=1 before, p.u. after)
  double bs = 0.0;       ///< shunt susceptance
  double vmin = 0.9;     ///< voltage magnitude lower bound (p.u.)
  double vmax = 1.1;     ///< voltage magnitude upper bound (p.u.)
  double vm0 = 1.0;      ///< initial voltage magnitude
  double va0 = 0.0;      ///< initial voltage angle (radians after finalize)
};

struct Generator {
  int bus = 0;           ///< internal bus index
  double pmin = 0.0, pmax = 0.0;  ///< real power bounds
  double qmin = 0.0, qmax = 0.0;  ///< reactive power bounds
  // Cost f(pg) = c2 pg^2 + c1 pg + c0 with pg in MW (converted on finalize so
  // it can be evaluated directly on per-unit pg).
  double c2 = 0.0, c1 = 0.0, c0 = 0.0;
  double ramp = 0.0;     ///< ramp limit per period (same unit as pmax)
  bool on = true;
  double pg0 = 0.0, qg0 = 0.0;  ///< initial dispatch
};

struct Branch {
  int from = 0, to = 0;  ///< internal bus indices
  double r = 0.0;        ///< series resistance (p.u.)
  double x = 0.0;        ///< series reactance (p.u.)
  double b = 0.0;        ///< total line charging susceptance (p.u.)
  double tap = 1.0;      ///< turns ratio magnitude (0 in MATPOWER means 1)
  double shift = 0.0;    ///< phase shift (degrees before finalize, radians after)
  double rate = 0.0;     ///< MVA limit (0 = unlimited; p.u. after finalize)
  bool on = true;
};

/// Complex branch admittance coefficients of formulation (1):
/// yii = (ys + j b/2)/|a|^2, yij = -ys/conj(a), yji = -ys/a, yjj = ys + j b/2.
struct BranchAdmittance {
  double gii = 0.0, bii = 0.0;
  double gij = 0.0, bij = 0.0;
  double gji = 0.0, bji = 0.0;
  double gjj = 0.0, bjj = 0.0;
};

class Network {
 public:
  std::string name = "unnamed";
  double base_mva = 100.0;
  std::vector<Bus> buses;
  std::vector<Generator> generators;
  std::vector<Branch> branches;

  // ---- Derived data (valid after finalize()) ----
  std::vector<BranchAdmittance> admittances;
  std::vector<std::vector<int>> gens_at_bus;      ///< generator indices per bus
  std::vector<std::vector<int>> branches_from;    ///< branches with from == bus
  std::vector<std::vector<int>> branches_to;      ///< branches with to == bus
  int ref_bus = -1;

  [[nodiscard]] int num_buses() const { return static_cast<int>(buses.size()); }
  [[nodiscard]] int num_generators() const { return static_cast<int>(generators.size()); }
  [[nodiscard]] int num_branches() const { return static_cast<int>(branches.size()); }

  /// Total real load in per-unit (after finalize).
  [[nodiscard]] double total_load() const;

  /// Converts to per-unit, computes admittances and adjacency, validates
  /// connectivity and bounds. Throws ModelError on invalid data. Idempotent
  /// guard: calling twice is an error.
  void finalize();

  /// Evaluates the generation cost in $/h for per-unit dispatch `pg`.
  [[nodiscard]] double generation_cost(const std::vector<double>& pg) const;

  [[nodiscard]] bool finalized() const { return finalized_; }

 private:
  bool finalized_ = false;
};

/// Computes the admittance coefficients for one branch (already in p.u.,
/// shift in radians).
BranchAdmittance branch_admittance(const Branch& branch);

/// Copy of a *finalized* network with branch `l` removed and the derived
/// adjacency rebuilt (no per-unit re-conversion). Used for N-1 contingency
/// scenarios. With `check_connectivity` (the default) throws when removing
/// the branch disconnects the network (the branch is a bridge); callers
/// that already screened with `bridge_branches` pass false to skip the
/// O(buses + branches) re-check.
Network network_without_branch(const Network& net, int l, bool check_connectivity = true);

/// True when removing branch `l` disconnects the (finalized) network, i.e.
/// the branch is a bridge of the bus graph. Parallel branches between the
/// same bus pair are never bridges. O(buses + branches) per query; use
/// bridge_branches for all-branches screening.
bool is_bridge(const Network& net, int l);

/// All bridges of the (finalized) network in one DFS pass — flags[l] is
/// true when branch l is a bridge. O(buses + branches) total; used by N-1
/// contingency enumeration.
std::vector<bool> bridge_branches(const Network& net);

/// Structural fingerprint of a finalized network: a 64-bit FNV-1a hash over
/// everything that shapes the ACOPF *other than the load vector* — bus
/// bounds and shunts, branch topology/impedances/ratings/status, generator
/// bounds and costs. Two networks with the same fingerprint define the same
/// solve up to loads, which is exactly the warm-start cache's key: loads
/// are matched separately by nearest-neighbor distance.
std::uint64_t network_fingerprint(const Network& net);

}  // namespace gridadmm::grid
