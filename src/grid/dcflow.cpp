#include "grid/dcflow.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/ldlt.hpp"

namespace gridadmm::grid {

DcFlowResult solve_dc_flow_raw(int num_buses, std::span<const Branch> branches,
                               std::span<const double> injection, int ref) {
  require(num_buses >= 2, "solve_dc_flow: need at least two buses");
  require(static_cast<int>(injection.size()) == num_buses,
          "solve_dc_flow: injection size mismatch");
  require(ref >= 0 && ref < num_buses, "solve_dc_flow: reference bus out of range");

  auto reduced_index = [&](int bus) { return bus < ref ? bus : bus - 1; };
  std::vector<linalg::Triplet> entries;
  entries.reserve(branches.size() * 3);
  std::vector<double> diag(static_cast<std::size_t>(num_buses), 0.0);
  for (const auto& branch : branches) {
    require(branch.x != 0.0, "solve_dc_flow: zero-reactance branch");
    const double w = 1.0 / branch.x;
    diag[branch.from] += w;
    diag[branch.to] += w;
    if (branch.from == ref || branch.to == ref) continue;
    const int a = reduced_index(branch.from);
    const int b = reduced_index(branch.to);
    entries.push_back({std::max(a, b), std::min(a, b), -w});
  }
  for (int i = 0; i < num_buses; ++i) {
    if (i != ref) entries.push_back({reduced_index(i), reduced_index(i), diag[i]});
  }

  linalg::SymmetricSolver solver;
  solver.analyze(num_buses - 1, entries, linalg::OrderingMethod::kRcm);
  std::vector<double> values;
  values.reserve(entries.size());
  for (const auto& t : entries) values.push_back(t.value);
  if (!solver.factorize(values)) {
    throw NumericalError("solve_dc_flow: singular susceptance matrix (island?)");
  }

  std::vector<double> rhs(static_cast<std::size_t>(num_buses - 1));
  for (int i = 0; i < num_buses; ++i) {
    if (i != ref) rhs[reduced_index(i)] = injection[i];
  }
  solver.solve(rhs);

  DcFlowResult result;
  result.theta.assign(static_cast<std::size_t>(num_buses), 0.0);
  for (int i = 0; i < num_buses; ++i) {
    if (i != ref) result.theta[i] = rhs[reduced_index(i)];
  }
  result.branch_flow.resize(branches.size());
  for (std::size_t l = 0; l < branches.size(); ++l) {
    const auto& branch = branches[l];
    result.branch_flow[l] = (result.theta[branch.from] - result.theta[branch.to]) / branch.x;
  }
  return result;
}

DcFlowResult solve_dc_flow(const Network& net, std::span<const double> injection) {
  require(net.finalized(), "solve_dc_flow: network must be finalized");
  return solve_dc_flow_raw(net.num_buses(), net.branches, injection, net.ref_bus);
}

DcFlowResult solve_dc_flow_proportional(const Network& net) {
  require(net.finalized(), "solve_dc_flow_proportional: network must be finalized");
  double capacity = 0.0;
  for (const auto& gen : net.generators) capacity += gen.pmax;
  require(capacity > 0.0, "solve_dc_flow_proportional: no generation capacity");
  const double load = net.total_load();
  std::vector<double> injection(static_cast<std::size_t>(net.num_buses()), 0.0);
  for (const auto& gen : net.generators) {
    injection[gen.bus] += load * gen.pmax / capacity;
  }
  for (int i = 0; i < net.num_buses(); ++i) injection[i] -= net.buses[i].pd;
  return solve_dc_flow(net, injection);
}

}  // namespace gridadmm::grid
