// Time-series load profiles for the warm-start tracking experiments.
//
// The paper interpolates ISO New England hourly real-time system demand to
// one-minute periods; over the 30-minute horizon the load drifts by up to
// 5% from its starting value. This module synthesizes profiles with the
// same structure: smooth hourly anchors (morning-ramp shaped) interpolated
// to minutes with small high-frequency jitter.
#pragma once

#include <cstdint>
#include <vector>

namespace gridadmm::grid {

struct LoadProfileSpec {
  int periods = 30;          ///< number of one-minute periods
  double max_drift = 0.05;   ///< peak deviation from the initial multiplier
  double jitter = 0.002;     ///< minute-to-minute noise amplitude
  std::uint64_t seed = 7;
};

/// Returns per-period multiplicative load scaling factors, starting at 1.0.
/// The maximum |factor - 1| over the horizon is <= max_drift (tight for the
/// default spec).
std::vector<double> make_load_profile(const LoadProfileSpec& spec);

}  // namespace gridadmm::grid
