#include "grid/matpower.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace gridadmm::grid {

namespace {

/// Strips MATLAB comments (% to end of line) from the case text.
std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_comment = false;
  for (const char ch : text) {
    if (ch == '%') in_comment = true;
    if (ch == '\n') in_comment = false;
    if (!in_comment) out.push_back(ch);
  }
  return out;
}

/// Parses one numeric token, accepting Inf/-Inf.
double parse_number(const std::string& token) {
  if (token == "Inf" || token == "inf") return std::numeric_limits<double>::infinity();
  if (token == "-Inf" || token == "-inf") return -std::numeric_limits<double>::infinity();
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw ParseError("matpower: bad numeric token '" + token + "'");
  }
  if (pos != token.size()) throw ParseError("matpower: bad numeric token '" + token + "'");
  return value;
}

using Matrix = std::vector<std::vector<double>>;

/// Extracts `mpc.<field> = [ rows ];` as a numeric matrix. Returns empty if
/// the field is absent.
Matrix extract_matrix(const std::string& text, const std::string& field) {
  const std::string key = "mpc." + field;
  std::size_t pos = 0;
  while (true) {
    pos = text.find(key, pos);
    if (pos == std::string::npos) return {};
    // Must be followed (modulo spaces) by '='.
    std::size_t q = pos + key.size();
    while (q < text.size() && (text[q] == ' ' || text[q] == '\t')) ++q;
    if (q < text.size() && text[q] == '=') break;
    pos += key.size();
  }
  const std::size_t open = text.find('[', pos);
  if (open == std::string::npos) throw ParseError("matpower: missing '[' for " + field);
  const std::size_t close = text.find(']', open);
  if (close == std::string::npos) throw ParseError("matpower: missing ']' for " + field);
  const std::string body = text.substr(open + 1, close - open - 1);

  Matrix rows;
  std::vector<double> current;
  std::string token;
  auto flush_token = [&] {
    if (!token.empty()) {
      current.push_back(parse_number(token));
      token.clear();
    }
  };
  auto flush_row = [&] {
    flush_token();
    if (!current.empty()) {
      rows.push_back(current);
      current.clear();
    }
  };
  for (const char ch : body) {
    if (ch == ';' || ch == '\n') {
      flush_row();
    } else if (ch == ' ' || ch == '\t' || ch == ',' || ch == '\r') {
      flush_token();
    } else {
      token.push_back(ch);
    }
  }
  flush_row();
  return rows;
}

/// Extracts a scalar `mpc.<field> = value;`.
double extract_scalar(const std::string& text, const std::string& field, double fallback) {
  const std::string key = "mpc." + field;
  std::size_t pos = text.find(key);
  if (pos == std::string::npos) return fallback;
  pos = text.find('=', pos);
  if (pos == std::string::npos) return fallback;
  std::size_t end = text.find(';', pos);
  if (end == std::string::npos) end = text.size();
  std::string token = text.substr(pos + 1, end - pos - 1);
  // Trim whitespace.
  const auto first = token.find_first_not_of(" \t\r\n");
  const auto last = token.find_last_not_of(" \t\r\n");
  if (first == std::string::npos) return fallback;
  return parse_number(token.substr(first, last - first + 1));
}

}  // namespace

Network parse_matpower(const std::string& raw_text, const std::string& name) {
  const std::string text = strip_comments(raw_text);
  Network net;
  net.name = name;
  net.base_mva = extract_scalar(text, "baseMVA", 100.0);

  const Matrix bus = extract_matrix(text, "bus");
  const Matrix gen = extract_matrix(text, "gen");
  const Matrix branch = extract_matrix(text, "branch");
  const Matrix gencost = extract_matrix(text, "gencost");
  if (bus.empty()) throw ParseError("matpower: no bus data in case " + name);
  if (gen.empty()) throw ParseError("matpower: no generator data in case " + name);
  if (branch.empty()) throw ParseError("matpower: no branch data in case " + name);

  std::map<int, int> bus_index;  // external id -> internal index
  for (const auto& row : bus) {
    if (row.size() < 13) throw ParseError("matpower: bus row needs 13 columns");
    Bus b;
    b.id = static_cast<int>(row[0]);
    b.type = static_cast<BusType>(static_cast<int>(row[1]));
    b.pd = row[2];
    b.qd = row[3];
    b.gs = row[4];
    b.bs = row[5];
    b.vm0 = row[7];
    b.va0 = row[8] * M_PI / 180.0;
    b.vmax = row[11];
    b.vmin = row[12];
    if (bus_index.count(b.id) != 0) throw ParseError("matpower: duplicate bus id");
    bus_index[b.id] = static_cast<int>(net.buses.size());
    net.buses.push_back(b);
  }

  std::size_t dropped_gens = 0;
  std::vector<int> gen_source_row;  // surviving generator -> original row (for gencost)
  for (std::size_t i = 0; i < gen.size(); ++i) {
    const auto& row = gen[i];
    if (row.size() < 10) throw ParseError("matpower: gen row needs >= 10 columns");
    if (row[7] <= 0.0) {  // GEN_STATUS
      ++dropped_gens;
      continue;
    }
    Generator g;
    const int ext_bus = static_cast<int>(row[0]);
    const auto it = bus_index.find(ext_bus);
    if (it == bus_index.end()) throw ParseError("matpower: generator at unknown bus");
    g.bus = it->second;
    g.pg0 = row[1];
    g.qg0 = row[2];
    g.qmax = row[3];
    g.qmin = row[4];
    g.pmax = row[8];
    g.pmin = row[9];
    if (row.size() >= 17) g.ramp = row[16];  // RAMP_AGC
    gen_source_row.push_back(static_cast<int>(i));
    net.generators.push_back(g);
  }
  if (dropped_gens > 0) log::debug("matpower ", name, ": dropped ", dropped_gens, " offline generators");

  std::size_t dropped_branches = 0;
  for (const auto& row : branch) {
    if (row.size() < 11) throw ParseError("matpower: branch row needs >= 11 columns");
    if (row[10] <= 0.0) {  // BR_STATUS
      ++dropped_branches;
      continue;
    }
    Branch br;
    const auto itf = bus_index.find(static_cast<int>(row[0]));
    const auto itt = bus_index.find(static_cast<int>(row[1]));
    if (itf == bus_index.end() || itt == bus_index.end()) {
      throw ParseError("matpower: branch endpoint at unknown bus");
    }
    br.from = itf->second;
    br.to = itt->second;
    br.r = row[2];
    br.x = row[3];
    br.b = row[4];
    br.rate = row[5];  // RATE_A; 0 = unlimited
    br.tap = row[8];
    br.shift = row[9];
    net.branches.push_back(br);
  }
  if (dropped_branches > 0) {
    log::debug("matpower ", name, ": dropped ", dropped_branches, " offline branches");
  }

  if (!gencost.empty()) {
    if (gencost.size() < gen.size()) throw ParseError("matpower: gencost rows < gen rows");
    for (std::size_t g = 0; g < net.generators.size(); ++g) {
      const auto& row = gencost[static_cast<std::size_t>(gen_source_row[g])];
      if (row.size() < 4) throw ParseError("matpower: gencost row too short");
      const int model = static_cast<int>(row[0]);
      if (model != 2) {
        throw ParseError("matpower: only polynomial gencost (model 2) is supported");
      }
      const int ncost = static_cast<int>(row[3]);
      if (row.size() < 4 + static_cast<std::size_t>(ncost)) {
        throw ParseError("matpower: gencost coefficients missing");
      }
      auto& gg = net.generators[g];
      gg.c2 = gg.c1 = gg.c0 = 0.0;
      // Coefficients are highest order first.
      if (ncost >= 3) {
        gg.c2 = row[4 + ncost - 3];
        gg.c1 = row[4 + ncost - 2];
        gg.c0 = row[4 + ncost - 1];
        if (ncost > 3) {
          for (int k = 0; k < ncost - 3; ++k) {
            if (row[4 + k] != 0.0) {
              throw ParseError("matpower: gencost degree > 2 not supported");
            }
          }
        }
      } else if (ncost == 2) {
        gg.c1 = row[4];
        gg.c0 = row[5];
      } else if (ncost == 1) {
        gg.c0 = row[4];
      }
    }
  }
  return net;
}

Network load_matpower_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("matpower: cannot open file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Derive a case name from the file name.
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return parse_matpower(buffer.str(), name);
}

}  // namespace gridadmm::grid

namespace gridadmm::grid {

namespace {
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}
}  // namespace

std::string write_matpower(const Network& net) {
  // Finalized networks store per-unit data; convert back to MATPOWER units.
  const double base = net.base_mva;
  const bool pu = net.finalized();
  const double power = pu ? base : 1.0;
  const double angle = pu ? 180.0 / M_PI : 1.0;

  std::ostringstream os;
  os << "function mpc = " << (net.name.empty() ? "exported" : net.name) << "\n";
  os << "mpc.version = '2';\n";
  os << "mpc.baseMVA = " << fmt(base) << ";\n";

  os << "mpc.bus = [\n";
  for (const auto& bus : net.buses) {
    os << '\t' << bus.id << '\t' << static_cast<int>(bus.type) << '\t' << fmt(bus.pd * power)
       << '\t' << fmt(bus.qd * power) << '\t' << fmt(bus.gs * power) << '\t'
       << fmt(bus.bs * power) << "\t1\t" << fmt(bus.vm0) << '\t' << fmt(bus.va0 * angle)
       << "\t0\t1\t" << fmt(bus.vmax) << '\t' << fmt(bus.vmin) << ";\n";
  }
  os << "];\n";

  os << "mpc.gen = [\n";
  for (const auto& gen : net.generators) {
    os << '\t' << net.buses[gen.bus].id << '\t' << fmt(gen.pg0 * power) << '\t'
       << fmt(gen.qg0 * power) << '\t' << fmt(gen.qmax * power) << '\t' << fmt(gen.qmin * power)
       << "\t1\t" << fmt(base) << '\t' << (gen.on ? 1 : 0) << '\t' << fmt(gen.pmax * power)
       << '\t' << fmt(gen.pmin * power) << "\t0\t0\t0\t0\t0\t0\t" << fmt(gen.ramp * power)
       << "\t0\t0\t0\t0;\n";
  }
  os << "];\n";

  os << "mpc.branch = [\n";
  for (const auto& branch : net.branches) {
    const double rate = branch.rate * power;
    os << '\t' << net.buses[branch.from].id << '\t' << net.buses[branch.to].id << '\t'
       << fmt(branch.r) << '\t' << fmt(branch.x) << '\t' << fmt(branch.b) << '\t' << fmt(rate)
       << '\t' << fmt(rate) << '\t' << fmt(rate) << '\t'
       << fmt(pu && branch.tap == 1.0 ? 0.0 : branch.tap) << '\t' << fmt(branch.shift * angle)
       << '\t' << (branch.on ? 1 : 0) << "\t-360\t360;\n";
  }
  os << "];\n";

  // Costs: finalized networks fold baseMVA into c2/c1; undo for export.
  const double c2_scale = pu ? 1.0 / (base * base) : 1.0;
  const double c1_scale = pu ? 1.0 / base : 1.0;
  os << "mpc.gencost = [\n";
  for (const auto& gen : net.generators) {
    os << "\t2\t0\t0\t3\t" << fmt(gen.c2 * c2_scale) << '\t' << fmt(gen.c1 * c1_scale) << '\t'
       << fmt(gen.c0) << ";\n";
  }
  os << "];\n";
  return os.str();
}

void save_matpower_file(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ParseError("matpower: cannot write file " + path);
  out << write_matpower(net);
}

}  // namespace gridadmm::grid
