#include "grid/network.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace gridadmm::grid {

BranchAdmittance branch_admittance(const Branch& branch) {
  using cd = std::complex<double>;
  const cd ys = 1.0 / cd(branch.r, branch.x);
  const cd ysh(0.0, branch.b / 2.0);
  const double tap = branch.tap == 0.0 ? 1.0 : branch.tap;
  const cd a = std::polar(tap, branch.shift);
  const cd yii = (ys + ysh) / (std::norm(a));
  const cd yij = -ys / std::conj(a);
  const cd yji = -ys / a;
  const cd yjj = ys + ysh;
  BranchAdmittance result;
  result.gii = yii.real();
  result.bii = yii.imag();
  result.gij = yij.real();
  result.bij = yij.imag();
  result.gji = yji.real();
  result.bji = yji.imag();
  result.gjj = yjj.real();
  result.bjj = yjj.imag();
  return result;
}

double Network::total_load() const {
  double total = 0.0;
  for (const auto& bus : buses) total += bus.pd;
  return total;
}

void Network::finalize() {
  require(!finalized_, "Network::finalize called twice");
  require(base_mva > 0.0, "Network: base MVA must be positive");
  const int nb = num_buses();
  require(nb > 0, "Network: no buses");

  // Per-unit conversion.
  for (auto& bus : buses) {
    bus.pd /= base_mva;
    bus.qd /= base_mva;
    bus.gs /= base_mva;
    bus.bs /= base_mva;
    require(bus.vmin > 0.0 && bus.vmax >= bus.vmin, "Network: invalid voltage bounds");
  }
  for (auto& gen : generators) {
    require(gen.bus >= 0 && gen.bus < nb, "Network: generator bus out of range");
    gen.pmin /= base_mva;
    gen.pmax /= base_mva;
    gen.qmin /= base_mva;
    gen.qmax /= base_mva;
    gen.ramp /= base_mva;
    gen.pg0 /= base_mva;
    gen.qg0 /= base_mva;
    // Cost was per MW: f = c2 p_MW^2 + c1 p_MW + c0. With p in p.u.,
    // p_MW = base * p, so fold the base into the coefficients.
    gen.c2 *= base_mva * base_mva;
    gen.c1 *= base_mva;
    require(gen.pmax >= gen.pmin && gen.qmax >= gen.qmin, "Network: generator bounds inverted");
  }
  for (auto& branch : branches) {
    require(branch.from >= 0 && branch.from < nb && branch.to >= 0 && branch.to < nb,
            "Network: branch endpoint out of range");
    require(branch.from != branch.to, "Network: self-loop branch");
    require(branch.x != 0.0 || branch.r != 0.0, "Network: branch with zero impedance");
    branch.rate /= base_mva;
    branch.shift *= std::numbers::pi / 180.0;
    if (branch.tap == 0.0) branch.tap = 1.0;
  }

  // Derived structures.
  admittances.clear();
  admittances.reserve(branches.size());
  for (const auto& branch : branches) admittances.push_back(branch_admittance(branch));

  gens_at_bus.assign(static_cast<std::size_t>(nb), {});
  for (int g = 0; g < num_generators(); ++g) gens_at_bus[generators[g].bus].push_back(g);
  branches_from.assign(static_cast<std::size_t>(nb), {});
  branches_to.assign(static_cast<std::size_t>(nb), {});
  for (int l = 0; l < num_branches(); ++l) {
    branches_from[branches[l].from].push_back(l);
    branches_to[branches[l].to].push_back(l);
  }

  ref_bus = -1;
  for (int i = 0; i < nb; ++i) {
    if (buses[i].type == BusType::kRef) {
      ref_bus = i;
      break;
    }
  }
  if (ref_bus < 0) {
    // Choose the bus with the largest attached generation capacity.
    double best = -1.0;
    for (int i = 0; i < nb; ++i) {
      double cap = 0.0;
      for (const int g : gens_at_bus[i]) cap += generators[g].pmax;
      if (cap > best) {
        best = cap;
        ref_bus = i;
      }
    }
    buses[ref_bus].type = BusType::kRef;
    log::debug("Network ", name, ": no reference bus; picked bus ", ref_bus);
  }

  // Connectivity check (union of branches, undirected BFS).
  std::vector<char> seen(static_cast<std::size_t>(nb), 0);
  std::vector<int> queue{ref_bus};
  seen[ref_bus] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    auto visit = [&](int v) {
      if (!seen[v]) {
        seen[v] = 1;
        queue.push_back(v);
      }
    };
    for (const int l : branches_from[u]) visit(branches[l].to);
    for (const int l : branches_to[u]) visit(branches[l].from);
  }
  int unreached = 0;
  for (const char s : seen) unreached += (s == 0);
  require(unreached == 0, "Network " + name + ": " + std::to_string(unreached) +
                              " buses unreachable from the reference bus");

  finalized_ = true;
}

Network network_without_branch(const Network& net, int l, bool check_connectivity) {
  require(net.finalized(), "network_without_branch: network must be finalized");
  require(l >= 0 && l < net.num_branches(), "network_without_branch: branch index out of range");
  require(!check_connectivity || !is_bridge(net, l),
          "network_without_branch: removing branch " + std::to_string(l) +
              " disconnects network " + net.name);
  Network out = net;
  out.branches.erase(out.branches.begin() + l);
  out.admittances.erase(out.admittances.begin() + l);
  const int nb = out.num_buses();
  out.branches_from.assign(static_cast<std::size_t>(nb), {});
  out.branches_to.assign(static_cast<std::size_t>(nb), {});
  for (int k = 0; k < out.num_branches(); ++k) {
    out.branches_from[out.branches[k].from].push_back(k);
    out.branches_to[out.branches[k].to].push_back(k);
  }
  return out;
}

bool is_bridge(const Network& net, int l) {
  require(net.finalized(), "is_bridge: network must be finalized");
  require(l >= 0 && l < net.num_branches(), "is_bridge: branch index out of range");
  // BFS from one endpoint with branch l excluded; it is a bridge iff the
  // other endpoint becomes unreachable. O(buses + branches) per query.
  const int nb = net.num_buses();
  std::vector<char> seen(static_cast<std::size_t>(nb), 0);
  std::vector<int> queue{net.branches[l].from};
  seen[net.branches[l].from] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    auto visit = [&](int v) {
      if (!seen[v]) {
        seen[v] = 1;
        queue.push_back(v);
      }
    };
    for (const int k : net.branches_from[u]) {
      if (k != l) visit(net.branches[k].to);
    }
    for (const int k : net.branches_to[u]) {
      if (k != l) visit(net.branches[k].from);
    }
  }
  return seen[net.branches[l].to] == 0;
}

std::vector<bool> bridge_branches(const Network& net) {
  require(net.finalized(), "bridge_branches: network must be finalized");
  const int nb = net.num_buses();
  const int nl = net.num_branches();
  // Undirected multigraph adjacency as (neighbor, branch id); entering an
  // edge by id (not by parent vertex) keeps parallel branches non-bridges.
  std::vector<std::vector<std::pair<int, int>>> adj(static_cast<std::size_t>(nb));
  for (int l = 0; l < nl; ++l) {
    adj[net.branches[l].from].emplace_back(net.branches[l].to, l);
    adj[net.branches[l].to].emplace_back(net.branches[l].from, l);
  }

  // Iterative Tarjan low-link DFS (explicit stack: large cases would blow
  // the call stack).
  std::vector<bool> bridges(static_cast<std::size_t>(nl), false);
  std::vector<int> disc(static_cast<std::size_t>(nb), -1);
  std::vector<int> low(static_cast<std::size_t>(nb), 0);
  struct Frame {
    int bus;
    int entry_branch;  ///< branch used to reach `bus` (-1 at a root)
    std::size_t next;  ///< next adjacency entry to visit
  };
  std::vector<Frame> stack;
  int timer = 0;
  for (int root = 0; root < nb; ++root) {
    if (disc[root] >= 0) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, -1, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const int u = frame.bus;
      if (frame.next < adj[u].size()) {
        const auto [v, l] = adj[u][frame.next++];
        if (l == frame.entry_branch) continue;  // don't re-walk the tree edge
        if (disc[v] < 0) {
          disc[v] = low[v] = timer++;
          stack.push_back({v, l, 0});
        } else {
          low[u] = std::min(low[u], disc[v]);
        }
      } else {
        const int entry_branch = frame.entry_branch;  // frame dies with pop_back
        stack.pop_back();
        if (!stack.empty()) {
          const int parent = stack.back().bus;
          low[parent] = std::min(low[parent], low[u]);
          if (low[u] > disc[parent]) bridges[static_cast<std::size_t>(entry_branch)] = true;
        }
      }
    }
  }
  return bridges;
}

namespace {

/// FNV-1a accumulation over raw bytes (doubles hashed by bit pattern, so
/// the fingerprint is exact, not tolerance-based).
void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
}

void fnv_double(std::uint64_t& h, double value) { fnv_bytes(h, &value, sizeof(value)); }

void fnv_int(std::uint64_t& h, std::int64_t value) { fnv_bytes(h, &value, sizeof(value)); }

}  // namespace

std::uint64_t network_fingerprint(const Network& net) {
  require(net.finalized(), "network_fingerprint: network must be finalized");
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv_int(h, net.num_buses());
  fnv_int(h, net.num_branches());
  fnv_int(h, net.num_generators());
  fnv_int(h, net.ref_bus);
  fnv_double(h, net.base_mva);
  for (const auto& bus : net.buses) {
    fnv_int(h, static_cast<std::int64_t>(bus.type));
    fnv_double(h, bus.gs);
    fnv_double(h, bus.bs);
    fnv_double(h, bus.vmin);
    fnv_double(h, bus.vmax);
  }
  for (const auto& branch : net.branches) {
    fnv_int(h, branch.from);
    fnv_int(h, branch.to);
    fnv_int(h, branch.on ? 1 : 0);
    fnv_double(h, branch.r);
    fnv_double(h, branch.x);
    fnv_double(h, branch.b);
    fnv_double(h, branch.tap);
    fnv_double(h, branch.shift);
    fnv_double(h, branch.rate);
  }
  for (const auto& gen : net.generators) {
    fnv_int(h, gen.bus);
    fnv_int(h, gen.on ? 1 : 0);
    fnv_double(h, gen.pmin);
    fnv_double(h, gen.pmax);
    fnv_double(h, gen.qmin);
    fnv_double(h, gen.qmax);
    fnv_double(h, gen.c2);
    fnv_double(h, gen.c1);
    fnv_double(h, gen.c0);
  }
  return h;
}

double Network::generation_cost(const std::vector<double>& pg) const {
  require(pg.size() == generators.size(), "generation_cost: dispatch size mismatch");
  double total = 0.0;
  for (std::size_t g = 0; g < generators.size(); ++g) {
    const auto& gen = generators[g];
    total += gen.c2 * pg[g] * pg[g] + gen.c1 * pg[g] + gen.c0;
  }
  return total;
}

}  // namespace gridadmm::grid
