#include "grid/network.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace gridadmm::grid {

BranchAdmittance branch_admittance(const Branch& branch) {
  using cd = std::complex<double>;
  const cd ys = 1.0 / cd(branch.r, branch.x);
  const cd ysh(0.0, branch.b / 2.0);
  const double tap = branch.tap == 0.0 ? 1.0 : branch.tap;
  const cd a = std::polar(tap, branch.shift);
  const cd yii = (ys + ysh) / (std::norm(a));
  const cd yij = -ys / std::conj(a);
  const cd yji = -ys / a;
  const cd yjj = ys + ysh;
  BranchAdmittance result;
  result.gii = yii.real();
  result.bii = yii.imag();
  result.gij = yij.real();
  result.bij = yij.imag();
  result.gji = yji.real();
  result.bji = yji.imag();
  result.gjj = yjj.real();
  result.bjj = yjj.imag();
  return result;
}

double Network::total_load() const {
  double total = 0.0;
  for (const auto& bus : buses) total += bus.pd;
  return total;
}

void Network::finalize() {
  require(!finalized_, "Network::finalize called twice");
  require(base_mva > 0.0, "Network: base MVA must be positive");
  const int nb = num_buses();
  require(nb > 0, "Network: no buses");

  // Per-unit conversion.
  for (auto& bus : buses) {
    bus.pd /= base_mva;
    bus.qd /= base_mva;
    bus.gs /= base_mva;
    bus.bs /= base_mva;
    require(bus.vmin > 0.0 && bus.vmax >= bus.vmin, "Network: invalid voltage bounds");
  }
  for (auto& gen : generators) {
    require(gen.bus >= 0 && gen.bus < nb, "Network: generator bus out of range");
    gen.pmin /= base_mva;
    gen.pmax /= base_mva;
    gen.qmin /= base_mva;
    gen.qmax /= base_mva;
    gen.ramp /= base_mva;
    gen.pg0 /= base_mva;
    gen.qg0 /= base_mva;
    // Cost was per MW: f = c2 p_MW^2 + c1 p_MW + c0. With p in p.u.,
    // p_MW = base * p, so fold the base into the coefficients.
    gen.c2 *= base_mva * base_mva;
    gen.c1 *= base_mva;
    require(gen.pmax >= gen.pmin && gen.qmax >= gen.qmin, "Network: generator bounds inverted");
  }
  for (auto& branch : branches) {
    require(branch.from >= 0 && branch.from < nb && branch.to >= 0 && branch.to < nb,
            "Network: branch endpoint out of range");
    require(branch.from != branch.to, "Network: self-loop branch");
    require(branch.x != 0.0 || branch.r != 0.0, "Network: branch with zero impedance");
    branch.rate /= base_mva;
    branch.shift *= std::numbers::pi / 180.0;
    if (branch.tap == 0.0) branch.tap = 1.0;
  }

  // Derived structures.
  admittances.clear();
  admittances.reserve(branches.size());
  for (const auto& branch : branches) admittances.push_back(branch_admittance(branch));

  gens_at_bus.assign(static_cast<std::size_t>(nb), {});
  for (int g = 0; g < num_generators(); ++g) gens_at_bus[generators[g].bus].push_back(g);
  branches_from.assign(static_cast<std::size_t>(nb), {});
  branches_to.assign(static_cast<std::size_t>(nb), {});
  for (int l = 0; l < num_branches(); ++l) {
    branches_from[branches[l].from].push_back(l);
    branches_to[branches[l].to].push_back(l);
  }

  ref_bus = -1;
  for (int i = 0; i < nb; ++i) {
    if (buses[i].type == BusType::kRef) {
      ref_bus = i;
      break;
    }
  }
  if (ref_bus < 0) {
    // Choose the bus with the largest attached generation capacity.
    double best = -1.0;
    for (int i = 0; i < nb; ++i) {
      double cap = 0.0;
      for (const int g : gens_at_bus[i]) cap += generators[g].pmax;
      if (cap > best) {
        best = cap;
        ref_bus = i;
      }
    }
    buses[ref_bus].type = BusType::kRef;
    log::debug("Network ", name, ": no reference bus; picked bus ", ref_bus);
  }

  // Connectivity check (union of branches, undirected BFS).
  std::vector<char> seen(static_cast<std::size_t>(nb), 0);
  std::vector<int> queue{ref_bus};
  seen[ref_bus] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    auto visit = [&](int v) {
      if (!seen[v]) {
        seen[v] = 1;
        queue.push_back(v);
      }
    };
    for (const int l : branches_from[u]) visit(branches[l].to);
    for (const int l : branches_to[u]) visit(branches[l].from);
  }
  int unreached = 0;
  for (const char s : seen) unreached += (s == 0);
  require(unreached == 0, "Network " + name + ": " + std::to_string(unreached) +
                              " buses unreachable from the reference bus");

  finalized_ = true;
}

double Network::generation_cost(const std::vector<double>& pg) const {
  require(pg.size() == generators.size(), "generation_cost: dispatch size mismatch");
  double total = 0.0;
  for (std::size_t g = 0; g < generators.size(); ++g) {
    const auto& gen = generators[g];
    total += gen.c2 * pg[g] * pg[g] + gen.c1 * pg[g] + gen.c0;
  }
  return total;
}

}  // namespace gridadmm::grid
