#include "grid/load_profile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gridadmm::grid {

std::vector<double> make_load_profile(const LoadProfileSpec& spec) {
  require(spec.periods >= 1, "load profile: need at least one period");
  require(spec.max_drift >= 0.0, "load profile: negative drift");
  Rng rng(spec.seed);

  // Hourly anchors shaped like a morning ramp: monotone rise with a smooth
  // knee, like the ISO-NE real-time demand curve between 6am and 7am.
  const int anchors = 2 + (spec.periods + 59) / 60;
  std::vector<double> anchor(static_cast<std::size_t>(anchors));
  anchor[0] = 0.0;
  for (int a = 1; a < anchors; ++a) {
    anchor[a] = anchor[a - 1] + rng.uniform(0.5, 1.0);
  }
  const double anchor_max = *std::max_element(anchor.begin(), anchor.end());

  std::vector<double> profile(static_cast<std::size_t>(spec.periods));
  double raw_peak = 0.0;
  for (int t = 0; t < spec.periods; ++t) {
    const double hours = static_cast<double>(t) / 60.0;
    const int a = static_cast<int>(hours);
    const double frac = hours - a;
    // Cosine (smoothstep) interpolation between hourly anchors.
    const double smooth = 0.5 - 0.5 * std::cos(std::numbers::pi * frac);
    const double base = anchor[a] * (1.0 - smooth) + anchor[a + 1] * smooth;
    const double jitter = spec.jitter * rng.normal();
    profile[t] = base / (anchor_max > 0.0 ? anchor_max : 1.0) + jitter;
    raw_peak = std::max(raw_peak, std::abs(profile[t] - profile[0]));
  }
  // Normalize so the horizon starts at 1.0 and drifts at the paper's rate:
  // max_drift is reached over a 30-period horizon, so shorter horizons see
  // proportionally less drift (the paper's profile is a *rate* of change,
  // ~5% per 30 minutes, not a jump).
  const double horizon_drift = spec.max_drift * std::min(1.0, spec.periods / 30.0);
  const double start = profile[0];
  const double scale = raw_peak > 0.0 ? horizon_drift / raw_peak : 0.0;
  for (double& p : profile) p = 1.0 + (p - start) * scale;
  return profile;
}

}  // namespace gridadmm::grid
