// Parser for the MATPOWER case format (the `.m` files distributed with
// MATPOWER and used by the paper for the pegase / ACTIVSg grids).
#pragma once

#include <string>

#include "grid/network.hpp"

namespace gridadmm::grid {

/// Parses MATPOWER case text into a Network. The returned network is NOT
/// finalized so callers may adjust data first. Throws ParseError on
/// malformed input and ModelError on semantically invalid cases.
Network parse_matpower(const std::string& text, const std::string& name = "matpower");

/// Reads and parses a MATPOWER case file from disk.
Network load_matpower_file(const std::string& path);

/// Serializes a network back to MATPOWER case text. Accepts finalized
/// networks (converting per-unit quantities back to MW/MVAr/degrees) and
/// raw ones; parse_matpower(write_matpower(net)) round-trips the model.
std::string write_matpower(const Network& net);

/// Writes write_matpower(net) to `path`.
void save_matpower_file(const Network& net, const std::string& path);

}  // namespace gridadmm::grid
