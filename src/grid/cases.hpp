// Embedded canonical test cases (MATPOWER text) plus a unified case loader.
#pragma once

#include <string>
#include <vector>

#include "grid/network.hpp"

namespace gridadmm::grid {

/// Returns the raw MATPOWER text of an embedded case ("case9", "case14",
/// "case30"). Throws ParseError for unknown names.
const std::string& embedded_case_text(const std::string& name);

/// Names of all embedded cases.
std::vector<std::string> embedded_case_names();

/// Parses and finalizes an embedded case.
Network load_embedded_case(const std::string& name);

/// Unified loader: embedded case name, synthetic preset name (see
/// synthetic.hpp, e.g. "1354pegase"), or a path to a MATPOWER file.
/// The returned network is finalized.
Network load_case(const std::string& name_or_path);

}  // namespace gridadmm::grid
