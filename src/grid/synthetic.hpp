// Deterministic synthetic grid generator.
//
// The paper evaluates on MATPOWER pegase (1354-13659 buses) and ACTIVSg
// (25k/70k buses) cases that cannot be redistributed inside this offline
// sandbox. This generator produces connected, solvable grids matching the
// exact component counts of the paper's Table I, with realistic impedance,
// loading and cost distributions, and line ratings derived from a DC power
// flow so that limits have realistic headroom (mostly slack, a few tight).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/network.hpp"

namespace gridadmm::grid {

struct SyntheticSpec {
  std::string name = "synthetic";
  int buses = 100;
  int branches = 150;      ///< must be >= buses for the ring backbone
  int generators = 20;
  std::uint64_t seed = 1;
  double avg_load_mw = 50.0;        ///< mean real load of load buses
  double load_bus_fraction = 0.7;   ///< fraction of buses carrying load
  double capacity_margin = 1.7;      ///< total Pmax / total load
  double rate_margin = 2.5;          ///< line rating / apparent-flow estimate
  double tight_line_fraction = 0.08; ///< lines rated closer to their flow
};

/// Generates a finalized network from the spec.
Network make_synthetic_grid(const SyntheticSpec& spec);

/// True if `name` matches a preset from the paper's Table I
/// ("1354pegase", "2869pegase", "9241pegase", "13659pegase",
///  "ACTIVSg25k", "ACTIVSg70k").
bool is_synthetic_case(const std::string& name);

/// Returns the spec of a Table I preset. Throws ParseError for unknown names.
SyntheticSpec synthetic_case_spec(const std::string& name);

/// Generates a finalized network for a Table I preset.
Network make_synthetic_case(const std::string& name);

/// All Table I preset names, smallest first.
std::vector<std::string> synthetic_case_names();

}  // namespace gridadmm::grid
