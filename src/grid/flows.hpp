// Branch power flow functions of the paper's formulation (1i)-(1l), in
// polar voltage coordinates, with analytic first and second derivatives.
//
// With theta = ti - tj, wi = vi^2, wR = vi vj cos(theta), wI = vi vj
// sin(theta), every flow has the generic form
//     F = alpha * v_side^2 + vi * vj * (A cos(theta) + B sin(theta)),
// which is what eval/gradient/Hessian exploit below:
//     pij =  gii wi + gij wR + bij wI
//     qij = -bii wi - bij wR + gij wI
//     pji =  gjj wj + gji wR - bji wI
//     qji = -bjj wj - bji wR - gji wI
//
// The variable order for gradients and Hessians is (vi, vj, ti, tj).
// This module is the single source of truth for these derivatives; both the
// ADMM branch kernel and the interior-point baseline build on it, and the
// finite-difference property tests in tests/test_flows.cpp guard it.
#pragma once

#include <array>

#include "grid/network.hpp"

namespace gridadmm::grid {

/// Flow identifiers; also indices into FlowValues/weights arrays.
enum FlowIndex : int { kPij = 0, kQij = 1, kPji = 2, kQji = 3 };

struct FlowValues {
  std::array<double, 4> f{};  ///< pij, qij, pji, qji
  double operator[](int i) const { return f[i]; }
};

/// Gradient of each flow with respect to (vi, vj, ti, tj).
struct FlowGradients {
  std::array<std::array<double, 4>, 4> g{};  ///< g[flow][var]
};

/// Evaluates the four branch flows at voltage state (vi, vj, ti, tj).
FlowValues eval_flows(const BranchAdmittance& y, double vi, double vj, double ti, double tj);

/// Evaluates flows and their gradients.
void eval_flow_gradients(const BranchAdmittance& y, double vi, double vj, double ti, double tj,
                         FlowValues& values, FlowGradients& grads);

/// Accumulates sum_f w[f] * Hessian(flow_f) into the symmetric 4x4 matrix
/// `h` (row-major, full storage, += semantics).
void accumulate_flow_hessian(const BranchAdmittance& y, double vi, double vj, double ti,
                             double tj, const std::array<double, 4>& w, double h[16]);

}  // namespace gridadmm::grid
