// Branch power flow functions of the paper's formulation (1i)-(1l), in
// polar voltage coordinates, with analytic first and second derivatives.
//
// With theta = ti - tj, wi = vi^2, wR = vi vj cos(theta), wI = vi vj
// sin(theta), every flow has the generic form
//     F = alpha * v_side^2 + vi * vj * (A cos(theta) + B sin(theta)),
// which is what eval/gradient/Hessian exploit below:
//     pij =  gii wi + gij wR + bij wI
//     qij = -bii wi - bij wR + gij wI
//     pji =  gjj wj + gji wR - bji wI
//     qji = -bjj wj - bji wR - gji wI
//
// The variable order for gradients and Hessians is (vi, vj, ti, tj).
// This module is the single source of truth for these derivatives; both the
// ADMM branch kernel and the interior-point baseline build on it, and the
// finite-difference property tests in tests/test_flows.cpp guard it.
#pragma once

#include <array>
#include <cmath>

#include "grid/network.hpp"

namespace gridadmm::grid {

/// Flow identifiers; also indices into FlowValues/weights arrays.
enum FlowIndex : int { kPij = 0, kQij = 1, kPji = 2, kQji = 3 };

struct FlowValues {
  std::array<double, 4> f{};  ///< pij, qij, pji, qji
  double operator[](int i) const { return f[i]; }
};

/// Gradient of each flow with respect to (vi, vj, ti, tj).
struct FlowGradients {
  std::array<std::array<double, 4>, 4> g{};  ///< g[flow][var]
};

/// Evaluates the four branch flows at voltage state (vi, vj, ti, tj).
FlowValues eval_flows(const BranchAdmittance& y, double vi, double vj, double ti, double tj);

/// Precomputed trigonometric state of one evaluation point: cos/sin of the
/// angle difference and the voltage product. Every flow derivative is built
/// from these three values, so a caller evaluating flows, gradients, and
/// Hessians at the same point (the branch fast path) can pay for the
/// sin/cos once. flow_trig + the overloads below produce bit-identical
/// results to the plain entry points, which forward to them.
struct FlowTrig {
  double c = 0.0;   ///< cos(ti - tj)
  double s = 0.0;   ///< sin(ti - tj)
  double vv = 0.0;  ///< vi * vj
};

inline FlowTrig flow_trig(double vi, double vj, double ti, double tj) {
  return {std::cos(ti - tj), std::sin(ti - tj), vi * vj};
}

namespace detail {

/// Coefficients of the generic flow form F = alpha v_side^2 + vi vj K(theta),
/// K = A cos(theta) + B sin(theta).
struct Coeffs {
  double alpha;
  int side;  // 0: alpha multiplies vi^2, 1: vj^2
  double a, b;
};

inline Coeffs coeffs(const BranchAdmittance& y, int flow) {
  switch (flow) {
    case kPij: return {y.gii, 0, y.gij, y.bij};
    case kQij: return {-y.bii, 0, -y.bij, y.gij};
    case kPji: return {y.gjj, 1, y.gji, -y.bji};
    default:   return {-y.bjj, 1, -y.bji, -y.gji};
  }
}

}  // namespace detail

/// Evaluates flows and their gradients.
void eval_flow_gradients(const BranchAdmittance& y, double vi, double vj, double ti, double tj,
                         FlowValues& values, FlowGradients& grads);

/// Trig-cached variant: `trig` must be flow_trig(vi, vj, ti, tj). Inline —
/// the branch fast path runs it once per TRON objective evaluation, where
/// an out-of-line call is measurable.
inline void eval_flow_gradients(const BranchAdmittance& y, double vi, double vj,
                                const FlowTrig& trig, FlowValues& values, FlowGradients& grads) {
  const double c = trig.c;
  const double s = trig.s;
  const double vv = trig.vv;
  for (int flow = 0; flow < 4; ++flow) {
    const detail::Coeffs k = detail::coeffs(y, flow);
    const double kk = k.a * c + k.b * s;    // K(theta)
    const double kp = -k.a * s + k.b * c;   // K'(theta)
    const double vside = k.side == 0 ? vi : vj;
    values.f[flow] = k.alpha * vside * vside + vv * kk;
    auto& g = grads.g[flow];
    g[0] = (k.side == 0 ? 2.0 * k.alpha * vi : 0.0) + vj * kk;  // d/dvi
    g[1] = (k.side == 1 ? 2.0 * k.alpha * vj : 0.0) + vi * kk;  // d/dvj
    g[2] = vv * kp;                                              // d/dti
    g[3] = -vv * kp;                                             // d/dtj
  }
}

/// Accumulates sum_f w[f] * Hessian(flow_f) into the symmetric 4x4 matrix
/// `h` (row-major, full storage, += semantics).
void accumulate_flow_hessian(const BranchAdmittance& y, double vi, double vj, double ti,
                             double tj, const std::array<double, 4>& w, double h[16]);

/// Trig-cached variant: `trig` must be flow_trig(vi, vj, ti, tj). Inline
/// for the same reason as the trig-cached eval_flow_gradients.
inline void accumulate_flow_hessian(const BranchAdmittance& y, double vi, double vj,
                                    const FlowTrig& trig, const std::array<double, 4>& w,
                                    double h[16]) {
  const double c = trig.c;
  const double s = trig.s;
  const double vv = trig.vv;
  for (int flow = 0; flow < 4; ++flow) {
    const double wf = w[flow];
    if (wf == 0.0) continue;
    const detail::Coeffs k = detail::coeffs(y, flow);
    const double kk = k.a * c + k.b * s;
    const double kp = -k.a * s + k.b * c;
    // Second derivatives of F in (vi, vj, ti, tj):
    //   F_vivi = 2 alpha [side i]     F_vjvj = 2 alpha [side j]
    //   F_vivj = K
    //   F_viti = vj K'   F_vitj = -vj K'   F_vjti = vi K'   F_vjtj = -vi K'
    //   F_titi = F_tjtj = -vi vj K        F_titj = +vi vj K
    const double h_vivi = k.side == 0 ? 2.0 * k.alpha : 0.0;
    const double h_vjvj = k.side == 1 ? 2.0 * k.alpha : 0.0;
    const double h_vivj = kk;
    const double h_viti = vj * kp;
    const double h_vjti = vi * kp;
    const double h_tt = -vv * kk;

    h[0 * 4 + 0] += wf * h_vivi;
    h[1 * 4 + 1] += wf * h_vjvj;
    h[0 * 4 + 1] += wf * h_vivj;
    h[1 * 4 + 0] += wf * h_vivj;
    h[0 * 4 + 2] += wf * h_viti;
    h[2 * 4 + 0] += wf * h_viti;
    h[0 * 4 + 3] += wf * -h_viti;
    h[3 * 4 + 0] += wf * -h_viti;
    h[1 * 4 + 2] += wf * h_vjti;
    h[2 * 4 + 1] += wf * h_vjti;
    h[1 * 4 + 3] += wf * -h_vjti;
    h[3 * 4 + 1] += wf * -h_vjti;
    h[2 * 4 + 2] += wf * h_tt;
    h[3 * 4 + 3] += wf * h_tt;
    h[2 * 4 + 3] += wf * -h_tt;
    h[3 * 4 + 2] += wf * -h_tt;
  }
}

}  // namespace gridadmm::grid
