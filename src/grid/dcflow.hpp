// DC power flow: the linearized lossless approximation B' theta = P used
// for fast screening, initial rating estimates, and as a sanity reference
// for the AC solvers at small angles.
#pragma once

#include <span>
#include <vector>

#include "grid/network.hpp"

namespace gridadmm::grid {

struct DcFlowResult {
  std::vector<double> theta;        ///< bus angles (radians, ref = 0)
  std::vector<double> branch_flow;  ///< per-branch real power (p.u., from->to)
};

/// Solves the DC power flow for the given per-bus net injection
/// (generation minus load, p.u.; must sum to ~0 for a meaningful answer —
/// any imbalance is absorbed by the reference bus). Uses the network's
/// reference bus as the angle datum. Throws NumericalError if the reduced
/// susceptance matrix is singular (disconnected island).
DcFlowResult solve_dc_flow(const Network& net, std::span<const double> injection);

/// Convenience: injections from a dispatch proportional to Pmax covering
/// the current loads.
DcFlowResult solve_dc_flow_proportional(const Network& net);

/// Low-level entry point working directly on branch data (any consistent
/// unit system; used by the synthetic generator before finalize()).
/// `ref` is the angle-datum bus.
DcFlowResult solve_dc_flow_raw(int num_buses, std::span<const Branch> branches,
                               std::span<const double> injection, int ref);

}  // namespace gridadmm::grid
