// ACOPF solution container and quality metrics.
//
// The paper reports, for each solver run, the objective value, the maximum
// constraint violation ||c(x)||_inf (with branch flows recomputed from the
// bus voltages, exactly as in Section IV-A), and the relative objective gap
// versus the baseline.
#pragma once

#include <vector>

#include "grid/network.hpp"

namespace gridadmm::grid {

struct OpfSolution {
  std::vector<double> vm;  ///< voltage magnitudes (p.u.), one per bus
  std::vector<double> va;  ///< voltage angles (radians), one per bus
  std::vector<double> pg;  ///< real dispatch (p.u.), one per generator
  std::vector<double> qg;  ///< reactive dispatch (p.u.), one per generator

  /// Allocates zero-filled arrays of the right sizes.
  static OpfSolution zeros(const Network& net);
};

struct SolutionQuality {
  double objective = 0.0;            ///< generation cost ($/h)
  double power_balance_violation = 0.0;  ///< max |P/Q mismatch| (p.u.)
  double line_violation = 0.0;       ///< max apparent-flow excess over rate (p.u.)
  double bound_violation = 0.0;      ///< max violation of variable bounds
  double max_violation = 0.0;        ///< the paper's ||c(x)||_inf
};

/// Evaluates the solution against the network's constraints. Branch flows
/// are recomputed from vm/va. `line_capacity_factor` scales the rates (the
/// paper tightens limits to 99% inside ADMM; evaluation uses 1.0).
SolutionQuality evaluate_solution(const Network& net, const OpfSolution& sol,
                                  double line_capacity_factor = 1.0);

/// Relative objective gap |f - f_ref| / |f_ref| (paper's last column).
double relative_gap(double objective, double reference_objective);

}  // namespace gridadmm::grid
