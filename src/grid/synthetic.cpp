#include "grid/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "grid/dcflow.hpp"

namespace gridadmm::grid {

Network make_synthetic_grid(const SyntheticSpec& spec) {
  require(spec.buses >= 3, "synthetic: need at least 3 buses");
  require(spec.branches >= spec.buses, "synthetic: need branches >= buses for the ring backbone");
  require(spec.generators >= 1 && spec.generators <= spec.buses,
          "synthetic: generator count out of range");

  Rng rng(spec.seed);
  Network net;
  net.name = spec.name;
  net.base_mva = 100.0;
  const int nb = spec.buses;

  // ---- Buses and loads ----
  net.buses.resize(static_cast<std::size_t>(nb));
  for (int i = 0; i < nb; ++i) {
    Bus& bus = net.buses[i];
    bus.id = i + 1;
    bus.type = BusType::kPQ;
    bus.vmin = 0.94;
    bus.vmax = 1.06;
    if (rng.flip(spec.load_bus_fraction)) {
      // Load spread: mostly moderate, a few heavy buses (lognormal tail).
      bus.pd = spec.avg_load_mw * rng.lognormal(-0.15, 0.55);
      bus.qd = bus.pd * rng.uniform(0.15, 0.45);
    }
    if (rng.flip(0.04)) {
      // Shunt capacitor sized relative to the loading level so lightly
      // loaded grids are not forced into overvoltage.
      bus.bs = rng.uniform(0.1, 0.6) * spec.avg_load_mw;
    }
  }

  // ---- Topology: ring backbone + meshing ties ----
  std::set<std::pair<int, int>> used;
  auto add_branch = [&](int a, int b) {
    Branch branch;
    branch.from = a;
    branch.to = b;
    // Impedances: x spans two decades like transmission data; r gives
    // x/r ratios of 3-12; charging proportional to reactance.
    branch.x = std::pow(10.0, rng.uniform(-2.5, -0.9));
    branch.r = branch.x * rng.uniform(0.08, 0.35);
    branch.b = branch.x * rng.uniform(0.1, 0.8);
    if (rng.flip(0.08)) {
      // Transformer: realistic leakage reactance (0.03-0.15 p.u.). An
      // off-nominal tap on a very low impedance branch would circulate
      // tens of p.u. of reactive power and make the case unsolvable.
      branch.x = rng.uniform(0.03, 0.15);
      branch.r = branch.x * rng.uniform(0.02, 0.1);
      branch.b = 0.0;
      branch.tap = rng.uniform(0.97, 1.03);
    }
    used.insert({std::min(a, b), std::max(a, b)});
    net.branches.push_back(branch);
  };
  for (int i = 0; i < nb; ++i) add_branch(i, (i + 1) % nb);
  int attempts = 0;
  while (static_cast<int>(net.branches.size()) < spec.branches) {
    int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(nb)));
    // Prefer local ties (geographic realism): skip distance is geometric.
    const int max_skip = std::max(2, nb / 8);
    int skip = 2 + static_cast<int>(rng.uniform(0.0, 1.0) * rng.uniform(0.0, 1.0) * max_skip);
    int b = (a + skip) % nb;
    if (a == b) continue;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (used.count(key) != 0 && ++attempts < 20 * spec.branches) continue;
    add_branch(a, b);
  }

  // ---- Generators ----
  double total_load = 0.0;
  for (const auto& bus : net.buses) total_load += bus.pd;
  const double total_capacity = spec.capacity_margin * total_load;
  std::vector<double> shares(static_cast<std::size_t>(spec.generators));
  double share_sum = 0.0;
  for (auto& s : shares) {
    s = rng.uniform(0.3, 1.7);
    share_sum += s;
  }
  // Generator buses: bus 0 always has one (reference); the rest random.
  std::vector<int> gen_buses(static_cast<std::size_t>(spec.generators));
  gen_buses[0] = 0;
  for (int g = 1; g < spec.generators; ++g) {
    gen_buses[g] = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(nb)));
  }
  for (int g = 0; g < spec.generators; ++g) {
    Generator gen;
    gen.bus = gen_buses[g];
    gen.pmax = total_capacity * shares[g] / share_sum;
    gen.pmin = 0.0;
    gen.qmax = 0.6 * gen.pmax;
    gen.qmin = -0.4 * gen.pmax;
    gen.c2 = rng.uniform(0.002, 0.02);
    gen.c1 = rng.uniform(15.0, 45.0);
    gen.c0 = 0.0;
    gen.ramp = 0.02 * gen.pmax;  // the paper's 2% of Pmax per minute
    net.generators.push_back(gen);
  }
  net.buses[0].type = BusType::kRef;

  // ---- Flow-aware impedances and line ratings ----
  // Dispatch generators proportionally to capacity and estimate per-line
  // flows with a DC power flow. Two passes: first cap each line's voltage
  // drop (x |f| and r |f|) like real grids, whose heavy corridors are
  // low-impedance; then rate lines on estimated *apparent* power (the DC
  // estimate only sees real power, so scale for reactive flow and losses)
  // with configurable headroom.
  std::vector<double> injection(static_cast<std::size_t>(nb), 0.0);
  for (const auto& gen : net.generators) {
    injection[gen.bus] += total_load * (gen.pmax / total_capacity);
  }
  for (int i = 0; i < nb; ++i) injection[i] -= net.buses[i].pd;
  std::vector<double> dc;
  for (int pass = 0; pass < 2; ++pass) {
    dc = solve_dc_flow_raw(nb, net.branches, injection, /*ref=*/0).branch_flow;
    // Impedance correction pass: per-unit flow on a 100 MVA base.
    const double max_drop = 0.04;  // target per-line series voltage drop (p.u.)
    bool changed = false;
    for (std::size_t l = 0; l < net.branches.size(); ++l) {
      auto& branch = net.branches[l];
      const double flow_pu = std::abs(dc[l]) / 100.0;
      const double drop = branch.x * flow_pu;
      if (drop > max_drop) {
        const double scale = max_drop / drop;
        branch.x *= scale;
        branch.r *= scale;
        branch.b *= scale;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // The floor must stay above circulating reactive power (line charging and
  // shunts produce flow even on lines whose DC real-power estimate is ~0).
  const double floor_mw = 1.5 * spec.avg_load_mw;
  const double apparent_factor = 1.5;  // reactive flow + losses headroom
  for (std::size_t l = 0; l < net.branches.size(); ++l) {
    const bool tight = rng.flip(spec.tight_line_fraction);
    const double margin = tight ? 1.0 + 0.3 * (spec.rate_margin - 1.0) : spec.rate_margin;
    net.branches[l].rate = std::max(margin * apparent_factor * std::abs(dc[l]), floor_mw);
  }

  net.finalize();
  log::debug("synthetic grid ", spec.name, ": ", nb, " buses, ", net.num_branches(),
             " branches, ", net.num_generators(), " generators, total load ",
             total_load, " MW");
  return net;
}

namespace {

const std::vector<std::pair<std::string, SyntheticSpec>>& presets() {
  // Component counts follow the paper's Table I exactly.
  static const std::vector<std::pair<std::string, SyntheticSpec>> kPresets = [] {
    std::vector<std::pair<std::string, SyntheticSpec>> p;
    auto add = [&](const std::string& name, int gens, int branches, int buses,
                   std::uint64_t seed) {
      SyntheticSpec spec;
      spec.name = name;
      spec.generators = gens;
      spec.branches = branches;
      spec.buses = buses;
      spec.seed = seed;
      p.emplace_back(name, spec);
    };
    add("1354pegase", 260, 1991, 1354, 101);
    add("2869pegase", 510, 4582, 2869, 102);
    add("9241pegase", 1445, 16049, 9241, 103);
    add("13659pegase", 4092, 20467, 13659, 104);
    add("ACTIVSg25k", 4834, 32230, 25000, 105);
    add("ACTIVSg70k", 10390, 88207, 70000, 106);
    return p;
  }();
  return kPresets;
}

}  // namespace

bool is_synthetic_case(const std::string& name) {
  for (const auto& [preset_name, spec] : presets()) {
    if (preset_name == name) return true;
  }
  return false;
}

SyntheticSpec synthetic_case_spec(const std::string& name) {
  for (const auto& [preset_name, spec] : presets()) {
    if (preset_name == name) return spec;
  }
  throw ParseError("unknown synthetic case: " + name);
}

Network make_synthetic_case(const std::string& name) {
  return make_synthetic_grid(synthetic_case_spec(name));
}

std::vector<std::string> synthetic_case_names() {
  std::vector<std::string> names;
  for (const auto& [name, spec] : presets()) names.push_back(name);
  return names;
}

}  // namespace gridadmm::grid
