#include "grid/flows.hpp"

#include <cmath>

namespace gridadmm::grid {

FlowValues eval_flows(const BranchAdmittance& y, double vi, double vj, double ti, double tj) {
  const double c = std::cos(ti - tj);
  const double s = std::sin(ti - tj);
  const double vv = vi * vj;
  FlowValues out;
  for (int flow = 0; flow < 4; ++flow) {
    const detail::Coeffs k = detail::coeffs(y, flow);
    const double vside = k.side == 0 ? vi : vj;
    out.f[flow] = k.alpha * vside * vside + vv * (k.a * c + k.b * s);
  }
  return out;
}

void eval_flow_gradients(const BranchAdmittance& y, double vi, double vj, double ti, double tj,
                         FlowValues& values, FlowGradients& grads) {
  eval_flow_gradients(y, vi, vj, flow_trig(vi, vj, ti, tj), values, grads);
}

void accumulate_flow_hessian(const BranchAdmittance& y, double vi, double vj, double ti,
                             double tj, const std::array<double, 4>& w, double h[16]) {
  accumulate_flow_hessian(y, vi, vj, flow_trig(vi, vj, ti, tj), w, h);
}

}  // namespace gridadmm::grid
