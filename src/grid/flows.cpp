#include "grid/flows.hpp"

#include <cmath>

namespace gridadmm::grid {

namespace {

/// Coefficients of the generic flow form F = alpha v_side^2 + vi vj K(theta),
/// K = A cos(theta) + B sin(theta).
struct Coeffs {
  double alpha;
  int side;  // 0: alpha multiplies vi^2, 1: vj^2
  double a, b;
};

inline Coeffs coeffs(const BranchAdmittance& y, int flow) {
  switch (flow) {
    case kPij: return {y.gii, 0, y.gij, y.bij};
    case kQij: return {-y.bii, 0, -y.bij, y.gij};
    case kPji: return {y.gjj, 1, y.gji, -y.bji};
    default:   return {-y.bjj, 1, -y.bji, -y.gji};
  }
}

}  // namespace

FlowValues eval_flows(const BranchAdmittance& y, double vi, double vj, double ti, double tj) {
  const double c = std::cos(ti - tj);
  const double s = std::sin(ti - tj);
  const double vv = vi * vj;
  FlowValues out;
  for (int flow = 0; flow < 4; ++flow) {
    const Coeffs k = coeffs(y, flow);
    const double vside = k.side == 0 ? vi : vj;
    out.f[flow] = k.alpha * vside * vside + vv * (k.a * c + k.b * s);
  }
  return out;
}

void eval_flow_gradients(const BranchAdmittance& y, double vi, double vj, double ti, double tj,
                         FlowValues& values, FlowGradients& grads) {
  const double c = std::cos(ti - tj);
  const double s = std::sin(ti - tj);
  const double vv = vi * vj;
  for (int flow = 0; flow < 4; ++flow) {
    const Coeffs k = coeffs(y, flow);
    const double kk = k.a * c + k.b * s;    // K(theta)
    const double kp = -k.a * s + k.b * c;   // K'(theta)
    const double vside = k.side == 0 ? vi : vj;
    values.f[flow] = k.alpha * vside * vside + vv * kk;
    auto& g = grads.g[flow];
    g[0] = (k.side == 0 ? 2.0 * k.alpha * vi : 0.0) + vj * kk;  // d/dvi
    g[1] = (k.side == 1 ? 2.0 * k.alpha * vj : 0.0) + vi * kk;  // d/dvj
    g[2] = vv * kp;                                              // d/dti
    g[3] = -vv * kp;                                             // d/dtj
  }
}

void accumulate_flow_hessian(const BranchAdmittance& y, double vi, double vj, double ti,
                             double tj, const std::array<double, 4>& w, double h[16]) {
  const double c = std::cos(ti - tj);
  const double s = std::sin(ti - tj);
  const double vv = vi * vj;
  for (int flow = 0; flow < 4; ++flow) {
    const double wf = w[flow];
    if (wf == 0.0) continue;
    const Coeffs k = coeffs(y, flow);
    const double kk = k.a * c + k.b * s;
    const double kp = -k.a * s + k.b * c;
    // Second derivatives of F in (vi, vj, ti, tj):
    //   F_vivi = 2 alpha [side i]     F_vjvj = 2 alpha [side j]
    //   F_vivj = K
    //   F_viti = vj K'   F_vitj = -vj K'   F_vjti = vi K'   F_vjtj = -vi K'
    //   F_titi = F_tjtj = -vi vj K        F_titj = +vi vj K
    const double h_vivi = k.side == 0 ? 2.0 * k.alpha : 0.0;
    const double h_vjvj = k.side == 1 ? 2.0 * k.alpha : 0.0;
    const double h_vivj = kk;
    const double h_viti = vj * kp;
    const double h_vjti = vi * kp;
    const double h_tt = -vv * kk;

    h[0 * 4 + 0] += wf * h_vivi;
    h[1 * 4 + 1] += wf * h_vjvj;
    h[0 * 4 + 1] += wf * h_vivj;
    h[1 * 4 + 0] += wf * h_vivj;
    h[0 * 4 + 2] += wf * h_viti;
    h[2 * 4 + 0] += wf * h_viti;
    h[0 * 4 + 3] += wf * -h_viti;
    h[3 * 4 + 0] += wf * -h_viti;
    h[1 * 4 + 2] += wf * h_vjti;
    h[2 * 4 + 1] += wf * h_vjti;
    h[1 * 4 + 3] += wf * -h_vjti;
    h[3 * 4 + 1] += wf * -h_vjti;
    h[2 * 4 + 2] += wf * h_tt;
    h[3 * 4 + 3] += wf * h_tt;
    h[2 * 4 + 3] += wf * -h_tt;
    h[3 * 4 + 2] += wf * -h_tt;
  }
}

}  // namespace gridadmm::grid
