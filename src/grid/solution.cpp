#include "grid/solution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "grid/flows.hpp"

namespace gridadmm::grid {

OpfSolution OpfSolution::zeros(const Network& net) {
  OpfSolution sol;
  sol.vm.assign(static_cast<std::size_t>(net.num_buses()), 0.0);
  sol.va.assign(static_cast<std::size_t>(net.num_buses()), 0.0);
  sol.pg.assign(static_cast<std::size_t>(net.num_generators()), 0.0);
  sol.qg.assign(static_cast<std::size_t>(net.num_generators()), 0.0);
  return sol;
}

SolutionQuality evaluate_solution(const Network& net, const OpfSolution& sol,
                                  double line_capacity_factor) {
  require(net.finalized(), "evaluate_solution: network not finalized");
  require(static_cast<int>(sol.vm.size()) == net.num_buses() &&
              static_cast<int>(sol.va.size()) == net.num_buses() &&
              static_cast<int>(sol.pg.size()) == net.num_generators() &&
              static_cast<int>(sol.qg.size()) == net.num_generators(),
          "evaluate_solution: solution size mismatch");

  SolutionQuality q;
  q.objective = net.generation_cost(sol.pg);

  const int nb = net.num_buses();
  std::vector<double> p_mis(static_cast<std::size_t>(nb), 0.0);
  std::vector<double> q_mis(static_cast<std::size_t>(nb), 0.0);
  for (int i = 0; i < nb; ++i) {
    const auto& bus = net.buses[i];
    const double w = sol.vm[i] * sol.vm[i];
    p_mis[i] = -bus.pd - bus.gs * w;
    q_mis[i] = -bus.qd + bus.bs * w;
  }
  for (std::size_t g = 0; g < sol.pg.size(); ++g) {
    p_mis[net.generators[g].bus] += sol.pg[g];
    q_mis[net.generators[g].bus] += sol.qg[g];
  }
  for (int l = 0; l < net.num_branches(); ++l) {
    const auto& branch = net.branches[l];
    const FlowValues f = eval_flows(net.admittances[l], sol.vm[branch.from], sol.vm[branch.to],
                                    sol.va[branch.from], sol.va[branch.to]);
    p_mis[branch.from] -= f[kPij];
    q_mis[branch.from] -= f[kQij];
    p_mis[branch.to] -= f[kPji];
    q_mis[branch.to] -= f[kQji];
    if (branch.rate > 0.0) {
      const double rate = branch.rate * line_capacity_factor;
      const double sij = std::hypot(f[kPij], f[kQij]);
      const double sji = std::hypot(f[kPji], f[kQji]);
      q.line_violation = std::max({q.line_violation, sij - rate, sji - rate});
    }
  }
  for (int i = 0; i < nb; ++i) {
    q.power_balance_violation =
        std::max({q.power_balance_violation, std::abs(p_mis[i]), std::abs(q_mis[i])});
  }

  for (int i = 0; i < nb; ++i) {
    const auto& bus = net.buses[i];
    q.bound_violation = std::max({q.bound_violation, bus.vmin - sol.vm[i], sol.vm[i] - bus.vmax});
  }
  for (std::size_t g = 0; g < sol.pg.size(); ++g) {
    const auto& gen = net.generators[g];
    q.bound_violation = std::max({q.bound_violation, gen.pmin - sol.pg[g], sol.pg[g] - gen.pmax,
                                  gen.qmin - sol.qg[g], sol.qg[g] - gen.qmax});
  }
  q.bound_violation = std::max(q.bound_violation, 0.0);
  q.line_violation = std::max(q.line_violation, 0.0);
  q.max_violation =
      std::max({q.power_balance_violation, q.line_violation, q.bound_violation});
  return q;
}

double relative_gap(double objective, double reference_objective) {
  const double denom = std::abs(reference_objective);
  return std::abs(objective - reference_objective) / (denom > 0.0 ? denom : 1.0);
}

}  // namespace gridadmm::grid
