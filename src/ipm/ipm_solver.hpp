// Primal-dual interior-point NLP solver ("MiniIPM") — the from-scratch
// stand-in for the paper's Ipopt/MA57 baseline (DESIGN.md section 2).
//
// Algorithm: log-barrier with slacks for inequality rows, monotone
// Fiacco-McCormick barrier schedule, Newton steps on the primal-dual KKT
// system factored by inertia-corrected sparse LDL^T, fraction-to-boundary
// rule, and an l1-merit Armijo line search. Matches Ipopt's qualitative
// behaviour (factorization-dominated cost, little warm-start benefit),
// which is what the paper's comparisons rely on.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "ipm/kkt_system.hpp"
#include "ipm/nlp.hpp"

namespace gridadmm::ipm {

struct IpmOptions {
  double tolerance = 1e-6;       ///< KKT error target (E_0)
  int max_iterations = 300;
  double mu_init = 0.1;
  double kappa_eps = 10.0;       ///< barrier subproblem tolerance factor
  double kappa_mu = 0.2;         ///< linear barrier decrease
  double theta_mu = 1.5;         ///< superlinear barrier decrease
  double tau_min = 0.99;         ///< fraction-to-boundary floor
  double bound_push = 1e-2;      ///< cold-start interior push (kappa_1)
  double warm_bound_push = 1e-6; ///< warm-start interior push
  bool warm_start = false;       ///< keep caller-provided primal/dual state
  int max_backtracks = 30;
  double armijo_coefficient = 1e-4;
  linalg::OrderingMethod ordering = linalg::OrderingMethod::kMinDegree;
  /// Wall-clock budget in seconds (0 = unlimited). Checked once per
  /// iteration; a solve that exceeds it stops with kTimeBudget. Lets the
  /// serve layer bound the fallback engine by a request deadline.
  double max_wall_seconds = 0.0;
};

enum class IpmStatus {
  kOptimal,
  kMaxIterations,
  kKktFailure,        ///< inertia correction could not factorize the system
  kLineSearchFailure, ///< repeated merit-decrease failures
  kTimeBudget         ///< IpmOptions::max_wall_seconds exhausted
};

/// Human-readable status name for logs and error messages.
const char* ipm_status_name(IpmStatus status);

struct IpmResult {
  IpmStatus status = IpmStatus::kMaxIterations;
  int iterations = 0;
  double objective = 0.0;
  double kkt_error = std::numeric_limits<double>::infinity();
  double constraint_violation = std::numeric_limits<double>::infinity();
  double mu = 0.0;
  double solve_seconds = 0.0;
  int factorizations = 0;
};

class IpmSolver {
 public:
  explicit IpmSolver(Nlp& nlp, IpmOptions options = {});

  /// Process-wide count of IpmSolver constructions. Lets tests assert that
  /// a router-disabled serving path never builds a fallback engine (the
  /// same inertness idiom as obs::SloMonitor::allocations()).
  static std::uint64_t allocations();

  /// Solves from the NLP's initial point, or from the state left by a
  /// previous solve() when options.warm_start is true.
  IpmResult solve();

  /// Primal values of the NLP variables (excludes internal slacks).
  [[nodiscard]] std::span<const double> primal() const { return {x_.data(), static_cast<std::size_t>(n_)}; }
  /// Overrides the primal start (e.g. the previous period's solution or an
  /// ADMM iterate). A warm start seeded this way keeps the primal but
  /// re-initializes the duals cold — an ADMM iterate carries no usable
  /// multipliers for the IPM's bound duals; only a previous solve() leaves
  /// full warm state behind.
  void set_primal(std::span<const double> x);

  [[nodiscard]] const IpmOptions& options() const { return options_; }
  IpmOptions& options() { return options_; }

 private:
  void build_structures();
  void initialize_iterate();
  void eval_all();      // f, grad, c, J at current X
  double kkt_error(double mu) const;
  double merit(double mu, double nu, std::span<const double> x_trial,
               std::span<double> c_scratch);
  void compute_sigma(std::vector<double>& sigma) const;

  Nlp& nlp_;
  IpmOptions options_;

  int n_ = 0;       // NLP variables
  int m_ = 0;       // constraint rows
  int ns_ = 0;      // inequality slacks
  int nx_ = 0;      // n + ns
  std::vector<int> slack_of_row_;   // -1 for equality rows
  std::vector<double> cl_, cu_;     // constraint bounds
  std::vector<double> lower_, upper_;  // bounds over X = [x; s]

  SparsityPattern jac_aug_;         // NLP jacobian + slack columns
  std::size_t jac_nlp_nnz_ = 0;

  KktSystem kkt_;

  // Iterate.
  std::vector<double> x_;           // X = [x; s]
  std::vector<double> lambda_, zl_, zu_;
  bool have_state_ = false;       // primal seed available (set_primal/solve)
  bool have_dual_state_ = false;  // duals are from a previous solve()

  // Work arrays.
  std::vector<double> grad_, c_, jac_values_, hess_values_;
  std::vector<double> rhs_, dx_, dlambda_, dzl_, dzu_, x_trial_, c_trial_;
};

}  // namespace gridadmm::ipm
