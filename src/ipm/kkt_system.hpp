// Assembly and inertia-controlled factorization of the primal-dual KKT
// system
//     [ W + Sigma + dw*I   J^T      ] [dx ]   [rx]
//     [ J                  -dc*I    ] [dl ] = [rl]
// where W is the Lagrangian Hessian over the augmented variables (x plus
// inequality slacks), Sigma the barrier diagonal, and J the constraint
// Jacobian (including the -I slack columns). The inertia-correction loop
// mirrors Ipopt: grow dw until the factorization has exactly (nx, m, 0)
// (positive, negative, zero) eigenvalue counts, adding dc when the system
// is singular.
#pragma once

#include <span>
#include <vector>

#include "ipm/nlp.hpp"
#include "linalg/ldlt.hpp"

namespace gridadmm::ipm {

class KktSystem {
 public:
  /// `nx` total primal variables (x + slacks), `m` constraint rows.
  /// hess/jac describe W (lower triangle, x-block only; slack columns have
  /// no Hessian) and J including slack entries.
  void analyze(int nx, int m, const SparsityPattern& hess, const SparsityPattern& jac,
               linalg::OrderingMethod ordering = linalg::OrderingMethod::kMinDegree);

  /// Refills values and factorizes with inertia correction.
  /// Returns false if no regularization made the system factorizable.
  bool factorize(std::span<const double> hess_values, std::span<const double> jac_values,
                 std::span<const double> sigma /*size nx*/, double mu);

  /// Solves in place: rhs = [rx (nx); rl (m)].
  void solve(std::span<double> rhs) const;

  [[nodiscard]] double primal_regularization() const { return dw_last_; }
  [[nodiscard]] double dual_regularization() const { return dc_last_; }
  [[nodiscard]] std::int64_t factor_nnz() const { return solver_.factor_nnz(); }

 private:
  int nx_ = 0;
  int m_ = 0;
  std::size_t hess_nnz_ = 0;
  std::size_t jac_nnz_ = 0;
  std::vector<double> values_;   // aligned with the analyzed pattern
  std::vector<double> diag_reg_;
  linalg::SymmetricSolver solver_;
  double dw_last_ = 0.0;
  double dc_last_ = 0.0;
};

}  // namespace gridadmm::ipm
