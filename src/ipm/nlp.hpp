// Generic smooth NLP interface consumed by the interior-point solver:
//   min f(x)  s.t.  cl <= c(x) <= cu,  xl <= x <= xu
// (cl == cu marks an equality row). Jacobian and Lagrangian-Hessian use
// coordinate sparsity with repeatable entry order; duplicate coordinates
// are allowed and summed by consumers.
#pragma once

#include <span>
#include <vector>

namespace gridadmm::ipm {

/// Coordinate sparsity pattern. rows/cols have equal length; values arrays
/// passed to eval_* calls align element-wise with these.
struct SparsityPattern {
  std::vector<int> rows;
  std::vector<int> cols;
  [[nodiscard]] std::size_t nnz() const { return rows.size(); }
};

class Nlp {
 public:
  virtual ~Nlp() = default;

  [[nodiscard]] virtual int num_vars() const = 0;
  [[nodiscard]] virtual int num_cons() const = 0;

  virtual void var_bounds(std::span<double> lower, std::span<double> upper) const = 0;
  virtual void con_bounds(std::span<double> lower, std::span<double> upper) const = 0;
  virtual void initial_point(std::span<double> x0) const = 0;

  virtual double eval_objective(std::span<const double> x) = 0;
  virtual void eval_objective_gradient(std::span<const double> x, std::span<double> grad) = 0;
  virtual void eval_constraints(std::span<const double> x, std::span<double> c) = 0;

  [[nodiscard]] virtual const SparsityPattern& jacobian_pattern() const = 0;
  virtual void eval_jacobian(std::span<const double> x, std::span<double> values) = 0;

  /// Lower triangle of W = sigma * H(f) + sum_j lambda_j H(c_j).
  [[nodiscard]] virtual const SparsityPattern& hessian_pattern() const = 0;
  virtual void eval_hessian(std::span<const double> x, double sigma,
                            std::span<const double> lambda, std::span<double> values) = 0;
};

}  // namespace gridadmm::ipm
