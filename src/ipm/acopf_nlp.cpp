#include "ipm/acopf_nlp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"
#include "grid/flows.hpp"

namespace gridadmm::ipm {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

AcopfNlp::AcopfNlp(grid::Network net) : net_(std::move(net)) {
  require(net_.finalized(), "AcopfNlp: network must be finalized");
  for (int l = 0; l < net_.num_branches(); ++l) {
    if (net_.branches[l].rate > 0.0) rated_branches_.push_back(l);
  }
  build_patterns();
}

int AcopfNlp::num_vars() const { return 2 * net_.num_buses() + 2 * net_.num_generators(); }

int AcopfNlp::num_cons() const {
  return 2 * net_.num_buses() + 1 + 2 * static_cast<int>(rated_branches_.size());
}

void AcopfNlp::var_bounds(std::span<double> lower, std::span<double> upper) const {
  for (int i = 0; i < net_.num_buses(); ++i) {
    lower[vm_col(i)] = net_.buses[i].vmin;
    upper[vm_col(i)] = net_.buses[i].vmax;
    lower[va_col(i)] = -kTwoPi;
    upper[va_col(i)] = kTwoPi;
  }
  for (int g = 0; g < net_.num_generators(); ++g) {
    lower[pg_col(g)] = net_.generators[g].pmin;
    upper[pg_col(g)] = net_.generators[g].pmax;
    lower[qg_col(g)] = net_.generators[g].qmin;
    upper[qg_col(g)] = net_.generators[g].qmax;
  }
}

void AcopfNlp::con_bounds(std::span<double> lower, std::span<double> upper) const {
  const int nb = net_.num_buses();
  for (int j = 0; j < 2 * nb + 1; ++j) {
    lower[j] = 0.0;
    upper[j] = 0.0;
  }
  for (std::size_t r = 0; r < rated_branches_.size(); ++r) {
    const double rate = net_.branches[rated_branches_[r]].rate;
    for (int side = 0; side < 2; ++side) {
      lower[2 * nb + 1 + 2 * r + side] = -kInf;
      upper[2 * nb + 1 + 2 * r + side] = rate * rate;
    }
  }
}

void AcopfNlp::initial_point(std::span<double> x0) const {
  // Paper Section IV-B: midpoint dispatch and voltage magnitudes, flat angles.
  for (int i = 0; i < net_.num_buses(); ++i) {
    x0[vm_col(i)] = 0.5 * (net_.buses[i].vmin + net_.buses[i].vmax);
    x0[va_col(i)] = 0.0;
  }
  for (int g = 0; g < net_.num_generators(); ++g) {
    const auto& gen = net_.generators[g];
    x0[pg_col(g)] = 0.5 * (gen.pmin + gen.pmax);
    x0[qg_col(g)] = 0.5 * (gen.qmin + gen.qmax);
  }
}

double AcopfNlp::eval_objective(std::span<const double> x) {
  double total = 0.0;
  for (int g = 0; g < net_.num_generators(); ++g) {
    const auto& gen = net_.generators[g];
    const double pg = x[pg_col(g)];
    total += gen.c2 * pg * pg + gen.c1 * pg + gen.c0;
  }
  return total;
}

void AcopfNlp::eval_objective_gradient(std::span<const double> x, std::span<double> grad) {
  std::fill(grad.begin(), grad.end(), 0.0);
  for (int g = 0; g < net_.num_generators(); ++g) {
    const auto& gen = net_.generators[g];
    grad[pg_col(g)] = 2.0 * gen.c2 * x[pg_col(g)] + gen.c1;
  }
}

void AcopfNlp::eval_constraints(std::span<const double> x, std::span<double> c) {
  const int nb = net_.num_buses();
  for (int i = 0; i < nb; ++i) {
    const auto& bus = net_.buses[i];
    const double vm = x[vm_col(i)];
    c[i] = -bus.pd - bus.gs * vm * vm;
    c[nb + i] = -bus.qd + bus.bs * vm * vm;
  }
  for (int g = 0; g < net_.num_generators(); ++g) {
    c[net_.generators[g].bus] += x[pg_col(g)];
    c[nb + net_.generators[g].bus] += x[qg_col(g)];
  }
  for (int l = 0; l < net_.num_branches(); ++l) {
    const auto& branch = net_.branches[l];
    const auto f = grid::eval_flows(net_.admittances[l], x[vm_col(branch.from)],
                                    x[vm_col(branch.to)], x[va_col(branch.from)],
                                    x[va_col(branch.to)]);
    c[branch.from] -= f[grid::kPij];
    c[nb + branch.from] -= f[grid::kQij];
    c[branch.to] -= f[grid::kPji];
    c[nb + branch.to] -= f[grid::kQji];
  }
  c[2 * nb] = x[va_col(net_.ref_bus)];
  for (std::size_t r = 0; r < rated_branches_.size(); ++r) {
    const auto& branch = net_.branches[rated_branches_[r]];
    const auto f = grid::eval_flows(net_.admittances[rated_branches_[r]], x[vm_col(branch.from)],
                                    x[vm_col(branch.to)], x[va_col(branch.from)],
                                    x[va_col(branch.to)]);
    c[2 * nb + 1 + 2 * r] = f[grid::kPij] * f[grid::kPij] + f[grid::kQij] * f[grid::kQij];
    c[2 * nb + 1 + 2 * r + 1] = f[grid::kPji] * f[grid::kPji] + f[grid::kQji] * f[grid::kQji];
  }
}

void AcopfNlp::build_patterns() {
  const int nb = net_.num_buses();
  jac_ = SparsityPattern{};
  // 1) Generator columns in the balance rows.
  for (int g = 0; g < net_.num_generators(); ++g) {
    const int bus = net_.generators[g].bus;
    jac_.rows.push_back(bus);
    jac_.cols.push_back(pg_col(g));
    jac_.rows.push_back(nb + bus);
    jac_.cols.push_back(qg_col(g));
  }
  // 2) Shunt terms: d c_P(i) / d vm_i and d c_Q(i) / d vm_i.
  for (int i = 0; i < nb; ++i) {
    jac_.rows.push_back(i);
    jac_.cols.push_back(vm_col(i));
    jac_.rows.push_back(nb + i);
    jac_.cols.push_back(vm_col(i));
  }
  // 3) Flow terms: each branch touches 4 balance rows x 4 columns.
  for (int l = 0; l < net_.num_branches(); ++l) {
    const auto& branch = net_.branches[l];
    const int cols[4] = {vm_col(branch.from), vm_col(branch.to), va_col(branch.from),
                         va_col(branch.to)};
    const int rows[4] = {branch.from, nb + branch.from, branch.to, nb + branch.to};
    for (const int row : rows) {
      for (const int col : cols) {
        jac_.rows.push_back(row);
        jac_.cols.push_back(col);
      }
    }
  }
  // 4) Line-limit rows.
  for (std::size_t r = 0; r < rated_branches_.size(); ++r) {
    const auto& branch = net_.branches[rated_branches_[r]];
    const int cols[4] = {vm_col(branch.from), vm_col(branch.to), va_col(branch.from),
                         va_col(branch.to)};
    for (int side = 0; side < 2; ++side) {
      for (const int col : cols) {
        jac_.rows.push_back(2 * nb + 1 + 2 * static_cast<int>(r) + side);
        jac_.cols.push_back(col);
      }
    }
  }
  // 5) Reference angle row.
  jac_.rows.push_back(2 * nb);
  jac_.cols.push_back(va_col(net_.ref_bus));

  hess_ = SparsityPattern{};
  // 1) Objective curvature on pg.
  for (int g = 0; g < net_.num_generators(); ++g) {
    hess_.rows.push_back(pg_col(g));
    hess_.cols.push_back(pg_col(g));
  }
  // 2) Shunt curvature on vm.
  for (int i = 0; i < nb; ++i) {
    hess_.rows.push_back(vm_col(i));
    hess_.cols.push_back(vm_col(i));
  }
  // 3) Branch blocks: lower triangle of the 4x4 voltage block.
  for (int l = 0; l < net_.num_branches(); ++l) {
    const auto& branch = net_.branches[l];
    const int gcol[4] = {vm_col(branch.from), vm_col(branch.to), va_col(branch.from),
                         va_col(branch.to)};
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b <= a; ++b) {
        hess_.rows.push_back(std::max(gcol[a], gcol[b]));
        hess_.cols.push_back(std::min(gcol[a], gcol[b]));
      }
    }
  }
}

const SparsityPattern& AcopfNlp::jacobian_pattern() const { return jac_; }

void AcopfNlp::eval_jacobian(std::span<const double> x, std::span<double> values) {
  require(values.size() == jac_.nnz(), "AcopfNlp::eval_jacobian: size mismatch");
  const int nb = net_.num_buses();
  std::size_t k = 0;
  for (int g = 0; g < net_.num_generators(); ++g) {
    values[k++] = 1.0;  // d c_P / d pg
    values[k++] = 1.0;  // d c_Q / d qg
  }
  for (int i = 0; i < nb; ++i) {
    const auto& bus = net_.buses[i];
    const double vm = x[vm_col(i)];
    values[k++] = -2.0 * bus.gs * vm;
    values[k++] = 2.0 * bus.bs * vm;
  }
  grid::FlowValues f;
  grid::FlowGradients jac;
  for (int l = 0; l < net_.num_branches(); ++l) {
    const auto& branch = net_.branches[l];
    grid::eval_flow_gradients(net_.admittances[l], x[vm_col(branch.from)], x[vm_col(branch.to)],
                              x[va_col(branch.from)], x[va_col(branch.to)], f, jac);
    // Rows in pattern order: cP(from) uses -pij, cQ(from) -qij, cP(to) -pji,
    // cQ(to) -qji; columns in flows.hpp order (vi, vj, ti, tj).
    const int flow_of_row[4] = {grid::kPij, grid::kQij, grid::kPji, grid::kQji};
    for (const int flow : flow_of_row) {
      for (int a = 0; a < 4; ++a) values[k++] = -jac.g[flow][a];
    }
  }
  for (const int l : rated_branches_) {
    const auto& branch = net_.branches[l];
    grid::eval_flow_gradients(net_.admittances[l], x[vm_col(branch.from)], x[vm_col(branch.to)],
                              x[va_col(branch.from)], x[va_col(branch.to)], f, jac);
    for (int a = 0; a < 4; ++a) {
      values[k++] = 2.0 * f[grid::kPij] * jac.g[grid::kPij][a] +
                    2.0 * f[grid::kQij] * jac.g[grid::kQij][a];
    }
    for (int a = 0; a < 4; ++a) {
      values[k++] = 2.0 * f[grid::kPji] * jac.g[grid::kPji][a] +
                    2.0 * f[grid::kQji] * jac.g[grid::kQji][a];
    }
  }
  values[k++] = 1.0;  // reference angle row
  require(k == jac_.nnz(), "AcopfNlp::eval_jacobian: fill mismatch");
}

const SparsityPattern& AcopfNlp::hessian_pattern() const { return hess_; }

void AcopfNlp::eval_hessian(std::span<const double> x, double sigma,
                            std::span<const double> lambda, std::span<double> values) {
  require(values.size() == hess_.nnz(), "AcopfNlp::eval_hessian: size mismatch");
  const int nb = net_.num_buses();
  std::size_t k = 0;
  for (int g = 0; g < net_.num_generators(); ++g) {
    values[k++] = 2.0 * sigma * net_.generators[g].c2;
  }
  for (int i = 0; i < nb; ++i) {
    const auto& bus = net_.buses[i];
    values[k++] = -2.0 * bus.gs * lambda[i] + 2.0 * bus.bs * lambda[nb + i];
  }
  // Line-limit row index per branch (or -1).
  std::vector<int> line_row(static_cast<std::size_t>(net_.num_branches()), -1);
  for (std::size_t r = 0; r < rated_branches_.size(); ++r) {
    line_row[rated_branches_[r]] = 2 * nb + 1 + 2 * static_cast<int>(r);
  }
  grid::FlowValues f;
  grid::FlowGradients jac;
  for (int l = 0; l < net_.num_branches(); ++l) {
    const auto& branch = net_.branches[l];
    grid::eval_flow_gradients(net_.admittances[l], x[vm_col(branch.from)], x[vm_col(branch.to)],
                              x[va_col(branch.from)], x[va_col(branch.to)], f, jac);
    const double lam_ij = line_row[l] >= 0 ? lambda[line_row[l]] : 0.0;
    const double lam_ji = line_row[l] >= 0 ? lambda[line_row[l] + 1] : 0.0;
    // Curvature weights: balance rows contribute -lambda * H(flow); line
    // rows contribute lambda * H(p^2+q^2) = lambda * (2 J J^T + 2p H_p + ...).
    std::array<double, 4> w{};
    w[grid::kPij] = -lambda[branch.from] + 2.0 * lam_ij * f[grid::kPij];
    w[grid::kQij] = -lambda[nb + branch.from] + 2.0 * lam_ij * f[grid::kQij];
    w[grid::kPji] = -lambda[branch.to] + 2.0 * lam_ji * f[grid::kPji];
    w[grid::kQji] = -lambda[nb + branch.to] + 2.0 * lam_ji * f[grid::kQji];
    double block[16] = {0};
    grid::accumulate_flow_hessian(net_.admittances[l], x[vm_col(branch.from)],
                                  x[vm_col(branch.to)], x[va_col(branch.from)],
                                  x[va_col(branch.to)], w, block);
    if (line_row[l] >= 0) {
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          block[a * 4 + b] += 2.0 * lam_ij * (jac.g[grid::kPij][a] * jac.g[grid::kPij][b] +
                                              jac.g[grid::kQij][a] * jac.g[grid::kQij][b]);
          block[a * 4 + b] += 2.0 * lam_ji * (jac.g[grid::kPji][a] * jac.g[grid::kPji][b] +
                                              jac.g[grid::kQji][a] * jac.g[grid::kQji][b]);
        }
      }
    }
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b <= a; ++b) values[k++] = block[a * 4 + b];
    }
  }
  require(k == hess_.nnz(), "AcopfNlp::eval_hessian: fill mismatch");
}

void AcopfNlp::set_loads(std::span<const double> pd, std::span<const double> qd) {
  require(static_cast<int>(pd.size()) == net_.num_buses() &&
              static_cast<int>(qd.size()) == net_.num_buses(),
          "AcopfNlp::set_loads: size mismatch");
  for (int i = 0; i < net_.num_buses(); ++i) {
    net_.buses[i].pd = pd[i];
    net_.buses[i].qd = qd[i];
  }
}

void AcopfNlp::set_pg_bounds(std::span<const double> pmin, std::span<const double> pmax) {
  require(static_cast<int>(pmin.size()) == net_.num_generators() &&
              static_cast<int>(pmax.size()) == net_.num_generators(),
          "AcopfNlp::set_pg_bounds: size mismatch");
  for (int g = 0; g < net_.num_generators(); ++g) {
    net_.generators[g].pmin = pmin[g];
    net_.generators[g].pmax = pmax[g];
  }
}

grid::OpfSolution AcopfNlp::unpack(std::span<const double> x) const {
  grid::OpfSolution sol = grid::OpfSolution::zeros(net_);
  for (int i = 0; i < net_.num_buses(); ++i) {
    sol.vm[i] = x[vm_col(i)];
    sol.va[i] = x[va_col(i)];
  }
  for (int g = 0; g < net_.num_generators(); ++g) {
    sol.pg[g] = x[pg_col(g)];
    sol.qg[g] = x[qg_col(g)];
  }
  return sol;
}

void AcopfNlp::pack(const grid::OpfSolution& sol, std::span<double> x) const {
  for (int i = 0; i < net_.num_buses(); ++i) {
    x[vm_col(i)] = sol.vm[i];
    x[va_col(i)] = sol.va[i];
  }
  for (int g = 0; g < net_.num_generators(); ++g) {
    x[pg_col(g)] = sol.pg[g];
    x[qg_col(g)] = sol.qg[g];
  }
}

}  // namespace gridadmm::ipm
