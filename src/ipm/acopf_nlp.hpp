// Polar-coordinate ACOPF as a generic NLP — the model the paper's baseline
// (Ipopt via PowerModels.jl) solves directly.
//
// Variables: [vm (nb), va (nb), pg (ng), qg (ng)].
// Constraints: 2*nb power balance equalities, one reference-angle equality,
// and two squared line-flow inequalities per rated branch
// (pij^2 + qij^2 <= rate^2). Angle-difference constraints are disabled,
// matching the paper's PowerModels.jl configuration (Section IV-A).
#pragma once

#include "grid/network.hpp"
#include "grid/solution.hpp"
#include "ipm/nlp.hpp"

namespace gridadmm::ipm {

class AcopfNlp final : public Nlp {
 public:
  explicit AcopfNlp(grid::Network net);

  [[nodiscard]] int num_vars() const override;
  [[nodiscard]] int num_cons() const override;
  void var_bounds(std::span<double> lower, std::span<double> upper) const override;
  void con_bounds(std::span<double> lower, std::span<double> upper) const override;
  void initial_point(std::span<double> x0) const override;
  double eval_objective(std::span<const double> x) override;
  void eval_objective_gradient(std::span<const double> x, std::span<double> grad) override;
  void eval_constraints(std::span<const double> x, std::span<double> c) override;
  [[nodiscard]] const SparsityPattern& jacobian_pattern() const override;
  void eval_jacobian(std::span<const double> x, std::span<double> values) override;
  [[nodiscard]] const SparsityPattern& hessian_pattern() const override;
  void eval_hessian(std::span<const double> x, double sigma, std::span<const double> lambda,
                    std::span<double> values) override;

  /// Updates per-unit loads (tracking horizon).
  void set_loads(std::span<const double> pd, std::span<const double> qd);
  /// Updates per-unit real dispatch bounds (ramp limits).
  void set_pg_bounds(std::span<const double> pmin, std::span<const double> pmax);

  /// Unpacks an NLP primal vector into a grid solution.
  [[nodiscard]] grid::OpfSolution unpack(std::span<const double> x) const;
  /// Packs a grid solution into an NLP primal vector (warm starts).
  void pack(const grid::OpfSolution& sol, std::span<double> x) const;

  [[nodiscard]] const grid::Network& network() const { return net_; }

  // Variable indexing (public for tests).
  [[nodiscard]] int vm_col(int bus) const { return bus; }
  [[nodiscard]] int va_col(int bus) const { return net_.num_buses() + bus; }
  [[nodiscard]] int pg_col(int gen) const { return 2 * net_.num_buses() + gen; }
  [[nodiscard]] int qg_col(int gen) const { return 2 * net_.num_buses() + net_.num_generators() + gen; }

 private:
  void build_patterns();

  grid::Network net_;
  std::vector<int> rated_branches_;  ///< branch indices with a line limit
  SparsityPattern jac_;
  SparsityPattern hess_;
};

}  // namespace gridadmm::ipm
