#include "ipm/ipm_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"

namespace gridadmm::ipm {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kKappaSigma = 1e10;  // Ipopt's z-safeguard box

bool finite(double v) { return std::isfinite(v); }

std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

std::uint64_t IpmSolver::allocations() { return g_allocations.load(std::memory_order_relaxed); }

const char* ipm_status_name(IpmStatus status) {
  switch (status) {
    case IpmStatus::kOptimal: return "optimal";
    case IpmStatus::kMaxIterations: return "max-iterations";
    case IpmStatus::kKktFailure: return "kkt-failure";
    case IpmStatus::kLineSearchFailure: return "line-search-failure";
    case IpmStatus::kTimeBudget: return "time-budget";
  }
  return "unknown";
}

IpmSolver::IpmSolver(Nlp& nlp, IpmOptions options) : nlp_(nlp), options_(options) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  build_structures();
}

void IpmSolver::build_structures() {
  n_ = nlp_.num_vars();
  m_ = nlp_.num_cons();
  cl_.assign(static_cast<std::size_t>(m_), 0.0);
  cu_.assign(static_cast<std::size_t>(m_), 0.0);
  nlp_.con_bounds(cl_, cu_);
  slack_of_row_.assign(static_cast<std::size_t>(m_), -1);
  ns_ = 0;
  for (int j = 0; j < m_; ++j) {
    require(cl_[j] <= cu_[j], "IpmSolver: inverted constraint bounds");
    if (cl_[j] < cu_[j]) slack_of_row_[j] = ns_++;
  }
  nx_ = n_ + ns_;

  lower_.assign(static_cast<std::size_t>(nx_), -kInf);
  upper_.assign(static_cast<std::size_t>(nx_), kInf);
  nlp_.var_bounds({lower_.data(), static_cast<std::size_t>(n_)},
                  {upper_.data(), static_cast<std::size_t>(n_)});
  for (int j = 0; j < m_; ++j) {
    if (slack_of_row_[j] >= 0) {
      lower_[n_ + slack_of_row_[j]] = cl_[j];
      upper_[n_ + slack_of_row_[j]] = cu_[j];
    }
  }

  // Augmented Jacobian: NLP entries plus a -1 column per inequality slack.
  const SparsityPattern& jac = nlp_.jacobian_pattern();
  jac_nlp_nnz_ = jac.nnz();
  jac_aug_ = jac;
  for (int j = 0; j < m_; ++j) {
    if (slack_of_row_[j] >= 0) {
      jac_aug_.rows.push_back(j);
      jac_aug_.cols.push_back(n_ + slack_of_row_[j]);
    }
  }

  kkt_.analyze(nx_, m_, nlp_.hessian_pattern(), jac_aug_, options_.ordering);

  x_.assign(static_cast<std::size_t>(nx_), 0.0);
  lambda_.assign(static_cast<std::size_t>(m_), 0.0);
  zl_.assign(static_cast<std::size_t>(nx_), 0.0);
  zu_.assign(static_cast<std::size_t>(nx_), 0.0);
  grad_.assign(static_cast<std::size_t>(nx_), 0.0);
  c_.assign(static_cast<std::size_t>(m_), 0.0);
  jac_values_.assign(jac_aug_.nnz(), 0.0);
  hess_values_.assign(nlp_.hessian_pattern().nnz(), 0.0);
  rhs_.assign(static_cast<std::size_t>(nx_ + m_), 0.0);
  dx_.assign(static_cast<std::size_t>(nx_), 0.0);
  dlambda_.assign(static_cast<std::size_t>(m_), 0.0);
  dzl_.assign(static_cast<std::size_t>(nx_), 0.0);
  dzu_.assign(static_cast<std::size_t>(nx_), 0.0);
  x_trial_.assign(static_cast<std::size_t>(nx_), 0.0);
  c_trial_.assign(static_cast<std::size_t>(m_), 0.0);
}

void IpmSolver::set_primal(std::span<const double> x) {
  require(static_cast<int>(x.size()) == n_, "IpmSolver::set_primal: size mismatch");
  std::copy(x.begin(), x.end(), x_.begin());
  have_state_ = true;
  have_dual_state_ = false;  // an external primal seed invalidates old duals
}

void IpmSolver::initialize_iterate() {
  const bool warm = options_.warm_start && have_state_;
  const double push = warm ? options_.warm_bound_push : options_.bound_push;
  if (!warm) {
    nlp_.initial_point({x_.data(), static_cast<std::size_t>(n_)});
  }
  // Slacks from the constraint values at x.
  nlp_.eval_constraints({x_.data(), static_cast<std::size_t>(n_)}, c_);
  for (int j = 0; j < m_; ++j) {
    if (slack_of_row_[j] >= 0) x_[n_ + slack_of_row_[j]] = c_[j];
  }
  // Push into the interior (Ipopt's kappa_1/kappa_2 rule, simplified).
  for (int i = 0; i < nx_; ++i) {
    const double lo = lower_[i];
    const double hi = upper_[i];
    if (finite(lo) && finite(hi)) {
      const double pad = std::min(push * std::max(1.0, std::abs(lo)), 0.5 * (hi - lo));
      x_[i] = std::clamp(x_[i], lo + pad, hi - pad);
    } else if (finite(lo)) {
      x_[i] = std::max(x_[i], lo + push * std::max(1.0, std::abs(lo)));
    } else if (finite(hi)) {
      x_[i] = std::min(x_[i], hi - push * std::max(1.0, std::abs(hi)));
    }
  }
  if (!warm || !have_dual_state_) {
    // Cold duals: either a genuinely cold start, or a primal-only warm
    // start (set_primal) whose seed carries no multiplier information.
    std::fill(lambda_.begin(), lambda_.end(), 0.0);
    for (int i = 0; i < nx_; ++i) {
      zl_[i] = finite(lower_[i]) ? 1.0 : 0.0;
      zu_[i] = finite(upper_[i]) ? 1.0 : 0.0;
    }
  } else {
    for (int i = 0; i < nx_; ++i) {
      if (finite(lower_[i])) zl_[i] = std::max(zl_[i], 1e-8);
      if (finite(upper_[i])) zu_[i] = std::max(zu_[i], 1e-8);
    }
  }
}

void IpmSolver::eval_all() {
  const std::span<const double> xn{x_.data(), static_cast<std::size_t>(n_)};
  std::fill(grad_.begin(), grad_.end(), 0.0);
  nlp_.eval_objective_gradient(xn, {grad_.data(), static_cast<std::size_t>(n_)});
  nlp_.eval_constraints(xn, c_);
  for (int j = 0; j < m_; ++j) {
    c_[j] -= slack_of_row_[j] >= 0 ? x_[n_ + slack_of_row_[j]] : cl_[j];
  }
  nlp_.eval_jacobian(xn, {jac_values_.data(), jac_nlp_nnz_});
  for (std::size_t k = jac_nlp_nnz_; k < jac_aug_.nnz(); ++k) jac_values_[k] = -1.0;
}

double IpmSolver::kkt_error(double mu) const {
  // Dual residual: grad + J^T lambda - zl + zu.
  std::vector<double> rd(grad_.begin(), grad_.end());
  for (std::size_t k = 0; k < jac_aug_.nnz(); ++k) {
    rd[jac_aug_.cols[k]] += jac_values_[k] * lambda_[jac_aug_.rows[k]];
  }
  double dual = 0.0;
  for (int i = 0; i < nx_; ++i) {
    dual = std::max(dual, std::abs(rd[i] - zl_[i] + zu_[i]));
  }
  double primal = 0.0;
  for (int j = 0; j < m_; ++j) primal = std::max(primal, std::abs(c_[j]));
  double compl_err = 0.0;
  double z_sum = 0.0;
  int z_count = 0;
  for (int i = 0; i < nx_; ++i) {
    if (finite(lower_[i])) {
      compl_err = std::max(compl_err, std::abs(zl_[i] * (x_[i] - lower_[i]) - mu));
      z_sum += std::abs(zl_[i]);
      ++z_count;
    }
    if (finite(upper_[i])) {
      compl_err = std::max(compl_err, std::abs(zu_[i] * (upper_[i] - x_[i]) - mu));
      z_sum += std::abs(zu_[i]);
      ++z_count;
    }
  }
  double lam_sum = 0.0;
  for (int j = 0; j < m_; ++j) lam_sum += std::abs(lambda_[j]);
  const double s_max = 100.0;
  const double denom = std::max(1, m_ + z_count);
  const double s_d = std::max(s_max, (lam_sum + z_sum) / denom) / s_max;
  const double s_c = std::max(s_max, z_sum / std::max(1, z_count)) / s_max;
  return std::max({dual / s_d, primal, compl_err / s_c});
}

double IpmSolver::merit(double mu, double nu, std::span<const double> x_trial,
                        std::span<double> c_scratch) {
  const std::span<const double> xn{x_trial.data(), static_cast<std::size_t>(n_)};
  double phi = nlp_.eval_objective(xn);
  for (int i = 0; i < nx_; ++i) {
    if (finite(lower_[i])) {
      const double gap = x_trial[i] - lower_[i];
      if (gap <= 0.0) return kInf;
      phi -= mu * std::log(gap);
    }
    if (finite(upper_[i])) {
      const double gap = upper_[i] - x_trial[i];
      if (gap <= 0.0) return kInf;
      phi -= mu * std::log(gap);
    }
  }
  nlp_.eval_constraints(xn, c_scratch);
  double c_norm = 0.0;
  for (int j = 0; j < m_; ++j) {
    const double cj =
        c_scratch[j] - (slack_of_row_[j] >= 0 ? x_trial[n_ + slack_of_row_[j]] : cl_[j]);
    c_norm += std::abs(cj);
  }
  return phi + nu * c_norm;
}

void IpmSolver::compute_sigma(std::vector<double>& sigma) const {
  sigma.assign(static_cast<std::size_t>(nx_), 0.0);
  for (int i = 0; i < nx_; ++i) {
    if (finite(lower_[i])) sigma[i] += zl_[i] / (x_[i] - lower_[i]);
    if (finite(upper_[i])) sigma[i] += zu_[i] / (upper_[i] - x_[i]);
  }
}

IpmResult IpmSolver::solve() {
  WallTimer timer;
  IpmResult result;
  initialize_iterate();

  double mu = options_.mu_init;
  const double mu_floor = options_.tolerance / 10.0;
  double nu = 1.0;
  int consecutive_forced = 0;
  std::vector<double> sigma;

  eval_all();
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter;

    const double e0 = kkt_error(0.0);
    result.kkt_error = e0;
    // Non-finite trap (the batch-residual discipline of DESIGN.md section
    // 12 applied to the fallback engine): a NaN/Inf iterate means the
    // problem data or a step destroyed the state — fail loudly as a typed
    // numerical error instead of iterating on garbage.
    if (!finite(e0)) {
      throw NumericalError("IpmSolver: non-finite KKT error at iteration " +
                           std::to_string(iter));
    }
    if (e0 <= options_.tolerance) {
      result.status = IpmStatus::kOptimal;
      break;
    }
    // Wall-clock budget: never start an iteration past the allotment. The
    // serve layer sizes this from the request deadline, so an escalation
    // cannot blow a deadline admission promised to enforce.
    if (options_.max_wall_seconds > 0.0 && iter > 0 &&
        timer.seconds() >= options_.max_wall_seconds) {
      result.status = IpmStatus::kTimeBudget;
      break;
    }
    // Barrier decrease (possibly several levels at once).
    while (mu > mu_floor && kkt_error(mu) <= options_.kappa_eps * mu) {
      mu = std::max(mu_floor, std::min(options_.kappa_mu * mu, std::pow(mu, options_.theta_mu)));
    }
    const double tau = std::max(options_.tau_min, 1.0 - mu);

    // ---- Assemble and solve the KKT system ----
    nlp_.eval_hessian({x_.data(), static_cast<std::size_t>(n_)}, 1.0, lambda_, hess_values_);
    compute_sigma(sigma);
    ++result.factorizations;
    if (!kkt_.factorize(hess_values_, jac_values_, sigma, mu)) {
      result.status = IpmStatus::kKktFailure;
      break;
    }
    // rhs_x = -(grad + J^T lambda) + mu/(x-l) - mu/(u-x); rhs_l = -c.
    for (int i = 0; i < nx_; ++i) {
      double r = -grad_[i];
      if (finite(lower_[i])) r += mu / (x_[i] - lower_[i]);
      if (finite(upper_[i])) r -= mu / (upper_[i] - x_[i]);
      rhs_[i] = r;
    }
    for (std::size_t k = 0; k < jac_aug_.nnz(); ++k) {
      rhs_[jac_aug_.cols[k]] -= jac_values_[k] * lambda_[jac_aug_.rows[k]];
    }
    for (int j = 0; j < m_; ++j) rhs_[nx_ + j] = -c_[j];
    kkt_.solve(rhs_);
    std::copy(rhs_.begin(), rhs_.begin() + nx_, dx_.begin());
    std::copy(rhs_.begin() + nx_, rhs_.end(), dlambda_.begin());

    // Dual directions.
    for (int i = 0; i < nx_; ++i) {
      dzl_[i] = finite(lower_[i])
                    ? mu / (x_[i] - lower_[i]) - zl_[i] - zl_[i] / (x_[i] - lower_[i]) * dx_[i]
                    : 0.0;
      dzu_[i] = finite(upper_[i])
                    ? mu / (upper_[i] - x_[i]) - zu_[i] + zu_[i] / (upper_[i] - x_[i]) * dx_[i]
                    : 0.0;
    }

    // ---- Fraction-to-boundary step sizes ----
    double alpha_primal = 1.0;
    for (int i = 0; i < nx_; ++i) {
      if (finite(lower_[i]) && dx_[i] < 0.0) {
        alpha_primal = std::min(alpha_primal, -tau * (x_[i] - lower_[i]) / dx_[i]);
      }
      if (finite(upper_[i]) && dx_[i] > 0.0) {
        alpha_primal = std::min(alpha_primal, tau * (upper_[i] - x_[i]) / dx_[i]);
      }
    }
    double alpha_dual = 1.0;
    for (int i = 0; i < nx_; ++i) {
      if (finite(lower_[i]) && dzl_[i] < 0.0) {
        alpha_dual = std::min(alpha_dual, -tau * zl_[i] / dzl_[i]);
      }
      if (finite(upper_[i]) && dzu_[i] < 0.0) {
        alpha_dual = std::min(alpha_dual, -tau * zu_[i] / dzu_[i]);
      }
    }

    // ---- l1-merit Armijo line search ----
    double lam_inf = 0.0;
    for (int j = 0; j < m_; ++j) lam_inf = std::max(lam_inf, std::abs(lambda_[j] + dlambda_[j]));
    nu = std::max(nu, 1.1 * lam_inf);
    double c_norm1 = 0.0;
    for (int j = 0; j < m_; ++j) c_norm1 += std::abs(c_[j]);
    double descent = -nu * c_norm1;
    for (int i = 0; i < nx_; ++i) {
      double g = grad_[i];
      if (finite(lower_[i])) g -= mu / (x_[i] - lower_[i]);
      if (finite(upper_[i])) g += mu / (upper_[i] - x_[i]);
      descent += g * dx_[i];
    }
    const double phi0 = merit(mu, nu, x_, c_trial_);
    double alpha = alpha_primal;
    bool accepted = false;
    for (int bt = 0; bt < options_.max_backtracks; ++bt) {
      for (int i = 0; i < nx_; ++i) x_trial_[i] = x_[i] + alpha * dx_[i];
      const double phi = merit(mu, nu, x_trial_, c_trial_);
      if (phi <= phi0 + options_.armijo_coefficient * alpha * std::min(descent, 0.0)) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      // Nonconvexity can defeat the merit test; take the damped step anyway
      // a few times (cheap surrogate for Ipopt's restoration phase).
      if (++consecutive_forced > 5) {
        result.status = IpmStatus::kLineSearchFailure;
        break;
      }
    } else {
      consecutive_forced = 0;
    }

    log::debug("ipm iter ", iter, ": mu=", mu, " E0=", e0, " alpha=", alpha,
               " dw=", kkt_.primal_regularization(), " |c|=",
               [this] {
                 double v = 0.0;
                 for (int j = 0; j < m_; ++j) v = std::max(v, std::abs(c_[j]));
                 return v;
               }(),
               accepted ? "" : " [forced]");
    for (int i = 0; i < nx_; ++i) x_[i] += alpha * dx_[i];
    for (int j = 0; j < m_; ++j) lambda_[j] += alpha * dlambda_[j];
    for (int i = 0; i < nx_; ++i) {
      zl_[i] += alpha_dual * dzl_[i];
      zu_[i] += alpha_dual * dzu_[i];
      // kappa-Sigma safeguard keeps duals consistent with the barrier.
      if (finite(lower_[i])) {
        const double gap = std::max(x_[i] - lower_[i], 1e-40);
        zl_[i] = std::clamp(zl_[i], mu / (kKappaSigma * gap), kKappaSigma * mu / gap);
      }
      if (finite(upper_[i])) {
        const double gap = std::max(upper_[i] - x_[i], 1e-40);
        zu_[i] = std::clamp(zu_[i], mu / (kKappaSigma * gap), kKappaSigma * mu / gap);
      }
    }
    eval_all();
  }

  have_state_ = true;
  have_dual_state_ = true;
  result.mu = mu;
  result.objective = nlp_.eval_objective({x_.data(), static_cast<std::size_t>(n_)});
  if (!finite(result.objective)) {
    throw NumericalError("IpmSolver: non-finite objective at final iterate");
  }
  double viol = 0.0;
  for (int j = 0; j < m_; ++j) viol = std::max(viol, std::abs(c_[j]));
  result.constraint_violation = viol;
  if (result.status == IpmStatus::kMaxIterations) {
    result.kkt_error = kkt_error(0.0);
  }
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace gridadmm::ipm
