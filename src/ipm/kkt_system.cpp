#include "ipm/kkt_system.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"

namespace gridadmm::ipm {

void KktSystem::analyze(int nx, int m, const SparsityPattern& hess, const SparsityPattern& jac,
                        linalg::OrderingMethod ordering) {
  nx_ = nx;
  m_ = m;
  hess_nnz_ = hess.nnz();
  jac_nnz_ = jac.nnz();

  std::vector<linalg::Triplet> pattern;
  pattern.reserve(hess.nnz() + jac.nnz() + static_cast<std::size_t>(nx + m));
  // W block (lower triangle of the x-block).
  for (std::size_t k = 0; k < hess.nnz(); ++k) {
    int r = hess.rows[k];
    int c = hess.cols[k];
    require(r < nx && c < nx, "KktSystem: Hessian entry outside x-block");
    if (r < c) std::swap(r, c);
    pattern.push_back({r, c, 0.0});
  }
  // J block: global row nx + j, column within x-block.
  for (std::size_t k = 0; k < jac.nnz(); ++k) {
    const int r = nx + jac.rows[k];
    const int c = jac.cols[k];
    require(jac.rows[k] < m && c < nx, "KktSystem: Jacobian entry out of range");
    pattern.push_back({r, c, 0.0});
  }
  // Diagonals: Sigma + dw on x-block, -dc on the constraint block. These
  // must be present so regularization always has a slot.
  for (int i = 0; i < nx + m; ++i) pattern.push_back({i, i, 0.0});

  solver_.analyze(nx + m, pattern, ordering);
  values_.assign(pattern.size(), 0.0);
  diag_reg_.assign(static_cast<std::size_t>(nx + m), 0.0);
}

bool KktSystem::factorize(std::span<const double> hess_values,
                          std::span<const double> jac_values, std::span<const double> sigma,
                          double mu) {
  require(hess_values.size() == hess_nnz_ && jac_values.size() == jac_nnz_ &&
              static_cast<int>(sigma.size()) == nx_,
          "KktSystem::factorize: value sizes mismatch");
  std::copy(hess_values.begin(), hess_values.end(), values_.begin());
  std::copy(jac_values.begin(), jac_values.end(), values_.begin() + hess_nnz_);
  // Barrier diagonal on the x-block; zero initial regularization elsewhere.
  for (int i = 0; i < nx_; ++i) values_[hess_nnz_ + jac_nnz_ + i] = sigma[i];
  for (int j = 0; j < m_; ++j) values_[hess_nnz_ + jac_nnz_ + nx_ + j] = 0.0;

  // Inertia-correction loop (Ipopt algorithm IC). Singular factorizations
  // (zero pivots) raise the dual regularization dc; a wrong sign count
  // raises the primal regularization dw.
  double dw = 0.0;
  double dc = 0.0;
  const double dw_first = 1e-4;
  const double dw_max = 1e40;
  for (int attempt = 0; attempt < 60; ++attempt) {
    std::fill(diag_reg_.begin(), diag_reg_.end(), 0.0);
    for (int i = 0; i < nx_; ++i) diag_reg_[i] = dw;
    for (int j = 0; j < m_; ++j) diag_reg_[nx_ + j] = -dc;
    const bool ok = solver_.factorize(values_, diag_reg_);
    bool singular = !ok;
    if (ok) {
      const auto inertia = solver_.inertia();
      if (inertia.positive == nx_ && inertia.negative == m_ && inertia.zero == 0) {
        dw_last_ = dw;
        dc_last_ = dc;
        return true;
      }
      singular = inertia.zero > 0;
    }
    if (singular) {
      dc = dc == 0.0 ? 1e-8 * std::pow(std::max(mu, 1e-20), 0.25) : dc * 100.0;
      if (dc > 1e10) break;
      continue;  // retry with the same dw first
    }
    dw = dw == 0.0 ? dw_first * (dw_last_ > 0.0 ? std::max(1e-20, dw_last_ / 3.0 / dw_first) : 1.0)
                   : dw * 8.0;
    if (dw > dw_max) break;
  }
  log::warn("KktSystem: inertia correction failed (dw=", dw, ", dc=", dc, ")");
  return false;
}

void KktSystem::solve(std::span<double> rhs) const { solver_.solve(rhs); }

}  // namespace gridadmm::ipm
