#include "scenario/batch_kernels.hpp"

#include <algorithm>
#include <vector>

namespace gridadmm::scenario {

using admm::BatchIndexer;
using admm::kTileWidth;
using admm::ModelView;
using admm::ScenarioView;

namespace {

/// Applies f(lane, column) to every active lane of an interleaved tile
/// group: a fixed-trip-count loop over all kTileWidth lanes when the group
/// is full — the compiler-vectorizable form when f's addresses are affine
/// in the lane index — and the masked active-lane list otherwise. The one
/// copy of the group-iteration contract shared by the four interleaved
/// elementwise kernels below.
template <typename F>
inline void for_each_active_lane(const TileGroup& group, F&& f) {
  if (group.full()) {
    for (int l = 0; l < kTileWidth; ++l) f(l, group.column[static_cast<std::size_t>(l)]);
  } else {
    for (int t = 0; t < group.nlanes; ++t) {
      f(group.lane[static_cast<std::size_t>(t)], group.column[static_cast<std::size_t>(t)]);
    }
  }
}

}  // namespace

void batch_update_generators(device::Device& dev, const ModelView& m,
                             std::span<const ScenarioView> views, std::span<const int> slots) {
  const int ng = m.num_gens;
  dev.launch(static_cast<int>(slots.size()) * ng, [=](int b) {
    const int s = slots[static_cast<std::size_t>(b / ng)];
    admm::generator_update_one(m, views[static_cast<std::size_t>(s)], b % ng);
  });
}

void batch_update_generators(device::Device& dev, const ModelView& m,
                             std::span<const ScenarioView> views,
                             std::span<const TileGroup> groups) {
  const int ng = m.num_gens;
  dev.launch(static_cast<int>(groups.size()) * ng, [=](int b) {
    const TileGroup& group = groups[static_cast<std::size_t>(b / ng)];
    const int g = b % ng;
    const ScenarioView base = views[static_cast<std::size_t>(group.first_slot)];
    for_each_active_lane(group, [&](int l, int) {
      admm::generator_update_one(m, admm::lane_shifted(base, l), g);
    });
  });
}

void batch_update_branches(device::Device& dev, const ModelView& m,
                           const admm::AdmmParams& params, std::span<const ScenarioView> views,
                           std::span<const int> slots, int pack,
                           std::vector<admm::BranchWorkspace>& lanes,
                           admm::BranchUpdateStats* stats, std::span<std::uint64_t> slot_tron,
                           int row_stride) {
  const int nl = m.num_branches;
  admm::ensure_branch_lanes(lanes, dev.workers(), params);
  std::fill(slot_tron.begin(), slot_tron.end(), 0);

  // ceil(total / pack) blocks; block b sweeps the `pack` consecutive
  // (scenario, branch) subproblems starting at b * pack with one lane
  // workspace. Each subproblem's solve is independent, so the grouping (and
  // which worker lane runs it) cannot change any iterate.
  const int total = static_cast<int>(slots.size()) * nl;
  const int blocks = (total + pack - 1) / pack;
  dev.launch_with_lane(blocks, [&lanes, &params, m, views, slots, nl, pack, total, slot_tron,
                                row_stride](int b, int lane_id) {
    const int end = std::min((b + 1) * pack, total);
    for (int t = b * pack; t < end; ++t) {
      const int s = slots[static_cast<std::size_t>(t / nl)];
      const std::uint64_t before = lanes[lane_id].stats.tron_iterations;
      admm::branch_update_one(m, params, views[static_cast<std::size_t>(s)], t % nl,
                              lanes[lane_id]);
      if (!slot_tron.empty()) {
        slot_tron[static_cast<std::size_t>(lane_id) * row_stride +
                  static_cast<std::size_t>(t / nl)] +=
            lanes[lane_id].stats.tron_iterations - before;
      }
    }
  });

  for (auto& lane : lanes) {
    if (stats != nullptr) *stats += lane.stats;
    lane.stats = admm::BranchUpdateStats{};
  }
}

void batch_update_buses(device::Device& dev, const ModelView& m,
                        std::span<const ScenarioView> views, std::span<const int> slots,
                        std::span<double> partial_dual, int row_stride) {
  const int nb = m.num_buses;
  std::fill(partial_dual.begin(), partial_dual.end(), 0.0);
  dev.launch_with_lane(static_cast<int>(slots.size()) * nb, [=](int b, int lane) {
    const int j = b / nb;
    const int s = slots[static_cast<std::size_t>(j)];
    double* slot = &partial_dual[static_cast<std::size_t>(lane) * row_stride + j];
    admm::bus_update_one(m, views[static_cast<std::size_t>(s)], b % nb, slot);
  });
}

void batch_update_buses(device::Device& dev, const ModelView& m,
                        std::span<const ScenarioView> views, std::span<const TileGroup> groups,
                        std::span<double> partial_dual, int row_stride) {
  const int nb = m.num_buses;
  std::fill(partial_dual.begin(), partial_dual.end(), 0.0);
  dev.launch_with_lane(static_cast<int>(groups.size()) * nb, [=](int b, int lane) {
    const TileGroup& group = groups[static_cast<std::size_t>(b / nb)];
    const int i = b % nb;
    const std::size_t row = static_cast<std::size_t>(lane) * row_stride;
    // The bus update's CSR adjacency walk does not lane-vectorize, so the
    // affine lane_shifted form buys nothing here — index the cached
    // per-slot views directly (lanes still share tile rows, which is
    // where the locality win comes from).
    for_each_active_lane(group, [&](int l, int column) {
      const auto s = static_cast<std::size_t>(group.first_slot + l);
      admm::bus_update_one(m, views[s], i, &partial_dual[row + column]);
    });
  });
}

void batch_update_zy(device::Device& dev, const ModelView& m, bool two_level,
                     std::span<const ScenarioView> views, std::span<const int> slots,
                     std::span<double> partial_primal, std::span<double> partial_z,
                     int row_stride) {
  const int np = m.num_pairs;
  std::fill(partial_primal.begin(), partial_primal.end(), 0.0);
  std::fill(partial_z.begin(), partial_z.end(), 0.0);
  dev.launch_with_lane(static_cast<int>(slots.size()) * np, [=](int b, int lane) {
    const int j = b / np;
    const int s = slots[static_cast<std::size_t>(j)];
    const std::size_t base = static_cast<std::size_t>(lane) * row_stride + j;
    admm::zy_update_one(m, views[static_cast<std::size_t>(s)], b % np, two_level,
                        &partial_primal[base], &partial_z[base]);
  });
}

void batch_update_zy(device::Device& dev, const ModelView& m, bool two_level,
                     std::span<const ScenarioView> views, std::span<const TileGroup> groups,
                     std::span<double> partial_primal, std::span<double> partial_z,
                     int row_stride) {
  const int np = m.num_pairs;
  std::fill(partial_primal.begin(), partial_primal.end(), 0.0);
  std::fill(partial_z.begin(), partial_z.end(), 0.0);
  dev.launch_with_lane(static_cast<int>(groups.size()) * np, [=](int b, int lane) {
    const TileGroup& group = groups[static_cast<std::size_t>(b / np)];
    const int k = b % np;
    const std::size_t row = static_cast<std::size_t>(lane) * row_stride;
    // Every array access is unit-stride in the lane index (lane_shifted is
    // pure pointer arithmetic), the compiler-vectorizable form on full
    // tiles. beta is a host scalar per scenario, re-read from the lane's
    // own view.
    const ScenarioView base = views[static_cast<std::size_t>(group.first_slot)];
    for_each_active_lane(group, [&](int l, int column) {
      ScenarioView lv = admm::lane_shifted(base, l);
      lv.beta = views[static_cast<std::size_t>(group.first_slot + l)].beta;
      admm::zy_update_one(m, lv, k, two_level, &partial_primal[row + column],
                          &partial_z[row + column]);
    });
  });
}

void batch_update_outer_multiplier(device::Device& dev, const ModelView& m,
                                   std::span<const ScenarioView> views,
                                   std::span<const int> slots, double lambda_bound) {
  const int np = m.num_pairs;
  dev.launch(static_cast<int>(slots.size()) * np, [=](int b) {
    const int s = slots[static_cast<std::size_t>(b / np)];
    admm::outer_multiplier_update_one(m, views[static_cast<std::size_t>(s)], b % np,
                                      lambda_bound);
  });
}

void batch_update_outer_multiplier(device::Device& dev, const ModelView& m,
                                   std::span<const ScenarioView> views,
                                   std::span<const TileGroup> groups, double lambda_bound) {
  const int np = m.num_pairs;
  dev.launch(static_cast<int>(groups.size()) * np, [=](int b) {
    const TileGroup& group = groups[static_cast<std::size_t>(b / np)];
    const int k = b % np;
    const ScenarioView base = views[static_cast<std::size_t>(group.first_slot)];
    for_each_active_lane(group, [&](int l, int) {
      ScenarioView lv = admm::lane_shifted(base, l);
      lv.beta = views[static_cast<std::size_t>(group.first_slot + l)].beta;
      admm::outer_multiplier_update_one(m, lv, k, lambda_bound);
    });
  });
}

void batch_scale_rho(device::Device& dev, const admm::ComponentModel& model,
                     admm::BatchAdmmState& state, std::span<const int> slots,
                     std::span<const double> factors) {
  // Capture scalars only: naming `model` inside a [=] lambda would copy
  // the whole ComponentModel (every DeviceBuffer in it) into the closure.
  const int num_pairs = model.num_pairs;
  const auto np = static_cast<std::size_t>(num_pairs);
  const BatchIndexer idx = state.indexer();
  auto rho = state.rho.span();
  dev.launch(static_cast<int>(slots.size()) * num_pairs, [=](int b) {
    const int j = b / num_pairs;
    const int s = slots[static_cast<std::size_t>(j)];
    rho[idx.index(s, static_cast<std::size_t>(b % num_pairs), np)] *=
        factors[static_cast<std::size_t>(j)];
  });
}

void batch_chain_state(device::Device& dev, const admm::ComponentModel& model,
                       const admm::BatchAdmmState& src_state, admm::BatchAdmmState& dst_state,
                       std::span<const ChainLink> links) {
  const int np = model.num_pairs;
  const auto nb = static_cast<std::size_t>(model.num_buses);
  const auto ng = static_cast<std::size_t>(model.num_gens);
  const auto nl = static_cast<std::size_t>(model.num_branches);
  const auto npz = static_cast<std::size_t>(np);
  // num_pairs = 2*ngens + 8*nbranches dominates every other per-scenario
  // extent on a connected network, so one launch over |links| * num_pairs
  // blocks covers all arrays (each block guards the shorter extents).
  // src_state and dst_state may be the same object (in-place chain) or the
  // two halves of a ping-pong pair; slots are local to their own state and
  // mapped through their own state's layout indexer.
  const BatchIndexer sidx = src_state.indexer();
  const BatchIndexer didx = dst_state.indexer();
  const auto su = src_state.u.span();
  const auto sv = src_state.v.span();
  const auto sz = src_state.z.span();
  const auto sy = src_state.y.span();
  const auto slz = src_state.lz.span();
  const auto srho = src_state.rho.span();
  const auto sw = src_state.bus_w.span();
  const auto stheta = src_state.bus_theta.span();
  const auto spg = src_state.gen_pg.span();
  const auto sqg = src_state.gen_qg.span();
  const auto sbx = src_state.branch_x.span();
  const auto sbs = src_state.branch_s.span();
  const auto sblam = src_state.branch_lambda.span();
  auto du = dst_state.u.span();
  auto dv = dst_state.v.span();
  auto dz = dst_state.z.span();
  auto dy = dst_state.y.span();
  auto dlz = dst_state.lz.span();
  auto drho = dst_state.rho.span();
  auto dw = dst_state.bus_w.span();
  auto dtheta = dst_state.bus_theta.span();
  auto dpg = dst_state.gen_pg.span();
  auto dqg = dst_state.gen_qg.span();
  auto dbx = dst_state.branch_x.span();
  auto dbs = dst_state.branch_s.span();
  auto dblam = dst_state.branch_lambda.span();
  dev.launch(static_cast<int>(links.size()) * np, [=](int b) {
    const auto& link = links[static_cast<std::size_t>(b / np)];
    const auto k = static_cast<std::size_t>(b % np);
    auto copy = [&](std::span<const double> from, std::span<double> to, std::size_t extent) {
      if (k < extent) {
        to[didx.index(link.dst, k, extent)] = from[sidx.index(link.src, k, extent)];
      }
    };
    copy(su, du, npz);
    copy(sv, dv, npz);
    copy(sz, dz, npz);
    copy(sy, dy, npz);
    copy(slz, dlz, npz);
    copy(srho, drho, npz);
    copy(sw, dw, nb);
    copy(stheta, dtheta, nb);
    copy(spg, dpg, ng);
    copy(sqg, dqg, ng);
    copy(sbx, dbx, 4 * nl);
    copy(sbs, dbs, 2 * nl);
    copy(sblam, dblam, 2 * nl);
  });
}

void batch_apply_ramp(device::Device& dev, const admm::ComponentModel& model,
                      const admm::BatchAdmmState& src_state, admm::BatchAdmmState& dst_state,
                      std::span<const RampLink> links) {
  const int ng = model.num_gens;
  const auto ngz = static_cast<std::size_t>(ng);
  const BatchIndexer sidx = src_state.indexer();
  const BatchIndexer didx = dst_state.indexer();
  const auto base_pmin = model.gen_pmin.span();
  const auto base_pmax = model.gen_pmax.span();
  const auto pg = src_state.gen_pg.span();
  auto pmin = dst_state.pmin.span();
  auto pmax = dst_state.pmax.span();
  dev.launch(static_cast<int>(links.size()) * ng, [=](int b) {
    const auto& link = links[static_cast<std::size_t>(b / ng)];
    const auto g = static_cast<std::size_t>(b % ng);
    const auto dst = didx.index(link.dst, g, ngz);
    const auto src = sidx.index(link.src, g, ngz);
    const double ramp = link.ramp_fraction * base_pmax[g];
    pmin[dst] = std::max(base_pmin[g], pg[src] - ramp);
    pmax[dst] = std::min(base_pmax[g], pg[src] + ramp);
  });
}

}  // namespace gridadmm::scenario
