#include "scenario/batch_kernels.hpp"

#include <algorithm>
#include <vector>

namespace gridadmm::scenario {

using admm::ModelView;
using admm::ScenarioView;

void batch_update_generators(device::Device& dev, const ModelView& m,
                             std::span<const ScenarioView> views, std::span<const int> slots) {
  const int ng = m.num_gens;
  dev.launch(static_cast<int>(slots.size()) * ng, [=](int b) {
    const int s = slots[static_cast<std::size_t>(b / ng)];
    admm::generator_update_one(m, views[static_cast<std::size_t>(s)], b % ng);
  });
}

void batch_update_branches(device::Device& dev, const ModelView& m,
                           const admm::AdmmParams& params, std::span<const ScenarioView> views,
                           std::span<const int> slots,
                           std::vector<admm::BranchWorkspace>& lanes,
                           admm::BranchUpdateStats* stats) {
  const int nl = m.num_branches;
  if (lanes.size() != static_cast<std::size_t>(dev.workers())) {
    lanes = std::vector<admm::BranchWorkspace>(static_cast<std::size_t>(dev.workers()));
    for (auto& lane : lanes) lane.solver.options() = params.tron;
  }

  dev.launch_with_lane(static_cast<int>(slots.size()) * nl,
                       [&lanes, &params, m, views, slots, nl](int b, int lane_id) {
                         const int s = slots[static_cast<std::size_t>(b / nl)];
                         admm::branch_update_one(m, params, views[static_cast<std::size_t>(s)],
                                                 b % nl, lanes[lane_id]);
                       });

  for (auto& lane : lanes) {
    if (stats != nullptr) {
      stats->tron_iterations += lane.stats.tron_iterations;
      stats->cg_iterations += lane.stats.cg_iterations;
      stats->auglag_iterations += lane.stats.auglag_iterations;
      stats->failures += lane.stats.failures;
    }
    lane.stats = admm::BranchUpdateStats{};
  }
}

void batch_update_buses(device::Device& dev, const ModelView& m,
                        std::span<const ScenarioView> views, std::span<const int> slots,
                        std::span<double> partial_dual, int row_stride) {
  const int nb = m.num_buses;
  std::fill(partial_dual.begin(), partial_dual.end(), 0.0);
  dev.launch_with_lane(static_cast<int>(slots.size()) * nb, [=](int b, int lane) {
    const int j = b / nb;
    const int s = slots[static_cast<std::size_t>(j)];
    double* slot = &partial_dual[static_cast<std::size_t>(lane) * row_stride + j];
    admm::bus_update_one(m, views[static_cast<std::size_t>(s)], b % nb, slot);
  });
}

void batch_update_zy(device::Device& dev, const ModelView& m, bool two_level,
                     std::span<const ScenarioView> views, std::span<const int> slots,
                     std::span<double> partial_primal, std::span<double> partial_z,
                     int row_stride) {
  const int np = m.num_pairs;
  std::fill(partial_primal.begin(), partial_primal.end(), 0.0);
  std::fill(partial_z.begin(), partial_z.end(), 0.0);
  dev.launch_with_lane(static_cast<int>(slots.size()) * np, [=](int b, int lane) {
    const int j = b / np;
    const int s = slots[static_cast<std::size_t>(j)];
    const std::size_t base = static_cast<std::size_t>(lane) * row_stride + j;
    admm::zy_update_one(m, views[static_cast<std::size_t>(s)], b % np, two_level,
                        &partial_primal[base], &partial_z[base]);
  });
}

void batch_update_outer_multiplier(device::Device& dev, const ModelView& m,
                                   std::span<const ScenarioView> views,
                                   std::span<const int> slots, double lambda_bound) {
  const int np = m.num_pairs;
  dev.launch(static_cast<int>(slots.size()) * np, [=](int b) {
    const int s = slots[static_cast<std::size_t>(b / np)];
    admm::outer_multiplier_update_one(m, views[static_cast<std::size_t>(s)], b % np,
                                      lambda_bound);
  });
}

void batch_scale_rho(device::Device& dev, const admm::ComponentModel& model,
                     admm::BatchAdmmState& state, std::span<const int> slots,
                     std::span<const double> factors) {
  const int np = model.num_pairs;
  auto rho = state.rho.span();
  dev.launch(static_cast<int>(slots.size()) * np, [=](int b) {
    const int j = b / np;
    const std::size_t s = static_cast<std::size_t>(slots[static_cast<std::size_t>(j)]);
    rho[s * static_cast<std::size_t>(np) + static_cast<std::size_t>(b % np)] *=
        factors[static_cast<std::size_t>(j)];
  });
}

void batch_chain_state(device::Device& dev, const admm::ComponentModel& model,
                       const admm::BatchAdmmState& src_state, admm::BatchAdmmState& dst_state,
                       std::span<const ChainLink> links) {
  const int np = model.num_pairs;
  const int nb = model.num_buses;
  const int ng = model.num_gens;
  const int nl = model.num_branches;
  // num_pairs = 2*ngens + 8*nbranches dominates every other per-scenario
  // extent on a connected network, so one launch over |links| * num_pairs
  // blocks covers all arrays (each block guards the shorter extents).
  // src_state and dst_state may be the same object (in-place chain) or the
  // two halves of a ping-pong pair; slots are local to their own state.
  const auto su = src_state.u.span();
  const auto sv = src_state.v.span();
  const auto sz = src_state.z.span();
  const auto sy = src_state.y.span();
  const auto slz = src_state.lz.span();
  const auto srho = src_state.rho.span();
  const auto sw = src_state.bus_w.span();
  const auto stheta = src_state.bus_theta.span();
  const auto spg = src_state.gen_pg.span();
  const auto sqg = src_state.gen_qg.span();
  const auto sbx = src_state.branch_x.span();
  const auto sbs = src_state.branch_s.span();
  const auto sblam = src_state.branch_lambda.span();
  auto du = dst_state.u.span();
  auto dv = dst_state.v.span();
  auto dz = dst_state.z.span();
  auto dy = dst_state.y.span();
  auto dlz = dst_state.lz.span();
  auto drho = dst_state.rho.span();
  auto dw = dst_state.bus_w.span();
  auto dtheta = dst_state.bus_theta.span();
  auto dpg = dst_state.gen_pg.span();
  auto dqg = dst_state.gen_qg.span();
  auto dbx = dst_state.branch_x.span();
  auto dbs = dst_state.branch_s.span();
  auto dblam = dst_state.branch_lambda.span();
  dev.launch(static_cast<int>(links.size()) * np, [=](int b) {
    const auto& link = links[static_cast<std::size_t>(b / np)];
    const int k = b % np;
    const auto dst = static_cast<std::size_t>(link.dst);
    const auto src = static_cast<std::size_t>(link.src);
    auto copy = [&](std::span<const double> from, std::span<double> to, int extent, int per) {
      if (k < extent) {
        to[dst * static_cast<std::size_t>(per) + static_cast<std::size_t>(k)] =
            from[src * static_cast<std::size_t>(per) + static_cast<std::size_t>(k)];
      }
    };
    copy(su, du, np, np);
    copy(sv, dv, np, np);
    copy(sz, dz, np, np);
    copy(sy, dy, np, np);
    copy(slz, dlz, np, np);
    copy(srho, drho, np, np);
    copy(sw, dw, nb, nb);
    copy(stheta, dtheta, nb, nb);
    copy(spg, dpg, ng, ng);
    copy(sqg, dqg, ng, ng);
    copy(sbx, dbx, 4 * nl, 4 * nl);
    copy(sbs, dbs, 2 * nl, 2 * nl);
    copy(sblam, dblam, 2 * nl, 2 * nl);
  });
}

void batch_apply_ramp(device::Device& dev, const admm::ComponentModel& model,
                      const admm::BatchAdmmState& src_state, admm::BatchAdmmState& dst_state,
                      std::span<const RampLink> links) {
  const int ng = model.num_gens;
  const auto base_pmin = model.gen_pmin.span();
  const auto base_pmax = model.gen_pmax.span();
  const auto pg = src_state.gen_pg.span();
  auto pmin = dst_state.pmin.span();
  auto pmax = dst_state.pmax.span();
  dev.launch(static_cast<int>(links.size()) * ng, [=](int b) {
    const auto& link = links[static_cast<std::size_t>(b / ng)];
    const int g = b % ng;
    const auto dst = static_cast<std::size_t>(link.dst) * static_cast<std::size_t>(ng) +
                     static_cast<std::size_t>(g);
    const auto src = static_cast<std::size_t>(link.src) * static_cast<std::size_t>(ng) +
                     static_cast<std::size_t>(g);
    const double ramp = link.ramp_fraction * base_pmax[static_cast<std::size_t>(g)];
    pmin[dst] = std::max(base_pmin[static_cast<std::size_t>(g)], pg[src] - ramp);
    pmax[dst] = std::min(base_pmax[static_cast<std::size_t>(g)], pg[src] + ramp);
  });
}

}  // namespace gridadmm::scenario
