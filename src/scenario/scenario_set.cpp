#include "scenario/scenario_set.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "common/rng.hpp"

namespace gridadmm::scenario {

namespace {

/// Input validation: throws ValidationError (not the generic GridError) so
/// callers — the serve layer in particular — can map "your request is
/// malformed" to a client error instead of a server fault.
constexpr auto validate = require_valid;

}  // namespace

const char* to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kBase: return "base";
    case ScenarioKind::kLoadScale: return "load-scale";
    case ScenarioKind::kStochasticLoad: return "stochastic";
    case ScenarioKind::kContingency: return "contingency";
    case ScenarioKind::kTracking: return "tracking";
  }
  return "unknown";
}

ScenarioSet::ScenarioSet(grid::Network base) : net_(std::move(base)) {
  require(net_.finalized(), "ScenarioSet: base network must be finalized");
  base_pd_.reserve(net_.buses.size());
  base_qd_.reserve(net_.buses.size());
  for (const auto& bus : net_.buses) {
    base_pd_.push_back(bus.pd);
    base_qd_.push_back(bus.qd);
  }
}

void ScenarioSet::scaled_loads(double scale, std::vector<double>& pd,
                               std::vector<double>& qd) const {
  pd.resize(base_pd_.size());
  qd.resize(base_qd_.size());
  for (std::size_t i = 0; i < base_pd_.size(); ++i) {
    pd[i] = base_pd_[i] * scale;
    qd[i] = base_qd_[i] * scale;
  }
}

int ScenarioSet::append(Scenario sc) {
  if (sc.pd.empty()) sc.pd = base_pd_;
  if (sc.qd.empty()) sc.qd = base_qd_;
  validate(sc.pd.size() == base_pd_.size() && sc.qd.size() == base_qd_.size(),
           "ScenarioSet: load vector size mismatch");
  scenarios_.push_back(std::move(sc));
  return size() - 1;
}

int ScenarioSet::add(Scenario sc) {
  validate(sc.outage_branch >= -1 && sc.outage_branch < net_.num_branches(),
           "ScenarioSet::add: outage branch index out of range");
  // A bridge outage would island the network: the sequential reference
  // throws at construction and the batch mask would iterate on NaNs, so
  // reject it up front (add_n1_contingencies already skips bridges).
  validate(sc.outage_branch < 0 || !grid::is_bridge(net_, sc.outage_branch),
           "ScenarioSet::add: outage branch is a bridge (would disconnect the network)");
  validate(sc.chain_from >= -1 && sc.chain_from < size(),
           "ScenarioSet::add: chain_from must reference an earlier scenario");
  // Warm-start chains run on the full topology: mixing chaining with
  // contingencies is rejected because the batch engine (per-scenario branch
  // mask) and the sequential reference (reduced network per contingency)
  // would resolve the combination differently.
  validate(sc.chain_from < 0 || sc.outage_branch < 0,
           "ScenarioSet::add: a chained scenario cannot carry a branch outage");
  validate(sc.chain_from < 0 ||
               scenarios_[static_cast<std::size_t>(sc.chain_from)].outage_branch < 0,
           "ScenarioSet::add: cannot chain from a contingency scenario");
  validate(std::isfinite(sc.load_scale), "ScenarioSet::add: load_scale must be finite");
  validate(std::isfinite(sc.ramp_fraction) && sc.ramp_fraction >= 0.0,
           "ScenarioSet::add: ramp_fraction must be finite and non-negative");
  validate(all_finite(sc.pd) && all_finite(sc.qd),
           "ScenarioSet::add: loads must be finite (no NaN/inf entries)");
  const auto& c = sc.controls;
  validate((c.primal_tolerance < 0.0 || std::isfinite(c.primal_tolerance)) &&
               (c.dual_tolerance < 0.0 || std::isfinite(c.dual_tolerance)) &&
               (c.outer_tolerance < 0.0 || std::isfinite(c.outer_tolerance)),
           "ScenarioSet::add: control tolerances must be finite");
  return append(std::move(sc));
}

int ScenarioSet::add_base() {
  Scenario sc;
  sc.name = net_.name + "/base";
  sc.kind = ScenarioKind::kBase;
  return append(std::move(sc));
}

void ScenarioSet::add_load_scale(int count, double min_scale, double max_scale) {
  validate(count > 0, "add_load_scale: count must be positive");
  validate(std::isfinite(min_scale) && std::isfinite(max_scale),
           "add_load_scale: scale range must be finite");
  validate(min_scale > 0.0, "add_load_scale: load scale must be positive");
  validate(max_scale >= min_scale, "add_load_scale: max_scale must be >= min_scale");
  for (int i = 0; i < count; ++i) {
    const double t = count == 1 ? 0.5 : static_cast<double>(i) / (count - 1);
    const double scale = min_scale + (max_scale - min_scale) * t;
    Scenario sc;
    sc.name = net_.name + "/scale-" + std::to_string(i);
    sc.kind = ScenarioKind::kLoadScale;
    sc.load_scale = scale;
    scaled_loads(scale, sc.pd, sc.qd);
    append(std::move(sc));
  }
}

void ScenarioSet::add_stochastic_load(int count, double sigma, std::uint64_t seed) {
  validate(count > 0, "add_stochastic_load: count must be positive");
  validate(std::isfinite(sigma) && sigma >= 0.0,
           "add_stochastic_load: sigma must be finite and non-negative");
  // One independent stream per scenario, derived from the seed, so a set is
  // reproducible regardless of how many scenarios preceded it.
  std::uint64_t stream = seed;
  for (int i = 0; i < count; ++i) {
    Rng rng(splitmix64(stream));
    Scenario sc;
    sc.name = net_.name + "/stoch-" + std::to_string(i);
    sc.kind = ScenarioKind::kStochasticLoad;
    sc.pd.resize(base_pd_.size());
    sc.qd.resize(base_qd_.size());
    for (std::size_t b = 0; b < base_pd_.size(); ++b) {
      const double factor = std::clamp(1.0 + sigma * rng.normal(), 0.1, 2.0);
      sc.pd[b] = base_pd_[b] * factor;
      sc.qd[b] = base_qd_[b] * factor;
    }
    append(std::move(sc));
  }
}

int ScenarioSet::add_n1_contingencies(int max_count) {
  // One DFS finds every bridge; per-branch is_bridge queries would make the
  // enumeration quadratic on large cases.
  const auto bridges = grid::bridge_branches(net_);
  int appended = 0;
  for (int l = 0; l < net_.num_branches(); ++l) {
    if (max_count >= 0 && appended >= max_count) break;
    if (!net_.branches[l].on) continue;  // already out of service
    if (bridges[static_cast<std::size_t>(l)]) continue;  // would island the network
    Scenario sc;
    sc.name = net_.name + "/n1-branch-" + std::to_string(l);
    sc.kind = ScenarioKind::kContingency;
    sc.outage_branch = l;
    append(std::move(sc));
    ++appended;
  }
  return appended;
}

int ScenarioSet::add_stress_corpus(const StressCorpusOptions& options) {
  validate(std::isfinite(options.load_scale) && options.load_scale > 0.0,
           "add_stress_corpus: load_scale must be positive and finite");
  validate(options.max_outages >= 0, "add_stress_corpus: max_outages must be >= 0");
  validate(options.base_inner_budget > 0 && options.outage_inner_budget > 0 &&
               options.outer_budget > 0,
           "add_stress_corpus: iteration budgets must be positive");
  int appended = 0;
  {
    Scenario sc;
    sc.name = net_.name + "/stress-base";
    sc.kind = ScenarioKind::kLoadScale;
    sc.load_scale = options.load_scale;
    scaled_loads(options.load_scale, sc.pd, sc.qd);
    sc.controls.max_inner_iterations = options.base_inner_budget;
    sc.controls.max_outer_iterations = options.outer_budget;
    append(std::move(sc));
    ++appended;
  }
  const auto bridges = grid::bridge_branches(net_);
  int outages = 0;
  for (int l = 0; l < net_.num_branches() && outages < options.max_outages; ++l) {
    if (!net_.branches[static_cast<std::size_t>(l)].on) continue;
    if (bridges[static_cast<std::size_t>(l)]) continue;
    Scenario sc;
    sc.name = net_.name + "/stress-n1-branch-" + std::to_string(l);
    sc.kind = ScenarioKind::kContingency;
    sc.outage_branch = l;
    sc.load_scale = options.load_scale;
    scaled_loads(options.load_scale, sc.pd, sc.qd);
    sc.controls.max_inner_iterations = options.outage_inner_budget;
    sc.controls.max_outer_iterations = options.outer_budget;
    append(std::move(sc));
    ++appended;
    ++outages;
  }
  return appended;
}

int ScenarioSet::add_tracking_sequence(const grid::LoadProfileSpec& spec, double ramp_fraction) {
  validate(spec.periods > 0, "add_tracking_sequence: periods must be positive");
  validate(std::isfinite(ramp_fraction) && ramp_fraction >= 0.0,
           "add_tracking_sequence: ramp_fraction must be finite and non-negative");
  const auto profile = grid::make_load_profile(spec);
  const int first = size();
  for (int t = 0; t < spec.periods; ++t) {
    Scenario sc;
    sc.name = net_.name + "/track-seed" + std::to_string(spec.seed) + "-t" + std::to_string(t);
    sc.kind = ScenarioKind::kTracking;
    sc.load_scale = profile[static_cast<std::size_t>(t)];
    scaled_loads(sc.load_scale, sc.pd, sc.qd);
    if (t > 0) {
      sc.chain_from = first + t - 1;
      sc.ramp_fraction = ramp_fraction;
    }
    append(std::move(sc));
  }
  return first;
}

std::vector<std::vector<int>> ScenarioSet::waves() const {
  std::vector<int> depth(scenarios_.size(), 0);
  int max_depth = 0;
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    const int parent = scenarios_[s].chain_from;
    if (parent >= 0) depth[s] = depth[static_cast<std::size_t>(parent)] + 1;
    max_depth = std::max(max_depth, depth[s]);
  }
  std::vector<std::vector<int>> result(static_cast<std::size_t>(max_depth + 1));
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    result[static_cast<std::size_t>(depth[s])].push_back(static_cast<int>(s));
  }
  return result;
}

}  // namespace gridadmm::scenario
