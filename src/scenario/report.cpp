#include "scenario/report.hpp"

#include "common/table.hpp"

namespace gridadmm::scenario {

int ScenarioReport::num_converged() const {
  int n = 0;
  for (const auto& rec : records) n += rec.converged ? 1 : 0;
  return n;
}

double ScenarioReport::scenarios_per_second() const {
  if (solve_seconds <= 0.0) return 0.0;
  return static_cast<double>(records.size()) / solve_seconds;
}

void ScenarioReport::print(std::FILE* out) const {
  Table table({"#", "scenario", "kind", "conv", "inner", "objective ($/h)", "violation"});
  for (const auto& rec : records) {
    table.add_row({std::to_string(rec.index), rec.name, to_string(rec.kind),
                   rec.converged ? "yes" : "NO", std::to_string(rec.inner_iterations),
                   Table::fixed(rec.objective, 2), Table::sci(rec.max_violation, 2)});
  }
  std::fputs(table.to_string().c_str(), out);
  std::fprintf(out,
               "%d/%zu converged | solve %.3f s (%.1f scenarios/s) | "
               "%llu kernel launches, %llu blocks across %d shard%s | %llu transfers in loop\n",
               num_converged(), records.size(), solve_seconds, scenarios_per_second(),
               static_cast<unsigned long long>(launch_stats.launches),
               static_cast<unsigned long long>(launch_stats.blocks), num_shards,
               num_shards == 1 ? "" : "s",
               static_cast<unsigned long long>(transfers_during_iterations));
}

}  // namespace gridadmm::scenario
