// BatchAdmmSolver: solves every scenario of a ScenarioSet concurrently on
// one device with fused kernels.
//
// All S scenarios share one ComponentModel (the base topology; N-1 outages
// are per-scenario branch masks) and one scenario-strided BatchAdmmState.
// Each fused step launches the four component kernels over
// active-scenarios x components blocks, so the launch count per step is
// constant in S — the ExaTron one-block-per-subproblem execution model
// widened across scenarios.
//
// Per-scenario control flow (inexact inner tolerance schedule, outer
// augmented-Lagrangian transitions, beta escalation, adaptive-rho
// rescaling, convergence tests) is replicated exactly from AdmmSolver: a
// scenario that needs an outer-multiplier update or a rho rescale gets it
// through a fused launch covering just the scenarios in the same phase, and
// a converged scenario drops out of subsequent launches. The batched solve
// is therefore iterate-for-iterate identical to S independent AdmmSolver
// runs (asserted to 1e-6 relative on objectives by tests/test_batch_admm.cpp)
// while issuing roughly max_s(iterations) instead of sum_s(iterations)
// launches.
//
// Warm-start seeding: with `warm_start_from_base` the base case is solved
// once and its full iterate fans out to every chain-root scenario; tracking
// sequences chain period-to-period on device (state copy + ramp-bound
// kernels), wave by wave.
#pragma once

#include <span>
#include <vector>

#include "admm/batch_state.hpp"
#include "admm/params.hpp"
#include "admm/solver.hpp"
#include "admm/warm_start.hpp"
#include "device/device.hpp"
#include "grid/solution.hpp"
#include "scenario/report.hpp"
#include "scenario/scenario_set.hpp"

namespace gridadmm::scenario {

struct BatchSolveOptions {
  /// Solve the unmodified base case first (sequentially) and fan its full
  /// iterate out to every chain-root scenario as a warm start.
  bool warm_start_from_base = false;
  /// Record per-iteration residual histories in the per-scenario stats.
  bool record_history = false;
  /// Externally-supplied initial iterates, one slot per scenario (empty =
  /// none; null entries cold start). A non-null entry seeds that scenario's
  /// full iterate — including rho and beta, with prepare_warm_start
  /// semantics — before the solve; it overrides warm_start_from_base for
  /// that slot. Chained scenarios cannot take one (the chain copy would
  /// overwrite it). This is the serve layer's cache-hit entry point.
  std::vector<const admm::WarmStartIterate*> initial_iterates;
};

class BatchAdmmSolver {
 public:
  /// Copies the set's network and scenarios; `dev` defaults to the
  /// process-wide device.
  BatchAdmmSolver(const ScenarioSet& set, admm::AdmmParams params,
                  device::Device* dev = nullptr);
  // Non-copyable/movable: the cached ScenarioViews alias this instance's
  // device buffers.
  BatchAdmmSolver(const BatchAdmmSolver&) = delete;
  BatchAdmmSolver& operator=(const BatchAdmmSolver&) = delete;

  /// Solves every scenario (fused, wave by wave along warm-start chains).
  ScenarioReport solve(const BatchSolveOptions& options = {});

  /// Extracts scenario s's solution (valid after solve()). Downloads only
  /// scenario s's strided slices (4 transfers of one scenario's data, not
  /// the whole batch); extracting every scenario is still cheaper via
  /// solutions(), which amortizes one full download per buffer.
  [[nodiscard]] grid::OpfSolution solution(int s) const;

  /// Snapshots scenario s's full iterate (slice downloads only) as a
  /// portable WarmStartIterate — what the serve layer's SolutionCache
  /// stores after a batch completes.
  [[nodiscard]] admm::WarmStartIterate export_iterate(int s) const;

  /// Extracts every scenario's solution with one download per buffer.
  [[nodiscard]] std::vector<grid::OpfSolution> solutions() const;

  [[nodiscard]] const grid::Network& network() const { return net_; }
  [[nodiscard]] const admm::ComponentModel& model() const { return model_; }
  [[nodiscard]] const std::vector<Scenario>& scenarios() const { return scenarios_; }
  [[nodiscard]] int num_scenarios() const { return static_cast<int>(scenarios_.size()); }
  [[nodiscard]] const admm::AdmmParams& params() const { return params_; }

 private:
  /// Per-scenario replica of AdmmSolver::solve's loop-control state.
  /// Termination is expressed by dropping the scenario from the next fused
  /// step's active list.
  struct Control {
    int outer = 0;  ///< current outer iteration (0-based)
    int inner = 0;  ///< inner iterations completed within the current outer
    double prev_znorm = 0.0;
    double eps_primal = 0.0;
    double eps_dual = 0.0;
  };

  /// Per-scenario termination knobs: batch params with the scenario's
  /// ScenarioControls overrides resolved (heterogeneous batches).
  struct EffectiveControls {
    double primal_tolerance = 0.0;
    double dual_tolerance = 0.0;
    double outer_tolerance = 0.0;
    int max_inner_iterations = 0;
    int max_outer_iterations = 0;
  };

  void stage_initial_state(const BatchSolveOptions& options, ScenarioReport& report);
  void run_fused(std::span<const int> wave, const BatchSolveOptions& options);
  void schedule_inner_tolerance(int s, Control& ctrl) const;
  void set_beta(int s, double value);

  grid::Network net_;
  admm::AdmmParams params_;
  device::Device* dev_;
  std::vector<Scenario> scenarios_;
  std::vector<std::vector<int>> waves_;
  admm::ComponentModel model_;
  admm::BatchAdmmState state_;
  std::vector<admm::ScenarioView> views_;
  admm::ModelView mview_;
  std::vector<Control> ctrl_;
  std::vector<EffectiveControls> eff_;  ///< resolved per-scenario termination knobs
  std::vector<double> rho_scale_;  ///< cumulative adaptive-penalty scaling
  std::vector<admm::AdmmStats> stats_;
  admm::BranchUpdateStats branch_stats_;
  std::vector<admm::BranchWorkspace> branch_lanes_;  ///< reused across fused steps
};

/// Batch params with one scenario's ScenarioControls overrides applied.
/// Shared by the batch engine and the sequential reference so heterogeneous
/// batches resolve overrides identically in both.
admm::AdmmParams effective_params(const admm::AdmmParams& base, const ScenarioControls& controls);

/// Reference implementation: solves the set scenario-by-scenario with
/// independent AdmmSolver instances (chained scenarios warm start from a
/// copy of their parent's solver; contingencies solve the reduced network).
/// Used by tests and benchmarks as the ground truth the batch engine must
/// match.
ScenarioReport solve_sequential(const ScenarioSet& set, const admm::AdmmParams& params,
                                device::Device* dev = nullptr);

}  // namespace gridadmm::scenario
