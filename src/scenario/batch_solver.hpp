// BatchAdmmSolver: solves every scenario of a ScenarioSet concurrently with
// fused kernels, on one device or sharded across a DevicePool.
//
// The engine is split into an explicit plan/execute pipeline. A BatchPlan
// partitions the scenario slots into shard ranges (deterministic
// round-robin of chain roots over the pool's devices; chained scenarios
// follow their parent so period-to-period chaining stays on one device).
// Each shard owns a scenario-strided BatchAdmmState on its own device and
// executes the existing fused kernels over its local slots — shards run
// concurrently, one thread per shard, with no kernel-level changes. All
// per-scenario control flow (inexact inner tolerance schedule, outer
// augmented-Lagrangian transitions, beta escalation, adaptive-rho
// rescaling, convergence tests) is replicated exactly from AdmmSolver and
// is local to one scenario, so the sharded solve is iterate-for-iterate
// identical to the single-device fused solve — and both to S independent
// AdmmSolver runs (asserted by tests/test_batch_admm.cpp for 1/2/4
// shards). Host-side residual collection happens per (shard, scenario) and
// merges into one per-scenario report.
//
// Each fused step launches the four component kernels over
// active-scenarios x components blocks per shard, so the launch count per
// step is constant in S and per-shard *block* counts scale as ~S/D — the
// ExaTron one-block-per-subproblem execution model widened across
// scenarios and then dealt across devices.
//
// Warm-start seeding: with `warm_start_from_base` the base case is solved
// once and its full iterate fans out to every chain-root scenario; tracking
// sequences chain period-to-period on device (state copy + ramp-bound
// kernels), wave by wave. With `ping_pong`, chained waves run in a
// two-buffer ping-pong pair per shard and live batch-state memory stays
// constant in the horizon length (see scenario/batch_plan.hpp).
#pragma once

#include <span>
#include <vector>

#include "admm/batch_state.hpp"
#include "admm/params.hpp"
#include "admm/solver.hpp"
#include "admm/warm_start.hpp"
#include "device/device.hpp"
#include "device/pool.hpp"
#include "grid/solution.hpp"
#include "scenario/batch_plan.hpp"
#include "scenario/report.hpp"
#include "scenario/scenario_set.hpp"

namespace gridadmm::scenario {

struct BatchSolveOptions {
  /// Batch memory layout (see admm/batch_state.hpp). kScenarioMajor keeps
  /// each scenario's state contiguous; kInterleaved tiles the batch
  /// component-major with the scenario lane innermost, so the elementwise
  /// fused kernels run unit-stride (vectorizable) lane loops over
  /// kTileWidth adjacent scenarios and launch ~kTileWidth fewer blocks.
  /// Results are bit-identical either way (asserted by
  /// tests/test_batch_admm.cpp); interleaved is the throughput layout for
  /// S >= kTileWidth, scenario-major avoids tile padding for tiny batches.
  admm::BatchLayout layout = admm::BatchLayout::kScenarioMajor;
  /// Branch-pack factor of the TRON branch phase: each branch-phase block
  /// sweeps this many consecutive (scenario, branch) subproblems, so the
  /// launch issues ceil(active_branches / pack) blocks instead of one per
  /// branch — the same per-block dispatch amortization TileGroups give the
  /// elementwise phases. Results are bit-identical for every value
  /// (asserted by tests/test_batch_admm.cpp); larger packs trade dynamic
  /// load balance for lower dispatch overhead, which pays off when
  /// blocks >> workers. Must be >= 1.
  int branch_pack = 1;
  /// Solve the unmodified base case first (sequentially) and fan its full
  /// iterate out to every chain-root scenario as a warm start.
  bool warm_start_from_base = false;
  /// Record per-iteration residual histories in the per-scenario stats.
  bool record_history = false;
  /// Externally-supplied initial iterates, one slot per scenario (empty =
  /// none; null entries cold start). A non-null entry seeds that scenario's
  /// full iterate — including rho and beta, with prepare_warm_start
  /// semantics — before the solve; it overrides warm_start_from_base for
  /// that slot. Chained scenarios cannot take one (the chain copy would
  /// overwrite it). This is the serve layer's cache-hit entry point.
  std::vector<const admm::WarmStartIterate*> initial_iterates;
  /// Enables the process-wide obs::Tracer for this solve (idempotent; the
  /// tracer stays on afterwards — it is process state, like GRIDADMM_TRACE).
  /// Tracing only observes the loop (spans share the PhaseBreakdown's
  /// clock reads), so iterates are bit-identical with it on or off.
  bool trace = false;
  /// Sample each scenario's convergence state (primal/dual residual,
  /// rho_scale, beta, cumulative branch TRON iterations) every this many
  /// fused steps into ScenarioReport::convergence; the final state is
  /// always appended at retirement. 0 disables sampling (and the report's
  /// convergence vector stays empty). Sampling is observation-only:
  /// iterates are bit-identical with it on or off.
  int convergence_sample_interval = 0;
  /// Two-buffer wave memory for chained sets: each shard allocates a pair
  /// of max-wave-size states instead of one O(S) state; wave d + 1 chains
  /// on device from wave d's buffer and reuses wave d - 1's. Live
  /// batch-state memory is constant in the horizon length. Per-wave
  /// results are captured at wave end, so solution()/solutions() stay
  /// valid; export_iterate() only for the last two waves (earlier iterates
  /// have been overwritten by design).
  bool ping_pong = false;
};

class BatchAdmmSolver {
 public:
  /// Single-device engine: copies the set's network and scenarios; `dev`
  /// defaults to the process-wide device.
  BatchAdmmSolver(const ScenarioSet& set, admm::AdmmParams params,
                  device::Device* dev = nullptr);
  /// Sharded engine: scenarios are partitioned across the pool's devices
  /// by a deterministic BatchPlan and solved concurrently, one shard per
  /// device. Results are iterate-for-iterate identical to the
  /// single-device solve. The pool must outlive the solver.
  BatchAdmmSolver(const ScenarioSet& set, admm::AdmmParams params, device::DevicePool& pool);
  // Non-copyable/movable: the cached ScenarioViews alias this instance's
  // device buffers.
  BatchAdmmSolver(const BatchAdmmSolver&) = delete;
  BatchAdmmSolver& operator=(const BatchAdmmSolver&) = delete;

  /// Solves every scenario (fused, wave by wave along warm-start chains).
  ScenarioReport solve(const BatchSolveOptions& options = {});

  /// Extracts scenario s's solution (valid after solve()). Downloads only
  /// scenario s's strided slices (4 transfers of one scenario's data, not
  /// the whole batch); extracting every scenario is still cheaper via
  /// solutions(), which amortizes one full download per buffer. In
  /// ping-pong mode returns the copy captured at the scenario's wave end
  /// (no transfer).
  [[nodiscard]] grid::OpfSolution solution(int s) const;

  /// Snapshots scenario s's full iterate (slice downloads only) as a
  /// portable WarmStartIterate — what the serve layer's SolutionCache
  /// stores after a batch completes. In ping-pong mode only scenarios of
  /// the last two waves are still resident; earlier ones throw.
  [[nodiscard]] admm::WarmStartIterate export_iterate(int s) const;

  /// Extracts every scenario's solution with one download per buffer.
  [[nodiscard]] std::vector<grid::OpfSolution> solutions() const;

  [[nodiscard]] const grid::Network& network() const { return net_; }
  [[nodiscard]] const admm::ComponentModel& model() const { return model_; }
  [[nodiscard]] const std::vector<Scenario>& scenarios() const { return scenarios_; }
  [[nodiscard]] int num_scenarios() const { return static_cast<int>(scenarios_.size()); }
  [[nodiscard]] const admm::AdmmParams& params() const { return params_; }
  [[nodiscard]] int num_shards() const { return static_cast<int>(devs_.size()); }
  /// The execution plan (valid after solve()).
  [[nodiscard]] const BatchPlan& plan() const { return plan_; }

 private:
  /// Per-scenario replica of AdmmSolver::solve's loop-control state.
  /// Termination is expressed by dropping the scenario from the next fused
  /// step's active list.
  struct Control {
    int outer = 0;  ///< current outer iteration (0-based)
    int inner = 0;  ///< inner iterations completed within the current outer
    double prev_znorm = 0.0;
    double eps_primal = 0.0;
    double eps_dual = 0.0;
  };

  /// Per-scenario termination knobs: batch params with the scenario's
  /// ScenarioControls overrides resolved (heterogeneous batches).
  struct EffectiveControls {
    double primal_tolerance = 0.0;
    double dual_tolerance = 0.0;
    double outer_tolerance = 0.0;
    int max_inner_iterations = 0;
    int max_outer_iterations = 0;
  };

  /// One shard's execution context: its device, its state buffer(s) (one,
  /// or a ping-pong pair), and per-lane scratch. Shards touch disjoint
  /// scenarios, so they run concurrently without synchronization.
  struct Shard {
    device::Device* dev = nullptr;
    std::vector<admm::BatchAdmmState> states;            ///< 1, or 2 in ping-pong
    std::vector<std::vector<admm::ScenarioView>> views;  ///< [buffer][slot]
    std::vector<admm::BranchWorkspace> branch_lanes;     ///< reused across fused steps
    admm::BranchUpdateStats branch_stats;
    /// Interleaved tile-packing scratch, reused across fused steps (and
    /// solves): pack_tile_groups clears but never shrinks them, so the hot
    /// loop allocates nothing once their capacity is reached.
    std::vector<TileGroup> tile_groups;
    std::vector<TileGroup> outer_groups;
    /// Per-(lane, slot) TRON-iteration partial rows for convergence
    /// sampling, same shape as the residual partials; reused across steps
    /// and empty while sampling is off.
    device::AlignedVector<std::uint64_t> tron_partial;
    PhaseBreakdown phases;       ///< per-phase wall time of this shard's loop
    std::uint64_t fused_steps = 0;  ///< while-loop iterations executed
  };

  void ensure_storage(bool ping_pong, admm::BatchLayout layout);
  [[nodiscard]] int buffer_of(int s) const {
    return plan_.ping_pong ? plan_.wave_of[static_cast<std::size_t>(s)] % 2 : 0;
  }
  /// Solves the unmodified base case and exports its full iterate — the
  /// same shape the cache warm start uses, so both seeds share one
  /// staging path.
  admm::WarmStartIterate solve_base(ScenarioReport& report);
  /// Stages `globals` into shard buffer `buf` (cold template, optional
  /// base fan-out / initial iterates, scenario problem data) and uploads.
  void stage_buffer(Shard& shard, int buf, std::span<const int> globals,
                    const admm::WarmStartIterate* base, const BatchSolveOptions& options);
  /// Chains, ramps, and runs the fused loop for one shard's slice of wave
  /// `wave_index`. Runs concurrently across shards.
  void run_shard_wave(int shard_id, int wave_index, const BatchSolveOptions& options);
  void run_fused(Shard& shard, int buf, std::span<const int> wave,
                 const BatchSolveOptions& options);
  /// Downloads one shard buffer and fills records (and, in ping-pong mode,
  /// the captured per-scenario solutions).
  void evaluate_shard(int shard_id, int buf, std::span<const int> globals,
                      ScenarioReport& report, grid::Network& eval_net, bool capture);
  void schedule_inner_tolerance(int s, Control& ctrl) const;
  void set_beta(int s, double value);

  grid::Network net_;
  admm::AdmmParams params_;
  std::vector<device::Device*> devs_;  ///< one per shard
  std::vector<Scenario> scenarios_;
  std::vector<std::vector<int>> waves_;
  admm::ComponentModel model_;
  admm::ModelView mview_;
  admm::ColdStartTemplate cold_;   ///< shared cold-start template (host)
  std::vector<double> rho0_;       ///< model rho (host copy for staging)
  BatchPlan plan_;
  std::vector<Shard> shards_;
  admm::BatchLayout layout_ = admm::BatchLayout::kScenarioMajor;  ///< of current storage
  bool storage_ready_ = false;
  bool solved_ = false;
  std::vector<Control> ctrl_;
  std::vector<EffectiveControls> eff_;  ///< resolved per-scenario termination knobs
  std::vector<double> beta_;       ///< per-scenario outer penalty (host truth)
  std::vector<double> rho_scale_;  ///< cumulative adaptive-penalty scaling
  std::vector<admm::AdmmStats> stats_;
  std::vector<grid::OpfSolution> pp_solutions_;  ///< per-wave captures (ping-pong)
  /// Convergence sampling state (empty unless
  /// options.convergence_sample_interval > 0): per-scenario trajectories
  /// and cumulative branch TRON iterations. Shards own disjoint scenarios,
  /// so concurrent shard threads write disjoint entries.
  std::vector<obs::ConvergenceTrajectory> traj_;
  std::vector<std::uint64_t> tron_accum_;
};

/// Batch params with one scenario's ScenarioControls overrides applied.
/// Shared by the batch engine and the sequential reference so heterogeneous
/// batches resolve overrides identically in both.
admm::AdmmParams effective_params(const admm::AdmmParams& base, const ScenarioControls& controls);

/// Reference implementation: solves the set scenario-by-scenario with
/// independent AdmmSolver instances (chained scenarios warm start from a
/// copy of their parent's solver; contingencies solve the reduced network).
/// Used by tests and benchmarks as the ground truth the batch engine must
/// match.
ScenarioReport solve_sequential(const ScenarioSet& set, const admm::AdmmParams& params,
                                device::Device* dev = nullptr);

}  // namespace gridadmm::scenario
