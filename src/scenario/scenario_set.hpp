// ScenarioSet: diverse scenario families generated from one loaded case.
//
// Families map onto the workloads a production multi-scenario OPF service
// runs against a grid model: uniform load sweeps, stochastic per-bus load
// perturbations (deterministic per seed), N-1 branch-outage contingency
// screening (bridges excluded so every scenario stays connected), and
// time-coupled tracking sequences with generator ramp limits that chain
// warm starts period-to-period.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "grid/load_profile.hpp"
#include "grid/network.hpp"
#include "scenario/scenario.hpp"

namespace gridadmm::scenario {

/// Knobs for the hard-scenario stress corpus (add_stress_corpus). The
/// defaults are calibrated on case30, whose native line ratings bind at a
/// 3% uniform load increase: the resulting scenarios stall below tolerance
/// on the batch ADMM path at their attached budgets — and at 4x those
/// budgets on the boosted solo retry — yet the warm-started MiniIPM engine
/// solves them to optimality in well under 500 iterations. They exist to
/// exercise the full escalation ladder end-to-end.
struct StressCorpusOptions {
  double load_scale = 1.03;  ///< uniform load stress on every entry
  int max_outages = 2;       ///< rate-tight N-1 entries (non-bridge branches)
  int base_inner_budget = 150;   ///< ADMM inner-iteration cap, base entry
  int outage_inner_budget = 200; ///< ADMM inner-iteration cap, N-1 entries
  int outer_budget = 2;          ///< ADMM outer-iteration cap, all entries
};

class ScenarioSet {
 public:
  /// Copies the (finalized) base network. Generators append scenarios.
  explicit ScenarioSet(grid::Network base);

  [[nodiscard]] const grid::Network& network() const { return net_; }
  [[nodiscard]] const std::vector<Scenario>& scenarios() const { return scenarios_; }
  [[nodiscard]] const Scenario& operator[](int s) const {
    if (s < 0 || s >= size()) throw ValidationError("ScenarioSet: scenario index out of range");
    return scenarios_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] int size() const { return static_cast<int>(scenarios_.size()); }
  [[nodiscard]] bool empty() const { return scenarios_.empty(); }

  /// Appends a hand-built scenario (loads default to the base case's when
  /// empty). Throws ValidationError on malformed input — out-of-range or
  /// bridge outage branch, bad chain_from, non-finite loads or controls —
  /// instead of letting bad data reach the solvers. Returns its index.
  int add(Scenario sc);

  /// Appends the unmodified base case.
  int add_base();

  /// Appends `count` uniform load-scale scenarios with multipliers evenly
  /// spaced over [min_scale, max_scale].
  void add_load_scale(int count, double min_scale, double max_scale);

  /// Appends `count` stochastic scenarios: every bus load is scaled by an
  /// independent factor 1 + sigma * N(0,1), clamped to [0.1, 2.0] (the same
  /// factor on pd and qd preserves the bus power factor). Deterministic in
  /// `seed`.
  void add_stochastic_load(int count, double sigma, std::uint64_t seed);

  /// Appends one N-1 contingency per in-service, non-bridge branch (at most
  /// `max_count` when >= 0). Returns the number appended.
  int add_n1_contingencies(int max_count = -1);

  /// Appends the hard-scenario corpus: one stressed-load base entry plus
  /// rate-tight N-1 contingencies under the same load stress, each carrying
  /// the iteration budgets that demonstrably defeat ADMM (see
  /// StressCorpusOptions). Returns the number appended.
  int add_stress_corpus(const StressCorpusOptions& options = {});

  /// Appends one time-coupled tracking sequence: one scenario per period of
  /// the load profile, each chained to the previous period with generator
  /// ramp limits |pg_t - pg_{t-1}| <= ramp_fraction * Pmax. Returns the
  /// index of the first period's scenario.
  int add_tracking_sequence(const grid::LoadProfileSpec& spec, double ramp_fraction);

  /// Scenario indices grouped by warm-start chain depth: wave 0 has no
  /// parent, wave d scenarios chain from wave d-1. Scenarios within a wave
  /// are independent and can be solved as one fused batch.
  [[nodiscard]] std::vector<std::vector<int>> waves() const;

 private:
  /// Fills default loads and appends without re-running the graph checks;
  /// generators call this with scenarios that are valid by construction.
  int append(Scenario sc);
  void scaled_loads(double scale, std::vector<double>& pd, std::vector<double>& qd) const;

  grid::Network net_;
  std::vector<double> base_pd_, base_qd_;
  std::vector<Scenario> scenarios_;
};

}  // namespace gridadmm::scenario
