// BatchPlan: the "plan" half of the batch engine's plan/execute split.
//
// A plan decides, before any device memory is touched, (a) which shard —
// i.e. which device of a DevicePool — executes each scenario, and (b) which
// slot of that shard's scenario-strided BatchAdmmState the scenario
// occupies. Execution then runs the existing fused kernels per shard,
// concurrently, without any kernel-level changes.
//
// Shard assignment is deterministic: warm-start chain roots are dealt
// round-robin over the shards in scenario order (slot s with no parent goes
// to shard root_rank(s) % num_shards), and a chained scenario always
// follows its parent's shard, because period-to-period chaining is an
// on-device copy that must stay within one device's memory. With one shard
// every scenario lands on shard 0 and the plan degenerates to the
// single-device layout, so the sharded solve is a strict generalization.
//
// Ping-pong mode: instead of one persistent slot per scenario, slots are
// assigned per wave and the shard allocates two buffers of max-wave-size
// slots. Wave d executes in buffer d % 2 while buffer (d - 1) % 2 still
// holds the parent wave's iterates for on-device chaining; wave d + 1 then
// reuses the parent buffer. Live batch-state memory is O(2 x wave x case)
// — constant in the horizon length — instead of O(S x case).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "admm/batch_state.hpp"
#include "scenario/scenario.hpp"

namespace gridadmm::scenario {

/// One interleaved memory tile's worth of active scenario slots: the
/// packing unit of the interleaved batch kernels. A fused step launches
/// one block per (tile group, component); a full group (every lane of the
/// tile active) takes the vectorized lane-loop fast path, a partial group
/// — tiles with retired or padded lanes — iterates only its active lanes.
/// `column[t]` is lane t's column in the caller's per-(worker lane, slot)
/// partial-reduction rows, i.e. the slot's index in the active list the
/// group was packed from, so per-scenario residual collection is identical
/// to the scenario-major path.
struct TileGroup {
  int first_slot = 0;  ///< slot id of the tile's lane 0 (tile * kTileWidth)
  int nlanes = 0;      ///< active lanes in this tile
  std::array<int, admm::kTileWidth> lane{};    ///< active lane offsets, ascending
  std::array<int, admm::kTileWidth> column{};  ///< per-lane reduction column

  [[nodiscard]] bool full() const { return nlanes == admm::kTileWidth; }
};

/// Packs an active-slot list into tile groups (slot / kTileWidth), keeping
/// each slot's position in `slots` as its reduction column. Slots arrive in
/// ascending order (the batch engine's active lists preserve slot order as
/// scenarios retire), so each tile contributes one group. `groups` is a
/// reused scratch vector: cleared, never shrunk — the fused loop calls this
/// every iteration without allocating once capacity is reached.
void pack_tile_groups(std::span<const int> slots, std::vector<TileGroup>& groups);

struct BatchPlan {
  int num_shards = 1;
  bool ping_pong = false;

  std::vector<int> shard_of;  ///< global scenario -> shard
  /// Global scenario -> slot within its shard's state. In ping-pong mode
  /// the slot is local to the scenario's wave buffer (wave_of[s] % 2).
  std::vector<int> slot_of;
  std::vector<int> wave_of;  ///< global scenario -> chain depth (wave index)

  /// Scenarios each shard owns, in scenario order (all waves).
  std::vector<std::vector<int>> shard_scenarios;
  /// [wave][shard] -> global scenario ids of that wave on that shard.
  std::vector<std::vector<std::vector<int>>> wave_shards;
  /// Slots each shard's state buffer must hold: the shard's scenario count,
  /// or its largest single-wave count in ping-pong mode.
  std::vector<int> shard_capacity;

  [[nodiscard]] int num_waves() const { return static_cast<int>(wave_shards.size()); }

  /// Builds the deterministic plan for `scenarios` grouped into `waves`
  /// (ScenarioSet::waves() order: wave d chains from wave d - 1).
  static BatchPlan create(std::span<const Scenario> scenarios,
                          const std::vector<std::vector<int>>& waves, int num_shards,
                          bool ping_pong);
};

}  // namespace gridadmm::scenario
