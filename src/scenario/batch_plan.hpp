// BatchPlan: the "plan" half of the batch engine's plan/execute split.
//
// A plan decides, before any device memory is touched, (a) which shard —
// i.e. which device of a DevicePool — executes each scenario, and (b) which
// slot of that shard's scenario-strided BatchAdmmState the scenario
// occupies. Execution then runs the existing fused kernels per shard,
// concurrently, without any kernel-level changes.
//
// Shard assignment is deterministic: warm-start chain roots are dealt
// round-robin over the shards in scenario order (slot s with no parent goes
// to shard root_rank(s) % num_shards), and a chained scenario always
// follows its parent's shard, because period-to-period chaining is an
// on-device copy that must stay within one device's memory. With one shard
// every scenario lands on shard 0 and the plan degenerates to the
// single-device layout, so the sharded solve is a strict generalization.
//
// Ping-pong mode: instead of one persistent slot per scenario, slots are
// assigned per wave and the shard allocates two buffers of max-wave-size
// slots. Wave d executes in buffer d % 2 while buffer (d - 1) % 2 still
// holds the parent wave's iterates for on-device chaining; wave d + 1 then
// reuses the parent buffer. Live batch-state memory is O(2 x wave x case)
// — constant in the horizon length — instead of O(S x case).
#pragma once

#include <span>
#include <vector>

#include "scenario/scenario.hpp"

namespace gridadmm::scenario {

struct BatchPlan {
  int num_shards = 1;
  bool ping_pong = false;

  std::vector<int> shard_of;  ///< global scenario -> shard
  /// Global scenario -> slot within its shard's state. In ping-pong mode
  /// the slot is local to the scenario's wave buffer (wave_of[s] % 2).
  std::vector<int> slot_of;
  std::vector<int> wave_of;  ///< global scenario -> chain depth (wave index)

  /// Scenarios each shard owns, in scenario order (all waves).
  std::vector<std::vector<int>> shard_scenarios;
  /// [wave][shard] -> global scenario ids of that wave on that shard.
  std::vector<std::vector<std::vector<int>>> wave_shards;
  /// Slots each shard's state buffer must hold: the shard's scenario count,
  /// or its largest single-wave count in ping-pong mode.
  std::vector<int> shard_capacity;

  [[nodiscard]] int num_waves() const { return static_cast<int>(wave_shards.size()); }

  /// Builds the deterministic plan for `scenarios` grouped into `waves`
  /// (ScenarioSet::waves() order: wave d chains from wave d - 1).
  static BatchPlan create(std::span<const Scenario> scenarios,
                          const std::vector<std::vector<int>>& waves, int num_shards,
                          bool ping_pong);
};

}  // namespace gridadmm::scenario
