// Fused multi-scenario ADMM kernels, one family per batch layout.
//
// Scenario-major: each kernel launches one grid over |slots| x components
// blocks: block b serves component b % ncomp of scenario slots[b / ncomp],
// reusing the per-component update math from admm/kernels_core.hpp. All S
// scenarios' generator (resp. branch, bus, pair) updates share a single
// launch, which is where the batch engine's speedup over S sequential
// solver loops comes from: launch count per fused step is constant in S.
//
// Interleaved: the elementwise kernels (generator, bus, zy, outer
// multiplier) launch component-major over |tile groups| x components
// blocks instead — block b serves component b % ncomp of *every* active
// lane of tile group b / ncomp. A full group runs a unit-stride lane loop
// over kTileWidth adjacent scenarios (admm::lane_shifted keeps every
// address affine in the lane index, so the compiler can vectorize the
// shared update math across scenarios); partial groups — tiles with
// retired lanes — iterate only their active lanes. Block count drops by
// ~kTileWidth and each block touches one contiguous tile row per array.
// The TRON-based branch kernel stays block-per-branch in both layouts (a
// nonconvex iterative solve does not lane-vectorize); it reads the same
// strided views.
//
// Residual reductions are per (worker lane, slot): `partial` arrays hold
// `lanes` rows of `row_stride` doubles (row_stride >= |slots|, rounded up
// so rows do not share cache lines); callers take the per-slot max over
// lanes. Interleaved groups carry each lane's reduction column
// (TileGroup::column), so per-scenario maxima are collected identically in
// both layouts — max is order-free, which is why the two layouts produce
// bit-identical residuals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "admm/batch_state.hpp"
#include "admm/branch_kernel.hpp"
#include "admm/kernels_core.hpp"
#include "admm/params.hpp"
#include "device/device.hpp"
#include "scenario/batch_plan.hpp"

namespace gridadmm::scenario {

/// Row stride (in doubles) for per-(lane, slot) partial reductions.
inline int reduce_row_stride(int num_slots) { return (num_slots + 7) / 8 * 8; }

void batch_update_generators(device::Device& dev, const admm::ModelView& m,
                             std::span<const admm::ScenarioView> views,
                             std::span<const int> slots);

/// Interleaved variant: component-major over tile groups (see file
/// comment). `views` must be the interleaved per-slot views (stride
/// kTileWidth).
void batch_update_generators(device::Device& dev, const admm::ModelView& m,
                             std::span<const admm::ScenarioView> views,
                             std::span<const TileGroup> groups);

/// `lanes` provides one reusable TRON workspace per device worker (resized
/// and options-bound on first use); hoisting it out of the fused inner loop
/// avoids per-iteration solver construction. Each call accumulates the
/// lanes' work into `stats` and clears the lane counters.
///
/// `pack` is the branch-pack factor: the launch covers the
/// |slots| * num_branches (scenario, branch) subproblems with
/// ceil(total / pack) blocks, each block sweeping `pack` consecutive
/// subproblems in a lane loop — the TRON analogue of the TileGroup block
/// amortization of the elementwise kernels. Every subproblem is still
/// solved exactly once by exactly one lane workspace and each solve is
/// independent and deterministic, so results are bit-identical for every
/// pack value; only per-block dispatch overhead changes. pack = 1 is the
/// classic ExaTron one-block-per-branch launch.
///
/// `slot_tron` (optional, for convergence telemetry): when non-empty it
/// must hold dev.workers() rows of `row_stride` entries (row_stride >=
/// |slots|), the same per-(lane, slot) partial shape as the residual
/// reductions; each lane adds the TRON iterations it spent on slot j into
/// its own row, and the caller takes the per-slot sum over lanes (sums are
/// order-free, so attribution is exact and deterministic). Recording is
/// observation-only — iterates are bit-identical with it on or off.
void batch_update_branches(device::Device& dev, const admm::ModelView& m,
                           const admm::AdmmParams& params,
                           std::span<const admm::ScenarioView> views, std::span<const int> slots,
                           int pack, std::vector<admm::BranchWorkspace>& lanes,
                           admm::BranchUpdateStats* stats,
                           std::span<std::uint64_t> slot_tron = {}, int row_stride = 0);

void batch_update_buses(device::Device& dev, const admm::ModelView& m,
                        std::span<const admm::ScenarioView> views, std::span<const int> slots,
                        std::span<double> partial_dual, int row_stride);

/// Interleaved variant: one block per (tile group, bus); lane loop over the
/// group's active scenarios (the adjacency walk is scalar per lane — its
/// trip counts are topology-shared, but the CSR indirection does not
/// lane-vectorize — the win here is the block-count drop and tile-row
/// locality).
void batch_update_buses(device::Device& dev, const admm::ModelView& m,
                        std::span<const admm::ScenarioView> views,
                        std::span<const TileGroup> groups, std::span<double> partial_dual,
                        int row_stride);

void batch_update_zy(device::Device& dev, const admm::ModelView& m, bool two_level,
                     std::span<const admm::ScenarioView> views, std::span<const int> slots,
                     std::span<double> partial_primal, std::span<double> partial_z,
                     int row_stride);

/// Interleaved variant: one block per (tile group, pair), vectorizable lane
/// loop over the group's active scenarios.
void batch_update_zy(device::Device& dev, const admm::ModelView& m, bool two_level,
                     std::span<const admm::ScenarioView> views,
                     std::span<const TileGroup> groups, std::span<double> partial_primal,
                     std::span<double> partial_z, int row_stride);

void batch_update_outer_multiplier(device::Device& dev, const admm::ModelView& m,
                                   std::span<const admm::ScenarioView> views,
                                   std::span<const int> slots, double lambda_bound);

/// Interleaved variant: one block per (tile group, pair).
void batch_update_outer_multiplier(device::Device& dev, const admm::ModelView& m,
                                   std::span<const admm::ScenarioView> views,
                                   std::span<const TileGroup> groups, double lambda_bound);

/// Adaptive-penalty rescale: scenario slots[j]'s rho slice *= factors[j].
/// Layout-aware: indexes through the state's BatchIndexer.
void batch_scale_rho(device::Device& dev, const admm::ComponentModel& model,
                     admm::BatchAdmmState& state, std::span<const int> slots,
                     std::span<const double> factors);

/// Warm-start chaining: dst's iterate (u, v, z, y, lz, bus, gen, branch
/// arrays) and rho slice are copied from src, entirely on device. `src` is
/// a slot of `src_state` and `dst` a slot of `dst_state`; passing the same
/// state for both is the classic in-place chain, distinct states are the
/// ping-pong wave copy (previous wave's buffer -> current wave's buffer).
/// Layout-aware on both sides (each state's own BatchIndexer maps its
/// slots), so ping-pong pairs chain correctly in either layout.
struct ChainLink {
  int dst = -1;
  int src = -1;
};
void batch_chain_state(device::Device& dev, const admm::ComponentModel& model,
                       const admm::BatchAdmmState& src_state, admm::BatchAdmmState& dst_state,
                       std::span<const ChainLink> links);

/// Ramp limits: dst's pg bounds become the base bounds tightened around
/// src's current dispatch, |pg - pg_src| <= ramp_fraction * Pmax_base.
/// Slot/state semantics match batch_chain_state.
struct RampLink {
  int dst = -1;
  int src = -1;
  double ramp_fraction = 0.0;
};
void batch_apply_ramp(device::Device& dev, const admm::ComponentModel& model,
                      const admm::BatchAdmmState& src_state, admm::BatchAdmmState& dst_state,
                      std::span<const RampLink> links);

}  // namespace gridadmm::scenario
