#include "scenario/ipm_engine.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"
#include "ipm/acopf_nlp.hpp"
#include "obs/trace.hpp"

namespace gridadmm::scenario {

IpmEngineResult solve_scenario_ipm(const grid::Network& base, const Scenario& sc,
                                   const IpmEngineOptions& options,
                                   const grid::OpfSolution* warm) {
  require_valid(sc.pd.size() == static_cast<std::size_t>(base.num_buses()) &&
                    sc.qd.size() == static_cast<std::size_t>(base.num_buses()),
                "solve_scenario_ipm: scenario loads do not match the network");

  // Scenario topology and loads. Connectivity was validated when the
  // scenario entered a ScenarioSet; skip the re-check here.
  grid::Network net = sc.outage_branch >= 0
                          ? grid::network_without_branch(base, sc.outage_branch,
                                                         /*check_connectivity=*/false)
                          : base;
  for (int i = 0; i < net.num_buses(); ++i) {
    net.buses[static_cast<std::size_t>(i)].pd = sc.pd[static_cast<std::size_t>(i)];
    net.buses[static_cast<std::size_t>(i)].qd = sc.qd[static_cast<std::size_t>(i)];
  }

  ipm::IpmOptions iopt = options.ipm;
  if (options.wall_budget_seconds > 0.0) {
    iopt.max_wall_seconds = iopt.max_wall_seconds > 0.0
                                ? std::min(iopt.max_wall_seconds, options.wall_budget_seconds)
                                : options.wall_budget_seconds;
  }

  IpmEngineResult out;
  {
    ipm::AcopfNlp nlp(net);
    ipm::IpmSolver solver(nlp, iopt);
    if (warm != nullptr) {
      std::vector<double> x0(static_cast<std::size_t>(nlp.num_vars()), 0.0);
      nlp.pack(*warm, x0);
      solver.set_primal(x0);
      solver.options().warm_start = true;
    }
    const obs::TraceSpan span("ipm.solve", "vars",
                              static_cast<std::uint64_t>(nlp.num_vars()), "warm",
                              warm != nullptr ? 1 : 0);
    out.ipm = solver.solve();
    if (out.ipm.status != ipm::IpmStatus::kOptimal) {
      throw ConvergenceError(
          "ipm engine: scenario '" + sc.name + "' did not converge: status=" +
          ipm::ipm_status_name(out.ipm.status) +
          " iterations=" + std::to_string(out.ipm.iterations) +
          " kkt_error=" + std::to_string(out.ipm.kkt_error) +
          " violation=" + std::to_string(out.ipm.constraint_violation));
    }
    out.solution = nlp.unpack(solver.primal());
  }
  out.quality = grid::evaluate_solution(net, out.solution);
  return out;
}

}  // namespace gridadmm::scenario
