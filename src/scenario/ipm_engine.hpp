// MiniIPM as a per-scenario engine — the escalation ladder's last rung.
//
// The batch ADMM path (BatchAdmmSolver, the serve dispatcher) is fast but
// trades robustness for speed: rate-tight contingencies and stressed load
// profiles can stall below tolerance at any iteration budget. This wrapper
// turns src/ipm/ into a drop-in second engine for exactly those scenarios:
// it rebuilds the scenario's topology (N-1 outage) and loads as an
// AcopfNlp, optionally warm-starts the primal from an ADMM iterate's
// solution (admm::to_solution), bounds the solve with a wall-clock budget,
// and converts non-optimal IpmStatus values into typed errors so callers
// never mistake a stalled fallback for a served answer.
//
// Used by the serve router (SolveService engine_fallback) and directly from
// the scenario/tracking path, where a period that defeats ADMM can be
// re-solved by the IPM while keeping the warm-start chain intact.
#pragma once

#include "grid/network.hpp"
#include "grid/solution.hpp"
#include "ipm/ipm_solver.hpp"
#include "scenario/scenario.hpp"

namespace gridadmm::scenario {

struct IpmEngineOptions {
  IpmEngineOptions() { ipm.max_iterations = 500; }

  /// Underlying solver options. Defaults match IpmOptions except
  /// max_iterations, raised to 500: a fallback seeded from a *failed* ADMM
  /// iterate routinely needs more Newton steps than a cold solve.
  ipm::IpmOptions ipm;

  /// Wall-clock budget in seconds (0 = unlimited). Combined with any
  /// ipm.max_wall_seconds by taking the tighter of the two. The serve
  /// router sizes this from the request deadline.
  double wall_budget_seconds = 0.0;
};

struct IpmEngineResult {
  grid::OpfSolution solution;      ///< converged scenario solution
  ipm::IpmResult ipm;              ///< raw solver result (status kOptimal)
  grid::SolutionQuality quality;   ///< evaluated on the scenario's network
};

/// Solves one scenario with the MiniIPM engine. `base` is the full-topology
/// network the scenario indexes into; the outage branch (if any) is removed
/// and the scenario's loads applied before the NLP is built. `warm` seeds
/// the primal (the duals start cold — an ADMM iterate carries no usable
/// multipliers); pass nullptr for a cold start.
///
/// Returns only on IpmStatus::kOptimal. Every other status throws
/// ConvergenceError carrying the status name and final diagnostics;
/// NumericalError (non-finite iterate) propagates from the solver.
IpmEngineResult solve_scenario_ipm(const grid::Network& base, const Scenario& sc,
                                   const IpmEngineOptions& options = {},
                                   const grid::OpfSolution* warm = nullptr);

}  // namespace gridadmm::scenario
