// Per-scenario convergence/quality records plus batch-level throughput and
// kernel-launch attribution for one multi-scenario solve.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "admm/branch_kernel.hpp"
#include "admm/solver.hpp"
#include "device/device.hpp"
#include "scenario/scenario.hpp"

namespace gridadmm::scenario {

struct ScenarioRecord {
  int index = 0;
  std::string name;
  ScenarioKind kind = ScenarioKind::kBase;
  bool converged = false;
  int outer_iterations = 0;
  int inner_iterations = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  double objective = 0.0;      ///< generation cost ($/h)
  double max_violation = 0.0;  ///< ||c(x)||_inf against the scenario's network
  /// Wall time of the fused wave this scenario was solved in. Scenarios in
  /// the same wave share one solve, so this is a shared (not additive)
  /// figure; sum unique waves or use ScenarioReport::solve_seconds.
  double seconds = 0.0;
};

struct ScenarioReport {
  std::vector<ScenarioRecord> records;
  std::vector<admm::AdmmStats> stats;  ///< full per-scenario solver stats

  double solve_seconds = 0.0;   ///< wall time of the fused iteration loop
  double total_seconds = 0.0;   ///< including staging, uploads, evaluation
  device::LaunchStats launch_stats;  ///< launches attributed to the solve loop (all shards)
  int num_shards = 1;           ///< devices the solve was sharded across
  /// Per-shard launch attribution (one entry per device; sums to
  /// launch_stats). Per-shard block counts scale as ~S/D.
  std::vector<device::LaunchStats> shard_launches;
  admm::BranchUpdateStats branch;    ///< aggregate branch work (batch level)
  /// Host<->device transfers observed during the fused iteration loop.
  /// Measured against the process-wide transfer counters: exact when one
  /// solve runs at a time (how the zero-copy-loop claim is asserted by
  /// tests); when several solvers run concurrently — e.g. serve-layer
  /// device workers — another solver's staging can fall inside this
  /// window, so treat it as an upper bound there.
  std::uint64_t transfers_during_iterations = 0;
  double base_solve_seconds = 0.0;   ///< warm-start base solve, when requested

  [[nodiscard]] int num_converged() const;
  [[nodiscard]] double scenarios_per_second() const;
  void print(std::FILE* out = stdout) const;
};

}  // namespace gridadmm::scenario
