// Per-scenario convergence/quality records plus batch-level throughput and
// kernel-launch attribution for one multi-scenario solve.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "admm/branch_kernel.hpp"
#include "admm/solver.hpp"
#include "device/device.hpp"
#include "obs/convergence.hpp"
#include "scenario/scenario.hpp"

namespace gridadmm::scenario {

struct ScenarioRecord {
  int index = 0;
  std::string name;
  ScenarioKind kind = ScenarioKind::kBase;
  bool converged = false;
  int outer_iterations = 0;
  int inner_iterations = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  double objective = 0.0;      ///< generation cost ($/h)
  double max_violation = 0.0;  ///< ||c(x)||_inf against the scenario's network
  /// Wall time of the fused wave this scenario was solved in. Scenarios in
  /// the same wave share one solve, so this is a shared (not additive)
  /// figure; sum unique waves or use ScenarioReport::solve_seconds.
  double seconds = 0.0;
};

/// Wall time attributed to each phase of the fused iteration loop,
/// accumulated per kernel call. Shards run concurrently, so with D > 1
/// these are CPU-attributed sums across shards (they can exceed the loop's
/// wall time); per phase they remain comparable between layouts and are
/// what bench_kernel_breakdown records.
struct PhaseBreakdown {
  double generator_seconds = 0.0;  ///< fused generator-update launches
  double branch_seconds = 0.0;     ///< fused TRON branch-update launches
  double bus_seconds = 0.0;        ///< fused bus-update launches
  double zy_seconds = 0.0;         ///< fused z+y launches
  /// Host-side per-scenario work between kernels: tile packing, residual
  /// max-collection, convergence control flow.
  double residual_seconds = 0.0;
  /// Outer-transition launches: adaptive-rho rescale + outer multiplier.
  double outer_seconds = 0.0;
  /// On-device warm-start chaining: state copy + ramp-bound launches.
  double chain_seconds = 0.0;

  PhaseBreakdown& operator+=(const PhaseBreakdown& other) {
    generator_seconds += other.generator_seconds;
    branch_seconds += other.branch_seconds;
    bus_seconds += other.bus_seconds;
    zy_seconds += other.zy_seconds;
    residual_seconds += other.residual_seconds;
    outer_seconds += other.outer_seconds;
    chain_seconds += other.chain_seconds;
    return *this;
  }
};

struct ScenarioReport {
  std::vector<ScenarioRecord> records;
  std::vector<admm::AdmmStats> stats;  ///< full per-scenario solver stats

  double solve_seconds = 0.0;   ///< wall time of the fused iteration loop
  double total_seconds = 0.0;   ///< including staging, uploads, evaluation
  device::LaunchStats launch_stats;  ///< launches attributed to the solve loop (all shards)
  int num_shards = 1;           ///< devices the solve was sharded across
  /// Per-shard launch attribution (one entry per device; sums to
  /// launch_stats). Per-shard block counts scale as ~S/D.
  std::vector<device::LaunchStats> shard_launches;
  admm::BranchUpdateStats branch;    ///< aggregate branch work (batch level)
  /// Host<->device transfers observed during the fused iteration loop.
  /// Measured against the process-wide transfer counters: exact when one
  /// solve runs at a time (how the zero-copy-loop claim is asserted by
  /// tests); when several solvers run concurrently — e.g. serve-layer
  /// device workers — another solver's staging can fall inside this
  /// window, so treat it as an upper bound there.
  std::uint64_t transfers_during_iterations = 0;
  double base_solve_seconds = 0.0;   ///< warm-start base solve, when requested
  /// Per-phase attribution of the fused loop (summed across shards).
  PhaseBreakdown phases;
  /// Fused steps executed (while-loop iterations, summed across shards and
  /// waves): the denominator for per-iteration phase figures.
  std::uint64_t fused_steps = 0;
  /// Per-scenario convergence trajectories (one entry per scenario, in
  /// scenario order), filled when
  /// BatchSolveOptions::convergence_sample_interval > 0; empty otherwise.
  /// Feed obs::should_escalate to detect non-converging scenarios.
  std::vector<obs::ConvergenceTrajectory> convergence;

  [[nodiscard]] int num_converged() const;
  [[nodiscard]] double scenarios_per_second() const;
  void print(std::FILE* out = stdout) const;
};

}  // namespace gridadmm::scenario
