#include "scenario/batch_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "scenario/batch_kernels.hpp"

namespace gridadmm::scenario {

namespace {

/// Per-slot max over the per-lane partial rows (exact: max is order-free).
/// NaN-propagating: `std::max(0.0, NaN)` keeps the first argument, so a
/// slot whose iterate went non-finite would otherwise report residual 0 and
/// "converge" on garbage. Returning the NaN lets the solve loop abort the
/// launch instead (DESIGN.md §12 poison isolation).
double collect_slot_max(std::span<const double> partial, int j, int row_stride, int lanes) {
  double result = 0.0;
  for (int lane = 0; lane < lanes; ++lane) {
    const double v =
        partial[static_cast<std::size_t>(lane) * row_stride + static_cast<std::size_t>(j)];
    if (!std::isfinite(v)) return v;
    result = std::max(result, v);
  }
  return result;
}

/// Extracts slot `s`'s solution from whole-buffer host downloads, mapping
/// elements through the batch layout's indexer (slot slices are contiguous
/// in scenario-major, kTileWidth-strided in interleaved).
grid::OpfSolution slice_solution(const grid::Network& net, const admm::BatchIndexer& idx,
                                 std::span<const double> w, std::span<const double> theta,
                                 std::span<const double> pg, std::span<const double> qg, int s) {
  grid::OpfSolution sol = grid::OpfSolution::zeros(net);
  const auto nb = static_cast<std::size_t>(net.num_buses());
  const auto ng = static_cast<std::size_t>(net.num_generators());
  const double ref_angle = theta[idx.index(s, static_cast<std::size_t>(net.ref_bus), nb)];
  for (std::size_t i = 0; i < nb; ++i) {
    sol.vm[i] = std::sqrt(std::max(w[idx.index(s, i, nb)], 1e-12));
    sol.va[i] = theta[idx.index(s, i, nb)] - ref_angle;
  }
  for (std::size_t g = 0; g < ng; ++g) {
    sol.pg[g] = pg[idx.index(s, g, ng)];
    sol.qg[g] = qg[idx.index(s, g, ng)];
  }
  return sol;
}

/// Downloads slot `s`'s logical slice of one batch buffer: a contiguous
/// slice download in scenario-major, a strided gather in interleaved —
/// either way one counted transfer of exactly the slice's bytes.
void download_slot(const device::DeviceBuffer<double>& buffer, const admm::BatchIndexer& idx,
                   int s, std::span<double> host) {
  if (idx.interleaved()) {
    buffer.download_strided(idx.offset(s, host.size()), idx.stride(), host);
  } else {
    buffer.download_slice(idx.offset(s, host.size()), host);
  }
}

/// Swaps a reusable evaluation copy's loads for the scenario's.
void apply_scenario_loads(grid::Network& net, const Scenario& sc) {
  for (int i = 0; i < net.num_buses(); ++i) {
    net.buses[static_cast<std::size_t>(i)].pd = sc.pd[static_cast<std::size_t>(i)];
    net.buses[static_cast<std::size_t>(i)].qd = sc.qd[static_cast<std::size_t>(i)];
  }
}

/// Quality against the network the scenario is actually constrained by:
/// `eval_net` (base topology, loads already swapped in) for load-only
/// scenarios, a reduced copy when a branch is outaged. Outages were
/// bridge-screened by ScenarioSet::add, so the re-check is skipped.
grid::SolutionQuality scenario_quality(const grid::Network& eval_net, const Scenario& sc,
                                       const grid::OpfSolution& sol) {
  if (sc.outage_branch < 0) return grid::evaluate_solution(eval_net, sol);
  return grid::evaluate_solution(
      grid::network_without_branch(eval_net, sc.outage_branch, /*check_connectivity=*/false),
      sol);
}

/// One record shape for both engines, so their reports cannot drift.
ScenarioRecord make_record(int index, const Scenario& sc, const admm::AdmmStats& stats,
                           const grid::SolutionQuality& quality) {
  ScenarioRecord rec;
  rec.index = index;
  rec.name = sc.name;
  rec.kind = sc.kind;
  rec.converged = stats.converged;
  rec.outer_iterations = stats.outer_iterations;
  rec.inner_iterations = stats.inner_iterations;
  rec.primal_residual = stats.primal_residual;
  rec.dual_residual = stats.dual_residual;
  rec.objective = quality.objective;
  rec.max_violation = quality.max_violation;
  rec.seconds = stats.solve_seconds;
  return rec;
}

}  // namespace

BatchAdmmSolver::BatchAdmmSolver(const ScenarioSet& set, admm::AdmmParams params,
                                 device::Device* dev)
    : net_(set.network()),
      params_(params),
      devs_({dev != nullptr ? dev : &device::default_device()}),
      scenarios_(set.scenarios()),
      waves_(set.waves()),
      model_(admm::build_component_model(net_, params_)),
      mview_(admm::make_model_view(model_)),
      cold_(admm::make_cold_start(net_, model_)),
      rho0_(model_.rho.to_host()) {
  require(!scenarios_.empty(), "BatchAdmmSolver: scenario set is empty");
  eff_.reserve(scenarios_.size());
  for (const auto& sc : scenarios_) {
    const admm::AdmmParams p = effective_params(params_, sc.controls);
    eff_.push_back({p.primal_tolerance, p.dual_tolerance, p.outer_tolerance,
                    p.max_inner_iterations, p.max_outer_iterations});
  }
}

BatchAdmmSolver::BatchAdmmSolver(const ScenarioSet& set, admm::AdmmParams params,
                                 device::DevicePool& pool)
    : BatchAdmmSolver(set, params, &pool.device(0)) {
  devs_.clear();
  for (int d = 0; d < pool.size(); ++d) devs_.push_back(&pool.device(d));
}

admm::AdmmParams effective_params(const admm::AdmmParams& base, const ScenarioControls& controls) {
  admm::AdmmParams p = base;
  if (controls.primal_tolerance >= 0.0) p.primal_tolerance = controls.primal_tolerance;
  if (controls.dual_tolerance >= 0.0) p.dual_tolerance = controls.dual_tolerance;
  if (controls.outer_tolerance >= 0.0) p.outer_tolerance = controls.outer_tolerance;
  if (controls.max_inner_iterations >= 0) p.max_inner_iterations = controls.max_inner_iterations;
  if (controls.max_outer_iterations >= 0) p.max_outer_iterations = controls.max_outer_iterations;
  return p;
}

void BatchAdmmSolver::ensure_storage(bool ping_pong, admm::BatchLayout layout) {
  if (storage_ready_ && plan_.ping_pong == ping_pong && layout_ == layout) return;
  plan_ = BatchPlan::create(scenarios_, waves_, num_shards(), ping_pong);
  layout_ = layout;
  shards_.clear();
  shards_.resize(devs_.size());
  const int buffers = ping_pong ? 2 : 1;
  for (int d = 0; d < num_shards(); ++d) {
    Shard& shard = shards_[static_cast<std::size_t>(d)];
    shard.dev = devs_[static_cast<std::size_t>(d)];
    const int capacity = plan_.shard_capacity[static_cast<std::size_t>(d)];
    shard.states.reserve(static_cast<std::size_t>(buffers));
    shard.views.resize(static_cast<std::size_t>(buffers));
    for (int b = 0; b < buffers; ++b) {
      shard.states.push_back(admm::BatchAdmmState::zeros(model_, capacity, layout));
      auto& views = shard.views[static_cast<std::size_t>(b)];
      views.clear();
      views.reserve(static_cast<std::size_t>(capacity));
      for (int slot = 0; slot < capacity; ++slot) {
        views.push_back(shard.states[static_cast<std::size_t>(b)].view(model_, slot));
      }
    }
  }
  storage_ready_ = true;
}

void BatchAdmmSolver::set_beta(int s, double value) {
  // Two live copies: beta_ is the host truth (control flow, exports), the
  // scenario's current view feeds the kernels. BatchAdmmState::beta is NOT
  // kept in sync — it only seeds views at construction, before any solve.
  beta_[static_cast<std::size_t>(s)] = value;
  Shard& shard = shards_[static_cast<std::size_t>(plan_.shard_of[static_cast<std::size_t>(s)])];
  const int buf = buffer_of(s);
  const auto slot = static_cast<std::size_t>(plan_.slot_of[static_cast<std::size_t>(s)]);
  shard.views[static_cast<std::size_t>(buf)][slot].beta = value;
}

void BatchAdmmSolver::schedule_inner_tolerance(int s, Control& ctrl) const {
  // Inexact inner solves: proportional to the outer infeasibility, never
  // looser than the initial tolerance, never tighter than the final one
  // (identical to AdmmSolver::solve; final tolerances are per-scenario).
  const auto& eff = eff_[static_cast<std::size_t>(s)];
  const double scheduled = std::isfinite(ctrl.prev_znorm)
                               ? params_.inner_tolerance_factor * ctrl.prev_znorm
                               : params_.inner_tolerance_initial;
  // Same bound guard as AdmmSolver::solve: a per-scenario final tolerance
  // looser than the initial one must not invert the clamp (UB when lo > hi).
  ctrl.eps_primal =
      std::clamp(scheduled, eff.primal_tolerance,
                 std::max(params_.inner_tolerance_initial, eff.primal_tolerance));
  ctrl.eps_dual = std::clamp(scheduled, eff.dual_tolerance,
                             std::max(params_.inner_tolerance_initial, eff.dual_tolerance));
}

admm::WarmStartIterate BatchAdmmSolver::solve_base(ScenarioReport& report) {
  WallTimer base_timer;
  admm::AdmmSolver base(net_, params_, devs_.front());
  base.solve();
  report.base_solve_seconds = base_timer.seconds();
  return base.export_iterate();
}

void BatchAdmmSolver::stage_buffer(Shard& shard, int buf, std::span<const int> globals,
                                   const admm::WarmStartIterate* base,
                                   const BatchSolveOptions& options) {
  if (globals.empty()) return;
  admm::BatchAdmmState& state = shard.states[static_cast<std::size_t>(buf)];
  const admm::BatchIndexer idx = state.indexer();
  // Host staging arrays mirror the device layout exactly (including
  // interleaved tile padding), so each upload stays one bulk transfer.
  const auto C = static_cast<std::size_t>(state.padded_scenarios);
  const auto np = static_cast<std::size_t>(model_.num_pairs);
  const auto nb = static_cast<std::size_t>(model_.num_buses);
  const auto ng = static_cast<std::size_t>(model_.num_gens);
  const auto nl = static_cast<std::size_t>(model_.num_branches);
  /// Writes one scenario's logical slice into a layout-mapped host array.
  const auto scatter = [&idx](std::span<const double> src, std::vector<double>& dst, int slot) {
    const std::size_t extent = src.size();
    const std::size_t off = idx.offset(slot, extent);
    if (!idx.interleaved()) {
      std::copy(src.begin(), src.end(), dst.begin() + static_cast<std::ptrdiff_t>(off));
    } else {
      const std::size_t stride = idx.stride();
      for (std::size_t k = 0; k < extent; ++k) dst[off + k * stride] = src[k];
    }
  };

  // Chained slots need no iterate staging: the wave loop's on-device chain
  // copy overwrites every iterate array (and rho) before a kernel reads
  // them, and their beta is set by the chain inheritance. When the whole
  // buffer is chained — every ping-pong wave after the first — the 13
  // iterate uploads are skipped entirely; only the per-scenario problem
  // data (loads, pg bounds, outage masks) is staged.
  bool stage_iterates = false;
  for (const int s : globals) {
    const bool seeded = !options.initial_iterates.empty() &&
                        options.initial_iterates[static_cast<std::size_t>(s)] != nullptr;
    if (scenarios_[static_cast<std::size_t>(s)].chain_from < 0 || seeded) {
      stage_iterates = true;
      break;
    }
  }

  const std::size_t iterate_cells = stage_iterates ? C : 0;
  std::vector<double> hu(iterate_cells * np, 0.0), hw(iterate_cells * nb, 0.0),
      htheta(iterate_cells * nb, 0.0);
  std::vector<double> hv(iterate_cells * np, 0.0), hz(iterate_cells * np, 0.0),
      hy(iterate_cells * np, 0.0), hlz(iterate_cells * np, 0.0);
  std::vector<double> hpg(iterate_cells * ng, 0.0), hqg(iterate_cells * ng, 0.0);
  std::vector<double> hbx(iterate_cells * 4 * nl, 0.0), hbs(iterate_cells * 2 * nl, 0.0),
      hblam(iterate_cells * 2 * nl, 0.0);
  std::vector<double> hrho(iterate_cells * np, 0.0);
  std::vector<double> hpd(C * nb, 0.0), hqd(C * nb, 0.0);
  std::vector<double> hpmin(C * ng, 0.0), hpmax(C * ng, 0.0);
  std::vector<unsigned char> hactive(C * nl, 1);

  for (const int s : globals) {
    const auto& sc = scenarios_[static_cast<std::size_t>(s)];
    const int slot = plan_.slot_of[static_cast<std::size_t>(s)];
    const admm::WarmStartIterate* iterate =
        options.initial_iterates.empty()
            ? nullptr
            : options.initial_iterates[static_cast<std::size_t>(s)];
    // Cold-start template by default; the base fan-out (chain roots only)
    // or an externally-supplied iterate overrides the full iterate through
    // the same copy path (one WarmStartIterate shape for both, so the base
    // warm start cannot diverge from the cache warm start). Either keeps
    // prepare_warm_start semantics: escalated beta and the adaptive
    // scaling baked into the copied rho survive the warm start.
    const admm::WarmStartIterate* seed = iterate;
    if (seed == nullptr && base != nullptr && sc.chain_from < 0) seed = base;
    if (sc.chain_from >= 0 && iterate == nullptr) {
      // Chained: iterate arrives via the on-device chain copy; beta and
      // rho_scale via chain inheritance in the wave loop.
    } else if (seed != nullptr) {
      scatter(seed->u, hu, slot);
      scatter(seed->v, hv, slot);
      scatter(seed->z, hz, slot);
      scatter(seed->y, hy, slot);
      scatter(seed->lz, hlz, slot);
      scatter(seed->bus_w, hw, slot);
      scatter(seed->bus_theta, htheta, slot);
      scatter(seed->gen_pg, hpg, slot);
      scatter(seed->gen_qg, hqg, slot);
      scatter(seed->branch_x, hbx, slot);
      scatter(seed->branch_s, hbs, slot);
      scatter(seed->branch_lambda, hblam, slot);
      scatter(seed->rho, hrho, slot);
      set_beta(s, std::max(seed->beta, params_.beta0));
      rho_scale_[static_cast<std::size_t>(s)] = seed->rho_scale;
    } else {
      // One cold-start template serves every slot: it depends only on
      // bounds and topology, not on loads. Shared with
      // AdmmSolver::cold_start so the batch cold start cannot drift from
      // the sequential one. v starts as a copy of u; z, y, lz,
      // branch_lambda stay zero. Chained slots are overwritten on device
      // by the wave loop's chain copy before they run.
      scatter(cold_.u, hu, slot);
      scatter(cold_.u, hv, slot);
      scatter(cold_.w, hw, slot);
      scatter(cold_.pg, hpg, slot);
      scatter(cold_.qg, hqg, slot);
      scatter(cold_.branch_x, hbx, slot);
      scatter(cold_.branch_s, hbs, slot);
      scatter(rho0_, hrho, slot);
      set_beta(s, params_.beta0);
    }

    scatter(sc.pd, hpd, slot);
    scatter(sc.qd, hqd, slot);
    for (std::size_t g = 0; g < ng; ++g) {
      hpmin[idx.index(slot, g, ng)] = net_.generators[g].pmin;
      hpmax[idx.index(slot, g, ng)] = net_.generators[g].pmax;
    }

    // Outage zeroing runs last so no warm start can reintroduce values on
    // an outaged branch: its pairs and variables stay at zero, every
    // kernel skips them, and they contribute nothing to residuals.
    if (sc.outage_branch >= 0) {
      const auto l = static_cast<std::size_t>(sc.outage_branch);
      hactive[idx.index(slot, l, nl)] = 0;
      const auto pair_base =
          static_cast<std::size_t>(admm::branch_pair_base(model_.num_gens, sc.outage_branch));
      for (std::size_t t = 0; t < 8; ++t) {
        for (auto* arr : {&hu, &hv, &hz, &hy, &hlz}) {
          (*arr)[idx.index(slot, pair_base + t, np)] = 0.0;
        }
      }
      for (std::size_t a = 0; a < 4; ++a) hbx[idx.index(slot, 4 * l + a, 4 * nl)] = 0.0;
      for (std::size_t a = 0; a < 2; ++a) {
        hbs[idx.index(slot, 2 * l + a, 2 * nl)] = 0.0;
        hblam[idx.index(slot, 2 * l + a, 2 * nl)] = 0.0;
      }
    }
  }

  if (stage_iterates) {
    state.v.upload(hv);
    state.z.upload(hz);
    state.y.upload(hy);
    state.lz.upload(hlz);
    state.branch_lambda.upload(hblam);
    state.u.upload(hu);
    state.bus_w.upload(hw);
    state.bus_theta.upload(htheta);
    state.gen_pg.upload(hpg);
    state.gen_qg.upload(hqg);
    state.branch_x.upload(hbx);
    state.branch_s.upload(hbs);
    state.rho.upload(hrho);
  }
  state.pd.upload(hpd);
  state.qd.upload(hqd);
  state.pmin.upload(hpmin);
  state.pmax.upload(hpmax);
  state.branch_active.upload(hactive);
}

void BatchAdmmSolver::run_shard_wave(int shard_id, int wave_index,
                                     const BatchSolveOptions& options) {
  Shard& shard = shards_[static_cast<std::size_t>(shard_id)];
  const auto& wave =
      plan_.wave_shards[static_cast<std::size_t>(wave_index)][static_cast<std::size_t>(shard_id)];
  if (wave.empty()) return;
  WallTimer wave_timer;
  const obs::TraceSpan wave_span("solver.wave", "wave", static_cast<std::uint64_t>(wave_index),
                                 "scenarios", static_cast<std::uint64_t>(wave.size()));

  const int buf = plan_.ping_pong ? wave_index % 2 : 0;
  const int src_buf = plan_.ping_pong ? (wave_index + 1) % 2 : 0;
  admm::BatchAdmmState& dst_state = shard.states[static_cast<std::size_t>(buf)];
  const admm::BatchAdmmState& src_state = shard.states[static_cast<std::size_t>(src_buf)];

  std::vector<ChainLink> links;
  std::vector<RampLink> ramps;
  for (const int s : wave) {
    const auto& sc = scenarios_[static_cast<std::size_t>(s)];
    if (sc.chain_from < 0) continue;
    const int dst_slot = plan_.slot_of[static_cast<std::size_t>(s)];
    const int src_slot = plan_.slot_of[static_cast<std::size_t>(sc.chain_from)];
    links.push_back({dst_slot, src_slot});
    if (sc.ramp_fraction > 0.0) ramps.push_back({dst_slot, src_slot, sc.ramp_fraction});
  }
  obs::PhaseTimer chain_timer;
  if (!links.empty()) {
    batch_chain_state(*shard.dev, model_, src_state, dst_state, links);
    for (const int s : wave) {
      const auto& sc = scenarios_[static_cast<std::size_t>(s)];
      if (sc.chain_from < 0) continue;
      // prepare_warm_start semantics plus inherited adaptive scaling.
      set_beta(s, std::max(beta_[static_cast<std::size_t>(sc.chain_from)], params_.beta0));
      rho_scale_[static_cast<std::size_t>(s)] =
          rho_scale_[static_cast<std::size_t>(sc.chain_from)];
    }
  }
  if (!ramps.empty()) batch_apply_ramp(*shard.dev, model_, src_state, dst_state, ramps);
  shard.phases.chain_seconds += chain_timer.take("fused.chain");

  run_fused(shard, buf, wave, options);

  const double wave_seconds = wave_timer.seconds();
  for (const int s : wave) stats_[static_cast<std::size_t>(s)].solve_seconds = wave_seconds;
}

void BatchAdmmSolver::run_fused(Shard& shard, int buf, std::span<const int> wave,
                                const BatchSolveOptions& options) {
  std::vector<int> active(wave.begin(), wave.end());
  for (const int s : active) {
    ctrl_[static_cast<std::size_t>(s)] = Control{};
    ctrl_[static_cast<std::size_t>(s)].prev_znorm = std::numeric_limits<double>::infinity();
    schedule_inner_tolerance(s, ctrl_[static_cast<std::size_t>(s)]);
    stats_[static_cast<std::size_t>(s)] = admm::AdmmStats{};
    stats_[static_cast<std::size_t>(s)].outer_iterations = 1;
  }

  const int lanes = shard.dev->workers();
  const bool interleaved = layout_ == admm::BatchLayout::kInterleaved;
  const std::span<const admm::ScenarioView> views = shard.views[static_cast<std::size_t>(buf)];
  // Per-step scratch lives outside the loop (and the tile-group vectors
  // outside the solve, in the shard) so the hot path performs no
  // allocations once capacities are reached.
  device::AlignedVector<double> partial_primal, partial_dual, partial_z;
  std::vector<int> next_active, slots, outer_slots, rho_slots;
  std::vector<double> rho_factors;
  std::vector<std::pair<int, double>> beta_updates;
  // Phase attribution and the trace come from ONE clock read per boundary:
  // take(name) returns the seconds accumulated into PhaseBreakdown and
  // emits the span over the identical interval, so the two cannot drift.
  obs::PhaseTimer phase_timer;
  const auto take_phase = [&phase_timer](double& accumulator, const char* name) {
    accumulator += phase_timer.take(name);
  };
  // Convergence sampling (observation-only; see BatchSolveOptions).
  const int sample_interval = options.convergence_sample_interval;
  const auto sample = [this](int s) {
    const auto& stats = stats_[static_cast<std::size_t>(s)];
    auto& trajectory = traj_[static_cast<std::size_t>(s)];
    obs::ConvergenceSample point;
    point.inner_iteration = stats.inner_iterations;
    point.outer_iteration = stats.outer_iterations;
    point.primal_residual = stats.primal_residual;
    point.dual_residual = stats.dual_residual;
    point.rho_scale = rho_scale_[static_cast<std::size_t>(s)];
    point.beta = beta_[static_cast<std::size_t>(s)];
    point.tron_iterations = tron_accum_[static_cast<std::size_t>(s)];
    trajectory.samples.push_back(point);
  };

  while (!active.empty()) {
    ++shard.fused_steps;
    phase_timer.reset();
    const int n = static_cast<int>(active.size());
    const int row = reduce_row_stride(n);
    const auto cells = static_cast<std::size_t>(lanes) * static_cast<std::size_t>(row);
    partial_primal.resize(cells);
    partial_dual.resize(cells);
    partial_z.resize(cells);
    if (sample_interval > 0) shard.tron_partial.resize(cells);
    slots.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      slots[static_cast<std::size_t>(j)] =
          plan_.slot_of[static_cast<std::size_t>(active[static_cast<std::size_t>(j)])];
    }
    // Interleaved: re-pack the surviving slots into tile groups — retired
    // scenarios leave their tile, so full tiles shrink to partial groups
    // and drop to the masked path while every remaining full tile keeps
    // the vectorized lane loop.
    if (interleaved) pack_tile_groups(slots, shard.tile_groups);
    take_phase(shard.phases.residual_seconds, "fused.pack");

    // One fused step: every active scenario advances one inner iteration
    // with a constant number of launches on this shard's device. The
    // elementwise kernels dispatch per layout (slot-major blocks vs
    // component-major tile groups); the TRON branch kernel is the same
    // call either way.
    const std::span<const TileGroup> groups = shard.tile_groups;
    if (interleaved) {
      batch_update_generators(*shard.dev, mview_, views, groups);
    } else {
      batch_update_generators(*shard.dev, mview_, views, slots);
    }
    take_phase(shard.phases.generator_seconds, "fused.generator");
    batch_update_branches(*shard.dev, mview_, params_, views, slots, options.branch_pack,
                          shard.branch_lanes, &shard.branch_stats,
                          sample_interval > 0 ? std::span<std::uint64_t>(shard.tron_partial)
                                              : std::span<std::uint64_t>{},
                          row);
    take_phase(shard.phases.branch_seconds, "fused.branch");
    if (interleaved) {
      batch_update_buses(*shard.dev, mview_, views, groups, partial_dual, row);
    } else {
      batch_update_buses(*shard.dev, mview_, views, slots, partial_dual, row);
    }
    take_phase(shard.phases.bus_seconds, "fused.bus");
    if (interleaved) {
      batch_update_zy(*shard.dev, mview_, params_.two_level, views, groups, partial_primal,
                      partial_z, row);
    } else {
      batch_update_zy(*shard.dev, mview_, params_.two_level, views, slots, partial_primal,
                      partial_z, row);
    }
    take_phase(shard.phases.zy_seconds, "fused.zy");

    next_active.clear();
    outer_slots.clear();
    rho_slots.clear();
    rho_factors.clear();
    beta_updates.clear();

    for (int j = 0; j < n; ++j) {
      const int s = active[static_cast<std::size_t>(j)];
      auto& ctrl = ctrl_[static_cast<std::size_t>(s)];
      auto& stats = stats_[static_cast<std::size_t>(s)];
      const auto& eff = eff_[static_cast<std::size_t>(s)];
      ++stats.inner_iterations;
      const double primal = collect_slot_max(partial_primal, j, row, lanes);
      const double dual = collect_slot_max(partial_dual, j, row, lanes);
      if (!std::isfinite(primal) || !std::isfinite(dual)) {
        // Numerical breakdown in the fused launch. The shared reduction
        // buffers hold non-finite values, so no slot's telemetry can be
        // trusted — abort the whole batch like a device-side trap would;
        // the serving layer isolates the poison scenario by bisection.
        throw NumericalError("BatchAdmmSolver: non-finite residual in fused batch (scenario '" +
                             scenarios_[static_cast<std::size_t>(s)].name +
                             "', inner iteration " + std::to_string(stats.inner_iterations) +
                             ")");
      }
      stats.primal_residual = primal;
      stats.dual_residual = dual;
      if (options.record_history) {
        stats.primal_history.push_back(primal);
        stats.dual_history.push_back(dual);
      }
      if (sample_interval > 0) {
        // Per-slot TRON attribution: sum this step's lane partials (sums
        // are order-free, so the attribution is deterministic).
        std::uint64_t step_tron = 0;
        for (int lane = 0; lane < lanes; ++lane) {
          step_tron += shard.tron_partial[static_cast<std::size_t>(lane) * row +
                                          static_cast<std::size_t>(j)];
        }
        tron_accum_[static_cast<std::size_t>(s)] += step_tron;
        if (stats.inner_iterations % sample_interval == 0) sample(s);
      }

      bool inner_done = false;
      bool inner_converged = false;
      if (primal <= ctrl.eps_primal && dual <= ctrl.eps_dual) {
        inner_done = true;
        inner_converged = true;
      } else {
        // Adaptive penalty (residual balancing), first outer iteration only
        // — identical schedule and budget to AdmmSolver::solve.
        if (params_.adaptive_rho && ctrl.outer == 0 && ctrl.inner > 0 &&
            ctrl.inner % params_.adaptive_rho_interval == 0) {
          double factor = 0.0;
          if (primal > params_.adaptive_rho_mu * dual) {
            factor = params_.adaptive_rho_tau;
          } else if (dual > params_.adaptive_rho_mu * primal) {
            factor = 1.0 / params_.adaptive_rho_tau;
          }
          if (factor != 0.0) {
            const double proposed = rho_scale_[static_cast<std::size_t>(s)] * factor;
            if (proposed <= params_.adaptive_rho_max_scale &&
                proposed >= 1.0 / params_.adaptive_rho_max_scale) {
              rho_scale_[static_cast<std::size_t>(s)] = proposed;
              rho_slots.push_back(slots[static_cast<std::size_t>(j)]);
              rho_factors.push_back(factor);
              ++stats.rho_rescales;
            }
          }
        }
        if (ctrl.inner + 1 >= eff.max_inner_iterations) inner_done = true;
      }

      if (!inner_done) {
        ++ctrl.inner;
        next_active.push_back(s);
        continue;
      }

      if (!params_.two_level) {
        stats.converged = inner_converged;
        continue;
      }

      // Outer (augmented Lagrangian) transition for this scenario.
      const double z_norm = collect_slot_max(partial_z, j, row, lanes);
      stats.z_norm = z_norm;
      if (options.record_history) stats.z_history.push_back(z_norm);
      outer_slots.push_back(slots[static_cast<std::size_t>(j)]);  // pre-escalation beta
      log::debug("batch scenario ", s, " outer ", ctrl.outer + 1, ": |z|=", z_norm,
                 " primal=", primal, " dual=", dual, " beta=", beta_[static_cast<std::size_t>(s)],
                 " inner_total=", stats.inner_iterations);
      if (z_norm <= eff.outer_tolerance && primal <= eff.primal_tolerance &&
          dual <= eff.dual_tolerance) {
        stats.converged = true;
        continue;
      }
      // Beta escalation happens on every non-converged outer iteration —
      // including the last one before the budget exhausts — exactly as in
      // the sequential loop, so chained children inherit the same beta.
      if (z_norm > params_.z_shrink * ctrl.prev_znorm) {
        beta_updates.emplace_back(
            s, std::min(beta_[static_cast<std::size_t>(s)] * params_.beta_factor,
                        params_.beta_max));
      }
      ctrl.prev_znorm = z_norm;
      if (ctrl.outer + 1 >= eff.max_outer_iterations) {
        continue;
      }
      ++ctrl.outer;
      ctrl.inner = 0;
      stats.outer_iterations = ctrl.outer + 1;
      schedule_inner_tolerance(s, ctrl);
      next_active.push_back(s);
    }

    take_phase(shard.phases.residual_seconds, "fused.residual");

    if (!rho_slots.empty()) {
      batch_scale_rho(*shard.dev, model_, shard.states[static_cast<std::size_t>(buf)], rho_slots,
                      rho_factors);
    }
    if (!outer_slots.empty()) {
      if (interleaved) {
        pack_tile_groups(outer_slots, shard.outer_groups);
        batch_update_outer_multiplier(*shard.dev, mview_, views,
                                      std::span<const TileGroup>(shard.outer_groups),
                                      params_.lambda_bound);
      } else {
        batch_update_outer_multiplier(*shard.dev, mview_, views, outer_slots,
                                      params_.lambda_bound);
      }
    }
    take_phase(shard.phases.outer_seconds, "fused.outer");
    // Beta escalation applies after the multiplier update, exactly as in
    // the sequential outer loop.
    for (const auto& [s, beta] : beta_updates) set_beta(s, beta);

    active.swap(next_active);
  }

  if (sample_interval > 0) {
    // Retirement capture: every scenario's trajectory ends with its final
    // state even when the interval does not divide its iteration count.
    for (const int s : wave) {
      const auto& stats = stats_[static_cast<std::size_t>(s)];
      auto& trajectory = traj_[static_cast<std::size_t>(s)];
      trajectory.scenario = s;
      trajectory.converged = stats.converged;
      trajectory.hit_iteration_cap = !stats.converged;
      if (trajectory.samples.empty() ||
          trajectory.samples.back().inner_iteration != stats.inner_iterations) {
        sample(s);
      }
    }
  }
}

void BatchAdmmSolver::evaluate_shard(int shard_id, int buf, std::span<const int> globals,
                                     ScenarioReport& report, grid::Network& eval_net,
                                     bool capture) {
  if (globals.empty()) return;
  const admm::BatchAdmmState& state =
      shards_[static_cast<std::size_t>(shard_id)].states[static_cast<std::size_t>(buf)];
  const admm::BatchIndexer idx = state.indexer();
  const auto w = state.bus_w.to_host();
  const auto theta = state.bus_theta.to_host();
  const auto pg = state.gen_pg.to_host();
  const auto qg = state.gen_qg.to_host();
  for (const int s : globals) {
    const auto& sc = scenarios_[static_cast<std::size_t>(s)];
    const int slot = plan_.slot_of[static_cast<std::size_t>(s)];
    auto sol = slice_solution(net_, idx, w, theta, pg, qg, slot);
    apply_scenario_loads(eval_net, sc);
    report.records[static_cast<std::size_t>(s)] =
        make_record(s, sc, stats_[static_cast<std::size_t>(s)],
                    scenario_quality(eval_net, sc, sol));
    if (capture) pp_solutions_[static_cast<std::size_t>(s)] = std::move(sol);
  }
}

ScenarioReport BatchAdmmSolver::solve(const BatchSolveOptions& options) {
  WallTimer total;
  ScenarioReport report;
  const int S = num_scenarios();
  require(options.branch_pack >= 1, "BatchAdmmSolver::solve: branch_pack must be >= 1");
  if (options.trace) obs::Tracer::instance().enable();
  const obs::TraceSpan solve_span("solver.solve", "scenarios", static_cast<std::uint64_t>(S),
                                  "shards", static_cast<std::uint64_t>(num_shards()));
  ensure_storage(options.ping_pong, options.layout);
  report.num_shards = num_shards();
  ctrl_.assign(static_cast<std::size_t>(S), Control{});
  beta_.assign(static_cast<std::size_t>(S), 0.0);
  rho_scale_.assign(static_cast<std::size_t>(S), 1.0);
  stats_.assign(static_cast<std::size_t>(S), admm::AdmmStats{});
  report.records.assign(static_cast<std::size_t>(S), ScenarioRecord{});
  for (auto& shard : shards_) {
    shard.branch_stats = admm::BranchUpdateStats{};
    shard.phases = PhaseBreakdown{};
    shard.fused_steps = 0;
  }
  if (plan_.ping_pong) pp_solutions_.assign(static_cast<std::size_t>(S), grid::OpfSolution{});
  if (options.convergence_sample_interval > 0) {
    traj_.assign(static_cast<std::size_t>(S), obs::ConvergenceTrajectory{});
    tron_accum_.assign(static_cast<std::size_t>(S), 0);
  } else {
    traj_.clear();
    tron_accum_.clear();
  }

  if (!options.initial_iterates.empty()) {
    require(static_cast<int>(options.initial_iterates.size()) == S,
            "BatchAdmmSolver::solve: initial_iterates must have one slot per scenario");
    for (int s = 0; s < S; ++s) {
      const auto* it = options.initial_iterates[static_cast<std::size_t>(s)];
      if (it == nullptr) continue;
      admm::require_matches(*it, model_, "BatchAdmmSolver::solve");
      require(scenarios_[static_cast<std::size_t>(s)].chain_from < 0,
              "BatchAdmmSolver::solve: a chained scenario cannot take an initial iterate");
    }
  }

  // ---- Plan done; execute: base solve, stage, then the wave loop ----
  admm::WarmStartIterate base;
  const admm::WarmStartIterate* base_ptr = nullptr;
  if (options.warm_start_from_base) {
    base = solve_base(report);
    base_ptr = &base;
  }

  if (!plan_.ping_pong) {
    for (int d = 0; d < num_shards(); ++d) {
      stage_buffer(shards_[static_cast<std::size_t>(d)], 0,
                   plan_.shard_scenarios[static_cast<std::size_t>(d)], base_ptr, options);
    }
  }

  std::vector<device::LaunchStats> launches_before;
  launches_before.reserve(devs_.size());
  for (const auto* dev : devs_) launches_before.push_back(dev->stats());

  grid::Network eval_net = net_;  // one reusable copy; loads swapped per scenario
  std::uint64_t loop_transfers = 0;
  double fused_seconds = 0.0;

  // Runs every shard's slice of a wave concurrently, one thread per
  // non-trivial shard; shard 0 runs on the calling thread. Shards touch
  // disjoint scenarios and their own devices, so the only shared state is
  // the per-scenario bookkeeping each thread owns a disjoint slice of.
  auto run_wave = [&](int wave_index) {
    if (num_shards() == 1) {
      run_shard_wave(0, wave_index, options);
      return;
    }
    const auto& wave_shards = plan_.wave_shards[static_cast<std::size_t>(wave_index)];
    std::exception_ptr first_error;
    std::mutex error_mu;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_shards() - 1));
    for (int d = 1; d < num_shards(); ++d) {
      if (wave_shards[static_cast<std::size_t>(d)].empty()) continue;
      threads.emplace_back([&, d] {
        try {
          run_shard_wave(d, wave_index, options);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    try {
      run_shard_wave(0, wave_index, options);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    for (auto& thread : threads) thread.join();
    if (first_error) std::rethrow_exception(first_error);
  };

  for (int wave_index = 0; wave_index < plan_.num_waves(); ++wave_index) {
    if (plan_.ping_pong) {
      // Per-wave staging reuses the buffer wave_index - 2 ran in; its
      // results were captured at that wave's end. Staging and evaluation
      // transfers stay outside the iteration-transfer accounting window,
      // mirroring the persistent path where both happen outside the loop.
      const int buf = wave_index % 2;
      for (int d = 0; d < num_shards(); ++d) {
        stage_buffer(
            shards_[static_cast<std::size_t>(d)], buf,
            plan_.wave_shards[static_cast<std::size_t>(wave_index)][static_cast<std::size_t>(d)],
            wave_index == 0 ? base_ptr : nullptr, options);
      }
      const auto transfers_before = device::transfer_stats();
      WallTimer wave_timer;
      run_wave(wave_index);
      fused_seconds += wave_timer.seconds();
      const auto transfers_after = device::transfer_stats();
      loop_transfers += (transfers_after.host_to_device - transfers_before.host_to_device) +
                        (transfers_after.device_to_host - transfers_before.device_to_host);
      for (int d = 0; d < num_shards(); ++d) {
        evaluate_shard(
            d, buf,
            plan_.wave_shards[static_cast<std::size_t>(wave_index)][static_cast<std::size_t>(d)],
            report, eval_net, /*capture=*/true);
      }
    } else {
      const auto transfers_before = device::transfer_stats();
      WallTimer wave_timer;
      run_wave(wave_index);
      fused_seconds += wave_timer.seconds();
      const auto transfers_after = device::transfer_stats();
      loop_transfers += (transfers_after.host_to_device - transfers_before.host_to_device) +
                        (transfers_after.device_to_host - transfers_before.device_to_host);
    }
  }
  report.solve_seconds = fused_seconds;
  report.transfers_during_iterations = loop_transfers;

  report.shard_launches.clear();
  report.shard_launches.reserve(devs_.size());
  for (std::size_t d = 0; d < devs_.size(); ++d) {
    report.shard_launches.push_back(devs_[d]->stats() - launches_before[d]);
    report.launch_stats += report.shard_launches.back();
  }

  // ---- Evaluation (persistent mode: downloads happen after the loop) ----
  if (!plan_.ping_pong) {
    for (int d = 0; d < num_shards(); ++d) {
      evaluate_shard(d, 0, plan_.shard_scenarios[static_cast<std::size_t>(d)], report, eval_net,
                     /*capture=*/false);
    }
  }
  report.stats = stats_;
  if (options.convergence_sample_interval > 0) report.convergence = traj_;
  for (const auto& shard : shards_) {
    report.branch += shard.branch_stats;
    report.phases += shard.phases;
    report.fused_steps += shard.fused_steps;
  }
  report.total_seconds = total.seconds();
  solved_ = true;
  return report;
}

grid::OpfSolution BatchAdmmSolver::solution(int s) const {
  require(s >= 0 && s < num_scenarios(), "BatchAdmmSolver::solution: scenario out of range");
  require(solved_, "BatchAdmmSolver::solution: valid only after solve()");
  if (plan_.ping_pong) return pp_solutions_[static_cast<std::size_t>(s)];
  // Slot-slice download: move only scenario s's data, not the batch
  // (contiguous in scenario-major, one strided gather per array when
  // interleaved).
  const Shard& shard =
      shards_[static_cast<std::size_t>(plan_.shard_of[static_cast<std::size_t>(s)])];
  const admm::BatchAdmmState& state = shard.states.front();
  const admm::BatchIndexer idx = state.indexer();
  const auto nb = static_cast<std::size_t>(model_.num_buses);
  const auto ng = static_cast<std::size_t>(model_.num_gens);
  const int slot = plan_.slot_of[static_cast<std::size_t>(s)];
  std::vector<double> w(nb), theta(nb), pg(ng), qg(ng);
  download_slot(state.bus_w, idx, slot, w);
  download_slot(state.bus_theta, idx, slot, theta);
  download_slot(state.gen_pg, idx, slot, pg);
  download_slot(state.gen_qg, idx, slot, qg);
  return slice_solution(net_, admm::BatchIndexer{}, w, theta, pg, qg, /*s=*/0);
}

admm::WarmStartIterate BatchAdmmSolver::export_iterate(int s) const {
  require(s >= 0 && s < num_scenarios(), "BatchAdmmSolver::export_iterate: scenario out of range");
  require(solved_, "BatchAdmmSolver::export_iterate: valid only after solve()");
  if (plan_.ping_pong) {
    require(plan_.wave_of[static_cast<std::size_t>(s)] >= plan_.num_waves() - 2,
            "BatchAdmmSolver::export_iterate: scenario's wave buffer was reused (ping-pong "
            "keeps only the last two waves resident)");
  }
  const Shard& shard =
      shards_[static_cast<std::size_t>(plan_.shard_of[static_cast<std::size_t>(s)])];
  const admm::BatchAdmmState& state = shard.states[static_cast<std::size_t>(buffer_of(s))];
  const admm::BatchIndexer idx = state.indexer();
  const auto np = static_cast<std::size_t>(model_.num_pairs);
  const auto nb = static_cast<std::size_t>(model_.num_buses);
  const auto ng = static_cast<std::size_t>(model_.num_gens);
  const auto nl = static_cast<std::size_t>(model_.num_branches);
  const int slot = plan_.slot_of[static_cast<std::size_t>(s)];
  admm::WarmStartIterate it;
  it.u.resize(np);
  it.v.resize(np);
  it.z.resize(np);
  it.y.resize(np);
  it.lz.resize(np);
  it.bus_w.resize(nb);
  it.bus_theta.resize(nb);
  it.gen_pg.resize(ng);
  it.gen_qg.resize(ng);
  it.branch_x.resize(4 * nl);
  it.branch_s.resize(2 * nl);
  it.branch_lambda.resize(2 * nl);
  it.rho.resize(np);
  download_slot(state.u, idx, slot, it.u);
  download_slot(state.v, idx, slot, it.v);
  download_slot(state.z, idx, slot, it.z);
  download_slot(state.y, idx, slot, it.y);
  download_slot(state.lz, idx, slot, it.lz);
  download_slot(state.bus_w, idx, slot, it.bus_w);
  download_slot(state.bus_theta, idx, slot, it.bus_theta);
  download_slot(state.gen_pg, idx, slot, it.gen_pg);
  download_slot(state.gen_qg, idx, slot, it.gen_qg);
  download_slot(state.branch_x, idx, slot, it.branch_x);
  download_slot(state.branch_s, idx, slot, it.branch_s);
  download_slot(state.branch_lambda, idx, slot, it.branch_lambda);
  download_slot(state.rho, idx, slot, it.rho);
  it.beta = beta_[static_cast<std::size_t>(s)];
  it.rho_scale = rho_scale_[static_cast<std::size_t>(s)];
  return it;
}

std::vector<grid::OpfSolution> BatchAdmmSolver::solutions() const {
  require(solved_, "BatchAdmmSolver::solutions: valid only after solve()");
  if (plan_.ping_pong) return pp_solutions_;
  std::vector<grid::OpfSolution> result(static_cast<std::size_t>(num_scenarios()));
  for (int d = 0; d < num_shards(); ++d) {
    const Shard& shard = shards_[static_cast<std::size_t>(d)];
    const auto& owned = plan_.shard_scenarios[static_cast<std::size_t>(d)];
    if (owned.empty()) continue;
    const admm::BatchAdmmState& state = shard.states.front();
    const admm::BatchIndexer idx = state.indexer();
    const auto w = state.bus_w.to_host();
    const auto theta = state.bus_theta.to_host();
    const auto pg = state.gen_pg.to_host();
    const auto qg = state.gen_qg.to_host();
    for (const int s : owned) {
      result[static_cast<std::size_t>(s)] = slice_solution(
          net_, idx, w, theta, pg, qg, plan_.slot_of[static_cast<std::size_t>(s)]);
    }
  }
  return result;
}

ScenarioReport solve_sequential(const ScenarioSet& set, const admm::AdmmParams& params,
                                device::Device* dev) {
  device::Device* device = dev != nullptr ? dev : &device::default_device();
  const auto& net = set.network();
  const int S = set.size();
  require(S > 0, "solve_sequential: scenario set is empty");

  WallTimer total;
  ScenarioReport report;
  report.records.reserve(static_cast<std::size_t>(S));
  report.stats.reserve(static_cast<std::size_t>(S));
  // A solver is retained only while unconstructed children still need it,
  // so tracking chains hold O(live parents) solver states, not O(S).
  std::vector<int> children_left(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    if (set[s].chain_from >= 0) ++children_left[static_cast<std::size_t>(set[s].chain_from)];
  }
  std::vector<std::unique_ptr<admm::AdmmSolver>> solvers(static_cast<std::size_t>(S));
  grid::Network eval_net = net;  // one reusable copy; loads swapped per scenario

  // Explicit snapshot rather than a function-scope LaunchStatsScope: the
  // scope's destructor would run after `return report` has already copied
  // the (then still zero) launch_stats when NRVO is not performed.
  const device::LaunchStats launches_before = device->stats();
  WallTimer solve_timer;
  for (int s = 0; s < S; ++s) {
    const auto& sc = set[s];
    std::unique_ptr<admm::AdmmSolver> solver;
    if (sc.outage_branch >= 0) {
      solver = std::make_unique<admm::AdmmSolver>(
          grid::network_without_branch(net, sc.outage_branch), params, device);
      solver->set_loads(sc.pd, sc.qd);
    } else if (sc.chain_from >= 0) {
      // Warm start from a copy of the parent's solver (full iterate kept).
      solver =
          std::make_unique<admm::AdmmSolver>(*solvers[static_cast<std::size_t>(sc.chain_from)]);
      const int ng = net.num_generators();
      std::vector<double> pmin(static_cast<std::size_t>(ng)), pmax(static_cast<std::size_t>(ng));
      const auto prev_pg = solver->solution().pg;
      for (int g = 0; g < ng; ++g) {
        const auto& gen = net.generators[static_cast<std::size_t>(g)];
        if (sc.ramp_fraction > 0.0) {
          const double ramp = sc.ramp_fraction * gen.pmax;
          pmin[static_cast<std::size_t>(g)] =
              std::max(gen.pmin, prev_pg[static_cast<std::size_t>(g)] - ramp);
          pmax[static_cast<std::size_t>(g)] =
              std::min(gen.pmax, prev_pg[static_cast<std::size_t>(g)] + ramp);
        } else {
          pmin[static_cast<std::size_t>(g)] = gen.pmin;
          pmax[static_cast<std::size_t>(g)] = gen.pmax;
        }
      }
      solver->set_generator_pg_bounds(pmin, pmax);
      solver->set_loads(sc.pd, sc.qd);
      solver->prepare_warm_start();
      const auto parent = static_cast<std::size_t>(sc.chain_from);
      if (--children_left[parent] == 0) solvers[parent].reset();
    } else {
      solver = std::make_unique<admm::AdmmSolver>(net, params, device);
      solver->set_loads(sc.pd, sc.qd);
    }
    // Heterogeneous termination knobs resolve against the batch-wide base
    // params — not a chained parent's possibly-overridden copy — exactly as
    // the batch engine does, so the assignment is unconditional.
    solver->params() = effective_params(params, sc.controls);

    auto stats = solver->solve();
    const auto sol = solver->solution();
    apply_scenario_loads(eval_net, sc);
    report.branch += stats.branch;
    report.records.push_back(make_record(s, sc, stats, scenario_quality(eval_net, sc, sol)));
    report.stats.push_back(std::move(stats));
    if (children_left[static_cast<std::size_t>(s)] > 0) {
      solvers[static_cast<std::size_t>(s)] = std::move(solver);
    }
  }
  report.solve_seconds = solve_timer.seconds();
  report.launch_stats = device->stats() - launches_before;
  report.total_seconds = total.seconds();
  return report;
}

}  // namespace gridadmm::scenario
