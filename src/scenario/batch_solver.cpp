#include "scenario/batch_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "scenario/batch_kernels.hpp"

namespace gridadmm::scenario {

namespace {

/// Per-slot max over the per-lane partial rows (exact: max is order-free).
double collect_slot_max(std::span<const double> partial, int j, int row_stride, int lanes) {
  double result = 0.0;
  for (int lane = 0; lane < lanes; ++lane) {
    result = std::max(result, partial[static_cast<std::size_t>(lane) * row_stride +
                                      static_cast<std::size_t>(j)]);
  }
  return result;
}

grid::OpfSolution slice_solution(const grid::Network& net, std::span<const double> w,
                                 std::span<const double> theta, std::span<const double> pg,
                                 std::span<const double> qg, int s) {
  grid::OpfSolution sol = grid::OpfSolution::zeros(net);
  const int nb = net.num_buses();
  const int ng = net.num_generators();
  const auto bus0 = static_cast<std::size_t>(s) * static_cast<std::size_t>(nb);
  const auto gen0 = static_cast<std::size_t>(s) * static_cast<std::size_t>(ng);
  const double ref_angle = theta[bus0 + static_cast<std::size_t>(net.ref_bus)];
  for (int i = 0; i < nb; ++i) {
    sol.vm[static_cast<std::size_t>(i)] =
        std::sqrt(std::max(w[bus0 + static_cast<std::size_t>(i)], 1e-12));
    sol.va[static_cast<std::size_t>(i)] = theta[bus0 + static_cast<std::size_t>(i)] - ref_angle;
  }
  for (int g = 0; g < ng; ++g) {
    sol.pg[static_cast<std::size_t>(g)] = pg[gen0 + static_cast<std::size_t>(g)];
    sol.qg[static_cast<std::size_t>(g)] = qg[gen0 + static_cast<std::size_t>(g)];
  }
  return sol;
}

/// Swaps a reusable evaluation copy's loads for the scenario's.
void apply_scenario_loads(grid::Network& net, const Scenario& sc) {
  for (int i = 0; i < net.num_buses(); ++i) {
    net.buses[static_cast<std::size_t>(i)].pd = sc.pd[static_cast<std::size_t>(i)];
    net.buses[static_cast<std::size_t>(i)].qd = sc.qd[static_cast<std::size_t>(i)];
  }
}

/// Quality against the network the scenario is actually constrained by:
/// `eval_net` (base topology, loads already swapped in) for load-only
/// scenarios, a reduced copy when a branch is outaged. Outages were
/// bridge-screened by ScenarioSet::add, so the re-check is skipped.
grid::SolutionQuality scenario_quality(const grid::Network& eval_net, const Scenario& sc,
                                       const grid::OpfSolution& sol) {
  if (sc.outage_branch < 0) return grid::evaluate_solution(eval_net, sol);
  return grid::evaluate_solution(
      grid::network_without_branch(eval_net, sc.outage_branch, /*check_connectivity=*/false),
      sol);
}

/// One record shape for both engines, so their reports cannot drift.
ScenarioRecord make_record(int index, const Scenario& sc, const admm::AdmmStats& stats,
                           const grid::SolutionQuality& quality) {
  ScenarioRecord rec;
  rec.index = index;
  rec.name = sc.name;
  rec.kind = sc.kind;
  rec.converged = stats.converged;
  rec.outer_iterations = stats.outer_iterations;
  rec.inner_iterations = stats.inner_iterations;
  rec.primal_residual = stats.primal_residual;
  rec.dual_residual = stats.dual_residual;
  rec.objective = quality.objective;
  rec.max_violation = quality.max_violation;
  rec.seconds = stats.solve_seconds;
  return rec;
}

}  // namespace

BatchAdmmSolver::BatchAdmmSolver(const ScenarioSet& set, admm::AdmmParams params,
                                 device::Device* dev)
    : net_(set.network()),
      params_(params),
      dev_(dev != nullptr ? dev : &device::default_device()),
      scenarios_(set.scenarios()),
      waves_(set.waves()),
      model_(admm::build_component_model(net_, params_)),
      state_(admm::BatchAdmmState::zeros(model_, set.size())),
      mview_(admm::make_model_view(model_)) {
  require(!scenarios_.empty(), "BatchAdmmSolver: scenario set is empty");
  views_.reserve(scenarios_.size());
  for (int s = 0; s < num_scenarios(); ++s) views_.push_back(state_.view(model_, s));
  eff_.reserve(scenarios_.size());
  for (const auto& sc : scenarios_) {
    const admm::AdmmParams p = effective_params(params_, sc.controls);
    eff_.push_back({p.primal_tolerance, p.dual_tolerance, p.outer_tolerance,
                    p.max_inner_iterations, p.max_outer_iterations});
  }
}

admm::AdmmParams effective_params(const admm::AdmmParams& base, const ScenarioControls& controls) {
  admm::AdmmParams p = base;
  if (controls.primal_tolerance >= 0.0) p.primal_tolerance = controls.primal_tolerance;
  if (controls.dual_tolerance >= 0.0) p.dual_tolerance = controls.dual_tolerance;
  if (controls.outer_tolerance >= 0.0) p.outer_tolerance = controls.outer_tolerance;
  if (controls.max_inner_iterations >= 0) p.max_inner_iterations = controls.max_inner_iterations;
  if (controls.max_outer_iterations >= 0) p.max_outer_iterations = controls.max_outer_iterations;
  return p;
}

void BatchAdmmSolver::set_beta(int s, double value) {
  state_.beta[static_cast<std::size_t>(s)] = value;
  views_[static_cast<std::size_t>(s)].beta = value;
}

void BatchAdmmSolver::schedule_inner_tolerance(int s, Control& ctrl) const {
  // Inexact inner solves: proportional to the outer infeasibility, never
  // looser than the initial tolerance, never tighter than the final one
  // (identical to AdmmSolver::solve; final tolerances are per-scenario).
  const auto& eff = eff_[static_cast<std::size_t>(s)];
  const double scheduled = std::isfinite(ctrl.prev_znorm)
                               ? params_.inner_tolerance_factor * ctrl.prev_znorm
                               : params_.inner_tolerance_initial;
  // Same bound guard as AdmmSolver::solve: a per-scenario final tolerance
  // looser than the initial one must not invert the clamp (UB when lo > hi).
  ctrl.eps_primal =
      std::clamp(scheduled, eff.primal_tolerance,
                 std::max(params_.inner_tolerance_initial, eff.primal_tolerance));
  ctrl.eps_dual = std::clamp(scheduled, eff.dual_tolerance,
                             std::max(params_.inner_tolerance_initial, eff.dual_tolerance));
}

void BatchAdmmSolver::stage_initial_state(const BatchSolveOptions& options,
                                          ScenarioReport& report) {
  const int S = num_scenarios();
  const auto np = static_cast<std::size_t>(model_.num_pairs);
  const auto nb = static_cast<std::size_t>(model_.num_buses);
  const auto ng = static_cast<std::size_t>(model_.num_gens);
  const auto nl = static_cast<std::size_t>(model_.num_branches);

  std::vector<double> hu(S * np, 0.0), hw(S * nb, 0.0), htheta(S * nb, 0.0);
  std::vector<double> hv(S * np, 0.0), hz(S * np, 0.0), hy(S * np, 0.0), hlz(S * np, 0.0);
  std::vector<double> hpg(S * ng, 0.0), hqg(S * ng, 0.0);
  std::vector<double> hbx(S * 4 * nl, 0.0), hbs(S * 2 * nl, 0.0), hblam(S * 2 * nl, 0.0);
  std::vector<double> hrho(S * np, 0.0), hpd(S * nb, 0.0), hqd(S * nb, 0.0);
  std::vector<double> hpmin(S * ng, 0.0), hpmax(S * ng, 0.0);
  std::vector<unsigned char> hactive(S * nl, 1);

  const auto rho0 = model_.rho.to_host();

  // One cold-start template serves every slot: it depends only on bounds
  // and topology, not on loads. Shared with AdmmSolver::cold_start so the
  // batch cold start cannot drift from the sequential one.
  const admm::ColdStartTemplate tmpl = admm::make_cold_start(net_, model_);
  const auto& u0 = tmpl.u;
  const auto& w0 = tmpl.w;
  const auto& pg0 = tmpl.pg;
  const auto& qg0 = tmpl.qg;
  const auto& bx0 = tmpl.branch_x;
  const auto& bs0 = tmpl.branch_s;

  for (int s = 0; s < S; ++s) {
    const auto& sc = scenarios_[static_cast<std::size_t>(s)];
    const auto su = static_cast<std::size_t>(s);
    std::copy(u0.begin(), u0.end(), hu.begin() + su * np);
    std::copy(w0.begin(), w0.end(), hw.begin() + su * nb);
    std::copy(pg0.begin(), pg0.end(), hpg.begin() + su * ng);
    std::copy(qg0.begin(), qg0.end(), hqg.begin() + su * ng);
    std::copy(bx0.begin(), bx0.end(), hbx.begin() + su * 4 * nl);
    std::copy(bs0.begin(), bs0.end(), hbs.begin() + su * 2 * nl);
    std::copy(rho0.begin(), rho0.end(), hrho.begin() + su * np);
    std::copy(sc.pd.begin(), sc.pd.end(), hpd.begin() + su * nb);
    std::copy(sc.qd.begin(), sc.qd.end(), hqd.begin() + su * nb);
    for (std::size_t g = 0; g < ng; ++g) {
      hpmin[su * ng + g] = net_.generators[g].pmin;
      hpmax[su * ng + g] = net_.generators[g].pmax;
    }
    if (sc.outage_branch >= 0) hactive[su * nl + static_cast<std::size_t>(sc.outage_branch)] = 0;
    set_beta(s, params_.beta0);
  }
  // v starts as a copy of u (bus copies consistent with the x side);
  // z, y, lz, branch_lambda stay zero unless a warm start overwrites them.
  hv = hu;

  // ---- Optional base-case warm start fanned out to chain roots ----
  if (options.warm_start_from_base) {
    WallTimer base_timer;
    admm::AdmmSolver base(net_, params_, dev_);
    base.solve();
    report.base_solve_seconds = base_timer.seconds();
    const auto bu = base.state().u.to_host();
    const auto bv = base.state().v.to_host();
    const auto bz = base.state().z.to_host();
    const auto by = base.state().y.to_host();
    const auto blz = base.state().lz.to_host();
    const auto bw = base.state().bus_w.to_host();
    const auto btheta = base.state().bus_theta.to_host();
    const auto bpg = base.state().gen_pg.to_host();
    const auto bqg = base.state().gen_qg.to_host();
    const auto bbx = base.state().branch_x.to_host();
    const auto bbs = base.state().branch_s.to_host();
    const auto bblam = base.state().branch_lambda.to_host();
    const auto brho = base.model().rho.to_host();

    for (int s = 0; s < S; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (scenarios_[su].chain_from >= 0) continue;  // chained slots seed on device
      std::copy(bu.begin(), bu.end(), hu.begin() + su * np);
      std::copy(bv.begin(), bv.end(), hv.begin() + su * np);
      std::copy(bz.begin(), bz.end(), hz.begin() + su * np);
      std::copy(by.begin(), by.end(), hy.begin() + su * np);
      std::copy(blz.begin(), blz.end(), hlz.begin() + su * np);
      std::copy(bw.begin(), bw.end(), hw.begin() + su * nb);
      std::copy(btheta.begin(), btheta.end(), htheta.begin() + su * nb);
      std::copy(bpg.begin(), bpg.end(), hpg.begin() + su * ng);
      std::copy(bqg.begin(), bqg.end(), hqg.begin() + su * ng);
      std::copy(bbx.begin(), bbx.end(), hbx.begin() + su * 4 * nl);
      std::copy(bbs.begin(), bbs.end(), hbs.begin() + su * 2 * nl);
      std::copy(bblam.begin(), bblam.end(), hblam.begin() + su * 2 * nl);
      std::copy(brho.begin(), brho.end(), hrho.begin() + su * np);
      // prepare_warm_start semantics: keep the escalated outer penalty and
      // the adaptive scaling already baked into the copied rho, so the
      // cumulative scaling bound keeps holding across the warm start.
      set_beta(s, std::max(base.state().beta, params_.beta0));
      rho_scale_[su] = base.rho_scale();
    }
  }

  // ---- Externally-supplied initial iterates (serve-layer cache hits) ----
  if (!options.initial_iterates.empty()) {
    for (int s = 0; s < S; ++s) {
      const admm::WarmStartIterate* it = options.initial_iterates[static_cast<std::size_t>(s)];
      if (it == nullptr) continue;
      const auto su = static_cast<std::size_t>(s);
      std::copy(it->u.begin(), it->u.end(), hu.begin() + su * np);
      std::copy(it->v.begin(), it->v.end(), hv.begin() + su * np);
      std::copy(it->z.begin(), it->z.end(), hz.begin() + su * np);
      std::copy(it->y.begin(), it->y.end(), hy.begin() + su * np);
      std::copy(it->lz.begin(), it->lz.end(), hlz.begin() + su * np);
      std::copy(it->bus_w.begin(), it->bus_w.end(), hw.begin() + su * nb);
      std::copy(it->bus_theta.begin(), it->bus_theta.end(), htheta.begin() + su * nb);
      std::copy(it->gen_pg.begin(), it->gen_pg.end(), hpg.begin() + su * ng);
      std::copy(it->gen_qg.begin(), it->gen_qg.end(), hqg.begin() + su * ng);
      std::copy(it->branch_x.begin(), it->branch_x.end(), hbx.begin() + su * 4 * nl);
      std::copy(it->branch_s.begin(), it->branch_s.end(), hbs.begin() + su * 2 * nl);
      std::copy(it->branch_lambda.begin(), it->branch_lambda.end(), hblam.begin() + su * 2 * nl);
      std::copy(it->rho.begin(), it->rho.end(), hrho.begin() + su * np);
      // prepare_warm_start semantics: keep the iterate's escalated beta and
      // adaptive scaling, only raise beta to at least beta0.
      set_beta(s, std::max(it->beta, params_.beta0));
      rho_scale_[su] = it->rho_scale;
    }
  }

  // Outage zeroing runs last so no warm start can reintroduce values on an
  // outaged branch: its pairs and variables stay at zero, every kernel
  // skips them, and they contribute nothing to residuals or balances.
  for (int s = 0; s < S; ++s) {
    const auto& sc = scenarios_[static_cast<std::size_t>(s)];
    if (sc.outage_branch < 0) continue;
    const auto su = static_cast<std::size_t>(s);
    const auto l = static_cast<std::size_t>(sc.outage_branch);
    const auto base =
        static_cast<std::size_t>(admm::branch_pair_base(model_.num_gens, sc.outage_branch));
    for (auto* arr : {&hu, &hv, &hz, &hy, &hlz}) {
      std::fill_n(arr->begin() + su * np + base, 8, 0.0);
    }
    std::fill_n(hbx.begin() + su * 4 * nl + 4 * l, 4, 0.0);
    std::fill_n(hbs.begin() + su * 2 * nl + 2 * l, 2, 0.0);
    std::fill_n(hblam.begin() + su * 2 * nl + 2 * l, 2, 0.0);
  }

  state_.v.upload(hv);
  state_.z.upload(hz);
  state_.y.upload(hy);
  state_.lz.upload(hlz);
  state_.branch_lambda.upload(hblam);
  state_.u.upload(hu);
  state_.bus_w.upload(hw);
  state_.bus_theta.upload(htheta);
  state_.gen_pg.upload(hpg);
  state_.gen_qg.upload(hqg);
  state_.branch_x.upload(hbx);
  state_.branch_s.upload(hbs);
  state_.rho.upload(hrho);
  state_.pd.upload(hpd);
  state_.qd.upload(hqd);
  state_.pmin.upload(hpmin);
  state_.pmax.upload(hpmax);
  state_.branch_active.upload(hactive);
}

void BatchAdmmSolver::run_fused(std::span<const int> wave, const BatchSolveOptions& options) {
  std::vector<int> active(wave.begin(), wave.end());
  for (const int s : active) {
    ctrl_[static_cast<std::size_t>(s)] = Control{};
    ctrl_[static_cast<std::size_t>(s)].prev_znorm = std::numeric_limits<double>::infinity();
    schedule_inner_tolerance(s, ctrl_[static_cast<std::size_t>(s)]);
    stats_[static_cast<std::size_t>(s)] = admm::AdmmStats{};
    stats_[static_cast<std::size_t>(s)].outer_iterations = 1;
  }

  const int lanes = dev_->workers();
  std::vector<double> partial_primal, partial_dual, partial_z;
  std::vector<int> next_active, outer_slots, rho_slots;
  std::vector<double> rho_factors;
  std::vector<std::pair<int, double>> beta_updates;

  while (!active.empty()) {
    const int n = static_cast<int>(active.size());
    const int row = reduce_row_stride(n);
    const auto cells = static_cast<std::size_t>(lanes) * static_cast<std::size_t>(row);
    partial_primal.resize(cells);
    partial_dual.resize(cells);
    partial_z.resize(cells);

    // One fused step: every active scenario advances one inner iteration
    // with a constant number of launches.
    batch_update_generators(*dev_, mview_, views_, active);
    batch_update_branches(*dev_, mview_, params_, views_, active, branch_lanes_, &branch_stats_);
    batch_update_buses(*dev_, mview_, views_, active, partial_dual, row);
    batch_update_zy(*dev_, mview_, params_.two_level, views_, active, partial_primal, partial_z,
                    row);

    next_active.clear();
    outer_slots.clear();
    rho_slots.clear();
    rho_factors.clear();
    beta_updates.clear();

    for (int j = 0; j < n; ++j) {
      const int s = active[static_cast<std::size_t>(j)];
      auto& ctrl = ctrl_[static_cast<std::size_t>(s)];
      auto& stats = stats_[static_cast<std::size_t>(s)];
      const auto& eff = eff_[static_cast<std::size_t>(s)];
      ++stats.inner_iterations;
      const double primal = collect_slot_max(partial_primal, j, row, lanes);
      const double dual = collect_slot_max(partial_dual, j, row, lanes);
      stats.primal_residual = primal;
      stats.dual_residual = dual;
      if (options.record_history) {
        stats.primal_history.push_back(primal);
        stats.dual_history.push_back(dual);
      }

      bool inner_done = false;
      bool inner_converged = false;
      if (primal <= ctrl.eps_primal && dual <= ctrl.eps_dual) {
        inner_done = true;
        inner_converged = true;
      } else {
        // Adaptive penalty (residual balancing), first outer iteration only
        // — identical schedule and budget to AdmmSolver::solve.
        if (params_.adaptive_rho && ctrl.outer == 0 && ctrl.inner > 0 &&
            ctrl.inner % params_.adaptive_rho_interval == 0) {
          double factor = 0.0;
          if (primal > params_.adaptive_rho_mu * dual) {
            factor = params_.adaptive_rho_tau;
          } else if (dual > params_.adaptive_rho_mu * primal) {
            factor = 1.0 / params_.adaptive_rho_tau;
          }
          if (factor != 0.0) {
            const double proposed = rho_scale_[static_cast<std::size_t>(s)] * factor;
            if (proposed <= params_.adaptive_rho_max_scale &&
                proposed >= 1.0 / params_.adaptive_rho_max_scale) {
              rho_scale_[static_cast<std::size_t>(s)] = proposed;
              rho_slots.push_back(s);
              rho_factors.push_back(factor);
              ++stats.rho_rescales;
            }
          }
        }
        if (ctrl.inner + 1 >= eff.max_inner_iterations) inner_done = true;
      }

      if (!inner_done) {
        ++ctrl.inner;
        next_active.push_back(s);
        continue;
      }

      if (!params_.two_level) {
        stats.converged = inner_converged;
        continue;
      }

      // Outer (augmented Lagrangian) transition for this scenario.
      const double z_norm = collect_slot_max(partial_z, j, row, lanes);
      stats.z_norm = z_norm;
      if (options.record_history) stats.z_history.push_back(z_norm);
      outer_slots.push_back(s);  // lambda update uses the pre-escalation beta
      log::debug("batch scenario ", s, " outer ", ctrl.outer + 1, ": |z|=", z_norm,
                 " primal=", primal, " dual=", dual,
                 " beta=", state_.beta[static_cast<std::size_t>(s)],
                 " inner_total=", stats.inner_iterations);
      if (z_norm <= eff.outer_tolerance && primal <= eff.primal_tolerance &&
          dual <= eff.dual_tolerance) {
        stats.converged = true;
        continue;
      }
      // Beta escalation happens on every non-converged outer iteration —
      // including the last one before the budget exhausts — exactly as in
      // the sequential loop, so chained children inherit the same beta.
      if (z_norm > params_.z_shrink * ctrl.prev_znorm) {
        beta_updates.emplace_back(
            s, std::min(state_.beta[static_cast<std::size_t>(s)] * params_.beta_factor,
                        params_.beta_max));
      }
      ctrl.prev_znorm = z_norm;
      if (ctrl.outer + 1 >= eff.max_outer_iterations) {
        continue;
      }
      ++ctrl.outer;
      ctrl.inner = 0;
      stats.outer_iterations = ctrl.outer + 1;
      schedule_inner_tolerance(s, ctrl);
      next_active.push_back(s);
    }

    if (!rho_slots.empty()) batch_scale_rho(*dev_, model_, state_, rho_slots, rho_factors);
    if (!outer_slots.empty()) {
      batch_update_outer_multiplier(*dev_, mview_, views_, outer_slots, params_.lambda_bound);
    }
    // Beta escalation applies after the multiplier update, exactly as in
    // the sequential outer loop.
    for (const auto& [s, beta] : beta_updates) set_beta(s, beta);

    active.swap(next_active);
  }
}

ScenarioReport BatchAdmmSolver::solve(const BatchSolveOptions& options) {
  WallTimer total;
  ScenarioReport report;
  const int S = num_scenarios();
  ctrl_.assign(static_cast<std::size_t>(S), Control{});
  rho_scale_.assign(static_cast<std::size_t>(S), 1.0);
  stats_.assign(static_cast<std::size_t>(S), admm::AdmmStats{});
  branch_stats_ = admm::BranchUpdateStats{};

  if (!options.initial_iterates.empty()) {
    require(static_cast<int>(options.initial_iterates.size()) == S,
            "BatchAdmmSolver::solve: initial_iterates must have one slot per scenario");
    for (int s = 0; s < S; ++s) {
      const auto* it = options.initial_iterates[static_cast<std::size_t>(s)];
      if (it == nullptr) continue;
      admm::require_matches(*it, model_, "BatchAdmmSolver::solve");
      require(scenarios_[static_cast<std::size_t>(s)].chain_from < 0,
              "BatchAdmmSolver::solve: a chained scenario cannot take an initial iterate");
    }
  }

  stage_initial_state(options, report);

  const auto transfers_before = device::transfer_stats();
  {
    device::LaunchStatsScope scope(*dev_, report.launch_stats);
    WallTimer solve_timer;
    for (const auto& wave : waves_) {
      WallTimer wave_timer;
      std::vector<ChainLink> links;
      std::vector<RampLink> ramps;
      for (const int s : wave) {
        const auto& sc = scenarios_[static_cast<std::size_t>(s)];
        if (sc.chain_from < 0) continue;
        links.push_back({s, sc.chain_from});
        if (sc.ramp_fraction > 0.0) ramps.push_back({s, sc.chain_from, sc.ramp_fraction});
      }
      if (!links.empty()) {
        batch_chain_state(*dev_, model_, state_, links);
        for (const auto& link : links) {
          // prepare_warm_start semantics plus inherited adaptive scaling.
          set_beta(link.dst,
                   std::max(state_.beta[static_cast<std::size_t>(link.src)], params_.beta0));
          rho_scale_[static_cast<std::size_t>(link.dst)] =
              rho_scale_[static_cast<std::size_t>(link.src)];
        }
      }
      if (!ramps.empty()) batch_apply_ramp(*dev_, model_, state_, ramps);

      run_fused(wave, options);

      const double wave_seconds = wave_timer.seconds();
      for (const int s : wave) stats_[static_cast<std::size_t>(s)].solve_seconds = wave_seconds;
    }
    report.solve_seconds = solve_timer.seconds();
  }
  const auto transfers_after = device::transfer_stats();
  report.transfers_during_iterations =
      (transfers_after.host_to_device - transfers_before.host_to_device) +
      (transfers_after.device_to_host - transfers_before.device_to_host);

  // ---- Evaluation (downloads happen here, after the solve loop) ----
  const auto w = state_.bus_w.to_host();
  const auto theta = state_.bus_theta.to_host();
  const auto pg = state_.gen_pg.to_host();
  const auto qg = state_.gen_qg.to_host();
  report.records.reserve(static_cast<std::size_t>(S));
  grid::Network eval_net = net_;  // one reusable copy; loads swapped per scenario
  for (int s = 0; s < S; ++s) {
    const auto& sc = scenarios_[static_cast<std::size_t>(s)];
    const auto& stats = stats_[static_cast<std::size_t>(s)];
    const auto sol = slice_solution(net_, w, theta, pg, qg, s);
    apply_scenario_loads(eval_net, sc);
    report.records.push_back(make_record(s, sc, stats, scenario_quality(eval_net, sc, sol)));
  }
  report.stats = stats_;
  report.branch = branch_stats_;
  report.total_seconds = total.seconds();
  return report;
}

grid::OpfSolution BatchAdmmSolver::solution(int s) const {
  require(s >= 0 && s < num_scenarios(), "BatchAdmmSolver::solution: scenario out of range");
  // Strided slice download: move only scenario s's data, not the batch.
  const auto nb = static_cast<std::size_t>(model_.num_buses);
  const auto ng = static_cast<std::size_t>(model_.num_gens);
  const auto su = static_cast<std::size_t>(s);
  std::vector<double> w(nb), theta(nb), pg(ng), qg(ng);
  state_.bus_w.download_slice(su * nb, w);
  state_.bus_theta.download_slice(su * nb, theta);
  state_.gen_pg.download_slice(su * ng, pg);
  state_.gen_qg.download_slice(su * ng, qg);
  return slice_solution(net_, w, theta, pg, qg, /*s=*/0);
}

admm::WarmStartIterate BatchAdmmSolver::export_iterate(int s) const {
  require(s >= 0 && s < num_scenarios(), "BatchAdmmSolver::export_iterate: scenario out of range");
  require(rho_scale_.size() == scenarios_.size(),
          "BatchAdmmSolver::export_iterate: valid only after solve()");
  const auto np = static_cast<std::size_t>(model_.num_pairs);
  const auto nb = static_cast<std::size_t>(model_.num_buses);
  const auto ng = static_cast<std::size_t>(model_.num_gens);
  const auto nl = static_cast<std::size_t>(model_.num_branches);
  const auto su = static_cast<std::size_t>(s);
  admm::WarmStartIterate it;
  it.u.resize(np);
  it.v.resize(np);
  it.z.resize(np);
  it.y.resize(np);
  it.lz.resize(np);
  it.bus_w.resize(nb);
  it.bus_theta.resize(nb);
  it.gen_pg.resize(ng);
  it.gen_qg.resize(ng);
  it.branch_x.resize(4 * nl);
  it.branch_s.resize(2 * nl);
  it.branch_lambda.resize(2 * nl);
  it.rho.resize(np);
  state_.u.download_slice(su * np, it.u);
  state_.v.download_slice(su * np, it.v);
  state_.z.download_slice(su * np, it.z);
  state_.y.download_slice(su * np, it.y);
  state_.lz.download_slice(su * np, it.lz);
  state_.bus_w.download_slice(su * nb, it.bus_w);
  state_.bus_theta.download_slice(su * nb, it.bus_theta);
  state_.gen_pg.download_slice(su * ng, it.gen_pg);
  state_.gen_qg.download_slice(su * ng, it.gen_qg);
  state_.branch_x.download_slice(su * 4 * nl, it.branch_x);
  state_.branch_s.download_slice(su * 2 * nl, it.branch_s);
  state_.branch_lambda.download_slice(su * 2 * nl, it.branch_lambda);
  state_.rho.download_slice(su * np, it.rho);
  it.beta = state_.beta[su];
  it.rho_scale = rho_scale_[su];
  return it;
}

std::vector<grid::OpfSolution> BatchAdmmSolver::solutions() const {
  const auto w = state_.bus_w.to_host();
  const auto theta = state_.bus_theta.to_host();
  const auto pg = state_.gen_pg.to_host();
  const auto qg = state_.gen_qg.to_host();
  std::vector<grid::OpfSolution> result;
  result.reserve(static_cast<std::size_t>(num_scenarios()));
  for (int s = 0; s < num_scenarios(); ++s) {
    result.push_back(slice_solution(net_, w, theta, pg, qg, s));
  }
  return result;
}

ScenarioReport solve_sequential(const ScenarioSet& set, const admm::AdmmParams& params,
                                device::Device* dev) {
  device::Device* device = dev != nullptr ? dev : &device::default_device();
  const auto& net = set.network();
  const int S = set.size();
  require(S > 0, "solve_sequential: scenario set is empty");

  WallTimer total;
  ScenarioReport report;
  report.records.reserve(static_cast<std::size_t>(S));
  report.stats.reserve(static_cast<std::size_t>(S));
  // A solver is retained only while unconstructed children still need it,
  // so tracking chains hold O(live parents) solver states, not O(S).
  std::vector<int> children_left(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    if (set[s].chain_from >= 0) ++children_left[static_cast<std::size_t>(set[s].chain_from)];
  }
  std::vector<std::unique_ptr<admm::AdmmSolver>> solvers(static_cast<std::size_t>(S));
  grid::Network eval_net = net;  // one reusable copy; loads swapped per scenario

  // Explicit snapshot rather than a function-scope LaunchStatsScope: the
  // scope's destructor would run after `return report` has already copied
  // the (then still zero) launch_stats when NRVO is not performed.
  const device::LaunchStats launches_before = device->stats();
  WallTimer solve_timer;
  for (int s = 0; s < S; ++s) {
    const auto& sc = set[s];
    std::unique_ptr<admm::AdmmSolver> solver;
    if (sc.outage_branch >= 0) {
      solver = std::make_unique<admm::AdmmSolver>(
          grid::network_without_branch(net, sc.outage_branch), params, device);
      solver->set_loads(sc.pd, sc.qd);
    } else if (sc.chain_from >= 0) {
      // Warm start from a copy of the parent's solver (full iterate kept).
      solver =
          std::make_unique<admm::AdmmSolver>(*solvers[static_cast<std::size_t>(sc.chain_from)]);
      const int ng = net.num_generators();
      std::vector<double> pmin(static_cast<std::size_t>(ng)), pmax(static_cast<std::size_t>(ng));
      const auto prev_pg = solver->solution().pg;
      for (int g = 0; g < ng; ++g) {
        const auto& gen = net.generators[static_cast<std::size_t>(g)];
        if (sc.ramp_fraction > 0.0) {
          const double ramp = sc.ramp_fraction * gen.pmax;
          pmin[static_cast<std::size_t>(g)] =
              std::max(gen.pmin, prev_pg[static_cast<std::size_t>(g)] - ramp);
          pmax[static_cast<std::size_t>(g)] =
              std::min(gen.pmax, prev_pg[static_cast<std::size_t>(g)] + ramp);
        } else {
          pmin[static_cast<std::size_t>(g)] = gen.pmin;
          pmax[static_cast<std::size_t>(g)] = gen.pmax;
        }
      }
      solver->set_generator_pg_bounds(pmin, pmax);
      solver->set_loads(sc.pd, sc.qd);
      solver->prepare_warm_start();
      const auto parent = static_cast<std::size_t>(sc.chain_from);
      if (--children_left[parent] == 0) solvers[parent].reset();
    } else {
      solver = std::make_unique<admm::AdmmSolver>(net, params, device);
      solver->set_loads(sc.pd, sc.qd);
    }
    // Heterogeneous termination knobs resolve against the batch-wide base
    // params — not a chained parent's possibly-overridden copy — exactly as
    // the batch engine does, so the assignment is unconditional.
    solver->params() = effective_params(params, sc.controls);

    auto stats = solver->solve();
    const auto sol = solver->solution();
    apply_scenario_loads(eval_net, sc);
    report.branch.tron_iterations += stats.branch.tron_iterations;
    report.branch.cg_iterations += stats.branch.cg_iterations;
    report.branch.auglag_iterations += stats.branch.auglag_iterations;
    report.branch.failures += stats.branch.failures;
    report.records.push_back(make_record(s, sc, stats, scenario_quality(eval_net, sc, sol)));
    report.stats.push_back(std::move(stats));
    if (children_left[static_cast<std::size_t>(s)] > 0) {
      solvers[static_cast<std::size_t>(s)] = std::move(solver);
    }
  }
  report.solve_seconds = solve_timer.seconds();
  report.launch_stats = device->stats() - launches_before;
  report.total_seconds = total.seconds();
  return report;
}

}  // namespace gridadmm::scenario
