// A Scenario is one ACOPF instance derived from a base case: a load vector
// plus optional topology (N-1 branch outage) and time-coupling (warm-start
// parent and generator ramp limits) annotations. Scenarios are plain data;
// ScenarioSet generates families of them and BatchAdmmSolver solves them.
#pragma once

#include <string>
#include <vector>

namespace gridadmm::scenario {

enum class ScenarioKind {
  kBase,            ///< the unmodified case
  kLoadScale,       ///< uniformly scaled loads
  kStochasticLoad,  ///< per-bus random load perturbations
  kContingency,     ///< N-1 branch outage at base load
  kTracking,        ///< one period of a time-coupled tracking sequence
};

const char* to_string(ScenarioKind kind);

/// Per-scenario convergence-control overrides, so one batch can mix
/// heterogeneous requests (e.g. a fast approximate screen next to an
/// accurate solve). Negative values inherit the batch-wide AdmmParams.
/// Only termination knobs are overridable: penalties and branch-subproblem
/// controls shape the shared ComponentModel and stay batch-wide.
struct ScenarioControls {
  double primal_tolerance = -1.0;  ///< final ||u - v + z||_inf target
  double dual_tolerance = -1.0;    ///< final dual residual target
  double outer_tolerance = -1.0;   ///< ||z||_inf target
  int max_inner_iterations = -1;   ///< per outer iteration
  int max_outer_iterations = -1;

  [[nodiscard]] bool any_set() const {
    return primal_tolerance >= 0.0 || dual_tolerance >= 0.0 || outer_tolerance >= 0.0 ||
           max_inner_iterations >= 0 || max_outer_iterations >= 0;
  }
};

struct Scenario {
  std::string name;
  ScenarioKind kind = ScenarioKind::kBase;

  /// Per-bus loads in per-unit (full vectors, same length as net.buses).
  std::vector<double> pd, qd;

  /// N-1 contingency: index of the dropped branch (-1 = full topology).
  /// Contingency scenarios cannot participate in warm-start chains.
  int outage_branch = -1;

  /// Time coupling: index of the scenario this one warm starts from
  /// (-1 = cold start / base fan-out). Must be an earlier index, and
  /// neither endpoint of a chain may carry a branch outage.
  int chain_from = -1;

  /// Ramp limit versus the parent's dispatch, as a fraction of each
  /// generator's Pmax (0 = unconstrained). Only meaningful with chain_from.
  double ramp_fraction = 0.0;

  /// Bookkeeping for reports: the uniform load multiplier where applicable.
  double load_scale = 1.0;

  /// Heterogeneous per-scenario termination overrides (default: inherit).
  ScenarioControls controls;
};

}  // namespace gridadmm::scenario
