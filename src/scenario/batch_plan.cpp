#include "scenario/batch_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gridadmm::scenario {

void pack_tile_groups(std::span<const int> slots, std::vector<TileGroup>& groups) {
  groups.clear();
  int current_tile = -1;
  int prev_slot = -1;
  for (std::size_t j = 0; j < slots.size(); ++j) {
    const int slot = slots[j];
    // The ascending precondition is what makes a full group's lane array
    // the identity (lane[l] == l), which the kernels' fast path relies on
    // when pairing lane indices with reduction columns — enforce it so a
    // reordered active list fails loudly instead of miswiring residuals.
    require(slot > prev_slot, "pack_tile_groups: slots must be strictly ascending");
    prev_slot = slot;
    const int tile = slot / admm::kTileWidth;
    if (tile != current_tile) {
      current_tile = tile;
      groups.emplace_back();
      groups.back().first_slot = tile * admm::kTileWidth;
    }
    TileGroup& group = groups.back();
    group.lane[static_cast<std::size_t>(group.nlanes)] = slot % admm::kTileWidth;
    group.column[static_cast<std::size_t>(group.nlanes)] = static_cast<int>(j);
    ++group.nlanes;
  }
}

BatchPlan BatchPlan::create(std::span<const Scenario> scenarios,
                            const std::vector<std::vector<int>>& waves, int num_shards,
                            bool ping_pong) {
  require(num_shards > 0, "BatchPlan: num_shards must be positive");
  const int S = static_cast<int>(scenarios.size());

  BatchPlan plan;
  plan.num_shards = num_shards;
  plan.ping_pong = ping_pong;
  plan.shard_of.assign(static_cast<std::size_t>(S), -1);
  plan.slot_of.assign(static_cast<std::size_t>(S), -1);
  plan.wave_of.assign(static_cast<std::size_t>(S), -1);
  plan.shard_scenarios.assign(static_cast<std::size_t>(num_shards), {});
  plan.shard_capacity.assign(static_cast<std::size_t>(num_shards), 0);

  // Shard assignment: roots round-robin in scenario order, children follow
  // their parent (chaining is an on-device copy within one shard's state).
  int next_root_shard = 0;
  for (int s = 0; s < S; ++s) {
    const int parent = scenarios[static_cast<std::size_t>(s)].chain_from;
    int shard = 0;
    if (parent < 0) {
      shard = next_root_shard;
      next_root_shard = (next_root_shard + 1) % num_shards;
    } else {
      require(parent < s, "BatchPlan: chain_from must reference an earlier scenario");
      shard = plan.shard_of[static_cast<std::size_t>(parent)];
    }
    plan.shard_of[static_cast<std::size_t>(s)] = shard;
    plan.shard_scenarios[static_cast<std::size_t>(shard)].push_back(s);
  }

  plan.wave_shards.assign(waves.size(), {});
  for (std::size_t d = 0; d < waves.size(); ++d) {
    auto& shards = plan.wave_shards[d];
    shards.assign(static_cast<std::size_t>(num_shards), {});
    for (const int s : waves[d]) {
      plan.wave_of[static_cast<std::size_t>(s)] = static_cast<int>(d);
      shards[static_cast<std::size_t>(plan.shard_of[static_cast<std::size_t>(s)])].push_back(s);
    }
  }

  if (ping_pong) {
    // Per-wave slots: scenario s occupies slot rank-within-(wave, shard) of
    // buffer wave_of[s] % 2; capacity is the shard's largest wave.
    for (const auto& shards : plan.wave_shards) {
      for (int shard = 0; shard < num_shards; ++shard) {
        const auto& group = shards[static_cast<std::size_t>(shard)];
        for (std::size_t j = 0; j < group.size(); ++j) {
          plan.slot_of[static_cast<std::size_t>(group[j])] = static_cast<int>(j);
        }
        plan.shard_capacity[static_cast<std::size_t>(shard)] =
            std::max(plan.shard_capacity[static_cast<std::size_t>(shard)],
                     static_cast<int>(group.size()));
      }
    }
  } else {
    // Persistent slots: rank within the shard, in scenario order.
    for (int shard = 0; shard < num_shards; ++shard) {
      const auto& owned = plan.shard_scenarios[static_cast<std::size_t>(shard)];
      for (std::size_t j = 0; j < owned.size(); ++j) {
        plan.slot_of[static_cast<std::size_t>(owned[j])] = static_cast<int>(j);
      }
      plan.shard_capacity[static_cast<std::size_t>(shard)] = static_cast<int>(owned.size());
    }
  }

  return plan;
}

}  // namespace gridadmm::scenario
