#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridadmm::linalg {

void DenseMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  require(static_cast<int>(x.size()) == cols_ && static_cast<int>(y.size()) == rows_,
          "DenseMatrix::matvec: size mismatch");
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + static_cast<std::size_t>(r) * cols_;
    for (int c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

bool cholesky_factorize(DenseMatrix& a, int n) {
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (int k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }
  return true;
}

void cholesky_solve(const DenseMatrix& l, int n, std::span<double> x) {
  // Forward substitution L w = b.
  for (int i = 0; i < n; ++i) {
    double v = x[i];
    for (int k = 0; k < i; ++k) v -= l(i, k) * x[k];
    x[i] = v / l(i, i);
  }
  // Backward substitution L^T x = w.
  for (int i = n - 1; i >= 0; --i) {
    double v = x[i];
    for (int k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
}

double shifted_cholesky(DenseMatrix& a, int n, double initial_shift) {
  // Keep a copy so failed attempts can be retried with a larger shift.
  DenseMatrix saved = a;
  double max_diag = 0.0;
  for (int i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(saved(i, i)));
  double shift = initial_shift;
  for (int attempt = 0; attempt < 60; ++attempt) {
    a = saved;
    for (int i = 0; i < n; ++i) a(i, i) += shift;
    if (cholesky_factorize(a, n)) return shift;
    shift = shift == 0.0 ? std::max(1e-10, 1e-10 * max_diag) : shift * 4.0;
  }
  throw NumericalError("shifted_cholesky: could not make matrix positive definite");
}

double dot(std::span<const double> x, std::span<const double> y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_inf(std::span<const double> x) {
  double acc = 0.0;
  for (const double v : x) acc = std::max(acc, std::abs(v));
  return acc;
}

}  // namespace gridadmm::linalg
