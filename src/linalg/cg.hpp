// Generic preconditioned conjugate gradient for symmetric positive definite
// operators. Used by tests and by the DC power flow in the synthetic grid
// generator; the TRON solver carries its own trust-region CG.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace gridadmm::linalg {

struct CgResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
};

struct CgOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< relative residual ||r|| / ||b||
};

/// Solves A x = b where `apply` computes y = A x. `precondition` computes
/// y = M^{-1} x (pass identity for unpreconditioned CG). `x` holds the
/// initial guess on entry and the solution on exit.
CgResult conjugate_gradient(const std::function<void(std::span<const double>, std::span<double>)>& apply,
                            const std::function<void(std::span<const double>, std::span<double>)>& precondition,
                            std::span<const double> b, std::span<double> x, const CgOptions& options = {});

}  // namespace gridadmm::linalg
