// Sparse LDL^T factorization of symmetric (possibly indefinite) matrices
// with 1x1 pivots, elimination-tree based symbolic analysis and an
// up-looking numeric phase (Davis-style). Combined with the diagonal
// regularization loop of the interior-point solver this plays the role MA57
// plays for Ipopt in the paper's baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/ordering.hpp"
#include "linalg/sparse.hpp"

namespace gridadmm::linalg {

/// Inertia of the factored matrix (counts of the signs of D).
struct Inertia {
  int positive = 0;
  int negative = 0;
  int zero = 0;
};

/// Solves A x = b for symmetric A supplied as lower-triangle triplets.
/// Usage: analyze(pattern) once, then factorize(values)/solve(b) repeatedly
/// with the same pattern (the IPM refills values every iteration).
class SymmetricSolver {
 public:
  /// Symbolic analysis. `pattern` holds lower-triangle entries (row >= col);
  /// duplicate coordinates are allowed and later summed by factorize().
  void analyze(int n, std::span<const Triplet> pattern,
               OrderingMethod method = OrderingMethod::kRcm);

  /// Numeric factorization of A + diag(reg). `values[k]` corresponds to
  /// pattern[k] from analyze(); `diag_reg` (size n, natural order) may be
  /// empty for no regularization. Returns false on a (near-)zero pivot.
  bool factorize(std::span<const double> values, std::span<const double> diag_reg = {});

  /// Solves in place using the most recent successful factorization.
  void solve(std::span<double> b) const;

  [[nodiscard]] Inertia inertia() const;
  [[nodiscard]] int dim() const { return n_; }
  [[nodiscard]] std::int64_t factor_nnz() const { return static_cast<std::int64_t>(li_.size()); }

  /// Absolute threshold below which a pivot counts as zero. Deliberately
  /// tiny: this factorization does not pivot, so near-singular pivots are
  /// reported through inertia() and handled by the caller's regularization.
  double pivot_tolerance = 1e-30;

 private:
  int n_ = 0;
  std::vector<int> perm_;    // new -> old
  std::vector<int> iperm_;   // old -> new
  // Permuted upper-triangle CSC pattern of A.
  std::vector<int> up_colptr_, up_rowind_;
  std::vector<int> entry_slot_;  // pattern index -> slot in permuted upper values
  std::vector<int> diag_slot_;   // permuted column -> slot of its diagonal entry (-1 if absent)
  // Elimination tree and column counts.
  std::vector<int> parent_, lnz_;
  // Factor storage (L by columns) and D.
  std::vector<int> lp_, li_;
  std::vector<double> lx_, d_;
  // Scratch reused across factorizations.
  mutable std::vector<double> work_;
  std::vector<double> up_values_;
  std::vector<double> y_;
  std::vector<int> flag_, pattern_stack_, lnz_cursor_;
};

}  // namespace gridadmm::linalg
