// Fill-reducing orderings for symmetric sparse factorization.
#pragma once

#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace gridadmm::linalg {

enum class OrderingMethod {
  kNatural,  ///< identity permutation
  kRcm,      ///< reverse Cuthill-McKee (bandwidth reduction)
  kMinDegree ///< greedy minimum degree
};

/// Computes a permutation for a symmetric matrix whose off-diagonal pattern
/// is given as (row, col) pairs (either triangle; duplicates fine).
/// Returns perm with perm[new_index] = old_index.
std::vector<int> compute_ordering(int n, std::span<const Triplet> pattern, OrderingMethod method);

/// Inverts a permutation: returns iperm with iperm[perm[i]] = i.
std::vector<int> invert_permutation(std::span<const int> perm);

}  // namespace gridadmm::linalg
