// Compressed sparse column matrices: the storage format used by the KKT
// systems of the interior-point baseline and by the DC power flow inside the
// synthetic grid generator.
#pragma once

#include <span>
#include <vector>

namespace gridadmm::linalg {

/// One coordinate-format entry.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Immutable-shape CSC matrix. Values may be refilled in place for repeated
/// factorizations with identical sparsity (the IPM hot loop).
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(int rows, int cols, std::vector<int> colptr, std::vector<int> rowind,
               std::vector<double> values);

  /// Builds from triplets, summing duplicates; entries are sorted by column
  /// then row.
  static SparseMatrix from_triplets(int rows, int cols, std::span<const Triplet> entries);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int nnz() const { return static_cast<int>(rowind_.size()); }

  [[nodiscard]] std::span<const int> colptr() const { return colptr_; }
  [[nodiscard]] std::span<const int> rowind() const { return rowind_; }
  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::span<double> values() { return values_; }

  /// y = A x.
  void matvec(std::span<const double> x, std::span<double> y) const;
  /// y = A^T x.
  void matvec_transpose(std::span<const double> x, std::span<double> y) const;

  [[nodiscard]] SparseMatrix transpose() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> colptr_;
  std::vector<int> rowind_;
  std::vector<double> values_;
};

}  // namespace gridadmm::linalg
