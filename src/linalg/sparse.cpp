#include "linalg/sparse.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace gridadmm::linalg {

SparseMatrix::SparseMatrix(int rows, int cols, std::vector<int> colptr, std::vector<int> rowind,
                           std::vector<double> values)
    : rows_(rows), cols_(cols), colptr_(std::move(colptr)), rowind_(std::move(rowind)),
      values_(std::move(values)) {
  require(static_cast<int>(colptr_.size()) == cols_ + 1, "SparseMatrix: bad colptr length");
  require(rowind_.size() == values_.size(), "SparseMatrix: rowind/values mismatch");
}

SparseMatrix SparseMatrix::from_triplets(int rows, int cols, std::span<const Triplet> entries) {
  for (const auto& t : entries) {
    require(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
            "SparseMatrix::from_triplets: entry out of range");
  }
  // Count entries per column, then bucket and sort rows within each column.
  std::vector<int> count(static_cast<std::size_t>(cols) + 1, 0);
  for (const auto& t : entries) ++count[static_cast<std::size_t>(t.col) + 1];
  std::partial_sum(count.begin(), count.end(), count.begin());
  std::vector<int> rowind(entries.size());
  std::vector<double> values(entries.size());
  std::vector<int> cursor(count.begin(), count.end() - 1);
  for (const auto& t : entries) {
    const int slot = cursor[t.col]++;
    rowind[slot] = t.row;
    values[slot] = t.value;
  }
  // Sort within columns and merge duplicates.
  std::vector<int> out_colptr(static_cast<std::size_t>(cols) + 1, 0);
  std::vector<int> out_rowind;
  std::vector<double> out_values;
  out_rowind.reserve(entries.size());
  out_values.reserve(entries.size());
  std::vector<int> order;
  for (int c = 0; c < cols; ++c) {
    const int begin = count[c];
    const int end = count[static_cast<std::size_t>(c) + 1];
    order.resize(static_cast<std::size_t>(end - begin));
    std::iota(order.begin(), order.end(), begin);
    std::sort(order.begin(), order.end(), [&](int a, int b) { return rowind[a] < rowind[b]; });
    for (const int idx : order) {
      if (!out_rowind.empty() && out_colptr[static_cast<std::size_t>(c) + 1] > out_colptr[c] &&
          out_rowind.back() == rowind[idx]) {
        out_values.back() += values[idx];
      } else {
        out_rowind.push_back(rowind[idx]);
        out_values.push_back(values[idx]);
        ++out_colptr[static_cast<std::size_t>(c) + 1];
      }
    }
  }
  for (int c = 0; c < cols; ++c) out_colptr[static_cast<std::size_t>(c) + 1] += out_colptr[c];
  return SparseMatrix(rows, cols, std::move(out_colptr), std::move(out_rowind), std::move(out_values));
}

void SparseMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  require(static_cast<int>(x.size()) == cols_ && static_cast<int>(y.size()) == rows_,
          "SparseMatrix::matvec: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (int c = 0; c < cols_; ++c) {
    const double xc = x[c];
    if (xc == 0.0) continue;
    for (int k = colptr_[c]; k < colptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      y[rowind_[k]] += values_[k] * xc;
    }
  }
}

void SparseMatrix::matvec_transpose(std::span<const double> x, std::span<double> y) const {
  require(static_cast<int>(x.size()) == rows_ && static_cast<int>(y.size()) == cols_,
          "SparseMatrix::matvec_transpose: size mismatch");
  for (int c = 0; c < cols_; ++c) {
    double acc = 0.0;
    for (int k = colptr_[c]; k < colptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      acc += values_[k] * x[rowind_[k]];
    }
    y[c] = acc;
  }
}

SparseMatrix SparseMatrix::transpose() const {
  std::vector<int> colptr(static_cast<std::size_t>(rows_) + 1, 0);
  for (const int r : rowind_) ++colptr[static_cast<std::size_t>(r) + 1];
  std::partial_sum(colptr.begin(), colptr.end(), colptr.begin());
  std::vector<int> rowind(rowind_.size());
  std::vector<double> values(values_.size());
  std::vector<int> cursor(colptr.begin(), colptr.end() - 1);
  for (int c = 0; c < cols_; ++c) {
    for (int k = colptr_[c]; k < colptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const int slot = cursor[rowind_[k]]++;
      rowind[slot] = c;
      values[slot] = values_[k];
    }
  }
  return SparseMatrix(cols_, rows_, std::move(colptr), std::move(rowind), std::move(values));
}

}  // namespace gridadmm::linalg
