#include "linalg/ordering.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace gridadmm::linalg {

namespace {

/// Adjacency lists from off-diagonal entries (symmetrized, deduplicated).
std::vector<std::vector<int>> build_adjacency(int n, std::span<const Triplet> pattern) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& t : pattern) {
    if (t.row == t.col) continue;
    adj[t.row].push_back(t.col);
    adj[t.col].push_back(t.row);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

/// BFS from `start`; returns nodes level by level and the last level.
std::vector<int> bfs_order(const std::vector<std::vector<int>>& adj, int start,
                           std::vector<int>& level, std::vector<char>& visited) {
  std::vector<int> order;
  order.push_back(start);
  visited[start] = 1;
  level[start] = 0;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int u = order[head];
    for (const int v : adj[u]) {
      if (!visited[v]) {
        visited[v] = 1;
        level[v] = level[u] + 1;
        order.push_back(v);
      }
    }
  }
  return order;
}

std::vector<int> rcm_ordering(int n, const std::vector<std::vector<int>>& adj) {
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(n));
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  std::vector<int> level(static_cast<std::size_t>(n), 0);

  for (int seed = 0; seed < n; ++seed) {
    if (done[seed]) continue;
    // Pseudo-peripheral node: BFS twice, restart from a deepest min-degree node.
    std::vector<char> visited = done;
    int start = seed;
    auto order0 = bfs_order(adj, start, level, visited);
    int deepest = order0.back();
    for (const int u : order0) {
      if (level[u] > level[deepest] ||
          (level[u] == level[deepest] && adj[u].size() < adj[deepest].size())) {
        deepest = u;
      }
    }
    start = deepest;

    // Cuthill-McKee: BFS from `start`, visiting neighbours by increasing degree.
    std::vector<int> component;
    component.push_back(start);
    done[start] = 1;
    std::vector<int> scratch;
    for (std::size_t head = 0; head < component.size(); ++head) {
      const int u = component[head];
      scratch.clear();
      for (const int v : adj[u])
        if (!done[v]) scratch.push_back(v);
      std::sort(scratch.begin(), scratch.end(),
                [&](int a, int b) { return adj[a].size() < adj[b].size(); });
      for (const int v : scratch) {
        done[v] = 1;
        component.push_back(v);
      }
    }
    // Reverse Cuthill-McKee.
    std::reverse(component.begin(), component.end());
    perm.insert(perm.end(), component.begin(), component.end());
  }
  require(static_cast<int>(perm.size()) == n, "rcm_ordering: permutation incomplete");
  return perm;
}

/// Greedy minimum-degree on the explicit elimination graph. Two standard
/// accelerations keep it out of quadratic territory on KKT systems:
/// a membership bitmap makes clique merging linear in the lists touched,
/// and once the remaining subgraph is quasi-dense the rest of the ordering
/// stops mattering (those factor columns are dense either way), so the tail
/// is appended in arbitrary order (AMD's "dense node" treatment).
std::vector<int> min_degree_ordering(int n, std::vector<std::vector<int>> adj) {
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(n));
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  using Entry = std::pair<int, int>;  // (degree, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < n; ++i) heap.emplace(static_cast<int>(adj[i].size()), i);

  std::vector<char> member(static_cast<std::size_t>(n), 0);
  int remaining = n;
  while (!heap.empty()) {
    const auto [deg, u] = heap.top();
    heap.pop();
    if (eliminated[u]) continue;
    if (deg != static_cast<int>(adj[u].size())) {
      heap.emplace(static_cast<int>(adj[u].size()), u);  // stale entry, reinsert
      continue;
    }
    // Dense-tail cutoff: the minimum degree is a large fraction of the
    // remaining graph, so the Schur complement is effectively dense.
    const int dense_threshold =
        std::max(64, static_cast<int>(10.0 * std::sqrt(static_cast<double>(n))));
    if (remaining <= 16 || deg >= std::min(remaining, dense_threshold)) {
      for (int v = 0; v < n; ++v) {
        if (!eliminated[v]) perm.push_back(v);
      }
      break;
    }
    eliminated[u] = 1;
    --remaining;
    perm.push_back(u);
    // Form the clique of u's uneliminated neighbours.
    std::vector<int> clique;
    for (const int v : adj[u])
      if (!eliminated[v]) clique.push_back(v);
    for (const int v : clique) member[v] = 1;
    for (const int v : clique) {
      auto& list = adj[v];
      // Drop u and eliminated nodes; note which clique members are present.
      member[v] = 0;  // so v does not add itself
      std::size_t out = 0;
      for (const int w : list) {
        if (w == u || eliminated[w]) continue;
        list[out++] = w;
        if (member[w]) member[w] = 2;  // already adjacent
      }
      list.resize(out);
      for (const int w : clique) {
        if (member[w] == 1) list.push_back(w);
        if (member[w] == 2) member[w] = 1;  // reset for the next v
      }
      member[v] = 1;
      heap.emplace(static_cast<int>(list.size()), v);
    }
    for (const int v : clique) member[v] = 0;
    adj[u].clear();
    adj[u].shrink_to_fit();
  }
  require(static_cast<int>(perm.size()) == n, "min_degree_ordering: incomplete permutation");
  return perm;
}

}  // namespace

std::vector<int> compute_ordering(int n, std::span<const Triplet> pattern, OrderingMethod method) {
  if (method == OrderingMethod::kNatural || n == 0) {
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    return perm;
  }
  auto adj = build_adjacency(n, pattern);
  if (method == OrderingMethod::kRcm) return rcm_ordering(n, adj);
  return min_degree_ordering(n, std::move(adj));
}

std::vector<int> invert_permutation(std::span<const int> perm) {
  std::vector<int> iperm(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) iperm[perm[i]] = static_cast<int>(i);
  return iperm;
}

}  // namespace gridadmm::linalg
