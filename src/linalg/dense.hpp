// Small dense linear algebra used by the TRON subproblem solver and the
// closed-form ADMM kernels. Matrices here are tiny (branch subproblems have
// 4-6 variables), so everything is simple row-major storage with O(n^3)
// factorizations and no blocking.
#pragma once

#include <span>
#include <vector>

namespace gridadmm::linalg {

/// Row-major dense matrix with value semantics.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols) : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, 0.0) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  double& operator()(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  double operator()(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }
  void resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows) * cols, 0.0);
  }

  /// y = A x  (sizes must agree).
  void matvec(std::span<const double> x, std::span<double> y) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// In-place Cholesky A = L L^T of the leading n x n block; only the lower
/// triangle of `a` is referenced/written. Returns false if A is not
/// (numerically) positive definite.
bool cholesky_factorize(DenseMatrix& a, int n);

/// Solves L L^T x = b given the factor from cholesky_factorize.
void cholesky_solve(const DenseMatrix& l, int n, std::span<double> x);

/// Cholesky with automatic diagonal shift: factors A + shift*I, growing
/// `shift` geometrically until the factorization succeeds. Returns the shift
/// used. Mirrors the behaviour of the Lin-More ICF preconditioner for the
/// tiny dense systems that arise in branch subproblems.
double shifted_cholesky(DenseMatrix& a, int n, double initial_shift = 0.0);

// BLAS-1 helpers over spans.
double dot(std::span<const double> x, std::span<const double> y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);  // y += alpha x
void scal(double alpha, std::span<double> x);
double norm2(std::span<const double> x);
double norm_inf(std::span<const double> x);

}  // namespace gridadmm::linalg
