#include "linalg/cg.hpp"

#include <cmath>

#include "linalg/dense.hpp"

namespace gridadmm::linalg {

CgResult conjugate_gradient(const std::function<void(std::span<const double>, std::span<double>)>& apply,
                            const std::function<void(std::span<const double>, std::span<double>)>& precondition,
                            std::span<const double> b, std::span<double> x, const CgOptions& options) {
  const std::size_t n = b.size();
  std::vector<double> r(n), z(n), p(n), ap(n);

  apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  precondition(r, z);
  p.assign(z.begin(), z.end());
  double rz = dot(r, z);
  const double bnorm = norm2(b);
  const double target = options.tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  CgResult result;
  for (int it = 0; it < options.max_iterations; ++it) {
    result.residual_norm = norm2(r);
    if (result.residual_norm <= target) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    apply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0 || !std::isfinite(pap)) break;  // not SPD; bail out
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    precondition(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    result.iterations = it + 1;
  }
  result.residual_norm = norm2(r);
  result.converged = result.residual_norm <= target;
  return result;
}

}  // namespace gridadmm::linalg
