// Fixed-dimension dense linear algebra for the branch-subproblem fast path.
//
// The branch TRON solves are 4-6 variables; at that size the generic
// DenseMatrix machinery (heap storage, runtime strides) costs more than the
// arithmetic. SmallMatrix<N> is the stack-array analogue, and the
// factorization/solve helpers below are exact transcriptions of the
// DenseMatrix versions in dense.cpp — same loop order, same expressions —
// so a solver built on them produces bit-identical iterates to one built on
// DenseMatrix (the property tests/test_tron.cpp asserts). Only the leading
// n x n block (n <= N) participates, mirroring how the TRON subspace CG
// factors the free-set block of a fixed-capacity matrix.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"

namespace gridadmm::linalg {

/// Row-major N x N matrix with stack storage and value semantics.
template <int N>
struct SmallMatrix {
  double data[static_cast<std::size_t>(N) * N] = {};

  double& operator()(int r, int c) { return data[static_cast<std::size_t>(r) * N + c]; }
  double operator()(int r, int c) const { return data[static_cast<std::size_t>(r) * N + c]; }

  void set_zero() { std::fill(std::begin(data), std::end(data), 0.0); }
};

/// In-place Cholesky A = L L^T of the leading n x n block; only the lower
/// triangle is referenced/written. Same operation order as the DenseMatrix
/// cholesky_factorize. Returns false if A is not (numerically) positive
/// definite.
template <int N>
bool cholesky_factorize(SmallMatrix<N>& a, int n) {
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (int k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }
  return true;
}

/// Solves L L^T x = b given the factor from cholesky_factorize.
template <int N>
void cholesky_solve(const SmallMatrix<N>& l, int n, std::span<double> x) {
  // Forward substitution L w = b.
  for (int i = 0; i < n; ++i) {
    double v = x[i];
    for (int k = 0; k < i; ++k) v -= l(i, k) * x[k];
    x[i] = v / l(i, i);
  }
  // Backward substitution L^T x = w.
  for (int i = n - 1; i >= 0; --i) {
    double v = x[i];
    for (int k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
}

/// Cholesky with automatic diagonal shift (see the DenseMatrix overload):
/// factors A + shift*I, growing `shift` geometrically until the
/// factorization succeeds. Returns the shift used.
template <int N>
double shifted_cholesky(SmallMatrix<N>& a, int n, double initial_shift = 0.0) {
  // Keep a copy so failed attempts can be retried with a larger shift.
  SmallMatrix<N> saved = a;
  double max_diag = 0.0;
  for (int i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(saved(i, i)));
  double shift = initial_shift;
  for (int attempt = 0; attempt < 60; ++attempt) {
    a = saved;
    for (int i = 0; i < n; ++i) a(i, i) += shift;
    if (cholesky_factorize(a, n)) return shift;
    shift = shift == 0.0 ? std::max(1e-10, 1e-10 * max_diag) : shift * 4.0;
  }
  throw NumericalError("shifted_cholesky: could not make matrix positive definite");
}

}  // namespace gridadmm::linalg
