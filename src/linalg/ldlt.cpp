#include "linalg/ldlt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace gridadmm::linalg {

void SymmetricSolver::analyze(int n, std::span<const Triplet> pattern, OrderingMethod method) {
  n_ = n;
  perm_ = compute_ordering(n, pattern, method);
  iperm_ = invert_permutation(perm_);

  // Unique permuted upper-triangle coordinates, with a slot per input entry.
  struct Coord {
    int row, col, input;
  };
  std::vector<Coord> coords;
  coords.reserve(pattern.size());
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    const auto& t = pattern[k];
    require(t.row >= t.col, "SymmetricSolver: pattern must be lower triangular (row >= col)");
    int pr = iperm_[t.row];
    int pc = iperm_[t.col];
    if (pr > pc) std::swap(pr, pc);  // store upper triangle: row <= col
    coords.push_back({pr, pc, static_cast<int>(k)});
  }
  std::sort(coords.begin(), coords.end(), [](const Coord& a, const Coord& b) {
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  });

  up_colptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  up_rowind_.clear();
  entry_slot_.assign(pattern.size(), -1);
  int prev_row = -1, prev_col = -1;
  for (const auto& c : coords) {
    if (c.row != prev_row || c.col != prev_col) {
      up_rowind_.push_back(c.row);
      ++up_colptr_[static_cast<std::size_t>(c.col) + 1];
      prev_row = c.row;
      prev_col = c.col;
    }
    entry_slot_[c.input] = static_cast<int>(up_rowind_.size()) - 1;
  }
  std::partial_sum(up_colptr_.begin(), up_colptr_.end(), up_colptr_.begin());

  diag_slot_.assign(static_cast<std::size_t>(n), -1);
  for (int col = 0; col < n; ++col) {
    for (int p = up_colptr_[col]; p < up_colptr_[static_cast<std::size_t>(col) + 1]; ++p) {
      if (up_rowind_[p] == col) diag_slot_[col] = p;
    }
  }

  // Symbolic: elimination tree and per-column nonzero counts of L.
  parent_.assign(static_cast<std::size_t>(n), -1);
  lnz_.assign(static_cast<std::size_t>(n), 0);
  flag_.assign(static_cast<std::size_t>(n), -1);
  for (int k = 0; k < n; ++k) {
    parent_[k] = -1;
    flag_[k] = k;
    for (int p = up_colptr_[k]; p < up_colptr_[static_cast<std::size_t>(k) + 1]; ++p) {
      int i = up_rowind_[p];
      while (i != k && flag_[i] != k) {
        if (parent_[i] == -1) parent_[i] = k;
        ++lnz_[i];
        flag_[i] = k;
        i = parent_[i];
      }
    }
  }
  lp_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int k = 0; k < n; ++k) lp_[static_cast<std::size_t>(k) + 1] = lp_[k] + lnz_[k];
  li_.assign(static_cast<std::size_t>(lp_[n]), 0);
  lx_.assign(static_cast<std::size_t>(lp_[n]), 0.0);
  d_.assign(static_cast<std::size_t>(n), 0.0);

  up_values_.assign(up_rowind_.size(), 0.0);
  y_.assign(static_cast<std::size_t>(n), 0.0);
  pattern_stack_.assign(static_cast<std::size_t>(n), 0);
  lnz_cursor_.assign(static_cast<std::size_t>(n), 0);
  work_.assign(static_cast<std::size_t>(n), 0.0);
}

bool SymmetricSolver::factorize(std::span<const double> values, std::span<const double> diag_reg) {
  require(static_cast<int>(values.size()) == static_cast<int>(entry_slot_.size()),
          "SymmetricSolver::factorize: values size mismatch");
  const int n = n_;
  std::fill(up_values_.begin(), up_values_.end(), 0.0);
  for (std::size_t k = 0; k < values.size(); ++k) up_values_[entry_slot_[k]] += values[k];
  if (!diag_reg.empty()) {
    require(static_cast<int>(diag_reg.size()) == n, "SymmetricSolver: diag_reg size mismatch");
    for (int old = 0; old < n; ++old) {
      if (diag_reg[old] == 0.0) continue;
      const int col = iperm_[old];
      const int slot = diag_slot_[col];
      require(slot >= 0, "SymmetricSolver: regularized diagonal missing from pattern");
      up_values_[slot] += diag_reg[old];
    }
  }

  // Up-looking LDL^T (Davis, "Direct Methods for Sparse Linear Systems").
  std::fill(flag_.begin(), flag_.end(), -1);
  std::fill(lnz_cursor_.begin(), lnz_cursor_.end(), 0);
  std::fill(y_.begin(), y_.end(), 0.0);
  bool ok = true;
  for (int k = 0; k < n; ++k) {
    int top = n;
    flag_[k] = k;
    for (int p = up_colptr_[k]; p < up_colptr_[static_cast<std::size_t>(k) + 1]; ++p) {
      int i = up_rowind_[p];
      if (i > k) continue;
      y_[i] += up_values_[p];
      int len = 0;
      while (flag_[i] != k) {
        pattern_stack_[len++] = i;
        flag_[i] = k;
        i = parent_[i];
      }
      while (len > 0) pattern_stack_[--top] = pattern_stack_[--len];
    }
    double dk = y_[k];
    y_[k] = 0.0;
    for (; top < n; ++top) {
      const int i = pattern_stack_[top];
      const double yi = y_[i];
      y_[i] = 0.0;
      const int pend = lp_[i] + lnz_cursor_[i];
      for (int p = lp_[i]; p < pend; ++p) y_[li_[p]] -= lx_[p] * yi;
      const double lki = yi / d_[i];
      dk -= lki * yi;
      li_[pend] = k;
      lx_[pend] = lki;
      ++lnz_cursor_[i];
    }
    d_[k] = dk;
    if (!std::isfinite(dk)) ok = false;
  }
  // Only (numerically) exact zeros make the factorization unusable; badly
  // scaled-but-finite pivots are the caller's concern (the IPM adds dual
  // regularization when the inertia reports zero pivots).
  for (int k = 0; k < n; ++k) {
    if (std::abs(d_[k]) <= pivot_tolerance) ok = false;
  }
  return ok;
}

void SymmetricSolver::solve(std::span<double> b) const {
  require(static_cast<int>(b.size()) == n_, "SymmetricSolver::solve: size mismatch");
  const int n = n_;
  auto& x = work_;
  for (int i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // L y = b (column-oriented forward substitution).
  for (int j = 0; j < n; ++j) {
    const double xj = x[j];
    for (int p = lp_[j]; p < lp_[static_cast<std::size_t>(j) + 1]; ++p) x[li_[p]] -= lx_[p] * xj;
  }
  for (int j = 0; j < n; ++j) x[j] /= d_[j];
  // L^T x = y (column-oriented backward substitution).
  for (int j = n - 1; j >= 0; --j) {
    double xj = x[j];
    for (int p = lp_[j]; p < lp_[static_cast<std::size_t>(j) + 1]; ++p) xj -= lx_[p] * x[li_[p]];
    x[j] = xj;
  }
  for (int i = 0; i < n; ++i) b[perm_[i]] = x[i];
}

Inertia SymmetricSolver::inertia() const {
  Inertia result;
  for (const double dk : d_) {
    if (dk > pivot_tolerance) {
      ++result.positive;
    } else if (dk < -pivot_tolerance) {
      ++result.negative;
    } else {
      ++result.zero;
    }
  }
  return result;
}

}  // namespace gridadmm::linalg
