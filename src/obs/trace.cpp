#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gridadmm::obs {

namespace {

std::atomic<std::uint64_t> next_thread_label{0};
std::atomic<std::uint64_t> buffers_created_count{0};

/// The per-thread label is assigned on first use and never changes; it is
/// deliberately independent of the tracer so the log prefix can use it
/// without creating trace state.
std::uint64_t& thread_label_storage() {
  thread_local std::uint64_t label = next_thread_label.fetch_add(1, std::memory_order_relaxed);
  return label;
}

/// Thread name note: plain static pointer set by set_thread_name before or
/// after the thread's buffer exists; the buffer (or flush) picks it up.
const char*& thread_name_storage() {
  thread_local const char* name = nullptr;
  return name;
}

std::uint64_t epoch_ns() {
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return epoch;
}

void append_args(std::string& out, const TraceEvent& e) {
  if (e.arg1_name == nullptr && e.arg2_name == nullptr) return;
  out += ", \"args\": {";
  bool first = true;
  if (e.arg1_name != nullptr) {
    out += "\"";
    out += e.arg1_name;
    out += "\": " + std::to_string(e.arg1);
    first = false;
  }
  if (e.arg2_name != nullptr) {
    if (!first) out += ", ";
    out += "\"";
    out += e.arg2_name;
    out += "\": " + std::to_string(e.arg2);
  }
  out += "}";
}

void append_microseconds(std::string& out, std::uint64_t ns) {
  // Fixed-point ns -> us without float formatting: "123.456".
  out += std::to_string(ns / 1000);
  out += '.';
  const auto frac = static_cast<unsigned>(ns % 1000);
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
}

}  // namespace

std::uint64_t now_ns() {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns();
}

std::uint64_t thread_label() { return thread_label_storage(); }

void set_thread_name(const char* name) { thread_name_storage() = name; }

std::atomic<bool> Tracer::enabled_{false};

/// One thread's preallocated event ring. Owned jointly by the thread
/// (thread_local shared_ptr) and the tracer registry, so events survive
/// thread exit until clear(). The mutex only contends with flush/clear.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity, std::uint64_t tid_label)
      : tid(tid_label), name(thread_name_storage()) {
    ring.resize(capacity);
    buffers_created_count.fetch_add(1, std::memory_order_relaxed);
  }

  void push(const TraceEvent& event) {
    const std::lock_guard<std::mutex> lock(mu);
    if (name == nullptr) name = thread_name_storage();
    ring[head] = event;
    head = (head + 1) % ring.size();
    if (count < ring.size()) {
      ++count;
    } else {
      ++dropped;
    }
  }

  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t head = 0;   ///< next write position
  std::size_t count = 0;  ///< live events
  std::uint64_t dropped = 0;
  std::uint64_t tid = 0;
  const char* name = nullptr;
};

Tracer::Tracer() {
  const char* env = std::getenv("GRIDADMM_TRACE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) return;
  enable();
  if (std::strcmp(env, "1") != 0 && std::strcmp(env, "true") != 0 &&
      std::strcmp(env, "yes") != 0) {
    exit_path_ = env;
    std::atexit([] {
      Tracer& tracer = Tracer::instance();
      tracer.write_file(tracer.exit_path_);
    });
  }
}

Tracer& Tracer::instance() {
  // Intentionally leaked: the GRIDADMM_TRACE exit flush (std::atexit) and
  // instrumented static destructors may record or serialize after every
  // static destructor has run, so the tracer must outlive them all.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::enable(std::size_t ring_capacity) {
  if (ring_capacity > 0) ring_capacity_.store(ring_capacity, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::ThreadBuffer& Tracer::thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> local;
  if (local == nullptr) {
    local = std::make_shared<ThreadBuffer>(ring_capacity_.load(std::memory_order_relaxed),
                                           thread_label());
    const std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(local);
  }
  return *local;
}

void Tracer::record(const TraceEvent& event) {
  if (!enabled()) return;
  thread_buffer().push(event);
}

std::string Tracer::to_json() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mu);
    const std::string tid = std::to_string(buffer->tid);
    if (buffer->name != nullptr) {
      if (!first) out += ",";
      first = false;
      out += "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " + tid +
             ", \"args\": {\"name\": \"";
      out += buffer->name;
      out += "\"}}";
    }
    // Ring order: oldest event first. head points one past the newest.
    const std::size_t capacity = buffer->ring.size();
    const std::size_t start = (buffer->head + capacity - buffer->count) % capacity;
    for (std::size_t k = 0; k < buffer->count; ++k) {
      const TraceEvent& e = buffer->ring[(start + k) % capacity];
      if (!first) out += ",";
      first = false;
      out += "\n{\"name\": \"";
      out += e.name != nullptr ? e.name : "?";
      out += "\", \"ph\": \"";
      out += e.phase;
      out += "\", \"ts\": ";
      append_microseconds(out, e.ts_ns);
      if (e.phase == 'X') {
        out += ", \"dur\": ";
        append_microseconds(out, e.dur_ns);
      }
      out += ", \"pid\": 1, \"tid\": " + tid;
      append_args(out, e);
      out += "}";
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Tracer::write_file(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    ThreadBuffer& buffer = **it;
    {
      const std::lock_guard<std::mutex> buffer_lock(buffer.mu);
      buffer.head = 0;
      buffer.count = 0;
      buffer.dropped = 0;
    }
    // An exited thread's buffer has use_count 1 (registry only): forget it.
    it = it->use_count() == 1 ? buffers_.erase(it) : it + 1;
  }
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->count;
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

std::uint64_t Tracer::buffers_created() {
  return buffers_created_count.load(std::memory_order_relaxed);
}

namespace {

/// GRIDADMM_TRACE must take effect even when no code path ever calls
/// instance() explicitly: every record path short-circuits on the static
/// enabled() flag, so the singleton (whose constructor reads the env var
/// and registers the exit flush) is touched once at startup.
[[maybe_unused]] const bool tracer_env_touched = (Tracer::instance(), true);

}  // namespace

}  // namespace gridadmm::obs
