#include "obs/watchdog.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace gridadmm::obs {

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int Watchdog::register_slot(std::string name) {
  slots_.push_back(std::make_unique<Slot>(std::move(name)));
  slots_.back()->last_beat_ns.store(now_ns(), std::memory_order_relaxed);
  return static_cast<int>(slots_.size()) - 1;
}

void Watchdog::beat(int id) { beat(id, now_ns()); }

void Watchdog::beat(int id, std::uint64_t now) {
  slots_[static_cast<std::size_t>(id)]->last_beat_ns.store(now, std::memory_order_relaxed);
}

void Watchdog::set_idle(int id, bool idle) {
  Slot& slot = *slots_[static_cast<std::size_t>(id)];
  if (!idle) slot.last_beat_ns.store(now_ns(), std::memory_order_relaxed);
  slot.idle.store(idle, std::memory_order_relaxed);
}

bool Watchdog::healthy(std::uint64_t now, double stall_seconds) const {
  const auto deadline_ns = static_cast<std::uint64_t>(stall_seconds * 1e9);
  for (const auto& slot : slots_) {
    if (slot->idle.load(std::memory_order_relaxed)) continue;
    const std::uint64_t beat = slot->last_beat_ns.load(std::memory_order_relaxed);
    if (now > beat && now - beat > deadline_ns) return false;
  }
  return true;
}

std::vector<Watchdog::SlotStatus> Watchdog::status(std::uint64_t now,
                                                   double stall_seconds) const {
  const auto deadline_ns = static_cast<std::uint64_t>(stall_seconds * 1e9);
  std::vector<SlotStatus> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    SlotStatus status;
    status.name = slot->name;
    status.idle = slot->idle.load(std::memory_order_relaxed);
    const std::uint64_t beat = slot->last_beat_ns.load(std::memory_order_relaxed);
    status.seconds_since_beat = now > beat ? static_cast<double>(now - beat) * 1e-9 : 0.0;
    status.healthy = status.idle || now <= beat || now - beat <= deadline_ns;
    out.push_back(std::move(status));
  }
  return out;
}

std::string Watchdog::healthz_json(std::uint64_t now, double stall_seconds) const {
  const auto slots = status(now, stall_seconds);
  bool all_healthy = true;
  for (const auto& slot : slots) all_healthy = all_healthy && slot.healthy;
  std::string out = "{\"healthy\": ";
  out += all_healthy ? "true" : "false";
  out += ", \"stall_deadline_seconds\": " + format_double(stall_seconds);
  out += ", \"slots\": [";
  bool first = true;
  for (const auto& slot : slots) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + slot.name + "\", \"healthy\": ";
    out += slot.healthy ? "true" : "false";
    out += ", \"idle\": ";
    out += slot.idle ? "true" : "false";
    out += ", \"seconds_since_beat\": " + format_double(slot.seconds_since_beat) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace gridadmm::obs
