// Cross-thread tracing: spans and instant events into per-thread
// preallocated ring buffers, flushed to Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing).
//
// Design constraints, matching the repo's allocation discipline:
//   - Disabled tracer is near-free: every record path starts with one
//     relaxed atomic load and returns. No thread buffer is ever created
//     while tracing is disabled (asserted by tests/test_obs.cpp with the
//     same construction-counter idiom as the branch-lane checks).
//   - Enabled tracer performs zero steady-state allocations: each thread's
//     ring is preallocated once at its first recorded event and then only
//     overwritten in place. When a ring fills, the oldest events are
//     dropped (counted), never grown.
//   - Timestamps come from the steady clock relative to one process-wide
//     epoch, so spans from different threads (dispatcher, shard workers,
//     device workers) land on one consistent timeline — the same epoch
//     common/log uses for its line prefix, so log lines and trace spans
//     correlate by timestamp and thread label.
//
// Event names and argument names must be string literals (or otherwise
// outlive the tracer): events store the pointers, not copies. Thread ids
// in the output are small monotonic labels (obs::thread_label()), shared
// with the log prefix.
//
// Enablement: Tracer::instance().enable(), or the GRIDADMM_TRACE
// environment variable — "1"/"true"/"yes" enables for the process
// lifetime; any other non-empty value enables AND names a JSON file the
// trace is flushed to at process exit. ServiceOptions/BatchSolveOptions/
// TrackingOptions carry a `trace` knob that enables the process tracer
// (the established layout/branch_pack plumbing pattern).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gridadmm::obs {

/// One fixed-size trace record. `name` and the arg names must be
/// static-lifetime strings; numeric args render into the JSON "args"
/// object.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< steady-clock ns since the trace epoch
  std::uint64_t dur_ns = 0;  ///< span duration ('X' events)
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
  char phase = 'X';  ///< 'X' complete span, 'i' instant, 'C' counter
};

/// Steady-clock nanoseconds since the process trace epoch (the first call
/// in the process). Monotonic and shared by the tracer and the log prefix.
std::uint64_t now_ns();

/// Small monotonic per-thread label (0, 1, 2, ... in first-use order).
/// Independent of the tracer: calling it never allocates a trace buffer,
/// so the (always-on) log prefix can use it while tracing stays off.
std::uint64_t thread_label();

/// Names the calling thread in trace output ("serve.dispatcher",
/// "device.worker", ...). Must be a static-lifetime string. Effective for
/// events recorded before or after the call; cheap enough to call
/// unconditionally at thread start.
void set_thread_name(const char* name);

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;  ///< events/thread

  /// The process-wide tracer. First call reads GRIDADMM_TRACE.
  static Tracer& instance();

  /// True when tracing is on. One relaxed atomic load — the only cost the
  /// disabled tracer adds to any instrumented path.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Turns tracing on (idempotent; ring capacity applies to buffers
  /// created after the call).
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  /// Turns tracing off. Buffered events are kept until clear().
  void disable();

  /// Appends one event to the calling thread's ring (creates the ring on
  /// the thread's first event). No-op when disabled.
  void record(const TraceEvent& event);

  /// Process-unique correlation id (requests, batches); starts at 1.
  std::uint64_t next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Serializes every buffered event (all threads, including exited ones)
  /// as one Chrome trace-event JSON object. Thread-safe against concurrent
  /// record().
  [[nodiscard]] std::string to_json() const;

  /// to_json() into a file; returns false (and logs nothing) on I/O error.
  bool write_file(const std::string& path) const;

  /// Drops every buffered event and forgets exited threads' buffers.
  /// Buffers of live threads are emptied but stay allocated.
  void clear();

  /// Events buffered across all threads right now (flush sizing, tests).
  [[nodiscard]] std::size_t event_count() const;
  /// Events dropped to ring wrap-around since the last clear().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Thread ring buffers constructed since process start. The allocation
  /// discipline hook: a disabled tracer must never move this counter
  /// (tests/test_obs.cpp), and an enabled one moves it once per thread.
  static std::uint64_t buffers_created();

 private:
  struct ThreadBuffer;

  Tracer();
  ThreadBuffer& thread_buffer();

  static std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::string exit_path_;  ///< GRIDADMM_TRACE file target ("" = none)
};

/// RAII span: captures the start time at construction and records one 'X'
/// event over [construction, destruction) on the calling thread. When
/// tracing is disabled at construction the span is inert (one atomic
/// load). `seconds()` exposes the same measurement, so instrumented code
/// can feed wall-time accumulators from the identical interval the trace
/// shows.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                     const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
    if (!Tracer::enabled()) return;
    event_.name = name;
    event_.arg1_name = arg1_name;
    event_.arg1 = arg1;
    event_.arg2_name = arg2_name;
    event_.arg2 = arg2;
    event_.ts_ns = now_ns();
    active_ = true;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (!active_) return;
    event_.dur_ns = now_ns() - event_.ts_ns;
    Tracer::instance().record(event_);
  }

 private:
  TraceEvent event_;
  bool active_ = false;
};

/// Records one instant event ('i') on the calling thread.
inline void instant(const char* name, const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                    const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.ts_ns = now_ns();
  event.arg1_name = arg1_name;
  event.arg1 = arg1;
  event.arg2_name = arg2_name;
  event.arg2 = arg2;
  Tracer::instance().record(event);
}

/// Records a complete span whose interval [start_ns, start_ns + dur) was
/// measured elsewhere — e.g. a request's queue wait, whose start was
/// stamped on the submitting thread and whose end is observed by the
/// dispatcher.
inline void span_between(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                         const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                         const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.ts_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.arg1_name = arg1_name;
  event.arg1 = arg1;
  event.arg2_name = arg2_name;
  event.arg2 = arg2;
  Tracer::instance().record(event);
}

/// Stopwatch for consecutive phases of one loop: take(name) records a span
/// covering [previous take (or construction), now) and returns its length
/// in seconds. The returned seconds and the emitted span are ONE
/// measurement — the fused-step PhaseBreakdown is fed from the same
/// interval the trace shows, so the two cannot drift (ISSUE 6 tentpole).
/// Works (and costs only the clock read) with tracing disabled.
class PhaseTimer {
 public:
  PhaseTimer() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }

  /// Seconds since construction/reset/last take; emits the span when
  /// tracing is enabled and advances the phase start to now.
  double take(const char* name, const char* arg1_name = nullptr, std::uint64_t arg1 = 0) {
    const std::uint64_t end = now_ns();
    const std::uint64_t dur = end - start_;
    if (Tracer::enabled()) {
      TraceEvent event;
      event.name = name;
      event.ts_ns = start_;
      event.dur_ns = dur;
      event.arg1_name = arg1_name;
      event.arg1 = arg1;
      Tracer::instance().record(event);
    }
    start_ = end;
    return static_cast<double>(dur) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace gridadmm::obs
