// SLO monitor: sliding-window latency quantiles, shed rate, and
// multi-window burn-rate objective evaluation.
//
// The monitor keeps a ring of epoch-tagged time buckets (one per
// `bucket_seconds`); each bucket holds an exponential-bound latency
// histogram plus count/sum/bad/shed counters. Recording is lock-free —
// a handful of relaxed atomic increments into the bucket owning `now` —
// and performs zero steady-state allocations: every bucket and histogram
// row is preallocated at construction (`SloMonitor::allocations()` is the
// construction-counter test hook, the Tracer::buffers_created() idiom).
// Bucket rotation when time wraps the ring re-zeroes counters in place.
//
// Time is always passed in explicitly (seconds on any monotonic clock),
// so the monitor is ManualClock-testable end to end: the serve layer
// feeds it the service's injected clock, tests hand-advance time and
// assert exact window eviction and burn-rate transitions.
//
// Objectives follow the SRE burn-rate formulation. A latency objective
// "p99 <= X" means "at most budget_fraction (default 1%) of requests may
// exceed X"; the burn rate over a window is
//     (fraction of requests over X in the window) / budget_fraction,
// so burn 1.0 consumes the error budget exactly as fast as allowed. A
// breach is declared only when BOTH the fast (default 1 min) and slow
// (default 10 min) windows burn above the threshold — the fast window
// gives detection latency, the slow window keeps one spike from paging —
// and clears as soon as either window recovers. evaluate() emits the
// verdict to bound gauges, the log (on state transitions only), and an
// instant trace event.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gridadmm::obs {

/// Declared service-level objectives and the windows they are judged over.
struct SloObjectives {
  /// Latency ceiling in seconds (the "X" of "p99 <= X"); <= 0 disables the
  /// latency objective.
  double latency_ceiling_seconds = 0.0;
  /// Fraction of requests allowed over the ceiling (0.01 = a p99 objective,
  /// 0.05 = p95, ...).
  double latency_budget_fraction = 0.01;
  /// Allowed shed fraction of offered requests; < 0 disables the shed
  /// objective (0 means "any shed at all burns budget" against the
  /// shed_budget_fraction floor below).
  double shed_budget_fraction = -1.0;
  /// Fast/slow evaluation windows (seconds). Both must burn above
  /// `burn_threshold` for a breach.
  double fast_window_seconds = 60.0;
  double slow_window_seconds = 600.0;
  double burn_threshold = 1.0;
};

/// Ring/bucket geometry of the sliding window storage.
struct SloWindowOptions {
  double bucket_seconds = 1.0;  ///< time-bucket width
  int buckets = 660;            ///< ring span; must cover the slow window
  double lowest = 1e-4;         ///< first histogram bound (seconds)
  double growth = 1.6;          ///< histogram bound growth factor
  int histogram_buckets = 40;   ///< finite bounds per time bucket
};

/// One objective's verdict over both windows.
struct SloBurn {
  bool enabled = false;
  double fast_burn = 0.0;      ///< budget-normalized bad fraction, fast window
  double slow_burn = 0.0;      ///< same over the slow window
  double fast_bad_fraction = 0.0;
  bool breached = false;       ///< both windows over the burn threshold
};

/// The monitor's full answer at one evaluation instant.
struct SloVerdict {
  double now_seconds = 0.0;
  bool healthy = true;         ///< no enabled objective breached
  SloBurn latency;
  SloBurn shed;
  // Fast-window telemetry snapshot backing the burn figures.
  std::uint64_t fast_count = 0;   ///< latency observations in the fast window
  std::uint64_t fast_shed = 0;    ///< capacity sheds in the fast window
  /// Deadline-expired sheds in the fast window. Tracked separately from
  /// capacity sheds: they never burn the shed budget (the client's deadline
  /// was the binding constraint, not the service's capacity).
  std::uint64_t fast_deadline_shed = 0;
  double fast_p50 = 0.0;
  double fast_p95 = 0.0;
  double fast_p99 = 0.0;
  double fast_shed_fraction = 0.0;

  /// One-line JSON rendering (the /slo endpoint body).
  [[nodiscard]] std::string to_json(const SloObjectives& objectives) const;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloObjectives objectives, SloWindowOptions window = {});
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;
  ~SloMonitor();  ///< out-of-line: Bucket is incomplete here

  /// Records one fulfilled request's end-to-end latency at time `now`
  /// (seconds, any monotonic clock — use one clock consistently).
  /// Lock-free, allocation-free.
  void record_latency(double seconds, double now_seconds);

  /// Records one capacity shed (admission-rejected) request at time `now`.
  /// Feeds the shed-budget burn objective.
  void record_shed(double now_seconds);

  /// Records one deadline-expired shed at time `now`. Counted separately
  /// from capacity sheds: visible in the verdict/gauges, never burns the
  /// shed budget.
  void record_deadline_shed(double now_seconds);

  /// Latency quantile over the trailing `window_seconds` ending at `now`
  /// (upper-bound-biased bucket interpolation, like obs::Histogram).
  [[nodiscard]] double quantile(double q, double window_seconds, double now_seconds) const;

  /// Observations / sheds in the trailing window.
  [[nodiscard]] std::uint64_t window_count(double window_seconds, double now_seconds) const;
  [[nodiscard]] std::uint64_t window_shed(double window_seconds, double now_seconds) const;
  [[nodiscard]] std::uint64_t window_deadline_shed(double window_seconds,
                                                   double now_seconds) const;
  /// shed / (shed + fulfilled) over the window; 0 when nothing was offered.
  [[nodiscard]] double shed_fraction(double window_seconds, double now_seconds) const;

  /// Evaluates every declared objective at `now`: returns the verdict,
  /// refreshes bound gauges, logs breach/recovery transitions, and emits a
  /// "slo.breach" / "slo.recovered" instant trace event on transitions.
  /// Serialized internally; call from one evaluator or many.
  SloVerdict evaluate(double now_seconds);

  /// Binds the exported gauges (slo_healthy, slo_latency_burn_fast/slow,
  /// slo_shed_burn_fast/slow, slo_p99_fast_seconds, slo_shed_fraction_fast)
  /// into `registry`; evaluate() refreshes them.
  void bind_gauges(MetricsRegistry& registry);

  [[nodiscard]] const SloObjectives& objectives() const { return objectives_; }
  [[nodiscard]] const SloWindowOptions& window_options() const { return window_; }

  /// Heap allocations any monitor has performed since process start.
  /// Moves at construction only — the allocation-discipline test hook.
  static std::uint64_t allocations();

 private:
  struct Bucket;

  /// Sums counters and histogram rows of the buckets covering the trailing
  /// window into `scratch` (preallocated). Returns {count, shed, bad, sum}.
  struct WindowSums {
    std::uint64_t count = 0;
    std::uint64_t shed = 0;
    std::uint64_t deadline_shed = 0;
    std::uint64_t bad = 0;
    double sum = 0.0;
  };
  WindowSums sum_window(double window_seconds, double now_seconds,
                        std::vector<std::uint64_t>* hist_out) const;
  Bucket& bucket_for(double now_seconds);
  [[nodiscard]] std::int64_t epoch_of(double now_seconds) const {
    return static_cast<std::int64_t>(now_seconds / window_.bucket_seconds);
  }

  SloObjectives objectives_;
  SloWindowOptions window_;
  std::vector<double> bounds_;  ///< shared histogram bounds, ascending
  std::unique_ptr<Bucket[]> buckets_;

  /// evaluate()/quantile merge scratch: preallocated so the scrape path
  /// stays allocation-free too. Guarded by eval_mu_.
  mutable std::mutex eval_mu_;
  mutable std::vector<std::uint64_t> scratch_;
  bool was_healthy_ = true;  ///< transition edge detector (under eval_mu_)

  // Bound gauges (null until bind_gauges); registry owns the storage.
  Gauge* g_healthy_ = nullptr;
  Gauge* g_latency_burn_fast_ = nullptr;
  Gauge* g_latency_burn_slow_ = nullptr;
  Gauge* g_shed_burn_fast_ = nullptr;
  Gauge* g_shed_burn_slow_ = nullptr;
  Gauge* g_p99_fast_ = nullptr;
  Gauge* g_shed_fraction_fast_ = nullptr;
};

}  // namespace gridadmm::obs
