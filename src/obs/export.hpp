// Env-driven metrics dump: GRIDADMM_METRICS=PATH writes a final snapshot
// of every attached MetricsRegistry at process exit, mirroring how
// GRIDADMM_TRACE flushes the tracer. Paths ending in .json/.jsonl get one
// JSONL line per registry ({"registry": name, ...metrics}); anything else
// gets Prometheus text with a "# registry <name>" banner per section.
//
// Registries usually die before exit (a SolveService owns one), so
// detach() renders the registry's final state into a retained snapshot —
// the atexit writer then emits live registries and captured snapshots
// alike. attach/detach are setup/teardown-path only; nothing here runs
// during serving.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace gridadmm::obs {

class MetricsRegistry;

class MetricsDump {
 public:
  /// Standalone dump (tests): no env read, no atexit hook.
  MetricsDump() = default;

  /// Process-wide instance (leaked; flushed via atexit when
  /// GRIDADMM_METRICS is set — mirrors the Tracer env idiom).
  static MetricsDump& instance();

  /// Registers `registry` under `name` for the exit dump. No-op storage
  /// cost when GRIDADMM_METRICS is unset (render simply walks nothing).
  void attach(std::string name, const MetricsRegistry* registry);

  /// Unregisters `registry`, capturing its final rendered state so a
  /// registry destroyed mid-run still appears in the exit dump.
  void detach(const MetricsRegistry* registry);

  /// Renders all live registries plus captured snapshots; `jsonl` picks
  /// the format (JSONL lines vs Prometheus sections).
  [[nodiscard]] std::string render(bool jsonl) const;

  /// Writes render() to `path`, choosing JSONL for .json/.jsonl
  /// extensions. Returns false (with a log::warn) when the file cannot
  /// be opened.
  bool write_file(const std::string& path) const;

  /// The GRIDADMM_METRICS path seen at static init ("" when unset).
  [[nodiscard]] const std::string& env_path() const { return env_path_; }

 private:
  struct EnvTag {};
  explicit MetricsDump(EnvTag);  ///< singleton path: reads env, hooks atexit

  struct Entry {
    std::string name;
    const MetricsRegistry* registry = nullptr;  ///< null once detached
    std::string final_prometheus;               ///< captured at detach
    std::string final_json;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::string env_path_;
};

/// Static-init touch so the atexit hook registers before main() in every
/// binary that links obs (same idiom as tracer_env_touched).
namespace detail {
extern const bool metrics_dump_env_touched;
}

}  // namespace gridadmm::obs
