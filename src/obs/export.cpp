#include "obs/export.hpp"

#include <cstdlib>
#include <fstream>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace gridadmm::obs {

namespace {

bool path_wants_jsonl(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".json") || ends_with(".jsonl");
}

}  // namespace

MetricsDump::MetricsDump(EnvTag) {
  const char* env = std::getenv("GRIDADMM_METRICS");
  if (env == nullptr || *env == '\0' || std::string(env) == "0") return;
  env_path_ = env;
  std::atexit([] {
    MetricsDump& dump = MetricsDump::instance();
    dump.write_file(dump.env_path_);
  });
}

MetricsDump& MetricsDump::instance() {
  // Intentionally leaked, like the Tracer: the atexit flush runs after
  // static destructors, so the dump must outlive them all.
  static MetricsDump* dump = new MetricsDump(EnvTag{});
  return *dump;
}

void MetricsDump::attach(std::string name, const MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{std::move(name), registry, "", ""});
}

void MetricsDump::detach(const MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) {
    if (entry.registry == registry) {
      entry.final_prometheus = registry->expose_prometheus();
      entry.final_json = registry->snapshot_json();
      entry.registry = nullptr;
    }
  }
}

std::string MetricsDump::render(bool jsonl) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Entry& entry : entries_) {
    if (jsonl) {
      const std::string body =
          entry.registry != nullptr ? entry.registry->snapshot_json() : entry.final_json;
      if (body.empty()) continue;
      // Splice the registry name into the snapshot object: {"registry": N, ...}.
      if (body == "{}") {
        out += "{\"registry\": \"" + entry.name + "\"}\n";
      } else {
        out += "{\"registry\": \"" + entry.name + "\", " + body.substr(1) + "\n";
      }
    } else {
      out += "# registry " + entry.name + "\n";
      out += entry.registry != nullptr ? entry.registry->expose_prometheus()
                                       : entry.final_prometheus;
    }
  }
  return out;
}

bool MetricsDump::write_file(const std::string& path) const {
  if (path.empty()) return false;
  std::ofstream file(path);
  if (!file) {
    log::warn("GRIDADMM_METRICS: cannot open '", path, "' for writing");
    return false;
  }
  file << render(path_wants_jsonl(path));
  return static_cast<bool>(file);
}

namespace detail {
/// Touch the singleton at static init so the atexit hook is registered in
/// every binary that links obs, even if no service ever attaches.
[[maybe_unused]] const bool metrics_dump_env_touched = (MetricsDump::instance(), true);
}  // namespace detail

}  // namespace gridadmm::obs
