#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"

namespace gridadmm::obs {

namespace {

std::atomic<std::uint64_t> slo_allocations{0};

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void burn_json(std::string& out, const char* name, const SloBurn& burn) {
  out += "\"";
  out += name;
  out += "\": {\"enabled\": ";
  out += burn.enabled ? "true" : "false";
  out += ", \"fast_burn\": " + format_double(burn.fast_burn);
  out += ", \"slow_burn\": " + format_double(burn.slow_burn);
  out += ", \"fast_bad_fraction\": " + format_double(burn.fast_bad_fraction);
  out += ", \"breached\": ";
  out += burn.breached ? "true" : "false";
  out += "}";
}

}  // namespace

/// One time bucket: an epoch tag plus counters and a histogram row. All
/// fields are overwritten in place on rotation — never reallocated.
struct SloMonitor::Bucket {
  std::atomic<std::int64_t> epoch{-1};
  std::atomic<std::uint64_t> count{0};  ///< latency observations
  std::atomic<std::uint64_t> bad{0};    ///< observations over the ceiling
  std::atomic<std::uint64_t> shed{0};   ///< capacity sheds
  std::atomic<std::uint64_t> deadline_shed{0};  ///< deadline-expired sheds
  std::atomic<double> sum{0.0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> hist;  ///< bounds + overflow
};

std::string SloVerdict::to_json(const SloObjectives& objectives) const {
  std::string out = "{\"healthy\": ";
  out += healthy ? "true" : "false";
  out += ", \"now_seconds\": " + format_double(now_seconds);
  out += ", \"objectives\": {\"latency_ceiling_seconds\": " +
         format_double(objectives.latency_ceiling_seconds);
  out += ", \"latency_budget_fraction\": " + format_double(objectives.latency_budget_fraction);
  out += ", \"shed_budget_fraction\": " + format_double(objectives.shed_budget_fraction);
  out += ", \"fast_window_seconds\": " + format_double(objectives.fast_window_seconds);
  out += ", \"slow_window_seconds\": " + format_double(objectives.slow_window_seconds);
  out += ", \"burn_threshold\": " + format_double(objectives.burn_threshold);
  out += "}, ";
  burn_json(out, "latency", latency);
  out += ", ";
  burn_json(out, "shed", shed);
  out += ", \"fast_window\": {\"count\": " + std::to_string(fast_count);
  out += ", \"shed\": " + std::to_string(fast_shed);
  out += ", \"deadline_shed\": " + std::to_string(fast_deadline_shed);
  out += ", \"p50_seconds\": " + format_double(fast_p50);
  out += ", \"p95_seconds\": " + format_double(fast_p95);
  out += ", \"p99_seconds\": " + format_double(fast_p99);
  out += ", \"shed_fraction\": " + format_double(fast_shed_fraction);
  out += "}}";
  return out;
}

SloMonitor::SloMonitor(SloObjectives objectives, SloWindowOptions window)
    : objectives_(objectives), window_(window) {
  require(window_.bucket_seconds > 0.0, "SloMonitor: bucket_seconds must be positive");
  require(window_.buckets > 1, "SloMonitor: need at least two ring buckets");
  require(window_.histogram_buckets > 0, "SloMonitor: need at least one histogram bucket");
  require(window_.lowest > 0.0 && window_.growth > 1.0,
          "SloMonitor: histogram bounds must be positive and growing");
  const double slow = std::max(objectives_.fast_window_seconds, objectives_.slow_window_seconds);
  require(static_cast<double>(window_.buckets) * window_.bucket_seconds > slow,
          "SloMonitor: ring must span the slow evaluation window");

  bounds_.reserve(static_cast<std::size_t>(window_.histogram_buckets));
  double bound = window_.lowest;
  for (int i = 0; i < window_.histogram_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= window_.growth;
  }
  const auto n = static_cast<std::size_t>(window_.buckets);
  buckets_ = std::make_unique<Bucket[]>(n);
  slo_allocations.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i].hist = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    slo_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  scratch_.assign(bounds_.size() + 1, 0);
  slo_allocations.fetch_add(1, std::memory_order_relaxed);
}

SloMonitor::~SloMonitor() = default;

std::uint64_t SloMonitor::allocations() {
  return slo_allocations.load(std::memory_order_relaxed);
}

SloMonitor::Bucket& SloMonitor::bucket_for(double now_seconds) {
  const std::int64_t epoch = epoch_of(now_seconds);
  Bucket& bucket =
      buckets_[static_cast<std::size_t>(epoch % window_.buckets)];
  std::int64_t seen = bucket.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    // Rotation: the first writer of the new epoch re-zeroes the bucket in
    // place. The CAS elects one winner; a concurrent recorder that loses
    // the race proceeds immediately, so an increment racing the zeroing
    // can be lost — monitoring-grade accounting, never a hot-path stall.
    if (bucket.epoch.compare_exchange_strong(seen, epoch, std::memory_order_acq_rel)) {
      bucket.count.store(0, std::memory_order_relaxed);
      bucket.bad.store(0, std::memory_order_relaxed);
      bucket.shed.store(0, std::memory_order_relaxed);
      bucket.deadline_shed.store(0, std::memory_order_relaxed);
      bucket.sum.store(0.0, std::memory_order_relaxed);
      for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        bucket.hist[i].store(0, std::memory_order_relaxed);
      }
    }
  }
  return bucket;
}

void SloMonitor::record_latency(double seconds, double now_seconds) {
  Bucket& bucket = bucket_for(now_seconds);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), seconds);
  bucket.hist[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  bucket.count.fetch_add(1, std::memory_order_relaxed);
  bucket.sum.fetch_add(seconds, std::memory_order_relaxed);
  if (objectives_.latency_ceiling_seconds > 0.0 &&
      seconds > objectives_.latency_ceiling_seconds) {
    bucket.bad.fetch_add(1, std::memory_order_relaxed);
  }
}

void SloMonitor::record_shed(double now_seconds) {
  bucket_for(now_seconds).shed.fetch_add(1, std::memory_order_relaxed);
}

void SloMonitor::record_deadline_shed(double now_seconds) {
  bucket_for(now_seconds).deadline_shed.fetch_add(1, std::memory_order_relaxed);
}

SloMonitor::WindowSums SloMonitor::sum_window(double window_seconds, double now_seconds,
                                              std::vector<std::uint64_t>* hist_out) const {
  WindowSums sums;
  if (hist_out != nullptr) std::fill(hist_out->begin(), hist_out->end(), 0);
  const std::int64_t current = epoch_of(now_seconds);
  // The window covers epochs (current - span, current]: the current
  // (partial) bucket plus enough whole buckets to reach back
  // `window_seconds`.
  const auto span = static_cast<std::int64_t>(
      std::ceil(window_seconds / window_.bucket_seconds));
  const std::int64_t oldest = current - std::min<std::int64_t>(span, window_.buckets - 1) + 1;
  for (std::size_t i = 0; i < static_cast<std::size_t>(window_.buckets); ++i) {
    const Bucket& bucket = buckets_[i];
    const std::int64_t epoch = bucket.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > current) continue;  // evicted or unused
    sums.count += bucket.count.load(std::memory_order_relaxed);
    sums.bad += bucket.bad.load(std::memory_order_relaxed);
    sums.shed += bucket.shed.load(std::memory_order_relaxed);
    sums.deadline_shed += bucket.deadline_shed.load(std::memory_order_relaxed);
    sums.sum += bucket.sum.load(std::memory_order_relaxed);
    if (hist_out != nullptr) {
      for (std::size_t b = 0; b <= bounds_.size(); ++b) {
        (*hist_out)[b] += bucket.hist[b].load(std::memory_order_relaxed);
      }
    }
  }
  return sums;
}

double SloMonitor::quantile(double q, double window_seconds, double now_seconds) const {
  const std::lock_guard<std::mutex> lock(eval_mu_);
  const WindowSums sums = sum_window(window_seconds, now_seconds, &scratch_);
  if (sums.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(sums.count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = scratch_[i];
    if (cumulative + in_bucket >= rank && in_bucket > 0) {
      if (i == bounds_.size()) return bounds_.back();  // overflow saturates
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double fraction =
          static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

std::uint64_t SloMonitor::window_count(double window_seconds, double now_seconds) const {
  return sum_window(window_seconds, now_seconds, nullptr).count;
}

std::uint64_t SloMonitor::window_shed(double window_seconds, double now_seconds) const {
  return sum_window(window_seconds, now_seconds, nullptr).shed;
}

std::uint64_t SloMonitor::window_deadline_shed(double window_seconds,
                                               double now_seconds) const {
  return sum_window(window_seconds, now_seconds, nullptr).deadline_shed;
}

double SloMonitor::shed_fraction(double window_seconds, double now_seconds) const {
  const WindowSums sums = sum_window(window_seconds, now_seconds, nullptr);
  const std::uint64_t offered = sums.count + sums.shed;
  return offered == 0 ? 0.0
                      : static_cast<double>(sums.shed) / static_cast<double>(offered);
}

void SloMonitor::bind_gauges(MetricsRegistry& registry) {
  g_healthy_ = &registry.gauge("slo_healthy", "1 when no declared objective is breached");
  g_latency_burn_fast_ = &registry.gauge(
      "slo_latency_burn_fast", "Latency budget burn rate over the fast window");
  g_latency_burn_slow_ = &registry.gauge(
      "slo_latency_burn_slow", "Latency budget burn rate over the slow window");
  g_shed_burn_fast_ =
      &registry.gauge("slo_shed_burn_fast", "Shed budget burn rate over the fast window");
  g_shed_burn_slow_ =
      &registry.gauge("slo_shed_burn_slow", "Shed budget burn rate over the slow window");
  g_p99_fast_ =
      &registry.gauge("slo_p99_fast_seconds", "p99 latency over the fast window");
  g_shed_fraction_fast_ =
      &registry.gauge("slo_shed_fraction_fast", "Shed fraction over the fast window");
  g_healthy_->set(1.0);
}

SloVerdict SloMonitor::evaluate(double now_seconds) {
  SloVerdict verdict;
  verdict.now_seconds = now_seconds;

  const std::lock_guard<std::mutex> lock(eval_mu_);
  const WindowSums fast = sum_window(objectives_.fast_window_seconds, now_seconds, &scratch_);
  verdict.fast_count = fast.count;
  verdict.fast_shed = fast.shed;
  verdict.fast_deadline_shed = fast.deadline_shed;
  // Fast-window quantiles from the already-merged scratch row.
  const auto scratch_quantile = [&](double q) -> double {
    if (fast.count == 0) return 0.0;
    const auto rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(fast.count)));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      const std::uint64_t in_bucket = scratch_[i];
      if (cumulative + in_bucket >= rank && in_bucket > 0) {
        if (i == bounds_.size()) return bounds_.back();
        const double hi = bounds_[i];
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        return lo + static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket) * (hi - lo);
      }
      cumulative += in_bucket;
    }
    return bounds_.back();
  };
  verdict.fast_p50 = scratch_quantile(0.50);
  verdict.fast_p95 = scratch_quantile(0.95);
  verdict.fast_p99 = scratch_quantile(0.99);
  const std::uint64_t fast_offered = fast.count + fast.shed;
  verdict.fast_shed_fraction =
      fast_offered == 0 ? 0.0
                        : static_cast<double>(fast.shed) / static_cast<double>(fast_offered);

  const WindowSums slow = sum_window(objectives_.slow_window_seconds, now_seconds, nullptr);

  if (objectives_.latency_ceiling_seconds > 0.0) {
    verdict.latency.enabled = true;
    const double budget = std::max(objectives_.latency_budget_fraction, 1e-12);
    const double fast_bad =
        fast.count == 0 ? 0.0
                        : static_cast<double>(fast.bad) / static_cast<double>(fast.count);
    const double slow_bad =
        slow.count == 0 ? 0.0
                        : static_cast<double>(slow.bad) / static_cast<double>(slow.count);
    verdict.latency.fast_bad_fraction = fast_bad;
    verdict.latency.fast_burn = fast_bad / budget;
    verdict.latency.slow_burn = slow_bad / budget;
    verdict.latency.breached = verdict.latency.fast_burn > objectives_.burn_threshold &&
                               verdict.latency.slow_burn > objectives_.burn_threshold;
  }

  if (objectives_.shed_budget_fraction >= 0.0) {
    verdict.shed.enabled = true;
    // A zero-shed objective still needs a finite budget to normalize by.
    const double budget = std::max(objectives_.shed_budget_fraction, 1e-4);
    const std::uint64_t slow_offered = slow.count + slow.shed;
    const double slow_fraction =
        slow_offered == 0 ? 0.0
                          : static_cast<double>(slow.shed) / static_cast<double>(slow_offered);
    verdict.shed.fast_bad_fraction = verdict.fast_shed_fraction;
    verdict.shed.fast_burn = verdict.fast_shed_fraction / budget;
    verdict.shed.slow_burn = slow_fraction / budget;
    verdict.shed.breached = verdict.shed.fast_burn > objectives_.burn_threshold &&
                            verdict.shed.slow_burn > objectives_.burn_threshold;
  }

  verdict.healthy = !verdict.latency.breached && !verdict.shed.breached;

  if (g_healthy_ != nullptr) {
    g_healthy_->set(verdict.healthy ? 1.0 : 0.0);
    g_latency_burn_fast_->set(verdict.latency.fast_burn);
    g_latency_burn_slow_->set(verdict.latency.slow_burn);
    g_shed_burn_fast_->set(verdict.shed.fast_burn);
    g_shed_burn_slow_->set(verdict.shed.slow_burn);
    g_p99_fast_->set(verdict.fast_p99);
    g_shed_fraction_fast_->set(verdict.fast_shed_fraction);
  }

  if (verdict.healthy != was_healthy_) {
    if (!verdict.healthy) {
      log::warn("SLO breach: latency burn fast/slow ", verdict.latency.fast_burn, "/",
                verdict.latency.slow_burn, ", shed burn fast/slow ", verdict.shed.fast_burn,
                "/", verdict.shed.slow_burn, " (threshold ", objectives_.burn_threshold, ")");
      obs::instant("slo.breach", "latency", verdict.latency.breached ? 1 : 0, "shed",
                   verdict.shed.breached ? 1 : 0);
    } else {
      log::info("SLO recovered: all objectives back under burn threshold");
      obs::instant("slo.recovered");
    }
    was_healthy_ = verdict.healthy;
  }
  return verdict;
}

}  // namespace gridadmm::obs
