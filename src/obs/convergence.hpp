// Per-scenario convergence telemetry: knob-gated residual/penalty/TRON-work
// trajectories sampled every K fused steps of a batch solve, plus the
// non-convergence detector the planned engine router (ROADMAP item 5)
// escalates on.
//
// The batch engine fills one ConvergenceTrajectory per scenario when
// BatchSolveOptions::convergence_sample_interval > 0 (plumbed through
// TrackingOptions and ServiceOptions like layout/branch_pack) and exports
// them on ScenarioReport::convergence. Sampling only observes values the
// fused loop already computes, so solver iterates are bit-identical with
// sampling on or off (asserted by tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace gridadmm::obs {

/// One sample of a scenario's convergence state, taken after a fused step.
struct ConvergenceSample {
  int inner_iteration = 0;   ///< scenario's cumulative fused steps so far
  int outer_iteration = 0;   ///< 1-based outer (augmented-Lagrangian) index
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  double rho_scale = 1.0;    ///< cumulative adaptive-penalty scaling
  double beta = 0.0;         ///< outer penalty at sample time
  std::uint64_t tron_iterations = 0;  ///< cumulative branch TRON iterations
};

/// One scenario's sampled trajectory across its whole solve. The final
/// state is always appended when the scenario retires, so the last sample
/// reflects termination even when the interval does not divide the
/// iteration count.
struct ConvergenceTrajectory {
  int scenario = -1;
  bool converged = false;
  bool hit_iteration_cap = false;  ///< retired by budget, not by tolerance
  std::vector<ConvergenceSample> samples;
};

/// Escalation policy for should_escalate(). Defaults flag scenarios whose
/// primal residual failed to shrink by min_decay across the trailing
/// stall_window_fraction of the trajectory.
struct EscalationPolicy {
  double stall_window_fraction = 0.5;
  /// The trailing window must end below min_decay x its starting primal
  /// residual to count as "still making progress".
  double min_decay = 0.5;
};

/// The router signal: true when the scenario should be escalated to a more
/// robust engine (the batched IPM of ROADMAP item 5). A converged scenario
/// never escalates; an unconverged one escalates when its trajectory shows
/// a residual stall (or carries too few samples to argue otherwise).
inline bool should_escalate(const ConvergenceTrajectory& trajectory,
                            const EscalationPolicy& policy = {}) {
  if (trajectory.converged) return false;
  const auto& samples = trajectory.samples;
  if (samples.size() < 2) return true;  // no trajectory evidence: escalate
  const double fraction = policy.stall_window_fraction <= 0.0   ? 1.0
                          : policy.stall_window_fraction >= 1.0 ? 0.0
                                                                : 1.0 - policy.stall_window_fraction;
  const auto window_start =
      static_cast<std::size_t>(fraction * static_cast<double>(samples.size() - 1));
  const double before = samples[window_start].primal_residual;
  const double last = samples.back().primal_residual;
  // Stalled (or diverging) when the window did not decay the residual.
  return !(last < policy.min_decay * before);
}

/// Scenario indices flagged by should_escalate over a whole report's
/// trajectories — what the engine router would hand to the second engine.
inline std::vector<int> escalation_candidates(
    const std::vector<ConvergenceTrajectory>& trajectories,
    const EscalationPolicy& policy = {}) {
  std::vector<int> out;
  for (const auto& trajectory : trajectories) {
    if (should_escalate(trajectory, policy)) out.push_back(trajectory.scenario);
  }
  return out;
}

}  // namespace gridadmm::obs
