#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace gridadmm::obs {

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

Histogram::Histogram(double lowest, double growth, int buckets) {
  require(lowest > 0.0, "Histogram: lowest bound must be positive");
  require(growth > 1.0, "Histogram: growth factor must exceed 1");
  require(buckets > 0, "Histogram: need at least one bucket");
  bounds_.reserve(static_cast<std::size_t>(buckets));
  double bound = lowest;
  for (int i = 0; i < buckets; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double value) {
  // Branchless-ish bucket search: bounds are few (default 24), the upper
  // bound is the first bound >= value; everything above lands in overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (cumulative + in_bucket >= rank && in_bucket > 0) {
      if (i == bounds_.size()) return bounds_.back();  // overflow saturates
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      // Linear interpolation of the rank within the bucket; biased to the
      // upper bound when the whole rank mass sits in this bucket.
      const double fraction =
          static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        const std::string& help, Kind kind) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    if (entry->name == name) {
      require(entry->kind == kind, "MetricsRegistry: '" + name + "' already registered "
                                   "with a different instrument kind");
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  Entry& entry = find_or_create(name, help, Kind::kCounter);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  Entry& entry = find_or_create(name, help, Kind::kGauge);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      double lowest, double growth, int buckets) {
  Entry& entry = find_or_create(name, help, Kind::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(lowest, growth, buckets);
  }
  return *entry.histogram;
}

std::string MetricsRegistry::expose_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& entry : entries_) {
    if (!entry->help.empty()) out += "# HELP " + entry->name + " " + entry->help + "\n";
    switch (entry->kind) {
      case Kind::kCounter:
        out += "# TYPE " + entry->name + " counter\n";
        out += entry->name + " " + std::to_string(entry->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + format_double(entry->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        out += "# TYPE " + entry->name + " histogram\n";
        const auto counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          out += entry->name + "_bucket{le=\"" + format_double(h.bounds()[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += counts.back();
        out += entry->name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
        out += entry->name + "_sum " + format_double(h.sum()) + "\n";
        out += entry->name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  const auto field = [&out, &first](const std::string& key, const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + key + "\": " + value;
  };
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        field(entry->name, std::to_string(entry->counter->value()));
        break;
      case Kind::kGauge:
        field(entry->name, format_double(entry->gauge->value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        field(entry->name + "_count", std::to_string(h.count()));
        field(entry->name + "_sum", format_double(h.sum()));
        field(entry->name + "_p50", format_double(h.quantile(0.50)));
        field(entry->name + "_p95", format_double(h.quantile(0.95)));
        field(entry->name + "_p99", format_double(h.quantile(0.99)));
        break;
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace gridadmm::obs
