// Metrics registry: named counters, gauges, and exponential-bucket
// histograms with Prometheus-style text exposition and JSONL snapshots.
//
// Instruments are created once (registry mutex held) and then updated
// lock-free through the returned reference — atomic increments only, no
// lookups or allocations on the hot path. The registry owns instrument
// storage for its lifetime, so references stay valid. Shared by the serve
// layer (latency/occupancy/queue telemetry, see serve/stats.hpp for how
// the exact ring-buffer quantiles relate to the bucketed histogram ones)
// and the bench harnesses.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gridadmm::obs {

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over exponential buckets: bucket i counts observations in
/// (bound[i-1], bound[i]] with bound[i] = lowest * growth^i, plus one
/// overflow bucket. Observation is two relaxed atomic increments and one
/// atomic add; quantiles interpolate within the containing bucket
/// (upper-bound-biased, so a quantile never understates the tail).
class Histogram {
 public:
  /// `lowest` is the first bucket's upper bound (> 0); `growth` > 1;
  /// `buckets` finite buckets plus the implicit overflow bucket.
  Histogram(double lowest, double growth, int buckets);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const;
  /// q in [0, 1]; returns 0 when empty. The overflow bucket reports the
  /// largest finite bound (quantiles saturate there).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of the finite buckets plus the overflow count (last entry).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;  ///< finite upper bounds, ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument registry. get-or-create by (name, kind); re-getting
/// an existing name with the same kind returns the same instrument, so
/// independent components can share series. Exposition formats:
/// Prometheus text (histograms as cumulative `le` buckets + sum + count)
/// and single-line JSON snapshots for the bench JSONL artifact pipeline.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       double lowest = 1e-5, double growth = 2.0, int buckets = 24);

  /// Prometheus text exposition of every instrument.
  [[nodiscard]] std::string expose_prometheus() const;
  /// One JSON object ("{\"metric\": value, ...}") with counters, gauges,
  /// and histogram count/sum/p50/p95/p99 series — the JSONL snapshot.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const std::string& help, Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< stable addresses
};

}  // namespace gridadmm::obs
