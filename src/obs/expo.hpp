// Minimal metrics exposition endpoint: a knob-gated, single-threaded
// POSIX-socket HTTP/1.1 server for scrapers (curl, Prometheus).
//
// Scope is deliberately tiny: GET only, one request per connection
// (Connection: close), handlers registered per exact path, everything
// served from one background accept loop. The server binds 127.0.0.1 by
// default — it carries no authentication, so binding a public interface
// is an explicit operator decision (see DESIGN.md §11 security note).
// Port 0 binds an ephemeral port; port() reports the bound one.
//
// Handlers run on the server thread and return a Response; they are
// expected to be cheap snapshot renderers (Prometheus text, JSON
// verdicts). Scrape-path allocations are fine — the serving hot path
// never enters this file.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gridadmm::obs {

struct ExpoOptions {
  std::string host = "127.0.0.1";  ///< bind address (loopback by default)
  int port = 0;                    ///< 0 = ephemeral
};

struct ExpoResponse {
  int status = 200;  ///< 200, 404, 503, ...
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class ExpoServer {
 public:
  using Handler = std::function<ExpoResponse()>;

  explicit ExpoServer(ExpoOptions options = {});
  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;
  /// Stops the accept loop and closes the socket.
  ~ExpoServer();

  /// Registers `handler` for exact-match GET `path` (e.g. "/metrics").
  /// Must be called before start().
  void handle(std::string path, Handler handler);

  /// Binds, listens, and spawns the accept loop. Throws GridError when
  /// the address cannot be bound.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::string& host() const { return options_.host; }
  [[nodiscard]] std::string url() const {
    return "http://" + options_.host + ":" + std::to_string(port_);
  }

  /// Requests served since start (scrape accounting, tests).
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  ExpoOptions options_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace gridadmm::obs
