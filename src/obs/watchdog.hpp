// Liveness watchdog backing the /healthz endpoint.
//
// Long-lived worker threads (dispatcher, shard solve workers, maintenance)
// register a named slot at setup and then report liveness with two
// relaxed atomic stores: beat() stamps "I made progress at T" and
// set_idle() marks "I am parked on a condition variable" (an idle thread
// is healthy no matter how long it stays silent — only a *busy* thread
// that has gone quiet past the stall deadline is flagged). Slots are
// preallocated at registration; the steady-state cost is the stores.
//
// Health checks take the current time explicitly (nanoseconds on the
// obs::now_ns() trace clock), so stall detection is testable without
// sleeping: stamp a beat, ask about a later instant, watch the slot trip
// and then clear on the next beat.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gridadmm::obs {

class Watchdog {
 public:
  struct SlotStatus {
    std::string name;
    bool healthy = true;
    bool idle = true;
    double seconds_since_beat = 0.0;
  };

  /// Registers a named heartbeat slot (setup-time; allocates). The
  /// returned id addresses the slot in beat()/set_idle(). Slots start
  /// idle and healthy.
  int register_slot(std::string name);

  /// Stamps slot `id` alive at `now_ns` (default: obs::now_ns()).
  void beat(int id);
  void beat(int id, std::uint64_t now_ns);

  /// Marks slot `id` parked (true) or working (false). Entering the busy
  /// state also stamps a beat, so the stall clock starts at the
  /// transition, not at the previous beat.
  void set_idle(int id, bool idle);

  /// True when every slot is idle or has beaten within `stall_seconds`
  /// of `now_ns`.
  [[nodiscard]] bool healthy(std::uint64_t now_ns, double stall_seconds) const;

  /// Per-slot health snapshot (scrape path; allocates).
  [[nodiscard]] std::vector<SlotStatus> status(std::uint64_t now_ns,
                                               double stall_seconds) const;

  /// The /healthz body: {"healthy": ..., "stall_deadline_seconds": ...,
  /// "slots": [{"name": ..., "healthy": ..., "idle": ...,
  /// "seconds_since_beat": ...}, ...]}.
  [[nodiscard]] std::string healthz_json(std::uint64_t now_ns, double stall_seconds) const;

  [[nodiscard]] int slot_count() const { return static_cast<int>(slots_.size()); }

 private:
  struct Slot {
    explicit Slot(std::string slot_name) : name(std::move(slot_name)) {}
    std::string name;
    std::atomic<std::uint64_t> last_beat_ns{0};
    std::atomic<bool> idle{true};
  };

  /// unique_ptr per slot: registration may grow the vector, but slot
  /// addresses stay stable for the atomics the worker threads touch.
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace gridadmm::obs
