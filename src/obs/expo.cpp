#include "obs/expo.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"

namespace gridadmm::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; a scraper retry is cheap
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

ExpoServer::ExpoServer(ExpoOptions options) : options_(std::move(options)) {}

ExpoServer::~ExpoServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ExpoServer::handle(std::string path, Handler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

void ExpoServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "ExpoServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  require(::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
          "ExpoServer: invalid bind host '" + options_.host + "'");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw GridError("ExpoServer: cannot bind " + options_.host + ":" +
                    std::to_string(options_.port) + " (" + detail + ")");
  }
  require(::listen(listen_fd_, 8) == 0, "ExpoServer: listen() failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  log::info("exposition endpoint listening on ", url(),
            " (/metrics, /healthz, /slo; loopback unless configured otherwise)");
  thread_ = std::thread([this] { serve_loop(); });
}

void ExpoServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms stop-flag cadence
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void ExpoServer::handle_connection(int fd) {
  // Scrape requests fit one read; anything longer gets truncated parsing
  // of its first line, which is all we use.
  timeval timeout{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char buffer[2048];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer) - 1, 0);
  if (n <= 0) return;
  buffer[n] = '\0';
  const std::string request(buffer);

  ExpoResponse response;
  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) {
    response.status = 405;
    response.body = "only GET is served\n";
  } else {
    std::string path = line.substr(4, line.find(' ', 4) - 4);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    response.status = 404;
    response.body = "unknown path\n";
    for (const auto& [registered, handler] : handlers_) {
      if (registered == path) {
        try {
          response = handler();
        } catch (const std::exception& error) {
          response = ExpoResponse{503, "text/plain; charset=utf-8",
                                  std::string("handler failed: ") + error.what() + "\n"};
        }
        break;
      }
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\nContent-Type: " +
                    response.content_type + "\r\nContent-Length: " +
                    std::to_string(response.body.size()) + "\r\nConnection: close\r\n\r\n";
  out += response.body;
  write_all(fd, out);
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gridadmm::obs
